
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aosi_epoch_clock_test.cc" "tests/CMakeFiles/cubrick_tests.dir/aosi_epoch_clock_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/aosi_epoch_clock_test.cc.o.d"
  "/root/repo/tests/aosi_epoch_vector_test.cc" "tests/CMakeFiles/cubrick_tests.dir/aosi_epoch_vector_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/aosi_epoch_vector_test.cc.o.d"
  "/root/repo/tests/aosi_purge_test.cc" "tests/CMakeFiles/cubrick_tests.dir/aosi_purge_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/aosi_purge_test.cc.o.d"
  "/root/repo/tests/aosi_txn_manager_test.cc" "tests/CMakeFiles/cubrick_tests.dir/aosi_txn_manager_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/aosi_txn_manager_test.cc.o.d"
  "/root/repo/tests/aosi_visibility_test.cc" "tests/CMakeFiles/cubrick_tests.dir/aosi_visibility_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/aosi_visibility_test.cc.o.d"
  "/root/repo/tests/bitmap_test.cc" "tests/CMakeFiles/cubrick_tests.dir/bitmap_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/bitmap_test.cc.o.d"
  "/root/repo/tests/cluster_categories_test.cc" "tests/CMakeFiles/cubrick_tests.dir/cluster_categories_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/cluster_categories_test.cc.o.d"
  "/root/repo/tests/cluster_recovery_test.cc" "tests/CMakeFiles/cubrick_tests.dir/cluster_recovery_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/cluster_recovery_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/cubrick_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_utils_test.cc" "tests/CMakeFiles/cubrick_tests.dir/common_utils_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/common_utils_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/cubrick_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/ddl_test.cc" "tests/CMakeFiles/cubrick_tests.dir/ddl_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/ddl_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/cubrick_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/engine_shard_test.cc" "tests/CMakeFiles/cubrick_tests.dir/engine_shard_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/engine_shard_test.cc.o.d"
  "/root/repo/tests/engine_table_test.cc" "tests/CMakeFiles/cubrick_tests.dir/engine_table_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/engine_table_test.cc.o.d"
  "/root/repo/tests/epoch_set_test.cc" "tests/CMakeFiles/cubrick_tests.dir/epoch_set_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/epoch_set_test.cc.o.d"
  "/root/repo/tests/explain_topk_test.cc" "tests/CMakeFiles/cubrick_tests.dir/explain_topk_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/explain_topk_test.cc.o.d"
  "/root/repo/tests/facade_concurrency_test.cc" "tests/CMakeFiles/cubrick_tests.dir/facade_concurrency_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/facade_concurrency_test.cc.o.d"
  "/root/repo/tests/ingest_parser_test.cc" "tests/CMakeFiles/cubrick_tests.dir/ingest_parser_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/ingest_parser_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/cubrick_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/materialize_test.cc" "tests/CMakeFiles/cubrick_tests.dir/materialize_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/materialize_test.cc.o.d"
  "/root/repo/tests/mvcc_store_test.cc" "tests/CMakeFiles/cubrick_tests.dir/mvcc_store_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/mvcc_store_test.cc.o.d"
  "/root/repo/tests/persist_property_test.cc" "tests/CMakeFiles/cubrick_tests.dir/persist_property_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/persist_property_test.cc.o.d"
  "/root/repo/tests/persist_test.cc" "tests/CMakeFiles/cubrick_tests.dir/persist_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/persist_test.cc.o.d"
  "/root/repo/tests/property_cluster_test.cc" "tests/CMakeFiles/cubrick_tests.dir/property_cluster_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/property_cluster_test.cc.o.d"
  "/root/repo/tests/property_epoch_vector_test.cc" "tests/CMakeFiles/cubrick_tests.dir/property_epoch_vector_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/property_epoch_vector_test.cc.o.d"
  "/root/repo/tests/property_txn_manager_test.cc" "tests/CMakeFiles/cubrick_tests.dir/property_txn_manager_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/property_txn_manager_test.cc.o.d"
  "/root/repo/tests/query_advanced_test.cc" "tests/CMakeFiles/cubrick_tests.dir/query_advanced_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/query_advanced_test.cc.o.d"
  "/root/repo/tests/query_executor_test.cc" "tests/CMakeFiles/cubrick_tests.dir/query_executor_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/query_executor_test.cc.o.d"
  "/root/repo/tests/read_your_writes_test.cc" "tests/CMakeFiles/cubrick_tests.dir/read_your_writes_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/read_your_writes_test.cc.o.d"
  "/root/repo/tests/rollback_index_test.cc" "tests/CMakeFiles/cubrick_tests.dir/rollback_index_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/rollback_index_test.cc.o.d"
  "/root/repo/tests/run_extract_test.cc" "tests/CMakeFiles/cubrick_tests.dir/run_extract_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/run_extract_test.cc.o.d"
  "/root/repo/tests/soak_test.cc" "tests/CMakeFiles/cubrick_tests.dir/soak_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/soak_test.cc.o.d"
  "/root/repo/tests/storage_brick_test.cc" "tests/CMakeFiles/cubrick_tests.dir/storage_brick_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/storage_brick_test.cc.o.d"
  "/root/repo/tests/storage_schema_test.cc" "tests/CMakeFiles/cubrick_tests.dir/storage_schema_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/storage_schema_test.cc.o.d"
  "/root/repo/tests/table_model_test.cc" "tests/CMakeFiles/cubrick_tests.dir/table_model_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/table_model_test.cc.o.d"
  "/root/repo/tests/two_pl_test.cc" "tests/CMakeFiles/cubrick_tests.dir/two_pl_test.cc.o" "gcc" "tests/CMakeFiles/cubrick_tests.dir/two_pl_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cubrick.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
