# Empty compiler generated dependencies file for cubrick_tests.
# This may be replaced when dependencies are built.
