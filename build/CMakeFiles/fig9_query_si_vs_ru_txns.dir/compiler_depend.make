# Empty compiler generated dependencies file for fig9_query_si_vs_ru_txns.
# This may be replaced when dependencies are built.
