file(REMOVE_RECURSE
  "CMakeFiles/fig9_query_si_vs_ru_txns.dir/bench/fig9_query_si_vs_ru_txns.cc.o"
  "CMakeFiles/fig9_query_si_vs_ru_txns.dir/bench/fig9_query_si_vs_ru_txns.cc.o.d"
  "bench/fig9_query_si_vs_ru_txns"
  "bench/fig9_query_si_vs_ru_txns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_query_si_vs_ru_txns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
