file(REMOVE_RECURSE
  "CMakeFiles/fig6_memory_overhead_single_column.dir/bench/fig6_memory_overhead_single_column.cc.o"
  "CMakeFiles/fig6_memory_overhead_single_column.dir/bench/fig6_memory_overhead_single_column.cc.o.d"
  "bench/fig6_memory_overhead_single_column"
  "bench/fig6_memory_overhead_single_column.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_memory_overhead_single_column.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
