# Empty dependencies file for fig6_memory_overhead_single_column.
# This may be replaced when dependencies are built.
