file(REMOVE_RECURSE
  "CMakeFiles/fig8_query_si_vs_ru_size.dir/bench/fig8_query_si_vs_ru_size.cc.o"
  "CMakeFiles/fig8_query_si_vs_ru_size.dir/bench/fig8_query_si_vs_ru_size.cc.o.d"
  "bench/fig8_query_si_vs_ru_size"
  "bench/fig8_query_si_vs_ru_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_query_si_vs_ru_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
