# Empty compiler generated dependencies file for fig8_query_si_vs_ru_size.
# This may be replaced when dependencies are built.
