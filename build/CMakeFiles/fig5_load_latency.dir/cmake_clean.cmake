file(REMOVE_RECURSE
  "CMakeFiles/fig5_load_latency.dir/bench/fig5_load_latency.cc.o"
  "CMakeFiles/fig5_load_latency.dir/bench/fig5_load_latency.cc.o.d"
  "bench/fig5_load_latency"
  "bench/fig5_load_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_load_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
