# Empty dependencies file for fig10_ingestion_scale.
# This may be replaced when dependencies are built.
