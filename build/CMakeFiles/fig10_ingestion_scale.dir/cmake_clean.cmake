file(REMOVE_RECURSE
  "CMakeFiles/fig10_ingestion_scale.dir/bench/fig10_ingestion_scale.cc.o"
  "CMakeFiles/fig10_ingestion_scale.dir/bench/fig10_ingestion_scale.cc.o.d"
  "bench/fig10_ingestion_scale"
  "bench/fig10_ingestion_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ingestion_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
