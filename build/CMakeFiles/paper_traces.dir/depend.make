# Empty dependencies file for paper_traces.
# This may be replaced when dependencies are built.
