file(REMOVE_RECURSE
  "CMakeFiles/paper_traces.dir/bench/paper_traces.cc.o"
  "CMakeFiles/paper_traces.dir/bench/paper_traces.cc.o.d"
  "bench/paper_traces"
  "bench/paper_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
