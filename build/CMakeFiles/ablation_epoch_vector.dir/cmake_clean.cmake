file(REMOVE_RECURSE
  "CMakeFiles/ablation_epoch_vector.dir/bench/ablation_epoch_vector.cc.o"
  "CMakeFiles/ablation_epoch_vector.dir/bench/ablation_epoch_vector.cc.o.d"
  "bench/ablation_epoch_vector"
  "bench/ablation_epoch_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epoch_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
