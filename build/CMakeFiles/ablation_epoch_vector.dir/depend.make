# Empty dependencies file for ablation_epoch_vector.
# This may be replaced when dependencies are built.
