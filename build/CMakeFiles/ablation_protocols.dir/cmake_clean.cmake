file(REMOVE_RECURSE
  "CMakeFiles/ablation_protocols.dir/bench/ablation_protocols.cc.o"
  "CMakeFiles/ablation_protocols.dir/bench/ablation_protocols.cc.o.d"
  "bench/ablation_protocols"
  "bench/ablation_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
