file(REMOVE_RECURSE
  "CMakeFiles/fig7_memory_overhead_wide.dir/bench/fig7_memory_overhead_wide.cc.o"
  "CMakeFiles/fig7_memory_overhead_wide.dir/bench/fig7_memory_overhead_wide.cc.o.d"
  "bench/fig7_memory_overhead_wide"
  "bench/fig7_memory_overhead_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_memory_overhead_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
