# Empty dependencies file for fig7_memory_overhead_wide.
# This may be replaced when dependencies are built.
