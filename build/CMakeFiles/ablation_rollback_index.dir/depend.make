# Empty dependencies file for ablation_rollback_index.
# This may be replaced when dependencies are built.
