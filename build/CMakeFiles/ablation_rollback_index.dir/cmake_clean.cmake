file(REMOVE_RECURSE
  "CMakeFiles/ablation_rollback_index.dir/bench/ablation_rollback_index.cc.o"
  "CMakeFiles/ablation_rollback_index.dir/bench/ablation_rollback_index.cc.o.d"
  "bench/ablation_rollback_index"
  "bench/ablation_rollback_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rollback_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
