file(REMOVE_RECURSE
  "libcubrick.a"
)
