# Empty dependencies file for cubrick.
# This may be replaced when dependencies are built.
