
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aosi/epoch.cc" "src/CMakeFiles/cubrick.dir/aosi/epoch.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/aosi/epoch.cc.o.d"
  "/root/repo/src/aosi/epoch_vector.cc" "src/CMakeFiles/cubrick.dir/aosi/epoch_vector.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/aosi/epoch_vector.cc.o.d"
  "/root/repo/src/aosi/purge.cc" "src/CMakeFiles/cubrick.dir/aosi/purge.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/aosi/purge.cc.o.d"
  "/root/repo/src/aosi/txn_manager.cc" "src/CMakeFiles/cubrick.dir/aosi/txn_manager.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/aosi/txn_manager.cc.o.d"
  "/root/repo/src/aosi/visibility.cc" "src/CMakeFiles/cubrick.dir/aosi/visibility.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/aosi/visibility.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/cubrick.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/hash_ring.cc" "src/CMakeFiles/cubrick.dir/cluster/hash_ring.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/cluster/hash_ring.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/CMakeFiles/cubrick.dir/cluster/node.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/cluster/node.cc.o.d"
  "/root/repo/src/common/bitmap.cc" "src/CMakeFiles/cubrick.dir/common/bitmap.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/common/bitmap.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/cubrick.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cubrick.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/common/status.cc.o.d"
  "/root/repo/src/cubrick/database.cc" "src/CMakeFiles/cubrick.dir/cubrick/database.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/cubrick/database.cc.o.d"
  "/root/repo/src/cubrick/ddl.cc" "src/CMakeFiles/cubrick.dir/cubrick/ddl.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/cubrick/ddl.cc.o.d"
  "/root/repo/src/engine/run_extract.cc" "src/CMakeFiles/cubrick.dir/engine/run_extract.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/engine/run_extract.cc.o.d"
  "/root/repo/src/engine/shard.cc" "src/CMakeFiles/cubrick.dir/engine/shard.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/engine/shard.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/cubrick.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/engine/table.cc.o.d"
  "/root/repo/src/ingest/parser.cc" "src/CMakeFiles/cubrick.dir/ingest/parser.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/ingest/parser.cc.o.d"
  "/root/repo/src/mvcc/lock_manager.cc" "src/CMakeFiles/cubrick.dir/mvcc/lock_manager.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/mvcc/lock_manager.cc.o.d"
  "/root/repo/src/mvcc/mvcc_store.cc" "src/CMakeFiles/cubrick.dir/mvcc/mvcc_store.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/mvcc/mvcc_store.cc.o.d"
  "/root/repo/src/mvcc/two_pl_store.cc" "src/CMakeFiles/cubrick.dir/mvcc/two_pl_store.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/mvcc/two_pl_store.cc.o.d"
  "/root/repo/src/persist/flush_manager.cc" "src/CMakeFiles/cubrick.dir/persist/flush_manager.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/persist/flush_manager.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/cubrick.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/query/executor.cc.o.d"
  "/root/repo/src/query/materialize.cc" "src/CMakeFiles/cubrick.dir/query/materialize.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/query/materialize.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/cubrick.dir/query/query.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/query/query.cc.o.d"
  "/root/repo/src/storage/bess_column.cc" "src/CMakeFiles/cubrick.dir/storage/bess_column.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/storage/bess_column.cc.o.d"
  "/root/repo/src/storage/brick.cc" "src/CMakeFiles/cubrick.dir/storage/brick.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/storage/brick.cc.o.d"
  "/root/repo/src/storage/data_type.cc" "src/CMakeFiles/cubrick.dir/storage/data_type.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/storage/data_type.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "src/CMakeFiles/cubrick.dir/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/metric_column.cc" "src/CMakeFiles/cubrick.dir/storage/metric_column.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/storage/metric_column.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/cubrick.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/cubrick.dir/storage/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
