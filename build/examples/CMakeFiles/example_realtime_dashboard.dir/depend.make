# Empty dependencies file for example_realtime_dashboard.
# This may be replaced when dependencies are built.
