file(REMOVE_RECURSE
  "CMakeFiles/example_dimension_snapshots.dir/dimension_snapshots.cpp.o"
  "CMakeFiles/example_dimension_snapshots.dir/dimension_snapshots.cpp.o.d"
  "example_dimension_snapshots"
  "example_dimension_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dimension_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
