# Empty compiler generated dependencies file for example_dimension_snapshots.
# This may be replaced when dependencies are built.
