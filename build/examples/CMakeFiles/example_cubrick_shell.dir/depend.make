# Empty dependencies file for example_cubrick_shell.
# This may be replaced when dependencies are built.
