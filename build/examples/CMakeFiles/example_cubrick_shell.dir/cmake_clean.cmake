file(REMOVE_RECURSE
  "CMakeFiles/example_cubrick_shell.dir/cubrick_shell.cpp.o"
  "CMakeFiles/example_cubrick_shell.dir/cubrick_shell.cpp.o.d"
  "example_cubrick_shell"
  "example_cubrick_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cubrick_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
