file(REMOVE_RECURSE
  "CMakeFiles/example_retention_pipeline.dir/retention_pipeline.cpp.o"
  "CMakeFiles/example_retention_pipeline.dir/retention_pipeline.cpp.o.d"
  "example_retention_pipeline"
  "example_retention_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_retention_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
