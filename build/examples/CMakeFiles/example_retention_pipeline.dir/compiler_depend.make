# Empty compiler generated dependencies file for example_retention_pipeline.
# This may be replaced when dependencies are built.
