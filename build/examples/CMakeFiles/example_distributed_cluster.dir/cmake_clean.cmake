file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_cluster.dir/distributed_cluster.cpp.o"
  "CMakeFiles/example_distributed_cluster.dir/distributed_cluster.cpp.o.d"
  "example_distributed_cluster"
  "example_distributed_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
