# Empty dependencies file for example_distributed_cluster.
# This may be replaced when dependencies are built.
