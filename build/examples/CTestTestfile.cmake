# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_crash_recovery]=] "/root/repo/build/examples/example_crash_recovery")
set_tests_properties([=[example_crash_recovery]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cubrick_shell]=] "/root/repo/build/examples/example_cubrick_shell")
set_tests_properties([=[example_cubrick_shell]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_dimension_snapshots]=] "/root/repo/build/examples/example_dimension_snapshots")
set_tests_properties([=[example_dimension_snapshots]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed_cluster]=] "/root/repo/build/examples/example_distributed_cluster")
set_tests_properties([=[example_distributed_cluster]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_quickstart]=] "/root/repo/build/examples/example_quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_realtime_dashboard]=] "/root/repo/build/examples/example_realtime_dashboard")
set_tests_properties([=[example_realtime_dashboard]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_retention_pipeline]=] "/root/repo/build/examples/example_retention_pipeline")
set_tests_properties([=[example_retention_pipeline]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
