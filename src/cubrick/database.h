// Database: the single-node public API of the Cubrick/AOSI engine.
//
// Wraps one TxnManager plus one sharded Table per cube, and exposes the
// operation set the paper defines (§III-A): read, append and delete —
// either as implicit single-operation transactions or inside explicit
// transactions the caller begins/commits/rolls back. Persistence is a
// checkpoint (flush round + LSE advance) against a data directory, with
// crash recovery on startup.
//
// For the distributed deployment use cluster::Cluster, which composes the
// same building blocks across simulated nodes.

#pragma once

#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "aosi/txn_manager.h"
#include "check/online_checker.h"
#include "common/mutex.h"
#include "cubrick/ddl.h"
#include "engine/table.h"
#include "ingest/parser.h"
#include "persist/flush_manager.h"
#include "query/query.h"

namespace cubrick {

struct DatabaseOptions {
  size_t shards_per_cube = 2;
  /// Dedicated shard threads; inline execution when false.
  bool threaded_shards = false;
  /// Directory for flush segments; empty disables persistence.
  std::string data_dir;
  /// Enables the §III-C5 txn->partition rollback index (memory for speed).
  bool rollback_index = false;
  /// Pins shard threads to CPUs (§V-B NUMA locality; threaded mode only).
  bool pin_shard_threads = false;
  /// Morsel-parallel query execution: maximum concurrent scan workers per
  /// shard (bricks fanned out on ThreadPool::Global(); see Table::Scan).
  /// 1 (the default) keeps the serial executor — the deterministic path the
  /// src/check/ harness replays by default.
  size_t query_parallelism = 1;
  /// Morsel-parallel ingestion (DESIGN.md §4f): maximum parse/encode
  /// workers per load request (record morsels fanned out on
  /// ThreadPool::Global(); see ParseRecords). Output is bit-identical to
  /// the serial walk at any setting; 1 (the default) keeps the serial
  /// path that src/check/ replays by default.
  size_t ingest_parallelism = 1;
  /// Per-brick visibility-bitmap cache (DESIGN.md §4c): memoizes §III-C3
  /// bitmaps keyed on (epochs-vector version, effective horizon, deps).
  /// Results are identical either way; the src/check/ harness keeps it off
  /// by default for seed-replay stability and opts in via --cache.
  bool query_visibility_cache = true;
  /// Period of the background flush/purge thread; 0 disables it. Requires
  /// data_dir.
  int64_t auto_checkpoint_interval_ms = 0;
  /// Installs the online SI checker (src/check/online_checker.h) for this
  /// database's lifetime: sampled transactions and scans are validated
  /// against the §III-B/C visibility rules while the system runs, with
  /// violations and health published as check.online.* metrics. Process-
  /// global hook — at most one Database (or manually installed checker)
  /// may enable it at a time.
  bool online_check = false;
  /// Sampling rate out of 1000 for the online checker (1000 = check every
  /// transaction). Ignored unless online_check is set.
  uint32_t online_check_sample_permille = 1000;
  /// Scan-kernel SIMD backend override: "scalar"|"avx2"|"neon"|"auto"
  /// (common/simd.h). Empty keeps the process default (CUBRICK_SIMD env, or
  /// auto-detect). Process-global: results are bit-identical across
  /// backends, so this only affects speed, never answers.
  std::string simd;
};

/// Per-load timing breakdown (single-node flavor of cluster::LoadStats).
struct LoadTiming {
  int64_t parse_us = 0;
  int64_t flush_us = 0;
  int64_t total_us = 0;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL ---------------------------------------------------------------

  /// Executes a CREATE CUBE statement.
  Status ExecuteDdl(const std::string& ddl);
  Status CreateCube(const std::string& name,
                    std::vector<DimensionDef> dimensions,
                    std::vector<MetricDef> metrics);
  Status DropCube(const std::string& name);

  std::shared_ptr<const CubeSchema> FindSchema(const std::string& name) const;
  Table* FindTable(const std::string& name) const;

  // --- Implicit transactions (one operation, auto commit) -----------------

  /// Loads a batch in one implicit RW transaction.
  Status Load(const std::string& cube, const std::vector<Record>& records,
              const ParseOptions& options = {}, LoadTiming* timing = nullptr);

  /// Runs a query in one implicit RO transaction (at LCE).
  Result<QueryResult> Query(const std::string& cube,
                            const cubrick::Query& query,
                            ScanMode mode = ScanMode::kSnapshotIsolation);

  /// Deletes all partitions fully covered by `filters` in one implicit RW
  /// transaction.
  Status DeletePartitions(const std::string& cube,
                          const std::vector<FilterClause>& filters);

  // --- Explicit transactions ----------------------------------------------

  aosi::Txn Begin();
  aosi::Txn BeginReadOnly();
  Status Commit(const aosi::Txn& txn);
  /// Aborts and physically removes the transaction's appends everywhere.
  Status Rollback(const aosi::Txn& txn);

  Status LoadIn(const aosi::Txn& txn, const std::string& cube,
                const std::vector<Record>& records,
                const ParseOptions& options = {});
  Result<QueryResult> QueryIn(const aosi::Txn& txn, const std::string& cube,
                              const cubrick::Query& query,
                              ScanMode mode = ScanMode::kSnapshotIsolation);
  Status DeletePartitionsIn(const aosi::Txn& txn, const std::string& cube,
                            const std::vector<FilterClause>& filters);

  /// Row-wise point reads (SELECT-style): materializes up to
  /// `options.limit` visible rows matching the query's filters, with string
  /// columns decoded. Implicit RO transaction.
  Result<std::vector<MaterializedRow>> Select(
      const std::string& cube, const cubrick::Query& query,
      const MaterializeOptions& options = {});

  // --- Filters over user-facing values ------------------------------------

  /// Builds an equality filter, translating string values through the
  /// dimension's dictionary. A string value never ingested yields a filter
  /// matching nothing.
  Result<FilterClause> EqFilter(const std::string& cube,
                                const std::string& dimension,
                                const Value& value) const;

  /// Builds a coordinate-range filter over an integer dimension.
  Result<FilterClause> RangeFilter(const std::string& cube,
                                   const std::string& dimension, uint64_t lo,
                                   uint64_t hi) const;

  /// Builds an IN-list filter; each value is translated like EqFilter.
  /// Values never ingested are dropped from the list (they can't match).
  Result<FilterClause> InFilter(const std::string& cube,
                                const std::string& dimension,
                                const std::vector<Value>& values) const;

  // --- Maintenance ---------------------------------------------------------

  /// Flushes every cube up to the current LCE, advances LSE, and purges.
  /// Returns the new LSE. Requires a data_dir.
  Result<aosi::Epoch> Checkpoint();

  /// Runs the purge procedure on every cube at the current LSE. See
  /// PurgeMode: the default phased pipeline runs concurrently with scans.
  PurgeStats PurgeAll(PurgeMode mode = PurgeMode::kConcurrent);

  /// Replays flush segments from data_dir into the (freshly created) cubes
  /// and restores the epoch counters. Call after recreating schemas via
  /// DDL on a fresh Database. Data from flush rounds that did not complete
  /// on every cube is truncated for cross-cube consistency.
  Status Recover();

  // --- Introspection -------------------------------------------------------

  aosi::TxnManager& txns() { return txns_; }
  /// The online checker, or nullptr when options.online_check is off.
  check::OnlineChecker* online_checker() { return online_checker_.get(); }
  uint64_t TotalRecords();
  size_t DataMemoryUsage();
  size_t HistoryMemoryUsage();
  std::vector<std::string> CubeNames() const;

 private:
  struct CubeState {
    std::unique_ptr<Table> table;
    std::unique_ptr<persist::FlushManager> flusher;
  };

  /// Per-cube engine pointers snapshotted under mutex_. Bulk operations
  /// (rollback, purge, checkpoint, recovery) iterate this snapshot with the
  /// lock released: table operations fan work out to shard queues that
  /// apply backpressure, and holding mutex_ across that wait would stall
  /// every registry lookup behind a full queue. Pointer lifetime follows
  /// the FindTable() convention — DDL is serialized against data
  /// operations by the caller, mutex_ guards only the map itself.
  struct CubeRef {
    Table* table;
    persist::FlushManager* flusher;
  };
  std::vector<CubeRef> SnapshotCubes() const;

  /// Body of the background checkpoint thread (§III-D: "disk flushes are
  /// constantly being executed in the background").
  void CheckpointLoop();

  DatabaseOptions options_;
  std::unique_ptr<check::OnlineChecker> online_checker_;
  aosi::TxnManager txns_;
  mutable Mutex mutex_;
  std::unordered_map<std::string, CubeState> cubes_ GUARDED_BY(mutex_);

  Mutex flusher_mutex_;
  CondVar flusher_cv_;
  bool stop_flusher_ GUARDED_BY(flusher_mutex_) = false;
  std::thread flusher_thread_;
};

}  // namespace cubrick
