// Tiny DDL parser for the paper's CREATE CUBE statement (§V-A):
//
//   CREATE CUBE test_cube (region string CARDINALITY 4 RANGE 2,
//                          gender string CARDINALITY 4 RANGE 1,
//                          likes int, comments int)
//
// A column with a CARDINALITY clause is a dimension (RANGE defaults to 1);
// a column without one is a metric. Supported types: string, int / int64,
// double. Keywords are case-insensitive; identifiers are kept verbatim.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace cubrick {

struct DdlStatement {
  std::string cube_name;
  std::vector<DimensionDef> dimensions;
  std::vector<MetricDef> metrics;
};

/// Parses one CREATE CUBE statement.
Result<DdlStatement> ParseCreateCube(const std::string& ddl);

}  // namespace cubrick
