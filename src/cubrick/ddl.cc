#include "cubrick/ddl.h"

#include <cctype>

namespace cubrick {

namespace {

std::vector<std::string> Tokenize(const std::string& ddl) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : ddl) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '(' ||
        c == ')' || c == ';') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      if (c == '(' || c == ')' || c == ',') {
        tokens.push_back(std::string(1, c));
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

bool IsKeyword(const std::string& token, const char* keyword) {
  return Upper(token) == keyword;
}

Result<uint64_t> ParseNumber(const std::string& token) {
  if (token.empty()) return Status::InvalidArgument("expected a number");
  uint64_t v = 0;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("expected a number, got '" + token + "'");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

Result<DdlStatement> ParseCreateCube(const std::string& ddl) {
  const auto tokens = Tokenize(ddl);
  size_t i = 0;
  auto expect = [&](const char* keyword) -> Status {
    if (i >= tokens.size() || !IsKeyword(tokens[i], keyword)) {
      return Status::InvalidArgument(std::string("expected '") + keyword +
                                     "'");
    }
    ++i;
    return Status::OK();
  };

  DdlStatement stmt;
  CUBRICK_RETURN_IF_ERROR(expect("CREATE"));
  CUBRICK_RETURN_IF_ERROR(expect("CUBE"));
  if (i >= tokens.size()) {
    return Status::InvalidArgument("expected cube name");
  }
  stmt.cube_name = tokens[i++];
  CUBRICK_RETURN_IF_ERROR(expect("("));

  while (i < tokens.size() && tokens[i] != ")") {
    if (tokens[i] == ",") {
      ++i;
      continue;
    }
    const std::string col_name = tokens[i++];
    if (i >= tokens.size()) {
      return Status::InvalidArgument("column '" + col_name +
                                     "' is missing a type");
    }
    const std::string type_token = Upper(tokens[i++]);
    bool is_string = false;
    DataType type;
    if (type_token == "STRING") {
      is_string = true;
      type = DataType::kString;
    } else if (type_token == "INT" || type_token == "INT64" ||
               type_token == "BIGINT") {
      type = DataType::kInt64;
    } else if (type_token == "DOUBLE" || type_token == "FLOAT") {
      type = DataType::kDouble;
    } else {
      return Status::InvalidArgument("unknown type '" + type_token +
                                     "' for column '" + col_name + "'");
    }

    if (i < tokens.size() && IsKeyword(tokens[i], "CARDINALITY")) {
      ++i;
      if (i >= tokens.size()) {
        return Status::InvalidArgument("CARDINALITY needs a value");
      }
      auto cardinality = ParseNumber(tokens[i++]);
      if (!cardinality.ok()) return cardinality.status();
      uint64_t range_size = 1;
      if (i < tokens.size() && IsKeyword(tokens[i], "RANGE")) {
        ++i;
        if (i >= tokens.size()) {
          return Status::InvalidArgument("RANGE needs a value");
        }
        auto range = ParseNumber(tokens[i++]);
        if (!range.ok()) return range.status();
        range_size = *range;
      }
      if (type == DataType::kDouble) {
        return Status::InvalidArgument("dimension '" + col_name +
                                       "' cannot be double");
      }
      stmt.dimensions.push_back(
          DimensionDef{col_name, *cardinality, range_size, is_string});
    } else {
      stmt.metrics.push_back(MetricDef{col_name, type});
    }
  }
  if (i >= tokens.size() || tokens[i] != ")") {
    return Status::InvalidArgument("missing closing ')'");
  }
  ++i;
  if (i < tokens.size()) {
    return Status::InvalidArgument("trailing tokens after ')'");
  }
  if (stmt.dimensions.empty()) {
    return Status::InvalidArgument(
        "a cube needs at least one dimension (CARDINALITY clause)");
  }
  return stmt;
}

}  // namespace cubrick
