#include "cubrick/database.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/simd.h"
#include "common/stopwatch.h"

namespace cubrick {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  if (!options_.simd.empty()) {
    simd::ConfigureFromString(options_.simd.c_str());
  }
  if (options_.online_check) {
    check::OnlineCheckerOptions checker_options;
    checker_options.sample_permille = options_.online_check_sample_permille;
    online_checker_ =
        std::make_unique<check::OnlineChecker>(checker_options);
    online_checker_->Install();
  }
  if (options_.auto_checkpoint_interval_ms > 0) {
    CUBRICK_CHECK(!options_.data_dir.empty());
    flusher_thread_ = std::thread([this] { CheckpointLoop(); });
  }
}

Database::~Database() {
  if (flusher_thread_.joinable()) {
    {
      MutexLock lock(flusher_mutex_);
      stop_flusher_ = true;
    }
    flusher_cv_.NotifyAll();
    flusher_thread_.join();
  }
  // After the flusher is gone no thread of this database is scanning, so
  // the hook can be removed and the ring drained.
  if (online_checker_ != nullptr) online_checker_->Uninstall();
}

void Database::CheckpointLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.auto_checkpoint_interval_ms);
  while (true) {
    {
      MutexLock lock(flusher_mutex_);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!stop_flusher_ &&
             flusher_cv_.WaitUntil(lock, deadline) != std::cv_status::timeout) {
      }
      if (stop_flusher_) return;
    }
    // Checkpoint outside flusher_mutex_ so shutdown never waits on a flush.
    auto result = Checkpoint();
    if (!result.ok()) {
      CUBRICK_LOG(Warning) << "background checkpoint failed: "
                           << result.status().ToString();
    }
  }
}

Status Database::ExecuteDdl(const std::string& ddl) {
  auto stmt = ParseCreateCube(ddl);
  if (!stmt.ok()) return stmt.status();
  return CreateCube(stmt->cube_name, std::move(stmt->dimensions),
                    std::move(stmt->metrics));
}

Status Database::CreateCube(const std::string& name,
                            std::vector<DimensionDef> dimensions,
                            std::vector<MetricDef> metrics) {
  auto schema =
      CubeSchema::Make(name, std::move(dimensions), std::move(metrics));
  if (!schema.ok()) return schema.status();
  MutexLock lock(mutex_);
  if (cubes_.count(name) > 0) {
    return Status::AlreadyExists("cube '" + name + "' already exists");
  }
  CubeState state;
  state.table = std::make_unique<Table>(
      schema.value(), options_.shards_per_cube, options_.threaded_shards,
      options_.rollback_index, options_.pin_shard_threads);
  if (!options_.data_dir.empty()) {
    state.flusher =
        std::make_unique<persist::FlushManager>(options_.data_dir, name);
  }
  cubes_.emplace(name, std::move(state));
  return Status::OK();
}

Status Database::DropCube(const std::string& name) {
  MutexLock lock(mutex_);
  if (cubes_.erase(name) == 0) {
    return Status::NotFound("cube '" + name + "' does not exist");
  }
  return Status::OK();
}

std::shared_ptr<const CubeSchema> Database::FindSchema(
    const std::string& name) const {
  Table* table = FindTable(name);
  return table == nullptr ? nullptr : table->schema_ptr();
}

Table* Database::FindTable(const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = cubes_.find(name);
  return it == cubes_.end() ? nullptr : it->second.table.get();
}

Status Database::Load(const std::string& cube,
                      const std::vector<Record>& records,
                      const ParseOptions& options, LoadTiming* timing) {
  aosi::Txn txn = Begin();
  Stopwatch total;
  Stopwatch parse_timer;
  Table* table = FindTable(cube);
  if (table == nullptr) {
    (void)txns_.Rollback(txn);
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  auto parsed =
      ParseRecords(table->schema(), records, options, options_.ingest_parallelism);
  if (!parsed.ok()) {
    (void)txns_.Rollback(txn);
    return parsed.status();
  }
  const int64_t parse_us = parse_timer.ElapsedMicros();

  Stopwatch flush_timer;
  const Status append = table->Append(txn.epoch, std::move(parsed->batches));
  if (!append.ok()) {
    (void)Rollback(txn);
    return append;
  }
  if (timing != nullptr) {
    timing->parse_us = parse_us;
    timing->flush_us = flush_timer.ElapsedMicros();
    timing->total_us = total.ElapsedMicros();
  }
  return txns_.Commit(txn);
}

Result<QueryResult> Database::Query(const std::string& cube,
                                    const cubrick::Query& query,
                                    ScanMode mode) {
  aosi::Txn txn = txns_.BeginReadOnly();
  auto result = QueryIn(txn, cube, query, mode);
  txns_.EndReadOnly(txn);
  return result;
}

Status Database::DeletePartitions(const std::string& cube,
                                  const std::vector<FilterClause>& filters) {
  aosi::Txn txn = Begin();
  const Status status = DeletePartitionsIn(txn, cube, filters);
  if (!status.ok()) {
    (void)Rollback(txn);
    return status;
  }
  return txns_.Commit(txn);
}

aosi::Txn Database::Begin() { return txns_.BeginReadWrite(); }
aosi::Txn Database::BeginReadOnly() { return txns_.BeginReadOnly(); }

Status Database::Commit(const aosi::Txn& txn) { return txns_.Commit(txn); }

Status Database::Rollback(const aosi::Txn& txn) {
  if (!txn.read_only()) {
    // Snapshot the cube set and release mutex_ before the per-table
    // rollback: Table::Rollback enqueues onto bounded shard queues, and a
    // backpressure wait under the registry lock would stall every lookup.
    for (const CubeRef& cube : SnapshotCubes()) {
      cube.table->Rollback(txn.epoch);
    }
  }
  return txns_.Rollback(txn);
}

std::vector<Database::CubeRef> Database::SnapshotCubes() const {
  MutexLock lock(mutex_);
  std::vector<CubeRef> cubes;
  cubes.reserve(cubes_.size());
  for (const auto& [name, state] : cubes_) {
    cubes.push_back({state.table.get(), state.flusher.get()});
  }
  return cubes;
}

Status Database::LoadIn(const aosi::Txn& txn, const std::string& cube,
                        const std::vector<Record>& records,
                        const ParseOptions& options) {
  if (txn.read_only()) {
    return Status::FailedPrecondition("load in a read-only transaction");
  }
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  auto parsed =
      ParseRecords(table->schema(), records, options, options_.ingest_parallelism);
  if (!parsed.ok()) return parsed.status();
  return table->Append(txn.epoch, std::move(parsed->batches));
}

Result<QueryResult> Database::QueryIn(const aosi::Txn& txn,
                                      const std::string& cube,
                                      const cubrick::Query& query,
                                      ScanMode mode) {
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  return table->Scan(txn.snapshot(), mode, query, nullptr,
                     options_.query_parallelism,
                     options_.query_visibility_cache);
}

Status Database::DeletePartitionsIn(const aosi::Txn& txn,
                                    const std::string& cube,
                                    const std::vector<FilterClause>& filters) {
  if (txn.read_only()) {
    return Status::FailedPrecondition("delete in a read-only transaction");
  }
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  return table->DeleteWhere(txn.epoch, filters);
}

Result<std::vector<MaterializedRow>> Database::Select(
    const std::string& cube, const cubrick::Query& query,
    const MaterializeOptions& options) {
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  aosi::Txn txn = txns_.BeginReadOnly();
  auto rows =
      table->Materialize(txn.snapshot(), ScanMode::kSnapshotIsolation, query,
                         options, options_.query_visibility_cache);
  txns_.EndReadOnly(txn);
  return rows;
}

Result<FilterClause> Database::EqFilter(const std::string& cube,
                                        const std::string& dimension,
                                        const Value& value) const {
  auto schema = FindSchema(cube);
  if (schema == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  auto dim = schema->DimensionIndex(dimension);
  if (!dim.ok()) return dim.status();
  FilterClause clause;
  clause.dim = *dim;
  clause.op = FilterClause::Op::kEq;
  if (schema->dimensions()[*dim].is_string) {
    if (!value.is_string()) {
      return Status::InvalidArgument("dimension '" + dimension +
                                     "' filters need string values");
    }
    auto id = schema->dictionary(*dim)->Encode(value.as_string());
    if (!id.ok()) {
      // Never-ingested value: matches nothing. Encode as an impossible
      // coordinate (cardinality), which no record can carry.
      clause.values = {schema->dimensions()[*dim].cardinality};
      return clause;
    }
    clause.values = {*id};
  } else {
    if (!value.is_int64() || value.as_int64() < 0) {
      return Status::InvalidArgument("dimension '" + dimension +
                                     "' filters need non-negative integers");
    }
    clause.values = {static_cast<uint64_t>(value.as_int64())};
  }
  return clause;
}

Result<FilterClause> Database::RangeFilter(const std::string& cube,
                                           const std::string& dimension,
                                           uint64_t lo, uint64_t hi) const {
  auto schema = FindSchema(cube);
  if (schema == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  auto dim = schema->DimensionIndex(dimension);
  if (!dim.ok()) return dim.status();
  if (lo > hi) {
    return Status::InvalidArgument("range lo > hi");
  }
  FilterClause clause;
  clause.dim = *dim;
  clause.op = FilterClause::Op::kRange;
  clause.range_lo = lo;
  clause.range_hi = hi;
  return clause;
}

Result<FilterClause> Database::InFilter(
    const std::string& cube, const std::string& dimension,
    const std::vector<Value>& values) const {
  auto schema = FindSchema(cube);
  if (schema == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  auto dim = schema->DimensionIndex(dimension);
  if (!dim.ok()) return dim.status();
  FilterClause clause;
  clause.dim = *dim;
  clause.op = FilterClause::Op::kIn;
  const bool is_string = schema->dimensions()[*dim].is_string;
  for (const Value& value : values) {
    if (is_string) {
      if (!value.is_string()) {
        return Status::InvalidArgument("dimension '" + dimension +
                                       "' filters need string values");
      }
      auto id = schema->dictionary(*dim)->Encode(value.as_string());
      if (id.ok()) clause.values.push_back(*id);
    } else {
      if (!value.is_int64() || value.as_int64() < 0) {
        return Status::InvalidArgument(
            "dimension '" + dimension +
            "' filters need non-negative integers");
      }
      clause.values.push_back(static_cast<uint64_t>(value.as_int64()));
    }
  }
  if (clause.values.empty()) {
    // Nothing can match; encode an impossible coordinate.
    clause.values.push_back(schema->dimensions()[*dim].cardinality);
  }
  return clause;
}

Result<aosi::Epoch> Database::Checkpoint() {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("no data_dir configured");
  }
  const aosi::Epoch to = txns_.LCE();
  // Flush outside mutex_ (see SnapshotCubes): a flush round walks every
  // brick through the shard queues and can block on backpressure.
  for (const CubeRef& cube : SnapshotCubes()) {
    // Resume from what this cube has durably flushed, NOT from LSE: LSE
    // can be clamped below the manifest by an active snapshot, and
    // re-flushing that range would duplicate rows on recovery.
    const aosi::Epoch from = cube.flusher->ManifestLse();
    if (aosi::AtOrBefore(to, from)) continue;
    auto stats = cube.flusher->FlushRound(cube.table, from, to);
    if (!stats.ok()) return stats.status();
  }
  const aosi::Epoch lse = txns_.TryAdvanceLSE(to);
  PurgeAll();
  return lse;
}

PurgeStats Database::PurgeAll(PurgeMode mode) {
  const aosi::Epoch lse = txns_.LSE();
  PurgeStats total;
  // Purge outside mutex_ (see SnapshotCubes): brick rewrites run on the
  // shard queues and can block on backpressure.
  for (const CubeRef& cube : SnapshotCubes()) {
    const PurgeStats stats = cube.table->Purge(lse, mode);
    total.bricks_examined += stats.bricks_examined;
    total.bricks_rewritten += stats.bricks_rewritten;
    total.bricks_erased += stats.bricks_erased;
    total.records_removed += stats.records_removed;
  }
  return total;
}

Status Database::Recover() {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("no data_dir configured");
  }
  // Replay every cube, then truncate to the minimum recovered LSE so a
  // checkpoint that crashed between cubes cannot surface a half-flushed
  // transaction. Runs on the startup path, but still off mutex_ (see
  // SnapshotCubes): replay and truncation push work through the shard
  // queues and can block on backpressure.
  const std::vector<CubeRef> cubes = SnapshotCubes();
  aosi::Epoch min_lse = aosi::kEpochMax;
  bool any = false;
  for (const CubeRef& cube : cubes) {
    auto result = cube.flusher->Recover(cube.table);
    if (!result.ok()) return result.status();
    any = true;
    min_lse = aosi::MinEpoch(min_lse, result->lse);
  }
  if (!any) return Status::OK();
  for (const CubeRef& cube : cubes) {
    cube.table->TruncateAfter(min_lse);
  }
  txns_.RestoreAfterRecovery(
      aosi::SameEpoch(min_lse, aosi::kEpochMax) ? aosi::kNoEpoch : min_lse);
  return Status::OK();
}

uint64_t Database::TotalRecords() {
  MutexLock lock(mutex_);
  uint64_t n = 0;
  for (auto& [name, state] : cubes_) n += state.table->TotalRecords();
  return n;
}

size_t Database::DataMemoryUsage() {
  MutexLock lock(mutex_);
  size_t bytes = 0;
  for (auto& [name, state] : cubes_) bytes += state.table->DataMemoryUsage();
  return bytes;
}

size_t Database::HistoryMemoryUsage() {
  MutexLock lock(mutex_);
  size_t bytes = 0;
  for (auto& [name, state] : cubes_) {
    bytes += state.table->HistoryMemoryUsage();
  }
  return bytes;
}

std::vector<std::string> Database::CubeNames() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, state] : cubes_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace cubrick
