#include "query/materialize.h"

#include "common/ebr.h"
#include "query/executor.h"

namespace cubrick {

uint64_t MaterializeBrick(const Brick& brick, const aosi::Snapshot& snapshot,
                          ScanMode mode, const Query& query,
                          const MaterializeOptions& options,
                          std::vector<MaterializedRow>* out, bool use_cache) {
  if (out->size() >= options.limit) return 0;
  if (brick.num_records() == 0) return 0;
  if (!BrickIntersectsFilters(brick, query)) return 0;

  const CubeSchema& schema = brick.schema();
  // Reclamation pin for the whole materialization: the cached bitmap (and,
  // under concurrent purge, the brick's history snapshot) stay valid until
  // the guard dies.
  const ebr::Guard guard;
  // Same visibility entry point (and cache) as the aggregation executor.
  const VisibilityRef ref = VisibilityForScan(brick, snapshot, mode, use_cache);
  const Bitmap& visible = ref.bitmap();

  uint64_t produced = 0;
  for (size_t row = visible.FindNextSet(0);
       row < visible.size() && out->size() < options.limit;
       row = visible.FindNextSet(row + 1)) {
    bool matches = true;
    for (const auto& filter : query.filters) {
      if (!filter.Matches(brick.DimCoord(row, filter.dim))) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;

    MaterializedRow record;
    record.values.reserve(schema.num_columns());
    for (size_t d = 0; d < schema.num_dimensions(); ++d) {
      const uint64_t coord = brick.DimCoord(row, d);
      if (schema.dimensions()[d].is_string) {
        record.values.emplace_back(schema.dictionary(d)->Decode(coord).value());
      } else {
        record.values.emplace_back(static_cast<int64_t>(coord));
      }
    }
    for (size_t m = 0; m < schema.num_metrics(); ++m) {
      const MetricColumn& col = brick.metric(m);
      const size_t column_idx = schema.num_dimensions() + m;
      switch (col.type()) {
        case DataType::kInt64:
          record.values.emplace_back(col.GetInt64(row));
          break;
        case DataType::kDouble:
          record.values.emplace_back(col.GetDouble(row));
          break;
        case DataType::kString:
          record.values.emplace_back(
              schema.dictionary(column_idx)
                  ->Decode(static_cast<uint64_t>(col.GetInt64(row)))
                  .value());
          break;
      }
    }
    out->push_back(std::move(record));
    ++produced;
  }
  return produced;
}

}  // namespace cubrick
