// Record materialization (paper §III, footnote 1).
//
// "Record materialization is the process of converting the column-wise
// representation of a record into a more natural row-wise format." Scans
// normally stay columnar; materialization is the boundary operation that
// produces row-wise results (SELECT-style reads, exports, debugging),
// driven by the same visibility bitmaps as aggregations and decoding
// dimension coordinates back through the dictionaries.

#pragma once

#include <limits>

#include "aosi/epoch.h"
#include "query/query.h"
#include "storage/brick.h"
#include "storage/data_type.h"

namespace cubrick {

/// One materialized row: dimension values then metric values, in schema
/// order, with string columns decoded.
struct MaterializedRow {
  std::vector<Value> values;
};

struct MaterializeOptions {
  /// Stop after this many rows (rows are produced in physical order per
  /// brick; brick order is unspecified).
  uint64_t limit = std::numeric_limits<uint64_t>::max();
};

/// Materializes the visible-and-matching rows of one brick, appending to
/// `out` until options.limit rows are held. Returns the number appended.
/// `use_cache` enables the brick's visibility-bitmap cache (the bitmap is
/// read-only here, so results are identical either way).
uint64_t MaterializeBrick(const Brick& brick, const aosi::Snapshot& snapshot,
                          ScanMode mode, const Query& query,
                          const MaterializeOptions& options,
                          std::vector<MaterializedRow>* out,
                          bool use_cache = true);

}  // namespace cubrick
