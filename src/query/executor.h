// Brick scan executor (paper §III-C3, §VI-B).
//
// Scans carry a per-brick bitmap: one bit per row saying whether the row is
// visible to the reading transaction. Under Snapshot Isolation the bitmap is
// generated from the brick's epochs vector; under Read Uncommitted all rows
// pass. Filter evaluation clears more bits; rows cleared by concurrency
// control are never reintroduced.

#pragma once

#include <utility>
#include <vector>

#include "aosi/epoch.h"
#include "common/bitmap.h"
#include "query/query.h"
#include "storage/brick.h"

namespace cubrick::obs {
class MetricsRegistry;
}  // namespace cubrick::obs

namespace cubrick {

class ThreadPool;

/// True when the brick's dimension ranges can contain a matching record —
/// the granular-partitioning prune that skips bricks without touching rows.
bool BrickIntersectsFilters(const Brick& brick, const Query& query);

/// True when the brick's ranges are entirely inside every filter (a
/// partition-granular delete predicate fully covers it).
bool BrickCoveredByFilters(const Brick& brick, const Query& query);

/// A visibility bitmap for one brick scan: either borrowed from the brick's
/// cache (valid until the brick's next mutation, i.e. for the whole scan op
/// — see vis_cache.h) or owned because the cache missed and declined to
/// store. Scan code treats both uniformly and read-only.
class VisibilityRef {
 public:
  explicit VisibilityRef(const Bitmap* borrowed) : ptr_(borrowed) {}
  explicit VisibilityRef(Bitmap owned)
      : owned_(std::move(owned)), ptr_(&owned_) {}

  VisibilityRef(VisibilityRef&& other) noexcept
      : owned_(std::move(other.owned_)),
        ptr_(other.ptr_ == &other.owned_ ? &owned_ : other.ptr_) {}
  VisibilityRef(const VisibilityRef&) = delete;
  VisibilityRef& operator=(const VisibilityRef&) = delete;
  VisibilityRef& operator=(VisibilityRef&&) = delete;

  const Bitmap& bitmap() const { return *ptr_; }

 private:
  Bitmap owned_;
  const Bitmap* ptr_;
};

/// The single entry point for scan visibility (executor + materialize): the
/// mode-appropriate bitmap for `brick` under `snapshot`, served from the
/// brick's VisibilityCache when `use_cache` (publishing on miss), built
/// fresh otherwise. Records query.vis_cache_* instruments.
VisibilityRef VisibilityForScan(const Brick& brick,
                                const aosi::Snapshot& snapshot, ScanMode mode,
                                bool use_cache);

/// Scans one brick and accumulates into `result` (which must have been
/// constructed with query.aggs.size()). `use_cache` enables the brick's
/// visibility-bitmap cache (results are identical either way).
void ScanBrick(const Brick& brick, const aosi::Snapshot& snapshot,
               ScanMode mode, const Query& query, QueryResult* result,
               bool use_cache = true);

// --- Morsel-parallel scan pipeline (plan -> scan -> merge) -----------------
//
// Bricks are the natural morsel unit (granular partitioning already sizes
// them, cf. morsel-driven parallelism, Leis et al. SIGMOD 2014). The three
// steps below are what Table::Scan composes when its parallelism knob is
// > 1; each is independently testable. No shared mutable state exists
// inside the row loops: every worker scans into its own partial
// QueryResult, and only the final merge combines group-by maps.

/// Plan step: the subset of `candidates` that needs row work, in input
/// order. Bricks pruned here (empty, or ranges disjoint from the filters)
/// are tallied into query.bricks_pruned exactly as the serial path does.
std::vector<const Brick*> PlanMorsels(
    const std::vector<const Brick*>& candidates, const Query& query);

/// Scan step: fans `morsels` out over `pool` with up to `parallelism`
/// concurrent workers — the calling thread always participates, so
/// `parallelism - 1` pool tasks are spawned — and returns one partial
/// result per worker. Workers claim morsels from a shared atomic ticket,
/// so skew (one dense brick) cannot idle the rest of the crew. With
/// `parallelism <= 1` or a null pool this degenerates to a serial loop on
/// the calling thread.
std::vector<QueryResult> ScanMorsels(const std::vector<const Brick*>& morsels,
                                     const aosi::Snapshot& snapshot,
                                     ScanMode mode, const Query& query,
                                     ThreadPool* pool, size_t parallelism,
                                     bool use_cache = true);

/// Merge step: folds the worker partials into one result, recording the
/// fold's duration into query.parallel_merge_us.
QueryResult MergePartials(std::vector<QueryResult> partials, size_t num_aggs);

/// EXPLAIN-style account of how granular partitioning served a query.
struct ScanPlanStats {
  uint64_t bricks_total = 0;
  /// Bricks skipped because their ranges cannot intersect the filters —
  /// the indexed-access benefit of granular partitioning (§V-A).
  uint64_t bricks_pruned = 0;
  uint64_t bricks_scanned = 0;
  /// Filters that fully cover a brick's range are never evaluated per row.
  uint64_t filters_skipped_covered = 0;
  uint64_t rows_considered = 0;

  /// Adds this plan's tallies to the registry's "query.explain.*" counters
  /// (docs/OBSERVABILITY.md). Called by Table::ExplainScan.
  void PublishTo(obs::MetricsRegistry& reg) const;
};

/// Dry-runs the brick-level planning of `query` over one brick.
void ExplainBrick(const Brick& brick, const Query& query,
                  ScanPlanStats* stats);

}  // namespace cubrick
