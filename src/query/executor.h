// Brick scan executor (paper §III-C3, §VI-B).
//
// Scans carry a per-brick bitmap: one bit per row saying whether the row is
// visible to the reading transaction. Under Snapshot Isolation the bitmap is
// generated from the brick's epochs vector; under Read Uncommitted all rows
// pass. Filter evaluation clears more bits; rows cleared by concurrency
// control are never reintroduced.

#pragma once

#include "aosi/epoch.h"
#include "query/query.h"
#include "storage/brick.h"

namespace cubrick::obs {
class MetricsRegistry;
}  // namespace cubrick::obs

namespace cubrick {

/// True when the brick's dimension ranges can contain a matching record —
/// the granular-partitioning prune that skips bricks without touching rows.
bool BrickIntersectsFilters(const Brick& brick, const Query& query);

/// True when the brick's ranges are entirely inside every filter (a
/// partition-granular delete predicate fully covers it).
bool BrickCoveredByFilters(const Brick& brick, const Query& query);

/// Scans one brick and accumulates into `result` (which must have been
/// constructed with query.aggs.size()).
void ScanBrick(const Brick& brick, const aosi::Snapshot& snapshot,
               ScanMode mode, const Query& query, QueryResult* result);

/// EXPLAIN-style account of how granular partitioning served a query.
struct ScanPlanStats {
  uint64_t bricks_total = 0;
  /// Bricks skipped because their ranges cannot intersect the filters —
  /// the indexed-access benefit of granular partitioning (§V-A).
  uint64_t bricks_pruned = 0;
  uint64_t bricks_scanned = 0;
  /// Filters that fully cover a brick's range are never evaluated per row.
  uint64_t filters_skipped_covered = 0;
  uint64_t rows_considered = 0;

  /// Adds this plan's tallies to the registry's "query.explain.*" counters
  /// (docs/OBSERVABILITY.md). Called by Table::ExplainScan.
  void PublishTo(obs::MetricsRegistry& reg) const;
};

/// Dry-runs the brick-level planning of `query` over one brick.
void ExplainBrick(const Brick& brick, const Query& query,
                  ScanPlanStats* stats);

}  // namespace cubrick
