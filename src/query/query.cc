#include <algorithm>
#include <utility>

#include "query/query.h"

namespace cubrick {

void QueryResult::Merge(const QueryResult& other) {
  CUBRICK_CHECK(num_aggs_ == other.num_aggs_);
  for (const auto& [key, states] : other.groups_) {
    auto& mine = groups_[key];
    if (mine.empty()) mine.resize(num_aggs_);
    for (size_t i = 0; i < num_aggs_; ++i) {
      mine[i].Merge(states[i]);
    }
  }
}

std::vector<std::pair<QueryResult::GroupKey, double>> QueryResult::TopK(
    size_t agg_idx, AggSpec::Fn fn, size_t k) const {
  std::vector<std::pair<GroupKey, double>> ranked;
  ranked.reserve(groups_.size());
  for (const auto& [key, states] : groups_) {
    ranked.emplace_back(key, states[agg_idx].Finalize(fn));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

double QueryResult::Value(const GroupKey& key, size_t agg_idx,
                          AggSpec::Fn fn) const {
  auto it = groups_.find(key);
  if (it == groups_.end()) return 0.0;
  return it->second[agg_idx].Finalize(fn);
}

}  // namespace cubrick
