// Query model: filters over dimensions, aggregations over metrics,
// optional group-by (paper §V, §VI-B).
//
// Cubrick queries are OLAP aggregations: scan the cube, keep records whose
// dimension coordinates satisfy every filter, and fold metrics into
// aggregate functions, optionally grouped by dimension values. Filters are
// expressed over *encoded* coordinates (dictionary ids for string
// dimensions); the facade layer translates user-facing strings.

#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace cubrick {

/// Scan isolation mode (paper §VI-B): Snapshot Isolation uses the AOSI
/// visibility bitmap; Read Uncommitted is the best-effort baseline that
/// reads all physically present data.
enum class ScanMode : uint8_t { kSnapshotIsolation, kReadUncommitted };

/// A predicate over one dimension's encoded coordinate.
struct FilterClause {
  enum class Op : uint8_t { kEq, kIn, kRange };

  size_t dim = 0;
  Op op = Op::kEq;
  /// kEq: values[0]. kIn: any of values. kRange: [range_lo, range_hi].
  std::vector<uint64_t> values;
  uint64_t range_lo = 0;
  uint64_t range_hi = std::numeric_limits<uint64_t>::max();

  bool Matches(uint64_t coord) const {
    switch (op) {
      case Op::kEq:
        return coord == values[0];
      case Op::kIn:
        for (uint64_t v : values) {
          if (coord == v) return true;
        }
        return false;
      case Op::kRange:
        return coord >= range_lo && coord <= range_hi;
    }
    return false;
  }

  /// True when some coordinate in [lo, hi] can match — used to prune whole
  /// bricks by their per-dimension ranges (granular partitioning).
  bool Intersects(uint64_t lo, uint64_t hi) const {
    switch (op) {
      case Op::kEq:
        return values[0] >= lo && values[0] <= hi;
      case Op::kIn:
        for (uint64_t v : values) {
          if (v >= lo && v <= hi) return true;
        }
        return false;
      case Op::kRange:
        return range_lo <= hi && range_hi >= lo;
    }
    return false;
  }

  /// True when every coordinate in [lo, hi] matches — used to validate
  /// partition-granular deletes.
  bool Covers(uint64_t lo, uint64_t hi) const {
    switch (op) {
      case Op::kEq:
        return lo == hi && values[0] == lo;
      case Op::kIn:
        for (uint64_t c = lo; c <= hi; ++c) {
          if (!Matches(c)) return false;
        }
        return true;
      case Op::kRange:
        return range_lo <= lo && range_hi >= hi;
    }
    return false;
  }
};

/// Aggregate function over one metric. kCount ignores the metric index.
struct AggSpec {
  enum class Fn : uint8_t { kSum, kCount, kMin, kMax, kAvg };
  Fn fn = Fn::kSum;
  size_t metric = 0;
};

/// A full aggregation query.
struct Query {
  std::vector<FilterClause> filters;
  std::vector<size_t> group_by;  // dimension indexes
  std::vector<AggSpec> aggs;
};

/// Accumulator for one aggregate cell.
struct AggState {
  double sum = 0;
  uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Accumulate(double v) {
    sum += v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  /// Accumulates `v` exactly `n` times with one multiply. Only used where
  /// the folded sum is bit-identical to n serial adds — COUNT aggregation
  /// (v == 1.0, so the running sum is a small integer): a whole bitmap
  /// word's rows collapse into one popcount-sized call.
  void AccumulateRepeated(double v, uint64_t n) {
    sum += v * static_cast<double>(n);
    count += n;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  void Merge(const AggState& other) {
    sum += other.sum;
    count += other.count;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  double Finalize(AggSpec::Fn fn) const {
    switch (fn) {
      case AggSpec::Fn::kSum:
        return sum;
      case AggSpec::Fn::kCount:
        return static_cast<double>(count);
      case AggSpec::Fn::kMin:
        return min;
      case AggSpec::Fn::kMax:
        return max;
      case AggSpec::Fn::kAvg:
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    return 0.0;
  }
};

/// Partial or final result of a query: group key -> one state per agg.
/// Mergeable across bricks, shards and nodes.
class QueryResult {
 public:
  explicit QueryResult(size_t num_aggs = 0) : num_aggs_(num_aggs) {}

  using GroupKey = std::vector<uint64_t>;

  /// Accumulates `value` into agg `agg_idx` of group `key`.
  void Accumulate(const GroupKey& key, size_t agg_idx, double value) {
    auto& states = groups_[key];
    if (states.empty()) states.resize(num_aggs_);
    states[agg_idx].Accumulate(value);
  }

  /// Stable pointer to group `key`'s per-agg states, creating the group if
  /// absent. The pointer survives later insertions (std::map nodes do not
  /// move), which is what lets scan kernels memoize the current group
  /// across consecutive rows instead of re-walking the map per row.
  std::vector<AggState>* GroupStates(const GroupKey& key) {
    auto& states = groups_[key];
    if (states.empty()) states.resize(num_aggs_);
    return &states;
  }

  /// Folds fully-accumulated `states` into group `key` — the ungrouped scan
  /// fast path accumulates a whole brick into locals and merges once.
  void MergeGroup(const GroupKey& key, const std::vector<AggState>& states) {
    auto& dst = groups_[key];
    if (dst.empty()) dst.resize(num_aggs_);
    for (size_t a = 0; a < num_aggs_; ++a) dst[a].Merge(states[a]);
  }

  /// Merges a partial result (same query shape) into this one.
  void Merge(const QueryResult& other);

  size_t num_groups() const { return groups_.size(); }
  size_t num_aggs() const { return num_aggs_; }
  bool empty() const { return groups_.empty(); }

  const std::map<GroupKey, std::vector<AggState>>& groups() const {
    return groups_;
  }

  /// Finalized value of agg `agg_idx` for `key` under `fn`; 0 for a missing
  /// group with kSum/kCount semantics.
  double Value(const GroupKey& key, size_t agg_idx, AggSpec::Fn fn) const;

  /// Convenience for ungrouped queries: the single (empty-key) group.
  double Single(size_t agg_idx, AggSpec::Fn fn) const {
    return Value({}, agg_idx, fn);
  }

  /// The k groups with the largest finalized value of agg `agg_idx`
  /// (descending; ties broken by group key), e.g. "top 10 regions by
  /// revenue" for dashboards.
  std::vector<std::pair<GroupKey, double>> TopK(size_t agg_idx,
                                                AggSpec::Fn fn,
                                                size_t k) const;

 private:
  size_t num_aggs_;
  std::map<GroupKey, std::vector<AggState>> groups_;
};

}  // namespace cubrick
