#include "query/executor.h"

#include <atomic>
#include <utility>
#include <vector>

#include "aosi/checker_hook.h"
#include "aosi/vis_cache.h"
#include "aosi/visibility.h"
#include "common/ebr.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace cubrick {

namespace {

/// Per-brick scan instrumentation (docs/OBSERVABILITY.md, "query.*").
/// Resolved once; everything recorded at brick granularity so the row loop
/// itself stays untouched.
struct ScanInstruments {
  obs::Counter* bricks_scanned;
  obs::Counter* bricks_pruned;
  obs::Counter* rows_considered;
  obs::Counter* rows_scanned;
  obs::Histogram* bitmap_density_permille;
  obs::Histogram* visibility_us;
  obs::Histogram* filter_us;
  obs::Histogram* agg_us;
  obs::Histogram* worker_scan_us;
  obs::Histogram* parallel_merge_us;
  obs::Counter* vis_cache_hits;
  obs::Counter* vis_cache_misses;
  obs::Counter* vis_cache_evictions;
  obs::Counter* vis_cache_bypass;
  obs::Counter* vis_cache_publish_declined;
  obs::Counter* kernel_words_scanned;
  obs::Counter* kernel_words_skipped;
  obs::Counter* kernel_words_dense;
  obs::Histogram* kernel_dense_words_permille;
  obs::Counter* kernel_simd_words;
  obs::Counter* kernel_simd_fallback;
};

const ScanInstruments& Instruments() {
  static const ScanInstruments m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return ScanInstruments{
        reg.GetCounter("query.bricks_scanned"),
        reg.GetCounter("query.bricks_pruned"),
        reg.GetCounter("query.rows_considered"),
        reg.GetCounter("query.rows_scanned"),
        reg.GetHistogram("query.bitmap_density_permille"),
        reg.GetHistogram("query.visibility_us"),
        reg.GetHistogram("query.filter_us"),
        reg.GetHistogram("query.agg_us"),
        reg.GetHistogram("query.worker_scan_us"),
        reg.GetHistogram("query.parallel_merge_us"),
        reg.GetCounter("query.vis_cache_hits"),
        reg.GetCounter("query.vis_cache_misses"),
        reg.GetCounter("query.vis_cache_evictions"),
        reg.GetCounter("query.vis_cache_bypass"),
        reg.GetCounter("query.vis_cache_publish_declined"),
        reg.GetCounter("query.kernel_words_scanned"),
        reg.GetCounter("query.kernel_words_skipped"),
        reg.GetCounter("query.kernel_words_dense"),
        reg.GetHistogram("query.kernel_dense_words_permille"),
        reg.GetCounter("query.kernel_simd_words"),
        reg.GetCounter("query.kernel_simd_fallback"),
    };
  }();
  return m;
}

/// All 64 bits set — the "dense word" sentinel of the scan kernels. The
/// ragged last word of a bitmap never equals this (trailing bits are kept
/// zero), so dense fast paths never read past num_records.
constexpr uint64_t kDenseWord = ~0ULL;

/// One aggregate's metric read path, resolved once per brick. The ungrouped
/// fold pass branches on is_count/is_double once per WORD and then reads the
/// typed pointer directly (the per-word typed kernels); Fetch's per-row
/// dispatch only remains on the grouped path, where group-key derivation
/// interleaves with every value read anyway.
struct MetricAccessor {
  bool is_count = false;
  bool is_double = false;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;

  double Fetch(size_t row) const {
    if (is_count) return 1.0;
    return is_double ? doubles[row] : static_cast<double>(ints[row]);
  }
};

std::vector<MetricAccessor> ResolveAccessors(const Brick& brick,
                                             const Query& query) {
  std::vector<MetricAccessor> accessors;
  accessors.reserve(query.aggs.size());
  for (const auto& agg : query.aggs) {
    MetricAccessor acc;
    if (agg.fn == AggSpec::Fn::kCount) {
      acc.is_count = true;
    } else {
      const MetricColumn& col = brick.metric(agg.metric);
      acc.is_double = col.type() == DataType::kDouble;
      acc.ints = col.ints().data();
      acc.doubles = col.doubles().data();
    }
    accessors.push_back(acc);
  }
  return accessors;
}

/// [lo, hi] coordinate interval dimension `dim` spans inside `brick`.
void BrickDimBounds(const Brick& brick, size_t dim, uint64_t* lo,
                    uint64_t* hi) {
  const auto& def = brick.schema().dimensions()[dim];
  const uint64_t range_idx = brick.schema().RangeIndexOf(brick.bid(), dim);
  *lo = range_idx * def.range_size;
  const uint64_t end = *lo + def.range_size - 1;
  const uint64_t max_coord = def.cardinality - 1;
  *hi = end < max_coord ? end : max_coord;
}

}  // namespace

bool BrickIntersectsFilters(const Brick& brick, const Query& query) {
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (!filter.Intersects(lo, hi)) return false;
  }
  return true;
}

bool BrickCoveredByFilters(const Brick& brick, const Query& query) {
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (!filter.Covers(lo, hi)) return false;
  }
  return true;
}

void ScanPlanStats::PublishTo(obs::MetricsRegistry& reg) const {
  // EXPLAIN is interactive, not a hot path; no instrument caching.
  reg.GetCounter("query.explain.bricks_total")->Add(bricks_total);
  reg.GetCounter("query.explain.bricks_pruned")->Add(bricks_pruned);
  reg.GetCounter("query.explain.bricks_scanned")->Add(bricks_scanned);
  reg.GetCounter("query.explain.filters_skipped_covered")
      ->Add(filters_skipped_covered);
  reg.GetCounter("query.explain.rows_considered")->Add(rows_considered);
}

void ExplainBrick(const Brick& brick, const Query& query,
                  ScanPlanStats* stats) {
  ++stats->bricks_total;
  if (brick.num_records() == 0 || !BrickIntersectsFilters(brick, query)) {
    ++stats->bricks_pruned;
    return;
  }
  ++stats->bricks_scanned;
  stats->rows_considered += brick.num_records();
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (filter.Covers(lo, hi)) {
      ++stats->filters_skipped_covered;
    }
  }
}

VisibilityRef VisibilityForScan(const Brick& brick,
                                const aosi::Snapshot& snapshot, ScanMode mode,
                                bool use_cache) {
  // Defensive pin: scan entry points hold their own Guard, but helpers and
  // tests call this directly; nesting is a thread-local counter bump.
  const ebr::Guard guard;
  const bool ru = mode == ScanMode::kReadUncommitted;
  if (!use_cache) {
    return VisibilityRef(
        ru ? aosi::BuildReadUncommittedBitmap(brick.history())
           : aosi::BuildVisibilityBitmap(brick.history(), snapshot));
  }
  const ScanInstruments& ins = Instruments();
  aosi::VisibilityCache& cache = brick.vis_cache();
  const aosi::VisKey key =
      aosi::VisibilityCache::MakeKey(brick.history(), snapshot, ru);
  if (const Bitmap* hit = cache.Lookup(key)) {
    ins.vis_cache_hits->Add();
    return VisibilityRef(hit);
  }
  ins.vis_cache_misses->Add();
  Bitmap built = ru ? aosi::BuildReadUncommittedBitmap(brick.history())
                    : aosi::BuildVisibilityBitmap(brick.history(), snapshot);
  const auto outcome = cache.Publish(key, &built);
  if (outcome.evicted) ins.vis_cache_evictions->Add();
  if (outcome.published != nullptr) return VisibilityRef(outcome.published);
  // Decline path. With EBR retirement Publish never declines — this branch
  // is kept (and counted) so check_si can assert the backlog cliff stayed
  // gone rather than silently reappearing.
  ins.vis_cache_publish_declined->Add();
  ins.vis_cache_bypass->Add();
  return VisibilityRef(std::move(built));
}

void ScanBrick(const Brick& brick, const aosi::Snapshot& snapshot,
               ScanMode mode, const Query& query, QueryResult* result,
               bool use_cache) {
  // Reclamation pin for the whole brick scan: the visibility bitmap served
  // from the cache — and any history Rep a concurrent compaction displaces —
  // stays readable until this guard dies.
  const ebr::Guard guard;
  const ScanInstruments& ins = Instruments();
  if (brick.num_records() == 0 || !BrickIntersectsFilters(brick, query)) {
    ins.bricks_pruned->Add();
    return;
  }
  ins.bricks_scanned->Add();
  ins.rows_considered->Add(brick.num_records());

  // Concurrency-control pass: one bitmap per brick, memoized in the
  // brick's VisibilityCache when enabled.
  obs::ObsSpan cc_span("query.visibility", ins.visibility_us);
  VisibilityRef visible = VisibilityForScan(brick, snapshot, mode, use_cache);
  cc_span.Finish();
  const Bitmap* mask = &visible.bitmap();

  // Online-checker observation point (docs/CHECKING.md): report what this
  // SI scan's visibility mask admitted per epoch run, BEFORE the filter
  // pass narrows it and before the None() fast path skips empty bricks.
  // Cost when no hook is installed: one relaxed load.
  if (mode == ScanMode::kSnapshotIsolation) {
    if (aosi::CheckerHook* hook = aosi::GetCheckerHook();
        hook != nullptr && hook->ShouldSample(snapshot.epoch)) {
      // Bounded on purpose: the checker keeps at most kMaxObservedRuns
      // runs per sample, so decoding and popcounting a long history past
      // that bound would make sampled scans O(history) instead of O(1).
      bool truncated = false;
      const auto decoded =
          brick.history().DecodePrefix(aosi::kMaxObservedRuns, &truncated);
      std::vector<aosi::ObservedRun> observed;
      observed.reserve(decoded.size());
      for (const auto& run : decoded) {
        aosi::ObservedRun o;
        o.epoch = run.epoch;
        o.begin = run.begin;
        o.end = run.end;
        o.is_delete = run.is_delete;
        o.visible_rows =
            run.is_delete ? 0 : mask->CountSetInRange(run.begin, run.end);
        observed.push_back(o);
      }
      aosi::ScanObservation obs;
      obs.snapshot_epoch = snapshot.epoch;
      obs.deps = &snapshot.deps;
      obs.bid = brick.bid();
      obs.history_version = brick.history().version();
      obs.runs = observed.data();
      obs.num_runs = observed.size();
      obs.runs_truncated = truncated;
      obs.visible_total = mask->CountSet();
      hook->OnScanObservation(obs);
    }
  }
  if (mask->None()) return;

  // Filter pass: clear bits that fail a dimension predicate. Filters whose
  // clause already covers the brick's whole range are skipped (common with
  // range predicates aligned to granular partitioning). The pass is
  // copy-on-write: the visibility bitmap may be shared cache state, so the
  // first filter needing row work takes a private copy; fully-covered
  // queries never copy at all. Word-wise kernel: zero words are skipped,
  // dense words bulk-decode 64 coordinates and run the backend's
  // compare-to-bitmask kernel (common/simd.h), sparse words enumerate set
  // bits with ctz (integer-exact, so no cross-backend concern).
  obs::ObsSpan filter_span("query.filter", ins.filter_us);
  const simd::Kernels& kern = simd::ActiveKernels();
  const bool simd_active = kern.backend != simd::Backend::kScalar;
  uint64_t words_simd = 0;
  uint64_t words_fallback = 0;
  Bitmap filtered;
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (filter.Covers(lo, hi)) continue;
    if (mask != &filtered) {
      filtered = *mask;
      mask = &filtered;
    }
    const size_t num_words = filtered.num_words();
    uint64_t coords[64];
    for (size_t w = 0; w < num_words; ++w) {
      const uint64_t word = filtered.Word(w);
      if (word == 0) continue;
      const size_t base = w * 64;
      uint64_t out = word;
      if (word == kDenseWord) {
        // Dense words never overlap the ragged tail (SetWord masks trailing
        // bits), so decoding 64 consecutive rows is always in bounds.
        brick.DecodeDimCoords(base, 64, filter.dim, coords);
        switch (filter.op) {
          case FilterClause::Op::kEq:
            out = kern.filter_eq(coords, filter.values[0]);
            break;
          case FilterClause::Op::kRange:
            out = kern.filter_range(coords, filter.range_lo, filter.range_hi);
            break;
          case FilterClause::Op::kIn:
            out = kern.filter_in(coords, filter.values.data(),
                                 filter.values.size());
            break;
        }
        ++(simd_active ? words_simd : words_fallback);
      } else {
        uint64_t bits = word;
        while (bits != 0) {
          const size_t b = static_cast<size_t>(__builtin_ctzll(bits));
          bits &= bits - 1;
          if (!filter.Matches(brick.DimCoord(base + b, filter.dim))) {
            out &= ~(1ULL << b);
          }
        }
        ++words_fallback;
      }
      if (out != word) filtered.SetWord(w, out);
    }
  }
  filter_span.Finish();

  // Aggregation pass, word-wise over the final mask. Ungrouped folds run
  // through the per-word typed SIMD kernels: the is_count/is_double dispatch
  // happens once per word (not once per row), dense words fold a direct
  // column slice, sparse words ctz-compress the visible rows' values into a
  // gather buffer (pure data movement, identical on every backend) and fold
  // that. The fold order is the pinned contract in common/simd.h, so result
  // bits are identical whichever backend runs — proved by
  // tests/simd_kernel_test.cc.
  obs::ObsSpan agg_span("query.aggregate", ins.agg_us);
  const std::vector<MetricAccessor> accessors = ResolveAccessors(brick, query);
  const size_t num_words = mask->num_words();
  uint64_t rows_aggregated = 0;
  uint64_t words_skipped = 0;
  uint64_t words_dense = 0;
  if (query.group_by.empty()) {
    // Ungrouped fast path: fold the whole brick into local states (no map
    // walk anywhere in the loop), merge once at the end.
    bool need_values = false;
    for (const auto& acc : accessors) {
      if (!acc.is_count) need_values = true;
    }
    std::vector<AggState> locals(query.aggs.size());
    size_t rows[64];
    int64_t ibuf[64];
    double dbuf[64];
    for (size_t w = 0; w < num_words; ++w) {
      const uint64_t word = mask->Word(w);
      if (word == 0) {
        ++words_skipped;
        continue;
      }
      const size_t base = w * 64;
      const auto word_rows =
          static_cast<uint64_t>(__builtin_popcountll(word));
      rows_aggregated += word_rows;
      const bool dense = word == kDenseWord;
      if (dense) ++words_dense;
      size_t num_rows = 0;
      if (need_values && !dense) {
        // Compress the visible row indexes once; every accessor gathers
        // from the same list.
        uint64_t bits = word;
        while (bits != 0) {
          const size_t b = static_cast<size_t>(__builtin_ctzll(bits));
          bits &= bits - 1;
          rows[num_rows++] = base + b;
        }
      }
      for (size_t a = 0; a < accessors.size(); ++a) {
        const MetricAccessor& acc = accessors[a];
        AggState& st = locals[a];
        if (acc.is_count) {
          // COUNT needs no row values: one popcount per word.
          st.AccumulateRepeated(1.0, word_rows);
        } else if (acc.is_double) {
          const double* v;
          if (dense) {
            v = acc.doubles + base;
          } else {
            for (size_t i = 0; i < num_rows; ++i) dbuf[i] = acc.doubles[rows[i]];
            v = dbuf;
          }
          double s, mn, mx;
          kern.fold_double(v, word_rows, &s, &mn, &mx);
          st.sum += s;
          st.count += word_rows;
          if (mn < st.min) st.min = mn;
          if (mx > st.max) st.max = mx;
        } else {
          const int64_t* v;
          if (dense) {
            v = acc.ints + base;
          } else {
            for (size_t i = 0; i < num_rows; ++i) ibuf[i] = acc.ints[rows[i]];
            v = ibuf;
          }
          uint64_t s;
          int64_t mn, mx;
          kern.fold_int64(v, word_rows, &s, &mn, &mx);
          // The exact wrapping word sum converts to double exactly once.
          st.sum += static_cast<double>(static_cast<int64_t>(s));
          st.count += word_rows;
          const double mnd = static_cast<double>(mn);
          const double mxd = static_cast<double>(mx);
          if (mnd < st.min) st.min = mnd;
          if (mxd > st.max) st.max = mxd;
        }
      }
      if (need_values) ++(simd_active ? words_simd : words_fallback);
    }
    if (rows_aggregated > 0) {
      result->MergeGroup(QueryResult::GroupKey(), locals);
    }
  } else {
    // Grouped path: per-row accumulation with current-group memoization —
    // granular partitioning clusters group-by coordinates, so consecutive
    // rows usually share a key and skip the map walk. Dense words take a
    // straight 64-row loop (no ctz chain); sparse words enumerate set bits.
    // Always a per-row scalar path (group keys interleave with values), so
    // every word here counts as kernel_simd_fallback.
    QueryResult::GroupKey key(query.group_by.size());
    QueryResult::GroupKey prev_key;
    std::vector<AggState>* states = nullptr;
    const auto accumulate_row = [&](size_t row) {
      for (size_t g = 0; g < query.group_by.size(); ++g) {
        key[g] = brick.DimCoord(row, query.group_by[g]);
      }
      if (states == nullptr || key != prev_key) {
        states = result->GroupStates(key);
        prev_key = key;
      }
      for (size_t a = 0; a < accessors.size(); ++a) {
        (*states)[a].Accumulate(accessors[a].Fetch(row));
      }
    };
    for (size_t w = 0; w < num_words; ++w) {
      uint64_t bits = mask->Word(w);
      if (bits == 0) {
        ++words_skipped;
        continue;
      }
      const size_t base = w * 64;
      ++words_fallback;
      if (bits == kDenseWord) {
        ++words_dense;
        rows_aggregated += 64;
        for (size_t b = 0; b < 64; ++b) {
          accumulate_row(base + b);
        }
        continue;
      }
      while (bits != 0) {
        const size_t b = static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        ++rows_aggregated;
        accumulate_row(base + b);
      }
    }
  }
  agg_span.Finish();
  ins.kernel_words_scanned->Add(num_words);
  ins.kernel_words_skipped->Add(words_skipped);
  ins.kernel_words_dense->Add(words_dense);
  ins.kernel_simd_words->Add(words_simd);
  ins.kernel_simd_fallback->Add(words_fallback);
  if (num_words > 0) {
    ins.kernel_dense_words_permille->Record(words_dense * 1000 / num_words);
  }
  ins.rows_scanned->Add(rows_aggregated);
  // Post-CC+filter visibility density of this brick, in rows per thousand:
  // how much of the brick the snapshot (and filters) let through. A
  // histogram (not a gauge): concurrent morsel workers each record their
  // own brick, and the distribution is what the density is for.
  ins.bitmap_density_permille->Record(rows_aggregated * 1000 /
                                      brick.num_records());
}

std::vector<const Brick*> PlanMorsels(
    const std::vector<const Brick*>& candidates, const Query& query) {
  const ScanInstruments& ins = Instruments();
  std::vector<const Brick*> morsels;
  morsels.reserve(candidates.size());
  for (const Brick* brick : candidates) {
    if (brick->num_records() == 0 || !BrickIntersectsFilters(*brick, query)) {
      // Same prune accounting as the serial ScanBrick fast path; pruned
      // bricks never become tasks, so the pool only sees real work.
      ins.bricks_pruned->Add();
      continue;
    }
    morsels.push_back(brick);
  }
  return morsels;
}

std::vector<QueryResult> ScanMorsels(const std::vector<const Brick*>& morsels,
                                     const aosi::Snapshot& snapshot,
                                     ScanMode mode, const Query& query,
                                     ThreadPool* pool, size_t parallelism,
                                     bool use_cache) {
  const ScanInstruments& ins = Instruments();
  size_t workers = parallelism == 0 ? 1 : parallelism;
  if (workers > morsels.size()) {
    workers = morsels.empty() ? 1 : morsels.size();
  }
  std::vector<QueryResult> partials(workers, QueryResult(query.aggs.size()));
  if (morsels.empty()) return partials;
  if (workers == 1 || pool == nullptr) {
    for (const Brick* brick : morsels) {
      ScanBrick(*brick, snapshot, mode, query, &partials[0], use_cache);
    }
    return partials;
  }

  std::atomic<size_t> next{0};
  auto scan_worker = [&](size_t w) {
    obs::ObsSpan span("query.worker_scan", ins.worker_scan_us);
    QueryResult* out = &partials[w];
    while (true) {
      // The brick data itself was published to the pool threads by the
      // task-handoff mutexes in ThreadPool::Submit/PopTask.
      // relaxed: the ticket only partitions disjoint morsels; no data rides on it
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= morsels.size()) break;
      ScanBrick(*morsels[i], snapshot, mode, query, out, use_cache);
    }
  };

  TaskGroup group(pool);
  for (size_t w = 1; w < workers; ++w) {
    group.Run([&scan_worker, w] { scan_worker(w); });
  }
  scan_worker(0);  // the calling thread is always worker 0
  group.Wait();
  return partials;
}

QueryResult MergePartials(std::vector<QueryResult> partials,
                          size_t num_aggs) {
  const ScanInstruments& ins = Instruments();
  obs::ObsSpan span("query.parallel_merge", ins.parallel_merge_us);
  QueryResult result(num_aggs);
  for (const QueryResult& partial : partials) {
    result.Merge(partial);
  }
  return result;
}

}  // namespace cubrick
