#include "query/executor.h"

#include "aosi/visibility.h"

namespace cubrick {

namespace {

/// [lo, hi] coordinate interval dimension `dim` spans inside `brick`.
void BrickDimBounds(const Brick& brick, size_t dim, uint64_t* lo,
                    uint64_t* hi) {
  const auto& def = brick.schema().dimensions()[dim];
  const uint64_t range_idx = brick.schema().RangeIndexOf(brick.bid(), dim);
  *lo = range_idx * def.range_size;
  const uint64_t end = *lo + def.range_size - 1;
  const uint64_t max_coord = def.cardinality - 1;
  *hi = end < max_coord ? end : max_coord;
}

}  // namespace

bool BrickIntersectsFilters(const Brick& brick, const Query& query) {
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (!filter.Intersects(lo, hi)) return false;
  }
  return true;
}

bool BrickCoveredByFilters(const Brick& brick, const Query& query) {
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (!filter.Covers(lo, hi)) return false;
  }
  return true;
}

void ExplainBrick(const Brick& brick, const Query& query,
                  ScanPlanStats* stats) {
  ++stats->bricks_total;
  if (brick.num_records() == 0 || !BrickIntersectsFilters(brick, query)) {
    ++stats->bricks_pruned;
    return;
  }
  ++stats->bricks_scanned;
  stats->rows_considered += brick.num_records();
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (filter.Covers(lo, hi)) {
      ++stats->filters_skipped_covered;
    }
  }
}

void ScanBrick(const Brick& brick, const aosi::Snapshot& snapshot,
               ScanMode mode, const Query& query, QueryResult* result) {
  CUBRICK_CHECK(result->num_aggs() == query.aggs.size());
  if (brick.num_records() == 0) return;
  if (!BrickIntersectsFilters(brick, query)) return;

  // Concurrency-control pass: one bitmap per brick.
  Bitmap visible =
      mode == ScanMode::kSnapshotIsolation
          ? aosi::BuildVisibilityBitmap(brick.history(), snapshot)
          : aosi::BuildReadUncommittedBitmap(brick.history());
  if (visible.None()) return;

  // Filter pass: clear bits that fail a dimension predicate. Filters whose
  // clause already covers the brick's whole range are skipped (common with
  // range predicates aligned to granular partitioning).
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (filter.Covers(lo, hi)) continue;
    for (size_t row = visible.FindNextSet(0); row < visible.size();
         row = visible.FindNextSet(row + 1)) {
      if (!filter.Matches(brick.DimCoord(row, filter.dim))) {
        visible.Clear(row);
      }
    }
  }

  // Aggregation pass.
  QueryResult::GroupKey key(query.group_by.size());
  visible.ForEachSet([&](size_t row) {
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      key[g] = brick.DimCoord(row, query.group_by[g]);
    }
    for (size_t a = 0; a < query.aggs.size(); ++a) {
      const AggSpec& agg = query.aggs[a];
      const double v = agg.fn == AggSpec::Fn::kCount
                           ? 1.0
                           : brick.metric(agg.metric).GetAsDouble(row);
      result->Accumulate(key, a, v);
    }
  });
}

}  // namespace cubrick
