#include "query/executor.h"

#include <atomic>

#include "aosi/visibility.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace cubrick {

namespace {

/// Per-brick scan instrumentation (docs/OBSERVABILITY.md, "query.*").
/// Resolved once; everything recorded at brick granularity so the row loop
/// itself stays untouched.
struct ScanInstruments {
  obs::Counter* bricks_scanned;
  obs::Counter* bricks_pruned;
  obs::Counter* rows_considered;
  obs::Counter* rows_scanned;
  obs::Histogram* bitmap_density_permille;
  obs::Histogram* visibility_us;
  obs::Histogram* filter_us;
  obs::Histogram* agg_us;
  obs::Histogram* worker_scan_us;
  obs::Histogram* parallel_merge_us;
};

const ScanInstruments& Instruments() {
  static const ScanInstruments m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return ScanInstruments{
        reg.GetCounter("query.bricks_scanned"),
        reg.GetCounter("query.bricks_pruned"),
        reg.GetCounter("query.rows_considered"),
        reg.GetCounter("query.rows_scanned"),
        reg.GetHistogram("query.bitmap_density_permille"),
        reg.GetHistogram("query.visibility_us"),
        reg.GetHistogram("query.filter_us"),
        reg.GetHistogram("query.agg_us"),
        reg.GetHistogram("query.worker_scan_us"),
        reg.GetHistogram("query.parallel_merge_us"),
    };
  }();
  return m;
}

/// [lo, hi] coordinate interval dimension `dim` spans inside `brick`.
void BrickDimBounds(const Brick& brick, size_t dim, uint64_t* lo,
                    uint64_t* hi) {
  const auto& def = brick.schema().dimensions()[dim];
  const uint64_t range_idx = brick.schema().RangeIndexOf(brick.bid(), dim);
  *lo = range_idx * def.range_size;
  const uint64_t end = *lo + def.range_size - 1;
  const uint64_t max_coord = def.cardinality - 1;
  *hi = end < max_coord ? end : max_coord;
}

}  // namespace

bool BrickIntersectsFilters(const Brick& brick, const Query& query) {
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (!filter.Intersects(lo, hi)) return false;
  }
  return true;
}

bool BrickCoveredByFilters(const Brick& brick, const Query& query) {
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (!filter.Covers(lo, hi)) return false;
  }
  return true;
}

void ScanPlanStats::PublishTo(obs::MetricsRegistry& reg) const {
  // EXPLAIN is interactive, not a hot path; no instrument caching.
  reg.GetCounter("query.explain.bricks_total")->Add(bricks_total);
  reg.GetCounter("query.explain.bricks_pruned")->Add(bricks_pruned);
  reg.GetCounter("query.explain.bricks_scanned")->Add(bricks_scanned);
  reg.GetCounter("query.explain.filters_skipped_covered")
      ->Add(filters_skipped_covered);
  reg.GetCounter("query.explain.rows_considered")->Add(rows_considered);
}

void ExplainBrick(const Brick& brick, const Query& query,
                  ScanPlanStats* stats) {
  ++stats->bricks_total;
  if (brick.num_records() == 0 || !BrickIntersectsFilters(brick, query)) {
    ++stats->bricks_pruned;
    return;
  }
  ++stats->bricks_scanned;
  stats->rows_considered += brick.num_records();
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (filter.Covers(lo, hi)) {
      ++stats->filters_skipped_covered;
    }
  }
}

void ScanBrick(const Brick& brick, const aosi::Snapshot& snapshot,
               ScanMode mode, const Query& query, QueryResult* result) {
  CUBRICK_CHECK(result->num_aggs() == query.aggs.size());
  const ScanInstruments& ins = Instruments();
  if (brick.num_records() == 0 || !BrickIntersectsFilters(brick, query)) {
    ins.bricks_pruned->Add();
    return;
  }
  ins.bricks_scanned->Add();
  ins.rows_considered->Add(brick.num_records());

  // Concurrency-control pass: one bitmap per brick.
  obs::ObsSpan cc_span("query.visibility", ins.visibility_us);
  Bitmap visible =
      mode == ScanMode::kSnapshotIsolation
          ? aosi::BuildVisibilityBitmap(brick.history(), snapshot)
          : aosi::BuildReadUncommittedBitmap(brick.history());
  cc_span.Finish();
  if (visible.None()) return;

  // Filter pass: clear bits that fail a dimension predicate. Filters whose
  // clause already covers the brick's whole range are skipped (common with
  // range predicates aligned to granular partitioning).
  obs::ObsSpan filter_span("query.filter", ins.filter_us);
  for (const auto& filter : query.filters) {
    uint64_t lo = 0, hi = 0;
    BrickDimBounds(brick, filter.dim, &lo, &hi);
    if (filter.Covers(lo, hi)) continue;
    for (size_t row = visible.FindNextSet(0); row < visible.size();
         row = visible.FindNextSet(row + 1)) {
      if (!filter.Matches(brick.DimCoord(row, filter.dim))) {
        visible.Clear(row);
      }
    }
  }
  filter_span.Finish();

  // Aggregation pass.
  obs::ObsSpan agg_span("query.aggregate", ins.agg_us);
  QueryResult::GroupKey key(query.group_by.size());
  uint64_t rows_aggregated = 0;
  visible.ForEachSet([&](size_t row) {
    ++rows_aggregated;
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      key[g] = brick.DimCoord(row, query.group_by[g]);
    }
    for (size_t a = 0; a < query.aggs.size(); ++a) {
      const AggSpec& agg = query.aggs[a];
      const double v = agg.fn == AggSpec::Fn::kCount
                           ? 1.0
                           : brick.metric(agg.metric).GetAsDouble(row);
      result->Accumulate(key, a, v);
    }
  });
  agg_span.Finish();
  ins.rows_scanned->Add(rows_aggregated);
  // Post-CC+filter visibility density of this brick, in rows per thousand:
  // how much of the brick the snapshot (and filters) let through. A
  // histogram (not a gauge): concurrent morsel workers each record their
  // own brick, and the distribution is what the density is for.
  ins.bitmap_density_permille->Record(rows_aggregated * 1000 /
                                      brick.num_records());
}

std::vector<const Brick*> PlanMorsels(
    const std::vector<const Brick*>& candidates, const Query& query) {
  const ScanInstruments& ins = Instruments();
  std::vector<const Brick*> morsels;
  morsels.reserve(candidates.size());
  for (const Brick* brick : candidates) {
    if (brick->num_records() == 0 || !BrickIntersectsFilters(*brick, query)) {
      // Same prune accounting as the serial ScanBrick fast path; pruned
      // bricks never become tasks, so the pool only sees real work.
      ins.bricks_pruned->Add();
      continue;
    }
    morsels.push_back(brick);
  }
  return morsels;
}

std::vector<QueryResult> ScanMorsels(const std::vector<const Brick*>& morsels,
                                     const aosi::Snapshot& snapshot,
                                     ScanMode mode, const Query& query,
                                     ThreadPool* pool, size_t parallelism) {
  const ScanInstruments& ins = Instruments();
  size_t workers = parallelism == 0 ? 1 : parallelism;
  if (workers > morsels.size()) {
    workers = morsels.empty() ? 1 : morsels.size();
  }
  std::vector<QueryResult> partials(workers, QueryResult(query.aggs.size()));
  if (morsels.empty()) return partials;
  if (workers == 1 || pool == nullptr) {
    for (const Brick* brick : morsels) {
      ScanBrick(*brick, snapshot, mode, query, &partials[0]);
    }
    return partials;
  }

  std::atomic<size_t> next{0};
  auto scan_worker = [&](size_t w) {
    obs::ObsSpan span("query.worker_scan", ins.worker_scan_us);
    QueryResult* out = &partials[w];
    while (true) {
      // The brick data itself was published to the pool threads by the
      // task-handoff mutexes in ThreadPool::Submit/PopTask.
      // relaxed: the ticket only partitions disjoint morsels; no data rides on it
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= morsels.size()) break;
      ScanBrick(*morsels[i], snapshot, mode, query, out);
    }
  };

  TaskGroup group(pool);
  for (size_t w = 1; w < workers; ++w) {
    group.Run([&scan_worker, w] { scan_worker(w); });
  }
  scan_worker(0);  // the calling thread is always worker 0
  group.Wait();
  return partials;
}

QueryResult MergePartials(std::vector<QueryResult> partials,
                          size_t num_aggs) {
  const ScanInstruments& ins = Instruments();
  obs::ObsSpan span("query.parallel_merge", ins.parallel_merge_us);
  QueryResult result(num_aggs);
  for (const QueryResult& partial : partials) {
    result.Merge(partial);
  }
  return result;
}

}  // namespace cubrick
