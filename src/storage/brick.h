// Brick: one materialized partition of a cube (paper §V-A).
//
// A brick stores the records falling into one range per dimension. Data is
// column-wise, unordered and append-only: dimension offsets live in a single
// bit-packed bess vector, metrics in one vector per column. Attached to each
// brick is its AOSI epochs vector, tracking which transaction appended which
// record range and any partition-delete markers.
//
// Thread-compatibility: a brick is owned by exactly one shard thread
// (paper §V-B); all mutations and scans are applied by that thread, so no
// internal locking exists.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "aosi/epoch_vector.h"
#include "aosi/purge.h"
#include "aosi/vis_cache.h"
#include "common/status.h"
#include "storage/metric_column.h"
#include "storage/bess_column.h"
#include "storage/schema.h"

namespace cubrick {

/// Column-major staging buffer of records already encoded for one brick:
/// dimension offsets-within-range plus metric values.
struct EncodedBatch {
  uint64_t num_rows = 0;
  /// [dimension][row] — offset within the brick's range.
  std::vector<std::vector<uint64_t>> dim_offsets;
  /// [metric][row] — used for kInt64 and dictionary-encoded kString metrics.
  std::vector<std::vector<int64_t>> metric_ints;
  /// [metric][row] — used for kDouble metrics.
  std::vector<std::vector<double>> metric_doubles;

  explicit EncodedBatch(const CubeSchema& schema)
      : dim_offsets(schema.num_dimensions()),
        metric_ints(schema.num_metrics()),
        metric_doubles(schema.num_metrics()) {}
};

class Brick {
 public:
  Brick(std::shared_ptr<const CubeSchema> schema, Bid bid);

  Bid bid() const { return bid_; }
  const CubeSchema& schema() const { return *schema_; }

  /// Appends a batch stamped with `epoch`. Batch columns must be rectangular.
  void AppendBatch(aosi::Epoch epoch, const EncodedBatch& batch);

  /// Marks the whole brick deleted as of `epoch` (§III-C2). Data stays until
  /// purge physically removes it.
  void MarkDeleted(aosi::Epoch epoch);

  uint64_t num_records() const { return history_.num_records(); }

  /// Global encoded coordinate of dimension `dim` for `row` (range base +
  /// stored offset).
  uint64_t DimCoord(uint64_t row, size_t dim) const {
    return range_base_[dim] + bess_.Get(row, dim);
  }

  /// Bulk DimCoord: decodes `count` consecutive coordinates of `dim`
  /// starting at `row_begin` into `out` (BessColumn::DecodeDim plus the
  /// range base). The executor's SIMD filter path decodes one visibility
  /// word (64 rows) at a time through this.
  void DecodeDimCoords(uint64_t row_begin, uint64_t count, size_t dim,
                       uint64_t* out) const {
    bess_.DecodeDim(row_begin, count, dim, out);
    const uint64_t base = range_base_[dim];
    for (uint64_t i = 0; i < count; ++i) out[i] += base;
  }

  const MetricColumn& metric(size_t m) const { return metrics_[m]; }
  const BessColumn& bess() const { return bess_; }
  const aosi::EpochVector& history() const { return history_; }

  /// The brick's visibility-bitmap cache. Mutable scan-side state: scans
  /// take const bricks, publishing a memoized bitmap does not change what
  /// any reader observes. Every mutator above clears it at the shard
  /// thread's quiescent point (see vis_cache.h).
  aosi::VisibilityCache& vis_cache() const { return vis_cache_; }

  /// Applies a purge/rollback compaction plan: rebuilds every column keeping
  /// only plan.keep rows and installs plan.new_history. The rebuild happens
  /// into fresh vectors which then replace the old ones, mirroring the
  /// paper's new-partition-then-atomic-swap scheme.
  void ApplyCompaction(const aosi::CompactionPlan& plan);

  // --- Phased compaction (PR 8: purge concurrent with scans) --------------
  //
  // Concurrent purge splits ApplyCompaction so only two cheap steps occupy
  // the shard thread: copying the raw columns out and installing the
  // rebuilt ones back in. The expensive keep-bitmap row filtering runs
  // off-thread in between, against the copies. Both steps validate the
  // history version the plan was built from, so a mutation that slips
  // between phases makes the round replan instead of installing stale data.

  /// Phase 3 (shard op): copies the raw columns out iff the history is
  /// still at `expected_version`. Returns false — leaving the outputs
  /// untouched — when a mutation invalidated the caller's plan.
  bool SnapshotColumnsForCompaction(uint64_t expected_version,
                                    std::optional<BessColumn>* bess,
                                    std::vector<MetricColumn>* metrics) const;

  /// Phase 5 (shard op): installs off-thread-rebuilt columns and the plan's
  /// history iff the history is still at `expected_version` (no mutation
  /// since the columns were copied). O(history entries), not O(rows).
  bool InstallCompaction(uint64_t expected_version,
                         const aosi::CompactionPlan& plan,
                         BessColumn new_bess,
                         std::vector<MetricColumn> new_metrics);

  /// Data bytes (bess + metrics). Excludes the epochs vector.
  size_t DataMemoryUsage() const;

  /// Bytes held by the AOSI epochs vector — the protocol's overhead.
  size_t HistoryMemoryUsage() const { return history_.MemoryUsage(); }

 private:
  std::shared_ptr<const CubeSchema> schema_;
  Bid bid_;
  /// Per-dimension first encoded coordinate of this brick's range.
  std::vector<uint64_t> range_base_;
  BessColumn bess_;
  std::vector<MetricColumn> metrics_;
  aosi::EpochVector history_;
  mutable aosi::VisibilityCache vis_cache_;
};

}  // namespace cubrick
