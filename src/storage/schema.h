// Cube schema and Granular Partitioning (paper §V-A, ref [5]).
//
// A cube is the Cubrick equivalent of a table. Every column is either a
// dimension or a metric. Each dimension declares its cardinality and a range
// size; the overlap of one range per dimension forms a partition (brick).
// A brick id (bid) is the bitwise concatenation of the per-dimension range
// indexes, giving amortized O(1) record->partition mapping and indexed
// access through any combination of dimensions.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/data_type.h"
#include "storage/dictionary.h"

namespace cubrick {

/// Brick id: spatial position in the conceptual d-dimensional range grid.
using Bid = uint64_t;

/// One dimension column: bounded-cardinality coordinate.
struct DimensionDef {
  std::string name;
  /// Upper bound (exclusive) of encoded values; must be declared at cube
  /// creation time.
  uint64_t cardinality = 0;
  /// Number of consecutive encoded values grouped into one range.
  uint64_t range_size = 1;
  /// String dimensions are dictionary-encoded at ingestion.
  bool is_string = false;

  uint64_t num_ranges() const {
    return (cardinality + range_size - 1) / range_size;
  }
};

/// One metric column: a numeric measure.
struct MetricDef {
  std::string name;
  DataType type = DataType::kInt64;
};

/// Immutable description of a cube plus the derived bid/bess bit layouts.
class CubeSchema {
 public:
  /// Validates definitions and precomputes bit layouts. Fails when the bid
  /// would not fit in 64 bits, a cardinality/range size is zero, a name is
  /// duplicated, or a metric is declared as string.
  static Result<std::shared_ptr<CubeSchema>> Make(
      std::string cube_name, std::vector<DimensionDef> dimensions,
      std::vector<MetricDef> metrics);

  const std::string& cube_name() const { return cube_name_; }
  const std::vector<DimensionDef>& dimensions() const { return dimensions_; }
  const std::vector<MetricDef>& metrics() const { return metrics_; }
  size_t num_dimensions() const { return dimensions_.size(); }
  size_t num_metrics() const { return metrics_.size(); }
  size_t num_columns() const { return dimensions_.size() + metrics_.size(); }

  /// Index of a dimension / metric by name, or NotFound.
  Result<size_t> DimensionIndex(const std::string& name) const;
  Result<size_t> MetricIndex(const std::string& name) const;

  /// Bits the bid occupies (sum of per-dimension range-index widths).
  uint32_t bid_bits() const { return bid_bits_; }

  /// Total number of addressable bricks (product of num_ranges, capped by
  /// the bid bit layout).
  uint64_t MaxBricks() const;

  /// Computes the bid for a record's encoded dimension coordinates.
  /// Coordinates must be < cardinality for each dimension.
  Result<Bid> BidFor(const std::vector<uint64_t>& coords) const;

  /// Extracts the range index of dimension `dim` from a bid.
  uint64_t RangeIndexOf(Bid bid, size_t dim) const;

  /// Bits needed to store an offset-within-range for dimension `dim` in the
  /// bess vector.
  uint32_t bess_bits(size_t dim) const { return bess_bits_[dim]; }
  /// Total bess bits per record.
  uint32_t bess_bits_per_record() const { return bess_bits_total_; }

  /// Splits an encoded coordinate into (range index, offset-within-range).
  void SplitCoord(size_t dim, uint64_t coord, uint64_t* range_idx,
                  uint64_t* offset) const {
    const uint64_t rs = dimensions_[dim].range_size;
    *range_idx = coord / rs;
    *offset = coord % rs;
  }

  /// The dictionary for string dimension/metric columns; nullptr for
  /// numeric columns. Index is over all columns: dims then metrics.
  StringDictionary* dictionary(size_t column_idx) const {
    return dictionaries_[column_idx].get();
  }

 private:
  CubeSchema() = default;

  std::string cube_name_;
  std::vector<DimensionDef> dimensions_;
  std::vector<MetricDef> metrics_;
  /// Per-dimension: number of bits its range index occupies in the bid.
  std::vector<uint32_t> bid_dim_bits_;
  /// Per-dimension: bit offset of its range index within the bid.
  std::vector<uint32_t> bid_dim_shift_;
  uint32_t bid_bits_ = 0;
  std::vector<uint32_t> bess_bits_;
  uint32_t bess_bits_total_ = 0;
  /// One per column (dims then metrics); null for numeric columns.
  std::vector<std::unique_ptr<StringDictionary>> dictionaries_;
};

/// Bits required to represent values in [0, n); 0 when n <= 1.
uint32_t BitsForCount(uint64_t n);

}  // namespace cubrick
