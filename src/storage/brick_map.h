// Brick map: the collection of materialized bricks of one shard (§V-A).
//
// Bricks are sparse — only materialized when a record lands in their range.
// The map indexes them by bid. Like Brick itself, a BrickMap belongs to a
// single shard thread and is unsynchronized.

#pragma once

#include <memory>
#include <unordered_map>

#include "common/ebr.h"
#include "storage/brick.h"

namespace cubrick {

class BrickMap {
 public:
  explicit BrickMap(std::shared_ptr<const CubeSchema> schema)
      : schema_(std::move(schema)) {}

  /// Returns the brick for `bid`, materializing it on first touch.
  Brick& GetOrCreate(Bid bid) {
    auto it = bricks_.find(bid);
    if (it == bricks_.end()) {
      it = bricks_.emplace(bid, std::make_unique<Brick>(schema_, bid)).first;
    }
    return *it->second;
  }

  /// Returns the brick for `bid` or nullptr when not materialized.
  Brick* Find(Bid bid) {
    auto it = bricks_.find(bid);
    return it == bricks_.end() ? nullptr : it->second.get();
  }
  const Brick* Find(Bid bid) const {
    auto it = bricks_.find(bid);
    return it == bricks_.end() ? nullptr : it->second.get();
  }

  /// Removes a brick entirely (after purge found it fully dead). The Brick
  /// is EBR-retired, not freed: concurrent purge pipelines hold Brick*
  /// collected in an earlier shard op under an ebr::Guard, and those stay
  /// dereferenceable until every such pin drains.
  void Erase(Bid bid) {
    auto it = bricks_.find(bid);
    if (it == bricks_.end()) return;
    const Brick* brick = it->second.release();
    bricks_.erase(it);
    ebr::RetireDelete(brick,
                      brick->DataMemoryUsage() + brick->HistoryMemoryUsage());
  }

  size_t size() const { return bricks_.size(); }

  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& [bid, brick] : bricks_) {
      fn(*brick);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [bid, brick] : bricks_) {
      fn(const_cast<const Brick&>(*brick));
    }
  }

  uint64_t TotalRecords() const {
    uint64_t n = 0;
    for (const auto& [bid, brick] : bricks_) n += brick->num_records();
    return n;
  }

  size_t DataMemoryUsage() const {
    size_t bytes = 0;
    for (const auto& [bid, brick] : bricks_) bytes += brick->DataMemoryUsage();
    return bytes;
  }

  size_t HistoryMemoryUsage() const {
    size_t bytes = 0;
    for (const auto& [bid, brick] : bricks_) {
      bytes += brick->HistoryMemoryUsage();
    }
    return bytes;
  }

 private:
  std::shared_ptr<const CubeSchema> schema_;
  std::unordered_map<Bid, std::unique_ptr<Brick>> bricks_;
};

}  // namespace cubrick
