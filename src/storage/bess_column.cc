#include "storage/bess_column.h"

namespace cubrick {

BessColumn::BessColumn(std::vector<uint32_t> bits_per_field)
    : field_bits_(std::move(bits_per_field)) {
  uint32_t shift = 0;
  for (uint32_t bits : field_bits_) {
    CUBRICK_CHECK(bits <= 64);
    field_shift_.push_back(shift);
    shift += bits;
  }
  bits_per_record_ = shift;
}

void BessColumn::Append(const std::vector<uint64_t>& offsets) {
  CUBRICK_CHECK(offsets.size() == field_bits_.size());
  const uint64_t base = num_records_ * bits_per_record_;
  const uint64_t needed_bits = base + bits_per_record_;
  const uint64_t needed_words = (needed_bits + 63) / 64;
  if (words_.size() < needed_words) {
    words_.resize(needed_words, 0);
  }
  for (size_t d = 0; d < offsets.size(); ++d) {
    const uint32_t width = field_bits_[d];
    if (width == 0) {
      CUBRICK_CHECK(offsets[d] == 0);
      continue;
    }
    CUBRICK_CHECK(width == 64 || offsets[d] < (1ULL << width));
    WriteBits(base + field_shift_[d], width, offsets[d]);
  }
  ++num_records_;
}

uint64_t BessColumn::Get(uint64_t row, size_t dim) const {
  CUBRICK_CHECK(row < num_records_ && dim < field_bits_.size());
  const uint32_t width = field_bits_[dim];
  if (width == 0) return 0;
  return ReadBits(row * bits_per_record_ + field_shift_[dim], width);
}

void BessColumn::DecodeDim(uint64_t row_begin, uint64_t count, size_t dim,
                           uint64_t* out) const {
  CUBRICK_CHECK(row_begin + count <= num_records_ && dim < field_bits_.size());
  const uint32_t width = field_bits_[dim];
  if (width == 0) {
    for (uint64_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  uint64_t bit_pos = row_begin * bits_per_record_ + field_shift_[dim];
  for (uint64_t i = 0; i < count; ++i, bit_pos += bits_per_record_) {
    out[i] = ReadBits(bit_pos, width);
  }
}

void BessColumn::WriteBits(uint64_t bit_pos, uint32_t width, uint64_t value) {
  const uint64_t word = bit_pos >> 6;
  const uint32_t offset = static_cast<uint32_t>(bit_pos & 63);
  words_[word] |= value << offset;
  if (offset + width > 64) {
    words_[word + 1] |= value >> (64 - offset);
  }
}

uint64_t BessColumn::ReadBits(uint64_t bit_pos, uint32_t width) const {
  const uint64_t word = bit_pos >> 6;
  const uint32_t offset = static_cast<uint32_t>(bit_pos & 63);
  uint64_t value = words_[word] >> offset;
  if (offset + width > 64) {
    value |= words_[word + 1] << (64 - offset);
  }
  if (width < 64) {
    value &= (1ULL << width) - 1;
  }
  return value;
}

}  // namespace cubrick
