#include "storage/brick.h"

namespace cubrick {

namespace {
std::vector<uint32_t> BessLayout(const CubeSchema& schema) {
  std::vector<uint32_t> bits;
  bits.reserve(schema.num_dimensions());
  for (size_t d = 0; d < schema.num_dimensions(); ++d) {
    bits.push_back(schema.bess_bits(d));
  }
  return bits;
}
}  // namespace

Brick::Brick(std::shared_ptr<const CubeSchema> schema, Bid bid)
    : schema_(std::move(schema)), bid_(bid), bess_(BessLayout(*schema_)) {
  for (size_t d = 0; d < schema_->num_dimensions(); ++d) {
    range_base_.push_back(schema_->RangeIndexOf(bid, d) *
                          schema_->dimensions()[d].range_size);
  }
  for (const auto& m : schema_->metrics()) {
    metrics_.emplace_back(m.type);
  }
}

void Brick::AppendBatch(aosi::Epoch epoch, const EncodedBatch& batch) {
  CUBRICK_CHECK(batch.num_rows > 0);
  std::vector<uint64_t> offsets(schema_->num_dimensions());
  for (uint64_t row = 0; row < batch.num_rows; ++row) {
    for (size_t d = 0; d < offsets.size(); ++d) {
      offsets[d] = batch.dim_offsets[d][row];
    }
    bess_.Append(offsets);
  }
  for (size_t m = 0; m < metrics_.size(); ++m) {
    if (metrics_[m].type() == DataType::kDouble) {
      CUBRICK_CHECK(batch.metric_doubles[m].size() == batch.num_rows);
      for (double v : batch.metric_doubles[m]) metrics_[m].AppendDouble(v);
    } else {
      CUBRICK_CHECK(batch.metric_ints[m].size() == batch.num_rows);
      for (int64_t v : batch.metric_ints[m]) metrics_[m].AppendInt64(v);
    }
  }
  history_.RecordAppend(epoch, batch.num_rows);
  vis_cache_.Clear();
}

void Brick::MarkDeleted(aosi::Epoch epoch) {
  history_.RecordDelete(epoch);
  vis_cache_.Clear();
}

void Brick::ApplyCompaction(const aosi::CompactionPlan& plan) {
  CUBRICK_CHECK(plan.needed);
  CUBRICK_CHECK(plan.keep.size() == history_.num_records());
  const auto keep = [&](uint64_t row) { return plan.keep.Get(row); };
  BessColumn new_bess = bess_.CompactedCopy(keep);
  std::vector<MetricColumn> new_metrics;
  new_metrics.reserve(metrics_.size());
  for (const auto& m : metrics_) {
    new_metrics.push_back(m.CompactedCopy(keep));
  }
  const bool installed = InstallCompaction(
      history_.version(), plan, std::move(new_bess), std::move(new_metrics));
  CUBRICK_CHECK(installed);  // same-thread: the version cannot have moved
}

bool Brick::SnapshotColumnsForCompaction(
    uint64_t expected_version, std::optional<BessColumn>* bess,
    std::vector<MetricColumn>* metrics) const {
  if (history_.version() != expected_version) return false;
  bess->emplace(bess_);
  *metrics = metrics_;
  return true;
}

bool Brick::InstallCompaction(uint64_t expected_version,
                              const aosi::CompactionPlan& plan,
                              BessColumn new_bess,
                              std::vector<MetricColumn> new_metrics) {
  if (history_.version() != expected_version) return false;
  CUBRICK_CHECK(plan.needed);
  CUBRICK_CHECK(plan.keep.size() == history_.num_records());
  CUBRICK_CHECK(new_bess.num_records() == plan.new_history.num_records());
  bess_ = std::move(new_bess);
  metrics_ = std::move(new_metrics);
  // InstallRebuilt (not plain assignment) keeps the version counter
  // advancing, so cached visibility bitmaps of the pre-compaction layout
  // can never be mistaken for the new one.
  history_.InstallRebuilt(plan.new_history);
  // Recycling epochs entries is the point of purge: release the old
  // capacity so the memory actually returns (Fig 6's post-purge drop).
  history_.ShrinkToFit();
  vis_cache_.Clear();
  return true;
}

size_t Brick::DataMemoryUsage() const {
  size_t bytes = bess_.MemoryUsage();
  for (const auto& m : metrics_) {
    bytes += m.MemoryUsage();
  }
  return bytes;
}

}  // namespace cubrick
