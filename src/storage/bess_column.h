// BESS: bit-encoded sparse structure for dimension coordinates.
//
// Within a brick, all dimension columns are packed together into a single
// bit-packed vector (paper §V-A footnote). Each record stores only its
// offset-within-range per dimension — the range index itself is implied by
// the brick's bid — so a record costs sum(ceil(log2(range_size_d))) bits.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace cubrick {

class BessColumn {
 public:
  /// `bits_per_field[d]` is the width of dimension d's offset. Zero-width
  /// fields (range_size == 1) are legal and store nothing.
  explicit BessColumn(std::vector<uint32_t> bits_per_field);

  /// Appends one record's offsets (one per dimension, each < 2^width).
  void Append(const std::vector<uint64_t>& offsets);

  /// Reads the offset of dimension `dim` for record `row`.
  uint64_t Get(uint64_t row, size_t dim) const;

  /// Bulk-decodes dimension `dim` for rows [row_begin, row_begin + count)
  /// into `out[0..count)`. Equivalent to count calls to Get(), but hoists
  /// the per-row bit-position math into a running stride — this feeds the
  /// SIMD filter kernels (common/simd.h), which compare 64 decoded
  /// coordinates at a time. Zero-width fields decode as zeros.
  void DecodeDim(uint64_t row_begin, uint64_t count, size_t dim,
                 uint64_t* out) const;

  uint64_t num_records() const { return num_records_; }
  uint32_t bits_per_record() const { return bits_per_record_; }

  size_t MemoryUsage() const { return words_.capacity() * sizeof(uint64_t); }

  /// Builds a compacted copy containing only rows where keep(row) is true.
  /// `keep` is any callable (uint64_t row) -> bool.
  template <typename KeepFn>
  BessColumn CompactedCopy(KeepFn&& keep) const {
    BessColumn out = EmptyLike();
    std::vector<uint64_t> offsets(field_bits_.size());
    for (uint64_t row = 0; row < num_records_; ++row) {
      if (!keep(row)) continue;
      for (size_t d = 0; d < field_bits_.size(); ++d) {
        offsets[d] = Get(row, d);
      }
      out.Append(offsets);
    }
    return out;
  }

 private:
  BessColumn EmptyLike() const { return BessColumn(field_bits_); }

  /// Writes `width` bits of `value` at absolute bit position `bit_pos`.
  void WriteBits(uint64_t bit_pos, uint32_t width, uint64_t value);
  uint64_t ReadBits(uint64_t bit_pos, uint32_t width) const;

  std::vector<uint32_t> field_bits_;
  std::vector<uint32_t> field_shift_;  // bit offset within a record
  uint32_t bits_per_record_ = 0;
  uint64_t num_records_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cubrick
