#include "storage/dictionary.h"

#include "common/mutex.h"

namespace cubrick {

uint64_t StringDictionary::EncodeOrAdd(const std::string& value) {
  MutexLock lock(mutex_);
  auto it = to_id_.find(value);
  if (it != to_id_.end()) return it->second;
  const uint64_t id = to_string_.size();
  to_string_.push_back(value);
  to_id_.emplace(value, id);
  return id;
}

Result<uint64_t> StringDictionary::Encode(const std::string& value) const {
  MutexLock lock(mutex_);
  auto it = to_id_.find(value);
  if (it == to_id_.end()) {
    return Status::NotFound("string not in dictionary: " + value);
  }
  return it->second;
}

Result<std::string> StringDictionary::Decode(uint64_t id) const {
  MutexLock lock(mutex_);
  if (id >= to_string_.size()) {
    return Status::OutOfRange("dictionary id out of range: " +
                              std::to_string(id));
  }
  return to_string_[id];
}

size_t StringDictionary::size() const {
  MutexLock lock(mutex_);
  return to_string_.size();
}

size_t StringDictionary::MemoryUsage() const {
  MutexLock lock(mutex_);
  size_t bytes = 0;
  for (const auto& s : to_string_) {
    // Counted twice: once in the vector, once as a map key.
    bytes += 2 * (s.capacity() + sizeof(std::string));
    bytes += sizeof(uint64_t) + sizeof(void*);  // map payload + bucket link
  }
  bytes += to_string_.capacity() * sizeof(std::string);
  return bytes;
}

}  // namespace cubrick
