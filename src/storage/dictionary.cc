#include "storage/dictionary.h"

#include "common/ebr.h"
#include "common/mutex.h"

namespace cubrick {

StringDictionary::~StringDictionary() {
  // The published snapshot is retired, not deleted: a reader pinned before
  // this destructor ran may still be walking it (schema lifetime is the
  // caller's contract, but retirement makes the teardown race-free for
  // free).
  const DictSnapshot* snap = snapshot_.load(std::memory_order_acquire);
  if (snap != nullptr) {
    ebr::RetireDelete(snap, snap->to_id.size() * sizeof(std::string));
  }
}

uint64_t StringDictionary::EncodeOrAdd(const std::string& value) {
  MutexLock lock(mutex_);
  auto it = to_id_.find(value);
  if (it != to_id_.end()) return it->second;
  const uint64_t id = to_string_.size();
  to_string_.push_back(value);
  to_id_.emplace(value, id);
  // Lazy invalidation: the next AcquireSnapshot() rebuilds. Keeping the
  // single-insert path O(1) matters because recovery replays dictionaries
  // entry by entry through here.
  version_.store(version_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
  return id;
}

Result<uint64_t> StringDictionary::Encode(const std::string& value) const {
  MutexLock lock(mutex_);
  auto it = to_id_.find(value);
  if (it == to_id_.end()) {
    return Status::NotFound("string not in dictionary: " + value);
  }
  return it->second;
}

Result<std::string> StringDictionary::Decode(uint64_t id) const {
  MutexLock lock(mutex_);
  if (id >= to_string_.size()) {
    return Status::OutOfRange("dictionary id out of range: " +
                              std::to_string(id));
  }
  return to_string_[id];
}

const StringDictionary::DictSnapshot* StringDictionary::AcquireSnapshot()
    const {
  // Fast path: the published snapshot reflects every insert so far. The
  // acquire loads pair with the release stores in PublishSnapshotLocked and
  // the version bumps, so a version match proves the snapshot's map is
  // fully visible.
  const DictSnapshot* snap = snapshot_.load(std::memory_order_acquire);
  if (snap != nullptr &&
      snap->version == version_.load(std::memory_order_acquire)) {
    return snap;
  }
  MutexLock lock(mutex_);
  snap = snapshot_.load(std::memory_order_acquire);
  if (snap != nullptr &&
      snap->version == version_.load(std::memory_order_relaxed)) {
    return snap;  // another thread rebuilt while we waited for the mutex
  }
  return PublishSnapshotLocked();
}

const StringDictionary::DictSnapshot* StringDictionary::PublishSnapshotLocked()
    const {
  auto* fresh = new DictSnapshot();
  fresh->version = version_.load(std::memory_order_relaxed);
  fresh->to_id = to_id_;
  const DictSnapshot* old = snapshot_.load(std::memory_order_relaxed);
  snapshot_.store(fresh, std::memory_order_release);
  if (old != nullptr) {
    ebr::RetireDelete(old, old->to_id.size() * sizeof(std::string));
  }
  return fresh;
}

size_t StringDictionary::InsertSortedBatch(
    const std::vector<std::string>& sorted_misses) {
  if (sorted_misses.empty()) return 0;
  MutexLock lock(mutex_);
  size_t inserted = 0;
  for (const std::string& value : sorted_misses) {
    if (to_id_.count(value) > 0) continue;
    const uint64_t id = to_string_.size();
    to_string_.push_back(value);
    to_id_.emplace(value, id);
    ++inserted;
  }
  if (inserted > 0) {
    version_.store(version_.load(std::memory_order_relaxed) + inserted,
                   std::memory_order_release);
    // Eager republication: the encode phase that follows a batch insert
    // re-acquires immediately, so building the snapshot here (once, under
    // the same lock hold) beats every worker racing to rebuild it.
    PublishSnapshotLocked();
  }
  return inserted;
}

size_t StringDictionary::size() const {
  MutexLock lock(mutex_);
  return to_string_.size();
}

size_t StringDictionary::MemoryUsage() const {
  MutexLock lock(mutex_);
  size_t bytes = 0;
  for (const auto& s : to_string_) {
    // Counted twice: once in the vector, once as a map key.
    bytes += 2 * (s.capacity() + sizeof(std::string));
    bytes += sizeof(uint64_t) + sizeof(void*);  // map payload + bucket link
  }
  bytes += to_string_.capacity() * sizeof(std::string);
  return bytes;
}

}  // namespace cubrick
