#include "storage/data_type.h"

#include <sstream>

namespace cubrick {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(as_int64());
  if (is_double()) {
    std::ostringstream out;
    out << as_double();
    return out.str();
  }
  return as_string();
}

}  // namespace cubrick
