// Append-only metric column (paper §III-C1, §V-A).
//
// Metrics are stored one vector per column, unordered and append-only;
// records are materialized through the implicit index. String metrics hold
// dictionary ids.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/data_type.h"

namespace cubrick {

class MetricColumn {
 public:
  explicit MetricColumn(DataType type) : type_(type) {}

  DataType type() const { return type_; }

  void AppendInt64(int64_t v) {
    CUBRICK_CHECK(type_ != DataType::kDouble);
    ints_.push_back(v);
  }
  void AppendDouble(double v) {
    CUBRICK_CHECK(type_ == DataType::kDouble);
    doubles_.push_back(v);
  }

  /// Appends a Value of matching type; string metrics must arrive already
  /// dictionary-encoded as int64.
  Status AppendValue(const Value& v);

  int64_t GetInt64(uint64_t row) const { return ints_[row]; }
  double GetDouble(uint64_t row) const { return doubles_[row]; }

  /// Numeric read for aggregation regardless of underlying type.
  double GetAsDouble(uint64_t row) const {
    return type_ == DataType::kDouble ? doubles_[row]
                                      : static_cast<double>(ints_[row]);
  }

  uint64_t num_records() const {
    return type_ == DataType::kDouble ? doubles_.size() : ints_.size();
  }

  size_t MemoryUsage() const {
    return ints_.capacity() * sizeof(int64_t) +
           doubles_.capacity() * sizeof(double);
  }

  /// Builds a compacted copy keeping rows where keep(row) is true.
  template <typename KeepFn>
  MetricColumn CompactedCopy(KeepFn&& keep) const {
    MetricColumn out(type_);
    const uint64_t n = num_records();
    for (uint64_t row = 0; row < n; ++row) {
      if (!keep(row)) continue;
      if (type_ == DataType::kDouble) {
        out.AppendDouble(doubles_[row]);
      } else {
        out.AppendInt64(ints_[row]);
      }
    }
    return out;
  }

  /// Direct access for vectorized scans.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
};

}  // namespace cubrick
