#include "storage/schema.h"

#include <unordered_set>

namespace cubrick {

uint32_t BitsForCount(uint64_t n) {
  if (n <= 1) return 0;
  uint32_t bits = 0;
  uint64_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

Result<std::shared_ptr<CubeSchema>> CubeSchema::Make(
    std::string cube_name, std::vector<DimensionDef> dimensions,
    std::vector<MetricDef> metrics) {
  if (cube_name.empty()) {
    return Status::InvalidArgument("cube name must not be empty");
  }
  if (dimensions.empty()) {
    return Status::InvalidArgument("cube must have at least one dimension");
  }
  std::unordered_set<std::string> names;
  for (const auto& d : dimensions) {
    if (d.cardinality == 0) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' must declare cardinality > 0");
    }
    if (d.range_size == 0 || d.range_size > d.cardinality) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' has invalid range size");
    }
    if (!names.insert(d.name).second) {
      return Status::InvalidArgument("duplicate column name: " + d.name);
    }
  }
  for (const auto& m : metrics) {
    if (!names.insert(m.name).second) {
      return Status::InvalidArgument("duplicate column name: " + m.name);
    }
  }

  auto schema = std::shared_ptr<CubeSchema>(new CubeSchema());
  schema->cube_name_ = std::move(cube_name);
  schema->dimensions_ = std::move(dimensions);
  schema->metrics_ = std::move(metrics);

  uint32_t shift = 0;
  for (const auto& d : schema->dimensions_) {
    const uint32_t bits = BitsForCount(d.num_ranges());
    schema->bid_dim_bits_.push_back(bits);
    schema->bid_dim_shift_.push_back(shift);
    shift += bits;
    const uint32_t bess = BitsForCount(d.range_size);
    schema->bess_bits_.push_back(bess);
    schema->bess_bits_total_ += bess;
  }
  if (shift > 64) {
    return Status::InvalidArgument(
        "bid does not fit in 64 bits; reduce dimensionality or grow ranges");
  }
  schema->bid_bits_ = shift;

  for (const auto& d : schema->dimensions_) {
    schema->dictionaries_.push_back(
        d.is_string ? std::make_unique<StringDictionary>() : nullptr);
  }
  for (const auto& m : schema->metrics_) {
    schema->dictionaries_.push_back(
        m.type == DataType::kString ? std::make_unique<StringDictionary>()
                                    : nullptr);
  }
  return schema;
}

Result<size_t> CubeSchema::DimensionIndex(const std::string& name) const {
  for (size_t i = 0; i < dimensions_.size(); ++i) {
    if (dimensions_[i].name == name) return i;
  }
  return Status::NotFound("no dimension named '" + name + "'");
}

Result<size_t> CubeSchema::MetricIndex(const std::string& name) const {
  for (size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) return i;
  }
  return Status::NotFound("no metric named '" + name + "'");
}

uint64_t CubeSchema::MaxBricks() const {
  uint64_t total = 1;
  for (const auto& d : dimensions_) {
    total *= d.num_ranges();
  }
  return total;
}

Result<Bid> CubeSchema::BidFor(const std::vector<uint64_t>& coords) const {
  if (coords.size() != dimensions_.size()) {
    return Status::InvalidArgument("coordinate arity mismatch");
  }
  Bid bid = 0;
  for (size_t i = 0; i < coords.size(); ++i) {
    if (coords[i] >= dimensions_[i].cardinality) {
      return Status::OutOfRange("coordinate " + std::to_string(coords[i]) +
                                " exceeds cardinality of dimension '" +
                                dimensions_[i].name + "'");
    }
    const uint64_t range_idx = coords[i] / dimensions_[i].range_size;
    bid |= range_idx << bid_dim_shift_[i];
  }
  return bid;
}

uint64_t CubeSchema::RangeIndexOf(Bid bid, size_t dim) const {
  const uint32_t bits = bid_dim_bits_[dim];
  if (bits == 0) return 0;
  return (bid >> bid_dim_shift_[dim]) & ((1ULL << bits) - 1);
}

}  // namespace cubrick
