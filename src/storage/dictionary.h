// Dictionary encoding for string columns (paper §V-A).
//
// An auxiliary map is associated with each string column to encode values
// into a monotonically increasing dense id. Encoding all strings lets the
// aggregation core deal exclusively with numbers.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace cubrick {

class StringDictionary {
 public:
  /// Returns the id for `value`, inserting it if new. Thread-safe: parsing
  /// runs on whichever node received the load buffer.
  uint64_t EncodeOrAdd(const std::string& value);

  /// Returns the id for `value` or NotFound without inserting.
  Result<uint64_t> Encode(const std::string& value) const;

  /// Returns the string for `id` or OutOfRange.
  Result<std::string> Decode(uint64_t id) const;

  size_t size() const;

  /// Approximate heap bytes held by the dictionary (both directions).
  size_t MemoryUsage() const;

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::string, uint64_t> to_id_ GUARDED_BY(mutex_);
  std::vector<std::string> to_string_ GUARDED_BY(mutex_);
};

}  // namespace cubrick
