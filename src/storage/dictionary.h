// Dictionary encoding for string columns (paper §V-A).
//
// An auxiliary map is associated with each string column to encode values
// into a monotonically increasing dense id. Encoding all strings lets the
// aggregation core deal exclusively with numbers.
//
// Two-phase encode (DESIGN.md §4f): the ingest pipeline first looks every
// string up against an immutable snapshot of the map — lock-free, so
// parallel encode workers stop serializing on the dictionary mutex — then
// collects the misses, dedupes and sorts them, and inserts them in one
// deterministic batch. Sorted-batch assignment makes the ids a pure
// function of (dictionary state, set of new strings): independent of
// record order within the batch and of how the batch was chunked across
// threads, which is what keeps parallel ingest bit-identical to serial
// replay.
//
// Snapshot lifetime follows the EBR safety contract (common/ebr.h):
// AcquireSnapshot() returns a pointer that is only valid while the calling
// thread's ebr::Guard is live; displaced snapshots are retired through the
// collector so pinned readers finish before the memory goes away.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace cubrick {

class StringDictionary {
 public:
  /// Immutable copy of the encode map published for the lock-free lookup
  /// phase. EBR-managed: dereference only under the ebr::Guard that was
  /// live when AcquireSnapshot() returned it.
  struct DictSnapshot {
    /// Insert version the snapshot reflects (staleness check).
    uint64_t version = 0;
    std::unordered_map<std::string, uint64_t> to_id;

    /// Lookup against the snapshot; returns false on miss.
    bool Find(const std::string& value, uint64_t* id) const {
      auto it = to_id.find(value);
      if (it == to_id.end()) return false;
      *id = it->second;
      return true;
    }
  };

  StringDictionary() = default;
  ~StringDictionary();

  StringDictionary(const StringDictionary&) = delete;
  StringDictionary& operator=(const StringDictionary&) = delete;

  /// Returns the id for `value`, inserting it if new. Thread-safe: parsing
  /// runs on whichever node received the load buffer.
  uint64_t EncodeOrAdd(const std::string& value);

  /// Returns the id for `value` or NotFound without inserting.
  Result<uint64_t> Encode(const std::string& value) const;

  /// Returns the string for `id` or OutOfRange.
  Result<std::string> Decode(uint64_t id) const;

  /// The current immutable snapshot for lock-free lookups, rebuilt (under
  /// the mutex) when inserts have made the cached one stale. The caller
  /// must hold a live ebr::Guard for as long as it dereferences the result.
  const DictSnapshot* AcquireSnapshot() const;

  /// Deterministic batch insert: `sorted_misses` must be sorted and
  /// deduplicated. Every string not already present is assigned the next
  /// dense id in sorted order. Returns how many strings were inserted
  /// (already-present entries — e.g. raced in by a concurrent load — are
  /// skipped, never reassigned).
  size_t InsertSortedBatch(const std::vector<std::string>& sorted_misses);

  size_t size() const;

  /// Approximate heap bytes held by the dictionary (both directions;
  /// excludes the transient lookup snapshot).
  size_t MemoryUsage() const;

 private:
  /// Rebuilds and publishes the snapshot from the authoritative map.
  /// REQUIRES mutex_ held; retires the displaced snapshot via EBR.
  const DictSnapshot* PublishSnapshotLocked() const REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::unordered_map<std::string, uint64_t> to_id_ GUARDED_BY(mutex_);
  std::vector<std::string> to_string_ GUARDED_BY(mutex_);

  /// Insert counter. Written under mutex_ (release); read lock-free by the
  /// AcquireSnapshot fast path (acquire) to detect a stale snapshot.
  mutable std::atomic<uint64_t> version_{0};
  /// The published snapshot. Written under mutex_ (release store after the
  /// snapshot is fully built); read lock-free (acquire). Displaced
  /// snapshots are EBR-retired, so a pointer loaded under a live Guard
  /// stays dereferenceable for the guard's lifetime.
  mutable std::atomic<const DictSnapshot*> snapshot_{nullptr};
};

}  // namespace cubrick
