#include "storage/metric_column.h"

namespace cubrick {

Status MetricColumn::AppendValue(const Value& v) {
  switch (type_) {
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.as_double());
      } else if (v.is_int64()) {
        AppendDouble(static_cast<double>(v.as_int64()));
      } else {
        return Status::InvalidArgument("expected numeric value");
      }
      return Status::OK();
    case DataType::kInt64:
    case DataType::kString:
      if (!v.is_int64()) {
        return Status::InvalidArgument(
            "expected int64 (string metrics must be dictionary-encoded)");
      }
      AppendInt64(v.as_int64());
      return Status::OK();
  }
  return Status::Internal("unreachable metric type");
}

}  // namespace cubrick
