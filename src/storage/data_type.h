// Value types supported by cube columns.
//
// Cubrick columns are either dimensions (low-cardinality coordinates; string
// dimensions are dictionary-encoded to dense integers) or metrics (numeric
// measures aggregated by queries). The engine core only handles numeric
// values; strings exist solely at the ingestion/result boundary (paper §V-A).

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace cubrick {

enum class DataType : uint8_t { kInt64, kDouble, kString };

const char* DataTypeToString(DataType type);

/// A dynamically-typed cell used at the API boundary (ingestion rows, query
/// results). Hot paths never touch Value; they operate on typed columns.
class Value {
 public:
  Value() : value_(int64_t{0}) {}
  /*implicit*/ Value(int64_t v) : value_(v) {}
  /*implicit*/ Value(int v) : value_(static_cast<int64_t>(v)) {}
  /*implicit*/ Value(double v) : value_(v) {}
  /*implicit*/ Value(std::string v) : value_(std::move(v)) {}
  /*implicit*/ Value(const char* v) : value_(std::string(v)) {}

  DataType type() const {
    switch (value_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kString;
    }
  }

  bool is_int64() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }

  int64_t as_int64() const { return std::get<int64_t>(value_); }
  double as_double() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }

  /// Numeric coercion: int64 -> double allowed; everything else must match.
  Result<double> ToDouble() const {
    if (is_double()) return as_double();
    if (is_int64()) return static_cast<double>(as_int64());
    return Status::InvalidArgument("string value is not numeric");
  }

  std::string ToString() const;

  bool operator==(const Value& other) const { return value_ == other.value_; }

 private:
  std::variant<int64_t, double, std::string> value_;
};

}  // namespace cubrick
