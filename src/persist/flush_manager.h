// Persistence and durability (paper §III-D).
//
// In-memory OLAP databases ensure durability with background disk flushes
// plus replication. Each flush round selects a candidate LSE' and writes the
// data between the current LSE and LSE' on every partition — identified by
// walking the epochs vectors — to an append-only segment file. After the
// segment is durable, the manifest (round count + LSE) is atomically
// replaced. No transactional history needs to be flushed: everything at or
// before LSE is by definition finished, so recovery only needs the data and
// a single LSE timestamp.
//
// Crash recovery replays the segments the manifest covers, ignoring any
// trailing partially-written segment, and restores the epoch counters to the
// flushed LSE. Data after LSE is recovered from replicas (the cluster layer
// redelivers; a single-node deployment loses it, exactly as the paper
// states).

#pragma once

#include <string>

#include "aosi/epoch.h"
#include "common/mutex.h"
#include "engine/table.h"
#include "storage/schema.h"

namespace cubrick::obs {
class MetricsRegistry;
}  // namespace cubrick::obs

namespace cubrick::persist {

struct FlushRoundStats {
  uint64_t rows_written = 0;
  uint64_t delete_markers_written = 0;
  uint64_t bricks_touched = 0;

  /// Adds this round's tallies to the registry's "persist.*" counters
  /// (docs/OBSERVABILITY.md). Called by FlushManager::FlushRound.
  void PublishTo(obs::MetricsRegistry& reg) const;
};

struct RecoveryResult {
  /// The LSE recorded by the last complete flush round.
  aosi::Epoch lse = aosi::kNoEpoch;
  uint64_t rows_recovered = 0;
  uint64_t rounds_replayed = 0;
};

class FlushManager {
 public:
  /// `dir` must exist; all segment/manifest files for the cube live there.
  FlushManager(std::string dir, std::string cube_name);

  /// Writes one flush round covering epochs in (from_lse, to_lse]. The
  /// caller picks to_lse (typically the node's LCE) and, on success,
  /// advances the transaction manager's LSE to it. Safe to call from
  /// concurrent maintenance threads: rounds are serialized internally, and
  /// from_lse is re-clamped to the manifest LSE under the lock so a range a
  /// concurrent round already made durable is never flushed twice (which
  /// would duplicate rows on recovery). A round whose range is already
  /// covered returns empty stats.
  Result<FlushRoundStats> FlushRound(Table* table, aosi::Epoch from_lse,
                                     aosi::Epoch to_lse);

  /// Replays all complete flush rounds into `table` (which must be empty)
  /// and returns the recovered LSE. Also restores the schema's string
  /// dictionaries.
  Result<RecoveryResult> Recover(Table* table);

  /// LSE recorded in the manifest, or kNoEpoch when none exists.
  aosi::Epoch ManifestLse() const;
  /// Number of complete rounds in the manifest.
  uint64_t ManifestRounds() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string SegmentPath(uint64_t round) const;
  std::string DictPath() const;
  std::string ManifestPath() const;

  /// Atomically replaces the manifest (tmp file + rename).
  Status WriteManifest(uint64_t rounds, aosi::Epoch lse) const;

  Status WriteDictionaries(const CubeSchema& schema) const;
  Status ReadDictionaries(const CubeSchema& schema) const;

  std::string dir_;
  std::string cube_name_;

  /// Serializes FlushRound/Recover. The round counter and manifest are a
  /// disk-side read-modify-write; callers (Database/ClusterNode maintenance)
  /// run outside their registry locks and may overlap.
  mutable Mutex io_mu_;
};

}  // namespace cubrick::persist
