// Minimal binary serialization for flush segments and manifests.
//
// Fixed little-endian 64-bit framing, no varints: flush throughput is
// dominated by the raw column payloads, and a trivially auditable format
// beats a compact one for a durability layer.

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace cubrick::persist {

class BinaryWriter {
 public:
  /// Opens `path` for truncating binary write.
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return out_.good(); }

  void WriteU64(uint64_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void WriteU8(uint8_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void WriteDouble(double v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  /// Flushes buffered bytes to the OS. (A real deployment would fsync; the
  /// simulation treats stream flush as the durability point.)
  Status Finish() {
    out_.flush();
    out_.close();
    return out_.good() ? Status::OK()
                       : Status::IOError("flush segment write failed");
  }

 private:
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool ok() const { return in_.good(); }

  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in_.good()) return Status::IOError("truncated segment (u64)");
    return v;
  }
  Result<uint8_t> ReadU8() {
    uint8_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in_.good()) return Status::IOError("truncated segment (u8)");
    return v;
  }
  Result<double> ReadDouble() {
    double v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in_.good()) return Status::IOError("truncated segment (double)");
    return v;
  }
  Result<std::string> ReadString() {
    auto len = ReadU64();
    if (!len.ok()) return len.status();
    std::string s(*len, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(*len));
    if (!in_.good()) return Status::IOError("truncated segment (string)");
    return s;
  }
  template <typename T>
  Result<std::vector<T>> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto len = ReadU64();
    if (!len.ok()) return len.status();
    std::vector<T> v(*len);
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(*len * sizeof(T)));
    if (!in_.good()) return Status::IOError("truncated segment (vector)");
    return v;
  }

 private:
  std::ifstream in_;
};

}  // namespace cubrick::persist
