#include "persist/flush_manager.h"

#include <filesystem>

#include "obs/metrics.h"
#include "obs/span.h"
#include "persist/serializer.h"

namespace cubrick::persist {

namespace {
constexpr uint64_t kSegmentMagic = 0x3147455343425243ULL;   // "CBRCSEG1"
constexpr uint64_t kManifestMagic = 0x314e414d43425243ULL;  // "CBRCMAN1"
constexpr uint64_t kDictMagic = 0x3154434443425243ULL;      // "CBRCDCT1"
}  // namespace

FlushManager::FlushManager(std::string dir, std::string cube_name)
    : dir_(std::move(dir)), cube_name_(std::move(cube_name)) {}

std::string FlushManager::SegmentPath(uint64_t round) const {
  return dir_ + "/" + cube_name_ + ".seg." + std::to_string(round);
}
std::string FlushManager::DictPath() const {
  return dir_ + "/" + cube_name_ + ".dict";
}
std::string FlushManager::ManifestPath() const {
  return dir_ + "/" + cube_name_ + ".manifest";
}

Status FlushManager::WriteManifest(uint64_t rounds, aosi::Epoch lse) const {
  const std::string tmp = ManifestPath() + ".tmp";
  {
    BinaryWriter writer(tmp);
    writer.WriteU64(kManifestMagic);
    writer.WriteU64(rounds);
    writer.WriteU64(lse);
    CUBRICK_RETURN_IF_ERROR(writer.Finish());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, ManifestPath(), ec);
  if (ec) return Status::IOError("manifest rename failed: " + ec.message());
  return Status::OK();
}

aosi::Epoch FlushManager::ManifestLse() const {
  BinaryReader reader(ManifestPath());
  if (!reader.ok()) return aosi::kNoEpoch;
  auto magic = reader.ReadU64();
  if (!magic.ok() || *magic != kManifestMagic) return aosi::kNoEpoch;
  auto rounds = reader.ReadU64();
  auto lse = reader.ReadU64();
  if (!rounds.ok() || !lse.ok()) return aosi::kNoEpoch;
  return *lse;
}

uint64_t FlushManager::ManifestRounds() const {
  BinaryReader reader(ManifestPath());
  if (!reader.ok()) return 0;
  auto magic = reader.ReadU64();
  if (!magic.ok() || *magic != kManifestMagic) return 0;
  auto rounds = reader.ReadU64();
  return rounds.ok() ? *rounds : 0;
}

Status FlushManager::WriteDictionaries(const CubeSchema& schema) const {
  BinaryWriter writer(DictPath());
  writer.WriteU64(kDictMagic);
  writer.WriteU64(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    StringDictionary* dict = schema.dictionary(c);
    if (dict == nullptr) {
      writer.WriteU64(0);
      continue;
    }
    const uint64_t n = dict->size();
    writer.WriteU64(n);
    for (uint64_t id = 0; id < n; ++id) {
      writer.WriteString(dict->Decode(id).value());
    }
  }
  return writer.Finish();
}

Status FlushManager::ReadDictionaries(const CubeSchema& schema) const {
  BinaryReader reader(DictPath());
  if (!reader.ok()) return Status::OK();  // no string columns ever flushed
  auto magic = reader.ReadU64();
  if (!magic.ok() || *magic != kDictMagic) {
    return Status::IOError("corrupt dictionary file");
  }
  auto cols = reader.ReadU64();
  if (!cols.ok() || *cols != schema.num_columns()) {
    return Status::IOError("dictionary file column mismatch");
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    auto n = reader.ReadU64();
    if (!n.ok()) return n.status();
    StringDictionary* dict = schema.dictionary(c);
    if (*n > 0 && dict == nullptr) {
      return Status::IOError("dictionary for non-string column");
    }
    for (uint64_t id = 0; id < *n; ++id) {
      auto s = reader.ReadString();
      if (!s.ok()) return s.status();
      const uint64_t assigned = dict->EncodeOrAdd(*s);
      if (assigned != id) {
        return Status::IOError("dictionary id mismatch during recovery");
      }
    }
  }
  return Status::OK();
}

void FlushRoundStats::PublishTo(obs::MetricsRegistry& reg) const {
  // Flush rounds are background work; no instrument caching needed.
  reg.GetCounter("persist.rows_flushed")->Add(rows_written);
  reg.GetCounter("persist.delete_markers_flushed")
      ->Add(delete_markers_written);
  reg.GetCounter("persist.bricks_flushed")->Add(bricks_touched);
}

Result<FlushRoundStats> FlushManager::FlushRound(Table* table,
                                                 aosi::Epoch from_lse,
                                                 aosi::Epoch to_lse) {
  CUBRICK_CHECK(aosi::AtOrBefore(from_lse, to_lse));
  MutexLock lock(io_mu_);
  // Re-resolve the resume point under the lock: a concurrent round may have
  // advanced the manifest past the caller's snapshot of ManifestLse(), and
  // re-flushing that range would duplicate rows on recovery.
  const aosi::Epoch manifest_lse = ManifestLse();
  if (aosi::AtOrBefore(from_lse, manifest_lse)) from_lse = manifest_lse;
  if (aosi::AtOrBefore(to_lse, from_lse)) return FlushRoundStats{};
  obs::ObsSpan span(
      "persist.flush",
      obs::MetricsRegistry::Global().GetHistogram("persist.flush_us"));
  const CubeSchema& schema = table->schema();
  const uint64_t round = ManifestRounds() + 1;
  FlushRoundStats stats;

  BinaryWriter writer(SegmentPath(round));
  writer.WriteU64(kSegmentMagic);
  writer.WriteU64(round);
  writer.WriteU64(from_lse);
  writer.WriteU64(to_lse);

  // Bricks are written as they are visited; the count is unknown upfront,
  // so each brick block is prefixed with a has-more flag. io_mu_ is held
  // across the shard-queue round on purpose: it serializes whole flush
  // rounds against each other and is never taken on a lookup or query path,
  // so a blocked holder stalls only other maintenance.
  table->VisitBricks([&](const Brick& brick) {  // aosi-lint: allow(hold-across-blocking)
    // Select runs in (from_lse, to_lse], preserving physical order.
    std::vector<aosi::EpochRun> selected;
    for (const auto& run : brick.history().Decode()) {
      if (aosi::InEpochRange(run.epoch, from_lse, to_lse)) {
        selected.push_back(run);
      }
    }
    if (selected.empty()) return;
    ++stats.bricks_touched;
    writer.WriteU8(1);  // has-more
    writer.WriteU64(brick.bid());
    writer.WriteU64(selected.size());
    for (const auto& run : selected) {
      writer.WriteU64(run.epoch);
      writer.WriteU8(run.is_delete ? 1 : 0);
      if (run.is_delete) {
        ++stats.delete_markers_written;
        continue;
      }
      const uint64_t n = run.end - run.begin;
      writer.WriteU64(n);
      stats.rows_written += n;
      for (size_t d = 0; d < schema.num_dimensions(); ++d) {
        std::vector<uint64_t> offsets;
        offsets.reserve(n);
        for (uint64_t row = run.begin; row < run.end; ++row) {
          offsets.push_back(brick.bess().Get(row, d));
        }
        writer.WriteVector(offsets);
      }
      for (size_t m = 0; m < schema.num_metrics(); ++m) {
        const MetricColumn& col = brick.metric(m);
        if (col.type() == DataType::kDouble) {
          std::vector<double> values(col.doubles().begin() + run.begin,
                                     col.doubles().begin() + run.end);
          writer.WriteVector(values);
        } else {
          std::vector<int64_t> values(col.ints().begin() + run.begin,
                                      col.ints().begin() + run.end);
          writer.WriteVector(values);
        }
      }
    }
  });
  writer.WriteU8(0);  // end of bricks
  CUBRICK_RETURN_IF_ERROR(writer.Finish());

  // Dictionaries must be durable before the manifest declares the round
  // complete: recovered coordinates are meaningless without them.
  CUBRICK_RETURN_IF_ERROR(WriteDictionaries(schema));
  CUBRICK_RETURN_IF_ERROR(WriteManifest(round, to_lse));
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("persist.flush_rounds_total")->Add();
  stats.PublishTo(reg);
  return stats;
}

Result<RecoveryResult> FlushManager::Recover(Table* table) {
  MutexLock lock(io_mu_);
  obs::ObsSpan span("persist.recover");
  RecoveryResult result;
  const uint64_t rounds = ManifestRounds();
  result.lse = ManifestLse();
  if (rounds == 0) return result;

  const CubeSchema& schema = table->schema();
  CUBRICK_RETURN_IF_ERROR(ReadDictionaries(schema));

  for (uint64_t round = 1; round <= rounds; ++round) {
    BinaryReader reader(SegmentPath(round));
    if (!reader.ok()) {
      return Status::IOError("missing flush segment " + std::to_string(round));
    }
    auto magic = reader.ReadU64();
    if (!magic.ok() || *magic != kSegmentMagic) {
      return Status::IOError("corrupt flush segment " + std::to_string(round));
    }
    (void)reader.ReadU64();  // round
    (void)reader.ReadU64();  // from_lse
    (void)reader.ReadU64();  // to_lse

    while (true) {
      auto has_more = reader.ReadU8();
      if (!has_more.ok()) return has_more.status();
      if (*has_more == 0) break;
      auto bid = reader.ReadU64();
      auto num_runs = reader.ReadU64();
      if (!bid.ok() || !num_runs.ok()) return Status::IOError("bad brick");
      for (uint64_t r = 0; r < *num_runs; ++r) {
        auto epoch = reader.ReadU64();
        auto is_delete = reader.ReadU8();
        if (!epoch.ok() || !is_delete.ok()) {
          return Status::IOError("bad run header");
        }
        if (*is_delete != 0) {
          const aosi::Epoch e = *epoch;
          // io_mu_ across the shard queues is by design here too: Recover
          // runs on the startup path before any other maintenance, and the
          // lock guards only flush/recover, never lookups.
          table->ApplyToBrick(  // aosi-lint: allow(hold-across-blocking)
              *bid, [e](Brick& brick) { brick.MarkDeleted(e); });
          continue;
        }
        auto n = reader.ReadU64();
        if (!n.ok()) return n.status();
        EncodedBatch batch(schema);
        batch.num_rows = *n;
        for (size_t d = 0; d < schema.num_dimensions(); ++d) {
          auto offsets = reader.ReadVector<uint64_t>();
          if (!offsets.ok()) return offsets.status();
          batch.dim_offsets[d] = std::move(*offsets);
        }
        for (size_t m = 0; m < schema.num_metrics(); ++m) {
          if (schema.metrics()[m].type == DataType::kDouble) {
            auto values = reader.ReadVector<double>();
            if (!values.ok()) return values.status();
            batch.metric_doubles[m] = std::move(*values);
          } else {
            auto values = reader.ReadVector<int64_t>();
            if (!values.ok()) return values.status();
            batch.metric_ints[m] = std::move(*values);
          }
        }
        PerBrickBatches one;
        one.emplace(*bid, std::move(batch));
        CUBRICK_RETURN_IF_ERROR(
            table->Append(  // aosi-lint: allow(hold-across-blocking)
                *epoch, std::move(one)));
        result.rows_recovered += *n;
      }
    }
    ++result.rounds_replayed;
  }
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("persist.rows_recovered")->Add(result.rows_recovered);
  reg.GetCounter("persist.rounds_replayed")->Add(result.rounds_replayed);
  reg.GetGauge("persist.last_recovery_us")->Set(span.Finish());
  return result;
}

}  // namespace cubrick::persist
