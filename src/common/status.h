// Status / Result types used across the library.
//
// All fallible public APIs return either a Status (for operations without a
// payload) or a Result<T>. Exceptions are reserved for programming errors
// (violated preconditions) and are raised via CUBRICK_CHECK in debug builds.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace cubrick {

/// Canonical error codes, loosely modeled after absl::StatusCode.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kAborted,
  kResourceExhausted,
  kInternal,
  kUnavailable,
  kUnimplemented,
  kIOError,
};

/// Returns a human-readable name for a status code ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value.
///
/// Status is cheap to copy in the success case (a single enum) and carries an
/// error message only on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper; holds T on success, a non-OK Status on failure.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when ok().
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? value_.value() : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Thrown by CUBRICK_CHECK on violated invariants.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

/// Internal invariant check. Active in all build types: the cost is a
/// predictable branch, and silent corruption is far worse than an abort in a
/// database engine.
#define CUBRICK_CHECK(expr)                                          \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::cubrick::internal::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                                \
  } while (0)

/// Propagates a non-OK Status from the current function.
#define CUBRICK_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::cubrick::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace cubrick
