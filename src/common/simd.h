// Portable SIMD layer for the scan kernels (DESIGN.md §4e).
//
// The word-wise scan kernels (executor filter/fold passes, Bitmap word ops)
// call through the function table returned by ActiveKernels() instead of
// open-coding loops. Three backends implement the table:
//
//   * kScalar — plain C++, always compiled, always correct. The reference
//     the differential tests compare every other backend against.
//   * kAvx2   — x86-64 AVX2, compiled behind __attribute__((target)) so the
//     translation unit builds without -mavx2; selected at runtime only when
//     CPUID reports the feature.
//   * kNeon   — AArch64 Advanced SIMD (baseline on aarch64, so no runtime
//     feature probe is needed there).
//
// Dispatch is resolved once per process: the CUBRICK_SIMD environment
// variable (scalar|avx2|neon|auto, default auto = best supported) is read on
// first use; DatabaseOptions::simd / SetBackend() can override it later.
// Requesting an unsupported backend falls back to scalar with a stderr
// warning — never a crash, never silent garbage.
//
// ## Fold-order contract (bit-identical results across backends)
//
// SIMD reassociates floating-point folds, so "same math" is not enough for
// bit-identical results. Every backend therefore implements the SAME
// documented fold order, pinned by the differential tests in
// tests/simd_kernel_test.cc:
//
//   * FoldInt64: the word sum is accumulated in wrapping two's-complement
//     uint64 arithmetic — associative and commutative, hence exactly equal
//     in any order — and converted to double ONCE per word by the caller.
//     min/max over int64 are order-insensitive. (Semantics note: when a
//     word's true sum exceeds int64 range it wraps identically on every
//     backend; the old row-at-a-time double fold would instead have lost
//     precision past 2^53. All repo workloads stay far below both limits.)
//   * FoldDouble: four lane accumulators l0..l3, lane j summing v[4k+j]
//     over the first n&~3 values; the word sum is (l0+l2)+(l1+l3); the
//     n&3 tail values are then added sequentially. Lane min/max steps use
//     "(v OP acc) ? v : acc" — exactly x86 MINPD/MAXPD(v, acc) semantics —
//     so a NaN value never replaces the accumulator (matching the scalar
//     `if (v < min) min = v` row loop) and -0.0/+0.0 ties resolve
//     identically on every backend.
//
// Filter masks and bitmap word ops are integer-exact, so they carry no
// order contract beyond "same bits".
//
// Blind spots (documented, DESIGN.md §4e): no AVX-512 or SVE backends; the
// dispatch is process-global (per-query backend mixing is not supported —
// results are bit-identical across backends, so mixing could never change
// an answer, only confuse perf attribution).

#pragma once

#include <cstddef>
#include <cstdint>

namespace cubrick::simd {

enum class Backend : uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The kernel function table one backend implements. All pointers are
/// always non-null. `coords` buffers passed to filter kernels hold exactly
/// 64 decoded dimension coordinates (one bitmap word's worth; the executor
/// only takes this path for dense words, which never overlap a brick's
/// ragged tail). Fold kernels take 1 <= n <= 64 contiguous values — either
/// a direct column slice (dense word) or a ctz-compressed gather buffer
/// (sparse word).
struct Kernels {
  Backend backend;

  /// Bit b of the result is set iff coords[b] == value.
  uint64_t (*filter_eq)(const uint64_t* coords, uint64_t value);
  /// Bit b set iff lo <= coords[b] <= hi (unsigned).
  uint64_t (*filter_range)(const uint64_t* coords, uint64_t lo, uint64_t hi);
  /// Bit b set iff coords[b] equals any of values[0..num_values).
  uint64_t (*filter_in)(const uint64_t* coords, const uint64_t* values,
                        size_t num_values);

  /// Wrapping-uint64 sum plus int64 min/max of v[0..n). n >= 1.
  void (*fold_int64)(const int64_t* v, size_t n, uint64_t* sum, int64_t* min,
                     int64_t* max);
  /// Pinned-order double sum (see the fold-order contract above) plus
  /// MINPD/MAXPD-semantics min/max of v[0..n). n >= 1.
  void (*fold_double)(const double* v, size_t n, double* sum, double* min,
                      double* max);

  /// dst[i] &= src[i] / |= / &= ~ for i in [0, n).
  void (*and_words)(uint64_t* dst, const uint64_t* src, size_t n);
  void (*or_words)(uint64_t* dst, const uint64_t* src, size_t n);
  void (*andnot_words)(uint64_t* dst, const uint64_t* src, size_t n);
  /// Total population count of words[0..n).
  size_t (*count_bits)(const uint64_t* words, size_t n);
};

/// Best backend this CPU supports (never consults the environment).
Backend Detect();

/// True when `b` can run on this CPU.
bool Supported(Backend b);

/// The process-global active backend. First call resolves CUBRICK_SIMD
/// (unset/"auto" -> Detect(); unknown or unsupported values warn on stderr
/// and fall back); later SetBackend() calls override it.
Backend Active();

/// Kernel table of the active backend. Cheap (one acquire load).
const Kernels& ActiveKernels();

/// Kernel table for a specific backend — differential tests run scalar and
/// SIMD side by side through this. Precondition: Supported(b).
const Kernels& KernelsFor(Backend b);

/// Forces the active backend. Returns false (and leaves the active backend
/// unchanged) when `b` is not supported on this CPU.
bool SetBackend(Backend b);

/// Parses "scalar"|"avx2"|"neon"|"auto" and installs the result ("auto" ->
/// Detect()). Unknown names and unsupported backends warn on stderr and
/// install the best supported fallback. Empty/null input is a no-op.
void ConfigureFromString(const char* name);

/// Lowercase backend name ("scalar", "avx2", "neon").
const char* BackendName(Backend b);

/// BackendName(Active()) — the machine-stamp string EmitBenchJson records.
const char* ActiveBackendName();

}  // namespace cubrick::simd
