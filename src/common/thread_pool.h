// Work-stealing thread pool: the shared execution substrate for
// morsel-parallel query scans (DESIGN.md §"Morsel-parallel execution") and,
// later, purge/ingest parallelization.
//
// Design:
//  * One task deque per worker, each guarded by its own Mutex. Submit()
//    places a task on the deque picked by a round-robin ticket; a worker
//    pops from the front of its own deque and steals from the *back* of a
//    sibling's, so an owner and a thief touch opposite ends and contend
//    only on the deque mutex, never on the same task.
//  * A single sleep mutex + condvar parks idle workers. The wake predicate
//    is a guarded count of queued tasks which Submit() increments *after*
//    publishing the task and while holding the sleep mutex, so a Submit()
//    racing with a worker going to sleep can never lose the wakeup.
//  * TaskGroup tracks one fan-out. Wait() first lends the calling thread to
//    the pool (running queued tasks) and only then blocks, so a scan fanned
//    out from inside a shard operation makes progress even when every pool
//    worker is busy with other groups — no nested-fan-out deadlock.
//
// Instrumented per docs/OBSERVABILITY.md: pool.queue_depth (gauge),
// pool.tasks_total and pool.steals_total (counters).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace cubrick {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: queued tasks still run (workers finish the backlog
  /// before exiting), but the destructor blocks until they have.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe; never blocks on task execution.
  void Submit(std::function<void()> task);

  /// Runs one queued task (any worker's) on the calling thread. Returns
  /// false when every deque is empty. Lets non-pool threads lend a hand —
  /// see TaskGroup::Wait.
  bool TryRunOne();

  size_t num_threads() const { return threads_.size(); }

  /// The process-wide pool, sized to the hardware concurrency. Created on
  /// first use and intentionally leaked so worker threads never race static
  /// destruction (same pattern as obs::MetricsRegistry::Global()).
  static ThreadPool& Global();

 private:
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(size_t index);
  /// Pops from `home`'s front, else steals from another deque's back.
  bool PopTask(size_t home, std::function<void()>* out);
  /// PopTask + bookkeeping + execution; false when nothing was queued.
  bool RunOneFrom(size_t home);

  std::vector<std::unique_ptr<Worker>> queues_;

  Mutex sleep_mu_;
  CondVar wake_cv_;
  /// Tasks submitted but not yet claimed; the workers' wake predicate.
  size_t queued_ GUARDED_BY(sleep_mu_) = 0;
  bool stop_ GUARDED_BY(sleep_mu_) = false;

  std::atomic<uint64_t> submit_ticket_{0};

  obs::Counter* tasks_total_;
  obs::Counter* steals_total_;
  obs::Gauge* queue_depth_;

  std::vector<std::thread> threads_;
};

/// Tracks one batch of tasks submitted to a pool; Wait() returns once all
/// of them have finished. The group must outlive its tasks: Wait() (also
/// called by the destructor) guarantees that.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `fn` to the pool as part of this group.
  void Run(std::function<void()> fn);

  /// Blocks until every Run() task has finished, executing queued pool
  /// tasks on the calling thread while it waits (caller participation).
  void Wait();

 private:
  ThreadPool* pool_;
  Mutex mu_;
  CondVar done_cv_;
  size_t pending_ GUARDED_BY(mu_) = 0;
};

}  // namespace cubrick
