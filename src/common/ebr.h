// Epoch-based memory reclamation (EBR).
//
// The quiescent-point frees this replaces (vis-cache Clear(), purge's
// stop-the-shard compaction swap) coupled reclamation to coarse barriers:
// retired objects could only be freed when *nothing* was reading, so either
// readers blocked reclaimers (the 64-entry retired backlog made
// VisibilityCache::Publish decline) or reclaimers blocked readers (purge
// waited for scan quiescence). EBR decouples them with the classic
// three-epoch scheme (Fraser 2004; EEMARQ, arXiv 2210.17086):
//
//  * A global epoch advances monotonically. Each reader thread owns one slot
//    in a fixed-size table and *pins* itself to the epoch it observed for
//    the duration of a critical section (the RAII `Guard`).
//  * Unlinking an object from a shared structure and then calling
//    `Retire(ptr, deleter, bytes)` places it in the limbo list of the
//    current epoch. The object stays reachable only to threads already
//    inside a critical section.
//  * `TryAdvance()` moves the global epoch from e to e+1 once every pinned
//    slot has observed e. At that moment the limbo list of epoch e-2 is
//    freed: any thread that could still hold a retired pointer was pinned
//    at the retire epoch or earlier, and such pins block the two advances
//    required to get here.
//
// Safety contract (enforced by aosi_lint's `ebr-guard` rule; rationale in
// DESIGN.md §4d "Memory reclamation"):
//
//  * A pointer obtained from an EBR-protected structure may be dereferenced
//    only while the `Guard` under which it was obtained is alive.
//  * Retire-managed objects must die through their registered deleter; a
//    direct `delete` is only legal inside another retire-managed object's
//    destructor (which itself runs at a safe epoch) and carries an
//    `// ebr-deleter` marker for the linter.
//  * Guards must not be held across blocking waits on other guards'
//    progress (there are none in-tree: TryAdvance never blocks).
//
// Guards nest: an inner Guard on an already-pinned thread is a counter
// bump, so helpers like VisibilityForScan can pin defensively while their
// callers hold the scan-scope guard.
//
// Health metrics (docs/OBSERVABILITY.md, "ebr.*") are published into
// obs::MetricsRegistry::Global(): pinned threads, limbo bytes/objects,
// advances and advance stalls.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"

namespace cubrick::obs {
class Counter;
class Gauge;
}  // namespace cubrick::obs

namespace cubrick::ebr {

class Guard;

/// The process-wide collector: global epoch, per-thread pin slots, and the
/// three limbo buckets. All users share Collector::Global() — reclamation
/// safety is a whole-process property, so per-subsystem collectors would
/// only multiply the epoch bookkeeping without isolating anything.
class Collector {
 public:
  /// Upper bound on concurrently *registered* threads (slots are recycled
  /// when a thread exits). Shard threads + pool workers + test threads stay
  /// far below this.
  static constexpr size_t kMaxSlots = 256;

  /// Epochs retired objects wait before free: bucket count of the classic
  /// three-epoch scheme.
  static constexpr uint64_t kBuckets = 3;

  static Collector& Global();

  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Places `ptr` in the current epoch's limbo list; `deleter(ptr)` runs
  /// after two epoch advances, when no pinned thread can still hold it.
  /// `bytes` is an accounting hint for the ebr.limbo_bytes gauge and the
  /// advance heuristic. The caller must already have unlinked `ptr` from
  /// every shared structure. Safe to call with or without a live Guard,
  /// and from inside another retiree's deleter.
  void Retire(void* ptr, void (*deleter)(void*), size_t bytes);

  /// Attempts one epoch advance; frees the limbo bucket that becomes
  /// unreachable on success. Returns true when the epoch advanced. Never
  /// blocks: a pinned straggler makes it return false (counted in
  /// ebr.advance_stalls). Retire() calls this on an amortized schedule, so
  /// explicit calls are only needed to bound reclamation lag after bulk
  /// retirement (e.g. the end of a purge round).
  bool TryAdvance();

  /// Test-only: advances until the limbo lists are empty or a pinned guard
  /// blocks progress. Returns true when limbo drained completely.
  bool DrainForTest();

  /// Test-only observers.
  uint64_t EpochForTest() const;
  size_t LimboObjectsForTest() const;
  size_t PinnedThreadsForTest() const;

 private:
  friend class Guard;

  /// One per-thread pin slot. state packs (epoch << 1) | pinned. Padded to
  /// a cache line so pin/unpin of neighbouring threads never false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> state{0};
    std::atomic<bool> in_use{false};
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    size_t bytes;
  };

  /// Per-thread slot handle + Guard nesting depth (defined in ebr.cc).
  struct ThreadReg;

  Collector();

  /// The calling thread's registration (function-local thread_local).
  static ThreadReg& LocalReg();

  /// Outermost-Guard pin/unpin for the calling thread, claiming a slot on
  /// first use. Nested Guards only touch the thread-local depth counter.
  void PinThisThread();
  void UnpinThisThread();

  static uint64_t Pack(uint64_t epoch, bool pinned) {
    return (epoch << 1) | (pinned ? 1u : 0u);
  }
  static uint64_t StateEra(uint64_t state) { return state >> 1; }
  static bool StatePinned(uint64_t state) { return (state & 1u) != 0; }

  /// The calling thread's slot, registering it on first use (thread_local
  /// cache in ebr.cc; the slot is recycled when the thread exits).
  Slot* SlotForThisThread();

  /// Pin/unpin the outermost Guard of the calling thread.
  void Pin(Slot* slot);
  void Unpin(Slot* slot);

  /// Frees a drained bucket's contents outside limbo_mu_ (deleters may
  /// recursively Retire).
  void Free(std::vector<Retired> batch);

  /// Global epoch. Written only under limbo_mu_ (release); read lock-free
  /// by Pin.
  std::atomic<uint64_t> global_epoch_{0};

  Slot slots_[kMaxSlots];

  /// Serializes retire bookkeeping and epoch advances. Never held while
  /// running deleters and never held across anything blocking, so it cannot
  /// participate in lock cycles.
  mutable Mutex limbo_mu_;
  /// limbo_[e % kBuckets] holds objects retired while the global epoch was
  /// e (for the currently reachable window of epochs).
  std::vector<Retired> limbo_[kBuckets] GUARDED_BY(limbo_mu_);
  /// Retires since the last advance attempt (the amortization counter).
  size_t retires_since_advance_ GUARDED_BY(limbo_mu_) = 0;

  // ebr.* instruments, resolved once at construction.
  obs::Counter* retired_total_;
  obs::Counter* freed_total_;
  obs::Counter* advances_total_;
  obs::Counter* advance_stalls_;
  obs::Gauge* limbo_bytes_;
  obs::Gauge* limbo_objects_;
  obs::Gauge* pinned_threads_;
  obs::Gauge* epoch_gauge_;
};

/// RAII critical-section pin against Collector::Global(). Cheap (one store
/// + one fence on the outermost pin, a counter bump when nested) and
/// reentrant. Must be stack-scoped on the acquiring thread; never store a
/// Guard in a structure another thread destroys.
class Guard {
 public:
  Guard();
  ~Guard();

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

/// Convenience: retires `ptr` with a deleter that `delete`s it as T,
/// charging sizeof(T) + `extra_bytes` to the limbo accounting.
template <typename T>
void RetireDelete(const T* ptr, size_t extra_bytes = 0) {
  if (ptr == nullptr) return;
  Collector::Global().Retire(
      const_cast<T*>(ptr),
      [](void* p) {
        delete static_cast<T*>(p);  // ebr-deleter
      },
      sizeof(T) + extra_bytes);
}

}  // namespace cubrick::ebr
