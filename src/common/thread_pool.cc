#include "common/thread_pool.h"

#include <utility>

#include "obs/metrics.h"

namespace cubrick {

ThreadPool::ThreadPool(size_t num_threads) {
  auto& reg = obs::MetricsRegistry::Global();
  tasks_total_ = reg.GetCounter("pool.tasks_total");
  steals_total_ = reg.GetCounter("pool.steals_total");
  queue_depth_ = reg.GetGauge("pool.queue_depth");
  const size_t n = num_threads == 0 ? 1 : num_threads;
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(sleep_mu_);
    stop_ = true;
    wake_cv_.NotifyAll();
  }
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // The ticket only spreads tasks across deques; any placement is correct
  // (work stealing rebalances), so no ordering is carried through it.
  // relaxed: round-robin placement hint; the task is published via the deque mutex
  const uint64_t t = submit_ticket_.fetch_add(1, std::memory_order_relaxed);
  Worker& worker = *queues_[t % queues_.size()];
  {
    MutexLock lock(worker.mu);
    worker.tasks.push_back(std::move(task));
  }
  tasks_total_->Add();
  // Publish-then-count: the task is already claimable, so a worker that
  // observes the incremented count always finds work (or someone else
  // already ran it).
  MutexLock lock(sleep_mu_);
  ++queued_;
  queue_depth_->Set(static_cast<int64_t>(queued_));
  wake_cv_.NotifyOne();
}

bool ThreadPool::PopTask(size_t home, std::function<void()>* out) {
  const size_t n = queues_.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t q = (home + i) % n;
    Worker& worker = *queues_[q];
    MutexLock lock(worker.mu);
    if (worker.tasks.empty()) continue;
    if (i == 0) {
      *out = std::move(worker.tasks.front());
      worker.tasks.pop_front();
    } else {
      // Steal from the cold end of a sibling's deque.
      *out = std::move(worker.tasks.back());
      worker.tasks.pop_back();
      steals_total_->Add();
    }
    return true;
  }
  return false;
}

bool ThreadPool::RunOneFrom(size_t home) {
  std::function<void()> task;
  if (!PopTask(home, &task)) return false;
  {
    MutexLock lock(sleep_mu_);
    --queued_;
    queue_depth_->Set(static_cast<int64_t>(queued_));
  }
  task();
  return true;
}

bool ThreadPool::TryRunOne() { return RunOneFrom(/*home=*/0); }

void ThreadPool::WorkerLoop(size_t index) {
  while (true) {
    if (RunOneFrom(index)) continue;
    MutexLock lock(sleep_mu_);
    // queued_ can lag a concurrent claim by a moment (the claimer
    // decrements after popping), which at worst causes one extra loop —
    // never a missed task, because Submit increments under this mutex
    // after the task is claimable.
    while (queued_ == 0 && !stop_) {
      wake_cv_.Wait(lock);
    }
    if (stop_ && queued_ == 0) return;
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::thread::hardware_concurrency() == 0
          ? 1
          : std::thread::hardware_concurrency());
  return *pool;
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    MutexLock lock(mu_);
    --pending_;
    if (pending_ == 0) done_cv_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  // Caller participation: execute queued tasks (this group's or anyone's)
  // until the pool runs dry or our batch completes, then block.
  while (true) {
    {
      MutexLock lock(mu_);
      if (pending_ == 0) return;
    }
    if (!pool_->TryRunOne()) break;
  }
  MutexLock lock(mu_);
  while (pending_ > 0) {
    done_cv_.Wait(lock);
  }
}

}  // namespace cubrick
