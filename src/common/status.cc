#include "common/status.h"

#include <sstream>

namespace cubrick {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::ostringstream out;
  out << StatusCodeToString(code_) << ": " << message_;
  return out.str();
}

namespace internal {

void CheckFailed(const char* expr, const char* file, int line) {
  std::ostringstream out;
  out << "CUBRICK_CHECK failed: (" << expr << ") at " << file << ":" << line;
  throw CheckFailure(out.str());
}

}  // namespace internal
}  // namespace cubrick
