// Bounded multi-producer single-consumer work queue for brick shards.
//
// Cubrick shards all bricks by bid across CPU cores; each shard owns an input
// queue of operations (loads, queries, deletes, purges) drained by exactly
// one thread (paper §V-B, "Flushing"). Because a single thread applies every
// operation for a shard, no low-level locking is needed on the bricks
// themselves — the queue is the only synchronized structure.

#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/status.h"

namespace cubrick {

/// Blocking MPSC queue. Push from any thread; Pop from the single consumer.
template <typename T>
class ShardQueue {
 public:
  explicit ShardQueue(size_t max_size = 0) : max_size_(max_size) {}

  /// Enqueues an item, blocking while the queue is at capacity.
  /// Returns false if the queue has been closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || max_size_ == 0 || items_.size() < max_size_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues one item, blocking while empty. Returns nullopt once the queue
  /// is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking dequeue.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed; pending items can still be drained.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t max_size_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cubrick
