// Bounded multi-producer single-consumer work queue for brick shards.
//
// Cubrick shards all bricks by bid across CPU cores; each shard owns an input
// queue of operations (loads, queries, deletes, purges) drained by exactly
// one thread (paper §V-B, "Flushing"). Because a single thread applies every
// operation for a shard, no low-level locking is needed on the bricks
// themselves — the queue is the only synchronized structure.

#pragma once

#include <deque>
#include <optional>

#include "common/mutex.h"
#include "common/status.h"

namespace cubrick {

/// Blocking MPSC queue. Push from any thread; Pop from the single consumer.
template <typename T>
class ShardQueue {
 public:
  explicit ShardQueue(size_t max_size = 0) : max_size_(max_size) {}

  /// Enqueues an item, blocking while the queue is at capacity.
  /// Returns false if the queue has been closed.
  bool Push(T item) {
    MutexLock lock(mutex_);
    while (!closed_ && max_size_ != 0 && items_.size() >= max_size_) {
      not_full_.Wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Dequeues one item, blocking while empty. Returns nullopt once the queue
  /// is closed and drained.
  std::optional<T> Pop() {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      not_empty_.Wait(lock);
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking dequeue.
  std::optional<T> TryPop() {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Marks the queue closed; pending items can still be drained.
  void Close() {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  const size_t max_size_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace cubrick
