#pragma once

// Clang Thread Safety Analysis attribute macros.
//
// These expand to Clang's `capability` attributes when the compiler supports
// them (clang with -Wthread-safety) and to nothing everywhere else, so GCC
// builds are unaffected. See docs/STATIC_ANALYSIS.md for the conventions used
// in this tree and https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for
// the analysis itself.

#if defined(__clang__) && (!defined(SWIG))
#define CUBRICK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CUBRICK_THREAD_ANNOTATION(x)  // no-op
#endif

// Marks a class as a capability (e.g. a mutex). `x` is the name the analysis
// uses in diagnostics ("mutex", "shared mutex", ...).
#define CAPABILITY(x) CUBRICK_THREAD_ANNOTATION(capability(x))

// Marks a RAII class whose constructor acquires and destructor releases a
// capability.
#define SCOPED_CAPABILITY CUBRICK_THREAD_ANNOTATION(scoped_lockable)

// Declares that a data member is protected by the given capability. Reads
// require the capability shared or exclusive; writes require it exclusive.
#define GUARDED_BY(x) CUBRICK_THREAD_ANNOTATION(guarded_by(x))

// Declares that the memory a pointer member points at is protected by the
// given capability (the pointer itself is not).
#define PT_GUARDED_BY(x) CUBRICK_THREAD_ANNOTATION(pt_guarded_by(x))

// Declares that the caller must hold the given capabilities exclusively /
// shared before calling the function.
#define REQUIRES(...) \
  CUBRICK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CUBRICK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Declares that the function acquires / releases capabilities.
#define ACQUIRE(...) CUBRICK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CUBRICK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) CUBRICK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CUBRICK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  CUBRICK_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// Declares that the function tries to acquire the capability and returns
// `b` on success.
#define TRY_ACQUIRE(b, ...) \
  CUBRICK_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))
#define TRY_ACQUIRE_SHARED(b, ...) \
  CUBRICK_THREAD_ANNOTATION(try_acquire_shared_capability(b, __VA_ARGS__))

// Declares that the caller must NOT hold the given capabilities. Used on
// public methods that lock internally, to catch self-deadlock.
#define EXCLUDES(...) CUBRICK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Declares that the function returns a reference to the capability guarding
// the annotated data.
#define RETURN_CAPABILITY(x) CUBRICK_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: turns the analysis off for one function body. Every use must
// carry a comment explaining why the discipline cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  CUBRICK_THREAD_ANNOTATION(no_thread_safety_analysis)
