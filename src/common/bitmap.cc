#include "common/bitmap.h"

#include "common/simd.h"
#include "common/status.h"

namespace cubrick {

namespace {
constexpr uint64_t kAllOnes = ~0ULL;

size_t WordsFor(size_t bits) { return (bits + 63) / 64; }
}  // namespace

Bitmap::Bitmap(size_t size, bool initial)
    : size_(size), words_(WordsFor(size), initial ? kAllOnes : 0ULL) {
  if (initial) {
    ClearTrailingBits();
  }
}

void Bitmap::SetRange(size_t begin, size_t end) {
  CUBRICK_CHECK(begin <= end && end <= size_);
  if (begin == end) return;
  const size_t first_word = begin >> 6;
  const size_t last_word = (end - 1) >> 6;
  const uint64_t first_mask = kAllOnes << (begin & 63);
  const uint64_t last_mask = kAllOnes >> (63 - ((end - 1) & 63));
  if (first_word == last_word) {
    words_[first_word] |= first_mask & last_mask;
    return;
  }
  words_[first_word] |= first_mask;
  for (size_t w = first_word + 1; w < last_word; ++w) {
    words_[w] = kAllOnes;
  }
  words_[last_word] |= last_mask;
}

void Bitmap::ClearRange(size_t begin, size_t end) {
  CUBRICK_CHECK(begin <= end && end <= size_);
  if (begin == end) return;
  const size_t first_word = begin >> 6;
  const size_t last_word = (end - 1) >> 6;
  const uint64_t first_mask = kAllOnes << (begin & 63);
  const uint64_t last_mask = kAllOnes >> (63 - ((end - 1) & 63));
  if (first_word == last_word) {
    words_[first_word] &= ~(first_mask & last_mask);
    return;
  }
  words_[first_word] &= ~first_mask;
  for (size_t w = first_word + 1; w < last_word; ++w) {
    words_[w] = 0;
  }
  words_[last_word] &= ~last_mask;
}

void Bitmap::SetAll() {
  for (auto& w : words_) w = kAllOnes;
  ClearTrailingBits();
}

void Bitmap::ClearAll() {
  for (auto& w : words_) w = 0;
}

size_t Bitmap::CountSet() const {
  return simd::ActiveKernels().count_bits(words_.data(), words_.size());
}

size_t Bitmap::CountSetInRange(size_t begin, size_t end) const {
  CUBRICK_CHECK(begin <= end && end <= size_);
  size_t count = 0;
  // Simple per-word walk; ranges in scans are large so mask edges only.
  size_t i = begin;
  while (i < end) {
    const size_t word_idx = i >> 6;
    const size_t word_begin = word_idx << 6;
    const size_t word_end = word_begin + 64;
    const size_t lo = i - word_begin;
    const size_t hi = (end < word_end ? end : word_end) - word_begin;
    uint64_t mask = kAllOnes;
    mask <<= lo;
    if (hi < 64) {
      mask &= kAllOnes >> (64 - hi);
    }
    count += static_cast<size_t>(__builtin_popcountll(words_[word_idx] & mask));
    i = word_end < end ? word_end : end;
  }
  return count;
}

bool Bitmap::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool Bitmap::All() const { return CountSet() == size_; }

void Bitmap::And(const Bitmap& other) {
  CUBRICK_CHECK(size_ == other.size_);
  simd::ActiveKernels().and_words(words_.data(), other.words_.data(),
                                  words_.size());
}

void Bitmap::Or(const Bitmap& other) {
  CUBRICK_CHECK(size_ == other.size_);
  simd::ActiveKernels().or_words(words_.data(), other.words_.data(),
                                 words_.size());
}

void Bitmap::AndNot(const Bitmap& other) {
  CUBRICK_CHECK(size_ == other.size_);
  simd::ActiveKernels().andnot_words(words_.data(), other.words_.data(),
                                     words_.size());
}

size_t Bitmap::FindNextSet(size_t from) const {
  if (from >= size_) return size_;
  size_t word_idx = from >> 6;
  uint64_t word = words_[word_idx] & (kAllOnes << (from & 63));
  while (true) {
    if (word != 0) {
      const size_t bit =
          word_idx * 64 + static_cast<size_t>(__builtin_ctzll(word));
      return bit < size_ ? bit : size_;
    }
    ++word_idx;
    if (word_idx >= words_.size()) return size_;
    word = words_[word_idx];
  }
}

void Bitmap::Resize(size_t new_size) {
  // Shrinking must drop stale bits so a later grow sees zeros.
  if (new_size < size_) {
    size_ = new_size;
    words_.resize(WordsFor(new_size));
    ClearTrailingBits();
    return;
  }
  size_ = new_size;
  words_.resize(WordsFor(new_size), 0ULL);
}

std::string Bitmap::ToString() const {
  std::string out(size_, '0');
  for (size_t i = 0; i < size_; ++i) {
    if (Get(i)) out[i] = '1';
  }
  return out;
}

Bitmap Bitmap::FromString(const std::string& bits) {
  Bitmap bm(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    CUBRICK_CHECK(bits[i] == '0' || bits[i] == '1');
    if (bits[i] == '1') bm.Set(i);
  }
  return bm;
}

bool Bitmap::operator==(const Bitmap& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

void Bitmap::ClearTrailingBits() {
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= kAllOnes >> (64 - tail);
  }
}

}  // namespace cubrick
