// A dense bitmap used for scan visibility and filtering.
//
// Column-wise scans in Cubrick carry one bit per row dictating whether the
// row should be considered or skipped (paper §III-C3). The AOSI visibility
// pass produces one of these per brick; filter evaluation then ANDs more
// bits away. Bits cleared by concurrency control may never be re-set by
// later stages.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cubrick {

/// Fixed-size, word-packed bitmap with range operations.
class Bitmap {
 public:
  Bitmap() = default;

  /// Creates a bitmap of `size` bits, all initialized to `initial`.
  explicit Bitmap(size_t size, bool initial = false);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Reads bit `i`. Precondition: i < size().
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Sets bit `i` to 1. Precondition: i < size().
  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  /// Clears bit `i`. Precondition: i < size().
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Assigns bit `i`. Precondition: i < size().
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Sets all bits in [begin, end) to 1. Preconditions: begin <= end <= size.
  void SetRange(size_t begin, size_t end);

  /// Clears all bits in [begin, end).
  void ClearRange(size_t begin, size_t end);

  /// Sets / clears every bit.
  void SetAll();
  void ClearAll();

  /// Number of set bits.
  size_t CountSet() const;

  /// Number of set bits in [begin, end).
  size_t CountSetInRange(size_t begin, size_t end) const;

  /// True when no bit is set.
  bool None() const;
  /// True when every bit is set.
  bool All() const;

  /// In-place intersection / union. Both bitmaps must have equal size.
  void And(const Bitmap& other);
  void Or(const Bitmap& other);
  /// In-place `this &= ~other`.
  void AndNot(const Bitmap& other);

  /// Index of the first set bit at or after `from`, or size() if none.
  size_t FindNextSet(size_t from) const;

  // --- Word-granular access for vectorized scan kernels -------------------
  //
  // Bits [w*64, w*64+64) live in word w; bits at or past size() are always
  // zero, so kernels may skip zero words and popcount set ones without
  // worrying about the ragged tail.

  /// Number of 64-bit words backing the bitmap.
  size_t num_words() const { return words_.size(); }

  /// Word `w`. Precondition: w < num_words().
  uint64_t Word(size_t w) const { return words_[w]; }

  /// Overwrites word `w`; bits past size() are masked off. Precondition:
  /// w < num_words().
  void SetWord(size_t w, uint64_t value) {
    words_[w] = value;
    if (w + 1 == words_.size()) ClearTrailingBits();
  }

  /// Invokes `fn(index)` for every set bit, in increasing order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Grows the bitmap to `new_size` bits; new bits are zero.
  void Resize(size_t new_size);

  /// Renders as a left-to-right '0'/'1' string (bit 0 first), as used in the
  /// paper's Table III.
  std::string ToString() const;

  /// Parses a '0'/'1' string produced by ToString().
  static Bitmap FromString(const std::string& bits);

  bool operator==(const Bitmap& other) const;

  /// Bytes of heap memory used by the word array.
  size_t MemoryUsage() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  /// Zeroes any bits in the last word beyond size_ (keeps CountSet exact).
  void ClearTrailingBits();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cubrick
