#include "common/ebr.h"

#include <utility>

#include "common/status.h"
#include "obs/metrics.h"

namespace cubrick::ebr {

namespace {

/// Retires between amortized advance attempts. Advancing scans kMaxSlots
/// slot words, so attempting on every retire would make bulk retirement
/// quadratic in slots; every 8th keeps limbo short without that.
constexpr size_t kAdvanceEvery = 8;

/// A bucket holding this many bytes attempts an advance on every retire —
/// large retirees (whole Bricks) should not wait out the amortization.
constexpr size_t kAdvanceBytesPressure = 8u << 20;

}  // namespace

// ---------------------------------------------------------------------------
// Per-thread registration
// ---------------------------------------------------------------------------

/// The calling thread's slot handle. `depth` counts nested Guards; the slot
/// is claimed on the first pin and recycled when the thread exits. Members
/// are only touched by the owning thread (the slot's atomics carry the
/// cross-thread protocol).
struct Collector::ThreadReg {
  Slot* slot = nullptr;
  uint32_t depth = 0;

  ~ThreadReg() {
    // A Guard outliving its thread would be a bug; the pin protocol is
    // strictly stack-scoped.
    CUBRICK_CHECK(depth == 0);
    if (slot != nullptr) {
      // release pairs with the acquire CAS in ClaimSlot: the next owner
      // observes a fully unpinned slot.
      slot->in_use.store(false, std::memory_order_release);
    }
  }
};

Collector::ThreadReg& Collector::LocalReg() {
  thread_local ThreadReg reg;
  return reg;
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

Collector& Collector::Global() {
  static Collector collector;
  return collector;
}

Collector::Collector() {
  auto& reg = obs::MetricsRegistry::Global();
  retired_total_ = reg.GetCounter("ebr.retired_total");
  freed_total_ = reg.GetCounter("ebr.freed_total");
  advances_total_ = reg.GetCounter("ebr.advances_total");
  advance_stalls_ = reg.GetCounter("ebr.advance_stalls");
  limbo_bytes_ = reg.GetGauge("ebr.limbo_bytes");
  limbo_objects_ = reg.GetGauge("ebr.limbo_objects");
  pinned_threads_ = reg.GetGauge("ebr.pinned_threads");
  epoch_gauge_ = reg.GetGauge("ebr.epoch");
}

Collector::~Collector() {
  // Process teardown: every user thread is gone, so whatever is still in
  // limbo is unreachable. Free it for leak-clean ASan exits.
  std::vector<Retired> batch;
  {
    MutexLock lock(limbo_mu_);
    for (auto& bucket : limbo_) {
      for (const Retired& r : bucket) batch.push_back(r);
      bucket.clear();
    }
  }
  Free(std::move(batch));
}

Collector::Slot* Collector::SlotForThisThread() {
  ThreadReg& reg = LocalReg();
  if (reg.slot != nullptr) return reg.slot;
  for (size_t i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    // acq_rel: acquire the previous owner's release (fully unpinned state),
    // release our claim to the next scanner.
    if (slots_[i].in_use.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      slots_[i].state.store(Pack(0, false), std::memory_order_relaxed);
      reg.slot = &slots_[i];
      return reg.slot;
    }
  }
  CUBRICK_CHECK(false && "ebr::Collector slot table exhausted");
  return nullptr;
}

void Collector::Pin(Slot* slot) {
  uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  while (true) {
    slot->state.store(Pack(e, true), std::memory_order_relaxed);
    // seq_cst pairs with the fence in TryAdvance: either the advancer's
    // slot scan sees this pin, or this thread's critical-section loads see
    // everything that happened before the advance (in particular every
    // unlink whose retiree the advance freed).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const uint64_t now = global_epoch_.load(std::memory_order_relaxed);
    if (now == e) return;
    // The epoch advanced while pinning; re-pin at the newer epoch so this
    // thread never holds the advance back a full lap.
    e = now;
  }
}

void Collector::Unpin(Slot* slot) {
  const uint64_t packed = slot->state.load(std::memory_order_relaxed);
  // release pairs with the acquire slot scan in TryAdvance: an advance that
  // sees the unpin also sees every read this critical section performed,
  // so freeing behind it cannot race those reads.
  slot->state.store(Pack(StateEra(packed), false),
                    std::memory_order_release);
}

void Collector::PinThisThread() {
  ThreadReg& reg = LocalReg();
  if (reg.depth++ == 0) {
    Pin(SlotForThisThread());
  }
}

void Collector::UnpinThisThread() {
  ThreadReg& reg = LocalReg();
  CUBRICK_CHECK(reg.depth > 0);
  if (--reg.depth == 0) {
    Unpin(reg.slot);
  }
}

void Collector::Retire(void* ptr, void (*deleter)(void*), size_t bytes) {
  CUBRICK_CHECK(ptr != nullptr);
  CUBRICK_CHECK(deleter != nullptr);
  bool attempt_advance = false;
  {
    MutexLock lock(limbo_mu_);
    const uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    limbo_[e % kBuckets].push_back(Retired{ptr, deleter, bytes});
    ++retires_since_advance_;
    size_t bucket_bytes = 0;
    for (const Retired& r : limbo_[e % kBuckets]) bucket_bytes += r.bytes;
    attempt_advance = retires_since_advance_ >= kAdvanceEvery ||
                      bucket_bytes >= kAdvanceBytesPressure;
  }
  retired_total_->Add();
  limbo_objects_->Add(1);
  limbo_bytes_->Add(static_cast<int64_t>(bytes));
  if (attempt_advance) {
    TryAdvance();
  }
}

bool Collector::TryAdvance() {
  std::vector<Retired> batch;
  bool advanced = false;
  {
    MutexLock lock(limbo_mu_);
    const uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    // seq_cst pairs with the fence in Pin: a pin this scan misses started
    // after the scan, so its critical section can only observe the
    // structure states produced after every unlink retired into the bucket
    // this advance frees.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    size_t pinned = 0;
    bool straggler = false;
    for (size_t i = 0; i < kMaxSlots; ++i) {
      if (!slots_[i].in_use.load(std::memory_order_acquire)) continue;
      // acquire pairs with the release in Unpin (see there).
      const uint64_t packed = slots_[i].state.load(std::memory_order_acquire);
      if (!StatePinned(packed)) continue;
      ++pinned;
      if (StateEra(packed) != e) {
        straggler = true;
      }
    }
    pinned_threads_->Set(static_cast<int64_t>(pinned));
    if (straggler) {
      advance_stalls_->Add();
    } else {
      // All pinned threads observed e: epoch e-2's limbo bucket (stored at
      // (e+1) % kBuckets, which now becomes the bucket of the new epoch)
      // is unreachable. release: a Pin that reads e+1 must also observe
      // the drained bucket state.
      global_epoch_.store(e + 1, std::memory_order_release);
      batch.swap(limbo_[(e + 1) % kBuckets]);
      retires_since_advance_ = 0;
      advanced = true;
    }
  }
  if (advanced) {
    advances_total_->Add();
    epoch_gauge_->Set(
        static_cast<int64_t>(global_epoch_.load(std::memory_order_relaxed)));
    Free(std::move(batch));
  }
  return advanced;
}

void Collector::Free(std::vector<Retired> batch) {
  if (batch.empty()) return;
  int64_t bytes = 0;
  for (const Retired& r : batch) {
    bytes += static_cast<int64_t>(r.bytes);
    r.deleter(r.ptr);
  }
  freed_total_->Add(batch.size());
  limbo_objects_->Add(-static_cast<int64_t>(batch.size()));
  limbo_bytes_->Add(-bytes);
}

bool Collector::DrainForTest() {
  // Each successful advance frees one bucket; three advances flush a fully
  // quiescent collector. Stop as soon as an advance stalls (a live Guard).
  for (int i = 0; i < 8; ++i) {
    if (LimboObjectsForTest() == 0) return true;
    if (!TryAdvance()) return false;
  }
  return LimboObjectsForTest() == 0;
}

uint64_t Collector::EpochForTest() const {
  return global_epoch_.load(std::memory_order_acquire);
}

size_t Collector::LimboObjectsForTest() const {
  MutexLock lock(limbo_mu_);
  size_t n = 0;
  for (const auto& bucket : limbo_) n += bucket.size();
  return n;
}

size_t Collector::PinnedThreadsForTest() const {
  size_t pinned = 0;
  for (size_t i = 0; i < kMaxSlots; ++i) {
    if (!slots_[i].in_use.load(std::memory_order_acquire)) continue;
    const uint64_t packed = slots_[i].state.load(std::memory_order_acquire);
    if (StatePinned(packed)) ++pinned;
  }
  return pinned;
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

Guard::Guard() { Collector::Global().PinThisThread(); }

Guard::~Guard() { Collector::Global().UnpinThisThread(); }

}  // namespace cubrick::ebr
