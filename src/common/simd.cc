#include "common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CUBRICK_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define CUBRICK_SIMD_HAVE_AVX2 0
#endif

#if defined(__aarch64__)
#define CUBRICK_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#else
#define CUBRICK_SIMD_HAVE_NEON 0
#endif

namespace cubrick::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend — the reference implementation of the kernel contracts.
// Every other backend must be bit-identical to these (simd_kernel_test.cc).
// ---------------------------------------------------------------------------

uint64_t FilterEqScalar(const uint64_t* coords, uint64_t value) {
  uint64_t mask = 0;
  for (size_t b = 0; b < 64; ++b) {
    mask |= static_cast<uint64_t>(coords[b] == value) << b;
  }
  return mask;
}

uint64_t FilterRangeScalar(const uint64_t* coords, uint64_t lo, uint64_t hi) {
  uint64_t mask = 0;
  for (size_t b = 0; b < 64; ++b) {
    mask |= static_cast<uint64_t>(coords[b] >= lo && coords[b] <= hi) << b;
  }
  return mask;
}

uint64_t FilterInScalar(const uint64_t* coords, const uint64_t* values,
                        size_t num_values) {
  uint64_t mask = 0;
  for (size_t v = 0; v < num_values; ++v) {
    mask |= FilterEqScalar(coords, values[v]);
  }
  return mask;
}

void FoldInt64Scalar(const int64_t* v, size_t n, uint64_t* sum, int64_t* min,
                     int64_t* max) {
  uint64_t s = 0;
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<uint64_t>(v[i]);  // wrapping: order-insensitive, exact
    if (v[i] < lo) lo = v[i];
    if (v[i] > hi) hi = v[i];
  }
  *sum = s;
  *min = lo;
  *max = hi;
}

// The pinned fold-order contract (simd.h): four lane accumulators, word sum
// (l0+l2)+(l1+l3), sequential tail, MINPD/MAXPD(v, acc) step semantics.
void FoldDoubleScalar(const double* v, size_t n, double* sum, double* min,
                      double* max) {
  const size_t n4 = n & ~size_t{3};
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  const double inf = std::numeric_limits<double>::infinity();
  double lo0 = inf, lo1 = inf, lo2 = inf, lo3 = inf;
  double hi0 = -inf, hi1 = -inf, hi2 = -inf, hi3 = -inf;
  for (size_t i = 0; i < n4; i += 4) {
    const double a = v[i], b = v[i + 1], c = v[i + 2], d = v[i + 3];
    s0 += a;
    s1 += b;
    s2 += c;
    s3 += d;
    lo0 = a < lo0 ? a : lo0;
    lo1 = b < lo1 ? b : lo1;
    lo2 = c < lo2 ? c : lo2;
    lo3 = d < lo3 ? d : lo3;
    hi0 = a > hi0 ? a : hi0;
    hi1 = b > hi1 ? b : hi1;
    hi2 = c > hi2 ? c : hi2;
    hi3 = d > hi3 ? d : hi3;
  }
  double s = (s0 + s2) + (s1 + s3);
  const double lo02 = lo0 < lo2 ? lo0 : lo2;
  const double lo13 = lo1 < lo3 ? lo1 : lo3;
  double lo = lo02 < lo13 ? lo02 : lo13;
  const double hi02 = hi0 > hi2 ? hi0 : hi2;
  const double hi13 = hi1 > hi3 ? hi1 : hi3;
  double hi = hi02 > hi13 ? hi02 : hi13;
  for (size_t i = n4; i < n; ++i) {
    const double x = v[i];
    s += x;
    lo = x < lo ? x : lo;
    hi = x > hi ? x : hi;
  }
  *sum = s;
  *min = lo;
  *max = hi;
}

void AndWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void AndNotWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

size_t CountBitsScalar(const uint64_t* words, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words[i]));
  }
  return count;
}

constexpr Kernels kScalarKernels = {
    Backend::kScalar, FilterEqScalar,   FilterRangeScalar, FilterInScalar,
    FoldInt64Scalar,  FoldDoubleScalar, AndWordsScalar,    OrWordsScalar,
    AndNotWordsScalar, CountBitsScalar,
};

// ---------------------------------------------------------------------------
// AVX2 backend. Compiled behind __attribute__((target("avx2"))) so the TU
// builds without -mavx2; only reachable after a CPUID check in Detect().
// ---------------------------------------------------------------------------

#if CUBRICK_SIMD_HAVE_AVX2

__attribute__((target("avx2"))) uint64_t FilterEqAvx2(const uint64_t* coords,
                                                      uint64_t value) {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  uint64_t mask = 0;
  for (size_t i = 0; i < 64; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(coords + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, v);
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    mask |= static_cast<uint64_t>(m) << i;
  }
  return mask;
}

__attribute__((target("avx2"))) uint64_t FilterRangeAvx2(const uint64_t* coords,
                                                         uint64_t lo,
                                                         uint64_t hi) {
  // AVX2 only has signed 64-bit compares; XOR with the sign bit maps the
  // unsigned order onto the signed one.
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(std::numeric_limits<int64_t>::min()));
  const __m256i lo_b = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(lo)), bias);
  const __m256i hi_b = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(hi)), bias);
  uint64_t mask = 0;
  for (size_t i = 0; i < 64; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(coords + i));
    const __m256i xb = _mm256_xor_si256(x, bias);
    const __m256i below = _mm256_cmpgt_epi64(lo_b, xb);  // x < lo
    const __m256i above = _mm256_cmpgt_epi64(xb, hi_b);  // x > hi
    const unsigned bad = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_or_si256(below, above))));
    mask |= static_cast<uint64_t>(~bad & 0xfu) << i;
  }
  return mask;
}

__attribute__((target("avx2"))) uint64_t FilterInAvx2(const uint64_t* coords,
                                                      const uint64_t* values,
                                                      size_t num_values) {
  uint64_t mask = 0;
  for (size_t v = 0; v < num_values; ++v) {
    mask |= FilterEqAvx2(coords, values[v]);
  }
  return mask;
}

__attribute__((target("avx2"))) void FoldInt64Avx2(const int64_t* v, size_t n,
                                                   uint64_t* sum, int64_t* min,
                                                   int64_t* max) {
  const size_t n4 = n & ~size_t{3};
  __m256i s = _mm256_setzero_si256();
  __m256i lo = _mm256_set1_epi64x(std::numeric_limits<int64_t>::max());
  __m256i hi = _mm256_set1_epi64x(std::numeric_limits<int64_t>::min());
  for (size_t i = 0; i < n4; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    s = _mm256_add_epi64(s, x);
    lo = _mm256_blendv_epi8(lo, x, _mm256_cmpgt_epi64(lo, x));
    hi = _mm256_blendv_epi8(hi, x, _mm256_cmpgt_epi64(x, hi));
  }
  uint64_t s_lanes[4];
  int64_t lo_lanes[4], hi_lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(s_lanes), s);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo_lanes), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi_lanes), hi);
  // Integer folds are order-insensitive: any horizontal order is exact.
  uint64_t s_out = s_lanes[0] + s_lanes[1] + s_lanes[2] + s_lanes[3];
  int64_t lo_out = std::numeric_limits<int64_t>::max();
  int64_t hi_out = std::numeric_limits<int64_t>::min();
  for (int l = 0; l < 4; ++l) {
    if (lo_lanes[l] < lo_out) lo_out = lo_lanes[l];
    if (hi_lanes[l] > hi_out) hi_out = hi_lanes[l];
  }
  for (size_t i = n4; i < n; ++i) {
    s_out += static_cast<uint64_t>(v[i]);
    if (v[i] < lo_out) lo_out = v[i];
    if (v[i] > hi_out) hi_out = v[i];
  }
  *sum = s_out;
  *min = lo_out;
  *max = hi_out;
}

__attribute__((target("avx2"))) void FoldDoubleAvx2(const double* v, size_t n,
                                                    double* sum, double* min,
                                                    double* max) {
  const size_t n4 = n & ~size_t{3};
  const double inf = std::numeric_limits<double>::infinity();
  __m256d s = _mm256_setzero_pd();
  __m256d lo = _mm256_set1_pd(inf);
  __m256d hi = _mm256_set1_pd(-inf);
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    s = _mm256_add_pd(s, x);
    // MINPD/MAXPD(v, acc): NaN and ties resolve to the accumulator, exactly
    // the scalar backend's "(x OP acc) ? x : acc" lane step.
    lo = _mm256_min_pd(x, lo);
    hi = _mm256_max_pd(x, hi);
  }
  // Word sum (l0+l2)+(l1+l3), per the pinned contract.
  const __m128d s2 =
      _mm_add_pd(_mm256_castpd256_pd128(s), _mm256_extractf128_pd(s, 1));
  double s_out =
      _mm_cvtsd_f64(s2) + _mm_cvtsd_f64(_mm_unpackhi_pd(s2, s2));
  const __m128d lo2 = _mm_min_pd(_mm256_castpd256_pd128(lo),
                                 _mm256_extractf128_pd(lo, 1));
  const __m128d lo1 = _mm_min_sd(lo2, _mm_unpackhi_pd(lo2, lo2));
  double lo_out = _mm_cvtsd_f64(lo1);
  const __m128d hi2 = _mm_max_pd(_mm256_castpd256_pd128(hi),
                                 _mm256_extractf128_pd(hi, 1));
  const __m128d hi1 = _mm_max_sd(hi2, _mm_unpackhi_pd(hi2, hi2));
  double hi_out = _mm_cvtsd_f64(hi1);
  for (size_t i = n4; i < n; ++i) {
    const double x = v[i];
    s_out += x;
    lo_out = x < lo_out ? x : lo_out;
    hi_out = x > hi_out ? x : hi_out;
  }
  *sum = s_out;
  *min = lo_out;
  *max = hi_out;
}

__attribute__((target("avx2"))) void AndWordsAvx2(uint64_t* dst,
                                                  const uint64_t* src,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void OrWordsAvx2(uint64_t* dst,
                                                 const uint64_t* src,
                                                 size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void AndNotWordsAvx2(uint64_t* dst,
                                                     const uint64_t* src,
                                                     size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot(b, a) = ~b & a = a & ~b.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(b, a));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

// Positional popcount via the pshufb nibble LUT (Mula); the per-iteration
// SAD collapse keeps byte counters from ever saturating.
__attribute__((target("avx2"))) size_t CountBitsAvx2(const uint64_t* words,
                                                     size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i lo_n = _mm256_and_si256(v, low_mask);
    const __m256i hi_n =
        _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo_n),
                                        _mm256_shuffle_epi8(lut, hi_n));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t count =
      static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words[i]));
  }
  return count;
}

constexpr Kernels kAvx2Kernels = {
    Backend::kAvx2,  FilterEqAvx2,   FilterRangeAvx2, FilterInAvx2,
    FoldInt64Avx2,   FoldDoubleAvx2, AndWordsAvx2,    OrWordsAvx2,
    AndNotWordsAvx2, CountBitsAvx2,
};

#endif  // CUBRICK_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// NEON backend (AArch64 — Advanced SIMD is baseline there, no runtime probe).
// Two 2-lane registers emulate the contract's four lanes so the fold order
// matches the scalar/AVX2 backends bit for bit.
// ---------------------------------------------------------------------------

#if CUBRICK_SIMD_HAVE_NEON

uint64_t FilterEqNeon(const uint64_t* coords, uint64_t value) {
  const uint64x2_t v = vdupq_n_u64(value);
  uint64_t mask = 0;
  for (size_t i = 0; i < 64; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(coords + i), v);
    mask |= (vgetq_lane_u64(eq, 0) & 1ULL) << i;
    mask |= (vgetq_lane_u64(eq, 1) & 1ULL) << (i + 1);
  }
  return mask;
}

uint64_t FilterRangeNeon(const uint64_t* coords, uint64_t lo, uint64_t hi) {
  const uint64x2_t lo_v = vdupq_n_u64(lo);
  const uint64x2_t hi_v = vdupq_n_u64(hi);
  uint64_t mask = 0;
  for (size_t i = 0; i < 64; i += 2) {
    const uint64x2_t x = vld1q_u64(coords + i);
    const uint64x2_t ok = vandq_u64(vcgeq_u64(x, lo_v), vcleq_u64(x, hi_v));
    mask |= (vgetq_lane_u64(ok, 0) & 1ULL) << i;
    mask |= (vgetq_lane_u64(ok, 1) & 1ULL) << (i + 1);
  }
  return mask;
}

uint64_t FilterInNeon(const uint64_t* coords, const uint64_t* values,
                      size_t num_values) {
  uint64_t mask = 0;
  for (size_t v = 0; v < num_values; ++v) {
    mask |= FilterEqNeon(coords, values[v]);
  }
  return mask;
}

void FoldInt64Neon(const int64_t* v, size_t n, uint64_t* sum, int64_t* min,
                   int64_t* max) {
  const size_t n4 = n & ~size_t{3};
  int64x2_t s01 = vdupq_n_s64(0), s23 = vdupq_n_s64(0);
  int64x2_t lo01 = vdupq_n_s64(std::numeric_limits<int64_t>::max());
  int64x2_t lo23 = lo01;
  int64x2_t hi01 = vdupq_n_s64(std::numeric_limits<int64_t>::min());
  int64x2_t hi23 = hi01;
  for (size_t i = 0; i < n4; i += 4) {
    const int64x2_t a = vld1q_s64(v + i);
    const int64x2_t b = vld1q_s64(v + i + 2);
    s01 = vaddq_s64(s01, a);
    s23 = vaddq_s64(s23, b);
    lo01 = vbslq_s64(vcltq_s64(a, lo01), a, lo01);
    lo23 = vbslq_s64(vcltq_s64(b, lo23), b, lo23);
    hi01 = vbslq_s64(vcgtq_s64(a, hi01), a, hi01);
    hi23 = vbslq_s64(vcgtq_s64(b, hi23), b, hi23);
  }
  uint64_t s_out = vgetq_lane_u64(vreinterpretq_u64_s64(s01), 0) +
                   vgetq_lane_u64(vreinterpretq_u64_s64(s01), 1) +
                   vgetq_lane_u64(vreinterpretq_u64_s64(s23), 0) +
                   vgetq_lane_u64(vreinterpretq_u64_s64(s23), 1);
  int64_t lo_out = std::numeric_limits<int64_t>::max();
  int64_t hi_out = std::numeric_limits<int64_t>::min();
  const int64_t lo_lanes[4] = {vgetq_lane_s64(lo01, 0), vgetq_lane_s64(lo01, 1),
                               vgetq_lane_s64(lo23, 0),
                               vgetq_lane_s64(lo23, 1)};
  const int64_t hi_lanes[4] = {vgetq_lane_s64(hi01, 0), vgetq_lane_s64(hi01, 1),
                               vgetq_lane_s64(hi23, 0),
                               vgetq_lane_s64(hi23, 1)};
  for (int l = 0; l < 4; ++l) {
    if (lo_lanes[l] < lo_out) lo_out = lo_lanes[l];
    if (hi_lanes[l] > hi_out) hi_out = hi_lanes[l];
  }
  for (size_t i = n4; i < n; ++i) {
    s_out += static_cast<uint64_t>(v[i]);
    if (v[i] < lo_out) lo_out = v[i];
    if (v[i] > hi_out) hi_out = v[i];
  }
  *sum = s_out;
  *min = lo_out;
  *max = hi_out;
}

void FoldDoubleNeon(const double* v, size_t n, double* sum, double* min,
                    double* max) {
  const size_t n4 = n & ~size_t{3};
  const double inf = std::numeric_limits<double>::infinity();
  float64x2_t s01 = vdupq_n_f64(0.0), s23 = vdupq_n_f64(0.0);
  float64x2_t lo01 = vdupq_n_f64(inf), lo23 = vdupq_n_f64(inf);
  float64x2_t hi01 = vdupq_n_f64(-inf), hi23 = vdupq_n_f64(-inf);
  for (size_t i = 0; i < n4; i += 4) {
    const float64x2_t a = vld1q_f64(v + i);
    const float64x2_t b = vld1q_f64(v + i + 2);
    s01 = vaddq_f64(s01, a);
    s23 = vaddq_f64(s23, b);
    // Compare+select, NOT vminq/vmaxq: NEON min/max propagate NaN, while
    // the contract's "(x OP acc) ? x : acc" step must keep the accumulator.
    lo01 = vbslq_f64(vcltq_f64(a, lo01), a, lo01);
    lo23 = vbslq_f64(vcltq_f64(b, lo23), b, lo23);
    hi01 = vbslq_f64(vcgtq_f64(a, hi01), a, hi01);
    hi23 = vbslq_f64(vcgtq_f64(b, hi23), b, hi23);
  }
  // Word sum (l0+l2)+(l1+l3), per the pinned contract.
  const float64x2_t s02_13 = vaddq_f64(s01, s23);
  double s_out = vgetq_lane_f64(s02_13, 0) + vgetq_lane_f64(s02_13, 1);
  const float64x2_t lo_m =
      vbslq_f64(vcltq_f64(lo01, lo23), lo01, lo23);  // [min(l0,l2), min(l1,l3)]
  const double lo_a = vgetq_lane_f64(lo_m, 0), lo_b = vgetq_lane_f64(lo_m, 1);
  double lo_out = lo_a < lo_b ? lo_a : lo_b;
  const float64x2_t hi_m = vbslq_f64(vcgtq_f64(hi01, hi23), hi01, hi23);
  const double hi_a = vgetq_lane_f64(hi_m, 0), hi_b = vgetq_lane_f64(hi_m, 1);
  double hi_out = hi_a > hi_b ? hi_a : hi_b;
  for (size_t i = n4; i < n; ++i) {
    const double x = v[i];
    s_out += x;
    lo_out = x < lo_out ? x : lo_out;
    hi_out = x > hi_out ? x : hi_out;
  }
  *sum = s_out;
  *min = lo_out;
  *max = hi_out;
}

void AndWordsNeon(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void OrWordsNeon(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void AndNotWordsNeon(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // vbicq(a, b) = a & ~b.
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

size_t CountBitsNeon(const uint64_t* words, size_t n) {
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t bytes =
        vreinterpretq_u8_u64(vld1q_u64(words + i));
    count += vaddlvq_u8(vcntq_u8(bytes));
  }
  for (; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words[i]));
  }
  return count;
}

constexpr Kernels kNeonKernels = {
    Backend::kNeon,  FilterEqNeon,   FilterRangeNeon, FilterInNeon,
    FoldInt64Neon,   FoldDoubleNeon, AndWordsNeon,    OrWordsNeon,
    AndNotWordsNeon, CountBitsNeon,
};

#endif  // CUBRICK_SIMD_HAVE_NEON

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

// -1 = unresolved; otherwise a Backend value. Resolved lazily from
// CUBRICK_SIMD on first Active()/ActiveKernels() call; SetBackend overrides.
std::atomic<int> g_active{-1};

Backend ResolveFromEnv() {
  const char* env = std::getenv("CUBRICK_SIMD");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "auto") == 0) {
    return Detect();
  }
  Backend requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Backend::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Backend::kAvx2;
  } else if (std::strcmp(env, "neon") == 0) {
    requested = Backend::kNeon;
  } else {
    std::fprintf(stderr,
                 "cubrick: CUBRICK_SIMD=\"%s\" is not scalar|avx2|neon|auto; "
                 "using \"%s\"\n",
                 env, BackendName(Detect()));
    return Detect();
  }
  if (!Supported(requested)) {
    std::fprintf(stderr,
                 "cubrick: CUBRICK_SIMD=%s is not supported on this CPU; "
                 "falling back to scalar\n",
                 env);
    return Backend::kScalar;
  }
  return requested;
}

}  // namespace

Backend Detect() {
#if CUBRICK_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
#endif
#if CUBRICK_SIMD_HAVE_NEON
  return Backend::kNeon;
#else
  return Backend::kScalar;
#endif
}

bool Supported(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if CUBRICK_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if CUBRICK_SIMD_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

Backend Active() {
  int b = g_active.load(std::memory_order_acquire);
  if (b >= 0) return static_cast<Backend>(b);
  const Backend resolved = ResolveFromEnv();
  int expected = -1;
  // First resolver wins; concurrent resolvers computed the same value from
  // the same environment, so the loser's answer is identical anyway.
  g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
  return static_cast<Backend>(g_active.load(std::memory_order_acquire));
}

const Kernels& KernelsFor(Backend b) {
  switch (b) {
#if CUBRICK_SIMD_HAVE_AVX2
    case Backend::kAvx2:
      return kAvx2Kernels;
#endif
#if CUBRICK_SIMD_HAVE_NEON
    case Backend::kNeon:
      return kNeonKernels;
#endif
    default:
      return kScalarKernels;
  }
}

const Kernels& ActiveKernels() { return KernelsFor(Active()); }

bool SetBackend(Backend b) {
  if (!Supported(b)) return false;
  g_active.store(static_cast<int>(b), std::memory_order_release);
  return true;
}

void ConfigureFromString(const char* name) {
  if (name == nullptr || name[0] == '\0') return;
  if (std::strcmp(name, "auto") == 0) {
    SetBackend(Detect());
    return;
  }
  Backend requested;
  if (std::strcmp(name, "scalar") == 0) {
    requested = Backend::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    requested = Backend::kAvx2;
  } else if (std::strcmp(name, "neon") == 0) {
    requested = Backend::kNeon;
  } else {
    std::fprintf(stderr,
                 "cubrick: simd backend \"%s\" is not scalar|avx2|neon|auto; "
                 "keeping \"%s\"\n",
                 name, ActiveBackendName());
    return;
  }
  if (!SetBackend(requested)) {
    std::fprintf(stderr,
                 "cubrick: simd backend \"%s\" is not supported on this CPU; "
                 "falling back to scalar\n",
                 name);
    SetBackend(Backend::kScalar);
  }
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "scalar";
}

const char* ActiveBackendName() { return BackendName(Active()); }

}  // namespace cubrick::simd
