// Minimal leveled logging to stderr.
//
// The library is quiet by default (kWarning); tools and benches can raise
// verbosity with SetLogLevel(). No timestamps or thread ids: log lines in
// this codebase are diagnostics, not an event stream.

#pragma once

#include <iostream>
#include <mutex>
#include <sstream>

namespace cubrick {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (under a lock) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define CUBRICK_LOG(level)                                                \
  if (static_cast<int>(::cubrick::LogLevel::k##level) >=                  \
      static_cast<int>(::cubrick::GetLogLevel()))                         \
  ::cubrick::internal::LogMessage(::cubrick::LogLevel::k##level, __FILE__, \
                                  __LINE__)

}  // namespace cubrick
