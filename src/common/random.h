// Deterministic fast RNG for workload generation.
//
// Benches and tests need reproducible data streams; std::mt19937_64 is
// deterministic but slow to seed per-thread, so we use splitmix64/xoshiro.

#pragma once

#include <cstdint>

namespace cubrick {

/// splitmix64 — used to expand a single seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Random {
 public:
  explicit Random(uint64_t seed = 0x5eed) {
    uint64_t sm = seed;
    for (auto& s : state_) {
      s = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace cubrick
