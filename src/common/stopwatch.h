// Wall-clock stopwatch and latency histogram for the experiment harness.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace cubrick {

/// Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Collects latency samples and reports percentiles, as used for the paper's
/// load-latency distribution (Fig 5).
class LatencyRecorder {
 public:
  void Record(int64_t micros) { samples_.push_back(micros); }

  size_t count() const { return samples_.size(); }

  /// Percentile in [0, 100]. Returns 0 when no samples were recorded.
  int64_t Percentile(double p) {
    if (samples_.empty()) return 0;
    std::sort(samples_.begin(), samples_.end());
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    return samples_[static_cast<size_t>(rank + 0.5)];
  }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    int64_t sum = 0;
    for (int64_t s : samples_) sum += s;
    return static_cast<double>(sum) / static_cast<double>(samples_.size());
  }

  int64_t Max() const {
    int64_t mx = 0;
    for (int64_t s : samples_) mx = std::max(mx, s);
    return mx;
  }

  void Clear() { samples_.clear(); }

 private:
  std::vector<int64_t> samples_;
};

}  // namespace cubrick
