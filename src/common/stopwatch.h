// Wall-clock stopwatch for the experiment harness.
//
// Latency percentile collection lives in obs/percentile.h
// (obs::LatencyRecorder); the multi-writer histogram lives in
// obs/metrics.h (obs::Histogram).

#pragma once

#include <chrono>
#include <cstdint>

namespace cubrick {

/// Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cubrick
