#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

// Annotated synchronization primitives. All code in this tree uses these
// wrappers instead of <mutex>/<shared_mutex> directly (enforced by
// aosi_lint's naked-mutex rule) so Clang's -Wthread-safety analysis can see
// every acquire/release. See docs/STATIC_ANALYSIS.md.

namespace cubrick {

class CondVar;

// Exclusive mutex. Prefer the RAII MutexLock over manual Lock()/Unlock().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

// Reader/writer mutex. Writers use Lock/Unlock, readers ReaderLock/
// ReaderUnlock; prefer the RAII WriterMutexLock / ReaderMutexLock.
class CAPABILITY("shared mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() TRY_ACQUIRE_SHARED(true) { return mu_.try_lock_shared(); }

 private:
  friend class ReaderMutexLock;
  friend class WriterMutexLock;
  std::shared_mutex mu_;
};

// RAII lock for Mutex. Holds a std::unique_lock internally so CondVar can
// wait on it.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// RAII exclusive lock for SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~WriterMutexLock() RELEASE() = default;

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

// RAII shared lock for SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : lock_(mu.mu_) {}
  ~ReaderMutexLock() RELEASE() = default;

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

// Condition variable bound to Mutex via MutexLock. Callers must wrap waits
// in an explicit `while (!predicate) cv.Wait(lock);` loop — lambda-predicate
// overloads are deliberately not provided because Clang's thread-safety
// analysis treats the lambda as a separate unlocked function and cannot see
// the guarded reads inside it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cubrick
