// Table: the per-node storage engine of one cube.
//
// Owns the cube's shards (bricks hashed by bid across shards, paper §V-B)
// and exposes the low-level AOSI operations — append, partition delete,
// snapshot scan, purge, rollback — each dispatched onto shard queues and
// applied by single-writer shard threads.

#pragma once

#include <atomic>
#include <future>
#include <map>
#include <optional>
#include <memory>
#include <vector>

#include "aosi/epoch.h"
#include "engine/rollback_index.h"
#include "engine/shard.h"
#include "query/executor.h"
#include "query/materialize.h"
#include "query/query.h"
#include "storage/brick.h"
#include "storage/schema.h"

namespace cubrick::obs {
class MetricsRegistry;
}  // namespace cubrick::obs

namespace cubrick {

/// Parser output: records grouped and encoded per target brick.
using PerBrickBatches = std::map<Bid, EncodedBatch>;

/// How Table::Purge occupies the shards (§III-C4 + PR 8).
enum class PurgeMode {
  /// Phased pipeline: planning and row filtering run off the shard threads
  /// against EBR-pinned snapshots and version-validated column copies, so
  /// scans interleave with the purge and `aosi.purge.pause_us` records only
  /// the short copy/install shard ops. The default.
  kConcurrent,
  /// Legacy stop-the-shard round: each shard plans and rewrites all of its
  /// bricks in one monolithic op. Kept as the bench baseline for
  /// BENCH_fig9_purge_pause.json and as the semantics reference.
  kQuiescent,
};

/// Statistics returned by Table::Purge.
struct PurgeStats {
  uint64_t bricks_examined = 0;
  uint64_t bricks_rewritten = 0;
  uint64_t bricks_erased = 0;
  uint64_t records_removed = 0;

  /// Adds this round's tallies to the registry's "aosi.purge.*" counters
  /// (docs/OBSERVABILITY.md). Called by Table::Purge on its merged total.
  void PublishTo(obs::MetricsRegistry& reg) const;
};

class Table {
 public:
  /// `threaded` selects dedicated shard threads (production mode) or inline
  /// execution (deterministic tests / single-thread benches).
  /// `rollback_index` enables the §III-C5 txn->partition map, making
  /// Rollback touch only the victim's bricks at a memory cost.
  /// `pin_shard_threads` binds shard thread i to CPU i % hardware
  /// concurrency (§V-B NUMA-locality optimization; best-effort).
  Table(std::shared_ptr<const CubeSchema> schema, size_t num_shards,
        bool threaded, bool rollback_index = false,
        bool pin_shard_threads = false);

  const CubeSchema& schema() const { return *schema_; }
  size_t num_shards() const { return shards_.size(); }

  size_t ShardOf(Bid bid) const { return bid % shards_.size(); }

  /// Appends parsed batches stamped with `epoch`; returns once every shard
  /// has applied its part (the "flush" step of the ingestion pipeline).
  /// Takes the batches by move: payloads travel into the shard ops without
  /// copying. Concurrent appends coalesce per shard — batches staged while
  /// a shard's drain op is running are applied by that same op ("group
  /// appends", one shard op per burst instead of one per load), each batch
  /// keeping its own epoch stamp, so the single-writer invariant and the
  /// per-epoch EpochVector::RecordAppend ordering are exactly as if the
  /// loads had run back to back.
  Status Append(aosi::Epoch epoch, PerBrickBatches&& batches);

  /// Fire-now, wait-later flavor of Append: stages the batches and returns
  /// a future that resolves once every one has been applied, so a caller
  /// can parse load N+1 while load N flushes. The future must be waited on
  /// before the Table is destroyed.
  std::future<void> AppendAsync(aosi::Epoch epoch, PerBrickBatches&& batches);

  /// Partition-granular delete: marks deleted every materialized brick
  /// fully covered by `filters` (empty filters = the whole cube). Fails
  /// with InvalidArgument — before marking anything — if a brick is only
  /// partially covered: AOSI does not support sub-partition deletes.
  Status DeleteWhere(aosi::Epoch epoch,
                     const std::vector<FilterClause>& filters);

  /// Phase 1 of DeleteWhere: verifies no materialized brick is only
  /// partially covered by `filters`.
  Status CheckDeleteGranularity(const std::vector<FilterClause>& filters);

  /// Phase 2 of DeleteWhere: marks covered bricks deleted. Must follow a
  /// successful granularity check.
  void MarkDeleted(aosi::Epoch epoch,
                   const std::vector<FilterClause>& filters);

  /// The shared schema handle (used by the cluster catalog).
  std::shared_ptr<const CubeSchema> schema_ptr() const { return schema_; }

  /// Scatter-gather scan of all shards under `snapshot`. `brick_filter`
  /// (optional) restricts the scan to bricks it accepts — the cluster layer
  /// uses it to scan only bricks this node primarily owns, so replicated
  /// bricks are not double-counted.
  ///
  /// `parallelism` > 1 enables the morsel-parallel executor: inside each
  /// shard operation the shard's bricks are fanned out as tasks on
  /// ThreadPool::Global() (up to `parallelism` concurrent workers including
  /// the shard's own thread), each worker scans into a thread-local partial
  /// and the partials are merged before the shard op returns. The shard
  /// stays blocked in its own op for the whole fan-out, so the
  /// single-writer invariant holds: nothing can mutate its bricks while
  /// pool workers read them. The default (1) is the serial path — bit-for-
  /// bit the previous behavior — which `src/check/` keeps for deterministic
  /// replay (see DESIGN.md, "Serial vs parallel determinism policy").
  ///
  /// `visibility_cache` enables each brick's visibility-bitmap cache
  /// (DESIGN.md §4c); results are identical with it on or off.
  QueryResult Scan(const aosi::Snapshot& snapshot, ScanMode mode,
                   const Query& query,
                   const std::function<bool(Bid)>& brick_filter = nullptr,
                   size_t parallelism = 1, bool visibility_cache = true);

  /// EXPLAIN: reports how many bricks the filters prune without scanning —
  /// the indexed-access property of granular partitioning.
  ScanPlanStats ExplainScan(const Query& query);

  /// Materializes up to options.limit visible rows matching the query's
  /// filters (row-wise, strings decoded). Shards are drained sequentially;
  /// row order follows physical order within each brick.
  std::vector<MaterializedRow> Materialize(
      const aosi::Snapshot& snapshot, ScanMode mode, const Query& query,
      const MaterializeOptions& options = {}, bool visibility_cache = true);

  /// Runs the purge procedure (§III-C4) over every brick at `lse`. See
  /// PurgeMode for how the shards are occupied; results are identical.
  PurgeStats Purge(aosi::Epoch lse, PurgeMode mode = PurgeMode::kConcurrent);

  /// Physically removes every append/delete made by `victim` (§III-C5).
  void Rollback(aosi::Epoch victim);

  /// Drops everything newer than `lse` (crash-recovery truncation).
  void TruncateAfter(aosi::Epoch lse);

  /// Waits for all shard queues to empty.
  void Drain();

  /// Visits every brick, one shard at a time (fn is never called
  /// concurrently). Used by the persistence layer to collect flush data.
  void VisitBricks(const std::function<void(const Brick&)>& fn);

  /// Applies `fn` to the brick `bid` on its owning shard, materializing it
  /// if absent. Used by recovery to replay delete markers.
  void ApplyToBrick(Bid bid, const std::function<void(Brick&)>& fn);

  // --- Statistics (each drains pending work first) ----------------------
  uint64_t TotalRecords();
  uint64_t NumBricks();
  size_t DataMemoryUsage();
  /// Bytes held by all epochs vectors — the AOSI overhead of Figures 6/7.
  size_t HistoryMemoryUsage();

  /// Access to a shard for white-box tests.
  Shard& shard(size_t i) { return *shards_[i]; }

  /// The rollback index, or nullptr when disabled.
  const RollbackIndex* rollback_index() const {
    return rollback_index_ ? &*rollback_index_ : nullptr;
  }

 private:
  /// Completion latch shared by every staged batch of one append request.
  struct PendingAppend {
    explicit PendingAppend(uint64_t n) : remaining(n) {}
    std::atomic<uint64_t> remaining;
    std::promise<void> done;
  };

  /// One staged (epoch, brick batch) plus its request's latch.
  struct StagedBatch {
    aosi::Epoch epoch;
    Bid bid;
    EncodedBatch batch;
    std::shared_ptr<PendingAppend> request;
  };

  /// Per-shard staging area for the group-append coalescer.
  struct AppendStage {
    Mutex mu;
    std::vector<StagedBatch> staged GUARDED_BY(mu);
    /// True while a drain op is queued or running on the shard; staging
    /// under an active op rides along instead of enqueuing another.
    bool drain_scheduled GUARDED_BY(mu) = false;
  };

  /// Body of the shard drain op: applies staged batches until the stage is
  /// empty, so appends staged mid-drain coalesce into the running op.
  static void DrainAppendStage(AppendStage* stage, BrickMap& bricks);

  PurgeStats QuiescentPurge(aosi::Epoch lse);
  PurgeStats ConcurrentPurge(aosi::Epoch lse);

  /// Merged-total bookkeeping shared by both purge modes: round counter,
  /// post-purge epochs-vector footprint gauge, aosi.purge.* counters.
  static void FinishPurgeRound(const PurgeStats& total,
                               uint64_t total_entries);

  std::shared_ptr<const CubeSchema> schema_;
  /// Declared before shards_ so the stages outlive the shard threads that
  /// drain them (members destroy in reverse order).
  std::vector<std::unique_ptr<AppendStage>> append_stages_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::optional<RollbackIndex> rollback_index_;
};

}  // namespace cubrick
