// Brick shard: single-writer execution unit (paper §V-B "Flushing").
//
// All bricks of a cube are sharded by bid. Each shard owns an input queue
// where every brick operation is placed — loads, queries, deletes, purges —
// and a single thread consumes and applies them, so no low-level locking is
// needed on the bricks. Operations are applied in exactly the order the
// transaction manager produced them.
//
// For deterministic tests and single-threaded experiments a shard can run in
// inline mode (no thread): operations execute on the calling thread.

#pragma once

#include <functional>
#include <future>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "common/shard_queue.h"
#include "storage/brick_map.h"

namespace cubrick {

class Shard {
 public:
  /// `threaded` selects the dedicated consumer thread; inline mode
  /// otherwise. `cpu_affinity` (>= 0, threaded mode only) pins the consumer
  /// to one CPU — the paper's §V-B optimization of binding shard threads to
  /// cores so their bricks stay NUMA-local. Best-effort: unsupported
  /// platforms and invalid CPUs are ignored.
  Shard(std::shared_ptr<const CubeSchema> schema, bool threaded,
        int cpu_affinity = -1);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Enqueues an operation; the future resolves once it has been applied.
  /// In inline mode the operation runs before Enqueue returns, on the
  /// calling thread, under the shard's mutex — so concurrent callers are
  /// serialized and the single-writer invariant holds in both modes.
  std::future<void> Enqueue(std::function<void(BrickMap&)> op);

  /// Blocks until every previously enqueued operation has been applied.
  void Drain();

  /// Number of operations waiting in the queue (0 in inline mode).
  size_t QueueDepth() const;

  /// Direct access to the shard's bricks. Only safe from within an enqueued
  /// operation, or externally when the caller knows the shard is quiescent.
  BrickMap& bricks() { return bricks_; }
  const BrickMap& bricks() const { return bricks_; }

 private:
  struct Op {
    std::function<void(BrickMap&)> fn;
    std::promise<void> done;
  };

  void RunLoop();

  BrickMap bricks_;
  const bool threaded_;
  /// Serializes inline-mode callers (unused in threaded mode, where the
  /// consumer thread is the only writer).
  Mutex inline_mutex_;
  ShardQueue<Op> queue_;
  std::thread consumer_;
};

}  // namespace cubrick
