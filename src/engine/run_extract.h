// Extraction of append runs / delete markers in an epoch range, in the
// brick's physical order — the building block for incremental flush rounds
// and for replica catch-up after a node recovers (§III-D: "data from LSE
// onwards can be retrieved from the replica nodes").

#pragma once

#include <vector>

#include "aosi/epoch.h"
#include "engine/table.h"
#include "storage/brick.h"

namespace cubrick {

struct ExtractedRun {
  aosi::Epoch epoch = aosi::kNoEpoch;
  bool is_delete = false;
  /// Row payload for append runs (unused for delete markers).
  EncodedBatch batch;

  explicit ExtractedRun(const CubeSchema& schema) : batch(schema) {}
};

struct ExtractedBrick {
  Bid bid = 0;
  std::vector<ExtractedRun> runs;
};

/// Copies one brick's runs with epoch in (from_exclusive, to_inclusive]
/// into row batches, preserving physical order. Returns an empty runs list
/// when the brick holds nothing in range.
ExtractedBrick ExtractBrickRuns(const Brick& brick,
                                aosi::Epoch from_exclusive,
                                aosi::Epoch to_inclusive);

/// Extracts the whole table's in-range runs (drains shards sequentially).
std::vector<ExtractedBrick> ExtractTableRuns(Table* table,
                                             aosi::Epoch from_exclusive,
                                             aosi::Epoch to_inclusive);

/// Replays extracted bricks into `table`, preserving per-brick run order.
Status ReplayExtracted(Table* table,
                       const std::vector<ExtractedBrick>& bricks);

}  // namespace cubrick
