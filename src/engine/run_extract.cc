#include "engine/run_extract.h"

namespace cubrick {

ExtractedBrick ExtractBrickRuns(const Brick& brick,
                                aosi::Epoch from_exclusive,
                                aosi::Epoch to_inclusive) {
  const CubeSchema& schema = brick.schema();
  ExtractedBrick out;
  out.bid = brick.bid();
  for (const auto& run : brick.history().Decode()) {
    if (!aosi::InEpochRange(run.epoch, from_exclusive, to_inclusive)) {
      continue;
    }
    ExtractedRun extracted(schema);
    extracted.epoch = run.epoch;
    extracted.is_delete = run.is_delete;
    if (!run.is_delete) {
      EncodedBatch& batch = extracted.batch;
      batch.num_rows = run.end - run.begin;
      for (size_t d = 0; d < schema.num_dimensions(); ++d) {
        auto& offsets = batch.dim_offsets[d];
        offsets.reserve(batch.num_rows);
        for (uint64_t row = run.begin; row < run.end; ++row) {
          offsets.push_back(brick.bess().Get(row, d));
        }
      }
      for (size_t m = 0; m < schema.num_metrics(); ++m) {
        const MetricColumn& col = brick.metric(m);
        if (col.type() == DataType::kDouble) {
          batch.metric_doubles[m].assign(col.doubles().begin() + run.begin,
                                         col.doubles().begin() + run.end);
        } else {
          batch.metric_ints[m].assign(col.ints().begin() + run.begin,
                                      col.ints().begin() + run.end);
        }
      }
    }
    out.runs.push_back(std::move(extracted));
  }
  return out;
}

std::vector<ExtractedBrick> ExtractTableRuns(Table* table,
                                             aosi::Epoch from_exclusive,
                                             aosi::Epoch to_inclusive) {
  std::vector<ExtractedBrick> result;
  table->VisitBricks([&](const Brick& brick) {
    ExtractedBrick extracted =
        ExtractBrickRuns(brick, from_exclusive, to_inclusive);
    if (!extracted.runs.empty()) {
      result.push_back(std::move(extracted));
    }
  });
  return result;
}

Status ReplayExtracted(Table* table,
                       const std::vector<ExtractedBrick>& bricks) {
  for (const auto& brick : bricks) {
    for (const auto& run : brick.runs) {
      if (run.is_delete) {
        const aosi::Epoch epoch = run.epoch;
        table->ApplyToBrick(brick.bid,
                            [epoch](Brick& b) { b.MarkDeleted(epoch); });
      } else {
        PerBrickBatches one;
        one.emplace(brick.bid, run.batch);
        CUBRICK_RETURN_IF_ERROR(table->Append(run.epoch, std::move(one)));
      }
    }
  }
  return Status::OK();
}

}  // namespace cubrick
