#include "engine/shard.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/metrics.h"

namespace cubrick {

namespace {

/// Last observed queue depth across all shards (last-writer-wins): a cheap
/// backpressure indicator for the ingestion pipeline.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("engine.shard_queue_depth");
  return g;
}
/// Best-effort CPU pinning of the current thread (§V-B NUMA locality).
void PinToCpu(int cpu) {
#ifdef __linux__
  if (cpu < 0 || cpu >= CPU_SETSIZE) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Failure (e.g. cpu >= core count in this cgroup) is non-fatal: the
  // shard simply runs unpinned.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}
}  // namespace

Shard::Shard(std::shared_ptr<const CubeSchema> schema, bool threaded,
             int cpu_affinity)
    : bricks_(std::move(schema)), threaded_(threaded) {
  if (threaded_) {
    consumer_ = std::thread([this, cpu_affinity] {
      PinToCpu(cpu_affinity);
      RunLoop();
    });
  }
}

Shard::~Shard() {
  if (threaded_) {
    queue_.Close();
    consumer_.join();
  }
}

std::future<void> Shard::Enqueue(std::function<void(BrickMap&)> op) {
  if (!threaded_) {
    std::promise<void> done;
    {
      MutexLock lock(inline_mutex_);
      op(bricks_);
    }
    done.set_value();
    return done.get_future();
  }
  Op item;
  item.fn = std::move(op);
  std::future<void> fut = item.done.get_future();
  if (!queue_.Push(std::move(item))) {
    // Shard shut down: surface as a broken promise rather than deadlock.
    std::promise<void> dead;
    dead.set_exception(std::make_exception_ptr(
        CheckFailure("operation enqueued on a stopped shard")));
    return dead.get_future();
  }
  QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
  return fut;
}

void Shard::Drain() {
  if (!threaded_) return;
  Enqueue([](BrickMap&) {}).wait();
}

size_t Shard::QueueDepth() const { return threaded_ ? queue_.size() : 0; }

void Shard::RunLoop() {
  while (auto op = queue_.Pop()) {
    QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    try {
      op->fn(bricks_);
      op->done.set_value();
    } catch (...) {
      op->done.set_exception(std::current_exception());
    }
  }
}

}  // namespace cubrick
