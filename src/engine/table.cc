#include "engine/table.h"

#include <algorithm>

#include "aosi/purge.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace cubrick {

void PurgeStats::PublishTo(obs::MetricsRegistry& reg) const {
  // Purge rounds are rare; the registry lookups are not worth caching.
  reg.GetCounter("aosi.purge.bricks_examined")->Add(bricks_examined);
  reg.GetCounter("aosi.purge.bricks_rewritten")->Add(bricks_rewritten);
  reg.GetCounter("aosi.purge.bricks_erased")->Add(bricks_erased);
  reg.GetCounter("aosi.purge.records_reclaimed")->Add(records_removed);
}

Table::Table(std::shared_ptr<const CubeSchema> schema, size_t num_shards,
             bool threaded, bool rollback_index, bool pin_shard_threads)
    : schema_(std::move(schema)) {
  CUBRICK_CHECK(num_shards >= 1);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    const int cpu =
        pin_shard_threads ? static_cast<int>(i % hw) : -1;
    shards_.push_back(std::make_unique<Shard>(schema_, threaded, cpu));
  }
  if (rollback_index) {
    rollback_index_.emplace();
  }
}

Status Table::Append(aosi::Epoch epoch, const PerBrickBatches& batches) {
  // Group bricks by shard so each shard receives one operation.
  std::vector<std::vector<const std::pair<const Bid, EncodedBatch>*>>
      per_shard(shards_.size());
  for (const auto& entry : batches) {
    if (entry.second.num_rows == 0) continue;
    per_shard[ShardOf(entry.first)].push_back(&entry);
    if (rollback_index_) {
      rollback_index_->Note(epoch, entry.first);
    }
  }
  std::vector<std::future<void>> done;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    auto work = std::move(per_shard[s]);
    done.push_back(shards_[s]->Enqueue([epoch, work](BrickMap& bricks) {
      for (const auto* entry : work) {
        bricks.GetOrCreate(entry->first).AppendBatch(epoch, entry->second);
      }
    }));
  }
  for (auto& f : done) f.get();
  return Status::OK();
}

Status Table::DeleteWhere(aosi::Epoch epoch,
                          const std::vector<FilterClause>& filters) {
  CUBRICK_RETURN_IF_ERROR(CheckDeleteGranularity(filters));
  MarkDeleted(epoch, filters);
  return Status::OK();
}

Status Table::CheckDeleteGranularity(
    const std::vector<FilterClause>& filters) {
  Query probe;
  probe.filters = filters;
  std::vector<std::future<void>> checks;
  std::vector<Status> shard_status(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status* out = &shard_status[s];
    checks.push_back(shards_[s]->Enqueue([&probe, out](BrickMap& bricks) {
      bricks.ForEach([&](Brick& brick) {
        if (!out->ok()) return;
        if (BrickIntersectsFilters(brick, probe) &&
            !BrickCoveredByFilters(brick, probe)) {
          *out = Status::InvalidArgument(
              "delete predicate only partially covers brick " +
              std::to_string(brick.bid()) +
              "; AOSI deletes are partition-granular");
        }
      });
    }));
  }
  for (auto& f : checks) f.get();
  for (const auto& st : shard_status) {
    CUBRICK_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

void Table::MarkDeleted(aosi::Epoch epoch,
                        const std::vector<FilterClause>& filters) {
  Query probe;
  probe.filters = filters;
  RollbackIndex* index = rollback_index_ ? &*rollback_index_ : nullptr;
  std::vector<std::future<void>> marks;
  for (auto& shard : shards_) {
    marks.push_back(shard->Enqueue([&probe, epoch, index](BrickMap& bricks) {
      bricks.ForEach([&](Brick& brick) {
        if (brick.num_records() > 0 && BrickCoveredByFilters(brick, probe)) {
          brick.MarkDeleted(epoch);
          if (index != nullptr) index->Note(epoch, brick.bid());
        }
      });
    }));
  }
  for (auto& f : marks) f.get();
}

QueryResult Table::Scan(const aosi::Snapshot& snapshot, ScanMode mode,
                        const Query& query,
                        const std::function<bool(Bid)>& brick_filter,
                        size_t parallelism, bool visibility_cache) {
  static obs::Counter* scans =
      obs::MetricsRegistry::Global().GetCounter("query.scans_total");
  static obs::Histogram* latency =
      obs::MetricsRegistry::Global().GetHistogram("query.latency_us");
  scans->Add();
  obs::ObsSpan span("query.scan", latency);
  const size_t fan_out = parallelism == 0 ? 1 : parallelism;
  std::vector<QueryResult> partials(shards_.size(),
                                    QueryResult(query.aggs.size()));
  std::vector<std::future<void>> done;
  for (size_t s = 0; s < shards_.size(); ++s) {
    QueryResult* out = &partials[s];
    done.push_back(shards_[s]->Enqueue([&snapshot, mode, &query, out,
                                        &brick_filter, fan_out,
                                        visibility_cache](BrickMap& bricks) {
      if (fan_out <= 1) {
        // Serial path, unchanged: scan in BrickMap order on the shard's
        // own thread.
        bricks.ForEach([&](Brick& brick) {
          if (brick_filter && !brick_filter(brick.bid())) return;
          ScanBrick(brick, snapshot, mode, query, out, visibility_cache);
        });
        return;
      }
      // Morsel-parallel path: fanning out *inside* the shard op keeps the
      // shard blocked here until every worker finished, so pool workers
      // read its bricks while the single-writer invariant still holds.
      std::vector<const Brick*> candidates;
      bricks.ForEach([&](const Brick& brick) {
        if (brick_filter && !brick_filter(brick.bid())) return;
        candidates.push_back(&brick);
      });
      auto morsels = PlanMorsels(candidates, query);
      auto worker_partials =
          ScanMorsels(morsels, snapshot, mode, query, &ThreadPool::Global(),
                      fan_out, visibility_cache);
      *out = MergePartials(std::move(worker_partials), query.aggs.size());
    }));
  }
  for (auto& f : done) f.get();
  QueryResult result(query.aggs.size());
  for (const auto& partial : partials) {
    result.Merge(partial);
  }
  return result;
}

ScanPlanStats Table::ExplainScan(const Query& query) {
  ScanPlanStats stats;
  for (auto& shard : shards_) {
    shard
        ->Enqueue([&](BrickMap& bricks) {
          bricks.ForEach(
              [&](const Brick& brick) { ExplainBrick(brick, query, &stats); });
        })
        .get();
  }
  stats.PublishTo(obs::MetricsRegistry::Global());
  return stats;
}

std::vector<MaterializedRow> Table::Materialize(
    const aosi::Snapshot& snapshot, ScanMode mode, const Query& query,
    const MaterializeOptions& options, bool visibility_cache) {
  std::vector<MaterializedRow> rows;
  for (auto& shard : shards_) {
    if (rows.size() >= options.limit) break;
    shard
        ->Enqueue([&](BrickMap& bricks) {
          bricks.ForEach([&](const Brick& brick) {
            MaterializeBrick(brick, snapshot, mode, query, options, &rows,
                             visibility_cache);
          });
        })
        .get();
  }
  return rows;
}

PurgeStats Table::Purge(aosi::Epoch lse) {
  // The purge "pause" is the wall time the shards spend compacting instead
  // of serving operations — the §III-C4 cost Figure 9's convergence section
  // exercises.
  obs::ObsSpan span(
      "aosi.purge",
      obs::MetricsRegistry::Global().GetHistogram("aosi.purge.pause_us"));
  if (rollback_index_) {
    // Transactions at or before LSE are finished: their index entries can
    // never be used and would otherwise grow without bound.
    rollback_index_->DiscardUpTo(lse);
  }
  std::vector<PurgeStats> partials(shards_.size());
  std::vector<uint64_t> history_entries(shards_.size(), 0);
  std::vector<std::future<void>> done;
  for (size_t s = 0; s < shards_.size(); ++s) {
    PurgeStats* stats = &partials[s];
    uint64_t* entries = &history_entries[s];
    done.push_back(shards_[s]->Enqueue([lse, stats, entries](BrickMap& bricks) {
      std::vector<Bid> dead;
      bricks.ForEach([&](Brick& brick) {
        ++stats->bricks_examined;
        auto plan = aosi::PlanPurge(brick.history(), lse);
        if (!plan.needed) {
          *entries += brick.history().num_entries();
          return;
        }
        const uint64_t before = brick.num_records();
        brick.ApplyCompaction(plan);
        ++stats->bricks_rewritten;
        stats->records_removed += before - brick.num_records();
        *entries += brick.history().num_entries();
        if (brick.num_records() == 0 && brick.history().num_entries() == 0) {
          dead.push_back(brick.bid());
        }
      });
      for (Bid bid : dead) {
        bricks.Erase(bid);
        ++stats->bricks_erased;
      }
    }));
  }
  for (auto& f : done) f.get();
  PurgeStats total;
  uint64_t total_entries = 0;
  for (size_t s = 0; s < partials.size(); ++s) {
    const PurgeStats& p = partials[s];
    total.bricks_examined += p.bricks_examined;
    total.bricks_rewritten += p.bricks_rewritten;
    total.bricks_erased += p.bricks_erased;
    total.records_removed += p.records_removed;
    total_entries += history_entries[s];
  }
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("aosi.purge.rounds_total")->Add();
  // Post-purge epochs-vector footprint: how much §III-C history the table
  // still carries (grows between purges, shrinks as LSE advances).
  reg.GetGauge("aosi.epochs_vector_entries")
      ->Set(static_cast<int64_t>(total_entries));
  total.PublishTo(reg);
  return total;
}

void Table::Rollback(aosi::Epoch victim) {
  if (rollback_index_) {
    // Indexed path (§III-C5's alternative): only the victim's bricks are
    // visited, skipping every untouched partition's epochs vector.
    std::vector<std::vector<Bid>> per_shard(shards_.size());
    for (Bid bid : rollback_index_->Take(victim)) {
      per_shard[ShardOf(bid)].push_back(bid);
    }
    std::vector<std::future<void>> done;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (per_shard[s].empty()) continue;
      auto bids = std::move(per_shard[s]);
      done.push_back(shards_[s]->Enqueue([victim, bids](BrickMap& bricks) {
        for (Bid bid : bids) {
          Brick* brick = bricks.Find(bid);
          if (brick == nullptr) continue;
          auto plan = aosi::PlanRollback(brick->history(), victim);
          if (plan.needed) {
            brick->ApplyCompaction(plan);
          }
        }
      }));
    }
    for (auto& f : done) f.get();
    return;
  }

  std::vector<std::future<void>> done;
  for (auto& shard : shards_) {
    done.push_back(shard->Enqueue([victim](BrickMap& bricks) {
      bricks.ForEach([&](Brick& brick) {
        auto plan = aosi::PlanRollback(brick.history(), victim);
        if (plan.needed) {
          brick.ApplyCompaction(plan);
        }
      });
    }));
  }
  for (auto& f : done) f.get();
}

void Table::TruncateAfter(aosi::Epoch lse) {
  std::vector<std::future<void>> done;
  for (auto& shard : shards_) {
    done.push_back(shard->Enqueue([lse](BrickMap& bricks) {
      std::vector<Bid> dead;
      bricks.ForEach([&](Brick& brick) {
        auto plan = aosi::PlanRetainUpTo(brick.history(), lse);
        if (plan.needed) {
          brick.ApplyCompaction(plan);
        }
        if (brick.num_records() == 0 && brick.history().num_entries() == 0) {
          dead.push_back(brick.bid());
        }
      });
      for (Bid bid : dead) bricks.Erase(bid);
    }));
  }
  for (auto& f : done) f.get();
}

void Table::Drain() {
  for (auto& shard : shards_) shard->Drain();
}

void Table::VisitBricks(const std::function<void(const Brick&)>& fn) {
  for (auto& shard : shards_) {
    shard
        ->Enqueue([&fn](BrickMap& bricks) {
          bricks.ForEach([&](const Brick& brick) { fn(brick); });
        })
        .get();
  }
}

void Table::ApplyToBrick(Bid bid, const std::function<void(Brick&)>& fn) {
  shards_[ShardOf(bid)]
      ->Enqueue([bid, &fn](BrickMap& bricks) { fn(bricks.GetOrCreate(bid)); })
      .get();
}

uint64_t Table::TotalRecords() {
  Drain();
  uint64_t n = 0;
  for (auto& shard : shards_) n += shard->bricks().TotalRecords();
  return n;
}

uint64_t Table::NumBricks() {
  Drain();
  uint64_t n = 0;
  for (auto& shard : shards_) n += shard->bricks().size();
  return n;
}

size_t Table::DataMemoryUsage() {
  Drain();
  size_t bytes = 0;
  for (auto& shard : shards_) bytes += shard->bricks().DataMemoryUsage();
  return bytes;
}

size_t Table::HistoryMemoryUsage() {
  Drain();
  size_t bytes = 0;
  for (auto& shard : shards_) bytes += shard->bricks().HistoryMemoryUsage();
  return bytes;
}

}  // namespace cubrick
