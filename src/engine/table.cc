#include "engine/table.h"

#include <algorithm>

#include "aosi/purge.h"
#include "common/ebr.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace cubrick {

void PurgeStats::PublishTo(obs::MetricsRegistry& reg) const {
  // Purge rounds are rare; the registry lookups are not worth caching.
  reg.GetCounter("aosi.purge.bricks_examined")->Add(bricks_examined);
  reg.GetCounter("aosi.purge.bricks_rewritten")->Add(bricks_rewritten);
  reg.GetCounter("aosi.purge.bricks_erased")->Add(bricks_erased);
  reg.GetCounter("aosi.purge.records_reclaimed")->Add(records_removed);
}

Table::Table(std::shared_ptr<const CubeSchema> schema, size_t num_shards,
             bool threaded, bool rollback_index, bool pin_shard_threads)
    : schema_(std::move(schema)) {
  CUBRICK_CHECK(num_shards >= 1);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  append_stages_.reserve(num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    const int cpu =
        pin_shard_threads ? static_cast<int>(i % hw) : -1;
    append_stages_.push_back(std::make_unique<AppendStage>());
    shards_.push_back(std::make_unique<Shard>(schema_, threaded, cpu));
  }
  if (rollback_index) {
    rollback_index_.emplace();
  }
}

Status Table::Append(aosi::Epoch epoch, PerBrickBatches&& batches) {
  // ingest.flush_us records the synchronous flush wait — what a load
  // request spends behind the shard queues (docs/OBSERVABILITY.md).
  static obs::Histogram* flush_us =
      obs::MetricsRegistry::Global().GetHistogram("ingest.flush_us");
  obs::ObsSpan span("ingest.flush", flush_us);
  AppendAsync(epoch, std::move(batches)).get();
  return Status::OK();
}

std::future<void> Table::AppendAsync(aosi::Epoch epoch,
                                     PerBrickBatches&& batches) {
  uint64_t items = 0;
  for (const auto& entry : batches) {
    if (entry.second.num_rows > 0) ++items;
  }
  auto request = std::make_shared<PendingAppend>(items);
  std::future<void> done = request->done.get_future();
  if (items == 0) {
    request->done.set_value();
    return done;
  }
  // Group the moved payloads by shard off-lock, then stage each shard's
  // run in one mutex hold. A shard whose drain op is already queued or
  // running picks the new work up in the same op (group append).
  std::vector<std::vector<StagedBatch>> per_shard(shards_.size());
  for (auto& [bid, batch] : batches) {
    if (batch.num_rows == 0) continue;
    if (rollback_index_) {
      rollback_index_->Note(epoch, bid);
    }
    per_shard[ShardOf(bid)].push_back(
        StagedBatch{epoch, bid, std::move(batch), request});
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    AppendStage* stage = append_stages_[s].get();
    bool schedule = false;
    {
      MutexLock lock(stage->mu);
      for (StagedBatch& staged : per_shard[s]) {
        stage->staged.push_back(std::move(staged));
      }
      if (!stage->drain_scheduled) {
        stage->drain_scheduled = true;
        schedule = true;
      }
    }
    if (schedule) {
      shards_[s]->Enqueue(
          [stage](BrickMap& bricks) { DrainAppendStage(stage, bricks); });
    }
  }
  return done;
}

void Table::DrainAppendStage(AppendStage* stage, BrickMap& bricks) {
  static obs::Counter* group_appends =
      obs::MetricsRegistry::Global().GetCounter("ingest.group_appends");
  std::vector<StagedBatch> work;
  while (true) {
    {
      MutexLock lock(stage->mu);
      if (stage->staged.empty()) {
        stage->drain_scheduled = false;
        return;
      }
      work.swap(stage->staged);
    }
    // Requests stage their items contiguously, so a run-length count over
    // the latch pointers is the number of loads this slice coalesced.
    const PendingAppend* last = nullptr;
    uint64_t requests = 0;
    for (const StagedBatch& staged : work) {
      if (staged.request.get() != last) {
        last = staged.request.get();
        ++requests;
      }
    }
    if (requests > 1) group_appends->Add(requests - 1);
    for (StagedBatch& staged : work) {
      bricks.GetOrCreate(staged.bid).AppendBatch(staged.epoch, staged.batch);
      if (staged.request->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        staged.request->done.set_value();
      }
    }
    work.clear();
  }
}

Status Table::DeleteWhere(aosi::Epoch epoch,
                          const std::vector<FilterClause>& filters) {
  CUBRICK_RETURN_IF_ERROR(CheckDeleteGranularity(filters));
  MarkDeleted(epoch, filters);
  return Status::OK();
}

Status Table::CheckDeleteGranularity(
    const std::vector<FilterClause>& filters) {
  Query probe;
  probe.filters = filters;
  std::vector<std::future<void>> checks;
  std::vector<Status> shard_status(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status* out = &shard_status[s];
    checks.push_back(shards_[s]->Enqueue([&probe, out](BrickMap& bricks) {
      bricks.ForEach([&](Brick& brick) {
        if (!out->ok()) return;
        if (BrickIntersectsFilters(brick, probe) &&
            !BrickCoveredByFilters(brick, probe)) {
          *out = Status::InvalidArgument(
              "delete predicate only partially covers brick " +
              std::to_string(brick.bid()) +
              "; AOSI deletes are partition-granular");
        }
      });
    }));
  }
  for (auto& f : checks) f.get();
  for (const auto& st : shard_status) {
    CUBRICK_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

void Table::MarkDeleted(aosi::Epoch epoch,
                        const std::vector<FilterClause>& filters) {
  Query probe;
  probe.filters = filters;
  RollbackIndex* index = rollback_index_ ? &*rollback_index_ : nullptr;
  std::vector<std::future<void>> marks;
  for (auto& shard : shards_) {
    marks.push_back(shard->Enqueue([&probe, epoch, index](BrickMap& bricks) {
      bricks.ForEach([&](Brick& brick) {
        if (brick.num_records() > 0 && BrickCoveredByFilters(brick, probe)) {
          brick.MarkDeleted(epoch);
          if (index != nullptr) index->Note(epoch, brick.bid());
        }
      });
    }));
  }
  for (auto& f : marks) f.get();
}

QueryResult Table::Scan(const aosi::Snapshot& snapshot, ScanMode mode,
                        const Query& query,
                        const std::function<bool(Bid)>& brick_filter,
                        size_t parallelism, bool visibility_cache) {
  static obs::Counter* scans =
      obs::MetricsRegistry::Global().GetCounter("query.scans_total");
  static obs::Histogram* latency =
      obs::MetricsRegistry::Global().GetHistogram("query.latency_us");
  scans->Add();
  obs::ObsSpan span("query.scan", latency);
  const size_t fan_out = parallelism == 0 ? 1 : parallelism;
  std::vector<QueryResult> partials(shards_.size(),
                                    QueryResult(query.aggs.size()));
  std::vector<std::future<void>> done;
  for (size_t s = 0; s < shards_.size(); ++s) {
    QueryResult* out = &partials[s];
    done.push_back(shards_[s]->Enqueue([&snapshot, mode, &query, out,
                                        &brick_filter, fan_out,
                                        visibility_cache](BrickMap& bricks) {
      if (fan_out <= 1) {
        // Serial path, unchanged: scan in BrickMap order on the shard's
        // own thread.
        bricks.ForEach([&](Brick& brick) {
          if (brick_filter && !brick_filter(brick.bid())) return;
          ScanBrick(brick, snapshot, mode, query, out, visibility_cache);
        });
        return;
      }
      // Morsel-parallel path: fanning out *inside* the shard op keeps the
      // shard blocked here until every worker finished, so pool workers
      // read its bricks while the single-writer invariant still holds.
      std::vector<const Brick*> candidates;
      bricks.ForEach([&](const Brick& brick) {
        if (brick_filter && !brick_filter(brick.bid())) return;
        candidates.push_back(&brick);
      });
      auto morsels = PlanMorsels(candidates, query);
      auto worker_partials =
          ScanMorsels(morsels, snapshot, mode, query, &ThreadPool::Global(),
                      fan_out, visibility_cache);
      *out = MergePartials(std::move(worker_partials), query.aggs.size());
    }));
  }
  for (auto& f : done) f.get();
  QueryResult result(query.aggs.size());
  for (const auto& partial : partials) {
    result.Merge(partial);
  }
  return result;
}

ScanPlanStats Table::ExplainScan(const Query& query) {
  ScanPlanStats stats;
  for (auto& shard : shards_) {
    shard
        ->Enqueue([&](BrickMap& bricks) {
          bricks.ForEach(
              [&](const Brick& brick) { ExplainBrick(brick, query, &stats); });
        })
        .get();
  }
  stats.PublishTo(obs::MetricsRegistry::Global());
  return stats;
}

std::vector<MaterializedRow> Table::Materialize(
    const aosi::Snapshot& snapshot, ScanMode mode, const Query& query,
    const MaterializeOptions& options, bool visibility_cache) {
  std::vector<MaterializedRow> rows;
  for (auto& shard : shards_) {
    if (rows.size() >= options.limit) break;
    shard
        ->Enqueue([&](BrickMap& bricks) {
          bricks.ForEach([&](const Brick& brick) {
            MaterializeBrick(brick, snapshot, mode, query, options, &rows,
                             visibility_cache);
          });
        })
        .get();
  }
  return rows;
}

PurgeStats Table::Purge(aosi::Epoch lse, PurgeMode mode) {
  // Either mode also records its wall time: pause_us measures shard
  // occupancy (what scans wait behind), round_us the end-to-end round.
  obs::ObsSpan round_span(
      "aosi.purge.round",
      obs::MetricsRegistry::Global().GetHistogram("aosi.purge.round_us"));
  if (rollback_index_) {
    // Transactions at or before LSE are finished: their index entries can
    // never be used and would otherwise grow without bound.
    rollback_index_->DiscardUpTo(lse);
  }
  return mode == PurgeMode::kQuiescent ? QuiescentPurge(lse)
                                       : ConcurrentPurge(lse);
}

PurgeStats Table::QuiescentPurge(aosi::Epoch lse) {
  // The purge "pause" is the wall time the shards spend compacting instead
  // of serving operations — the §III-C4 cost Figure 9's convergence section
  // exercises. In quiescent mode the whole round is one pause.
  obs::ObsSpan span(
      "aosi.purge",
      obs::MetricsRegistry::Global().GetHistogram("aosi.purge.pause_us"));
  std::vector<PurgeStats> partials(shards_.size());
  std::vector<uint64_t> history_entries(shards_.size(), 0);
  std::vector<std::future<void>> done;
  for (size_t s = 0; s < shards_.size(); ++s) {
    PurgeStats* stats = &partials[s];
    uint64_t* entries = &history_entries[s];
    done.push_back(shards_[s]->Enqueue([lse, stats, entries](BrickMap& bricks) {
      std::vector<Bid> dead;
      bricks.ForEach([&](Brick& brick) {
        ++stats->bricks_examined;
        auto plan = aosi::PlanPurge(brick.history(), lse);
        if (!plan.needed) {
          *entries += brick.history().num_entries();
          return;
        }
        const uint64_t before = brick.num_records();
        brick.ApplyCompaction(plan);
        ++stats->bricks_rewritten;
        stats->records_removed += before - brick.num_records();
        *entries += brick.history().num_entries();
        if (brick.num_records() == 0 && brick.history().num_entries() == 0) {
          dead.push_back(brick.bid());
        }
      });
      for (Bid bid : dead) {
        bricks.Erase(bid);
        ++stats->bricks_erased;
      }
    }));
  }
  for (auto& f : done) f.get();
  PurgeStats total;
  uint64_t total_entries = 0;
  for (size_t s = 0; s < partials.size(); ++s) {
    const PurgeStats& p = partials[s];
    total.bricks_examined += p.bricks_examined;
    total.bricks_rewritten += p.bricks_rewritten;
    total.bricks_erased += p.bricks_erased;
    total.records_removed += p.records_removed;
    total_entries += history_entries[s];
  }
  FinishPurgeRound(total, total_entries);
  return total;
}

PurgeStats Table::ConcurrentPurge(aosi::Epoch lse) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram* pause = reg.GetHistogram("aosi.purge.pause_us");
  obs::Counter* conflicts = reg.GetCounter("aosi.purge.conflicts");

  // Each shard op of the pipeline is timed individually: pause_us now
  // records the slices scans actually wait behind, not the whole round —
  // the flattening BENCH_fig9_purge_pause.json gates on.
  const auto timed = [pause](Shard& shard,
                             std::function<void(BrickMap&)> op) {
    shard
        .Enqueue([pause, op = std::move(op)](BrickMap& bricks) {
          obs::ObsSpan span("aosi.purge.op", pause);
          op(bricks);
        })
        .get();
  };

  // One reclamation pin across the whole pipeline. Brick pointers collected
  // by the phase-1 op below stay dereferenceable for the guard's lifetime
  // even if a concurrent maintenance op erases them: BrickMap::Erase
  // retires bricks through the collector, and every retire after this pin
  // waits out the guard. History Reps displaced by concurrent appends
  // likewise stay readable for PinnedSnapshot's borrowed views.
  const ebr::Guard guard;

  PurgeStats total;
  uint64_t total_entries = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];

    // Phase 1 (shard op, O(bricks)): collect the shard's brick pointers.
    std::vector<Brick*> shard_bricks;
    timed(shard, [&shard_bricks](BrickMap& bricks) {
      bricks.ForEach([&](Brick& brick) { shard_bricks.push_back(&brick); });
    });

    for (Brick* brick : shard_bricks) {
      ++total.bricks_examined;
      // Bounded replan loop: a concurrent mutation between snapshot and
      // install invalidates the plan; purge is periodic, so after a few
      // conflicts the brick simply waits for the next round.
      for (int attempt = 0; attempt < 3; ++attempt) {
        // Phase 2 (off-shard): consistent history snapshot + purge plan,
        // while the shard keeps serving scans and appends.
        aosi::HistoryView view;
        if (!brick->history().PinnedSnapshot(&view)) break;
        const auto plan = aosi::PlanPurge(view, lse);
        if (!plan.needed) break;

        // Phase 3 (shard op, O(bytes) memcpy): version-validated raw
        // column copy.
        std::optional<BessColumn> bess_copy;
        std::vector<MetricColumn> metric_copies;
        bool copied = false;
        timed(shard, [&](BrickMap&) {
          copied = brick->SnapshotColumnsForCompaction(view.version,
                                                       &bess_copy,
                                                       &metric_copies);
        });
        if (!copied) {
          conflicts->Add();
          continue;
        }

        // Phase 4 (off-shard): the expensive part — filter every column
        // down to the plan's keep rows, against the copies.
        const auto keep = [&plan](uint64_t row) {
          return plan.keep.Get(row);
        };
        BessColumn new_bess = bess_copy->CompactedCopy(keep);
        std::vector<MetricColumn> new_metrics;
        new_metrics.reserve(metric_copies.size());
        for (const auto& m : metric_copies) {
          new_metrics.push_back(m.CompactedCopy(keep));
        }

        // Phase 5 (shard op, O(history entries)): version-validated
        // install of the rebuilt columns.
        bool installed = false;
        uint64_t removed = 0;
        timed(shard, [&](BrickMap&) {
          const uint64_t before = brick->num_records();
          installed = brick->InstallCompaction(view.version, plan,
                                               std::move(new_bess),
                                               std::move(new_metrics));
          if (installed) removed = before - brick->num_records();
        });
        if (!installed) {
          conflicts->Add();
          continue;
        }
        ++total.bricks_rewritten;
        total.records_removed += removed;
        break;
      }
    }

    // Phase 6 (shard op, O(bricks)): count surviving history entries and
    // erase bricks the round left fully dead (Erase EBR-retires them; the
    // pointers in shard_bricks stay valid under our guard).
    timed(shard, [&](BrickMap& bricks) {
      std::vector<Bid> dead;
      bricks.ForEach([&](Brick& brick) {
        total_entries += brick.history().num_entries();
        if (brick.num_records() == 0 && brick.history().num_entries() == 0) {
          dead.push_back(brick.bid());
        }
      });
      for (Bid bid : dead) {
        bricks.Erase(bid);
        ++total.bricks_erased;
      }
    });
  }
  FinishPurgeRound(total, total_entries);
  return total;
}

void Table::FinishPurgeRound(const PurgeStats& total,
                             uint64_t total_entries) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("aosi.purge.rounds_total")->Add();
  // Post-purge epochs-vector footprint: how much §III-C history the table
  // still carries (grows between purges, shrinks as LSE advances).
  reg.GetGauge("aosi.epochs_vector_entries")
      ->Set(static_cast<int64_t>(total_entries));
  total.PublishTo(reg);
}

void Table::Rollback(aosi::Epoch victim) {
  if (rollback_index_) {
    // Indexed path (§III-C5's alternative): only the victim's bricks are
    // visited, skipping every untouched partition's epochs vector.
    std::vector<std::vector<Bid>> per_shard(shards_.size());
    for (Bid bid : rollback_index_->Take(victim)) {
      per_shard[ShardOf(bid)].push_back(bid);
    }
    std::vector<std::future<void>> done;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (per_shard[s].empty()) continue;
      auto bids = std::move(per_shard[s]);
      done.push_back(shards_[s]->Enqueue([victim, bids](BrickMap& bricks) {
        for (Bid bid : bids) {
          Brick* brick = bricks.Find(bid);
          if (brick == nullptr) continue;
          auto plan = aosi::PlanRollback(brick->history(), victim);
          if (plan.needed) {
            brick->ApplyCompaction(plan);
          }
        }
      }));
    }
    for (auto& f : done) f.get();
    return;
  }

  std::vector<std::future<void>> done;
  for (auto& shard : shards_) {
    done.push_back(shard->Enqueue([victim](BrickMap& bricks) {
      bricks.ForEach([&](Brick& brick) {
        auto plan = aosi::PlanRollback(brick.history(), victim);
        if (plan.needed) {
          brick.ApplyCompaction(plan);
        }
      });
    }));
  }
  for (auto& f : done) f.get();
}

void Table::TruncateAfter(aosi::Epoch lse) {
  std::vector<std::future<void>> done;
  for (auto& shard : shards_) {
    done.push_back(shard->Enqueue([lse](BrickMap& bricks) {
      std::vector<Bid> dead;
      bricks.ForEach([&](Brick& brick) {
        auto plan = aosi::PlanRetainUpTo(brick.history(), lse);
        if (plan.needed) {
          brick.ApplyCompaction(plan);
        }
        if (brick.num_records() == 0 && brick.history().num_entries() == 0) {
          dead.push_back(brick.bid());
        }
      });
      for (Bid bid : dead) bricks.Erase(bid);
    }));
  }
  for (auto& f : done) f.get();
}

void Table::Drain() {
  for (auto& shard : shards_) shard->Drain();
}

void Table::VisitBricks(const std::function<void(const Brick&)>& fn) {
  for (auto& shard : shards_) {
    shard
        ->Enqueue([&fn](BrickMap& bricks) {
          bricks.ForEach([&](const Brick& brick) { fn(brick); });
        })
        .get();
  }
}

void Table::ApplyToBrick(Bid bid, const std::function<void(Brick&)>& fn) {
  shards_[ShardOf(bid)]
      ->Enqueue([bid, &fn](BrickMap& bricks) { fn(bricks.GetOrCreate(bid)); })
      .get();
}

uint64_t Table::TotalRecords() {
  Drain();
  uint64_t n = 0;
  for (auto& shard : shards_) n += shard->bricks().TotalRecords();
  return n;
}

uint64_t Table::NumBricks() {
  Drain();
  uint64_t n = 0;
  for (auto& shard : shards_) n += shard->bricks().size();
  return n;
}

size_t Table::DataMemoryUsage() {
  Drain();
  size_t bytes = 0;
  for (auto& shard : shards_) bytes += shard->bricks().DataMemoryUsage();
  return bytes;
}

size_t Table::HistoryMemoryUsage() {
  Drain();
  size_t bytes = 0;
  for (auto& shard : shards_) bytes += shard->bricks().HistoryMemoryUsage();
  return bytes;
}

}  // namespace cubrick
