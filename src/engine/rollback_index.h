// Optional transaction -> partition rollback index (paper §III-C5).
//
// Rollbacks normally scan the epochs vector of every partition in the
// system. The paper discusses — and for its deployment rejects — an
// auxiliary global hash map associating transactions with the partitions
// they touched, trading memory for rollback speed ("we do not recognize
// this as a good trade-off ... rollbacks are uncommon operations"). We
// implement it as an opt-in so the trade-off is measurable
// (bench/ablation_rollback_index): enabled, rollback touches only the
// bricks the victim wrote; the index costs memory proportional to
// in-flight write activity and is trimmed as LSE advances.

#pragma once

#include <map>
#include <set>
#include <vector>

#include "aosi/epoch.h"
#include "common/mutex.h"
#include "storage/schema.h"

namespace cubrick {

class RollbackIndex {
 public:
  /// Records that `epoch` appended to / deleted `bid`.
  void Note(aosi::Epoch epoch, Bid bid) {
    MutexLock lock(mutex_);
    index_[epoch].insert(bid);
  }

  /// Returns and forgets the partitions `epoch` touched.
  std::vector<Bid> Take(aosi::Epoch epoch) {
    MutexLock lock(mutex_);
    auto it = index_.find(epoch);
    if (it == index_.end()) return {};
    std::vector<Bid> bids(it->second.begin(), it->second.end());
    index_.erase(it);
    return bids;
  }

  /// Drops entries for transactions at or before `lse` — they are finished
  /// and can never be rolled back.
  void DiscardUpTo(aosi::Epoch lse) {
    MutexLock lock(mutex_);
    index_.erase(index_.begin(), index_.upper_bound(lse));
  }

  size_t NumTrackedTxns() const {
    MutexLock lock(mutex_);
    return index_.size();
  }

  /// Approximate bytes held — the memory cost the paper cites against this
  /// design.
  size_t MemoryUsage() const {
    MutexLock lock(mutex_);
    size_t bytes = 0;
    for (const auto& [epoch, bids] : index_) {
      bytes += sizeof(aosi::Epoch) + bids.size() * (sizeof(Bid) + 32);
    }
    return bytes;
  }

 private:
  mutable Mutex mutex_;
  std::map<aosi::Epoch, std::set<Bid>> index_ GUARDED_BY(mutex_);
};

}  // namespace cubrick
