// Shared/exclusive lock manager with wait-die deadlock avoidance.
//
// Substrate for the 2PL baseline (§I, §VII discuss lock-based concurrency
// control as the traditional alternative to AOSI). Resources are opaque
// 64-bit ids (a partition, a table). Deadlocks are avoided with wait-die:
// an older transaction (smaller id) waits for a younger holder; a younger
// requester is aborted immediately and must restart.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace cubrick::mvcc {

enum class LockMode : uint8_t { kShared, kExclusive };

class LockManager {
 public:
  /// Blocks until the lock is granted, or returns Aborted (wait-die) when
  /// waiting could deadlock. Re-entrant: acquiring a mode already held is a
  /// no-op; upgrading S->X succeeds when the requester is the sole holder.
  Status Acquire(uint64_t txn_id, uint64_t resource, LockMode mode)
      EXCLUDES(mutex_);

  /// Releases every lock held by `txn_id` and wakes waiters.
  void ReleaseAll(uint64_t txn_id) EXCLUDES(mutex_);

  /// Number of resources with at least one holder (for tests/stats).
  size_t NumLockedResources() const EXCLUDES(mutex_);

 private:
  struct LockState {
    std::set<uint64_t> shared_holders;
    uint64_t exclusive_holder = 0;  // 0 = none
    CondVar cv;
  };

  /// True when `txn_id` may take `mode` right now.
  bool Compatible(const LockState& state, uint64_t txn_id,
                  LockMode mode) const REQUIRES(mutex_);

  /// True when every conflicting holder is younger (larger id) than the
  /// requester, i.e. wait-die allows waiting.
  bool MayWait(const LockState& state, uint64_t txn_id, LockMode mode) const
      REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<uint64_t, LockState> locks_ GUARDED_BY(mutex_);
};

}  // namespace cubrick::mvcc
