#include "mvcc/lock_manager.h"

namespace cubrick::mvcc {

bool LockManager::Compatible(const LockState& state, uint64_t txn_id,
                             LockMode mode) const {
  if (state.exclusive_holder == txn_id) return true;  // re-entrant X
  if (mode == LockMode::kShared) {
    return state.exclusive_holder == 0;
  }
  // Exclusive: no other X holder and no other S holders.
  if (state.exclusive_holder != 0) return false;
  if (state.shared_holders.empty()) return true;
  return state.shared_holders.size() == 1 &&
         state.shared_holders.count(txn_id) == 1;  // S->X upgrade
}

bool LockManager::MayWait(const LockState& state, uint64_t txn_id,
                          LockMode mode) const {
  // Wait-die: the requester may wait only if every conflicting holder is
  // younger (has a larger transaction id).
  if (state.exclusive_holder != 0 && state.exclusive_holder != txn_id &&
      state.exclusive_holder < txn_id) {
    return false;
  }
  if (mode == LockMode::kExclusive) {
    for (uint64_t holder : state.shared_holders) {
      if (holder != txn_id && holder < txn_id) return false;
    }
  }
  return true;
}

Status LockManager::Acquire(uint64_t txn_id, uint64_t resource,
                            LockMode mode) {
  MutexLock lock(mutex_);
  LockState& state = locks_[resource];
  while (!Compatible(state, txn_id, mode)) {
    if (!MayWait(state, txn_id, mode)) {
      return Status::Aborted("wait-die: transaction " +
                             std::to_string(txn_id) + " dies on resource " +
                             std::to_string(resource));
    }
    state.cv.Wait(lock);
  }
  if (mode == LockMode::kShared) {
    state.shared_holders.insert(txn_id);
  } else {
    state.shared_holders.erase(txn_id);  // upgrade drops the S entry
    state.exclusive_holder = txn_id;
  }
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  MutexLock lock(mutex_);
  for (auto it = locks_.begin(); it != locks_.end();) {
    LockState& state = it->second;
    bool changed = false;
    if (state.exclusive_holder == txn_id) {
      state.exclusive_holder = 0;
      changed = true;
    }
    if (state.shared_holders.erase(txn_id) > 0) {
      changed = true;
    }
    if (changed) {
      state.cv.NotifyAll();
    }
    if (state.exclusive_holder == 0 && state.shared_holders.empty()) {
      // Cannot erase: waiters may be blocked on state.cv. Only erase when
      // nobody can be waiting — conservatively keep the entry; the map is
      // bounded by the number of distinct resources.
      ++it;
    } else {
      ++it;
    }
  }
}

size_t LockManager::NumLockedResources() const {
  MutexLock lock(mutex_);
  size_t count = 0;
  for (const auto& [resource, state] : locks_) {
    if (state.exclusive_holder != 0 || !state.shared_holders.empty()) {
      ++count;
    }
  }
  return count;
}

}  // namespace cubrick::mvcc
