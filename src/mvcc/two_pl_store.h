// Single-version 2PL column store — the locking baseline.
//
// Strict two-phase locking over horizontally partitioned columns: scans take
// shared locks on every partition, writers take exclusive locks on the
// partitions they touch, all locks are held until commit/abort. This is the
// "pessimistic" design §II-A describes: readers and writers block each
// other, trading the memory overhead of MVCC for contention.

#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mvcc/lock_manager.h"

namespace cubrick::mvcc {

struct TplTxn {
  uint64_t id = 0;
  /// Undo log: (partition, row) pairs inserted by this transaction.
  std::vector<std::pair<uint64_t, uint64_t>> inserted;
  /// Undo log: (partition, row) pairs tombstoned by this transaction.
  std::vector<std::pair<uint64_t, uint64_t>> deleted;
};

class TwoPLStore {
 public:
  TwoPLStore(size_t num_columns, size_t num_partitions);

  TplTxn Begin();

  /// Inserts one record into partition `hash(values[0]) % P`. Takes an X
  /// lock on that partition; may return Aborted under wait-die.
  Status Insert(TplTxn* txn, const std::vector<int64_t>& values);

  /// Tombstones a record. X-locks its partition.
  Status Delete(TplTxn* txn, uint64_t partition, uint64_t row);

  /// Sums `column` over all live records. S-locks every partition, blocking
  /// behind concurrent writers (and vice versa) — the contention AOSI's
  /// lock-free design eliminates.
  Result<int64_t> ScanSum(TplTxn* txn, size_t column);

  Status Commit(TplTxn* txn);
  Status Abort(TplTxn* txn);

  /// Unsynchronized scan of partition sizes; callers must be quiescent or
  /// hold S locks on every partition (benchmark/reporting use only).
  uint64_t num_rows() const;
  size_t num_partitions() const { return partitions_.size(); }

  /// Per-record concurrency metadata: one tombstone bit per record, stored
  /// as a byte here.
  size_t MetadataOverhead() const;

 private:
  struct Partition {
    std::vector<std::vector<int64_t>> columns;
    std::vector<uint8_t> tombstone;
  };

  LockManager locks_;
  std::atomic<uint64_t> next_txn_{1};
  std::vector<Partition> partitions_;
  size_t num_columns_;
};

}  // namespace cubrick::mvcc
