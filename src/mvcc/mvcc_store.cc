#include "mvcc/mvcc_store.h"

#include "common/mutex.h"

namespace cubrick::mvcc {

MvccStore::MvccStore(size_t num_columns)
    : num_columns_(num_columns), columns_(num_columns) {
  CUBRICK_CHECK(num_columns >= 1);
}

MvccTxn MvccStore::Begin() {
  MvccTxn txn;
  // relaxed: id allocation only needs uniqueness; ordering comes from mutex_.
  txn.id = next_txn_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  txn.begin_ts = clock_.load(std::memory_order_relaxed);
  active_.emplace(txn.id, txn.begin_ts);
  return txn;
}

Status MvccStore::Insert(MvccTxn* txn, const std::vector<int64_t>& values) {
  if (values.size() != num_columns_) {
    return Status::InvalidArgument("arity mismatch");
  }
  MutexLock lock(mutex_);
  const uint64_t row = created_.size();
  for (size_t c = 0; c < num_columns_; ++c) {
    columns_[c].push_back(values[c]);
  }
  created_.push_back(kTxnFlag | txn->id);
  deleted_.push_back(kInfinity);
  txn->insert_set.push_back(row);
  return Status::OK();
}

Status MvccStore::Delete(MvccTxn* txn, uint64_t row) {
  MutexLock lock(mutex_);
  if (row >= created_.size()) {
    return Status::OutOfRange("row out of range");
  }
  if (!ResolveVisible(created_[row], deleted_[row], txn->begin_ts, txn->id)) {
    return Status::Aborted("record not visible to this snapshot");
  }
  if (deleted_[row] != kInfinity) {
    // Another transaction (in-flight or committed after our snapshot)
    // already stamped the delete: first-updater wins, we abort.
    return Status::Aborted("write-write conflict on row " +
                           std::to_string(row));
  }
  deleted_[row] = kTxnFlag | txn->id;
  txn->write_set.push_back(row);
  return Status::OK();
}

Status MvccStore::Update(MvccTxn* txn, uint64_t row, size_t column,
                         int64_t value, uint64_t* new_row) {
  if (column >= num_columns_) {
    return Status::OutOfRange("column out of range");
  }
  std::vector<int64_t> next_version;
  {
    MutexLock lock(mutex_);
    if (row >= created_.size()) {
      return Status::OutOfRange("row out of range");
    }
    next_version.reserve(num_columns_);
    for (size_t c = 0; c < num_columns_; ++c) {
      next_version.push_back(columns_[c][row]);
    }
  }
  next_version[column] = value;
  CUBRICK_RETURN_IF_ERROR(Delete(txn, row));
  CUBRICK_RETURN_IF_ERROR(Insert(txn, next_version));
  if (new_row != nullptr) {
    *new_row = txn->insert_set.back();
  }
  return Status::OK();
}

Status MvccStore::Commit(MvccTxn* txn) {
  MutexLock lock(mutex_);
  auto it = active_.find(txn->id);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  // relaxed: clock_ is only advanced and read under mutex_, which orders it.
  const Timestamp commit_ts = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  for (uint64_t row : txn->insert_set) {
    created_[row] = commit_ts;
  }
  for (uint64_t row : txn->write_set) {
    deleted_[row] = commit_ts;
  }
  finished_.emplace(txn->id, commit_ts);
  active_.erase(it);
  return Status::OK();
}

Status MvccStore::Abort(MvccTxn* txn) {
  MutexLock lock(mutex_);
  auto it = active_.find(txn->id);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  for (uint64_t row : txn->insert_set) {
    created_[row] = 0;  // permanently invisible
  }
  for (uint64_t row : txn->write_set) {
    deleted_[row] = kInfinity;  // undo the delete stamp
  }
  finished_.emplace(txn->id, 0);
  active_.erase(it);
  return Status::OK();
}

bool MvccStore::ResolveVisible(Timestamp begin, Timestamp end, Timestamp ts,
                               TxnId reader) const {
  if (begin == 0) return false;  // aborted insert
  if (IsTxnMarker(begin)) {
    // Uncommitted (or racing) creator: visible only to itself.
    if (MarkerTxn(begin) != reader) return false;
  } else if (begin > ts) {
    return false;  // committed after our snapshot
  }
  if (end == kInfinity) return true;
  if (IsTxnMarker(end)) {
    // Deleted by an uncommitted transaction: still visible to everyone but
    // the deleter itself.
    return MarkerTxn(end) != reader;
  }
  return end > ts;  // visible unless the delete committed before us
}

bool MvccStore::IsVisible(uint64_t row, Timestamp ts) const {
  MutexLock lock(mutex_);
  return ResolveVisible(created_[row], deleted_[row], ts, /*reader=*/0);
}

int64_t MvccStore::ScanSum(Timestamp ts, size_t column) const {
  MutexLock lock(mutex_);
  int64_t sum = 0;
  const auto& col = columns_[column];
  for (uint64_t row = 0; row < created_.size(); ++row) {
    // One visibility test per record — the per-row branching cost that
    // AOSI's range-based bitmaps avoid.
    if (ResolveVisible(created_[row], deleted_[row], ts, /*reader=*/0)) {
      sum += col[row];
    }
  }
  return sum;
}

uint64_t MvccStore::ScanCount(Timestamp ts) const {
  MutexLock lock(mutex_);
  uint64_t count = 0;
  for (uint64_t row = 0; row < created_.size(); ++row) {
    if (ResolveVisible(created_[row], deleted_[row], ts, /*reader=*/0)) {
      ++count;
    }
  }
  return count;
}

uint64_t MvccStore::Vacuum(Timestamp horizon) {
  MutexLock lock(mutex_);
  CUBRICK_CHECK(active_.empty());  // simplification: quiescent-only vacuum
  uint64_t write = 0;
  const uint64_t n = created_.size();
  uint64_t removed = 0;
  for (uint64_t row = 0; row < n; ++row) {
    const bool aborted_insert = created_[row] == 0;
    const bool dead_version = !IsTxnMarker(deleted_[row]) &&
                              deleted_[row] != kInfinity &&
                              deleted_[row] < horizon;  // aosi-lint: allow(epoch-compare)
    if (aborted_insert || dead_version) {
      ++removed;
      continue;
    }
    if (write != row) {
      for (auto& col : columns_) col[write] = col[row];
      created_[write] = created_[row];
      deleted_[write] = deleted_[row];
    }
    ++write;
  }
  for (auto& col : columns_) col.resize(write);
  created_.resize(write);
  deleted_.resize(write);
  return removed;
}

uint64_t MvccStore::num_rows() const {
  MutexLock lock(mutex_);
  return created_.size();
}

size_t MvccStore::TimestampOverhead() const {
  MutexLock lock(mutex_);
  return created_.size() * 16;
}

int64_t MvccStore::GetValue(uint64_t row, size_t column) const {
  MutexLock lock(mutex_);
  return columns_[column][row];
}

size_t MvccStore::DataMemoryUsage() const {
  MutexLock lock(mutex_);
  size_t bytes = 0;
  for (const auto& col : columns_) {
    bytes += col.capacity() * sizeof(int64_t);
  }
  return bytes;
}

}  // namespace cubrick::mvcc
