// Baseline MVCC column store with two 64-bit timestamps per record.
//
// This is the comparison point the paper measures AOSI against (§VI-A):
// a conventional multiversion store in the style of Hekaton [1] / HANA,
// where every record version carries created_at / deleted_at timestamps and
// scans test each record against the reader's snapshot. Updates create new
// versions (delete + reinsert); conflicting writes abort (first-updater
// wins), exercising exactly the rollback machinery AOSI designs away.
//
// Unlike the AOSI engine this store supports record updates and single-
// record deletes — the flexibility whose cost the paper quantifies:
// 16 bytes of timestamp per record plus per-record visibility branches in
// every scan.

#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace cubrick::mvcc {

using Timestamp = uint64_t;
using TxnId = uint64_t;

/// Transaction handle for the MVCC store.
struct MvccTxn {
  TxnId id = 0;
  Timestamp begin_ts = 0;
  /// Row indexes whose end_ts this transaction stamped (deletes/updates),
  /// kept for abort undo.
  std::vector<uint64_t> write_set;
  /// Row indexes inserted by this transaction, for abort undo.
  std::vector<uint64_t> insert_set;
};

/// Snapshot-isolated multiversion table: N int64 columns.
class MvccStore {
 public:
  explicit MvccStore(size_t num_columns);

  MvccTxn Begin() EXCLUDES(mutex_);

  /// Appends one record (arity must match); visible to snapshots after the
  /// transaction commits.
  Status Insert(MvccTxn* txn, const std::vector<int64_t>& values)
      EXCLUDES(mutex_);

  /// Marks `row` deleted. Fails with Aborted if another in-flight or newer
  /// transaction already deleted it (write-write conflict).
  Status Delete(MvccTxn* txn, uint64_t row) EXCLUDES(mutex_);

  /// Updates one column of `row` by creating a new version (delete +
  /// reinsert with the remaining columns copied). Returns the new row index
  /// via *new_row when non-null.
  Status Update(MvccTxn* txn, uint64_t row, size_t column, int64_t value,
                uint64_t* new_row = nullptr) EXCLUDES(mutex_);

  Status Commit(MvccTxn* txn) EXCLUDES(mutex_);
  Status Abort(MvccTxn* txn) EXCLUDES(mutex_);

  /// True when `row` is visible to a snapshot taken at `ts` (i.e. by a
  /// transaction whose begin_ts == ts).
  bool IsVisible(uint64_t row, Timestamp ts) const EXCLUDES(mutex_);

  /// Sum of `column` over all rows visible at `ts` — the canonical scan.
  int64_t ScanSum(Timestamp ts, size_t column) const EXCLUDES(mutex_);

  /// Number of visible rows at `ts`.
  uint64_t ScanCount(Timestamp ts) const EXCLUDES(mutex_);

  /// Garbage-collects versions invisible to every snapshot >= horizon:
  /// physically drops rows whose end_ts is a committed timestamp < horizon.
  /// Returns the number of rows removed.
  uint64_t Vacuum(Timestamp horizon) EXCLUDES(mutex_);

  uint64_t num_rows() const EXCLUDES(mutex_);
  size_t num_columns() const { return num_columns_; }

  /// Bytes spent on per-record concurrency-control metadata. This is the
  /// "baseline overhead" series of the paper's Figures 6/7:
  /// 16 bytes (two 8-byte timestamps) per record version.
  size_t TimestampOverhead() const EXCLUDES(mutex_);

  /// Bytes of actual column data.
  size_t DataMemoryUsage() const EXCLUDES(mutex_);

  int64_t GetValue(uint64_t row, size_t column) const EXCLUDES(mutex_);

 private:
  /// Timestamps with the high bit set encode "uncommitted, owned by txn id
  /// (low bits)".
  static constexpr Timestamp kTxnFlag = 1ULL << 63;
  static constexpr Timestamp kInfinity = kTxnFlag - 1;

  static bool IsTxnMarker(Timestamp ts) { return (ts & kTxnFlag) != 0; }
  static TxnId MarkerTxn(Timestamp ts) { return ts & ~kTxnFlag; }

  /// Resolves a begin/end stamp to a committed timestamp for visibility at
  /// `ts`; returns false when the stamp belongs to an uncommitted foreign
  /// transaction.
  bool ResolveVisible(Timestamp begin, Timestamp end, Timestamp ts,
                      TxnId reader) const REQUIRES(mutex_);

  const size_t num_columns_;
  mutable Mutex mutex_;
  /// Only touched while holding mutex_ (clock_) or as a pure id allocator
  /// (next_txn_), so relaxed ordering is enough.
  std::atomic<Timestamp> clock_{1};
  std::atomic<TxnId> next_txn_{1};

  std::vector<std::vector<int64_t>> columns_ GUARDED_BY(mutex_);
  std::vector<Timestamp> created_ GUARDED_BY(mutex_);
  std::vector<Timestamp> deleted_ GUARDED_BY(mutex_);

  /// Commit timestamps of finished transactions (txn id -> commit ts;
  /// aborted transactions map to 0).
  std::unordered_map<TxnId, Timestamp> finished_ GUARDED_BY(mutex_);
  /// Ids of active transactions (for visibility of txn markers).
  std::unordered_map<TxnId, Timestamp> active_ GUARDED_BY(mutex_);
};

}  // namespace cubrick::mvcc
