#include "mvcc/two_pl_store.h"

namespace cubrick::mvcc {

TwoPLStore::TwoPLStore(size_t num_columns, size_t num_partitions)
    : num_columns_(num_columns) {
  CUBRICK_CHECK(num_columns >= 1 && num_partitions >= 1);
  partitions_.resize(num_partitions);
  for (auto& p : partitions_) {
    p.columns.resize(num_columns);
  }
}

TplTxn TwoPLStore::Begin() {
  TplTxn txn;
  // relaxed: id allocation only needs uniqueness, no cross-thread ordering.
  txn.id = next_txn_.fetch_add(1, std::memory_order_relaxed);
  return txn;
}

Status TwoPLStore::Insert(TplTxn* txn, const std::vector<int64_t>& values) {
  if (values.size() != num_columns_) {
    return Status::InvalidArgument("arity mismatch");
  }
  const uint64_t part =
      static_cast<uint64_t>(values[0]) % partitions_.size();
  CUBRICK_RETURN_IF_ERROR(
      locks_.Acquire(txn->id, part, LockMode::kExclusive));
  Partition& p = partitions_[part];
  const uint64_t row = p.tombstone.size();
  for (size_t c = 0; c < num_columns_; ++c) {
    p.columns[c].push_back(values[c]);
  }
  p.tombstone.push_back(0);
  txn->inserted.emplace_back(part, row);
  return Status::OK();
}

Status TwoPLStore::Delete(TplTxn* txn, uint64_t partition, uint64_t row) {
  if (partition >= partitions_.size()) {
    return Status::OutOfRange("partition out of range");
  }
  CUBRICK_RETURN_IF_ERROR(
      locks_.Acquire(txn->id, partition, LockMode::kExclusive));
  Partition& p = partitions_[partition];
  if (row >= p.tombstone.size()) {
    return Status::OutOfRange("row out of range");
  }
  if (p.tombstone[row] != 0) {
    return Status::NotFound("record already deleted");
  }
  p.tombstone[row] = 1;
  txn->deleted.emplace_back(partition, row);
  return Status::OK();
}

Result<int64_t> TwoPLStore::ScanSum(TplTxn* txn, size_t column) {
  if (column >= num_columns_) {
    return Status::OutOfRange("column out of range");
  }
  for (uint64_t part = 0; part < partitions_.size(); ++part) {
    CUBRICK_RETURN_IF_ERROR(
        locks_.Acquire(txn->id, part, LockMode::kShared));
  }
  int64_t sum = 0;
  for (const auto& p : partitions_) {
    const auto& col = p.columns[column];
    for (uint64_t row = 0; row < col.size(); ++row) {
      if (p.tombstone[row] == 0) {
        sum += col[row];
      }
    }
  }
  return sum;
}

Status TwoPLStore::Commit(TplTxn* txn) {
  locks_.ReleaseAll(txn->id);
  txn->inserted.clear();
  txn->deleted.clear();
  return Status::OK();
}

Status TwoPLStore::Abort(TplTxn* txn) {
  // Undo in reverse order while still holding the locks.
  for (auto it = txn->deleted.rbegin(); it != txn->deleted.rend(); ++it) {
    partitions_[it->first].tombstone[it->second] = 0;
  }
  for (auto it = txn->inserted.rbegin(); it != txn->inserted.rend(); ++it) {
    Partition& p = partitions_[it->first];
    // Inserts append, so undoing in reverse pops from the back.
    CUBRICK_CHECK(it->second + 1 == p.tombstone.size());
    for (auto& col : p.columns) col.pop_back();
    p.tombstone.pop_back();
  }
  locks_.ReleaseAll(txn->id);
  txn->inserted.clear();
  txn->deleted.clear();
  return Status::OK();
}

uint64_t TwoPLStore::num_rows() const {
  uint64_t n = 0;
  for (const auto& p : partitions_) n += p.tombstone.size();
  return n;
}

size_t TwoPLStore::MetadataOverhead() const {
  size_t bytes = 0;
  for (const auto& p : partitions_) bytes += p.tombstone.capacity();
  return bytes;
}

}  // namespace cubrick::mvcc
