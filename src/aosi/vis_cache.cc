#include "aosi/vis_cache.h"

#include <utility>

namespace cubrick::aosi {

VisKey VisibilityCache::MakeKey(const EpochVector& history,
                                const Snapshot& snapshot,
                                bool read_uncommitted) {
  VisKey key;
  key.history_version = history.version();
  key.read_uncommitted = read_uncommitted;
  if (read_uncommitted) {
    // RU ignores the snapshot entirely: the all-ones mask only depends on
    // the record count, which the version tag already pins.
    return key;
  }
  // Clamp to the newest stamp actually present: every snapshot at or past
  // it selects the same runs, so they share one entry.
  key.horizon = MinEpoch(snapshot.epoch, history.max_epoch());
  for (Epoch dep : snapshot.deps) {
    // Deps past the horizon cannot mask any run the horizon admits.
    if (AtOrBefore(dep, key.horizon)) key.deps.Insert(dep);
  }
  return key;
}

const Bitmap* VisibilityCache::Lookup(const VisKey& key) const {
  for (const auto& slot : slots_) {
    // acquire pairs with the release exchange in Publish: seeing the
    // pointer implies seeing the fully-built Entry behind it.
    const Entry* entry = slot.load(std::memory_order_acquire);
    if (entry != nullptr && entry->key == key) return &entry->bitmap;
  }
  return nullptr;
}

VisibilityCache::PublishResult VisibilityCache::Publish(const VisKey& key,
                                                        Bitmap* bitmap) {
  const Entry* entry = new Entry{key, std::move(*bitmap)};
  // relaxed: the cursor only spreads victims across slots; no data rides on it
  const uint64_t cursor = next_victim_.fetch_add(1, std::memory_order_relaxed);
  const size_t victim = cursor % kSlots;
  const Entry* old =
      slots_[victim].exchange(entry, std::memory_order_acq_rel);
  PublishResult result;
  result.published = &entry->bitmap;
  if (old != nullptr) {
    result.evicted = true;
    // The victim is unlinked but a concurrent scan that Looked it up under
    // its Guard may still read the bitmap; the collector frees it after
    // every such pin has drained.
    Retire(old);
  }
  return result;
}

void VisibilityCache::Clear() {
  for (auto& slot : slots_) {
    // acq_rel: acquire the retiring entry's contents before handing it to
    // the collector; release so a republished slot never appears to hold
    // stale data.
    const Entry* entry = slot.exchange(nullptr, std::memory_order_acq_rel);
    if (entry != nullptr) Retire(entry);
  }
}

}  // namespace cubrick::aosi
