// Node-strided Lamport epoch clock (paper §III-B, §IV-A).
//
// Each cluster node maintains an Epoch Clock (EC): the timestamp the next RW
// transaction will receive. In an N-node cluster, node i (1-based) starts its
// EC at i and advances it N at a time, so epochs from different nodes never
// collide. Every message between nodes piggybacks the sender's EC; receivers
// fast-forward their own clock Lamport-style, keeping the cluster's epochs
// loosely synchronized without dedicated traffic.

#pragma once

#include <atomic>
#include <cstdint>

#include "aosi/epoch.h"
#include "common/status.h"

namespace cubrick::aosi {

class EpochClock {
 public:
  /// node_idx is 1-based and must be in [1, num_nodes].
  EpochClock(uint32_t node_idx, uint32_t num_nodes)
      : node_idx_(node_idx), num_nodes_(num_nodes), next_(node_idx) {
    CUBRICK_CHECK(num_nodes >= 1);
    CUBRICK_CHECK(node_idx >= 1 && node_idx <= num_nodes);
  }

  /// Atomically hands out the next epoch and advances the clock by the
  /// cluster stride. Used when a RW transaction begins.
  Epoch Acquire() { return next_.fetch_add(num_nodes_, std::memory_order_acq_rel); }

  /// Current EC value — the epoch the *next* transaction would get. This is
  /// the value piggybacked on outgoing messages.
  Epoch Peek() const { return next_.load(std::memory_order_acquire); }

  /// Lamport observation: fast-forwards the clock to the smallest value
  /// >= `remote` that this node is allowed to emit (preserving the stride
  /// residue). No-op when the local clock is already ahead.
  void Observe(Epoch remote) {
    Epoch current = next_.load(std::memory_order_acquire);
    while (current < remote) {
      const Epoch target = AlignUp(remote);
      if (next_.compare_exchange_weak(current, target,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;
      }
      // current was reloaded by compare_exchange; loop re-checks.
    }
  }

  uint32_t node_idx() const { return node_idx_; }
  uint32_t num_nodes() const { return num_nodes_; }

 private:
  /// Smallest epoch >= v congruent to node_idx modulo num_nodes.
  Epoch AlignUp(Epoch v) const {
    const Epoch residue = node_idx_ % num_nodes_;
    const Epoch mod = v % num_nodes_;
    Epoch aligned = v - mod + residue;
    if (aligned < v) aligned += num_nodes_;
    return aligned;
  }

  const uint32_t node_idx_;
  const uint32_t num_nodes_;
  std::atomic<Epoch> next_;
};

}  // namespace cubrick::aosi
