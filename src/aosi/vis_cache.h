// Per-partition visibility-bitmap cache.
//
// §III-C3 bitmap generation is AOSI's only per-query concurrency-control
// cost, and the bitmap a scan builds is a pure function of (the partition's
// epochs vector, the snapshot). In the steady state — readers far behind no
// writer, or writers idle — consecutive scans of a brick recompute the exact
// same bitmap. This cache memoizes those bitmaps per brick.
//
// Keying. A cached entry is tagged with a VisKey:
//   - history_version: EpochVector::version(), bumped by every append,
//     delete marker and compaction install, so any history change
//     invalidates every cached bitmap without the cache ever observing the
//     mutation.
//   - horizon: the snapshot epoch clamped to the history's max_epoch().
//     Every snapshot at or past the newest stamp in the partition sees the
//     same prefix, so scans at epoch 1000 and 1007 over a partition whose
//     newest entry is 900 share one entry — the property that makes the
//     cache hit across an advancing epoch clock.
//   - deps: the snapshot's pendingTxs restricted to epochs at or before the
//     horizon (later deps cannot mask anything the horizon admits). Compared
//     *exactly* — a fingerprint collision would be a correctness bug, so no
//     fingerprint is ever trusted for equality.
//   - read_uncommitted: RU scans cache the all-ones mask under the version
//     tag alone.
//
// Concurrency (PR 8: EBR retirement). Bricks are single-writer (paper
// §V-B), and each scan assigns a brick to exactly one morsel worker, but
// slots are accessed from different threads across scans, so entries are
// published with release stores of immutable heap entries and read with
// acquire loads — TSan-clean with no locks on the hit path. Entries
// displaced by Publish or Clear are retired through ebr::Collector instead
// of waiting for a quiescent point: a pointer returned by Lookup stays
// valid for as long as the caller's ebr::Guard is alive (every scan entry
// point pins one), and the old kMaxRetired backlog — which made Publish
// silently decline under pure-read snapshot churn — is gone. Publish now
// always publishes (`query.vis_cache_publish_declined` asserts this stays
// true), and Clear() no longer needs scan quiescence, which is what lets
// purge compact bricks while scans are in flight.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "aosi/epoch.h"
#include "aosi/epoch_vector.h"
#include "common/bitmap.h"
#include "common/ebr.h"

namespace cubrick::aosi {

/// Identity of one cached visibility bitmap. See file comment for the
/// normalization that makes distinct snapshots share entries.
struct VisKey {
  uint64_t history_version = 0;
  Epoch horizon = kNoEpoch;
  bool read_uncommitted = false;
  EpochSet deps;

  bool operator==(const VisKey& other) const {
    return history_version == other.history_version &&
           SameEpoch(horizon, other.horizon) &&
           read_uncommitted == other.read_uncommitted && deps == other.deps;
  }
};

/// Small per-brick slot cache of visibility bitmaps. Owned by Brick;
/// mutable state of a const brick (scans are logically read-only).
class VisibilityCache {
 public:
  /// Distinct (horizon, deps) combinations live per brick. More than a
  /// handful of concurrently useful snapshots per partition means writers
  /// are active, in which case the version tag churns anyway.
  static constexpr size_t kSlots = 8;

  VisibilityCache() {
    for (auto& slot : slots_) {
      slot.store(nullptr, std::memory_order_relaxed);
    }
  }
  ~VisibilityCache() { Clear(); }

  VisibilityCache(const VisibilityCache&) = delete;
  VisibilityCache& operator=(const VisibilityCache&) = delete;

  /// The normalized cache key for scanning `history` under `snapshot`.
  static VisKey MakeKey(const EpochVector& history, const Snapshot& snapshot,
                        bool read_uncommitted);

  /// The cached bitmap for `key`, or nullptr on miss. The pointer stays
  /// valid while the caller's ebr::Guard is alive (see file comment).
  const Bitmap* Lookup(const VisKey& key) const;

  struct PublishResult {
    /// The published (now cache-owned) bitmap. Never nullptr: with EBR
    /// retirement there is no backlog bound, so Publish cannot decline.
    const Bitmap* published = nullptr;
    /// True when storing displaced an older entry (now EBR-retired).
    bool evicted = false;
  };

  /// Stores `*bitmap` (moved from) under `key`, displacing the round-robin
  /// victim slot; the victim is EBR-retired. Safe to call while other
  /// threads Lookup under their own Guards.
  PublishResult Publish(const VisKey& key, Bitmap* bitmap);

  /// Unlinks and EBR-retires every entry. Callable from the shard thread
  /// even while off-thread scans hold Lookup pointers under live Guards —
  /// retirement defers the frees past their critical sections.
  void Clear();

 private:
  struct Entry {
    VisKey key;
    Bitmap bitmap;
  };

  /// Unlinked entries go through the shared collector; charge the bitmap's
  /// heap to the limbo accounting.
  static void Retire(const Entry* entry) {
    ebr::RetireDelete(entry, entry->bitmap.MemoryUsage());
  }

  std::array<std::atomic<const Entry*>, kSlots> slots_;
  /// relaxed round-robin victim cursor; see Publish.
  std::atomic<uint64_t> next_victim_{0};
};

}  // namespace cubrick::aosi
