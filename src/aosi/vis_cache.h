// Per-partition visibility-bitmap cache.
//
// §III-C3 bitmap generation is AOSI's only per-query concurrency-control
// cost, and the bitmap a scan builds is a pure function of (the partition's
// epochs vector, the snapshot). In the steady state — readers far behind no
// writer, or writers idle — consecutive scans of a brick recompute the exact
// same bitmap. This cache memoizes those bitmaps per brick.
//
// Keying. A cached entry is tagged with a VisKey:
//   - history_version: EpochVector::version(), bumped by every append,
//     delete marker and compaction install, so any history change
//     invalidates every cached bitmap without the cache ever observing the
//     mutation.
//   - horizon: the snapshot epoch clamped to the history's max_epoch().
//     Every snapshot at or past the newest stamp in the partition sees the
//     same prefix, so scans at epoch 1000 and 1007 over a partition whose
//     newest entry is 900 share one entry — the property that makes the
//     cache hit across an advancing epoch clock.
//   - deps: the snapshot's pendingTxs restricted to epochs at or before the
//     horizon (later deps cannot mask anything the horizon admits). Compared
//     *exactly* — a fingerprint collision would be a correctness bug, so no
//     fingerprint is ever trusted for equality.
//   - read_uncommitted: RU scans cache the all-ones mask under the version
//     tag alone.
//
// Concurrency. Bricks are single-writer (paper §V-B): mutations happen on
// the owning shard thread with no scan in flight, and each scan assigns a
// brick to exactly one morsel worker. Lookups may therefore race only with
// publishes of *other* bricks' workers on the shared pool, but the slots are
// still accessed from different threads across scans, so entries are
// published with release stores of immutable heap entries and read with
// acquire loads — TSan-clean with no locks on the hit path. Entries evicted
// by Publish are retired, not freed: a pointer returned by Lookup stays
// valid until the next quiescent point (a brick mutation, which calls
// Clear() on the shard thread while no scan holds the brick).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "aosi/epoch.h"
#include "aosi/epoch_vector.h"
#include "common/bitmap.h"
#include "common/mutex.h"

namespace cubrick::aosi {

/// Identity of one cached visibility bitmap. See file comment for the
/// normalization that makes distinct snapshots share entries.
struct VisKey {
  uint64_t history_version = 0;
  Epoch horizon = kNoEpoch;
  bool read_uncommitted = false;
  EpochSet deps;

  bool operator==(const VisKey& other) const {
    return history_version == other.history_version &&
           SameEpoch(horizon, other.horizon) &&
           read_uncommitted == other.read_uncommitted && deps == other.deps;
  }
};

/// Small per-brick slot cache of visibility bitmaps. Owned by Brick;
/// mutable state of a const brick (scans are logically read-only).
class VisibilityCache {
 public:
  /// Distinct (horizon, deps) combinations live per brick. More than a
  /// handful of concurrently useful snapshots per partition means writers
  /// are active, in which case the version tag churns anyway.
  static constexpr size_t kSlots = 8;

  /// Publish stops storing new entries once this many evicted entries are
  /// awaiting a quiescent point, bounding memory on pure-read workloads
  /// whose snapshots never repeat (every miss would otherwise retire one).
  static constexpr size_t kMaxRetired = 64;

  VisibilityCache() {
    for (auto& slot : slots_) {
      slot.store(nullptr, std::memory_order_relaxed);
    }
  }
  ~VisibilityCache() { Clear(); }

  VisibilityCache(const VisibilityCache&) = delete;
  VisibilityCache& operator=(const VisibilityCache&) = delete;

  /// The normalized cache key for scanning `history` under `snapshot`.
  static VisKey MakeKey(const EpochVector& history, const Snapshot& snapshot,
                        bool read_uncommitted);

  /// The cached bitmap for `key`, or nullptr on miss. The pointer stays
  /// valid until the brick's next mutation (see file comment).
  const Bitmap* Lookup(const VisKey& key) const;

  struct PublishResult {
    /// The published (now cache-owned) bitmap, or nullptr when the cache
    /// declined (retired backlog at kMaxRetired) and left *bitmap untouched.
    const Bitmap* published = nullptr;
    /// True when storing displaced an older entry.
    bool evicted = false;
  };

  /// Stores `*bitmap` (moved from on success) under `key`, displacing the
  /// round-robin victim slot. Safe to call while other threads Lookup.
  PublishResult Publish(const VisKey& key, Bitmap* bitmap);

  /// Drops every entry, published and retired. Must only be called at a
  /// quiescent point for the owning brick: on the shard thread, with no
  /// scan in flight (every brick mutation qualifies).
  void Clear();

  /// Entries awaiting reclamation (white-box tests).
  size_t num_retired() const {
    MutexLock lock(retired_mu_);
    return retired_.size();
  }

 private:
  struct Entry {
    VisKey key;
    Bitmap bitmap;
  };

  std::array<std::atomic<const Entry*>, kSlots> slots_;
  /// relaxed round-robin victim cursor; see Publish.
  std::atomic<uint64_t> next_victim_{0};

  /// Entries swapped out of a slot while a concurrent scan of another
  /// publish round may still dereference them; freed in Clear().
  mutable Mutex retired_mu_;
  std::vector<const Entry*> retired_ GUARDED_BY(retired_mu_);
};

}  // namespace cubrick::aosi
