// Deliberate visibility faults for validating the online checker.
//
// A checker that never fires is indistinguishable from one that cannot
// fire. These knobs let tests corrupt the §III-C3 visibility computation in
// a controlled way — e.g. treating the snapshot's first dependency as
// visible, which manufactures exactly the stale-read anomaly AOSI's deps
// set exists to prevent — and then assert the online checker flags it
// within a bounded number of sampled transactions.
//
// The knobs are process-global atomics, default-off, and checked with a
// single relaxed load on the visibility path (same cost model as the
// obs::Enabled kill switch). They exist for tests and the check_si
// harness only; production code never sets them.

#pragma once

#include <atomic>

namespace cubrick::aosi {

namespace internal {
inline std::atomic<bool>& SkipFirstDepFaultFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal

/// When enabled, BuildVisibilityBitmap treats append runs stamped with the
/// snapshot's *minimum dependency epoch* as visible — i.e. the snapshot
/// "forgets" to exclude one concurrent uncommitted transaction.
inline bool SkipFirstDepFaultEnabled() {
  return internal::SkipFirstDepFaultFlag().load(std::memory_order_relaxed);
}

inline void SetSkipFirstDepFault(bool enabled) {
  internal::SkipFirstDepFaultFlag().store(enabled,
                                          std::memory_order_release);
}

}  // namespace cubrick::aosi
