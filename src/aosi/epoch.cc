#include "aosi/epoch.h"

#include <sstream>

namespace cubrick::aosi {

std::string EpochSet::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < epochs_.size(); ++i) {
    if (i > 0) out << ", ";
    out << epochs_[i];
  }
  out << "}";
  return out.str();
}

}  // namespace cubrick::aosi
