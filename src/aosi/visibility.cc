#include "aosi/visibility.h"

#include "aosi/fault_inject.h"

namespace cubrick::aosi {

Bitmap BuildVisibilityBitmap(const EpochVector& history,
                             const Snapshot& snapshot) {
  Bitmap bitmap(history.num_records(), false);
  const auto runs = history.Decode();

  // Test-only fault (fault_inject.h): pretend the snapshot's first dep is
  // visible, manufacturing the stale read the online checker must catch.
  const Epoch faulted_dep = SkipFirstDepFaultEnabled() && !snapshot.deps.empty()
                                ? snapshot.deps.Min()
                                : kNoEpoch;

  // First pass: set bits for append runs whose transaction is in-snapshot.
  for (const auto& run : runs) {
    const bool sees =
        snapshot.Sees(run.epoch) ||
        (!IsNoEpoch(faulted_dep) && SameEpoch(run.epoch, faulted_dep));
    if (!run.is_delete && sees) {
      bitmap.SetRange(run.begin, run.end);
    }
  }

  // Secondary pass: apply visible deletes via the shared cleanup rule.
  for (const auto& del : runs) {
    if (!del.is_delete || !snapshot.Sees(del.epoch)) continue;
    ApplyDeleteCleanup(runs, del.epoch, del.begin, &bitmap);
  }
  return bitmap;
}

void ApplyDeleteCleanup(const std::vector<EpochRun>& runs, Epoch k,
                        uint64_t delete_point, Bitmap* bitmap) {
  // A delete by k clears (a) every record of transactions j ordered before
  // k regardless of physical position, and (b) k's own records located
  // strictly before the delete point.
  for (const auto& run : runs) {
    if (run.is_delete) continue;
    if (HappensBefore(run.epoch, k)) {
      bitmap->ClearRange(run.begin, run.end);
    } else if (SameEpoch(run.epoch, k) && run.begin < delete_point) {
      bitmap->ClearRange(run.begin,
                         run.end < delete_point ? run.end : delete_point);
    }
  }
}

Bitmap BuildReadUncommittedBitmap(const EpochVector& history) {
  return Bitmap(history.num_records(), true);
}

bool AnyVisible(const EpochVector& history, const Snapshot& snapshot) {
  // Run-granular early exit: no bitmap is ever allocated. A run contributes
  // a visible record iff its transaction is in-snapshot and the delete-
  // cleanup rule (ApplyDeleteCleanup) leaves part of it standing, which is
  // decidable per run against the set of visible delete markers.
  if (history.num_records() == 0) return false;
  if (!history.HasDelete()) {
    for (const auto& entry : history.entries()) {
      if (!entry.is_delete() && snapshot.Sees(entry.epoch)) return true;
    }
    return false;
  }
  const auto runs = history.Decode();
  struct VisibleDelete {
    Epoch k;
    uint64_t point;
  };
  std::vector<VisibleDelete> deletes;
  for (const auto& run : runs) {
    if (run.is_delete && snapshot.Sees(run.epoch)) {
      deletes.push_back({run.epoch, run.begin});
    }
  }
  for (const auto& run : runs) {
    if (run.is_delete || !snapshot.Sees(run.epoch)) continue;
    // Mirror of ApplyDeleteCleanup: a delete by k wipes earlier
    // transactions' runs entirely and k's own records before its point.
    bool wiped = false;
    uint64_t cleared_to = run.begin;
    for (const auto& del : deletes) {
      if (HappensBefore(run.epoch, del.k)) {
        wiped = true;
        break;
      }
      if (SameEpoch(run.epoch, del.k)) {
        const uint64_t upto = del.point < run.end ? del.point : run.end;
        if (upto > cleared_to) cleared_to = upto;
      }
    }
    if (!wiped && cleared_to < run.end) return true;
  }
  return false;
}

}  // namespace cubrick::aosi
