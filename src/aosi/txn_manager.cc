#include "aosi/txn_manager.h"

#include <sstream>

#include "aosi/checker_hook.h"

namespace cubrick::aosi {

TxnManager::TxnManager(uint32_t node_idx, uint32_t num_nodes)
    : clock_(node_idx, num_nodes) {
  auto& reg = obs::MetricsRegistry::Global();
  metrics_ = {
      reg.GetCounter("aosi.txn.begin_rw_total"),
      reg.GetCounter("aosi.txn.begin_ro_total"),
      reg.GetCounter("aosi.txn.commit_total"),
      reg.GetCounter("aosi.txn.rollback_total"),
      reg.GetCounter("aosi.txn.begin_rejects"),
      reg.GetGauge("aosi.ec"),
      reg.GetGauge("aosi.lce"),
      reg.GetGauge("aosi.lse"),
      reg.GetGauge("aosi.ec_lce_lag"),
      reg.GetGauge("aosi.lce_lse_lag"),
      reg.GetGauge("aosi.pending_txs"),
      reg.GetGauge("aosi.tracked_txns"),
  };
}

void TxnManager::PublishGaugesLocked() {
  const Epoch ec = clock_.Peek();
  metrics_.ec->Set(static_cast<int64_t>(ec));
  metrics_.lce->Set(static_cast<int64_t>(lce_));
  metrics_.lse->Set(static_cast<int64_t>(lse_));
  // EC > LCE >= LSE always holds (checked by the SI oracle), so the lags
  // are non-negative; they are the paper's protocol-health quantities.
  metrics_.ec_lce_lag->Set(static_cast<int64_t>(ec - lce_));
  metrics_.lce_lse_lag->Set(static_cast<int64_t>(lce_ - lse_));
  metrics_.pending_txs->Set(static_cast<int64_t>(num_pending_));
  metrics_.tracked_txns->Set(static_cast<int64_t>(tracked_.size()));
}

Txn TxnManager::BeginReadWrite(bool notify_checker) {
  Txn txn;
  {
    MutexLock lock(mutex_);
    // The epoch must be acquired with mutex_ held: acquiring it first would
    // let a transaction that draws a later epoch snapshot pendingTxs before
    // this one registers, missing it in deps — a dirty read.
    const Epoch epoch = clock_.Acquire();
    txn.epoch = epoch;
    txn.type = TxnType::kReadWrite;
    for (const auto& [e, info] : tracked_) {
      if (HappensBefore(e, epoch) && info.state == TxnState::kPending) {
        txn.deps.Insert(e);
      }
    }
    tracked_.emplace(epoch, TrackedTxn{});
    active_horizons_.insert(txn.Horizon());
    ++num_pending_;
    metrics_.begin_rw->Add();
    PublishGaugesLocked();
  }
  if (notify_checker) {
    if (CheckerHook* hook = GetCheckerHook()) hook->OnBegin(txn);
  }
  return txn;
}

Txn TxnManager::BeginReadOnly() {
  Txn txn;
  {
    MutexLock lock(mutex_);
    txn.epoch = lce_;
    txn.type = TxnType::kReadOnly;
    active_horizons_.insert(txn.Horizon());
    metrics_.begin_ro->Add();
  }
  if (CheckerHook* hook = GetCheckerHook()) hook->OnBegin(txn);
  return txn;
}

Status TxnManager::Commit(const Txn& txn) {
  if (txn.read_only()) {
    EndReadOnly(txn);
    return Status::OK();
  }
  {
    MutexLock lock(mutex_);
    auto it = tracked_.find(txn.epoch);
    if (it == tracked_.end() || it->second.state != TxnState::kPending) {
      return Status::FailedPrecondition(
          "commit of unknown or finished transaction epoch " +
          std::to_string(txn.epoch));
    }
    it->second.state = TxnState::kCommitted;
    --num_pending_;
    auto h = active_horizons_.find(txn.Horizon());
    if (h != active_horizons_.end()) active_horizons_.erase(h);
    AdvanceLceLocked();
    metrics_.commits->Add();
    PublishGaugesLocked();
    // OnFinish must fire inside the critical section that removes the
    // horizon: fired after release, a preempted committer lets a
    // concurrent TryAdvanceLSE (which no longer sees this horizon) deliver
    // OnLseAdvance first, and the checker flags a false lost_horizon
    // against a transaction that was already finished.
    if (CheckerHook* hook = GetCheckerHook()) hook->OnFinish(txn, true);
  }
  return Status::OK();
}

Status TxnManager::Rollback(const Txn& txn) {
  if (txn.read_only()) {
    EndReadOnly(txn);
    return Status::OK();
  }
  {
    MutexLock lock(mutex_);
    auto it = tracked_.find(txn.epoch);
    if (it == tracked_.end() || it->second.state != TxnState::kPending) {
      return Status::FailedPrecondition(
          "rollback of unknown or finished transaction epoch " +
          std::to_string(txn.epoch));
    }
    it->second.state = TxnState::kAborted;
    --num_pending_;
    auto h = active_horizons_.find(txn.Horizon());
    if (h != active_horizons_.end()) active_horizons_.erase(h);
    AdvanceLceLocked();
    metrics_.rollbacks->Add();
    PublishGaugesLocked();
    // Inside the lock for the same reason as Commit: linearize the finish
    // with the horizon removal so OnLseAdvance can never outrun it.
    if (CheckerHook* hook = GetCheckerHook()) hook->OnFinish(txn, false);
  }
  return Status::OK();
}

void TxnManager::EndReadOnly(const Txn& txn) {
  MutexLock lock(mutex_);
  auto h = active_horizons_.find(txn.Horizon());
  if (h != active_horizons_.end()) active_horizons_.erase(h);
  // Inside the lock: see Commit.
  if (CheckerHook* hook = GetCheckerHook()) hook->OnFinish(txn, true);
}

bool TxnManager::AugmentDeps(Txn* txn, const EpochSet& remote_pending) {
  MutexLock lock(mutex_);
  auto h = active_horizons_.find(txn->Horizon());
  if (h != active_horizons_.end()) active_horizons_.erase(h);
  for (Epoch e : remote_pending) {
    if (HappensBefore(e, txn->epoch)) txn->deps.Insert(e);
  }
  active_horizons_.insert(txn->Horizon());
  // A dep learned here can drag the horizon below a local LSE advance that
  // slipped in between the epoch draw and this augment. Registering the pin
  // is then too late — purge may already have merged history the snapshot
  // distinguishes — so the caller must abort the draft and redraw.
  if (After(lse_, txn->Horizon())) {
    metrics_.begin_rejects->Add();
    return false;
  }
  return true;
}

bool TxnManager::RegisterRemoteHorizon(Epoch epoch, Epoch horizon) {
  MutexLock lock(mutex_);
  if (After(lse_, horizon)) {
    // This node's purge may already have destroyed history below its LSE;
    // accepting the registration would protect nothing. Redraw instead.
    metrics_.begin_rejects->Add();
    return false;
  }
  const auto [it, inserted] = remote_horizons_.emplace(epoch, horizon);
  if (inserted) active_horizons_.insert(horizon);
  return true;
}

void TxnManager::NoteRemoteBegin(Epoch epoch) {
  Epoch lce_at_drop = kNoEpoch;
  bool dropped = false;
  {
    MutexLock lock(mutex_);
    if (AtOrBefore(epoch, lce_)) {
      // Already passed; stale message. Dropping it silently is the
      // lost-horizon hazard the online checker flags — the cluster layer
      // uses RegisterRemoteBegin (reject + coordinator redraw) instead.
      dropped = true;
      lce_at_drop = lce_;
    } else {
      const auto [it, inserted] = tracked_.emplace(epoch, TrackedTxn{});
      if (inserted) {
        ++num_pending_;
        PublishGaugesLocked();
      }
    }
  }
  if (dropped) {
    if (CheckerHook* hook = GetCheckerHook()) {
      hook->OnStaleRemoteBegin(epoch, lce_at_drop, /*rejected=*/false);
    }
  }
}

bool TxnManager::RegisterRemoteBegin(Epoch epoch, EpochSet* pending) {
  Epoch lce_at_reject = kNoEpoch;
  {
    MutexLock lock(mutex_);
    if (AtOrBefore(epoch, lce_)) {
      // The LCE walk skips unallocated epoch gaps, so it may already have
      // passed an epoch whose begin broadcast was still in flight.
      // Accepting (or silently dropping) the registration now would let
      // snapshots pinned at this LCE see the transaction's later writes;
      // refuse instead and make the coordinator redraw.
      lce_at_reject = lce_;
      metrics_.begin_rejects->Add();
    } else {
      const auto [it, inserted] = tracked_.emplace(epoch, TrackedTxn{});
      if (inserted) ++num_pending_;
      for (const auto& [e, info] : tracked_) {
        if (info.state == TxnState::kPending && !SameEpoch(e, epoch)) {
          pending->Insert(e);
        }
      }
      PublishGaugesLocked();
      return true;
    }
  }
  if (CheckerHook* hook = GetCheckerHook()) {
    hook->OnStaleRemoteBegin(epoch, lce_at_reject, /*rejected=*/true);
  }
  return false;
}

void TxnManager::NoteRemoteFinish(Epoch epoch, bool committed) {
  MutexLock lock(mutex_);
  // Release the phase-2 horizon pin unconditionally, before any early
  // return below: a leaked pin would clamp this node's LSE forever.
  auto rh = remote_horizons_.find(epoch);
  if (rh != remote_horizons_.end()) {
    auto pin = active_horizons_.find(rh->second);
    if (pin != active_horizons_.end()) active_horizons_.erase(pin);
    remote_horizons_.erase(rh);
  }
  // Stale message: LCE already walked past this epoch, so it is finished.
  // Re-inserting it would let the walk move LCE backward.
  if (AtOrBefore(epoch, lce_)) return;
  auto [it, inserted] = tracked_.emplace(epoch, TrackedTxn{});
  if (!inserted && it->second.state != TxnState::kPending) return;
  it->second.state = committed ? TxnState::kCommitted : TxnState::kAborted;
  // A newly inserted entry was never counted pending, so only an existing
  // pending entry decrements the depth gauge.
  if (!inserted) --num_pending_;
  AdvanceLceLocked();
  PublishGaugesLocked();
}

void TxnManager::NoteRemoteDeps(Epoch epoch, const EpochSet& deps) {
  MutexLock lock(mutex_);
  auto it = tracked_.find(epoch);
  if (it == tracked_.end()) return;
  it->second.blocking_deps.UnionWith(deps);
  AdvanceLceLocked();
  PublishGaugesLocked();
}

Epoch TxnManager::LCE() const {
  MutexLock lock(mutex_);
  return lce_;
}

Epoch TxnManager::LSE() const {
  MutexLock lock(mutex_);
  return lse_;
}

EpochSet TxnManager::PendingTxs() const {
  MutexLock lock(mutex_);
  EpochSet pending;
  for (const auto& [e, info] : tracked_) {
    if (info.state == TxnState::kPending) pending.Insert(e);
  }
  return pending;
}

Epoch TxnManager::MinActiveHorizon() const {
  MutexLock lock(mutex_);
  return active_horizons_.empty() ? ~static_cast<Epoch>(0)
                                  : *active_horizons_.begin();
}

size_t TxnManager::NumTracked() const {
  MutexLock lock(mutex_);
  return tracked_.size();
}

Epoch TxnManager::TryAdvanceLSE(Epoch candidate) {
  Epoch result;
  {
    MutexLock lock(mutex_);
    Epoch effective = MinEpoch(candidate, lce_);
    if (!active_horizons_.empty()) {
      effective = MinEpoch(effective, *active_horizons_.begin());
    }
    lse_ = MaxEpoch(lse_, effective);
    PublishGaugesLocked();
    result = lse_;
  }
  if (CheckerHook* hook = GetCheckerHook()) hook->OnLseAdvance(result);
  return result;
}

void TxnManager::RestoreAfterRecovery(Epoch lce, Epoch lse) {
  MutexLock lock(mutex_);
  CUBRICK_CHECK(tracked_.empty() && active_horizons_.empty());
  CUBRICK_CHECK(AtOrBefore(lse, lce));
  lce_ = lce;
  lse_ = lse;
  clock_.Observe(lce + 1);
  PublishGaugesLocked();
}

bool TxnManager::DepsFinishedLocked(const EpochSet& deps) const {
  for (Epoch d : deps) {
    if (AtOrBefore(d, lce_)) continue;
    auto it = tracked_.find(d);
    if (it == tracked_.end()) {
      // Finished and already walked past (e.g. aborted below the walk
      // front), or a transaction this node never learned about. The begin
      // broadcast makes the latter impossible in a healthy cluster; treat
      // absence as finished only when it is below the walk front.
      if (tracked_.empty() || HappensBefore(d, tracked_.begin()->first)) {
        continue;
      }
      return false;
    }
    if (it->second.state == TxnState::kPending) return false;
  }
  return true;
}

void TxnManager::AdvanceLceLocked() {
  // Walk transactions in epoch order; LCE may advance through finished ones
  // (taking the value of committed epochs) and stops at the first pending or
  // dep-blocked transaction.
  auto it = tracked_.begin();
  while (it != tracked_.end()) {
    const TrackedTxn& info = it->second;
    if (info.state == TxnState::kPending) break;
    if (!info.blocking_deps.empty() &&
        !DepsFinishedLocked(info.blocking_deps)) {
      break;
    }
    if (info.state == TxnState::kCommitted) {
      lce_ = it->first;
    }
    it = tracked_.erase(it);
  }
}

}  // namespace cubrick::aosi
