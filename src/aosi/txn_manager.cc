#include "aosi/txn_manager.h"

#include <sstream>

namespace cubrick::aosi {

TxnManager::TxnManager(uint32_t node_idx, uint32_t num_nodes)
    : clock_(node_idx, num_nodes) {
  auto& reg = obs::MetricsRegistry::Global();
  metrics_ = {
      reg.GetCounter("aosi.txn.begin_rw_total"),
      reg.GetCounter("aosi.txn.begin_ro_total"),
      reg.GetCounter("aosi.txn.commit_total"),
      reg.GetCounter("aosi.txn.rollback_total"),
      reg.GetGauge("aosi.ec"),
      reg.GetGauge("aosi.lce"),
      reg.GetGauge("aosi.lse"),
      reg.GetGauge("aosi.ec_lce_lag"),
      reg.GetGauge("aosi.lce_lse_lag"),
      reg.GetGauge("aosi.pending_txs"),
      reg.GetGauge("aosi.tracked_txns"),
  };
}

void TxnManager::PublishGaugesLocked() {
  const Epoch ec = clock_.Peek();
  metrics_.ec->Set(static_cast<int64_t>(ec));
  metrics_.lce->Set(static_cast<int64_t>(lce_));
  metrics_.lse->Set(static_cast<int64_t>(lse_));
  // EC > LCE >= LSE always holds (checked by the SI oracle), so the lags
  // are non-negative; they are the paper's protocol-health quantities.
  metrics_.ec_lce_lag->Set(static_cast<int64_t>(ec - lce_));
  metrics_.lce_lse_lag->Set(static_cast<int64_t>(lce_ - lse_));
  metrics_.pending_txs->Set(static_cast<int64_t>(num_pending_));
  metrics_.tracked_txns->Set(static_cast<int64_t>(tracked_.size()));
}

Txn TxnManager::BeginReadWrite() {
  MutexLock lock(mutex_);
  // The epoch must be acquired with mutex_ held: acquiring it first would
  // let a transaction that draws a later epoch snapshot pendingTxs before
  // this one registers, missing it in deps — a dirty read.
  const Epoch epoch = clock_.Acquire();
  Txn txn;
  txn.epoch = epoch;
  txn.type = TxnType::kReadWrite;
  for (const auto& [e, info] : tracked_) {
    if (HappensBefore(e, epoch) && info.state == TxnState::kPending) {
      txn.deps.Insert(e);
    }
  }
  tracked_.emplace(epoch, TrackedTxn{});
  active_horizons_.insert(txn.Horizon());
  ++num_pending_;
  metrics_.begin_rw->Add();
  PublishGaugesLocked();
  return txn;
}

Txn TxnManager::BeginReadOnly() {
  MutexLock lock(mutex_);
  Txn txn;
  txn.epoch = lce_;
  txn.type = TxnType::kReadOnly;
  active_horizons_.insert(txn.Horizon());
  metrics_.begin_ro->Add();
  return txn;
}

Status TxnManager::Commit(const Txn& txn) {
  if (txn.read_only()) {
    EndReadOnly(txn);
    return Status::OK();
  }
  MutexLock lock(mutex_);
  auto it = tracked_.find(txn.epoch);
  if (it == tracked_.end() || it->second.state != TxnState::kPending) {
    return Status::FailedPrecondition(
        "commit of unknown or finished transaction epoch " +
        std::to_string(txn.epoch));
  }
  it->second.state = TxnState::kCommitted;
  --num_pending_;
  auto h = active_horizons_.find(txn.Horizon());
  if (h != active_horizons_.end()) active_horizons_.erase(h);
  AdvanceLceLocked();
  metrics_.commits->Add();
  PublishGaugesLocked();
  return Status::OK();
}

Status TxnManager::Rollback(const Txn& txn) {
  if (txn.read_only()) {
    EndReadOnly(txn);
    return Status::OK();
  }
  MutexLock lock(mutex_);
  auto it = tracked_.find(txn.epoch);
  if (it == tracked_.end() || it->second.state != TxnState::kPending) {
    return Status::FailedPrecondition(
        "rollback of unknown or finished transaction epoch " +
        std::to_string(txn.epoch));
  }
  it->second.state = TxnState::kAborted;
  --num_pending_;
  auto h = active_horizons_.find(txn.Horizon());
  if (h != active_horizons_.end()) active_horizons_.erase(h);
  AdvanceLceLocked();
  metrics_.rollbacks->Add();
  PublishGaugesLocked();
  return Status::OK();
}

void TxnManager::EndReadOnly(const Txn& txn) {
  MutexLock lock(mutex_);
  auto h = active_horizons_.find(txn.Horizon());
  if (h != active_horizons_.end()) active_horizons_.erase(h);
}

void TxnManager::AugmentDeps(Txn* txn, const EpochSet& remote_pending) {
  MutexLock lock(mutex_);
  auto h = active_horizons_.find(txn->Horizon());
  if (h != active_horizons_.end()) active_horizons_.erase(h);
  for (Epoch e : remote_pending) {
    if (HappensBefore(e, txn->epoch)) txn->deps.Insert(e);
  }
  active_horizons_.insert(txn->Horizon());
}

void TxnManager::NoteRemoteBegin(Epoch epoch) {
  MutexLock lock(mutex_);
  if (AtOrBefore(epoch, lce_)) return;  // already passed; stale message
  const auto [it, inserted] = tracked_.emplace(epoch, TrackedTxn{});
  if (inserted) {
    ++num_pending_;
    PublishGaugesLocked();
  }
}

void TxnManager::NoteRemoteFinish(Epoch epoch, bool committed) {
  MutexLock lock(mutex_);
  // Stale message: LCE already walked past this epoch, so it is finished.
  // Re-inserting it would let the walk move LCE backward.
  if (AtOrBefore(epoch, lce_)) return;
  auto [it, inserted] = tracked_.emplace(epoch, TrackedTxn{});
  if (!inserted && it->second.state != TxnState::kPending) return;
  it->second.state = committed ? TxnState::kCommitted : TxnState::kAborted;
  // A newly inserted entry was never counted pending, so only an existing
  // pending entry decrements the depth gauge.
  if (!inserted) --num_pending_;
  AdvanceLceLocked();
  PublishGaugesLocked();
}

void TxnManager::NoteRemoteDeps(Epoch epoch, const EpochSet& deps) {
  MutexLock lock(mutex_);
  auto it = tracked_.find(epoch);
  if (it == tracked_.end()) return;
  it->second.blocking_deps.UnionWith(deps);
  AdvanceLceLocked();
  PublishGaugesLocked();
}

Epoch TxnManager::LCE() const {
  MutexLock lock(mutex_);
  return lce_;
}

Epoch TxnManager::LSE() const {
  MutexLock lock(mutex_);
  return lse_;
}

EpochSet TxnManager::PendingTxs() const {
  MutexLock lock(mutex_);
  EpochSet pending;
  for (const auto& [e, info] : tracked_) {
    if (info.state == TxnState::kPending) pending.Insert(e);
  }
  return pending;
}

Epoch TxnManager::MinActiveHorizon() const {
  MutexLock lock(mutex_);
  return active_horizons_.empty() ? ~static_cast<Epoch>(0)
                                  : *active_horizons_.begin();
}

size_t TxnManager::NumTracked() const {
  MutexLock lock(mutex_);
  return tracked_.size();
}

Epoch TxnManager::TryAdvanceLSE(Epoch candidate) {
  MutexLock lock(mutex_);
  Epoch effective = MinEpoch(candidate, lce_);
  if (!active_horizons_.empty()) {
    effective = MinEpoch(effective, *active_horizons_.begin());
  }
  lse_ = MaxEpoch(lse_, effective);
  PublishGaugesLocked();
  return lse_;
}

void TxnManager::RestoreAfterRecovery(Epoch lce, Epoch lse) {
  MutexLock lock(mutex_);
  CUBRICK_CHECK(tracked_.empty() && active_horizons_.empty());
  CUBRICK_CHECK(AtOrBefore(lse, lce));
  lce_ = lce;
  lse_ = lse;
  clock_.Observe(lce + 1);
  PublishGaugesLocked();
}

bool TxnManager::DepsFinishedLocked(const EpochSet& deps) const {
  for (Epoch d : deps) {
    if (AtOrBefore(d, lce_)) continue;
    auto it = tracked_.find(d);
    if (it == tracked_.end()) {
      // Finished and already walked past (e.g. aborted below the walk
      // front), or a transaction this node never learned about. The begin
      // broadcast makes the latter impossible in a healthy cluster; treat
      // absence as finished only when it is below the walk front.
      if (tracked_.empty() || HappensBefore(d, tracked_.begin()->first)) {
        continue;
      }
      return false;
    }
    if (it->second.state == TxnState::kPending) return false;
  }
  return true;
}

void TxnManager::AdvanceLceLocked() {
  // Walk transactions in epoch order; LCE may advance through finished ones
  // (taking the value of committed epochs) and stops at the first pending or
  // dep-blocked transaction.
  auto it = tracked_.begin();
  while (it != tracked_.end()) {
    const TrackedTxn& info = it->second;
    if (info.state == TxnState::kPending) break;
    if (!info.blocking_deps.empty() &&
        !DepsFinishedLocked(info.blocking_deps)) {
      break;
    }
    if (info.state == TxnState::kCommitted) {
      lce_ = it->first;
    }
    it = tracked_.erase(it);
  }
}

}  // namespace cubrick::aosi
