// The per-partition `epochs` auxiliary vector (paper §III-C).
//
// This structure is the heart of AOSI's memory efficiency: instead of one or
// two timestamps per record (MVCC), each partition keeps one small entry per
// (transaction, contiguous append run). Each entry is a pair of 64-bit
// integers: the transaction's epoch and the implicit id of the last record
// that transaction appended. One bit of the second integer is reserved as
// the is_delete flag; a delete entry marks the whole partition as deleted at
// that point and stores the data-vector size at delete time.
//
// Concurrency (PR 8). Mutations still come from a single shard thread
// (paper §V-B), but the entries now live in an immutable-prefix `Rep` behind
// an atomic pointer so an *off-thread* reader holding an ebr::Guard can
// traverse a consistent snapshot while the shard keeps appending — this is
// what lets purge plan compactions concurrently with scans instead of at
// quiescent points. The write protocol:
//
//   * Published entries ([0, size)) of a Rep are never rewritten. Appending
//     a new entry writes the spare-capacity slot, then publishes it with a
//     release store of `size`.
//   * Anything that would rewrite published state — extending the back run
//     in place (Fig 1 (b)), growing capacity, InstallRebuilt, ShrinkToFit —
//     copies into a fresh Rep, publishes it with a release store of `rep_`,
//     and retires the old Rep through ebr::Collector (readers pinned before
//     the swap keep traversing their snapshot safely).
//   * `version_` is stored (release) strictly *after* the data it stamps.
//     PinnedSnapshot reads version / data / version and retries on
//     mismatch, so an accepted snapshot's entries always correspond to a
//     version at or after the stamp — a concurrent-purge plan built from it
//     can fail its version-checked install (and replan) but can never
//     install against newer data it did not see.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "aosi/epoch.h"
#include "common/status.h"

namespace cubrick::aosi {

/// One element of the epochs vector: 16 bytes, exactly as the paper sizes it.
struct EpochEntry {
  /// Transaction that performed the append / delete.
  Epoch epoch = kNoEpoch;
  /// For appends: implicit id (index) of the LAST record of the run, with the
  /// delete bit clear. For deletes: the data-vector size at delete time (the
  /// index one past the last record the marker covers), with the bit set.
  uint64_t packed = 0;

  static constexpr uint64_t kDeleteBit = 1ULL << 63;

  bool is_delete() const { return (packed & kDeleteBit) != 0; }
  uint64_t index() const { return packed & ~kDeleteBit; }

  static EpochEntry Append(Epoch e, uint64_t last_idx) {
    return {e, last_idx};
  }
  static EpochEntry Delete(Epoch e, uint64_t boundary) {
    return {e, boundary | kDeleteBit};
  }

  bool operator==(const EpochEntry& other) const {
    return epoch == other.epoch && packed == other.packed;
  }
};

static_assert(sizeof(EpochEntry) == 16,
              "epochs vector must cost 16 bytes per entry");

/// A decoded view of one entry, with explicit [begin, end) record range for
/// append runs. Produced by EpochVector::Decode() for scans and purge.
struct EpochRun {
  Epoch epoch = kNoEpoch;
  /// Append runs: records [begin, end). Delete markers: begin == end ==
  /// the marker's boundary position.
  uint64_t begin = 0;
  uint64_t end = 0;
  bool is_delete = false;
};

/// Borrowed, iterable window over a Rep's published entries. Valid for as
/// long as its source guarantees the Rep stays alive: on the owning shard
/// thread until the next mutation, off-thread for the lifetime of the
/// ebr::Guard it was obtained under.
class EntriesView {
 public:
  EntriesView() = default;
  EntriesView(const EpochEntry* data, size_t size)
      : data_(data), size_(size) {}

  const EpochEntry* begin() const { return data_; }
  const EpochEntry* end() const { return data_ + size_; }
  const EpochEntry& operator[](size_t i) const { return data_[i]; }
  const EpochEntry& back() const { return data_[size_ - 1]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  const EpochEntry* data_ = nullptr;
  size_t size_ = 0;
};

/// A validated consistent snapshot of one partition's history, taken
/// off-thread under an ebr::Guard (EpochVector::PinnedSnapshot). `entries`
/// borrows the pinned Rep: it stays readable until the Guard dies.
struct HistoryView {
  EntriesView entries;
  /// Mutation-counter stamp the snapshot is consistent with. The entries
  /// may belong to `version` or to a *later* mutation whose version store
  /// was not yet visible — never to an earlier one — so installing against
  /// a live history still at `version` is always installing against
  /// exactly these entries.
  uint64_t version = 0;
  uint64_t num_records = 0;
  Epoch max_epoch = kNoEpoch;
};

/// Append-only transactional history of one partition.
///
/// Single shard-thread writer; lock-free concurrent readers via
/// PinnedSnapshot under an ebr::Guard (see file comment).
class EpochVector {
 public:
  EpochVector();
  ~EpochVector();

  /// Deep copies (plan construction, tests). The copy starts life with the
  /// source's version so a plan stamped from the original validates.
  EpochVector(const EpochVector& other);
  EpochVector& operator=(const EpochVector& other);
  EpochVector(EpochVector&& other) noexcept;
  EpochVector& operator=(EpochVector&& other) noexcept;

  /// Records that `txn` appended `count` records to the back of the data
  /// vectors. Extends the back entry when `txn` was also the last writer
  /// (Fig 1 (b)) — via a fresh Rep, since published entries are immutable —
  /// otherwise appends a new entry in place.
  void RecordAppend(Epoch txn, uint64_t count);

  /// Records a partition delete by `txn` (§III-C2). The marker covers every
  /// record currently in the partition.
  void RecordDelete(Epoch txn);

  /// Number of records tracked (i.e. size of the partition's data vectors).
  /// Derived from the back entry, so it is always consistent with entries().
  uint64_t num_records() const;

  /// Monotonic mutation counter: bumped by every append, delete marker and
  /// InstallRebuilt (purge/rollback/truncate compactions). Visibility-bitmap
  /// caches key on it, so any history change invalidates every cached
  /// bitmap for the partition; concurrent purge validates its plans
  /// against it.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// The largest epoch stamped on any entry (appends and delete markers),
  /// or kNoEpoch when empty. Maintained incrementally so callers can clamp
  /// a snapshot to its *effective* horizon in O(1): any snapshot at or past
  /// max_epoch() sees the same history prefix, which is what lets bitmap
  /// caches share entries across readers.
  Epoch max_epoch() const {
    return max_epoch_.load(std::memory_order_acquire);
  }

  /// Number of entries currently held (appends + delete markers).
  size_t num_entries() const;

  /// Borrowed view of the entries. Owning-shard-thread or Guard-protected
  /// use only (see EntriesView).
  EntriesView entries() const;

  /// Off-thread consistent snapshot. REQUIRES a live ebr::Guard on the
  /// calling thread (enforced by aosi_lint's ebr-guard rule): the returned
  /// view borrows the pinned Rep. Returns false when the history mutated
  /// faster than the bounded retry loop could validate — callers skip or
  /// retry the partition.
  bool PinnedSnapshot(HistoryView* out) const;

  /// True if any delete marker is present.
  bool HasDelete() const;

  /// Expands entries into explicit record ranges, in physical order.
  std::vector<EpochRun> Decode() const;

  /// Like Decode() but stops after `max_runs` runs; sets *truncated (may be
  /// nullptr) when entries remain beyond the bound. Keeps bounded consumers
  /// — the online checker's scan hook observes at most
  /// aosi::kMaxObservedRuns runs — O(bound) instead of O(history).
  std::vector<EpochRun> DecodePrefix(size_t max_runs, bool* truncated) const;

  /// Decodes a snapshot's borrowed entries — what concurrent purge planning
  /// feeds to PlanPurge while the shard keeps writing.
  static std::vector<EpochRun> DecodeView(const HistoryView& view);

  /// Bytes of heap memory consumed by the entries array. This is the "AOSI
  /// overhead" series of the paper's Figures 6/7.
  size_t MemoryUsage() const;

  /// Releases unused capacity (after purge/compaction) by installing an
  /// exact-size Rep; the old one is EBR-retired.
  void ShrinkToFit();

  /// Directly installs decoded runs — used by purge/rollback to rebuild a
  /// partition's history. Runs must be in physical order; append runs must
  /// be contiguous starting at record 0.
  static EpochVector FromRuns(const std::vector<EpochRun>& runs);

  /// Replaces this vector's contents with `rebuilt`'s (a compaction plan's
  /// new_history) while *advancing* — never resetting — the version
  /// counter, so caches keyed on (this partition, version) invalidate.
  /// The displaced Rep is EBR-retired: concurrently pinned readers keep
  /// traversing the pre-install snapshot.
  void InstallRebuilt(const EpochVector& rebuilt);

  bool operator==(const EpochVector& other) const;

  /// Debug rendering: "[e1:0-2][e2:3-6][e1:del@7]".
  std::string ToString() const;

 private:
  /// Heap representation: fixed-capacity entry array + published count.
  /// Entries [0, size) are immutable; the slot at `size` is the shard
  /// thread's private staging area until the release store of `size`
  /// publishes it.
  struct Rep {
    explicit Rep(size_t cap)
        : capacity(cap), slots(cap > 0 ? new EpochEntry[cap] : nullptr) {}

    const size_t capacity;
    const std::unique_ptr<EpochEntry[]> slots;
    std::atomic<size_t> size{0};
  };

  /// Allocates a Rep with `cap` capacity holding copies of entries [0, n)
  /// of `src` (which may be null when n == 0).
  static Rep* CloneRep(const EpochEntry* src, size_t n, size_t cap);

  /// num_records derived from the published back entry.
  static uint64_t RecordsOf(const EpochEntry* slots, size_t n);

  /// Single-writer view of the current Rep (owning shard thread only).
  Rep* OwnerRep() const {
    return rep_.load(std::memory_order_relaxed);
  }

  /// Publishes `fresh` and EBR-retires the displaced Rep. Does not touch
  /// version_ — callers stamp it after (data first, version last).
  void SwapRep(Rep* fresh);

  /// Bumps the mutation counter (single writer: load + store, no RMW).
  void BumpVersion();

  std::atomic<Rep*> rep_;
  std::atomic<uint64_t> version_{0};
  /// See max_epoch().
  std::atomic<Epoch> max_epoch_{kNoEpoch};
};

}  // namespace cubrick::aosi
