// The per-partition `epochs` auxiliary vector (paper §III-C).
//
// This structure is the heart of AOSI's memory efficiency: instead of one or
// two timestamps per record (MVCC), each partition keeps one small entry per
// (transaction, contiguous append run). Each entry is a pair of 64-bit
// integers: the transaction's epoch and the implicit id of the last record
// that transaction appended. One bit of the second integer is reserved as
// the is_delete flag; a delete entry marks the whole partition as deleted at
// that point and stores the data-vector size at delete time.

#pragma once

#include <cstdint>
#include <vector>

#include "aosi/epoch.h"
#include "common/status.h"

namespace cubrick::aosi {

/// One element of the epochs vector: 16 bytes, exactly as the paper sizes it.
struct EpochEntry {
  /// Transaction that performed the append / delete.
  Epoch epoch = kNoEpoch;
  /// For appends: implicit id (index) of the LAST record of the run, with the
  /// delete bit clear. For deletes: the data-vector size at delete time (the
  /// index one past the last record the marker covers), with the bit set.
  uint64_t packed = 0;

  static constexpr uint64_t kDeleteBit = 1ULL << 63;

  bool is_delete() const { return (packed & kDeleteBit) != 0; }
  uint64_t index() const { return packed & ~kDeleteBit; }

  static EpochEntry Append(Epoch e, uint64_t last_idx) {
    return {e, last_idx};
  }
  static EpochEntry Delete(Epoch e, uint64_t boundary) {
    return {e, boundary | kDeleteBit};
  }

  bool operator==(const EpochEntry& other) const {
    return epoch == other.epoch && packed == other.packed;
  }
};

static_assert(sizeof(EpochEntry) == 16,
              "epochs vector must cost 16 bytes per entry");

/// A decoded view of one entry, with explicit [begin, end) record range for
/// append runs. Produced by EpochVector::Decode() for scans and purge.
struct EpochRun {
  Epoch epoch = kNoEpoch;
  /// Append runs: records [begin, end). Delete markers: begin == end ==
  /// the marker's boundary position.
  uint64_t begin = 0;
  uint64_t end = 0;
  bool is_delete = false;
};

/// Append-only transactional history of one partition.
///
/// Thread-compatibility: like the data vectors it describes, an EpochVector
/// is written by a single shard thread (paper §V-B) and may be read
/// concurrently only via the partition-swap discipline of purge/rollback.
class EpochVector {
 public:
  EpochVector() = default;

  /// Records that `txn` appended `count` records to the back of the data
  /// vectors. Extends the back entry in place when `txn` was also the last
  /// writer (Fig 1 (b)); otherwise appends a new entry.
  void RecordAppend(Epoch txn, uint64_t count);

  /// Records a partition delete by `txn` (§III-C2). The marker covers every
  /// record currently in the partition.
  void RecordDelete(Epoch txn);

  /// Number of records tracked (i.e. size of the partition's data vectors).
  uint64_t num_records() const { return num_records_; }

  /// Monotonic mutation counter: bumped by every append, delete marker and
  /// InstallRebuilt (purge/rollback/truncate compactions). Visibility-bitmap
  /// caches key on it, so any history change invalidates every cached
  /// bitmap for the partition. Read/written under the owning shard's
  /// single-writer discipline, like the entries themselves.
  uint64_t version() const { return version_; }

  /// The largest epoch stamped on any entry (appends and delete markers),
  /// or kNoEpoch when empty. Maintained incrementally so callers can clamp
  /// a snapshot to its *effective* horizon in O(1): any snapshot at or past
  /// max_epoch() sees the same history prefix, which is what lets bitmap
  /// caches share entries across readers.
  Epoch max_epoch() const { return max_epoch_; }

  /// Number of entries currently held (appends + delete markers).
  size_t num_entries() const { return entries_.size(); }

  const std::vector<EpochEntry>& entries() const { return entries_; }

  /// True if any delete marker is present.
  bool HasDelete() const;

  /// Expands entries into explicit record ranges, in physical order.
  std::vector<EpochRun> Decode() const;

  /// Like Decode() but stops after `max_runs` runs; sets *truncated (may be
  /// nullptr) when entries remain beyond the bound. Keeps bounded consumers
  /// — the online checker's scan hook observes at most
  /// aosi::kMaxObservedRuns runs — O(bound) instead of O(history).
  std::vector<EpochRun> DecodePrefix(size_t max_runs, bool* truncated) const;

  /// Bytes of heap memory consumed by the entries array. This is the "AOSI
  /// overhead" series of the paper's Figures 6/7.
  size_t MemoryUsage() const {
    return entries_.capacity() * sizeof(EpochEntry);
  }

  /// Releases unused capacity (after purge/compaction).
  void ShrinkToFit() { entries_.shrink_to_fit(); }

  /// Directly installs decoded runs — used by purge/rollback to rebuild a
  /// partition's history. Runs must be in physical order; append runs must
  /// be contiguous starting at record 0.
  static EpochVector FromRuns(const std::vector<EpochRun>& runs);

  /// Replaces this vector's contents with `rebuilt`'s (a compaction plan's
  /// new_history) while *advancing* — never resetting — the version
  /// counter, so caches keyed on (this partition, version) invalidate.
  /// Plain copy assignment would clobber the counter with the plan's.
  void InstallRebuilt(const EpochVector& rebuilt);

  bool operator==(const EpochVector& other) const {
    return entries_ == other.entries_ && num_records_ == other.num_records_;
  }

  /// Debug rendering: "[e1:0-2][e2:3-6][e1:del@7]".
  std::string ToString() const;

 private:
  std::vector<EpochEntry> entries_;
  uint64_t num_records_ = 0;
  /// See version(). Not part of operator== — two histories with identical
  /// entries are logically equal regardless of how they got there.
  uint64_t version_ = 0;
  /// See max_epoch().
  Epoch max_epoch_ = kNoEpoch;
};

}  // namespace cubrick::aosi
