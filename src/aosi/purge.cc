#include "aosi/purge.h"

#include "aosi/visibility.h"

namespace cubrick::aosi {

namespace {

/// Rebuilds a history from the runs that survive, renumbering record ranges
/// to be dense, and merging adjacent append runs with epoch < merge_below
/// (pass kNoEpoch to disable merging, e.g. for rollback).
CompactionPlan BuildPlan(const std::vector<EpochRun>& runs,
                         const Bitmap& keep, Epoch merge_below) {
  CompactionPlan plan;
  plan.needed = true;
  plan.keep = keep;

  std::vector<EpochRun> new_runs;
  uint64_t next_idx = 0;
  for (const auto& run : runs) {
    if (run.is_delete) {
      if (IsNoEpoch(run.epoch)) continue;  // marked dropped by caller
      EpochRun marker;
      marker.epoch = run.epoch;
      marker.is_delete = true;
      marker.begin = marker.end = next_idx;
      new_runs.push_back(marker);
      continue;
    }
    const uint64_t kept = keep.CountSetInRange(run.begin, run.end);
    if (kept == 0) continue;
    const bool mergeable =
        !IsNoEpoch(merge_below) && HappensBefore(run.epoch, merge_below) &&
        !new_runs.empty() && !new_runs.back().is_delete &&
        HappensBefore(new_runs.back().epoch, merge_below);
    if (mergeable) {
      auto& prev = new_runs.back();
      // The merged run is stamped with the later epoch in *epoch order*
      // (MaxEpoch, not std::max): under node-strided epoch encodings the
      // two orders are not interchangeable, and a merged run stamped too
      // early would let PlanRetainUpTo/readers resurrect purged records.
      prev.epoch = MaxEpoch(prev.epoch, run.epoch);
      prev.end += kept;
      next_idx += kept;
    } else {
      EpochRun out;
      out.epoch = run.epoch;
      out.begin = next_idx;
      out.end = next_idx + kept;
      out.is_delete = false;
      new_runs.push_back(out);
      next_idx = out.end;
    }
  }
  plan.new_history = EpochVector::FromRuns(new_runs);
  return plan;
}

/// The purge rules over already-decoded runs; shared by the live-vector and
/// snapshot-view entry points so the two can never diverge.
CompactionPlan PlanPurgeRuns(const std::vector<EpochRun>& runs,
                             uint64_t num_records, Epoch lse) {

  // Decide whether any work is needed: an applicable delete (epoch < lse) or
  // recyclable history (two adjacent mergeable append runs < lse).
  bool has_applicable_delete = false;
  for (const auto& run : runs) {
    if (run.is_delete && HappensBefore(run.epoch, lse)) {
      has_applicable_delete = true;
      break;
    }
  }
  bool has_mergeable = false;
  for (size_t i = 0; i + 1 < runs.size(); ++i) {
    if (!runs[i].is_delete && !runs[i + 1].is_delete &&
        HappensBefore(runs[i].epoch, lse) &&
        HappensBefore(runs[i + 1].epoch, lse)) {
      has_mergeable = true;
      break;
    }
  }
  if (!has_applicable_delete && !has_mergeable) {
    CompactionPlan plan;
    plan.needed = false;
    return plan;
  }

  // Compute surviving records: start from all-kept, then apply every delete
  // marker with epoch < lse using exactly the visibility cleanup rule —
  // literally the same code (visibility.cc's ApplyDeleteCleanup), so purge
  // and scan can never disagree about what a delete covers.
  Bitmap keep(num_records, true);
  std::vector<EpochRun> working = runs;
  for (auto& del : working) {
    if (!del.is_delete || AtOrAfter(del.epoch, lse)) continue;
    ApplyDeleteCleanup(runs, del.epoch, del.begin, &keep);
    del.epoch = kNoEpoch;  // mark the marker itself as dropped
  }

  return BuildPlan(working, keep, /*merge_below=*/lse);
}

}  // namespace

CompactionPlan PlanPurge(const EpochVector& history, Epoch lse) {
  return PlanPurgeRuns(history.Decode(), history.num_records(), lse);
}

CompactionPlan PlanPurge(const HistoryView& view, Epoch lse) {
  return PlanPurgeRuns(EpochVector::DecodeView(view), view.num_records, lse);
}

CompactionPlan PlanRollback(const EpochVector& history, Epoch victim) {
  const auto runs = history.Decode();
  bool touched = false;
  Bitmap keep(history.num_records(), true);
  std::vector<EpochRun> working = runs;
  for (auto& run : working) {
    if (!SameEpoch(run.epoch, victim)) continue;
    touched = true;
    if (run.is_delete) {
      run.epoch = kNoEpoch;  // drop the victim's delete marker
    } else {
      keep.ClearRange(run.begin, run.end);
    }
  }
  if (!touched) {
    CompactionPlan plan;
    plan.needed = false;
    return plan;
  }
  return BuildPlan(working, keep, /*merge_below=*/kNoEpoch);
}

CompactionPlan PlanRetainUpTo(const EpochVector& history, Epoch lse) {
  const auto runs = history.Decode();
  bool touched = false;
  Bitmap keep(history.num_records(), true);
  std::vector<EpochRun> working = runs;
  for (auto& run : working) {
    if (AtOrBefore(run.epoch, lse)) continue;
    touched = true;
    if (run.is_delete) {
      run.epoch = kNoEpoch;  // drop the too-new marker
    } else {
      keep.ClearRange(run.begin, run.end);
    }
  }
  if (!touched) {
    CompactionPlan plan;
    plan.needed = false;
    return plan;
  }
  return BuildPlan(working, keep, /*merge_below=*/kNoEpoch);
}

}  // namespace cubrick::aosi
