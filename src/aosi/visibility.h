// Snapshot-visibility bitmap construction (paper §III-C3).
//
// Prior to scan execution, a per-partition bitmap is generated for reading
// transaction T_i: a bit is set whenever its record was inserted by a
// transaction j with j <= i and j not in T_i.deps. When a delete marker by
// T_k is visible to T_i, a secondary cleanup pass clears every record of
// transactions smaller than k (wherever they physically sit — late arrivals
// from logically-older transactions are covered too) as well as k's own
// records up to the delete point. Records skipped by concurrency control may
// never be reintroduced by later filter stages.

#pragma once

#include "aosi/epoch.h"
#include "aosi/epoch_vector.h"
#include "common/bitmap.h"

namespace cubrick::aosi {

/// Builds the visibility bitmap (one bit per record, set = visible) of
/// `snapshot` over a partition's transactional history.
Bitmap BuildVisibilityBitmap(const EpochVector& history,
                             const Snapshot& snapshot);

/// The delete-cleanup rule, shared by visibility construction (above) and
/// purge planning (purge.cc) so the two can never drift apart: a delete
/// marker stamped `k` whose physical position is `delete_point` clears
/// (a) every append run of a transaction ordered before k — wherever the
/// run physically sits, covering late arrivals from logically-older
/// transactions — and (b) k's own records strictly before the delete point
/// (runs are half-open [begin, end), so a run with begin == delete_point is
/// untouched). `bitmap` must have one bit per record of the history that
/// decoded into `runs`; delete markers in `runs` are ignored.
void ApplyDeleteCleanup(const std::vector<EpochRun>& runs, Epoch k,
                        uint64_t delete_point, Bitmap* bitmap);

/// Read-uncommitted scan mask: every record visible, no concurrency-control
/// work. Used as the baseline in the paper's query-performance experiment
/// (§VI-B).
Bitmap BuildReadUncommittedBitmap(const EpochVector& history);

/// Returns true when the partition has at least one record visible to
/// `snapshot` — lets scans skip bitmap construction for dead partitions.
bool AnyVisible(const EpochVector& history, const Snapshot& snapshot);

}  // namespace cubrick::aosi
