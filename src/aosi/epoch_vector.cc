#include "aosi/epoch_vector.h"

#include <algorithm>
#include <sstream>

namespace cubrick::aosi {

void EpochVector::RecordAppend(Epoch txn, uint64_t count) {
  CUBRICK_CHECK(txn != kNoEpoch);
  CUBRICK_CHECK(count > 0);
  const uint64_t new_last = num_records_ + count - 1;
  if (!entries_.empty() && entries_.back().epoch == txn &&
      !entries_.back().is_delete()) {
    // Same transaction as the current back entry: bump its last index
    // (paper Fig 1 (b)).
    entries_.back() = EpochEntry::Append(txn, new_last);
  } else {
    entries_.push_back(EpochEntry::Append(txn, new_last));
  }
  num_records_ += count;
  ++version_;
  max_epoch_ = MaxEpoch(max_epoch_, txn);
}

void EpochVector::RecordDelete(Epoch txn) {
  CUBRICK_CHECK(txn != kNoEpoch);
  entries_.push_back(EpochEntry::Delete(txn, num_records_));
  ++version_;
  max_epoch_ = MaxEpoch(max_epoch_, txn);
}

bool EpochVector::HasDelete() const {
  for (const auto& e : entries_) {
    if (e.is_delete()) return true;
  }
  return false;
}

std::vector<EpochRun> EpochVector::Decode() const {
  std::vector<EpochRun> runs;
  runs.reserve(entries_.size());
  uint64_t pos = 0;
  for (const auto& e : entries_) {
    EpochRun run;
    run.epoch = e.epoch;
    run.is_delete = e.is_delete();
    if (run.is_delete) {
      run.begin = run.end = e.index();
    } else {
      run.begin = pos;
      run.end = e.index() + 1;
      pos = run.end;
    }
    runs.push_back(run);
  }
  CUBRICK_CHECK(pos == num_records_);
  return runs;
}

std::vector<EpochRun> EpochVector::DecodePrefix(size_t max_runs,
                                                bool* truncated) const {
  std::vector<EpochRun> runs;
  runs.reserve(std::min(max_runs, entries_.size()));
  uint64_t pos = 0;
  for (const auto& e : entries_) {
    if (runs.size() >= max_runs) {
      if (truncated != nullptr) *truncated = true;
      return runs;
    }
    EpochRun run;
    run.epoch = e.epoch;
    run.is_delete = e.is_delete();
    if (run.is_delete) {
      run.begin = run.end = e.index();
    } else {
      run.begin = pos;
      run.end = e.index() + 1;
      pos = run.end;
    }
    runs.push_back(run);
  }
  // A full prefix must reproduce Decode() exactly.
  CUBRICK_CHECK(pos == num_records_);
  if (truncated != nullptr) *truncated = false;
  return runs;
}

EpochVector EpochVector::FromRuns(const std::vector<EpochRun>& runs) {
  EpochVector ev;
  for (const auto& run : runs) {
    if (run.is_delete) {
      CUBRICK_CHECK(run.begin == ev.num_records_);
      ev.RecordDelete(run.epoch);
    } else {
      CUBRICK_CHECK(run.begin == ev.num_records_);
      CUBRICK_CHECK(run.end > run.begin);
      // Do not coalesce: purge decides merging explicitly, so install the
      // entry verbatim even when adjacent to a same-epoch run.
      ev.entries_.push_back(EpochEntry::Append(run.epoch, run.end - 1));
      ev.num_records_ = run.end;
      ev.max_epoch_ = MaxEpoch(ev.max_epoch_, run.epoch);
    }
  }
  return ev;
}

void EpochVector::InstallRebuilt(const EpochVector& rebuilt) {
  entries_ = rebuilt.entries_;
  num_records_ = rebuilt.num_records_;
  max_epoch_ = rebuilt.max_epoch_;
  ++version_;
}

std::string EpochVector::ToString() const {
  std::ostringstream out;
  for (const auto& run : Decode()) {
    if (run.is_delete) {
      out << "[" << run.epoch << ":del@" << run.begin << "]";
    } else {
      out << "[" << run.epoch << ":" << run.begin << "-" << (run.end - 1)
          << "]";
    }
  }
  return out.str();
}

}  // namespace cubrick::aosi
