#include "aosi/epoch_vector.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/ebr.h"

namespace cubrick::aosi {

namespace {

/// Shared decoder over a borrowed entry window. `expected_records` cross-
/// checks the derived record count (full decodes only).
std::vector<EpochRun> DecodeEntries(const EpochEntry* slots, size_t n,
                                    size_t max_runs, bool* truncated,
                                    uint64_t expected_records) {
  std::vector<EpochRun> runs;
  runs.reserve(std::min(max_runs, n));
  uint64_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    if (runs.size() >= max_runs) {
      if (truncated != nullptr) *truncated = true;
      return runs;
    }
    const EpochEntry& e = slots[i];
    EpochRun run;
    run.epoch = e.epoch;
    run.is_delete = e.is_delete();
    if (run.is_delete) {
      run.begin = run.end = e.index();
    } else {
      run.begin = pos;
      run.end = e.index() + 1;
      pos = run.end;
    }
    runs.push_back(run);
  }
  // A full decode must account for every record.
  CUBRICK_CHECK(pos == expected_records);
  if (truncated != nullptr) *truncated = false;
  return runs;
}

}  // namespace

// ---------------------------------------------------------------------------
// Rep plumbing
// ---------------------------------------------------------------------------

uint64_t EpochVector::RecordsOf(const EpochEntry* slots, size_t n) {
  if (n == 0) return 0;
  const EpochEntry& back = slots[n - 1];
  // A delete marker stores the data-vector size at delete time; an append
  // entry stores the index of its last record.
  return back.is_delete() ? back.index() : back.index() + 1;
}

EpochVector::Rep* EpochVector::CloneRep(const EpochEntry* src, size_t n,
                                        size_t cap) {
  CUBRICK_CHECK(cap >= n);
  Rep* rep = new Rep(cap);
  for (size_t i = 0; i < n; ++i) {
    rep->slots[i] = src[i];
  }
  rep->size.store(n, std::memory_order_relaxed);
  return rep;
}

void EpochVector::SwapRep(Rep* fresh) {
  Rep* old = rep_.load(std::memory_order_relaxed);
  // release: a reader that sees the new pointer sees its fully built
  // contents (CloneRep ran before this store).
  rep_.store(fresh, std::memory_order_release);
  // A reader pinned before this point may still traverse `old`; the
  // collector frees it two epoch advances later.
  ebr::RetireDelete(old, old->capacity * sizeof(EpochEntry));
}

void EpochVector::BumpVersion() {
  // Single writer: load + store instead of an RMW. release *after* the data
  // stores so PinnedSnapshot's validation works (see header).
  version_.store(version_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Construction / destruction / copies
// ---------------------------------------------------------------------------

EpochVector::EpochVector() : rep_(new Rep(0)) {}

EpochVector::~EpochVector() {
  // Direct delete, not Retire: an EpochVector is destroyed either by its
  // single owner with no reader in flight, or inside an EBR deleter (a
  // retired Brick), which already runs at a safe epoch.
  delete rep_.load(std::memory_order_relaxed);  // ebr-deleter
}

EpochVector::EpochVector(const EpochVector& other) : rep_(nullptr) {
  const Rep* src = other.rep_.load(std::memory_order_acquire);
  const size_t n = src->size.load(std::memory_order_acquire);
  rep_.store(CloneRep(src->slots.get(), n, n), std::memory_order_relaxed);
  version_.store(other.version_.load(std::memory_order_acquire),
                 std::memory_order_relaxed);
  max_epoch_.store(other.max_epoch_.load(std::memory_order_acquire),
                   std::memory_order_relaxed);
}

EpochVector& EpochVector::operator=(const EpochVector& other) {
  if (this == &other) return *this;
  const Rep* src = other.rep_.load(std::memory_order_acquire);
  const size_t n = src->size.load(std::memory_order_acquire);
  SwapRep(CloneRep(src->slots.get(), n, n));
  max_epoch_.store(other.max_epoch_.load(std::memory_order_acquire),
                   std::memory_order_release);
  version_.store(other.version_.load(std::memory_order_acquire),
                 std::memory_order_release);
  return *this;
}

EpochVector::EpochVector(EpochVector&& other) noexcept
    : rep_(other.rep_.load(std::memory_order_relaxed)) {
  version_.store(other.version_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  max_epoch_.store(other.max_epoch_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  other.rep_.store(new Rep(0), std::memory_order_relaxed);
  other.version_.store(0, std::memory_order_relaxed);
  other.max_epoch_.store(kNoEpoch, std::memory_order_relaxed);
}

EpochVector& EpochVector::operator=(EpochVector&& other) noexcept {
  if (this == &other) return *this;
  // Moves are for private (unshared) vectors — plan objects, test locals —
  // so handing our old Rep to `other` (freed by its destructor) is safe.
  Rep* mine = rep_.load(std::memory_order_relaxed);
  rep_.store(other.rep_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  other.rep_.store(mine, std::memory_order_relaxed);
  version_.store(other.version_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  max_epoch_.store(other.max_epoch_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return *this;
}

// ---------------------------------------------------------------------------
// Mutation (single shard-thread writer)
// ---------------------------------------------------------------------------

void EpochVector::RecordAppend(Epoch txn, uint64_t count) {
  CUBRICK_CHECK(txn != kNoEpoch);
  CUBRICK_CHECK(count > 0);
  Rep* rep = OwnerRep();
  const size_t n = rep->size.load(std::memory_order_relaxed);
  const uint64_t new_last = RecordsOf(rep->slots.get(), n) + count - 1;
  const bool extends = n > 0 && !rep->slots[n - 1].is_delete() &&
                       SameEpoch(rep->slots[n - 1].epoch, txn);
  if (extends) {
    // Same transaction as the current back entry: bump its last index
    // (paper Fig 1 (b)). Published entries are immutable, so the rewrite
    // goes through a fresh Rep.
    Rep* fresh = CloneRep(rep->slots.get(), n, rep->capacity);
    fresh->slots[n - 1] = EpochEntry::Append(txn, new_last);
    SwapRep(fresh);
  } else if (n == rep->capacity) {
    Rep* fresh =
        CloneRep(rep->slots.get(), n, rep->capacity == 0 ? 1 : rep->capacity * 2);
    fresh->slots[n] = EpochEntry::Append(txn, new_last);
    fresh->size.store(n + 1, std::memory_order_relaxed);
    SwapRep(fresh);
  } else {
    // Fast path: stage into spare capacity, publish with the size store.
    rep->slots[n] = EpochEntry::Append(txn, new_last);
    rep->size.store(n + 1, std::memory_order_release);
  }
  max_epoch_.store(
      MaxEpoch(max_epoch_.load(std::memory_order_relaxed), txn),
      std::memory_order_release);
  BumpVersion();
}

void EpochVector::RecordDelete(Epoch txn) {
  CUBRICK_CHECK(txn != kNoEpoch);
  Rep* rep = OwnerRep();
  const size_t n = rep->size.load(std::memory_order_relaxed);
  const EpochEntry marker =
      EpochEntry::Delete(txn, RecordsOf(rep->slots.get(), n));
  if (n == rep->capacity) {
    Rep* fresh =
        CloneRep(rep->slots.get(), n, rep->capacity == 0 ? 1 : rep->capacity * 2);
    fresh->slots[n] = marker;
    fresh->size.store(n + 1, std::memory_order_relaxed);
    SwapRep(fresh);
  } else {
    rep->slots[n] = marker;
    rep->size.store(n + 1, std::memory_order_release);
  }
  max_epoch_.store(
      MaxEpoch(max_epoch_.load(std::memory_order_relaxed), txn),
      std::memory_order_release);
  BumpVersion();
}

void EpochVector::InstallRebuilt(const EpochVector& rebuilt) {
  const Rep* src = rebuilt.rep_.load(std::memory_order_acquire);
  const size_t n = src->size.load(std::memory_order_acquire);
  SwapRep(CloneRep(src->slots.get(), n, n));
  max_epoch_.store(rebuilt.max_epoch_.load(std::memory_order_acquire),
                   std::memory_order_release);
  BumpVersion();
}

void EpochVector::ShrinkToFit() {
  Rep* rep = OwnerRep();
  const size_t n = rep->size.load(std::memory_order_relaxed);
  if (rep->capacity == n) return;
  // Entries are unchanged, so the version stays put: a snapshot validated
  // against the old Rep describes the new one bit for bit.
  SwapRep(CloneRep(rep->slots.get(), n, n));
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

uint64_t EpochVector::num_records() const {
  const Rep* rep = rep_.load(std::memory_order_acquire);
  const size_t n = rep->size.load(std::memory_order_acquire);
  return RecordsOf(rep->slots.get(), n);
}

size_t EpochVector::num_entries() const {
  const Rep* rep = rep_.load(std::memory_order_acquire);
  return rep->size.load(std::memory_order_acquire);
}

EntriesView EpochVector::entries() const {
  const Rep* rep = rep_.load(std::memory_order_acquire);
  const size_t n = rep->size.load(std::memory_order_acquire);
  return EntriesView(rep->slots.get(), n);
}

bool EpochVector::PinnedSnapshot(HistoryView* out) const {
  // Bounded validation loop. version is stored after the data it stamps
  // (release), so observing v1 == v2 proves the entries window read in
  // between is at or after mutation v1 — never before (see header).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t v1 = version_.load(std::memory_order_acquire);
    const Rep* rep = rep_.load(std::memory_order_acquire);
    const size_t n = rep->size.load(std::memory_order_acquire);
    const Epoch me = max_epoch_.load(std::memory_order_acquire);
    const uint64_t v2 = version_.load(std::memory_order_acquire);
    if (v1 == v2) {
      out->entries = EntriesView(rep->slots.get(), n);
      out->version = v1;
      out->num_records = RecordsOf(rep->slots.get(), n);
      out->max_epoch = me;
      return true;
    }
  }
  return false;
}

bool EpochVector::HasDelete() const {
  for (const auto& e : entries()) {
    if (e.is_delete()) return true;
  }
  return false;
}

std::vector<EpochRun> EpochVector::Decode() const {
  const EntriesView view = entries();
  return DecodeEntries(view.begin(), view.size(), view.size(), nullptr,
                       RecordsOf(view.begin(), view.size()));
}

std::vector<EpochRun> EpochVector::DecodePrefix(size_t max_runs,
                                                bool* truncated) const {
  const EntriesView view = entries();
  return DecodeEntries(view.begin(), view.size(), max_runs, truncated,
                       RecordsOf(view.begin(), view.size()));
}

std::vector<EpochRun> EpochVector::DecodeView(const HistoryView& view) {
  return DecodeEntries(view.entries.begin(), view.entries.size(),
                       view.entries.size(), nullptr, view.num_records);
}

size_t EpochVector::MemoryUsage() const {
  return rep_.load(std::memory_order_acquire)->capacity * sizeof(EpochEntry);
}

EpochVector EpochVector::FromRuns(const std::vector<EpochRun>& runs) {
  std::vector<EpochEntry> built;
  built.reserve(runs.size());
  uint64_t records = 0;
  Epoch me = kNoEpoch;
  for (const auto& run : runs) {
    CUBRICK_CHECK(run.begin == records);
    if (run.is_delete) {
      built.push_back(EpochEntry::Delete(run.epoch, records));
    } else {
      CUBRICK_CHECK(run.end > run.begin);
      // Do not coalesce: purge decides merging explicitly, so install the
      // entry verbatim even when adjacent to a same-epoch run.
      built.push_back(EpochEntry::Append(run.epoch, run.end - 1));
      records = run.end;
    }
    me = MaxEpoch(me, run.epoch);
  }
  EpochVector ev;
  delete ev.rep_.load(std::memory_order_relaxed);  // ebr-deleter: private Rep
  ev.rep_.store(CloneRep(built.data(), built.size(), built.size()),
                std::memory_order_relaxed);
  ev.max_epoch_.store(me, std::memory_order_relaxed);
  return ev;
}

bool EpochVector::operator==(const EpochVector& other) const {
  const EntriesView a = entries();
  const EntriesView b = other.entries();
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return RecordsOf(a.begin(), a.size()) == RecordsOf(b.begin(), b.size());
}

std::string EpochVector::ToString() const {
  std::ostringstream out;
  for (const auto& run : Decode()) {
    if (run.is_delete) {
      out << "[" << run.epoch << ":del@" << run.begin << "]";
    } else {
      out << "[" << run.epoch << ":" << run.begin << "-" << (run.end - 1)
          << "]";
    }
  }
  return out.str();
}

}  // namespace cubrick::aosi
