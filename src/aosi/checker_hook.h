// Online-checker hook points (docs/CHECKING.md, "Online checking").
//
// The AOSI layer and the scan path report transaction lifecycle events and
// per-brick visibility observations through this interface so an external
// monitor (src/check/online_checker.h) can validate snapshot isolation
// *while the system runs*. The indirection keeps the dependency arrow
// pointing outward: src/aosi and src/query know only this header; the
// checker registers itself at runtime.
//
// Cost contract: when no hook is installed, every call site is one relaxed
// atomic load plus an untaken branch. When a hook is installed, call sites
// must still ask ShouldSample() before assembling a ScanObservation, so the
// per-read cost stays proportional to the sampling rate (CCBench attributes
// most CC cost to exactly this per-read metadata work).
//
// Threading: hooks are invoked concurrently from transaction and scan
// threads. OnFinish is the one exception to the "never under a TxnManager
// mutex" rule: it fires inside the critical section that removes the
// transaction's horizon, so the checker's view of active horizons can
// never lag behind an LSE advance (fired after release, a preempted
// finisher would let OnLseAdvance outrun it and manufacture a false
// lost_horizon). OnFinish implementations must therefore never call back
// into the TxnManager; every other hook is invoked with no TxnManager
// mutex held and may read its counters freely.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "aosi/epoch.h"
#include "aosi/txn.h"

namespace cubrick::aosi {

/// Upper bound on the runs a call site materializes per observation. The
/// checker keeps at most this many anyway (ScanSample::kMaxRuns mirrors
/// it), so decoding or popcounting past the bound is pure waste — with a
/// long history it would turn the "near-free" hook into an O(history)
/// pass per sampled scan. Call sites that hit the bound set
/// ScanObservation::runs_truncated instead.
inline constexpr size_t kMaxObservedRuns = 16;

/// One decoded epoch-vector run together with how many of its records the
/// scan's visibility mask actually admitted.
struct ObservedRun {
  Epoch epoch = kNoEpoch;
  uint64_t begin = 0;
  uint64_t end = 0;
  bool is_delete = false;
  /// Append runs: popcount of the scan's visibility bitmap over
  /// [begin, end). Delete markers: 0.
  uint64_t visible_rows = 0;
};

/// Everything the checker needs to re-derive the visibility decision for
/// one (brick, snapshot) pair. Borrowed pointers are valid only for the
/// duration of the OnScanObservation call; implementations must copy.
struct ScanObservation {
  Epoch snapshot_epoch = kNoEpoch;
  /// The snapshot's dependency set (excluded epochs).
  const EpochSet* deps = nullptr;
  /// Brick id within its cube.
  uint64_t bid = 0;
  /// EpochVector::version() at observation time: two observations of the
  /// same (snapshot, bid, history_version) must agree, or the snapshot was
  /// not repeatable.
  uint64_t history_version = 0;
  const ObservedRun* runs = nullptr;
  size_t num_runs = 0;
  /// The history held more than kMaxObservedRuns runs; `runs` covers only
  /// the leading prefix. The validator must weaken prefix-dependent
  /// assertions (missing_visible, the visible_total == sum check) but can
  /// still assert stale reads on the runs it did see.
  bool runs_truncated = false;
  /// Popcount of the whole visibility bitmap (== sum of runs'
  /// visible_rows when the run list was not truncated by the caller).
  uint64_t visible_total = 0;
};

/// Interface the online checker implements. All methods must be cheap and
/// non-blocking: they run inline on transaction begin/commit and scan paths.
class CheckerHook {
 public:
  virtual ~CheckerHook() = default;

  /// Sampling decision for a snapshot epoch. Must be a pure function of the
  /// epoch (no RNG state) so a replayed seed samples the same transactions
  /// regardless of thread interleaving.
  virtual bool ShouldSample(Epoch snapshot_epoch) const = 0;

  /// A transaction began (RW with a fresh epoch, or RO pinned at LCE).
  virtual void OnBegin(const Txn& txn) = 0;

  /// A transaction finished. `committed` is meaningless for RO handles.
  virtual void OnFinish(const Txn& txn, bool committed) = 0;

  /// A scan resolved visibility for one brick under a sampled snapshot.
  virtual void OnScanObservation(const ScanObservation& obs) = 0;

  /// LSE advanced to `lse` on some node. The checker cross-checks this
  /// against the horizons of sampled active transactions: LSE passing a
  /// live snapshot's horizon means purge may destroy history that snapshot
  /// still distinguishes ("lost remote-horizon advancement").
  virtual void OnLseAdvance(Epoch lse) = 0;

  /// A remote begin arrived for an epoch the local LCE had already passed.
  /// `rejected` tells the two paths apart: RegisterRemoteBegin refused the
  /// registration (the cluster layer aborts and redraws — detected and
  /// averted), while the legacy NoteRemoteBegin silently dropped it (a
  /// genuine lost-horizon hazard the checker flags as a violation).
  virtual void OnStaleRemoteBegin(Epoch epoch, Epoch lce, bool rejected) = 0;
};

namespace internal {
inline std::atomic<CheckerHook*>& CheckerHookSlot() {
  static std::atomic<CheckerHook*> slot{nullptr};
  return slot;
}
}  // namespace internal

/// The installed hook, or nullptr. Acquire pairs with the release in
/// SetCheckerHook so a hook observed here is fully constructed.
inline CheckerHook* GetCheckerHook() {
  return internal::CheckerHookSlot().load(std::memory_order_acquire);
}

/// Installs (or, with nullptr, removes) the process-wide hook. The caller
/// owns the hook and must keep it alive until after uninstalling it and
/// draining any in-flight calls (in practice: tests and the check_si
/// harness install once at startup and uninstall at shutdown).
inline void SetCheckerHook(CheckerHook* hook) {
  internal::CheckerHookSlot().store(hook, std::memory_order_release);
}

}  // namespace cubrick::aosi
