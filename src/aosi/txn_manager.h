// Per-node transaction manager (paper §III-A/B, §IV).
//
// Maintains the three node-local counters:
//   EC  — Epoch Clock: timestamp of the next transaction (see EpochClock).
//   LCE — Latest Committed Epoch: the largest committed epoch such that every
//         RW transaction before it is finished. RO transactions run at LCE
//         with no pending-set bookkeeping.
//   LSE — Latest Safe Epoch: everything at or before it is finished, not
//         referenced by any active snapshot, and durable; transactional
//         history before LSE may be purged.
// Invariant, checked continuously: EC > LCE >= LSE.
//
// The manager also tracks pendingTxs — the set of uncommitted RW epochs seen
// so far (local or learned from remote nodes). A new RW transaction snapshots
// this set into its deps.

#pragma once

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "aosi/epoch.h"
#include "aosi/epoch_clock.h"
#include "aosi/txn.h"
#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace cubrick::aosi {

class TxnManager {
 public:
  /// Single-node constructor.
  TxnManager() : TxnManager(1, 1) {}

  /// Cluster-member constructor; node_idx is 1-based.
  TxnManager(uint32_t node_idx, uint32_t num_nodes);

  // --- Transaction lifecycle -------------------------------------------

  /// Starts a RW transaction: draws a fresh epoch, snapshots pendingTxs into
  /// deps, and registers the transaction as pending. The cluster layer
  /// passes notify_checker=false and fires the checker's OnBegin itself
  /// once the begin protocol has fully succeeded — a draft that loses the
  /// horizon-registration race is aborted without ever reading, so
  /// reporting it would manufacture averted lost_horizon violations.
  Txn BeginReadWrite(bool notify_checker = true) EXCLUDES(mutex_);

  /// Starts a RO transaction pinned to the current LCE. The returned handle
  /// must be released with EndReadOnly so LSE gating can track it.
  Txn BeginReadOnly() EXCLUDES(mutex_);

  /// Commits a RW transaction. Idempotence is not supported: committing an
  /// unknown or finished epoch is a FailedPrecondition.
  Status Commit(const Txn& txn) EXCLUDES(mutex_);

  /// Aborts a RW transaction. The caller is responsible for physically
  /// removing its appends (see PlanRollback); the manager only finalizes the
  /// timestamp bookkeeping.
  Status Rollback(const Txn& txn) EXCLUDES(mutex_);

  /// Releases a RO transaction.
  void EndReadOnly(const Txn& txn) EXCLUDES(mutex_);

  /// Extends an active RW transaction's dependency set with pending
  /// transactions learned from remote nodes during the begin broadcast
  /// (§IV-C), re-registering its LSE horizon accordingly. Epochs >= the
  /// transaction's own are ignored (invisible by timestamp order anyway).
  /// Returns false when the local LSE has already passed the augmented
  /// horizon — the snapshot can no longer be protected and the caller must
  /// abort the draft and redraw.
  bool AugmentDeps(Txn* txn, const EpochSet& remote_pending)
      EXCLUDES(mutex_);

  // --- Distributed hooks (driven by the cluster layer) ------------------

  /// Lamport clock observation from an incoming message.
  void ObserveClock(Epoch remote_ec) { clock_.Observe(remote_ec); }

  /// Registers a RW transaction started on a remote node.
  void NoteRemoteBegin(Epoch epoch) EXCLUDES(mutex_);

  /// Atomic begin-broadcast handler: registers the remote RW transaction
  /// AND snapshots this node's pendingTxs into `pending` under one lock
  /// acquisition. Returns false — registering nothing, leaving `pending`
  /// untouched — when the local LCE has already walked past `epoch`: the
  /// LCE walk skips unallocated epoch gaps, so accepting a begin at or
  /// below LCE would retroactively grow snapshots already pinned at that
  /// LCE (the non-repeatable-snapshot race behind the PR-5 check_si
  /// cluster flake). The coordinator must abort the draft epoch and
  /// redraw (cluster::Cluster::BeginReadWrite). Increments
  /// aosi.txn.begin_rejects and fires the stale-begin checker hook on
  /// rejection.
  bool RegisterRemoteBegin(Epoch epoch, EpochSet* pending) EXCLUDES(mutex_);

  /// Registers a remote RW transaction's purge horizon so this node's
  /// TryAdvanceLSE clamps to it (begin-protocol phase 2; see
  /// cluster::Cluster::BeginReadWrite). A snapshot's final horizon is only
  /// known on its coordinator after AugmentDeps, but the distributed scan
  /// path reads *every* node's replicas — so every node must refuse to let
  /// its LSE (and therefore purge) pass the horizon while the transaction
  /// lives. Returns false — registering nothing, incrementing
  /// aosi.txn.begin_rejects — when the local LSE already passed `horizon`;
  /// the coordinator must abort the draft and redraw. The pin is released
  /// by NoteRemoteFinish.
  bool RegisterRemoteHorizon(Epoch epoch, Epoch horizon) EXCLUDES(mutex_);

  /// Registers a remote transaction's completion.
  void NoteRemoteFinish(Epoch epoch, bool committed) EXCLUDES(mutex_);

  /// Extends a remote transaction's dependency information: LCE may not
  /// advance past `epoch` until all of `deps` are finished. (The commit
  /// broadcast carries T.deps; §IV-C.)
  void NoteRemoteDeps(Epoch epoch, const EpochSet& deps) EXCLUDES(mutex_);

  // --- Counters and introspection ---------------------------------------

  /// EC: the epoch the next transaction would receive.
  Epoch EC() const { return clock_.Peek(); }
  Epoch LCE() const EXCLUDES(mutex_);
  Epoch LSE() const EXCLUDES(mutex_);

  /// Snapshot of the pending RW transaction set.
  EpochSet PendingTxs() const EXCLUDES(mutex_);

  /// Minimum horizon over the snapshots this node knows to be active —
  /// locally-coordinated ones plus remote horizons registered through
  /// RegisterRemoteHorizon — or ~0 when none are. A cluster-wide LSE
  /// advance must clamp to this bound on *every* node: purge at LSE
  /// destructively applies delete markers on all of them.
  Epoch MinActiveHorizon() const EXCLUDES(mutex_);

  /// Number of transactions tracked (pending + committed-but-blocked).
  size_t NumTracked() const EXCLUDES(mutex_);

  /// Attempts to advance LSE to `candidate` (e.g. after a flush round has
  /// made everything <= candidate durable). The effective new LSE is clamped
  /// to LCE and to the horizons of all active snapshots; returns the LSE in
  /// effect afterwards.
  Epoch TryAdvanceLSE(Epoch candidate) EXCLUDES(mutex_);

  EpochClock& clock() { return clock_; }

  /// Resets the counters after crash recovery: LCE = LSE = `lse`, clock
  /// fast-forwarded strictly past it. Must only be called on a manager with
  /// no transactions (fresh process).
  void RestoreAfterRecovery(Epoch lse) { RestoreAfterRecovery(lse, lse); }

  /// Two-level restore: a node that caught up from replicas holds data up
  /// to `lce` in memory but has only flushed up to `lse` locally.
  void RestoreAfterRecovery(Epoch lce, Epoch lse) EXCLUDES(mutex_);

 private:
  struct TrackedTxn {
    TxnState state = TxnState::kPending;
    /// Dependencies that must finish before LCE can pass this epoch.
    EpochSet blocking_deps;
  };

  /// Health gauges and lifecycle counters published to the global
  /// MetricsRegistry (docs/OBSERVABILITY.md, "aosi.*"). Resolved once at
  /// construction; writes through them are wait-free.
  struct Instruments {
    obs::Counter* begin_rw;
    obs::Counter* begin_ro;
    obs::Counter* commits;
    obs::Counter* rollbacks;
    obs::Counter* begin_rejects;
    obs::Gauge* ec;
    obs::Gauge* lce;
    obs::Gauge* lse;
    obs::Gauge* ec_lce_lag;
    obs::Gauge* lce_lse_lag;
    obs::Gauge* pending_txs;
    obs::Gauge* tracked_txns;
  };

  /// Re-publishes the EC/LCE/LSE gauges, their lags, and the pendingTxs /
  /// tracked depths. Called after every state transition.
  void PublishGaugesLocked() REQUIRES(mutex_);

  /// Walks finished transactions in epoch order and advances lce_.
  void AdvanceLceLocked() REQUIRES(mutex_);

  /// True when every epoch in `deps` is finished.
  bool DepsFinishedLocked(const EpochSet& deps) const REQUIRES(mutex_);

  EpochClock clock_;

  mutable Mutex mutex_;
  /// All known unfinished-or-LCE-blocked transactions, ordered by epoch.
  std::map<Epoch, TrackedTxn> tracked_ GUARDED_BY(mutex_);
  /// Epochs of transactions that finished but may still block others' deps.
  /// Cleared as lce_ passes them.
  std::set<Epoch> finished_ GUARDED_BY(mutex_);
  Epoch lce_ GUARDED_BY(mutex_) = kNoEpoch;
  Epoch lse_ GUARDED_BY(mutex_) = kNoEpoch;
  /// Horizons of active snapshots (RO and RW), for LSE gating. Holds both
  /// locally-coordinated snapshots and remote horizons registered through
  /// RegisterRemoteHorizon.
  std::multiset<Epoch> active_horizons_ GUARDED_BY(mutex_);
  /// Remote epoch -> registered horizon, so NoteRemoteFinish can release
  /// exactly the pin RegisterRemoteHorizon took.
  std::unordered_map<Epoch, Epoch> remote_horizons_ GUARDED_BY(mutex_);
  /// Count of tracked_ entries in state kPending (pendingTxs depth gauge).
  size_t num_pending_ GUARDED_BY(mutex_) = 0;

  Instruments metrics_;
};

}  // namespace cubrick::aosi
