// Transaction handle (paper §III-A).
//
// Transactions are timestamp-based: each receives an epoch at initialization.
// RO transactions run against the latest committed epoch (LCE) with an empty
// dependency set; RW transactions draw a fresh epoch from the node's clock
// and snapshot the system's pending-transaction set into `deps`, which
// excludes uncommitted work from their view.

#pragma once

#include <cstdint>

#include "aosi/epoch.h"

namespace cubrick::aosi {

enum class TxnType : uint8_t { kReadOnly, kReadWrite };

enum class TxnState : uint8_t { kPending, kCommitted, kAborted };

/// A value-type transaction descriptor. The TxnManager owns the lifecycle;
/// this handle carries everything scans and writes need.
struct Txn {
  Epoch epoch = kNoEpoch;
  TxnType type = TxnType::kReadOnly;
  /// Epochs of RW transactions that were pending when this one started.
  EpochSet deps;

  bool read_only() const { return type == TxnType::kReadOnly; }

  /// The snapshot this transaction reads: {j : j <= epoch, j not in deps}.
  /// A RW transaction's own writes are included (its epoch is never in its
  /// own deps).
  Snapshot snapshot() const { return Snapshot{epoch, deps}; }

  /// The oldest epoch this transaction may still need to distinguish; LSE
  /// may never advance past the horizon of any active transaction.
  Epoch Horizon() const {
    if (deps.empty()) return epoch;
    const Epoch min_dep = deps.Min();
    return MinEpoch(min_dep - 1, epoch);
  }
};

}  // namespace cubrick::aosi
