// Garbage collection (purge) and rollback compaction (paper §III-C4/5).
//
// Purge operates over LSE (Latest Safe Epoch): every transaction <= LSE is
// finished, no reader holds a snapshot older than LSE, and everything <= LSE
// is durable. It (a) applies delete markers older than LSE by physically
// removing dead records, and (b) recycles epochs-vector entries by merging
// contiguous append runs older than LSE into a single entry. The caller
// (brick shard) rebuilds the data vectors from the returned keep-bitmap and
// swaps partitions atomically.
//
// Rollback compaction removes every record and history entry belonging to a
// single aborted transaction, used by TxnManager::Rollback.

#pragma once

#include "aosi/epoch.h"
#include "aosi/epoch_vector.h"
#include "common/bitmap.h"

namespace cubrick::aosi {

/// Outcome of planning a purge / rollback over one partition.
struct CompactionPlan {
  /// False when the partition needs no work (no entries older than LSE, no
  /// applicable deletes) and must be left untouched.
  bool needed = false;
  /// One bit per existing record: set = record survives.
  Bitmap keep;
  /// The rebuilt history for the surviving records.
  EpochVector new_history;
};

/// Plans a purge of `history` at `lse`.
///
/// Rules:
///  - A delete marker with epoch < lse is applied: records of transactions
///    < epoch anywhere, and the deleter's own records before the marker, are
///    dropped, and the marker is removed. (Every future reader would see the
///    delete, so applying it physically is invisible.)
///  - Delete markers with epoch >= lse are kept (a reader may still exist
///    that does not see them).
///  - Surviving contiguous append runs with epoch < lse merge into a single
///    entry stamped with the largest merged epoch. Runs are never merged
///    across a surviving delete marker.
CompactionPlan PlanPurge(const EpochVector& history, Epoch lse);

/// Plans a purge from a consistent off-thread snapshot (PR 8): identical
/// rules, but decoding the borrowed entries of `view` instead of touching
/// the live vector, so concurrent purge can plan while the owning shard
/// keeps appending. The caller must hold the ebr::Guard the view was pinned
/// under; the resulting plan is only installable while the history is still
/// at `view.version` (Brick::InstallCompaction validates).
CompactionPlan PlanPurge(const HistoryView& view, Epoch lse);

/// Plans removal of every append/delete by `victim` (transaction rollback).
CompactionPlan PlanRollback(const EpochVector& history, Epoch victim);

/// Plans removal of everything NEWER than `lse` — used by crash recovery to
/// discard runs from flush rounds that did not complete on every cube,
/// restoring a consistent snapshot at the recovered LSE (§III-D: "ignoring
/// any subsequent partial flush executions").
CompactionPlan PlanRetainUpTo(const EpochVector& history, Epoch lse);

}  // namespace cubrick::aosi
