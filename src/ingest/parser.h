// Ingestion parsing and validation (paper §V-B "Parsing" and
// "Validation and Forwarding").
//
// Parsing is a CPU-only step executed by whichever node receives the load
// buffer. Input records are validated (arity, metric types, dimensional
// cardinality, string-to-id encoding); records that do not comply are
// rejected and skipped. Valid records are encoded and grouped per target
// brick (bid computed from coordinates). A load request carries a
// max_rejected threshold: if more records are rejected, the entire batch is
// discarded.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "storage/data_type.h"
#include "storage/schema.h"

namespace cubrick {

/// One input record, in schema order: dimensions then metrics.
struct Record {
  std::vector<Value> values;

  Record() = default;
  /*implicit*/ Record(std::initializer_list<Value> init) : values(init) {}
};

struct ParseOptions {
  /// Maximum records that may be rejected before the whole batch is
  /// discarded.
  uint64_t max_rejected = 0;
  /// How many error strings to retain for diagnostics.
  size_t max_errors = 8;
};

struct ParseOutput {
  PerBrickBatches batches;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  std::vector<std::string> errors;
};

/// Validates and encodes `records`, grouping them per brick. Returns
/// InvalidArgument when rejected > options.max_rejected (batch discarded).
/// String dimension/metric values are encoded through the schema's
/// dictionaries (and inserted when new).
Result<ParseOutput> ParseRecords(const CubeSchema& schema,
                                 const std::vector<Record>& records,
                                 const ParseOptions& options = {});

/// Parses one comma-separated line into a Record using the schema's column
/// types (no quoting/escaping: this is the test/example loader, not an RFC
/// 4180 implementation).
Result<Record> ParseCsvLine(const CubeSchema& schema, const std::string& line);

}  // namespace cubrick
