// Ingestion parsing and validation (paper §V-B "Parsing" and
// "Validation and Forwarding").
//
// Parsing is a CPU-only step executed by whichever node receives the load
// buffer. Input records are validated (arity, metric types, dimensional
// cardinality, string-to-id encoding); records that do not comply are
// rejected and skipped. Valid records are encoded and grouped per target
// brick (bid computed from coordinates). A load request carries a
// max_rejected threshold: if more records are rejected, the entire batch is
// discarded.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "storage/data_type.h"
#include "storage/schema.h"

namespace cubrick {

/// One input record, in schema order: dimensions then metrics.
struct Record {
  std::vector<Value> values;

  Record() = default;
  /*implicit*/ Record(std::initializer_list<Value> init) : values(init) {}
};

struct ParseOptions {
  /// Maximum records that may be rejected before the whole batch is
  /// discarded.
  uint64_t max_rejected = 0;
  /// How many error strings to retain for diagnostics.
  size_t max_errors = 8;
};

struct ParseOutput {
  PerBrickBatches batches;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  std::vector<std::string> errors;
};

/// Validates and encodes `records`, grouping them per brick. Returns
/// InvalidArgument when rejected > options.max_rejected (batch discarded).
/// String dimension/metric values are encoded through the schema's
/// dictionaries via the two-phase scheme (DESIGN.md §4f): a lock-free
/// lookup pass against each dictionary's immutable snapshot, then one
/// deterministic sorted batch insert of the misses. Ids therefore depend
/// only on the dictionaries' prior state and the set of new strings —
/// never on record order within the batch or on `parallelism`.
///
/// `parallelism` > 1 chunks the record vector into morsels fanned out on
/// ThreadPool::Global() (the caller participates while waiting). Output is
/// bit-identical to the serial walk: batches, rejection counts and
/// retained error strings are merged in morsel (= record) order.
Result<ParseOutput> ParseRecords(const CubeSchema& schema,
                                 const std::vector<Record>& records,
                                 const ParseOptions& options = {},
                                 size_t parallelism = 1);

/// Parses one comma-separated line into a Record using the schema's column
/// types (no quoting/escaping: this is the test/example loader, not an RFC
/// 4180 implementation).
Result<Record> ParseCsvLine(const CubeSchema& schema, const std::string& line);

}  // namespace cubrick
