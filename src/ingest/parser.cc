#include "ingest/parser.h"

#include <algorithm>
#include <charconv>
#include <string_view>

#include "common/ebr.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/dictionary.h"

namespace cubrick {

namespace {

/// Records per morsel below which fanning out is not worth the task
/// overhead; also the floor on morsel size when chunking.
constexpr size_t kMinMorselRecords = 64;

/// Column indexes (dims then metrics) that are dictionary-encoded, plus
/// the snapshots acquired for the current phase. Snapshot pointers follow
/// the EBR contract: valid only while the acquiring thread's Guard lives,
/// so each worker builds its own Snaps under its own Guard.
using DictSnaps = std::vector<const StringDictionary::DictSnapshot*>;

std::vector<size_t> StringColumns(const CubeSchema& schema) {
  std::vector<size_t> cols;
  for (size_t d = 0; d < schema.num_dimensions(); ++d) {
    if (schema.dimensions()[d].is_string) cols.push_back(d);
  }
  for (size_t m = 0; m < schema.num_metrics(); ++m) {
    if (schema.metrics()[m].type == DataType::kString) {
      cols.push_back(schema.num_dimensions() + m);
    }
  }
  return cols;
}

/// REQUIRES a live ebr::Guard on the calling thread: the returned pointers
/// outlive this helper, so the pin that keeps them valid must be the
/// caller's (both call sites declare one immediately before calling).
DictSnaps AcquireSnaps(const CubeSchema& schema,
                       const std::vector<size_t>& string_cols) {
  DictSnaps snaps(schema.num_columns(), nullptr);
  for (size_t c : string_cols) {
    snaps[c] = schema.dictionary(c)->AcquireSnapshot();  // aosi-lint: allow(ebr-guard)
  }
  return snaps;
}

/// Phase 1 of the two-phase dictionary encode: walk [begin, end) and
/// collect, per string column, every type-correct value the snapshot does
/// not know. Records with the wrong arity contribute nothing (they cannot
/// be accepted later). `misses` is indexed by column; `hits` counts
/// snapshot hits for the ingest.dict_snapshot_hits metric.
void CollectDictMisses(const CubeSchema& schema,
                       const std::vector<Record>& records, size_t begin,
                       size_t end, const std::vector<size_t>& string_cols,
                       std::vector<std::vector<std::string>>* misses,
                       uint64_t* hits) {
  const ebr::Guard guard;
  const DictSnaps snaps = AcquireSnaps(schema, string_cols);
  const size_t arity = schema.num_columns();
  uint64_t local_hits = 0;
  for (size_t i = begin; i < end; ++i) {
    const Record& record = records[i];
    if (record.values.size() != arity) continue;
    for (size_t c : string_cols) {
      const Value& value = record.values[c];
      if (!value.is_string()) continue;
      uint64_t id = 0;
      if (snaps[c]->Find(value.as_string(), &id)) {
        ++local_hits;
      } else {
        (*misses)[c].push_back(value.as_string());
      }
    }
  }
  *hits += local_hits;
}

/// Encodes one dimension value to its coordinate, validating cardinality.
/// String dimensions resolve through the phase-1/2 snapshot (every string
/// of an acceptable record is present after the batch insert); the
/// EncodeOrAdd fallback only fires when a concurrent load raced a fresh
/// snapshot in, and cannot change ids (the string is already assigned).
Result<uint64_t> EncodeDimension(const CubeSchema& schema,
                                 const DictSnaps& snaps, size_t dim,
                                 const Value& value) {
  const DimensionDef& def = schema.dimensions()[dim];
  uint64_t coord = 0;
  if (def.is_string) {
    if (!value.is_string()) {
      return Status::InvalidArgument("dimension '" + def.name +
                                     "' expects a string");
    }
    if (!snaps[dim]->Find(value.as_string(), &coord)) {
      coord = schema.dictionary(dim)->EncodeOrAdd(value.as_string());
    }
  } else {
    if (!value.is_int64()) {
      return Status::InvalidArgument("dimension '" + def.name +
                                     "' expects an integer");
    }
    const int64_t raw = value.as_int64();
    if (raw < 0) {
      return Status::OutOfRange("dimension '" + def.name +
                                "' coordinate is negative");
    }
    coord = static_cast<uint64_t>(raw);
  }
  if (coord >= def.cardinality) {
    return Status::OutOfRange("dimension '" + def.name + "' value " +
                              std::to_string(coord) +
                              " exceeds declared cardinality " +
                              std::to_string(def.cardinality));
  }
  return coord;
}

/// One worker's share of the encode phase: validation, encoding and
/// per-brick grouping for the records in [begin, end). Deterministic by
/// construction — only reads the shared snapshots — so concatenating
/// morsel outputs in morsel order reproduces the serial walk exactly.
struct MorselOutput {
  PerBrickBatches batches;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  /// First `max_errors` rejection diagnostics of this morsel, in record
  /// order (the merge concatenates in morsel order and re-truncates).
  std::vector<std::string> errors;
};

void EncodeMorsel(const CubeSchema& schema, const std::vector<Record>& records,
                  size_t begin, size_t end, const ParseOptions& options,
                  const std::vector<size_t>& string_cols, MorselOutput* out) {
  const ebr::Guard guard;
  const DictSnaps snaps = AcquireSnaps(schema, string_cols);
  const size_t num_dims = schema.num_dimensions();
  const size_t num_metrics = schema.num_metrics();
  const size_t n = end - begin;

  // First pass: validate every record, keeping its coordinates and bid, and
  // build the bid histogram the batch reservation below is sized from.
  std::vector<uint8_t> valid(n, 0);
  std::vector<uint64_t> coords(n * num_dims);
  std::vector<Bid> bids(n);
  std::map<Bid, uint64_t> histogram;
  for (size_t i = 0; i < n; ++i) {
    const Record& record = records[begin + i];
    uint64_t* record_coords = coords.data() + i * num_dims;
    Status record_status;
    if (record.values.size() != num_dims + num_metrics) {
      record_status = Status::InvalidArgument("wrong number of columns");
    }
    for (size_t d = 0; record_status.ok() && d < num_dims; ++d) {
      auto coord = EncodeDimension(schema, snaps, d, record.values[d]);
      if (!coord.ok()) {
        record_status = coord.status();
        break;
      }
      record_coords[d] = *coord;
    }
    for (size_t m = 0; record_status.ok() && m < num_metrics; ++m) {
      const Value& v = record.values[num_dims + m];
      const MetricDef& def = schema.metrics()[m];
      switch (def.type) {
        case DataType::kInt64:
          if (!v.is_int64()) {
            record_status = Status::InvalidArgument("metric '" + def.name +
                                                    "' expects int64");
          }
          break;
        case DataType::kDouble:
          if (v.is_string()) {
            record_status = Status::InvalidArgument("metric '" + def.name +
                                                    "' expects a number");
          }
          break;
        case DataType::kString:
          if (!v.is_string()) {
            record_status = Status::InvalidArgument("metric '" + def.name +
                                                    "' expects a string");
          }
          break;
      }
    }
    if (!record_status.ok()) {
      ++out->rejected;
      if (out->errors.size() < options.max_errors) {
        out->errors.push_back(record_status.ToString());
      }
      continue;
    }
    valid[i] = 1;
    bids[i] = schema
                  .BidFor(std::vector<uint64_t>(record_coords,
                                                record_coords + num_dims))
                  .value();
    ++histogram[bids[i]];
  }

  // Reserve every batch column to its exact row count before filling.
  for (const auto& [bid, count] : histogram) {
    auto it = out->batches.emplace(bid, EncodedBatch(schema)).first;
    EncodedBatch& batch = it->second;
    for (size_t d = 0; d < num_dims; ++d) batch.dim_offsets[d].reserve(count);
    for (size_t m = 0; m < num_metrics; ++m) {
      if (schema.metrics()[m].type == DataType::kDouble) {
        batch.metric_doubles[m].reserve(count);
      } else {
        batch.metric_ints[m].reserve(count);
      }
    }
  }

  // Second pass: fill the batches from the stored coordinates.
  for (size_t i = 0; i < n; ++i) {
    if (valid[i] == 0) continue;
    const Record& record = records[begin + i];
    const uint64_t* record_coords = coords.data() + i * num_dims;
    EncodedBatch& batch = out->batches.find(bids[i])->second;
    for (size_t d = 0; d < num_dims; ++d) {
      uint64_t range_idx = 0, offset = 0;
      schema.SplitCoord(d, record_coords[d], &range_idx, &offset);
      batch.dim_offsets[d].push_back(offset);
    }
    for (size_t m = 0; m < num_metrics; ++m) {
      const Value& v = record.values[num_dims + m];
      switch (schema.metrics()[m].type) {
        case DataType::kInt64:
          batch.metric_ints[m].push_back(v.as_int64());
          break;
        case DataType::kDouble:
          batch.metric_doubles[m].push_back(v.ToDouble().value());
          break;
        case DataType::kString: {
          const size_t c = num_dims + m;
          uint64_t id = 0;
          if (!snaps[c]->Find(v.as_string(), &id)) {
            id = schema.dictionary(c)->EncodeOrAdd(v.as_string());
          }
          batch.metric_ints[m].push_back(static_cast<int64_t>(id));
          break;
        }
      }
    }
    ++batch.num_rows;
    ++out->accepted;
  }
}

/// Moves `src`'s rows onto the end of `dst` (same bid). Row order within a
/// bid is morsel-concatenation order == record order.
void AppendBatch(EncodedBatch* dst, EncodedBatch&& src) {
  for (size_t d = 0; d < dst->dim_offsets.size(); ++d) {
    auto& dcol = dst->dim_offsets[d];
    auto& scol = src.dim_offsets[d];
    dcol.insert(dcol.end(), scol.begin(), scol.end());
  }
  for (size_t m = 0; m < dst->metric_ints.size(); ++m) {
    auto& dcol = dst->metric_ints[m];
    auto& scol = src.metric_ints[m];
    dcol.insert(dcol.end(), scol.begin(), scol.end());
  }
  for (size_t m = 0; m < dst->metric_doubles.size(); ++m) {
    auto& dcol = dst->metric_doubles[m];
    auto& scol = src.metric_doubles[m];
    dcol.insert(dcol.end(), scol.begin(), scol.end());
  }
  dst->num_rows += src.num_rows;
}

/// Splits [0, n) into at most `parallelism` contiguous morsels of at least
/// kMinMorselRecords records. Chunking never affects the output — the
/// merge is morsel-order deterministic — only load balance.
std::vector<std::pair<size_t, size_t>> PlanIngestMorsels(size_t n,
                                                         size_t parallelism) {
  const size_t max_morsels =
      std::max<size_t>(1, (n + kMinMorselRecords - 1) / kMinMorselRecords);
  const size_t num_morsels =
      std::max<size_t>(1, std::min(parallelism, max_morsels));
  std::vector<std::pair<size_t, size_t>> morsels;
  morsels.reserve(num_morsels);
  const size_t chunk = (n + num_morsels - 1) / num_morsels;
  for (size_t begin = 0; begin < n; begin += chunk) {
    morsels.push_back({begin, std::min(n, begin + chunk)});
  }
  if (morsels.empty()) morsels.push_back({0, 0});
  return morsels;
}

/// Runs `fn(morsel_index)` for every morsel — on the shared pool when more
/// than one morsel was planned, inline otherwise. The caller participates
/// via TaskGroup::Wait, so nested fan-outs cannot deadlock the pool.
void ForEachMorsel(size_t num_morsels, const std::function<void(size_t)>& fn) {
  if (num_morsels <= 1) {
    fn(0);
    return;
  }
  TaskGroup group(&ThreadPool::Global());
  for (size_t m = 0; m < num_morsels; ++m) {
    group.Run([&fn, m] { fn(m); });
  }
  group.Wait();
}

}  // namespace

Result<ParseOutput> ParseRecords(const CubeSchema& schema,
                                 const std::vector<Record>& records,
                                 const ParseOptions& options,
                                 size_t parallelism) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter* accepted = reg.GetCounter("ingest.records_accepted");
  static obs::Counter* rejected = reg.GetCounter("ingest.records_rejected");
  static obs::Counter* batches = reg.GetCounter("ingest.batches_total");
  static obs::Counter* snapshot_hits =
      reg.GetCounter("ingest.dict_snapshot_hits");
  static obs::Counter* batch_misses =
      reg.GetCounter("ingest.dict_batch_misses");
  static obs::Histogram* parse_us = reg.GetHistogram("ingest.parse_us");
  obs::ObsSpan span("ingest.parse", parse_us);

  const std::vector<size_t> string_cols = StringColumns(schema);
  const auto morsels = PlanIngestMorsels(records.size(), parallelism);
  const size_t num_morsels = morsels.size();

  // Phase 1: every morsel collects the strings its snapshot does not know.
  std::vector<std::vector<std::vector<std::string>>> misses(
      num_morsels,
      std::vector<std::vector<std::string>>(schema.num_columns()));
  std::vector<uint64_t> hits(num_morsels, 0);
  if (!string_cols.empty()) {
    ForEachMorsel(num_morsels, [&](size_t m) {
      CollectDictMisses(schema, records, morsels[m].first, morsels[m].second,
                        string_cols, &misses[m], &hits[m]);
    });
  }

  // Phase 2: one deterministic batch insert per dictionary — the misses
  // are deduped and sorted, so the assigned ids depend only on the
  // dictionary's prior state and the *set* of new strings, never on record
  // order or chunking (serial replay assigns identical ids).
  uint64_t total_hits = 0;
  uint64_t total_batch_misses = 0;
  for (uint64_t h : hits) total_hits += h;
  for (size_t c : string_cols) {
    std::vector<std::string> merged;
    for (size_t m = 0; m < num_morsels; ++m) {
      auto& part = misses[m][c];
      merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    if (merged.empty()) continue;
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    total_batch_misses += schema.dictionary(c)->InsertSortedBatch(merged);
  }
  snapshot_hits->Add(total_hits);
  batch_misses->Add(total_batch_misses);

  // Phase 3: morsel-parallel validate + encode against the post-insert
  // snapshots, merged in morsel order below.
  std::vector<MorselOutput> outputs(num_morsels);
  ForEachMorsel(num_morsels, [&](size_t m) {
    EncodeMorsel(schema, records, morsels[m].first, morsels[m].second,
                 options, string_cols, &outputs[m]);
  });

  ParseOutput out;
  for (size_t m = 0; m < num_morsels; ++m) {
    MorselOutput& part = outputs[m];
    out.accepted += part.accepted;
    out.rejected += part.rejected;
    for (std::string& err : part.errors) {
      if (out.errors.size() < options.max_errors) {
        out.errors.push_back(std::move(err));
      }
    }
    for (auto& [bid, batch] : part.batches) {
      auto it = out.batches.find(bid);
      if (it == out.batches.end()) {
        out.batches.emplace(bid, std::move(batch));
      } else {
        AppendBatch(&it->second, std::move(batch));
      }
    }
  }

  rejected->Add(out.rejected);
  if (out.rejected > options.max_rejected) {
    // The whole batch is discarded, so its accepted rows never land.
    std::string detail = out.errors.empty() ? "" : " (first: " +
                                                       out.errors.front() +
                                                       ")";
    return Status::InvalidArgument(
        "batch discarded: " + std::to_string(out.rejected) +
        " records rejected, max_rejected=" +
        std::to_string(options.max_rejected) + detail);
  }
  accepted->Add(out.accepted);
  batches->Add();
  return out;
}

Result<Record> ParseCsvLine(const CubeSchema& schema,
                            const std::string& line) {
  // Single pass over comma-separated slices: no intermediate field vector,
  // no substr temporaries — each slice is materialized at most once, as
  // the Value it becomes.
  Record record;
  record.values.reserve(schema.num_columns());
  const std::string_view view(line);
  size_t start = 0;
  size_t index = 0;
  bool done = false;
  while (!done) {
    const size_t comma = view.find(',', start);
    std::string_view field;
    if (comma == std::string_view::npos) {
      field = view.substr(start);
      done = true;
    } else {
      field = view.substr(start, comma - start);
      start = comma + 1;
    }
    const size_t i = index++;
    if (i >= schema.num_columns()) continue;  // counted, reported below

    const bool is_dim = i < schema.num_dimensions();
    DataType type;
    bool is_string;
    if (is_dim) {
      is_string = schema.dimensions()[i].is_string;
      type = is_string ? DataType::kString : DataType::kInt64;
    } else {
      type = schema.metrics()[i - schema.num_dimensions()].type;
      is_string = type == DataType::kString;
    }
    if (is_string) {
      record.values.emplace_back(std::string(field));
      continue;
    }
    if (type == DataType::kDouble) {
      double v = 0;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), v);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return Status::InvalidArgument("bad double: '" + std::string(field) +
                                       "'");
      }
      record.values.emplace_back(v);
    } else {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), v);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return Status::InvalidArgument("bad integer: '" + std::string(field) +
                                       "'");
      }
      record.values.emplace_back(v);
    }
  }
  if (index != schema.num_columns()) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(schema.num_columns()) +
                                   " fields, got " + std::to_string(index));
  }
  return record;
}

}  // namespace cubrick
