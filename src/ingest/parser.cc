#include "ingest/parser.h"

#include <charconv>

#include "obs/metrics.h"

namespace cubrick {

namespace {

/// Encodes one dimension value to its coordinate, validating cardinality.
Result<uint64_t> EncodeDimension(const CubeSchema& schema, size_t dim,
                                 const Value& value) {
  const DimensionDef& def = schema.dimensions()[dim];
  uint64_t coord = 0;
  if (def.is_string) {
    if (!value.is_string()) {
      return Status::InvalidArgument("dimension '" + def.name +
                                     "' expects a string");
    }
    coord = schema.dictionary(dim)->EncodeOrAdd(value.as_string());
  } else {
    if (!value.is_int64()) {
      return Status::InvalidArgument("dimension '" + def.name +
                                     "' expects an integer");
    }
    const int64_t raw = value.as_int64();
    if (raw < 0) {
      return Status::OutOfRange("dimension '" + def.name +
                                "' coordinate is negative");
    }
    coord = static_cast<uint64_t>(raw);
  }
  if (coord >= def.cardinality) {
    return Status::OutOfRange("dimension '" + def.name + "' value " +
                              std::to_string(coord) +
                              " exceeds declared cardinality " +
                              std::to_string(def.cardinality));
  }
  return coord;
}

}  // namespace

Result<ParseOutput> ParseRecords(const CubeSchema& schema,
                                 const std::vector<Record>& records,
                                 const ParseOptions& options) {
  ParseOutput out;
  const size_t num_dims = schema.num_dimensions();
  const size_t num_metrics = schema.num_metrics();
  std::vector<uint64_t> coords(num_dims);

  for (const Record& record : records) {
    Status record_status;
    if (record.values.size() != num_dims + num_metrics) {
      record_status = Status::InvalidArgument("wrong number of columns");
    }

    // Dimensions: encode and validate coordinates.
    for (size_t d = 0; record_status.ok() && d < num_dims; ++d) {
      auto coord = EncodeDimension(schema, d, record.values[d]);
      if (!coord.ok()) {
        record_status = coord.status();
        break;
      }
      coords[d] = *coord;
    }

    // Metrics: type-check (values appended only after full validation).
    std::vector<int64_t> metric_ints(num_metrics, 0);
    std::vector<double> metric_doubles(num_metrics, 0);
    for (size_t m = 0; record_status.ok() && m < num_metrics; ++m) {
      const Value& v = record.values[num_dims + m];
      const MetricDef& def = schema.metrics()[m];
      switch (def.type) {
        case DataType::kInt64:
          if (!v.is_int64()) {
            record_status = Status::InvalidArgument("metric '" + def.name +
                                                    "' expects int64");
          } else {
            metric_ints[m] = v.as_int64();
          }
          break;
        case DataType::kDouble:
          if (v.is_string()) {
            record_status = Status::InvalidArgument("metric '" + def.name +
                                                    "' expects a number");
          } else {
            metric_doubles[m] = v.ToDouble().value();
          }
          break;
        case DataType::kString:
          if (!v.is_string()) {
            record_status = Status::InvalidArgument("metric '" + def.name +
                                                    "' expects a string");
          } else {
            metric_ints[m] = static_cast<int64_t>(
                schema.dictionary(num_dims + m)->EncodeOrAdd(v.as_string()));
          }
          break;
      }
    }

    if (!record_status.ok()) {
      ++out.rejected;
      if (out.errors.size() < options.max_errors) {
        out.errors.push_back(record_status.ToString());
      }
      continue;
    }

    const Bid bid = schema.BidFor(coords).value();
    auto it = out.batches.find(bid);
    if (it == out.batches.end()) {
      it = out.batches.emplace(bid, EncodedBatch(schema)).first;
    }
    EncodedBatch& batch = it->second;
    for (size_t d = 0; d < num_dims; ++d) {
      uint64_t range_idx = 0, offset = 0;
      schema.SplitCoord(d, coords[d], &range_idx, &offset);
      batch.dim_offsets[d].push_back(offset);
    }
    for (size_t m = 0; m < num_metrics; ++m) {
      if (schema.metrics()[m].type == DataType::kDouble) {
        batch.metric_doubles[m].push_back(metric_doubles[m]);
      } else {
        batch.metric_ints[m].push_back(metric_ints[m]);
      }
    }
    ++batch.num_rows;
    ++out.accepted;
  }

  static obs::Counter* accepted =
      obs::MetricsRegistry::Global().GetCounter("ingest.records_accepted");
  static obs::Counter* rejected =
      obs::MetricsRegistry::Global().GetCounter("ingest.records_rejected");
  static obs::Counter* batches =
      obs::MetricsRegistry::Global().GetCounter("ingest.batches_total");
  rejected->Add(out.rejected);

  if (out.rejected > options.max_rejected) {
    // The whole batch is discarded, so its accepted rows never land.
    std::string detail = out.errors.empty() ? "" : " (first: " +
                                                       out.errors.front() +
                                                       ")";
    return Status::InvalidArgument(
        "batch discarded: " + std::to_string(out.rejected) +
        " records rejected, max_rejected=" +
        std::to_string(options.max_rejected) + detail);
  }
  accepted->Add(out.accepted);
  batches->Add();
  return out;
}

Result<Record> ParseCsvLine(const CubeSchema& schema,
                            const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    fields.push_back(line.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (fields.size() != schema.num_columns()) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(schema.num_columns()) +
                                   " fields, got " +
                                   std::to_string(fields.size()));
  }

  Record record;
  for (size_t i = 0; i < fields.size(); ++i) {
    const bool is_dim = i < schema.num_dimensions();
    DataType type;
    bool is_string;
    if (is_dim) {
      is_string = schema.dimensions()[i].is_string;
      type = is_string ? DataType::kString : DataType::kInt64;
    } else {
      type = schema.metrics()[i - schema.num_dimensions()].type;
      is_string = type == DataType::kString;
    }
    const std::string& field = fields[i];
    if (is_string) {
      record.values.emplace_back(field);
      continue;
    }
    if (type == DataType::kDouble) {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        return Status::InvalidArgument("bad double: '" + field + "'");
      }
      record.values.emplace_back(v);
    } else {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), v);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return Status::InvalidArgument("bad integer: '" + field + "'");
      }
      record.values.emplace_back(v);
    }
  }
  return record;
}

}  // namespace cubrick
