// Simulated distributed Cubrick cluster (paper §IV, §V).
//
// N in-process ClusterNodes connected by a message bus that (a) optionally
// injects latency and (b) piggybacks the sender's Epoch Clock on every
// request and the receiver's on every response, implementing the Lamport
// synchronization of §IV-A without any dedicated clock traffic.
//
// The distributed transaction flow follows §IV-C:
//   * Begin (RW): a broadcast gathers every node's pendingTxs; the union
//     becomes the transaction's deps, and all epoch clocks advance past the
//     new epoch, guaranteeing no later transaction anywhere gets a smaller
//     timestamp.
//   * Commits are deterministic (no isolation conflicts are possible), so a
//     single one-way broadcast — no consensus round — finishes a
//     transaction on every node.
//   * Appends are parsed on the receiving node and forwarded to the brick
//     owners chosen by consistent hashing, with replication_factor copies.
//
// Substitution note (DESIGN.md §3): the paper runs on real multi-server
// clusters; this in-process bus exercises the identical protocol code paths
// (striding, piggybacked clocks, deps unioning, single-roundtrip commit)
// while staying runnable on one machine.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/hash_ring.h"
#include "common/mutex.h"
#include "cluster/node.h"
#include "engine/run_extract.h"
#include "common/stopwatch.h"
#include "ingest/parser.h"

namespace cubrick::obs {
class MetricsRegistry;
}  // namespace cubrick::obs

namespace cubrick::cluster {

struct ClusterOptions {
  uint32_t num_nodes = 3;
  size_t shards_per_cube = 1;
  bool threaded_shards = false;
  /// Copies of each brick (1 = no replication).
  size_t replication_factor = 1;
  uint32_t vnodes_per_node = 64;
  /// Simulated one-way message latency, microseconds (0 = none).
  uint32_t message_latency_us = 0;
  /// Root directory for per-node flush segments (<dir>/node<i>/); empty
  /// disables persistence.
  std::string data_dir;
};

/// A distributed transaction handle: the coordinator node plus the AOSI
/// transaction descriptor (epoch + cluster-wide deps).
struct DistTxn {
  uint32_t coordinator = 0;  // 1-based node index
  aosi::Txn txn;
};

/// Per-load-request latency breakdown (paper Fig 5).
struct LoadStats {
  int64_t parse_us = 0;
  /// Forward + flush: network round trips plus shard-apply time.
  int64_t flush_us = 0;
  int64_t total_us = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;

  /// Publishes this load's breakdown into the registry's "cluster.load.*"
  /// instruments (docs/OBSERVABILITY.md). Called by Cluster::Append for
  /// every load, whether or not the caller asked for the stats.
  void PublishTo(obs::MetricsRegistry& reg) const;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);

  uint32_t num_nodes() const { return options_.num_nodes; }
  /// 1-based access, matching the paper's node numbering.
  ClusterNode& node(uint32_t idx) { return *nodes_[idx - 1]; }
  const HashRing& ring() const { return ring_; }

  // --- Cube lifecycle (broadcast to all nodes) ---------------------------

  Status CreateCube(const std::string& name,
                    std::vector<DimensionDef> dimensions,
                    std::vector<MetricDef> metrics);
  /// CREATE CUBE DDL, applied cluster-wide.
  Status ExecuteDdl(const std::string& ddl);
  Status DropCube(const std::string& name);
  std::shared_ptr<const CubeSchema> FindSchema(const std::string& name) const;

  // --- Transactions -------------------------------------------------------

  /// Starts a distributed RW transaction coordinated by `coordinator`.
  /// Fails with Unavailable when any node is offline (deps could be
  /// incomplete).
  Result<DistTxn> BeginReadWrite(uint32_t coordinator);

  /// Starts a RO transaction pinned to the coordinator's LCE.
  DistTxn BeginReadOnly(uint32_t coordinator);

  /// Commits with a single broadcast round (§IV-C). Offline nodes receive
  /// the message from the redelivery log when they come back.
  Status Commit(DistTxn* txn);

  /// Aborts: broadcast plus physical removal of the epoch's records on all
  /// reachable nodes.
  Status Rollback(DistTxn* txn);

  void EndReadOnly(DistTxn* txn);

  // --- Operations ----------------------------------------------------------

  /// Parses `records` on the coordinator and forwards encoded batches to
  /// brick owners (+replicas). `stats`, when non-null, receives the Fig 5
  /// breakdown.
  Status Append(DistTxn* txn, const std::string& cube,
                const std::vector<Record>& records,
                const ParseOptions& parse_options = {},
                LoadStats* stats = nullptr);

  /// Partition-granular delete, broadcast to every node.
  Status DeleteWhere(DistTxn* txn, const std::string& cube,
                     const std::vector<FilterClause>& filters);

  /// Scatter-gather scan in the context of an open transaction.
  Result<QueryResult> Query(DistTxn* txn, const std::string& cube,
                            const cubrick::Query& query,
                            ScanMode mode = ScanMode::kSnapshotIsolation);

  /// Implicit RO query: begin RO on `coordinator`, scan, end.
  Result<QueryResult> QueryOnce(uint32_t coordinator, const std::string& cube,
                                const cubrick::Query& query,
                                ScanMode mode = ScanMode::kSnapshotIsolation);

  // --- Maintenance ---------------------------------------------------------

  /// Advances LSE cluster-wide: candidate = min LCE over nodes, clamped per
  /// node by active snapshots. Refuses to advance while any node is offline
  /// or has undelivered replication traffic ("LSE needs to be prevented
  /// from advancing if data is not safely stored on all replicas or if any
  /// replica is offline"). Returns the cluster-wide (minimum) LSE.
  aosi::Epoch AdvanceClusterLSE();

  /// Runs purge on every node at its local LSE.
  PurgeStats PurgeAll(PurgeMode mode = PurgeMode::kConcurrent);

  /// Takes a node offline / brings it back (redelivering missed traffic).
  Status SetNodeOnline(uint32_t idx, bool online);

  // --- Persistence & node recovery (§III-D) --------------------------------

  /// Flushes every node up to the cluster-safe epoch (min LCE) and advances
  /// all LSEs. Requires data_dir and full cluster health.
  Result<aosi::Epoch> CheckpointAll();

  /// Simulates a node crash: all of its in-memory state (tables, counters,
  /// queued redeliveries) is destroyed; its flush segments survive on disk.
  /// The node is left offline.
  Status CrashNode(uint32_t idx);

  /// Recovers a crashed node: local flush segments first, then everything
  /// after its recovered LSE is re-fetched from replica peers ("data from
  /// LSE onwards can be retrieved from the replica nodes"). Requires the
  /// rest of the cluster to be online and quiescent (no open RW txns).
  /// Leaves the node online.
  Status RecoverNode(uint32_t idx);

  /// Total records across nodes (replicas counted per copy).
  uint64_t TotalRecords();

 private:
  /// Simulated wire delay, applied per one-way message.
  void Latency() const;

  /// Clock piggybacking around an RPC from `from` to `to`.
  void CarryClocksForward(uint32_t from, uint32_t to);
  void CarryClocksBack(uint32_t from, uint32_t to);

  /// Delivers an operation to a node, or logs it for redelivery when the
  /// node is offline (replication catch-up).
  void DeliverOrQueue(uint32_t from, uint32_t to,
                      std::function<Status(ClusterNode&)> op);

  /// The first online owner of a brick among its replica set — the node
  /// responsible for answering scans over it.
  uint32_t PreferredOwner(Bid bid) const;

  /// Node options for (re)construction of node `idx`.
  NodeOptions NodeOptionsFor(uint32_t idx) const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  HashRing ring_;
  /// Cube catalog, used to rebuild crashed nodes.
  std::map<std::string, std::shared_ptr<const CubeSchema>> catalog_;

  mutable Mutex redelivery_mutex_;
  /// Per-node FIFO of operations missed while offline.
  std::vector<std::vector<std::function<Status(ClusterNode&)>>> missed_ops_
      GUARDED_BY(redelivery_mutex_);
};

}  // namespace cubrick::cluster
