// One simulated cluster node (paper §IV).
//
// A node owns a TxnManager (EC/LCE/LSE, pendingTxs) and the local storage of
// every cube — a sharded Table holding the bricks consistent hashing
// assigned to it (plus replicas). The Handle* methods are the node's RPC
// surface; the Cluster's message bus piggybacks epoch clocks on every
// request and response (§IV-A), so handlers assume ObserveClock has already
// been applied by the bus.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>

#include "aosi/txn_manager.h"
#include "common/mutex.h"
#include "engine/table.h"
#include "persist/flush_manager.h"
#include "query/query.h"

namespace cubrick::cluster {

struct NodeOptions {
  size_t shards_per_cube = 1;
  bool threaded_shards = false;
  /// Per-node flush directory; empty disables persistence.
  std::string data_dir;
};

class ClusterNode {
 public:
  ClusterNode(uint32_t node_idx, uint32_t num_nodes, NodeOptions options);

  uint32_t node_idx() const { return node_idx_; }
  aosi::TxnManager& txns() { return txns_; }

  /// Simulated availability. RPCs to an offline node fail with Unavailable;
  /// the cluster layer uses this to exercise replication / LSE gating.
  bool online() const { return online_.load(std::memory_order_seq_cst); }
  void set_online(bool v) { online_.store(v, std::memory_order_seq_cst); }

  // --- Cube lifecycle ----------------------------------------------------

  Status CreateCube(std::shared_ptr<const CubeSchema> schema);
  Status DropCube(const std::string& name);
  /// Local table for `name`, or nullptr.
  Table* FindTable(const std::string& name);

  // --- RPC surface ---------------------------------------------------------

  /// Outcome of a begin broadcast. `accepted == false` means this node's
  /// LCE had already walked past the proposed epoch (the registration was
  /// refused, `pending` is empty) and the coordinator must abort the draft
  /// epoch and redraw — see TxnManager::RegisterRemoteBegin.
  struct BeginBroadcastResult {
    bool accepted = false;
    aosi::EpochSet pending;
  };

  /// Begin broadcast (§IV-C): atomically registers a remote RW transaction
  /// and snapshots this node's pendingTxs set.
  BeginBroadcastResult HandleBeginBroadcast(aosi::Epoch epoch);

  /// Begin-protocol phase 2: pins the transaction's final (post-augment)
  /// purge horizon so this node's LSE cannot pass it while the transaction
  /// lives. Returns false when the local LSE already has — the coordinator
  /// must abort the draft and redraw (TxnManager::RegisterRemoteHorizon).
  bool HandleRegisterHorizon(aosi::Epoch epoch, aosi::Epoch horizon);

  /// Appends forwarded, already-parsed batches (consumed by move).
  Status HandleAppend(aosi::Epoch epoch, const std::string& cube,
                      PerBrickBatches&& batches);

  /// Partition-granular delete (validate + mark).
  Status HandleDelete(aosi::Epoch epoch, const std::string& cube,
                      const std::vector<FilterClause>& filters);

  /// Phase-1 validation of a distributed delete predicate.
  Status HandleDeleteCheck(const std::string& cube,
                           const std::vector<FilterClause>& filters);

  /// Phase-2 marking; never fails on a healthy node.
  Status HandleDeleteMark(aosi::Epoch epoch, const std::string& cube,
                          const std::vector<FilterClause>& filters);

  /// Physically removes every append/delete of `victim` from local cubes.
  void RollbackData(aosi::Epoch victim);

  /// Commit/abort broadcast carrying the transaction's deps (§IV-C).
  Status HandleFinish(aosi::Epoch epoch, const aosi::EpochSet& deps,
                      bool committed);

  /// Scan of locally-owned bricks. `brick_filter` selects which local
  /// bricks this node is responsible for answering.
  Result<QueryResult> HandleScan(const std::string& cube,
                                 const aosi::Snapshot& snapshot,
                                 ScanMode mode, const Query& query,
                                 const std::function<bool(Bid)>& brick_filter);

  /// Runs the purge procedure on every local cube at this node's LSE.
  PurgeStats HandlePurge(PurgeMode mode = PurgeMode::kConcurrent);

  // --- Persistence (§III-D) -----------------------------------------------

  /// Flushes every cube's data up to `to` (from each cube's last flushed
  /// point) and returns OK when all segments are durable. Requires a
  /// data_dir.
  Status Checkpoint(aosi::Epoch to);

  /// Replays local flush segments into the (freshly created) cubes and
  /// returns the node's consistent recovered LSE (inconsistent tails are
  /// truncated, as in Database::Recover).
  Result<aosi::Epoch> RecoverLocal();

  /// The highest epoch durably flushed for every local cube — LSE may not
  /// pass it (§III-B condition (c)). Unbounded when persistence is
  /// disabled (a diskless deployment relies on replication alone).
  aosi::Epoch MinFlushedLse();

  // --- Local helpers -------------------------------------------------------

  /// Aggregate statistics across local cubes.
  uint64_t TotalRecords();
  size_t HistoryMemoryUsage();
  size_t DataMemoryUsage();

 private:
  const uint32_t node_idx_;
  const NodeOptions options_;
  aosi::TxnManager txns_;
  std::atomic<bool> online_{true};

  struct CubeState {
    std::unique_ptr<Table> table;
    std::unique_ptr<persist::FlushManager> flusher;
  };

  /// Per-cube engine pointers snapshotted under cubes_mutex_. Bulk
  /// operations (rollback, purge, checkpoint, recovery) iterate the
  /// snapshot with the lock released: table operations fan out to bounded
  /// shard queues, and a backpressure wait under the registry lock would
  /// stall every cube lookup (including the RPC handlers). Lifetime
  /// follows the FindTable() convention — DDL is serialized against data
  /// operations by the caller; cubes_mutex_ guards only the map.
  struct CubeRef {
    Table* table;
    persist::FlushManager* flusher;
  };
  std::vector<CubeRef> SnapshotCubes();

  Mutex cubes_mutex_;
  std::unordered_map<std::string, CubeState> cubes_ GUARDED_BY(cubes_mutex_);
};

}  // namespace cubrick::cluster
