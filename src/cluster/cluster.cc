#include "cluster/cluster.h"

#include "aosi/checker_hook.h"
#include "cubrick/ddl.h"
#include "obs/metrics.h"

#include <filesystem>
#include <thread>

namespace cubrick::cluster {

namespace {

/// RPC fan-out instrumentation (docs/OBSERVABILITY.md, "cluster.rpc.*").
struct RpcInstruments {
  obs::Counter* begin_broadcasts;
  obs::Counter* horizon_registrations;
  obs::Counter* finish_broadcasts;
  obs::Counter* append_forwards;
  obs::Counter* redeliveries_queued;
  obs::Counter* redeliveries_applied;
  obs::Gauge* redelivery_depth;
};

const RpcInstruments& Rpc() {
  static const RpcInstruments m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return RpcInstruments{
        reg.GetCounter("cluster.rpc.begin_broadcasts"),
        reg.GetCounter("cluster.rpc.horizon_registrations"),
        reg.GetCounter("cluster.rpc.finish_broadcasts"),
        reg.GetCounter("cluster.rpc.append_forwards"),
        reg.GetCounter("cluster.rpc.redeliveries_queued"),
        reg.GetCounter("cluster.rpc.redeliveries_applied"),
        reg.GetGauge("cluster.rpc.redelivery_depth"),
    };
  }();
  return m;
}

}  // namespace

void LoadStats::PublishTo(obs::MetricsRegistry& reg) const {
  reg.GetCounter("cluster.load.records_accepted")->Add(accepted);
  reg.GetCounter("cluster.load.records_rejected")->Add(rejected);
  reg.GetHistogram("cluster.load.parse_us")
      ->Record(static_cast<uint64_t>(parse_us < 0 ? 0 : parse_us));
  reg.GetHistogram("cluster.load.flush_us")
      ->Record(static_cast<uint64_t>(flush_us < 0 ? 0 : flush_us));
  reg.GetHistogram("cluster.load.total_us")
      ->Record(static_cast<uint64_t>(total_us < 0 ? 0 : total_us));
}

NodeOptions Cluster::NodeOptionsFor(uint32_t idx) const {
  NodeOptions node_options;
  node_options.shards_per_cube = options_.shards_per_cube;
  node_options.threaded_shards = options_.threaded_shards;
  if (!options_.data_dir.empty()) {
    node_options.data_dir =
        options_.data_dir + "/node" + std::to_string(idx);
  }
  return node_options;
}

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  CUBRICK_CHECK(options_.num_nodes >= 1);
  CUBRICK_CHECK(options_.replication_factor >= 1);
  CUBRICK_CHECK(options_.replication_factor <= options_.num_nodes);
  for (uint32_t i = 1; i <= options_.num_nodes; ++i) {
    const NodeOptions node_options = NodeOptionsFor(i);
    if (!node_options.data_dir.empty()) {
      std::filesystem::create_directories(node_options.data_dir);
    }
    nodes_.push_back(
        std::make_unique<ClusterNode>(i, options_.num_nodes, node_options));
    ring_.AddNode(i, options_.vnodes_per_node);
  }
  missed_ops_.resize(options_.num_nodes);
}

void Cluster::Latency() const {
  if (options_.message_latency_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.message_latency_us));
  }
}

void Cluster::CarryClocksForward(uint32_t from, uint32_t to) {
  Latency();
  node(to).txns().ObserveClock(node(from).txns().EC());
}

void Cluster::CarryClocksBack(uint32_t from, uint32_t to) {
  Latency();
  node(from).txns().ObserveClock(node(to).txns().EC());
}

Status Cluster::CreateCube(const std::string& name,
                           std::vector<DimensionDef> dimensions,
                           std::vector<MetricDef> metrics) {
  auto schema =
      CubeSchema::Make(name, std::move(dimensions), std::move(metrics));
  if (!schema.ok()) return schema.status();
  for (auto& n : nodes_) {
    CUBRICK_RETURN_IF_ERROR(n->CreateCube(schema.value()));
  }
  catalog_.emplace(name, schema.value());
  return Status::OK();
}

Status Cluster::ExecuteDdl(const std::string& ddl) {
  auto stmt = ParseCreateCube(ddl);
  if (!stmt.ok()) return stmt.status();
  return CreateCube(stmt->cube_name, std::move(stmt->dimensions),
                    std::move(stmt->metrics));
}

Status Cluster::DropCube(const std::string& name) {
  for (auto& n : nodes_) {
    CUBRICK_RETURN_IF_ERROR(n->DropCube(name));
  }
  catalog_.erase(name);
  return Status::OK();
}

std::shared_ptr<const CubeSchema> Cluster::FindSchema(
    const std::string& name) const {
  Table* table = nodes_.front()->FindTable(name);
  if (table == nullptr) return nullptr;
  // All nodes share the schema object; grab it via the table's brick map.
  // (Schema is immutable apart from its internally-synchronized
  // dictionaries.)
  return std::shared_ptr<const CubeSchema>(table->schema_ptr());
}

Result<DistTxn> Cluster::BeginReadWrite(uint32_t coordinator) {
  // Dependency sets must reflect every node's pending list; an unreachable
  // node makes the snapshot unsound, so RW begins require full membership.
  for (auto& n : nodes_) {
    if (!n->online()) {
      return Status::Unavailable("node " + std::to_string(n->node_idx()) +
                                 " is offline; cannot begin RW transaction");
    }
  }
  // The coordinator draws the epoch before the begin broadcast lands, so a
  // peer's LCE may already have walked past it (the walk skips unallocated
  // epoch gaps). Such a peer rejects the registration — accepting it would
  // retroactively grow snapshots pinned at its LCE — and the coordinator
  // aborts the draft epoch and redraws. The clock carries of the failed
  // round made the coordinator observe the rejecting peer's EC (> its LCE),
  // so every retry draws a strictly larger epoch; more than a handful of
  // rounds means LCEs are advancing faster than a broadcast completes.
  constexpr int kMaxBeginAttempts = 16;
  for (int attempt = 0; attempt < kMaxBeginAttempts; ++attempt) {
    DistTxn dist;
    dist.coordinator = coordinator;
    // The checker's OnBegin is deferred to the end of this round: a draft
    // that loses a race below aborts without ever reading, and reporting
    // its horizon would turn averted hazards into false lost_horizon
    // violations.
    dist.txn = node(coordinator).txns().BeginReadWrite(
        /*notify_checker=*/false);

    aosi::EpochSet remote_pending;
    std::vector<uint32_t> accepted_peers;
    bool rejected = false;
    for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
      if (o == coordinator) continue;
      Rpc().begin_broadcasts->Add();
      CarryClocksForward(coordinator, o);
      auto result = node(o).HandleBeginBroadcast(dist.txn.epoch);
      CarryClocksBack(coordinator, o);
      if (!result.accepted) {
        rejected = true;
        break;
      }
      accepted_peers.push_back(o);
      remote_pending.UnionWith(result.pending);
    }
    if (!rejected) {
      // Phase 2: the final dependency set — and with it the snapshot's
      // purge horizon — is only known after augmenting with every peer's
      // pending list, but TryAdvanceLSE clamps against *local*
      // registrations only, and the distributed scan path reads every
      // node's replicas. Register the final horizon on every node before
      // the transaction reads anything; a node whose LSE already passed it
      // (an AdvanceClusterLSE sweep that read this node before the dep
      // existed) refuses, and the draft is aborted and redrawn exactly as
      // for a stale begin. Peer pins are released by the HandleFinish
      // broadcast, which the abort path below also sends.
      bool horizon_ok =
          node(coordinator).txns().AugmentDeps(&dist.txn, remote_pending);
      const aosi::Epoch horizon = dist.txn.Horizon();
      for (uint32_t o : accepted_peers) {
        if (!horizon_ok) break;
        Rpc().horizon_registrations->Add();
        CarryClocksForward(coordinator, o);
        horizon_ok = node(o).HandleRegisterHorizon(dist.txn.epoch, horizon);
        CarryClocksBack(coordinator, o);
      }
      if (horizon_ok) {
        if (auto* hook = aosi::GetCheckerHook()) hook->OnBegin(dist.txn);
        return dist;
      }
      rejected = true;
    }
    // Abort the draft epoch: peers that registered it learn it finished
    // (nothing was written at this epoch, so there is no data to remove),
    // then the coordinator finalizes locally and the loop redraws.
    const aosi::Epoch draft = dist.txn.epoch;
    for (uint32_t o : accepted_peers) {
      Rpc().finish_broadcasts->Add();
      DeliverOrQueue(coordinator, o, [draft](ClusterNode& n) {
        return n.HandleFinish(draft, aosi::EpochSet{}, /*committed=*/false);
      });
    }
    const Status rollback = node(coordinator).txns().Rollback(dist.txn);
    CUBRICK_CHECK(rollback.ok());
  }
  return Status::Unavailable(
      "begin broadcast lost the race against LCE advancement " +
      std::to_string(kMaxBeginAttempts) + " times; cluster is overloaded");
}

DistTxn Cluster::BeginReadOnly(uint32_t coordinator) {
  DistTxn dist;
  dist.coordinator = coordinator;
  dist.txn = node(coordinator).txns().BeginReadOnly();
  return dist;
}

void Cluster::DeliverOrQueue(uint32_t from, uint32_t to,
                             std::function<Status(ClusterNode&)> op) {
  if (to != from && !node(to).online()) {
    MutexLock lock(redelivery_mutex_);
    missed_ops_[to - 1].push_back(std::move(op));
    Rpc().redeliveries_queued->Add();
    Rpc().redelivery_depth->Set(
        static_cast<int64_t>(missed_ops_[to - 1].size()));
    return;
  }
  if (to != from) CarryClocksForward(from, to);
  const Status status = op(node(to));
  // Deterministic operations cannot fail on a healthy node; surface
  // programming errors loudly instead of silently dropping them.
  CUBRICK_CHECK(status.ok());
  if (to != from) CarryClocksBack(from, to);
}

Status Cluster::Commit(DistTxn* dist) {
  if (dist->txn.read_only()) {
    EndReadOnly(dist);
    return Status::OK();
  }
  // Single broadcast, no consensus: commits are deterministic (§IV).
  const aosi::Epoch epoch = dist->txn.epoch;
  const aosi::EpochSet deps = dist->txn.deps;
  // The snapshot's reads are over once commit starts, and a peer that
  // receives the finish below releases its phase-2 horizon pin — so its
  // LSE may legitimately pass the horizon before the local commit at the
  // bottom runs. Retire the snapshot with the checker first, or it judges
  // those advances against a transaction that already stopped reading.
  if (auto* hook = aosi::GetCheckerHook()) hook->OnFinish(dist->txn, true);
  for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
    if (o == dist->coordinator) continue;
    Rpc().finish_broadcasts->Add();
    DeliverOrQueue(dist->coordinator, o, [epoch, deps](ClusterNode& n) {
      return n.HandleFinish(epoch, deps, /*committed=*/true);
    });
  }
  return node(dist->coordinator).txns().Commit(dist->txn);
}

Status Cluster::Rollback(DistTxn* dist) {
  if (dist->txn.read_only()) {
    EndReadOnly(dist);
    return Status::OK();
  }
  const aosi::Epoch epoch = dist->txn.epoch;
  const aosi::EpochSet deps = dist->txn.deps;
  // Two-phase: physically remove the victim's records everywhere (§III-C5)
  // *before* finalizing the abort anywhere. Finalizing first would let a
  // node's LCE pass the victim while its data is still present on another
  // node, and a reader beginning there would see aborted records.
  for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
    if (o == dist->coordinator) continue;
    DeliverOrQueue(dist->coordinator, o, [epoch](ClusterNode& n) {
      n.RollbackData(epoch);
      return Status::OK();
    });
  }
  node(dist->coordinator).RollbackData(epoch);
  // Same as Commit: peers receiving the finish release their horizon pins,
  // so retire the snapshot with the checker before the broadcast.
  if (auto* hook = aosi::GetCheckerHook()) hook->OnFinish(dist->txn, false);
  for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
    if (o == dist->coordinator) continue;
    Rpc().finish_broadcasts->Add();
    DeliverOrQueue(dist->coordinator, o, [epoch, deps](ClusterNode& n) {
      return n.HandleFinish(epoch, deps, /*committed=*/false);
    });
  }
  return node(dist->coordinator).txns().Rollback(dist->txn);
}

void Cluster::EndReadOnly(DistTxn* dist) {
  node(dist->coordinator).txns().EndReadOnly(dist->txn);
}

Status Cluster::Append(DistTxn* dist, const std::string& cube,
                       const std::vector<Record>& records,
                       const ParseOptions& parse_options, LoadStats* stats) {
  if (dist->txn.read_only()) {
    return Status::FailedPrecondition("append in a read-only transaction");
  }
  Stopwatch total;
  auto schema = FindSchema(cube);
  if (schema == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }

  // Parse phase: CPU-only, on the node that received the buffer (§V-B).
  Stopwatch parse_timer;
  auto parsed = ParseRecords(*schema, records, parse_options);
  if (!parsed.ok()) return parsed.status();
  const int64_t parse_us = parse_timer.ElapsedMicros();

  // Validation and forwarding: route each brick's batch to its owners.
  Stopwatch flush_timer;
  std::vector<PerBrickBatches> per_node(options_.num_nodes);
  for (auto& [bid, batch] : parsed->batches) {
    for (uint32_t owner :
         ring_.NodesFor(bid, options_.replication_factor)) {
      per_node[owner - 1].emplace(bid, batch);
    }
  }
  const aosi::Epoch epoch = dist->txn.epoch;
  for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
    if (per_node[o - 1].empty()) continue;
    auto batches =
        std::make_shared<PerBrickBatches>(std::move(per_node[o - 1]));
    Rpc().append_forwards->Add();
    // Delivery closures run at most once per node, so the payload can be
    // moved out of the shared handle into the engine.
    DeliverOrQueue(dist->coordinator, o, [epoch, cube, batches](
                                             ClusterNode& n) {
      return n.HandleAppend(epoch, cube, std::move(*batches));
    });
  }

  LoadStats local;
  local.parse_us = parse_us;
  local.flush_us = flush_timer.ElapsedMicros();
  local.total_us = total.ElapsedMicros();
  local.accepted = parsed->accepted;
  local.rejected = parsed->rejected;
  local.PublishTo(obs::MetricsRegistry::Global());
  if (stats != nullptr) {
    *stats = local;
  }
  return Status::OK();
}

Status Cluster::DeleteWhere(DistTxn* dist, const std::string& cube,
                            const std::vector<FilterClause>& filters) {
  if (dist->txn.read_only()) {
    return Status::FailedPrecondition("delete in a read-only transaction");
  }
  const aosi::Epoch epoch = dist->txn.epoch;
  // Phase 1: verify partition granularity on every reachable node before
  // marking anywhere. (Offline replicas hold copies of bricks that online
  // nodes also validated, so redelivered marks cannot hit new violations.)
  for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
    if (!node(o).online()) continue;
    if (o != dist->coordinator) CarryClocksForward(dist->coordinator, o);
    const Status check = node(o).HandleDeleteCheck(cube, filters);
    if (o != dist->coordinator) CarryClocksBack(dist->coordinator, o);
    CUBRICK_RETURN_IF_ERROR(check);
  }
  // Phase 2: mark everywhere (queued for offline replicas).
  for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
    DeliverOrQueue(dist->coordinator, o,
                   [epoch, cube, filters](ClusterNode& n) {
                     return n.HandleDeleteMark(epoch, cube, filters);
                   });
  }
  return Status::OK();
}

uint32_t Cluster::PreferredOwner(Bid bid) const {
  const auto owners = ring_.NodesFor(bid, options_.replication_factor);
  for (uint32_t owner : owners) {
    if (nodes_[owner - 1]->online()) return owner;
  }
  return owners.front();  // everything offline: scan will fail anyway
}

Result<QueryResult> Cluster::Query(DistTxn* dist, const std::string& cube,
                                   const cubrick::Query& query, ScanMode mode) {
  QueryResult merged(query.aggs.size());
  for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
    if (!node(o).online()) continue;  // replicas answer for its bricks
    const uint32_t node_idx = o;
    auto filter = [this, node_idx](Bid bid) {
      return PreferredOwner(bid) == node_idx;
    };
    if (o != dist->coordinator) CarryClocksForward(dist->coordinator, o);
    auto partial =
        node(o).HandleScan(cube, dist->txn.snapshot(), mode, query, filter);
    if (o != dist->coordinator) CarryClocksBack(dist->coordinator, o);
    if (!partial.ok()) return partial.status();
    merged.Merge(*partial);
  }
  return merged;
}

Result<QueryResult> Cluster::QueryOnce(uint32_t coordinator,
                                       const std::string& cube,
                                       const cubrick::Query& query, ScanMode mode) {
  DistTxn ro = BeginReadOnly(coordinator);
  auto result = Query(&ro, cube, query, mode);
  EndReadOnly(&ro);
  return result;
}

aosi::Epoch Cluster::AdvanceClusterLSE() {
  {
    MutexLock lock(redelivery_mutex_);
    for (uint32_t o = 0; o < options_.num_nodes; ++o) {
      if (!nodes_[o]->online() || !missed_ops_[o].empty()) {
        // Replication unhealthy: LSE must not advance (§III-D).
        aosi::Epoch min_lse = aosi::kEpochMax;
        for (auto& n : nodes_) {
          min_lse = aosi::MinEpoch(min_lse, n->txns().LSE());
        }
        return min_lse;
      }
    }
  }
  aosi::Epoch candidate = aosi::kEpochMax;
  for (auto& n : nodes_) {
    candidate = aosi::MinEpoch(candidate, n->txns().LCE());
    // §III-B condition (c): LSE may not pass data that is not yet durable
    // on every replica. Diskless clusters return "unbounded" here.
    candidate = aosi::MinEpoch(candidate, n->MinFlushedLse());
    // Purge at LSE applies delete markers destructively on every node, so
    // every node's LSE must respect the cluster-wide minimum horizon.
    // These reads are not atomic across nodes; the per-node TryAdvanceLSE
    // clamp below, together with the phase-2 horizon registration in
    // BeginReadWrite (which puts every live snapshot's horizon in every
    // node's local clamp), is what makes the advance sound against begins
    // that race this sweep.
    candidate = aosi::MinEpoch(candidate, n->txns().MinActiveHorizon());
  }
  aosi::Epoch cluster_lse = aosi::kEpochMax;
  for (auto& n : nodes_) {
    cluster_lse = aosi::MinEpoch(cluster_lse, n->txns().TryAdvanceLSE(candidate));
  }
  return cluster_lse;
}

PurgeStats Cluster::PurgeAll(PurgeMode mode) {
  PurgeStats total;
  for (auto& n : nodes_) {
    const PurgeStats stats = n->HandlePurge(mode);
    total.bricks_examined += stats.bricks_examined;
    total.bricks_rewritten += stats.bricks_rewritten;
    total.bricks_erased += stats.bricks_erased;
    total.records_removed += stats.records_removed;
  }
  return total;
}

Status Cluster::SetNodeOnline(uint32_t idx, bool online) {
  if (idx < 1 || idx > options_.num_nodes) {
    return Status::OutOfRange("no such node");
  }
  if (!online) {
    node(idx).set_online(false);
    return Status::OK();
  }
  node(idx).set_online(true);
  // Redeliver traffic missed while offline, in order.
  std::vector<std::function<Status(ClusterNode&)>> queued;
  {
    MutexLock lock(redelivery_mutex_);
    queued.swap(missed_ops_[idx - 1]);
  }
  for (auto& op : queued) {
    const Status status = op(node(idx));
    CUBRICK_CHECK(status.ok());
  }
  Rpc().redeliveries_applied->Add(queued.size());
  Rpc().redelivery_depth->Set(0);
  return Status::OK();
}

Result<aosi::Epoch> Cluster::CheckpointAll() {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("cluster has no data_dir");
  }
  {
    MutexLock lock(redelivery_mutex_);
    for (uint32_t o = 0; o < options_.num_nodes; ++o) {
      if (!nodes_[o]->online() || !missed_ops_[o].empty()) {
        return Status::Unavailable(
            "replication unhealthy; checkpoint refused");
      }
    }
  }
  aosi::Epoch candidate = aosi::kEpochMax;
  for (auto& n : nodes_) {
    candidate = aosi::MinEpoch(candidate, n->txns().LCE());
    // Same cluster-wide horizon clamp as AdvanceClusterLSE: the LSE the
    // checkpoint advances to must not pass any coordinator's active
    // snapshots, or purge would apply deletes those snapshots exclude.
    candidate = aosi::MinEpoch(candidate, n->txns().MinActiveHorizon());
  }
  for (auto& n : nodes_) {
    CUBRICK_RETURN_IF_ERROR(n->Checkpoint(candidate));
  }
  aosi::Epoch cluster_lse = aosi::kEpochMax;
  for (auto& n : nodes_) {
    cluster_lse = aosi::MinEpoch(cluster_lse, n->txns().TryAdvanceLSE(candidate));
  }
  return cluster_lse;
}

Status Cluster::CrashNode(uint32_t idx) {
  if (idx < 1 || idx > options_.num_nodes) {
    return Status::OutOfRange("no such node");
  }
  {
    MutexLock lock(redelivery_mutex_);
    missed_ops_[idx - 1].clear();  // the crashed process loses everything
  }
  // Replace the node wholesale: fresh TxnManager, empty tables.
  auto fresh = std::make_unique<ClusterNode>(idx, options_.num_nodes,
                                             NodeOptionsFor(idx));
  for (const auto& [name, schema] : catalog_) {
    CUBRICK_RETURN_IF_ERROR(fresh->CreateCube(schema));
  }
  fresh->set_online(false);
  nodes_[idx - 1] = std::move(fresh);
  return Status::OK();
}

Status Cluster::RecoverNode(uint32_t idx) {
  if (idx < 1 || idx > options_.num_nodes) {
    return Status::OutOfRange("no such node");
  }
  ClusterNode& target = node(idx);
  if (target.online()) {
    return Status::FailedPrecondition("node is not crashed/offline");
  }
  // Step 1: local flush segments, up to the node's own durable LSE.
  auto local = target.RecoverLocal();
  if (!local.ok()) return local.status();
  const aosi::Epoch local_lse = *local;

  // Step 2: catch up from replicas. For every brick this node owns a copy
  // of, the first *other* online owner supplies the runs newer than the
  // locally recovered LSE.
  aosi::Epoch cluster_lce = 0;
  for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
    if (o == idx || !node(o).online()) continue;
    cluster_lce = aosi::MaxEpoch(cluster_lce, node(o).txns().LCE());
  }
  for (const auto& [name, schema] : catalog_) {
    for (uint32_t o = 1; o <= options_.num_nodes; ++o) {
      if (o == idx || !node(o).online()) continue;
      Table* peer_table = node(o).FindTable(name);
      Table* local_table = target.FindTable(name);
      CUBRICK_CHECK(peer_table != nullptr && local_table != nullptr);
      CarryClocksForward(idx, o);
      auto extracted = ExtractTableRuns(peer_table, local_lse, cluster_lce);
      CarryClocksBack(idx, o);
      // Keep only bricks (a) replicated onto `idx` and (b) for which `o`
      // is the first online supplier — each brick is copied exactly once.
      std::vector<ExtractedBrick> mine;
      for (auto& brick : extracted) {
        const auto owners =
            ring_.NodesFor(brick.bid, options_.replication_factor);
        bool owned = false;
        uint32_t supplier = 0;
        for (uint32_t owner : owners) {
          if (owner == idx) owned = true;
          if (supplier == 0 && owner != idx && node(owner).online()) {
            supplier = owner;
          }
        }
        if (owned && supplier == o) {
          mine.push_back(std::move(brick));
        }
      }
      CUBRICK_RETURN_IF_ERROR(ReplayExtracted(local_table, mine));
    }
  }

  // Step 3: restore counters — caught up to the cluster's LCE in memory,
  // durable locally only up to local_lse.
  target.txns().RestoreAfterRecovery(aosi::MaxEpoch(cluster_lce, local_lse),
                                     local_lse);
  target.set_online(true);
  return Status::OK();
}

uint64_t Cluster::TotalRecords() {
  uint64_t n = 0;
  for (auto& nd : nodes_) n += nd->TotalRecords();
  return n;
}

}  // namespace cubrick::cluster
