// Consistent hashing ring assigning bricks to cluster nodes (paper §V-A:
// "Bids are also used to assign bricks to cluster nodes through the use of
// consistent hashing").
//
// Each node contributes a configurable number of virtual points; a brick is
// owned by the first node clockwise from the hash of its bid. NodesFor
// returns the primary plus the next distinct nodes for replication.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/status.h"

namespace cubrick::cluster {

class HashRing {
 public:
  /// node_idx is 1-based (matching EpochClock); vnodes smooths the
  /// distribution.
  void AddNode(uint32_t node_idx, uint32_t vnodes = 64);

  /// Removes all of a node's virtual points (e.g. a decommissioned node).
  void RemoveNode(uint32_t node_idx);

  /// Primary owner of `key`. Ring must be non-empty.
  uint32_t NodeFor(uint64_t key) const;

  /// The first `count` distinct nodes clockwise from `key`: primary plus
  /// replicas. Returns fewer when the ring has fewer distinct nodes.
  std::vector<uint32_t> NodesFor(uint64_t key, size_t count) const;

  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return points_.empty(); }

 private:
  static uint64_t HashPoint(uint32_t node_idx, uint32_t vnode);
  static uint64_t HashKey(uint64_t key);

  std::map<uint64_t, uint32_t> points_;
  std::set<uint32_t> nodes_;
};

}  // namespace cubrick::cluster
