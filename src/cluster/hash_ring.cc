#include "cluster/hash_ring.h"

#include "common/random.h"

namespace cubrick::cluster {

uint64_t HashRing::HashPoint(uint32_t node_idx, uint32_t vnode) {
  uint64_t state = (static_cast<uint64_t>(node_idx) << 32) | vnode;
  return SplitMix64(state);
}

uint64_t HashRing::HashKey(uint64_t key) {
  uint64_t state = key ^ 0x9e3779b97f4a7c15ULL;
  return SplitMix64(state);
}

void HashRing::AddNode(uint32_t node_idx, uint32_t vnodes) {
  CUBRICK_CHECK(node_idx >= 1);
  CUBRICK_CHECK(vnodes >= 1);
  nodes_.insert(node_idx);
  for (uint32_t v = 0; v < vnodes; ++v) {
    points_.emplace(HashPoint(node_idx, v), node_idx);
  }
}

void HashRing::RemoveNode(uint32_t node_idx) {
  nodes_.erase(node_idx);
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == node_idx) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
}

uint32_t HashRing::NodeFor(uint64_t key) const {
  CUBRICK_CHECK(!points_.empty());
  auto it = points_.lower_bound(HashKey(key));
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

std::vector<uint32_t> HashRing::NodesFor(uint64_t key, size_t count) const {
  CUBRICK_CHECK(!points_.empty());
  std::vector<uint32_t> result;
  std::set<uint32_t> seen;
  auto it = points_.lower_bound(HashKey(key));
  const size_t limit = count < nodes_.size() ? count : nodes_.size();
  while (result.size() < limit) {
    if (it == points_.end()) it = points_.begin();
    if (seen.insert(it->second).second) {
      result.push_back(it->second);
    }
    ++it;
  }
  return result;
}

}  // namespace cubrick::cluster
