#include "cluster/node.h"

#include "obs/metrics.h"

namespace cubrick::cluster {

ClusterNode::ClusterNode(uint32_t node_idx, uint32_t num_nodes,
                         NodeOptions options)
    : node_idx_(node_idx), options_(options), txns_(node_idx, num_nodes) {}

Status ClusterNode::CreateCube(std::shared_ptr<const CubeSchema> schema) {
  MutexLock lock(cubes_mutex_);
  const std::string& name = schema->cube_name();
  if (cubes_.count(name) > 0) {
    return Status::AlreadyExists("cube '" + name + "' already exists");
  }
  CubeState state;
  state.table = std::make_unique<Table>(std::move(schema),
                                        options_.shards_per_cube,
                                        options_.threaded_shards);
  if (!options_.data_dir.empty()) {
    state.flusher =
        std::make_unique<persist::FlushManager>(options_.data_dir, name);
  }
  cubes_.emplace(name, std::move(state));
  return Status::OK();
}

Status ClusterNode::DropCube(const std::string& name) {
  MutexLock lock(cubes_mutex_);
  if (cubes_.erase(name) == 0) {
    return Status::NotFound("cube '" + name + "' does not exist");
  }
  return Status::OK();
}

Table* ClusterNode::FindTable(const std::string& name) {
  MutexLock lock(cubes_mutex_);
  auto it = cubes_.find(name);
  return it == cubes_.end() ? nullptr : it->second.table.get();
}

ClusterNode::BeginBroadcastResult ClusterNode::HandleBeginBroadcast(
    aosi::Epoch epoch) {
  // Registration and the pendingTxs snapshot must be one atomic step: a
  // separate PendingTxs() + NoteRemoteBegin() pair leaves a window where
  // the local LCE walks past `epoch` between the two calls.
  BeginBroadcastResult result;
  result.accepted = txns_.RegisterRemoteBegin(epoch, &result.pending);
  return result;
}

bool ClusterNode::HandleRegisterHorizon(aosi::Epoch epoch,
                                        aosi::Epoch horizon) {
  return txns_.RegisterRemoteHorizon(epoch, horizon);
}

Status ClusterNode::HandleAppend(aosi::Epoch epoch, const std::string& cube,
                                 PerBrickBatches&& batches) {
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  return table->Append(epoch, std::move(batches));
}

Status ClusterNode::HandleDelete(aosi::Epoch epoch, const std::string& cube,
                                 const std::vector<FilterClause>& filters) {
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  return table->DeleteWhere(epoch, filters);
}

Status ClusterNode::HandleDeleteCheck(
    const std::string& cube, const std::vector<FilterClause>& filters) {
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  return table->CheckDeleteGranularity(filters);
}

Status ClusterNode::HandleDeleteMark(aosi::Epoch epoch,
                                     const std::string& cube,
                                     const std::vector<FilterClause>& filters) {
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  table->MarkDeleted(epoch, filters);
  return Status::OK();
}

std::vector<ClusterNode::CubeRef> ClusterNode::SnapshotCubes() {
  MutexLock lock(cubes_mutex_);
  std::vector<CubeRef> cubes;
  cubes.reserve(cubes_.size());
  for (const auto& [name, state] : cubes_) {
    cubes.push_back({state.table.get(), state.flusher.get()});
  }
  return cubes;
}

void ClusterNode::RollbackData(aosi::Epoch victim) {
  // Snapshot-then-release (see SnapshotCubes): Table::Rollback blocks on
  // shard-queue backpressure and must not run under cubes_mutex_.
  for (const CubeRef& cube : SnapshotCubes()) {
    cube.table->Rollback(victim);
  }
}

Status ClusterNode::HandleFinish(aosi::Epoch epoch,
                                 const aosi::EpochSet& deps, bool committed) {
  // How far this node's clock has run past the finishing transaction when
  // its finish message arrives — large values mean slow commit propagation
  // (e.g. high simulated latency or redelivery catch-up after an outage).
  static obs::Gauge* finish_lag =
      obs::MetricsRegistry::Global().GetGauge("cluster.remote_finish_lag");
  finish_lag->Set(static_cast<int64_t>(txns_.EC()) -
                  static_cast<int64_t>(epoch));
  txns_.NoteRemoteDeps(epoch, deps);
  txns_.NoteRemoteFinish(epoch, committed);
  return Status::OK();
}

Result<QueryResult> ClusterNode::HandleScan(
    const std::string& cube, const aosi::Snapshot& snapshot, ScanMode mode,
    const Query& query, const std::function<bool(Bid)>& brick_filter) {
  Table* table = FindTable(cube);
  if (table == nullptr) {
    return Status::NotFound("cube '" + cube + "' does not exist");
  }
  return table->Scan(snapshot, mode, query, brick_filter);
}

PurgeStats ClusterNode::HandlePurge(PurgeMode mode) {
  const aosi::Epoch lse = txns_.LSE();
  PurgeStats total;
  // Purge outside cubes_mutex_ (see SnapshotCubes): brick rewrites run on
  // the shard queues and can block on backpressure.
  for (const CubeRef& cube : SnapshotCubes()) {
    const PurgeStats stats = cube.table->Purge(lse, mode);
    total.bricks_examined += stats.bricks_examined;
    total.bricks_rewritten += stats.bricks_rewritten;
    total.bricks_erased += stats.bricks_erased;
    total.records_removed += stats.records_removed;
  }
  return total;
}

Status ClusterNode::Checkpoint(aosi::Epoch to) {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("node has no data_dir");
  }
  // Flush outside cubes_mutex_ (see SnapshotCubes): a flush round walks
  // every brick through the shard queues and can block on backpressure.
  for (const CubeRef& cube : SnapshotCubes()) {
    const aosi::Epoch from = cube.flusher->ManifestLse();
    if (aosi::AtOrBefore(to, from)) continue;
    auto stats = cube.flusher->FlushRound(cube.table, from, to);
    if (!stats.ok()) return stats.status();
  }
  return Status::OK();
}

Result<aosi::Epoch> ClusterNode::RecoverLocal() {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("node has no data_dir");
  }
  // Replay outside cubes_mutex_ (see SnapshotCubes): segment replay and
  // truncation push work through the shard queues and can block on
  // backpressure.
  const std::vector<CubeRef> cubes = SnapshotCubes();
  aosi::Epoch min_lse = aosi::kEpochMax;
  bool any = false;
  for (const CubeRef& cube : cubes) {
    auto result = cube.flusher->Recover(cube.table);
    if (!result.ok()) return result.status();
    any = true;
    min_lse = aosi::MinEpoch(min_lse, result->lse);
  }
  if (!any || aosi::SameEpoch(min_lse, aosi::kEpochMax)) return aosi::kNoEpoch;
  for (const CubeRef& cube : cubes) {
    cube.table->TruncateAfter(min_lse);
  }
  return min_lse;
}

aosi::Epoch ClusterNode::MinFlushedLse() {
  if (options_.data_dir.empty()) return aosi::kEpochMax;
  MutexLock lock(cubes_mutex_);
  aosi::Epoch min_lse = aosi::kEpochMax;
  for (auto& [name, state] : cubes_) {
    min_lse = aosi::MinEpoch(min_lse, state.flusher->ManifestLse());
  }
  return min_lse;
}

uint64_t ClusterNode::TotalRecords() {
  MutexLock lock(cubes_mutex_);
  uint64_t n = 0;
  for (auto& [name, state] : cubes_) n += state.table->TotalRecords();
  return n;
}

size_t ClusterNode::HistoryMemoryUsage() {
  MutexLock lock(cubes_mutex_);
  size_t bytes = 0;
  for (auto& [name, state] : cubes_) {
    bytes += state.table->HistoryMemoryUsage();
  }
  return bytes;
}

size_t ClusterNode::DataMemoryUsage() {
  MutexLock lock(cubes_mutex_);
  size_t bytes = 0;
  for (auto& [name, state] : cubes_) bytes += state.table->DataMemoryUsage();
  return bytes;
}

}  // namespace cubrick::cluster
