#include "obs/span.h"

#include "common/stopwatch.h"

namespace cubrick::obs {

int64_t NowMicros() {
  // Monotonic base shared by all spans; first use anchors t=0.
  static const Stopwatch* clock = new Stopwatch();
  return clock->ElapsedMicros();
}

std::vector<SpanRecord> SpanRing::Collect() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > kCapacity ? end - kCapacity : 0;
  std::vector<SpanRecord> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket % kCapacity];
    if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2) {
      continue;  // unwritten, mid-write, or already overwritten
    }
    SpanRecord rec;
    rec.name = slot.span_name.load(std::memory_order_relaxed);
    rec.start_us = slot.span_start.load(std::memory_order_relaxed);
    rec.dur_us = slot.span_dur.load(std::memory_order_relaxed);
    // Validate the slot was not reused while we copied it out.
    if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2) continue;
    out.push_back(rec);
  }
  return out;
}

void SpanRing::ResetForTest() {
  for (auto& slot : slots_) {
    slot.seq.store(0, std::memory_order_release);
    slot.span_name.store(nullptr, std::memory_order_release);
    slot.span_start.store(0, std::memory_order_release);
    slot.span_dur.store(0, std::memory_order_release);
  }
  next_.store(0, std::memory_order_release);
}

SpanRing& GlobalSpanRing() {
  static SpanRing* ring = new SpanRing();
  return *ring;
}

int64_t ObsSpan::Finish() {
  if (done_) return 0;
  done_ = true;
  const int64_t dur = NowMicros() - start_us_;
  GlobalSpanRing().Record(name_, start_us_, dur);
  if (latency_us_ != nullptr) {
    latency_us_->Record(static_cast<uint64_t>(dur < 0 ? 0 : dur));
  }
  return dur;
}

}  // namespace cubrick::obs
