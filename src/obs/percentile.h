// Shared percentile math for the two latency representations:
//
//  * obs::Histogram (fixed power-of-two buckets, lock-free, unbounded
//    volume) — production instrumentation; and
//  * obs::LatencyRecorder (exact per-sample storage, single-threaded) —
//    the bench harness, where exact percentiles matter more than cost.
//
// Both resolve "the p-th percentile of n samples" through PercentileRank so
// the two representations agree on rank semantics (nearest-rank over a
// zero-based index, matching the harness behaviour the fig5–fig10 drivers
// have always reported).

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cubrick::obs {

/// Zero-based index of the sample holding the p-th percentile (p in
/// [0, 100]) among `count` sorted samples: round(p/100 * (count-1)).
/// Requires count > 0.
inline size_t PercentileRank(size_t count, double p) {
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  return static_cast<size_t>(rank + 0.5);
}

/// Collects exact latency samples and reports percentiles, as used for the
/// paper's load-latency distribution (Fig 5) and the other bench drivers.
/// Not thread-safe; for concurrent recording use obs::Histogram.
class LatencyRecorder {
 public:
  void Record(int64_t micros) { samples_.push_back(micros); }

  size_t count() const { return samples_.size(); }

  /// Percentile in [0, 100]. Returns 0 when no samples were recorded.
  int64_t Percentile(double p) {
    if (samples_.empty()) return 0;
    std::sort(samples_.begin(), samples_.end());
    return samples_[PercentileRank(samples_.size(), p)];
  }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    int64_t sum = 0;
    for (int64_t s : samples_) sum += s;
    return static_cast<double>(sum) / static_cast<double>(samples_.size());
  }

  int64_t Max() const {
    int64_t mx = 0;
    for (int64_t s : samples_) mx = std::max(mx, s);
    return mx;
  }

  void Clear() { samples_.clear(); }

 private:
  std::vector<int64_t> samples_;
};

}  // namespace cubrick::obs
