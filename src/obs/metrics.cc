#include "obs/metrics.h"

#include "obs/percentile.h"

namespace cubrick::obs {

namespace internal {
std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
}  // namespace internal

bool Enabled() {
  return internal::EnabledFlag().load(std::memory_order_acquire);
}

void SetEnabled(bool enabled) {
  internal::EnabledFlag().store(enabled, std::memory_order_release);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kNumBuckets - 1) return ~static_cast<uint64_t>(0);
  // Bucket i covers [2^(i-1), 2^i); inclusive upper bound is 2^i - 1.
  return (static_cast<uint64_t>(1) << i) - 1;
}

Histogram::Snapshot Histogram::Read() const {
  Snapshot snap;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_acquire);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_acquire);
  return snap;
}

uint64_t Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  const size_t rank = PercentileRank(count, p);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative > rank) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Read();
  return snap;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->ResetForTest();
  for (auto& [name, g] : gauges_) g->ResetForTest();
  for (auto& [name, h] : histograms_) h->ResetForTest();
}

}  // namespace cubrick::obs
