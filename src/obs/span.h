// Lightweight trace spans: phase timings recorded into a bounded,
// TSan-clean ring buffer.
//
// A span is (name, start, duration). The ring holds the most recent
// kCapacity spans; writers claim a slot with one fetch_add ticket and
// publish fields through per-slot sequence numbers (a seqlock built purely
// from atomics, so ThreadSanitizer sees every access). Readers validate the
// sequence before and after reading a slot and drop slots that were
// overwritten mid-read — collection is lossy by design, never blocking.
//
// Span names must be string literals (or otherwise static-lifetime): the
// ring stores the pointer, not a copy.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace cubrick::obs {

/// Microseconds since the process's observability clock started (first use).
int64_t NowMicros();

struct SpanRecord {
  const char* name = nullptr;
  int64_t start_us = 0;
  int64_t dur_us = 0;
};

/// Bounded MPMC span store. Writers never block or spin; readers are
/// best-effort (a slot overwritten during the read is skipped).
class SpanRing {
 public:
  static constexpr size_t kCapacity = 4096;

  void Record(const char* name, int64_t start_us, int64_t dur_us) {
    if (!internal::EnabledRelaxed(internal::EnabledFlag())) return;
    const uint64_t ticket = next_.fetch_add(1, std::memory_order_acq_rel);
    Slot& slot = slots_[ticket % kCapacity];
    // Odd sequence = slot is being written; readers back off.
    slot.seq.store(2 * ticket + 1, std::memory_order_release);
    slot.span_name.store(name, std::memory_order_relaxed);
    slot.span_start.store(start_us, std::memory_order_relaxed);
    slot.span_dur.store(dur_us, std::memory_order_relaxed);
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
  }

  /// Copies out every consistent slot, oldest first. Lossy under heavy
  /// concurrent writes (by design).
  std::vector<SpanRecord> Collect() const;

  /// Total spans ever recorded (monotonic; may exceed kCapacity).
  uint64_t TotalRecorded() const {
    return next_.load(std::memory_order_acquire);
  }

  void ResetForTest();

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written
    std::atomic<const char*> span_name{nullptr};
    std::atomic<int64_t> span_start{0};
    std::atomic<int64_t> span_dur{0};
  };

  std::atomic<uint64_t> next_{0};
  std::array<Slot, kCapacity> slots_{};
};

/// The process-wide span ring (parallel to MetricsRegistry::Global()).
SpanRing& GlobalSpanRing();

/// RAII phase timer: records a span into the global ring on destruction and
/// optionally publishes the duration into a latency histogram.
///
///   obs::ObsSpan span("query.scan", metrics.latency_us);
///
/// When metrics are disabled the constructor skips the clock read entirely.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name, Histogram* latency_us = nullptr)
      : name_(name), latency_us_(latency_us) {
    if (internal::EnabledRelaxed(internal::EnabledFlag())) {
      start_us_ = NowMicros();
    } else {
      done_ = true;
    }
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Ends the span early and returns its duration in microseconds (0 when
  /// metrics are disabled or the span already finished).
  int64_t Finish();

  ~ObsSpan() { Finish(); }

 private:
  const char* name_;
  Histogram* latency_us_;
  int64_t start_us_ = 0;
  bool done_ = false;
};

}  // namespace cubrick::obs
