// Lock-free observability: process-wide registry of named counters, gauges
// and fixed-bucket histograms.
//
// Design constraints (see docs/OBSERVABILITY.md for the full policy):
//
//  * Hot-path writes are wait-free: a single atomic RMW (or store) with
//    std::memory_order_relaxed. Instruments are pure monotonic tallies —
//    nothing is published *through* them, so relaxed ordering is sufficient
//    and the aosi_lint atomic-memory-order rule carves out exactly this
//    idiom for src/obs (fetch_add/fetch_sub; everything else still needs a
//    `relaxed:` justification comment).
//  * Snapshot reads use std::memory_order_acquire so a reader that observes
//    a count also observes everything the writer published *before* the
//    side effects being counted (useful when correlating with logs).
//  * Registration (name -> instrument) takes a Mutex, but returns a stable
//    pointer: callers resolve once (constructor / function-local static)
//    and never touch the map again. Instruments are never deallocated.
//  * When metrics are disabled (obs::SetEnabled(false)) every write is a
//    relaxed flag load plus an untaken branch — near-zero cost.
//
// Histogram snapshots are internally consistent by construction: the count
// is derived as the sum of the bucket reads in the same snapshot, so
// `count == sum(buckets)` holds in every exposition even while writers are
// concurrently recording. See MetricsRegistry::Snapshot().

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace cubrick::obs {

/// Global kill switch. Checked (relaxed) by every instrument write; when
/// false, Add/Set/Record return immediately. Snapshots still work.
bool Enabled();
void SetEnabled(bool enabled);

namespace internal {
inline bool EnabledRelaxed(const std::atomic<bool>& flag) {
  return flag.load(std::memory_order_relaxed);
}
/// The flag behind Enabled()/SetEnabled().
std::atomic<bool>& EnabledFlag();
}  // namespace internal

/// Monotonically increasing 64-bit event tally.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!internal::EnabledRelaxed(internal::EnabledFlag())) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const { return v_.load(std::memory_order_acquire); }

  /// Test/bench-only: rewinds the tally (counters are otherwise monotonic).
  void ResetForTest() { v_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-writer-wins signed level (queue depth, epoch lag, ...).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!internal::EnabledRelaxed(internal::EnabledFlag())) return;
    v_.store(v, std::memory_order_release);
  }

  void Add(int64_t n) {
    if (!internal::EnabledRelaxed(internal::EnabledFlag())) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }

  int64_t Value() const { return v_.load(std::memory_order_acquire); }

  void ResetForTest() { v_.store(0, std::memory_order_release); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram of non-negative values (canonically microseconds).
///
/// Buckets are powers of two: bucket i counts values in [2^(i-1), 2^i)
/// (bucket 0 counts zero, the last bucket is open-ended). Recording is one
/// relaxed fetch_add on the bucket plus one on the running sum; there is no
/// per-sample storage, so the cost is flat regardless of volume.
class Histogram {
 public:
  /// 0, [1,2), [2,4), ... [2^30, +inf) — covers ~17 minutes in micros.
  static constexpr size_t kNumBuckets = 32;

  static size_t BucketIndex(uint64_t v) {
    if (v == 0) return 0;
    const size_t bits = 64 - static_cast<size_t>(__builtin_clzll(v));
    return bits < kNumBuckets ? bits : kNumBuckets - 1;
  }

  /// Inclusive upper bound of bucket i (uint64 max for the overflow bucket).
  static uint64_t BucketUpperBound(size_t i);

  void Record(uint64_t v) {
    if (!internal::EnabledRelaxed(internal::EnabledFlag())) return;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  void ResetForTest() {
    for (auto& b : buckets_) b.store(0, std::memory_order_release);
    sum_.store(0, std::memory_order_release);
  }

  /// Acquire-reads every bucket; see HistogramSnapshot for derived stats.
  struct Snapshot;
  Snapshot Read() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of a Histogram. `count` is derived from the bucket
/// reads themselves, so count == sum of buckets[] holds unconditionally —
/// this is the consistency guarantee the exporters (and the hammer test)
/// rely on under concurrent writers.
struct Histogram::Snapshot {
  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// Upper bound of the bucket containing the p-th percentile sample
  /// (nearest-rank over the bucketed distribution); 0 when empty.
  uint64_t Percentile(double p) const;
};

using HistogramSnapshot = Histogram::Snapshot;

/// Full-registry snapshot, suitable for export (obs/export.h).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Name -> instrument registry. Get* registers on first use and returns a
/// pointer that stays valid (and lock-free to write through) for the
/// lifetime of the process.
///
/// Naming convention: "subsystem.metric" with unit suffixes for time
/// ("query.latency_us"); see docs/OBSERVABILITY.md for the catalog.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Consistent point-in-time copy: each instrument is read with acquire
  /// loads; histogram counts are derived from their own bucket reads.
  MetricsSnapshot Snapshot() const;

  /// Test/bench-only: zeroes every registered instrument. Registrations
  /// (and the pointers handed out) stay valid.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable Mutex mutex_;
  // std::map: node-based, so instrument addresses are stable forever.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace cubrick::obs
