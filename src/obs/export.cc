#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace cubrick::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendHistogramJson(const std::string& name, const HistogramSnapshot& h,
                         std::string* out) {
  *out += "\"" + JsonEscape(name) + "\": {";
  *out += "\"count\": " + std::to_string(h.count);
  *out += ", \"sum\": " + std::to_string(h.sum);
  *out += ", \"mean\": " + FormatDouble(h.Mean());
  *out += ", \"p50\": " + std::to_string(h.Percentile(50));
  *out += ", \"p95\": " + std::to_string(h.Percentile(95));
  *out += ", \"p99\": " + std::to_string(h.Percentile(99));
  *out += ", \"max\": " + std::to_string(h.Percentile(100));
  *out += ", \"buckets\": [";
  bool first = true;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) *out += ", ";
    first = false;
    const uint64_t ub = Histogram::BucketUpperBound(i);
    const bool overflow = i == Histogram::kNumBuckets - 1;
    *out += "[" + (overflow ? std::string("-1") : std::to_string(ub)) + ", " +
            std::to_string(h.buckets[i]) + "]";
  }
  *out += "]}";
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "cubrick_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[i] == 0 && i != Histogram::kNumBuckets - 1) continue;
      cumulative += h.buckets[i];
      const bool overflow = i == Histogram::kNumBuckets - 1;
      const std::string le =
          overflow ? "+Inf" : std::to_string(Histogram::BucketUpperBound(i));
      out += pname + "_bucket{le=\"" + le +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += pname + "_sum " + std::to_string(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string ExportJson(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",\n    ";
    first = false;
    AppendHistogramJson(name, h, &out);
  }
  out += "}\n}\n";
  return out;
}

}  // namespace cubrick::obs
