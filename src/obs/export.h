// Exposition formats for a MetricsSnapshot.
//
// Both exporters operate on an immutable MetricsSnapshot, so every line of
// an exposition comes from the same point-in-time copy; histogram counts
// equal the sum of their bucket lines by construction (see obs/metrics.h).

#pragma once

#include <string>

#include "obs/metrics.h"

namespace cubrick::obs {

/// Prometheus text exposition (version 0.0.4 style). Metric names are
/// prefixed with "cubrick_" and dots become underscores:
///
///   # TYPE cubrick_aosi_pending_txs gauge
///   cubrick_aosi_pending_txs 3
///   # TYPE cubrick_query_latency_us histogram
///   cubrick_query_latency_us_bucket{le="1"} 0
///   ...
///   cubrick_query_latency_us_bucket{le="+Inf"} 45
///   cubrick_query_latency_us_sum 12345
///   cubrick_query_latency_us_count 45
std::string ExportPrometheus(const MetricsSnapshot& snap);

/// JSON snapshot:
///
///   {"counters": {"aosi.txn.commit_total": 12, ...},
///    "gauges": {"aosi.pending_txs": 3, ...},
///    "histograms": {"query.latency_us":
///        {"count": 45, "sum": 12345, "mean": 274.3,
///         "p50": 255, "p95": 511, "p99": 1023, "max": 2047,
///         "buckets": [[1, 0], [3, 2], ...]}}}   // [upper_bound, count]
///
/// Bucket entries with zero count are omitted; the overflow bucket's upper
/// bound is emitted as -1.
std::string ExportJson(const MetricsSnapshot& snap);

/// "cubrick_" + name with every non-[a-zA-Z0-9_] character replaced by '_'.
std::string PrometheusName(const std::string& name);

}  // namespace cubrick::obs
