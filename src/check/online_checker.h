// Online SI violation checker (docs/CHECKING.md, "Online checking").
//
// The offline oracle (si_oracle.h) proves snapshot isolation after the
// fact, by replaying a finished workload. This checker validates SI *while
// the system runs*, in the style of online timestamp-based isolation
// checking (PAPERS.md, arXiv 2504.01477): it samples live transactions
// through the aosi::CheckerHook points, records what each sampled scan
// actually observed per brick into a bounded lock-free ring, and
// re-derives the expected visibility from the same epoch metadata on a
// background validator — no stop-the-world, no coordination with the
// transactions being checked.
//
// Violation classes:
//   stale_read       — a run outside the snapshot (uncommitted dep, or a
//                      later epoch) contributed rows to a scan.
//   missing_visible  — a fully in-snapshot run contributed fewer rows than
//                      the §III-C3 visibility rule admits.
//   non_repeatable   — the same (snapshot, brick, history version) was
//                      observed twice with different visible totals.
//   lost_horizon     — LSE advanced past a live sampled snapshot's
//                      horizon, or a remote begin was silently dropped
//                      (NoteRemoteBegin) after LCE passed it — either way
//                      purge may destroy history a snapshot still needs.
//
// Everything publishes into the obs metrics registry under check.online.*
// and the "check.validate" trace span; see docs/OBSERVABILITY.md.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "aosi/checker_hook.h"
#include "aosi/epoch.h"
#include "common/mutex.h"
#include "obs/metrics.h"

namespace cubrick::check {

struct OnlineCheckerOptions {
  /// Sampling rate out of 1000 (1000 = every transaction). The decision is
  /// a pure hash of the snapshot epoch, so a replayed seed samples the
  /// same transactions regardless of thread interleaving.
  uint32_t sample_permille = 1000;
  /// Ring capacity in records; rounded up to a power of two. When the
  /// validator falls behind, writers drop (counted, never blocking).
  size_t ring_capacity = 1024;
  /// Bound on the (snapshot, brick, history) fingerprint table used for
  /// repeatability checking; oldest entries are evicted FIFO.
  size_t max_fingerprints = 4096;
  /// Violation descriptions retained for inspection (counters are exact
  /// regardless).
  size_t max_violations = 64;
  /// Spawn the background validator thread on Install(). Tests that want
  /// deterministic validation points disable this and call DrainForTest().
  bool background_validation = true;
};

struct ViolationRecord {
  enum class Kind : uint8_t {
    kStaleRead,
    kMissingVisible,
    kNonRepeatable,
    kLostHorizon,
  };
  Kind kind;
  std::string detail;
};

/// "stale_read", "missing_visible", ... (metric suffixes and log labels).
std::string ViolationKindName(ViolationRecord::Kind kind);

/// One sampled (snapshot, brick) visibility observation, sized for the
/// ring: fixed arrays, no heap. Deps and runs beyond the bounds are
/// dropped and flagged; the validator weakens its assertions accordingly
/// instead of guessing.
struct ScanSample {
  static constexpr size_t kMaxDeps = 8;
  /// Mirrors the producer-side bound: call sites never materialize more
  /// runs than the sample can hold (aosi::kMaxObservedRuns).
  static constexpr size_t kMaxRuns = aosi::kMaxObservedRuns;

  aosi::Epoch snapshot_epoch = aosi::kNoEpoch;
  uint32_t num_deps = 0;
  uint32_t num_runs = 0;
  bool deps_truncated = false;
  bool runs_truncated = false;
  aosi::Epoch deps[kMaxDeps] = {};
  /// Hash of the FULL deps set (not just the copied prefix), so two
  /// snapshots that differ only beyond the bound cannot alias in the
  /// repeatability check.
  uint64_t deps_fingerprint = 0;
  uint64_t bid = 0;
  uint64_t history_version = 0;
  uint64_t visible_total = 0;
  aosi::ObservedRun runs[kMaxRuns] = {};
};

/// Bounded MPMC ring (Vyukov-style: per-cell sequence numbers, one CAS per
/// push/pop). Push drops on full rather than blocking — the checker must
/// never backpressure the transactions it watches.
class SampleRing {
 public:
  explicit SampleRing(size_t capacity);

  bool TryPush(const ScanSample& sample);
  bool TryPop(ScanSample* out);

  /// Approximate records currently queued (validation lag).
  size_t ApproxDepth() const;

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    ScanSample value;
  };

  size_t mask_;
  std::vector<Cell> cells_;
  std::atomic<uint64_t> enqueue_pos_{0};
  std::atomic<uint64_t> dequeue_pos_{0};
};

class OnlineChecker : public aosi::CheckerHook {
 public:
  explicit OnlineChecker(OnlineCheckerOptions options = {});
  ~OnlineChecker() override;

  OnlineChecker(const OnlineChecker&) = delete;
  OnlineChecker& operator=(const OnlineChecker&) = delete;

  /// Registers this checker as the process-wide hook and (by default)
  /// starts the background validator.
  void Install();

  /// Removes the hook, stops the validator and drains the ring so every
  /// record pushed before this call is validated.
  void Uninstall();

  // --- aosi::CheckerHook ---------------------------------------------------

  bool ShouldSample(aosi::Epoch snapshot_epoch) const override;
  void OnBegin(const aosi::Txn& txn) override;
  void OnFinish(const aosi::Txn& txn, bool committed) override;
  void OnScanObservation(const aosi::ScanObservation& obs) override;
  void OnLseAdvance(aosi::Epoch lse) override;
  void OnStaleRemoteBegin(aosi::Epoch epoch, aosi::Epoch lce,
                          bool rejected) override;

  // --- Results -------------------------------------------------------------

  /// Synchronously validates everything currently in the ring (tests; also
  /// used by Uninstall for the final drain).
  void DrainForTest();

  uint64_t ViolationCount() const;
  std::vector<ViolationRecord> Violations() const;

  /// Sampled transactions currently believed active (begin seen, finish
  /// not). Zero once a workload has quiesced — a leftover entry means a
  /// begin/finish hook imbalance, which would turn into false
  /// lost_horizon reports.
  size_t ActiveHorizonCountForTest() const;

  const OnlineCheckerOptions& options() const { return options_; }

 private:
  struct Instruments {
    obs::Counter* sampled_txns;
    obs::Counter* observations;
    obs::Counter* ring_drops;
    obs::Counter* validated;
    obs::Counter* violations;
    obs::Counter* stale_reads;
    obs::Counter* missing_visible;
    obs::Counter* non_repeatable;
    obs::Counter* lost_horizon;
    obs::Counter* stale_begins;
    obs::Counter* truncated;
    obs::Gauge* validation_lag;
  };

  void ValidatorLoop();
  /// Pops and validates until the ring is empty; returns records validated.
  size_t DrainOnce();
  void ValidateSample(const ScanSample& sample);
  void RecordViolation(ViolationRecord::Kind kind, std::string detail);

  const OnlineCheckerOptions options_;
  Instruments metrics_;
  SampleRing ring_;

  // Active sampled transactions (epoch -> effective horizon; multimap
  // because RO snapshots share the LCE epoch) for the LSE-vs-horizon
  // cross-check. The effective horizon ignores deps at or below
  // max_lse_seen_ — stale draft epochs that abort without writing (see
  // OnBegin) — and advances are judged only when they set a new LSE
  // high-water mark.
  mutable Mutex state_mutex_;
  std::unordered_multimap<aosi::Epoch, aosi::Epoch> active_horizons_
      GUARDED_BY(state_mutex_);
  aosi::Epoch max_lse_seen_ GUARDED_BY(state_mutex_) = aosi::kNoEpoch;
  /// (snapshot, brick, history) fingerprint -> visible_total, with FIFO
  /// eviction order, for the repeatability check.
  std::unordered_map<uint64_t, uint64_t> seen_totals_
      GUARDED_BY(state_mutex_);
  std::vector<uint64_t> seen_order_ GUARDED_BY(state_mutex_);
  size_t seen_evict_next_ GUARDED_BY(state_mutex_) = 0;
  std::vector<ViolationRecord> violations_ GUARDED_BY(state_mutex_);
  uint64_t violation_count_ GUARDED_BY(state_mutex_) = 0;

  Mutex validator_mutex_;
  CondVar validator_cv_;
  bool stop_validator_ GUARDED_BY(validator_mutex_) = false;
  std::thread validator_thread_;
  bool installed_ = false;
};

}  // namespace cubrick::check
