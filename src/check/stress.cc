#include "check/stress.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "check/si_oracle.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/random.h"
#include "cubrick/database.h"
#include "query/executor.h"

namespace cubrick::check {
namespace {

namespace fs = std::filesystem;

// The stress cube: two integer dimensions (8 x 2 = 16 bricks) and one
// integer metric. Small enough that every brick sees appends, deletes and
// purges within a short run; large enough that filters and group-bys
// discriminate.
constexpr char kCube[] = "stress";
constexpr uint64_t kCardB = 32, kRangeB = 4;
constexpr uint64_t kCardC = 8, kRangeC = 4;

std::vector<DimensionDef> StressDimensions() {
  return {{"b", kCardB, kRangeB, false}, {"c", kCardC, kRangeC, false}};
}

std::vector<MetricDef> StressMetrics() {
  return {{"v", DataType::kInt64}};
}

std::vector<Record> RandomRecords(Random& rng) {
  std::vector<Record> rows;
  const uint64_t n = 1 + rng.Uniform(5);
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(rng.Uniform(kCardB)),
                    static_cast<int64_t>(rng.Uniform(kCardC)),
                    static_cast<int64_t>(rng.Uniform(100))});
  }
  return rows;
}

Query RandomQuery(Random& rng) {
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kCount, 0},
            {AggSpec::Fn::kMin, 0},
            {AggSpec::Fn::kMax, 0}};
  const uint64_t num_filters = rng.Uniform(3);
  for (uint64_t i = 0; i < num_filters; ++i) {
    FilterClause f;
    f.dim = rng.Uniform(2);
    const uint64_t card = f.dim == 0 ? kCardB : kCardC;
    switch (rng.Uniform(3)) {
      case 0:
        f.op = FilterClause::Op::kEq;
        f.values = {rng.Uniform(card)};
        break;
      case 1:
        f.op = FilterClause::Op::kRange;
        f.range_lo = rng.Uniform(card);
        f.range_hi = f.range_lo + rng.Uniform(card - f.range_lo);
        break;
      default:
        f.op = FilterClause::Op::kIn;
        for (uint64_t v = 0, nv = 1 + rng.Uniform(3); v < nv; ++v) {
          f.values.push_back(rng.Uniform(card));
        }
        break;
    }
    q.filters.push_back(std::move(f));
  }
  switch (rng.Uniform(4)) {
    case 1:
      q.group_by = {0};
      break;
    case 2:
      q.group_by = {1};
      break;
    case 3:
      q.group_by = {0, 1};
      break;
    default:
      break;
  }
  return q;
}

std::vector<FilterClause> RandomDeleteFilters(Random& rng) {
  const double dice = rng.NextDouble();
  std::vector<FilterClause> filters;
  if (dice < 0.15) return filters;  // empty predicate: delete the whole cube
  FilterClause f;
  f.op = FilterClause::Op::kRange;
  if (dice < 0.80) {
    // Range-aligned on one dimension: always partition-granular.
    f.dim = rng.Uniform(2);
    const uint64_t range = f.dim == 0 ? kRangeB : kRangeC;
    const uint64_t ranges = (f.dim == 0 ? kCardB : kCardC) / range;
    f.range_lo = range * rng.Uniform(ranges);
    f.range_hi = f.range_lo + range - 1;
  } else {
    // Deliberately misaligned: rejected whenever it partially covers a
    // materialized brick (exercises the granularity check under load).
    f.dim = 0;
    f.range_lo = rng.Uniform(kCardB - 1);
    f.range_hi = f.range_lo + 1;
  }
  filters.push_back(std::move(f));
  return filters;
}

std::string QueryToString(const Query& q) {
  std::ostringstream out;
  out << "filters=[";
  for (size_t i = 0; i < q.filters.size(); ++i) {
    const FilterClause& f = q.filters[i];
    if (i > 0) out << ", ";
    out << "dim" << f.dim;
    switch (f.op) {
      case FilterClause::Op::kEq:
        out << "==" << f.values[0];
        break;
      case FilterClause::Op::kRange:
        out << " in [" << f.range_lo << "," << f.range_hi << "]";
        break;
      case FilterClause::Op::kIn:
        out << " in {";
        for (size_t v = 0; v < f.values.size(); ++v) {
          out << (v > 0 ? "," : "") << f.values[v];
        }
        out << "}";
        break;
    }
  }
  out << "] group_by={";
  for (size_t i = 0; i < q.group_by.size(); ++i) {
    out << (i > 0 ? "," : "") << q.group_by[i];
  }
  out << "}";
  return out.str();
}

std::string FiltersToString(const std::vector<FilterClause>& filters) {
  Query q;
  q.filters = filters;
  return QueryToString(q);
}

/// Engine-side covered-brick collection: exactly the predicate
/// Table::MarkDeleted applies. Must run with the stress driver's structure
/// lock held exclusively so the set cannot change before the mark.
void CollectCoveredBricks(Table* table,
                          const std::vector<FilterClause>& filters,
                          std::set<Bid>* out) {
  Query probe;
  probe.filters = filters;
  table->VisitBricks([&](const Brick& brick) {
    if (brick.num_records() > 0 && BrickCoveredByFilters(brick, probe)) {
      out->insert(brick.bid());
    }
  });
}

// --- System-under-test adapters -------------------------------------------

/// A transaction handle valid for either mode.
struct SutTxn {
  aosi::Txn local;
  cluster::DistTxn dist;
  bool is_cluster = false;

  const aosi::Txn& txn() const { return is_cluster ? dist.txn : local; }
  aosi::Epoch epoch() const { return txn().epoch; }
  aosi::Snapshot snapshot() const { return txn().snapshot(); }
};

class SutAdapter {
 public:
  virtual ~SutAdapter() = default;
  virtual Status BeginRw(Random& rng, SutTxn* out) = 0;
  virtual void BeginRo(Random& rng, SutTxn* out) = 0;
  virtual Status Append(SutTxn* t, const std::vector<Record>& rows) = 0;
  virtual Status Delete(SutTxn* t,
                        const std::vector<FilterClause>& filters) = 0;
  virtual Status Commit(SutTxn* t) = 0;
  /// Physical rollback plus timestamp finalization.
  virtual Status Abort(SutTxn* t) = 0;
  virtual void EndRo(SutTxn* t) = 0;
  virtual Result<QueryResult> RunQuery(SutTxn* t, const Query& q) = 0;
  virtual std::vector<Bid> CoveredBricks(
      const std::vector<FilterClause>& filters) = 0;
  /// Purge / LSE advance / checkpoint step. Caller holds the structure lock
  /// shared.
  virtual Status Maintenance(Random& rng, StressReport* counters) = 0;
};

class SingleNodeSut : public SutAdapter {
 public:
  SingleNodeSut(Database* db, bool with_persistence)
      : db_(db), with_persistence_(with_persistence) {}

  Status BeginRw(Random&, SutTxn* out) override {
    out->local = db_->Begin();
    return Status::OK();
  }

  void BeginRo(Random&, SutTxn* out) override {
    out->local = db_->BeginReadOnly();
  }

  Status Append(SutTxn* t, const std::vector<Record>& rows) override {
    return db_->LoadIn(t->local, kCube, rows);
  }

  Status Delete(SutTxn* t,
                const std::vector<FilterClause>& filters) override {
    return db_->DeletePartitionsIn(t->local, kCube, filters);
  }

  Status Commit(SutTxn* t) override { return db_->Commit(t->local); }
  Status Abort(SutTxn* t) override { return db_->Rollback(t->local); }
  void EndRo(SutTxn* t) override { db_->txns().EndReadOnly(t->local); }

  Result<QueryResult> RunQuery(SutTxn* t, const Query& q) override {
    return db_->QueryIn(t->local, kCube, q);
  }

  std::vector<Bid> CoveredBricks(
      const std::vector<FilterClause>& filters) override {
    std::set<Bid> bids;
    CollectCoveredBricks(db_->FindTable(kCube), filters, &bids);
    return {bids.begin(), bids.end()};
  }

  Status Maintenance(Random& rng, StressReport* counters) override {
    if (with_persistence_) {
      if (rng.OneIn(2)) {
        auto lse = db_->Checkpoint();
        if (!lse.ok()) return lse.status();
        ++counters->checkpoints;
      } else {
        db_->PurgeAll();
      }
    } else {
      // Diskless deployment: durability is replication's problem (§III-D);
      // LSE may chase LCE directly, which is what makes purge effective.
      db_->txns().TryAdvanceLSE(db_->txns().LCE());
      db_->PurgeAll();
    }
    return Status::OK();
  }

 private:
  Database* db_;
  const bool with_persistence_;
};

class ClusterSut : public SutAdapter {
 public:
  ClusterSut(cluster::Cluster* cluster, bool with_persistence)
      : cluster_(cluster), with_persistence_(with_persistence) {}

  Status BeginRw(Random& rng, SutTxn* out) override {
    out->is_cluster = true;
    auto txn = cluster_->BeginReadWrite(RandomCoordinator(rng));
    if (!txn.ok()) return txn.status();
    out->dist = *txn;
    return Status::OK();
  }

  void BeginRo(Random& rng, SutTxn* out) override {
    out->is_cluster = true;
    out->dist = cluster_->BeginReadOnly(RandomCoordinator(rng));
  }

  Status Append(SutTxn* t, const std::vector<Record>& rows) override {
    return cluster_->Append(&t->dist, kCube, rows);
  }

  Status Delete(SutTxn* t,
                const std::vector<FilterClause>& filters) override {
    return cluster_->DeleteWhere(&t->dist, kCube, filters);
  }

  Status Commit(SutTxn* t) override { return cluster_->Commit(&t->dist); }
  Status Abort(SutTxn* t) override { return cluster_->Rollback(&t->dist); }
  void EndRo(SutTxn* t) override { cluster_->EndReadOnly(&t->dist); }

  Result<QueryResult> RunQuery(SutTxn* t, const Query& q) override {
    return cluster_->Query(&t->dist, kCube, q);
  }

  std::vector<Bid> CoveredBricks(
      const std::vector<FilterClause>& filters) override {
    // Replicas are identical while the structure lock is held exclusively,
    // so the union over nodes is the engine's cluster-wide delete scope.
    std::set<Bid> bids;
    for (uint32_t n = 1; n <= cluster_->num_nodes(); ++n) {
      CollectCoveredBricks(cluster_->node(n).FindTable(kCube), filters,
                           &bids);
    }
    return {bids.begin(), bids.end()};
  }

  Status Maintenance(Random& rng, StressReport* counters) override {
    cluster_->AdvanceClusterLSE();
    cluster_->PurgeAll();
    if (with_persistence_ && rng.OneIn(2)) {
      auto lse = cluster_->CheckpointAll();
      if (!lse.ok()) return lse.status();
      ++counters->checkpoints;
    }
    return Status::OK();
  }

 private:
  uint32_t RandomCoordinator(Random& rng) {
    return 1 + static_cast<uint32_t>(rng.Uniform(cluster_->num_nodes()));
  }

  cluster::Cluster* cluster_;
  const bool with_persistence_;
};

// --- Worker ---------------------------------------------------------------

struct SharedState {
  SutAdapter* sut = nullptr;
  SiOracle* oracle = nullptr;
  SharedMutex structure;
  std::atomic<bool> stop{false};
  Mutex failure_mutex;
  std::vector<std::string>* failures PT_GUARDED_BY(failure_mutex) = nullptr;
  std::string config;
};

class Worker {
 public:
  Worker(SharedState* shared, const StressOptions& opt, int tid)
      : shared_(shared), opt_(opt), tid_(tid), rng_(WorkerSeed(opt.seed, tid)) {}

  StressReport& counters() { return counters_; }

  void Run() {
    for (int i = 0; i < opt_.ops_per_thread && !shared_->stop.load(std::memory_order_seq_cst); ++i) {
      op_index_ = i;
      const double dice = rng_.NextDouble();
      if (dice < 0.30) {
        CommitAppendTxn();
      } else if (dice < 0.42) {
        AbortTxn();
      } else if (dice < 0.56) {
        DeleteTxn();
      } else if (dice < 0.88) {
        RoQueryOp();
      } else {
        MaintenanceOp();
      }
    }
  }

 private:
  static uint64_t WorkerSeed(uint64_t seed, int tid) {
    uint64_t state = seed * 1000003ULL + static_cast<uint64_t>(tid);
    return SplitMix64(state);
  }

  void Trace(const std::string& line) {
    std::ostringstream out;
    out << "t" << tid_ << "#" << op_index_ << " " << line;
    trace_.push_back(out.str());
  }

  void Fail(const std::string& what) {
    std::ostringstream out;
    out << shared_->config << "\n" << what << "\nthread " << tid_
        << " trace (oldest first):";
    for (const auto& line : trace_) out << "\n  " << line;
    {
      MutexLock lock(shared_->failure_mutex);
      shared_->failures->push_back(out.str());
    }
    shared_->stop.store(true, std::memory_order_seq_cst);
  }

  /// Engine-vs-oracle comparison for one query under `t`'s snapshot.
  bool Validate(SutTxn* t, const Query& q, const char* label) {
    auto actual = shared_->sut->RunQuery(t, q);
    if (!actual.ok()) {
      Fail(std::string(label) + " query failed: " +
           actual.status().ToString());
      return false;
    }
    const aosi::Snapshot snap = t->snapshot();
    const QueryResult expected = shared_->oracle->Eval(snap, q);
    const std::string diff = DiffResults(expected, *actual, q);
    if (!diff.empty()) {
      std::ostringstream out;
      out << "SI DIVERGENCE (" << label << ") at snapshot{epoch="
          << snap.epoch << ", deps=" << snap.deps.ToString()
          << "}: " << diff << "\nquery: " << QueryToString(q)
          << "\noracle visible rows: "
          << shared_->oracle->VisibleRows(snap);
      Fail(out.str());
      return false;
    }
    return true;
  }

  /// Appends under the shared structure lock, logging to the oracle inside
  /// the same critical section (ordering contract, see stress.h).
  bool AppendBatch(SutTxn* t) {
    const std::vector<Record> rows = RandomRecords(rng_);
    ReaderMutexLock lock(shared_->structure);
    const Status status = shared_->sut->Append(t, rows);
    if (!status.ok()) {
      Fail("append failed: " + status.ToString());
      return false;
    }
    shared_->oracle->Append(t->epoch(), rows);
    counters_.records_appended += rows.size();
    return true;
  }

  void CommitAppendTxn() {
    SutTxn t;
    Status status = shared_->sut->BeginRw(rng_, &t);
    if (!status.ok()) {
      Fail("begin failed: " + status.ToString());
      return;
    }
    Trace("begin rw epoch=" + std::to_string(t.epoch()) + " deps=" +
          t.txn().deps.ToString());
    const uint64_t batches = 1 + rng_.Uniform(2);
    for (uint64_t b = 0; b < batches; ++b) {
      if (!AppendBatch(&t)) return;
    }
    if (rng_.OneIn(2)) {
      ++counters_.ryw_queries;
      if (!Validate(&t, RandomQuery(rng_), "read-your-writes")) return;
    }
    status = shared_->sut->Commit(&t);
    if (!status.ok()) {
      Fail("commit failed: " + status.ToString());
      return;
    }
    Trace("commit epoch=" + std::to_string(t.epoch()));
    ++counters_.commits;
  }

  void AbortTxn() {
    SutTxn t;
    Status status = shared_->sut->BeginRw(rng_, &t);
    if (!status.ok()) {
      Fail("begin failed: " + status.ToString());
      return;
    }
    if (!AppendBatch(&t)) return;
    if (rng_.OneIn(3)) {
      ++counters_.ryw_queries;
      if (!Validate(&t, RandomQuery(rng_), "pre-abort read")) return;
    }
    if (!FinishAbort(&t)) return;
    Trace("abort epoch=" + std::to_string(t.epoch()));
    ++counters_.aborts;
  }

  bool FinishAbort(SutTxn* t) {
    // Oracle removal first: nothing may see the victim until the engine
    // finalizes the abort (LCE may pass it from then on), and the physical
    // removal is a table mutation, so the structure lock is held shared.
    ReaderMutexLock lock(shared_->structure);
    shared_->oracle->Rollback(t->epoch());
    const Status status = shared_->sut->Abort(t);
    if (!status.ok()) {
      Fail("rollback failed: " + status.ToString());
      return false;
    }
    return true;
  }

  void DeleteTxn() {
    SutTxn t;
    Status status = shared_->sut->BeginRw(rng_, &t);
    if (!status.ok()) {
      Fail("begin failed: " + status.ToString());
      return;
    }
    // Sometimes append in the same transaction before the delete point:
    // those records must be cleared by the transaction's own delete.
    if (rng_.OneIn(2) && !AppendBatch(&t)) return;
    const std::vector<FilterClause> filters = RandomDeleteFilters(rng_);
    bool deleted = false;
    {
      WriterMutexLock lock(shared_->structure);
      const std::vector<Bid> bricks =
          shared_->sut->CoveredBricks(filters);
      status = shared_->sut->Delete(&t, filters);
      if (status.ok()) {
        shared_->oracle->Delete(t.epoch(), bricks);
        deleted = true;
        std::ostringstream line;
        line << "delete epoch=" << t.epoch() << " "
             << FiltersToString(filters) << " bricks=" << bricks.size();
        Trace(line.str());
      } else {
        ++counters_.delete_rejects;
        Trace("delete rejected: " + FiltersToString(filters));
      }
    }
    // Records appended after the delete point survive the delete.
    if (deleted && rng_.OneIn(3) && !AppendBatch(&t)) return;
    if (rng_.OneIn(2)) {
      ++counters_.ryw_queries;
      if (!Validate(&t, RandomQuery(rng_), "post-delete read")) return;
    }
    if (deleted && !rng_.OneIn(4)) {
      status = shared_->sut->Commit(&t);
      if (!status.ok()) {
        Fail("commit failed: " + status.ToString());
        return;
      }
      ++counters_.deletes;
    } else {
      if (!FinishAbort(&t)) return;
      ++counters_.aborts;
    }
  }

  void RoQueryOp() {
    SutTxn t;
    shared_->sut->BeginRo(rng_, &t);
    ++counters_.queries;
    const Query q = RandomQuery(rng_);
    const bool ok = Validate(&t, q, "read-only snapshot");
    shared_->sut->EndRo(&t);
    if (ok) {
      Trace("ro query epoch=" + std::to_string(t.epoch()) + " ok");
    }
  }

  void MaintenanceOp() {
    ReaderMutexLock lock(shared_->structure);
    const Status status = shared_->sut->Maintenance(rng_, &counters_);
    if (!status.ok()) {
      Fail("maintenance failed: " + status.ToString());
      return;
    }
    ++counters_.maintenance;
    Trace("maintenance");
  }

  SharedState* shared_;
  const StressOptions& opt_;
  const int tid_;
  Random rng_;
  int op_index_ = 0;
  StressReport counters_;
  std::vector<std::string> trace_;
};

std::string ConfigLine(const StressOptions& opt, bool cluster) {
  std::ostringstream out;
  out << "config: mode=" << (cluster ? "cluster" : "single")
      << " seed=" << opt.seed << " threads=" << opt.threads
      << " ops=" << opt.ops_per_thread << " shards=" << opt.shards_per_cube
      << " threaded=" << opt.threaded_shards
      << " rollback_index=" << opt.rollback_index
      << " persist=" << opt.with_persistence;
  if (!cluster) {
    out << " parallel=" << opt.query_parallelism
        << " cache=" << opt.visibility_cache;
  }
  if (cluster) {
    out << " nodes=" << opt.num_nodes << " rf=" << opt.replication_factor
        << " latency_us=" << opt.message_latency_us;
  }
  out << "\nreplay: check_si --mode=" << (cluster ? "cluster" : "single")
      << " --seed0=" << opt.seed << " --seeds=1 --ops="
      << opt.ops_per_thread;
  if (!cluster && opt.query_parallelism > 1) {
    out << " --parallel=" << opt.query_parallelism;
  }
  if (!cluster && opt.visibility_cache) {
    out << " --cache";
  }
  return out.str();
}

Query FullScanQuery() {
  Query q;
  q.group_by = {0, 1};
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kCount, 0},
            {AggSpec::Fn::kMin, 0},
            {AggSpec::Fn::kMax, 0}};
  return q;
}

/// Runs the worker pool and merges counters/failures into `report`.
void RunWorkers(SharedState* shared, const StressOptions& opt,
                StressReport* report) {
  std::vector<std::unique_ptr<Worker>> workers;
  for (int t = 0; t < opt.threads; ++t) {
    workers.push_back(std::make_unique<Worker>(shared, opt, t));
  }
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker->Run(); });
  }
  for (auto& thread : threads) thread.join();
  for (auto& worker : workers) {
    report->MergeCounters(worker->counters());
  }
}

/// Validates one (snapshot, query) pair sequentially (epilogue checks).
bool ValidateSequential(const SiOracle& oracle, const aosi::Snapshot& snap,
                        const Query& q, const Result<QueryResult>& actual,
                        const std::string& config, const char* label,
                        StressReport* report) {
  if (!actual.ok()) {
    report->failures.push_back(config + "\n" + label + " query failed: " +
                               actual.status().ToString());
    return false;
  }
  const QueryResult expected = oracle.Eval(snap, q);
  const std::string diff = DiffResults(expected, *actual, q);
  if (!diff.empty()) {
    std::ostringstream out;
    out << config << "\nSI DIVERGENCE (" << label << ") at snapshot{epoch="
        << snap.epoch << ", deps=" << snap.deps.ToString() << "}: " << diff;
    report->failures.push_back(out.str());
    return false;
  }
  return true;
}

fs::path ScratchDir(const StressOptions& opt, const char* mode) {
  const fs::path base = opt.scratch_dir.empty()
                            ? fs::temp_directory_path()
                            : fs::path(opt.scratch_dir);
  return base / ("cubrick_check_si_" + std::string(mode) + "_" +
                 std::to_string(opt.seed) + "_" + std::to_string(getpid()));
}

}  // namespace

void StressReport::MergeCounters(const StressReport& other) {
  commits += other.commits;
  aborts += other.aborts;
  deletes += other.deletes;
  delete_rejects += other.delete_rejects;
  queries += other.queries;
  ryw_queries += other.ryw_queries;
  maintenance += other.maintenance;
  checkpoints += other.checkpoints;
  records_appended += other.records_appended;
}

std::string StressReport::Summary() const {
  std::ostringstream out;
  out << "commits=" << commits << " aborts=" << aborts
      << " deletes=" << deletes << " delete_rejects=" << delete_rejects
      << " queries=" << queries << " ryw=" << ryw_queries
      << " maintenance=" << maintenance << " checkpoints=" << checkpoints
      << " rows=" << records_appended;
  return out.str();
}

StressOptions MakeSeedConfig(uint64_t seed, bool cluster) {
  StressOptions opt;
  opt.seed = seed;
  opt.threads = 3 + static_cast<int>(seed % 3);
  opt.shards_per_cube = 1 + seed % 3;
  opt.threaded_shards = seed % 2 == 0;
  opt.rollback_index = seed % 4 < 2;
  opt.with_persistence = seed % 5 == 0;
  if (cluster) {
    opt.num_nodes = 3;
    opt.replication_factor = 1 + seed % 2;
    opt.message_latency_us = seed % 7 == 0 ? 20 : 0;
  }
  return opt;
}

StressReport RunSingleNodeStress(const StressOptions& opt) {
  StressReport report;
  const std::string config = ConfigLine(opt, /*cluster=*/false);
  const fs::path dir = ScratchDir(opt, "single");
  DatabaseOptions db_options;
  db_options.shards_per_cube = opt.shards_per_cube;
  db_options.threaded_shards = opt.threaded_shards;
  db_options.rollback_index = opt.rollback_index;
  db_options.query_parallelism = opt.query_parallelism;
  db_options.query_visibility_cache = opt.visibility_cache;
  if (opt.with_persistence) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    db_options.data_dir = dir.string();
  }

  auto db = std::make_unique<Database>(db_options);
  Status created =
      db->CreateCube(kCube, StressDimensions(), StressMetrics());
  CUBRICK_CHECK(created.ok());
  SiOracle oracle(db->FindSchema(kCube));

  SingleNodeSut sut(db.get(), opt.with_persistence);
  SharedState shared;
  shared.sut = &sut;
  shared.oracle = &oracle;
  shared.failures = &report.failures;
  shared.config = config;
  RunWorkers(&shared, opt, &report);

  // Epilogue 1: quiescent full-cube validation at the final LCE.
  const Query q = FullScanQuery();
  if (report.ok()) {
    aosi::Txn ro = db->BeginReadOnly();
    auto actual = db->QueryIn(ro, kCube, q);
    ValidateSequential(oracle, ro.snapshot(), q, actual, config,
                       "final read", &report);
    db->txns().EndReadOnly(ro);
  }

  // Epilogue 2: crash (destroy the Database; segments survive on disk),
  // recover, and verify the recovered state equals the oracle at the
  // recovered LSE.
  if (report.ok() && opt.with_persistence) {
    auto lse = db->Checkpoint();
    if (!lse.ok()) {
      report.failures.push_back(config + "\ncheckpoint failed: " +
                                lse.status().ToString());
    } else {
      db.reset();
      db = std::make_unique<Database>(db_options);
      created = db->CreateCube(kCube, StressDimensions(), StressMetrics());
      CUBRICK_CHECK(created.ok());
      const Status recovered = db->Recover();
      if (!recovered.ok()) {
        report.failures.push_back(config + "\nrecovery failed: " +
                                  recovered.ToString());
      } else {
        oracle.TruncateAfter(db->txns().LSE());
        aosi::Txn ro = db->BeginReadOnly();
        auto actual = db->QueryIn(ro, kCube, q);
        ValidateSequential(oracle, ro.snapshot(), q, actual, config,
                           "post-recovery read", &report);
        db->txns().EndReadOnly(ro);
      }
    }
  }

  if (opt.with_persistence) fs::remove_all(dir);
  return report;
}

StressReport RunClusterStress(const StressOptions& opt) {
  StressReport report;
  const std::string config = ConfigLine(opt, /*cluster=*/true);
  const fs::path dir = ScratchDir(opt, "cluster");
  cluster::ClusterOptions cluster_options;
  cluster_options.num_nodes = opt.num_nodes;
  cluster_options.shards_per_cube = opt.shards_per_cube;
  cluster_options.threaded_shards = opt.threaded_shards;
  cluster_options.replication_factor = opt.replication_factor;
  cluster_options.message_latency_us = opt.message_latency_us;
  if (opt.with_persistence) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    cluster_options.data_dir = dir.string();
  }

  cluster::Cluster cluster(cluster_options);
  Status created =
      cluster.CreateCube(kCube, StressDimensions(), StressMetrics());
  CUBRICK_CHECK(created.ok());
  SiOracle oracle(cluster.FindSchema(kCube));

  ClusterSut sut(&cluster, opt.with_persistence);
  SharedState shared;
  shared.sut = &sut;
  shared.oracle = &oracle;
  shared.failures = &report.failures;
  shared.config = config;
  RunWorkers(&shared, opt, &report);

  // Epilogue 1: quiescent validation from every coordinator.
  const Query q = FullScanQuery();
  for (uint32_t n = 1; n <= opt.num_nodes && report.ok(); ++n) {
    cluster::DistTxn ro = cluster.BeginReadOnly(n);
    auto actual = cluster.Query(&ro, kCube, q);
    ValidateSequential(oracle, ro.txn.snapshot(), q, actual, config,
                       "final coordinator read", &report);
    cluster.EndReadOnly(&ro);
  }

  // Epilogue 2: crash one node and recover it from local segments plus
  // replica peers; every coordinator must still agree with the oracle.
  if (report.ok() && opt.with_persistence && opt.replication_factor >= 2) {
    auto lse = cluster.CheckpointAll();
    if (!lse.ok()) {
      report.failures.push_back(config + "\ncheckpoint-all failed: " +
                                lse.status().ToString());
    } else {
      const uint32_t victim =
          1 + static_cast<uint32_t>(opt.seed % opt.num_nodes);
      Status status = cluster.CrashNode(victim);
      CUBRICK_CHECK(status.ok());
      for (uint32_t n = 1; n <= opt.num_nodes && report.ok(); ++n) {
        if (n == victim) continue;
        cluster::DistTxn ro = cluster.BeginReadOnly(n);
        auto actual = cluster.Query(&ro, kCube, q);
        ValidateSequential(oracle, ro.txn.snapshot(), q, actual, config,
                           "during-outage read", &report);
        cluster.EndReadOnly(&ro);
      }
      status = cluster.RecoverNode(victim);
      if (!status.ok()) {
        report.failures.push_back(config + "\nnode recovery failed: " +
                                  status.ToString());
      }
      for (uint32_t n = 1; n <= opt.num_nodes && report.ok(); ++n) {
        cluster::DistTxn ro = cluster.BeginReadOnly(n);
        auto actual = cluster.Query(&ro, kCube, q);
        ValidateSequential(oracle, ro.txn.snapshot(), q, actual, config,
                           "post-recovery read", &report);
        cluster.EndReadOnly(&ro);
      }
    }
  }

  if (opt.with_persistence) fs::remove_all(dir);
  return report;
}

}  // namespace cubrick::check
