#include "check/stress.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "check/online_checker.h"
#include "check/si_oracle.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/random.h"
#include "cubrick/database.h"
#include "obs/metrics.h"
#include "query/executor.h"

namespace cubrick::check {
namespace {

namespace fs = std::filesystem;

// The stress cube: two integer dimensions (8 x 2 = 16 bricks) and one
// integer metric. Small enough that every brick sees appends, deletes and
// purges within a short run; large enough that filters and group-bys
// discriminate.
constexpr char kCube[] = "stress";
constexpr uint64_t kCardB = 32, kRangeB = 4;
constexpr uint64_t kCardC = 8, kRangeC = 4;

std::vector<DimensionDef> StressDimensions() {
  return {{"b", kCardB, kRangeB, false}, {"c", kCardC, kRangeC, false}};
}

std::vector<MetricDef> StressMetrics() {
  return {{"v", DataType::kInt64}};
}

std::vector<Record> RandomRecords(Random& rng) {
  std::vector<Record> rows;
  const uint64_t n = 1 + rng.Uniform(5);
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(rng.Uniform(kCardB)),
                    static_cast<int64_t>(rng.Uniform(kCardC)),
                    static_cast<int64_t>(rng.Uniform(100))});
  }
  return rows;
}

Query RandomQuery(Random& rng) {
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kCount, 0},
            {AggSpec::Fn::kMin, 0},
            {AggSpec::Fn::kMax, 0}};
  const uint64_t num_filters = rng.Uniform(3);
  for (uint64_t i = 0; i < num_filters; ++i) {
    FilterClause f;
    f.dim = rng.Uniform(2);
    const uint64_t card = f.dim == 0 ? kCardB : kCardC;
    switch (rng.Uniform(3)) {
      case 0:
        f.op = FilterClause::Op::kEq;
        f.values = {rng.Uniform(card)};
        break;
      case 1:
        f.op = FilterClause::Op::kRange;
        f.range_lo = rng.Uniform(card);
        f.range_hi = f.range_lo + rng.Uniform(card - f.range_lo);
        break;
      default:
        f.op = FilterClause::Op::kIn;
        for (uint64_t v = 0, nv = 1 + rng.Uniform(3); v < nv; ++v) {
          f.values.push_back(rng.Uniform(card));
        }
        break;
    }
    q.filters.push_back(std::move(f));
  }
  switch (rng.Uniform(4)) {
    case 1:
      q.group_by = {0};
      break;
    case 2:
      q.group_by = {1};
      break;
    case 3:
      q.group_by = {0, 1};
      break;
    default:
      break;
  }
  return q;
}

std::vector<FilterClause> RandomDeleteFilters(Random& rng) {
  const double dice = rng.NextDouble();
  std::vector<FilterClause> filters;
  if (dice < 0.15) return filters;  // empty predicate: delete the whole cube
  FilterClause f;
  f.op = FilterClause::Op::kRange;
  if (dice < 0.80) {
    // Range-aligned on one dimension: always partition-granular.
    f.dim = rng.Uniform(2);
    const uint64_t range = f.dim == 0 ? kRangeB : kRangeC;
    const uint64_t ranges = (f.dim == 0 ? kCardB : kCardC) / range;
    f.range_lo = range * rng.Uniform(ranges);
    f.range_hi = f.range_lo + range - 1;
  } else {
    // Deliberately misaligned: rejected whenever it partially covers a
    // materialized brick (exercises the granularity check under load).
    f.dim = 0;
    f.range_lo = rng.Uniform(kCardB - 1);
    f.range_hi = f.range_lo + 1;
  }
  filters.push_back(std::move(f));
  return filters;
}

std::string QueryToString(const Query& q) {
  std::ostringstream out;
  out << "filters=[";
  for (size_t i = 0; i < q.filters.size(); ++i) {
    const FilterClause& f = q.filters[i];
    if (i > 0) out << ", ";
    out << "dim" << f.dim;
    switch (f.op) {
      case FilterClause::Op::kEq:
        out << "==" << f.values[0];
        break;
      case FilterClause::Op::kRange:
        out << " in [" << f.range_lo << "," << f.range_hi << "]";
        break;
      case FilterClause::Op::kIn:
        out << " in {";
        for (size_t v = 0; v < f.values.size(); ++v) {
          out << (v > 0 ? "," : "") << f.values[v];
        }
        out << "}";
        break;
    }
  }
  out << "] group_by={";
  for (size_t i = 0; i < q.group_by.size(); ++i) {
    out << (i > 0 ? "," : "") << q.group_by[i];
  }
  out << "}";
  return out.str();
}

std::string FiltersToString(const std::vector<FilterClause>& filters) {
  Query q;
  q.filters = filters;
  return QueryToString(q);
}

/// Engine-side covered-brick collection: exactly the predicate
/// Table::MarkDeleted applies. Must run with the stress driver's structure
/// lock held exclusively so the set cannot change before the mark.
void CollectCoveredBricks(Table* table,
                          const std::vector<FilterClause>& filters,
                          std::set<Bid>* out) {
  Query probe;
  probe.filters = filters;
  table->VisitBricks([&](const Brick& brick) {
    if (brick.num_records() > 0 && BrickCoveredByFilters(brick, probe)) {
      out->insert(brick.bid());
    }
  });
}

// --- System-under-test adapters -------------------------------------------

/// A transaction handle valid for either mode.
struct SutTxn {
  aosi::Txn local;
  cluster::DistTxn dist;
  bool is_cluster = false;

  const aosi::Txn& txn() const { return is_cluster ? dist.txn : local; }
  aosi::Epoch epoch() const { return txn().epoch; }
  aosi::Snapshot snapshot() const { return txn().snapshot(); }
};

/// Every choice an adapter used to draw from an RNG is passed in explicitly
/// (coordinator, checkpoint-vs-purge): adapters are deterministic executors
/// of a pre-generated plan, never consumers of randomness.
class SutAdapter {
 public:
  virtual ~SutAdapter() = default;
  virtual Status BeginRw(uint32_t coordinator, SutTxn* out) = 0;
  virtual void BeginRo(uint32_t coordinator, SutTxn* out) = 0;
  virtual Status Append(SutTxn* t, const std::vector<Record>& rows) = 0;
  virtual Status Delete(SutTxn* t,
                        const std::vector<FilterClause>& filters) = 0;
  virtual Status Commit(SutTxn* t) = 0;
  /// Physical rollback plus timestamp finalization.
  virtual Status Abort(SutTxn* t) = 0;
  virtual void EndRo(SutTxn* t) = 0;
  virtual Result<QueryResult> RunQuery(SutTxn* t, const Query& q) = 0;
  virtual std::vector<Bid> CoveredBricks(
      const std::vector<FilterClause>& filters) = 0;
  /// Purge / LSE advance / checkpoint step. Caller holds the structure lock
  /// shared. `want_checkpoint` is only honored when persistence is on.
  virtual Status Maintenance(bool want_checkpoint,
                             StressReport* counters) = 0;
};

class SingleNodeSut : public SutAdapter {
 public:
  SingleNodeSut(Database* db, bool with_persistence)
      : db_(db), with_persistence_(with_persistence) {}

  Status BeginRw(uint32_t /*coordinator*/, SutTxn* out) override {
    out->local = db_->Begin();
    return Status::OK();
  }

  void BeginRo(uint32_t /*coordinator*/, SutTxn* out) override {
    out->local = db_->BeginReadOnly();
  }

  Status Append(SutTxn* t, const std::vector<Record>& rows) override {
    return db_->LoadIn(t->local, kCube, rows);
  }

  Status Delete(SutTxn* t,
                const std::vector<FilterClause>& filters) override {
    return db_->DeletePartitionsIn(t->local, kCube, filters);
  }

  Status Commit(SutTxn* t) override { return db_->Commit(t->local); }
  Status Abort(SutTxn* t) override { return db_->Rollback(t->local); }
  void EndRo(SutTxn* t) override { db_->txns().EndReadOnly(t->local); }

  Result<QueryResult> RunQuery(SutTxn* t, const Query& q) override {
    return db_->QueryIn(t->local, kCube, q);
  }

  std::vector<Bid> CoveredBricks(
      const std::vector<FilterClause>& filters) override {
    std::set<Bid> bids;
    CollectCoveredBricks(db_->FindTable(kCube), filters, &bids);
    return {bids.begin(), bids.end()};
  }

  Status Maintenance(bool want_checkpoint, StressReport* counters) override {
    if (with_persistence_) {
      if (want_checkpoint) {
        auto lse = db_->Checkpoint();
        if (!lse.ok()) return lse.status();
        ++counters->checkpoints;
      } else {
        db_->PurgeAll();
      }
    } else {
      // Diskless deployment: durability is replication's problem (§III-D);
      // LSE may chase LCE directly, which is what makes purge effective.
      db_->txns().TryAdvanceLSE(db_->txns().LCE());
      db_->PurgeAll();
    }
    return Status::OK();
  }

 private:
  Database* db_;
  const bool with_persistence_;
};

class ClusterSut : public SutAdapter {
 public:
  ClusterSut(cluster::Cluster* cluster, bool with_persistence)
      : cluster_(cluster), with_persistence_(with_persistence) {}

  Status BeginRw(uint32_t coordinator, SutTxn* out) override {
    out->is_cluster = true;
    auto txn = cluster_->BeginReadWrite(coordinator);
    if (!txn.ok()) return txn.status();
    out->dist = *txn;
    return Status::OK();
  }

  void BeginRo(uint32_t coordinator, SutTxn* out) override {
    out->is_cluster = true;
    out->dist = cluster_->BeginReadOnly(coordinator);
  }

  Status Append(SutTxn* t, const std::vector<Record>& rows) override {
    return cluster_->Append(&t->dist, kCube, rows);
  }

  Status Delete(SutTxn* t,
                const std::vector<FilterClause>& filters) override {
    return cluster_->DeleteWhere(&t->dist, kCube, filters);
  }

  Status Commit(SutTxn* t) override { return cluster_->Commit(&t->dist); }
  Status Abort(SutTxn* t) override { return cluster_->Rollback(&t->dist); }
  void EndRo(SutTxn* t) override { cluster_->EndReadOnly(&t->dist); }

  Result<QueryResult> RunQuery(SutTxn* t, const Query& q) override {
    return cluster_->Query(&t->dist, kCube, q);
  }

  std::vector<Bid> CoveredBricks(
      const std::vector<FilterClause>& filters) override {
    // Replicas are identical while the structure lock is held exclusively,
    // so the union over nodes is the engine's cluster-wide delete scope.
    std::set<Bid> bids;
    for (uint32_t n = 1; n <= cluster_->num_nodes(); ++n) {
      CollectCoveredBricks(cluster_->node(n).FindTable(kCube), filters,
                           &bids);
    }
    return {bids.begin(), bids.end()};
  }

  Status Maintenance(bool want_checkpoint, StressReport* counters) override {
    cluster_->AdvanceClusterLSE();
    cluster_->PurgeAll();
    if (with_persistence_ && want_checkpoint) {
      auto lse = cluster_->CheckpointAll();
      if (!lse.ok()) return lse.status();
      ++counters->checkpoints;
    }
    return Status::OK();
  }

 private:
  cluster::Cluster* cluster_;
  const bool with_persistence_;
};

// --- Pre-generated op plans -----------------------------------------------
//
// Every random choice a worker will ever make is drawn here, on the main
// thread, before any worker launches — a pure function of (seed, tid). The
// draws inside each op kind are unconditional: runtime state (e.g. whether
// a delete was rejected) decides only whether a pre-drawn value is *used*,
// never whether it is *drawn*, so the workload is bit-identical across
// thread interleavings, sanitizers and machines.

struct OpPlan {
  enum class Kind : uint8_t {
    kCommitAppend,
    kAbort,
    kDelete,
    kRoQuery,
    kMaintenance,
  };

  Kind kind = Kind::kRoQuery;
  /// Coordinator node for this op's transaction (1 in single-node mode).
  uint32_t coordinator = 1;
  /// Record batches, in append order. kDelete: [0] is the pre-delete batch,
  /// [1] the post-delete batch (each used only if its dice said so).
  std::vector<std::vector<Record>> batches;
  /// Validate a read inside the transaction (ryw / pre-abort / post-delete)?
  bool do_read = false;
  Query query;
  std::vector<FilterClause> delete_filters;
  bool append_before_delete = false;
  bool append_after_delete = false;
  /// Commit the delete txn (vs abort); only honored when the delete stuck.
  bool commit_delete = false;
  bool maintenance_checkpoint = false;
};

uint64_t WorkerSeed(uint64_t seed, int tid) {
  uint64_t state = seed * 1000003ULL + static_cast<uint64_t>(tid);
  return SplitMix64(state);
}

std::vector<OpPlan> GenerateThreadPlan(const StressOptions& opt,
                                       bool cluster, int tid) {
  Random rng(WorkerSeed(opt.seed, tid));
  std::vector<OpPlan> plan;
  plan.reserve(static_cast<size_t>(opt.ops_per_thread));
  for (int i = 0; i < opt.ops_per_thread; ++i) {
    OpPlan op;
    op.coordinator =
        cluster ? 1 + static_cast<uint32_t>(rng.Uniform(opt.num_nodes)) : 1;
    const double dice = rng.NextDouble();
    if (dice < 0.30) {
      op.kind = OpPlan::Kind::kCommitAppend;
      const uint64_t batches = 1 + rng.Uniform(2);
      for (uint64_t b = 0; b < batches; ++b) {
        op.batches.push_back(RandomRecords(rng));
      }
      op.do_read = rng.OneIn(2);
      op.query = RandomQuery(rng);
    } else if (dice < 0.42) {
      op.kind = OpPlan::Kind::kAbort;
      op.batches.push_back(RandomRecords(rng));
      op.do_read = rng.OneIn(3);
      op.query = RandomQuery(rng);
    } else if (dice < 0.56) {
      op.kind = OpPlan::Kind::kDelete;
      op.append_before_delete = rng.OneIn(2);
      op.batches.push_back(RandomRecords(rng));
      op.delete_filters = RandomDeleteFilters(rng);
      op.append_after_delete = rng.OneIn(3);
      op.batches.push_back(RandomRecords(rng));
      op.do_read = rng.OneIn(2);
      op.query = RandomQuery(rng);
      op.commit_delete = !rng.OneIn(4);
    } else if (dice < 0.88) {
      op.kind = OpPlan::Kind::kRoQuery;
      op.query = RandomQuery(rng);
    } else {
      op.kind = OpPlan::Kind::kMaintenance;
      op.maintenance_checkpoint = rng.OneIn(2);
    }
    plan.push_back(std::move(op));
  }
  return plan;
}

// --- Worker ---------------------------------------------------------------

struct SharedState {
  SutAdapter* sut = nullptr;
  SiOracle* oracle = nullptr;
  SharedMutex structure;
  std::atomic<bool> stop{false};
  Mutex failure_mutex;
  std::vector<std::string>* failures PT_GUARDED_BY(failure_mutex) = nullptr;
  std::string config;
};

class Worker {
 public:
  Worker(SharedState* shared, std::vector<OpPlan> plan, int tid)
      : shared_(shared), plan_(std::move(plan)), tid_(tid) {}

  StressReport& counters() { return counters_; }

  void Run() {
    for (size_t i = 0;
         i < plan_.size() && !shared_->stop.load(std::memory_order_seq_cst);
         ++i) {
      op_index_ = static_cast<int>(i);
      const OpPlan& op = plan_[i];
      switch (op.kind) {
        case OpPlan::Kind::kCommitAppend:
          CommitAppendTxn(op);
          break;
        case OpPlan::Kind::kAbort:
          AbortTxn(op);
          break;
        case OpPlan::Kind::kDelete:
          DeleteTxn(op);
          break;
        case OpPlan::Kind::kRoQuery:
          RoQueryOp(op);
          break;
        case OpPlan::Kind::kMaintenance:
          MaintenanceOp(op);
          break;
      }
    }
  }

 private:
  void Trace(const std::string& line) {
    std::ostringstream out;
    out << "t" << tid_ << "#" << op_index_ << " " << line;
    trace_.push_back(out.str());
  }

  void Fail(const std::string& what) {
    std::ostringstream out;
    out << shared_->config << "\n" << what << "\nthread " << tid_
        << " trace (oldest first):";
    for (const auto& line : trace_) out << "\n  " << line;
    {
      MutexLock lock(shared_->failure_mutex);
      shared_->failures->push_back(out.str());
    }
    shared_->stop.store(true, std::memory_order_seq_cst);
  }

  /// Engine-vs-oracle comparison for one query under `t`'s snapshot.
  bool Validate(SutTxn* t, const Query& q, const char* label) {
    auto actual = shared_->sut->RunQuery(t, q);
    if (!actual.ok()) {
      Fail(std::string(label) + " query failed: " +
           actual.status().ToString());
      return false;
    }
    const aosi::Snapshot snap = t->snapshot();
    const QueryResult expected = shared_->oracle->Eval(snap, q);
    const std::string diff = DiffResults(expected, *actual, q);
    if (!diff.empty()) {
      std::ostringstream out;
      out << "SI DIVERGENCE (" << label << ") at snapshot{epoch="
          << snap.epoch << ", deps=" << snap.deps.ToString()
          << "}: " << diff << "\nquery: " << QueryToString(q)
          << "\noracle visible rows: "
          << shared_->oracle->VisibleRows(snap);
      Fail(out.str());
      return false;
    }
    return true;
  }

  /// Appends under the shared structure lock, logging to the oracle inside
  /// the same critical section (ordering contract, see stress.h).
  bool AppendBatch(SutTxn* t, const std::vector<Record>& rows) {
    ReaderMutexLock lock(shared_->structure);
    const Status status = shared_->sut->Append(t, rows);
    if (!status.ok()) {
      Fail("append failed: " + status.ToString());
      return false;
    }
    shared_->oracle->Append(t->epoch(), rows);
    counters_.records_appended += rows.size();
    return true;
  }

  void CommitAppendTxn(const OpPlan& op) {
    SutTxn t;
    Status status = shared_->sut->BeginRw(op.coordinator, &t);
    if (!status.ok()) {
      Fail("begin failed: " + status.ToString());
      return;
    }
    Trace("begin rw epoch=" + std::to_string(t.epoch()) + " deps=" +
          t.txn().deps.ToString());
    for (const auto& batch : op.batches) {
      if (!AppendBatch(&t, batch)) return;
    }
    if (op.do_read) {
      ++counters_.ryw_queries;
      if (!Validate(&t, op.query, "read-your-writes")) return;
    }
    status = shared_->sut->Commit(&t);
    if (!status.ok()) {
      Fail("commit failed: " + status.ToString());
      return;
    }
    Trace("commit epoch=" + std::to_string(t.epoch()));
    ++counters_.commits;
  }

  void AbortTxn(const OpPlan& op) {
    SutTxn t;
    Status status = shared_->sut->BeginRw(op.coordinator, &t);
    if (!status.ok()) {
      Fail("begin failed: " + status.ToString());
      return;
    }
    if (!AppendBatch(&t, op.batches[0])) return;
    if (op.do_read) {
      ++counters_.ryw_queries;
      if (!Validate(&t, op.query, "pre-abort read")) return;
    }
    if (!FinishAbort(&t)) return;
    Trace("abort epoch=" + std::to_string(t.epoch()));
    ++counters_.aborts;
  }

  bool FinishAbort(SutTxn* t) {
    // Oracle removal first: nothing may see the victim until the engine
    // finalizes the abort (LCE may pass it from then on), and the physical
    // removal is a table mutation, so the structure lock is held shared.
    ReaderMutexLock lock(shared_->structure);
    shared_->oracle->Rollback(t->epoch());
    const Status status = shared_->sut->Abort(t);
    if (!status.ok()) {
      Fail("rollback failed: " + status.ToString());
      return false;
    }
    return true;
  }

  void DeleteTxn(const OpPlan& op) {
    SutTxn t;
    Status status = shared_->sut->BeginRw(op.coordinator, &t);
    if (!status.ok()) {
      Fail("begin failed: " + status.ToString());
      return;
    }
    // Sometimes append in the same transaction before the delete point:
    // those records must be cleared by the transaction's own delete.
    if (op.append_before_delete && !AppendBatch(&t, op.batches[0])) return;
    const std::vector<FilterClause>& filters = op.delete_filters;
    bool deleted = false;
    {
      WriterMutexLock lock(shared_->structure);
      const std::vector<Bid> bricks =
          shared_->sut->CoveredBricks(filters);
      status = shared_->sut->Delete(&t, filters);
      if (status.ok()) {
        shared_->oracle->Delete(t.epoch(), bricks);
        deleted = true;
        std::ostringstream line;
        line << "delete epoch=" << t.epoch() << " "
             << FiltersToString(filters) << " bricks=" << bricks.size();
        Trace(line.str());
      } else {
        ++counters_.delete_rejects;
        Trace("delete rejected: " + FiltersToString(filters));
      }
    }
    // Records appended after the delete point survive the delete.
    if (deleted && op.append_after_delete && !AppendBatch(&t, op.batches[1])) {
      return;
    }
    if (op.do_read) {
      ++counters_.ryw_queries;
      if (!Validate(&t, op.query, "post-delete read")) return;
    }
    if (deleted && op.commit_delete) {
      status = shared_->sut->Commit(&t);
      if (!status.ok()) {
        Fail("commit failed: " + status.ToString());
        return;
      }
      ++counters_.deletes;
    } else {
      if (!FinishAbort(&t)) return;
      ++counters_.aborts;
    }
  }

  void RoQueryOp(const OpPlan& op) {
    SutTxn t;
    shared_->sut->BeginRo(op.coordinator, &t);
    ++counters_.queries;
    const bool ok = Validate(&t, op.query, "read-only snapshot");
    shared_->sut->EndRo(&t);
    if (ok) {
      Trace("ro query epoch=" + std::to_string(t.epoch()) + " ok");
    }
  }

  void MaintenanceOp(const OpPlan& op) {
    ReaderMutexLock lock(shared_->structure);
    const Status status =
        shared_->sut->Maintenance(op.maintenance_checkpoint, &counters_);
    if (!status.ok()) {
      Fail("maintenance failed: " + status.ToString());
      return;
    }
    ++counters_.maintenance;
    Trace("maintenance");
  }

  SharedState* shared_;
  const std::vector<OpPlan> plan_;
  const int tid_;
  int op_index_ = 0;
  StressReport counters_;
  std::vector<std::string> trace_;
};

std::string ConfigLine(const StressOptions& opt, bool cluster) {
  std::ostringstream out;
  out << "config: mode=" << (cluster ? "cluster" : "single")
      << " seed=" << opt.seed << " threads=" << opt.threads
      << " ops=" << opt.ops_per_thread << " shards=" << opt.shards_per_cube
      << " threaded=" << opt.threaded_shards
      << " rollback_index=" << opt.rollback_index
      << " persist=" << opt.with_persistence
      << " online=" << opt.online_check;
  if (!cluster) {
    out << " parallel=" << opt.query_parallelism
        << " ingest_parallel=" << opt.ingest_parallelism
        << " cache=" << opt.visibility_cache
        << " purge_stress=" << opt.purge_stress;
  }
  if (cluster) {
    out << " nodes=" << opt.num_nodes << " rf=" << opt.replication_factor
        << " latency_us=" << opt.message_latency_us;
  }
  out << "\nreplay: check_si --mode=" << (cluster ? "cluster" : "single")
      << " --seed0=" << opt.seed << " --seeds=1 --ops="
      << opt.ops_per_thread;
  if (!cluster && opt.query_parallelism > 1) {
    out << " --parallel=" << opt.query_parallelism;
  }
  if (!cluster && opt.ingest_parallelism > 1) {
    out << " --ingest-parallel=" << opt.ingest_parallelism;
  }
  if (!cluster && opt.visibility_cache) {
    out << " --cache";
  }
  if (!cluster && opt.purge_stress) {
    out << " --purge-stress";
  }
  if (opt.online_check) {
    out << " --online";
  }
  return out.str();
}

/// Drains the online checker and surfaces its violations as failures.
void AppendCheckerFailures(OnlineChecker* checker, const std::string& config,
                           StressReport* report) {
  if (checker == nullptr) return;
  checker->DrainForTest();
  if (checker->ViolationCount() == 0) return;
  std::ostringstream out;
  out << config << "\nONLINE CHECKER: " << checker->ViolationCount()
      << " violation(s), " << checker->ActiveHorizonCountForTest()
      << " unfinished sampled txn(s) at shutdown";
  for (const auto& v : checker->Violations()) {
    out << "\n  [" << ViolationKindName(v.kind) << "] " << v.detail;
  }
  report->failures.push_back(out.str());
}

Query FullScanQuery() {
  Query q;
  q.group_by = {0, 1};
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kCount, 0},
            {AggSpec::Fn::kMin, 0},
            {AggSpec::Fn::kMax, 0}};
  return q;
}

/// Pre-generates every thread's plan, then runs the worker pool and merges
/// counters/failures into `report`.
void RunWorkers(SharedState* shared, const StressOptions& opt, bool cluster,
                StressReport* report) {
  std::vector<std::unique_ptr<Worker>> workers;
  for (int t = 0; t < opt.threads; ++t) {
    workers.push_back(std::make_unique<Worker>(
        shared, GenerateThreadPlan(opt, cluster, t), t));
  }
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker->Run(); });
  }
  for (auto& thread : threads) thread.join();
  for (auto& worker : workers) {
    report->MergeCounters(worker->counters());
  }
}

/// Validates one (snapshot, query) pair sequentially (epilogue checks).
bool ValidateSequential(const SiOracle& oracle, const aosi::Snapshot& snap,
                        const Query& q, const Result<QueryResult>& actual,
                        const std::string& config, const char* label,
                        StressReport* report) {
  if (!actual.ok()) {
    report->failures.push_back(config + "\n" + label + " query failed: " +
                               actual.status().ToString());
    return false;
  }
  const QueryResult expected = oracle.Eval(snap, q);
  const std::string diff = DiffResults(expected, *actual, q);
  if (!diff.empty()) {
    std::ostringstream out;
    out << config << "\nSI DIVERGENCE (" << label << ") at snapshot{epoch="
        << snap.epoch << ", deps=" << snap.deps.ToString() << "}: " << diff;
    report->failures.push_back(out.str());
    return false;
  }
  return true;
}

fs::path ScratchDir(const StressOptions& opt, const char* mode) {
  const fs::path base = opt.scratch_dir.empty()
                            ? fs::temp_directory_path()
                            : fs::path(opt.scratch_dir);
  return base / ("cubrick_check_si_" + std::string(mode) + "_" +
                 std::to_string(opt.seed) + "_" + std::to_string(getpid()));
}

}  // namespace

void StressReport::MergeCounters(const StressReport& other) {
  commits += other.commits;
  aborts += other.aborts;
  deletes += other.deletes;
  delete_rejects += other.delete_rejects;
  queries += other.queries;
  ryw_queries += other.ryw_queries;
  maintenance += other.maintenance;
  checkpoints += other.checkpoints;
  purge_rounds += other.purge_rounds;
  records_appended += other.records_appended;
}

std::string StressReport::Summary() const {
  std::ostringstream out;
  out << "commits=" << commits << " aborts=" << aborts
      << " deletes=" << deletes << " delete_rejects=" << delete_rejects
      << " queries=" << queries << " ryw=" << ryw_queries
      << " maintenance=" << maintenance << " checkpoints=" << checkpoints
      << " purge_rounds=" << purge_rounds << " rows=" << records_appended;
  return out.str();
}

StressOptions MakeSeedConfig(uint64_t seed, bool cluster) {
  StressOptions opt;
  opt.seed = seed;
  opt.threads = 3 + static_cast<int>(seed % 3);
  opt.shards_per_cube = 1 + seed % 3;
  opt.threaded_shards = seed % 2 == 0;
  opt.rollback_index = seed % 4 < 2;
  opt.with_persistence = seed % 5 == 0;
  if (cluster) {
    opt.num_nodes = 3;
    opt.replication_factor = 1 + seed % 2;
    opt.message_latency_us = seed % 7 == 0 ? 20 : 0;
  }
  return opt;
}

StressReport RunSingleNodeStress(const StressOptions& opt) {
  StressReport report;
  const std::string config = ConfigLine(opt, /*cluster=*/false);
  const fs::path dir = ScratchDir(opt, "single");
  DatabaseOptions db_options;
  db_options.shards_per_cube = opt.shards_per_cube;
  db_options.threaded_shards = opt.threaded_shards;
  db_options.rollback_index = opt.rollback_index;
  db_options.query_parallelism = opt.query_parallelism;
  db_options.ingest_parallelism = opt.ingest_parallelism;
  db_options.query_visibility_cache = opt.visibility_cache;
  db_options.online_check = opt.online_check;
  if (opt.with_persistence) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    db_options.data_dir = dir.string();
  }

  auto db = std::make_unique<Database>(db_options);
  Status created =
      db->CreateCube(kCube, StressDimensions(), StressMetrics());
  CUBRICK_CHECK(created.ok());
  SiOracle oracle(db->FindSchema(kCube));

  SingleNodeSut sut(db.get(), opt.with_persistence);
  SharedState shared;
  shared.sut = &sut;
  shared.oracle = &oracle;
  shared.failures = &report.failures;
  shared.config = config;

  // Dedicated purge churn (--purge-stress): loop the concurrent phased
  // purge while the workers scan, append and delete. Shared structure lock
  // only — same locking as MaintenanceOp, so deletes still serialize
  // against it — and LSE chases LCE only in the diskless case (with
  // persistence the LSE must stay checkpoint-bounded for the crash
  // epilogue). The short sleep keeps the shard queues from being purge-only.
  std::atomic<bool> stop_purge{false};
  std::thread purge_thread;
  // Tallied thread-locally: RunWorkers merges worker reports into `report`
  // while the purge thread is still running, so the shared report is only
  // touched after the join.
  uint64_t purge_rounds_run = 0;
  if (opt.purge_stress) {
    purge_thread = std::thread([&] {
      while (!stop_purge.load(std::memory_order_acquire)) {
        {
          ReaderMutexLock lock(shared.structure);
          if (!opt.with_persistence) {
            db->txns().TryAdvanceLSE(db->txns().LCE());
          }
          db->PurgeAll();
        }
        ++purge_rounds_run;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  RunWorkers(&shared, opt, /*cluster=*/false, &report);
  if (purge_thread.joinable()) {
    stop_purge.store(true, std::memory_order_release);
    purge_thread.join();
    report.purge_rounds += purge_rounds_run;
  }

  // PR 8 acceptance: with EBR retirement the vis cache has no retired
  // backlog, so Publish can never have declined, in this or any prior
  // seed (the registry is process-global and the counter only ever moves
  // if the decline path resurfaces).
  const uint64_t declined = obs::MetricsRegistry::Global()
                                .GetCounter("query.vis_cache_publish_declined")
                                ->Value();
  if (declined != 0) {
    report.failures.push_back(
        config + "\nvis-cache Publish declined " + std::to_string(declined) +
        " time(s); EBR retirement must make Publish unconditional");
  }

  // Epilogue 1: quiescent full-cube validation at the final LCE.
  const Query q = FullScanQuery();
  if (report.ok()) {
    aosi::Txn ro = db->BeginReadOnly();
    auto actual = db->QueryIn(ro, kCube, q);
    ValidateSequential(oracle, ro.snapshot(), q, actual, config,
                       "final read", &report);
    db->txns().EndReadOnly(ro);
  }
  // The checker dies with the Database in the crash epilogue below, so
  // collect its verdict now (the recovered instance gets a fresh one).
  AppendCheckerFailures(db->online_checker(), config, &report);

  // Epilogue 2: crash (destroy the Database; segments survive on disk),
  // recover, and verify the recovered state equals the oracle at the
  // recovered LSE.
  if (report.ok() && opt.with_persistence) {
    auto lse = db->Checkpoint();
    if (!lse.ok()) {
      report.failures.push_back(config + "\ncheckpoint failed: " +
                                lse.status().ToString());
    } else {
      db.reset();
      db = std::make_unique<Database>(db_options);
      created = db->CreateCube(kCube, StressDimensions(), StressMetrics());
      CUBRICK_CHECK(created.ok());
      const Status recovered = db->Recover();
      if (!recovered.ok()) {
        report.failures.push_back(config + "\nrecovery failed: " +
                                  recovered.ToString());
      } else {
        oracle.TruncateAfter(db->txns().LSE());
        aosi::Txn ro = db->BeginReadOnly();
        auto actual = db->QueryIn(ro, kCube, q);
        ValidateSequential(oracle, ro.snapshot(), q, actual, config,
                           "post-recovery read", &report);
        db->txns().EndReadOnly(ro);
        AppendCheckerFailures(db->online_checker(), config, &report);
      }
    }
  }

  if (opt.with_persistence) fs::remove_all(dir);
  return report;
}

StressReport RunClusterStress(const StressOptions& opt) {
  StressReport report;
  const std::string config = ConfigLine(opt, /*cluster=*/true);
  const fs::path dir = ScratchDir(opt, "cluster");
  cluster::ClusterOptions cluster_options;
  cluster_options.num_nodes = opt.num_nodes;
  cluster_options.shards_per_cube = opt.shards_per_cube;
  cluster_options.threaded_shards = opt.threaded_shards;
  cluster_options.replication_factor = opt.replication_factor;
  cluster_options.message_latency_us = opt.message_latency_us;
  if (opt.with_persistence) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    cluster_options.data_dir = dir.string();
  }

  cluster::Cluster cluster(cluster_options);
  Status created =
      cluster.CreateCube(kCube, StressDimensions(), StressMetrics());
  CUBRICK_CHECK(created.ok());
  SiOracle oracle(cluster.FindSchema(kCube));

  // The cluster has no DatabaseOptions knob (nodes share one process-wide
  // hook anyway), so the harness installs one checker over the whole run,
  // epilogues included.
  std::unique_ptr<OnlineChecker> checker;
  if (opt.online_check) {
    checker = std::make_unique<OnlineChecker>();
    checker->Install();
  }

  ClusterSut sut(&cluster, opt.with_persistence);
  SharedState shared;
  shared.sut = &sut;
  shared.oracle = &oracle;
  shared.failures = &report.failures;
  shared.config = config;
  RunWorkers(&shared, opt, /*cluster=*/true, &report);

  // Epilogue 1: quiescent validation from every coordinator.
  const Query q = FullScanQuery();
  for (uint32_t n = 1; n <= opt.num_nodes && report.ok(); ++n) {
    cluster::DistTxn ro = cluster.BeginReadOnly(n);
    auto actual = cluster.Query(&ro, kCube, q);
    ValidateSequential(oracle, ro.txn.snapshot(), q, actual, config,
                       "final coordinator read", &report);
    cluster.EndReadOnly(&ro);
  }

  // Epilogue 2: crash one node and recover it from local segments plus
  // replica peers; every coordinator must still agree with the oracle.
  if (report.ok() && opt.with_persistence && opt.replication_factor >= 2) {
    auto lse = cluster.CheckpointAll();
    if (!lse.ok()) {
      report.failures.push_back(config + "\ncheckpoint-all failed: " +
                                lse.status().ToString());
    } else {
      const uint32_t victim =
          1 + static_cast<uint32_t>(opt.seed % opt.num_nodes);
      Status status = cluster.CrashNode(victim);
      CUBRICK_CHECK(status.ok());
      for (uint32_t n = 1; n <= opt.num_nodes && report.ok(); ++n) {
        if (n == victim) continue;
        cluster::DistTxn ro = cluster.BeginReadOnly(n);
        auto actual = cluster.Query(&ro, kCube, q);
        ValidateSequential(oracle, ro.txn.snapshot(), q, actual, config,
                           "during-outage read", &report);
        cluster.EndReadOnly(&ro);
      }
      status = cluster.RecoverNode(victim);
      if (!status.ok()) {
        report.failures.push_back(config + "\nnode recovery failed: " +
                                  status.ToString());
      }
      for (uint32_t n = 1; n <= opt.num_nodes && report.ok(); ++n) {
        cluster::DistTxn ro = cluster.BeginReadOnly(n);
        auto actual = cluster.Query(&ro, kCube, q);
        ValidateSequential(oracle, ro.txn.snapshot(), q, actual, config,
                           "post-recovery read", &report);
        cluster.EndReadOnly(&ro);
      }
    }
  }

  if (checker != nullptr) {
    checker->Uninstall();
    AppendCheckerFailures(checker.get(), config, &report);
  }
  if (opt.with_persistence) fs::remove_all(dir);
  return report;
}

}  // namespace cubrick::check
