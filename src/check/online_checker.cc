#include "check/online_checker.h"

#include <chrono>
#include <sstream>

#include "obs/span.h"

namespace cubrick::check {

namespace {

/// SplitMix64: the sampling decision and the fingerprint mix. Pure
/// function of its input — no RNG state, so sampling is interleaving-
/// independent (the determinism contract of CheckerHook::ShouldSample).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t CombineHash(uint64_t h, uint64_t v) {
  return Mix64(h ^ Mix64(v));
}

uint64_t FingerprintDeps(const aosi::EpochSet& deps) {
  uint64_t h = 0x5ca1ab1eULL;
  for (aosi::Epoch e : deps) h = CombineHash(h, e);
  return h;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

const char* KindName(ViolationRecord::Kind kind) {
  switch (kind) {
    case ViolationRecord::Kind::kStaleRead:
      return "stale_read";
    case ViolationRecord::Kind::kMissingVisible:
      return "missing_visible";
    case ViolationRecord::Kind::kNonRepeatable:
      return "non_repeatable";
    case ViolationRecord::Kind::kLostHorizon:
      return "lost_horizon";
  }
  return "unknown";
}

}  // namespace

// --- SampleRing --------------------------------------------------------------

SampleRing::SampleRing(size_t capacity) {
  const size_t cap = RoundUpPow2(capacity < 2 ? 2 : capacity);
  mask_ = cap - 1;
  cells_ = std::vector<Cell>(cap);
  for (size_t i = 0; i < cap; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool SampleRing::TryPush(const ScanSample& sample) {
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t cell_seq = cell.seq.load(std::memory_order_acquire);
    const int64_t diff =
        static_cast<int64_t>(cell_seq) - static_cast<int64_t>(pos);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
        cell.value = sample;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded pos; retry against the new cell.
    } else if (diff < 0) {
      return false;  // full: the consumer has not freed this cell yet
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool SampleRing::TryPop(ScanSample* out) {
  uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t cell_seq = cell.seq.load(std::memory_order_acquire);
    const int64_t diff =
        static_cast<int64_t>(cell_seq) - static_cast<int64_t>(pos + 1);
    if (diff == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
        *out = cell.value;
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // empty
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

size_t SampleRing::ApproxDepth() const {
  const uint64_t enq = enqueue_pos_.load(std::memory_order_acquire);
  const uint64_t deq = dequeue_pos_.load(std::memory_order_acquire);
  return enq >= deq ? static_cast<size_t>(enq - deq) : 0;
}

// --- OnlineChecker -----------------------------------------------------------

OnlineChecker::OnlineChecker(OnlineCheckerOptions options)
    : options_(options), ring_(options.ring_capacity) {
  auto& reg = obs::MetricsRegistry::Global();
  metrics_ = {
      reg.GetCounter("check.online.sampled_txns"),
      reg.GetCounter("check.online.observations"),
      reg.GetCounter("check.online.ring_drops"),
      reg.GetCounter("check.online.validated"),
      reg.GetCounter("check.online.violations"),
      reg.GetCounter("check.online.stale_reads"),
      reg.GetCounter("check.online.missing_visible"),
      reg.GetCounter("check.online.non_repeatable"),
      reg.GetCounter("check.online.lost_horizon"),
      reg.GetCounter("check.online.stale_begins"),
      reg.GetCounter("check.online.truncated"),
      reg.GetGauge("check.online.validation_lag"),
  };
}

OnlineChecker::~OnlineChecker() { Uninstall(); }

void OnlineChecker::Install() {
  aosi::SetCheckerHook(this);
  installed_ = true;
  if (options_.background_validation && !validator_thread_.joinable()) {
    {
      MutexLock lock(validator_mutex_);
      stop_validator_ = false;
    }
    validator_thread_ = std::thread([this] { ValidatorLoop(); });
  }
}

void OnlineChecker::Uninstall() {
  if (installed_ && aosi::GetCheckerHook() == this) {
    aosi::SetCheckerHook(nullptr);
  }
  installed_ = false;
  if (validator_thread_.joinable()) {
    {
      MutexLock lock(validator_mutex_);
      stop_validator_ = true;
    }
    validator_cv_.NotifyAll();
    validator_thread_.join();
  }
  // Final drain: every record pushed before the hook was removed gets
  // validated, so tests can assert on ViolationCount() right after.
  DrainForTest();
}

bool OnlineChecker::ShouldSample(aosi::Epoch snapshot_epoch) const {
  if (options_.sample_permille >= 1000) return true;
  if (options_.sample_permille == 0) return false;
  return Mix64(snapshot_epoch) % 1000 < options_.sample_permille;
}

void OnlineChecker::OnBegin(const aosi::Txn& txn) {
  if (!ShouldSample(txn.epoch)) return;
  metrics_.sampled_txns->Add();
  MutexLock lock(state_mutex_);
  // Effective horizon for lost-horizon checking: deps at or below the
  // highest LSE this checker has seen cannot be legitimate pins. A
  // genuinely pending epoch keeps every node's LCE — and therefore LSE —
  // below itself; the one way a dep ends up under an established LSE is a
  // stale draft epoch from a desynced coordinator clock, which peers
  // reject and which aborts having written nothing (checker_hook.h,
  // OnStaleRemoteBegin). Pinning on such a dep would make every later
  // republication of the pre-existing LSE look like a violation.
  aosi::Epoch min_live_dep = aosi::kNoEpoch;
  for (aosi::Epoch d : txn.deps) {
    if (!aosi::IsNoEpoch(max_lse_seen_) && aosi::AtOrBefore(d, max_lse_seen_)) {
      continue;
    }
    min_live_dep = aosi::IsNoEpoch(min_live_dep)
                       ? d
                       : aosi::MinEpoch(min_live_dep, d);
  }
  const aosi::Epoch horizon =
      aosi::IsNoEpoch(min_live_dep)
          ? txn.epoch
          : aosi::MinEpoch(min_live_dep - 1, txn.epoch);
  active_horizons_.emplace(txn.epoch, horizon);
}

void OnlineChecker::OnFinish(const aosi::Txn& txn, bool /*committed*/) {
  if (!ShouldSample(txn.epoch)) return;
  MutexLock lock(state_mutex_);
  // Erase ONE registration; RO snapshots share the LCE epoch, and AugmentDeps
  // may have shifted a RW horizon since OnBegin, so match by epoch alone.
  auto it = active_horizons_.find(txn.epoch);
  if (it != active_horizons_.end()) active_horizons_.erase(it);
}

void OnlineChecker::OnScanObservation(const aosi::ScanObservation& obs) {
  metrics_.observations->Add();
  ScanSample sample;
  sample.snapshot_epoch = obs.snapshot_epoch;
  if (obs.deps != nullptr) {
    sample.deps_fingerprint = FingerprintDeps(*obs.deps);
    for (aosi::Epoch e : *obs.deps) {
      if (sample.num_deps >= ScanSample::kMaxDeps) {
        sample.deps_truncated = true;
        break;
      }
      sample.deps[sample.num_deps++] = e;
    }
  }
  sample.bid = obs.bid;
  sample.history_version = obs.history_version;
  sample.visible_total = obs.visible_total;
  // The producer may already have bounded the run list at the source
  // (executor.cc decodes at most a kMaxObservedRuns prefix).
  sample.runs_truncated = obs.runs_truncated;
  for (size_t i = 0; i < obs.num_runs; ++i) {
    if (sample.num_runs >= ScanSample::kMaxRuns) {
      sample.runs_truncated = true;
      break;
    }
    sample.runs[sample.num_runs++] = obs.runs[i];
  }
  if (sample.deps_truncated || sample.runs_truncated) {
    metrics_.truncated->Add();
  }
  if (!ring_.TryPush(sample)) {
    metrics_.ring_drops->Add();
    return;
  }
  const size_t depth = ring_.ApproxDepth();
  metrics_.validation_lag->Set(static_cast<int64_t>(depth));
  // The validator polls on a 1 ms cadence (ValidatorLoop), so a wakeup per
  // sample would buy at most 1 ms of validation lag while charging the
  // scan thread a context switch — on a single-core box that alone pushed
  // checker-on query latency past the 5% overhead budget. Kick it eagerly
  // only when the ring is filling faster than the poll drains it.
  if (depth >= ring_.capacity() / 2) validator_cv_.NotifyOne();
}

void OnlineChecker::OnLseAdvance(aosi::Epoch lse) {
  MutexLock lock(state_mutex_);
  // Judge only a new high-water mark. TryAdvanceLSE republishes the
  // current LSE on every maintenance round; re-checking an old advance
  // would compare it against snapshots that began (legitimately) after the
  // LSE already stood there, and repeat any verdict once per round.
  if (!aosi::IsNoEpoch(max_lse_seen_) && aosi::AtOrBefore(lse, max_lse_seen_)) {
    return;
  }
  max_lse_seen_ = aosi::MaxEpoch(max_lse_seen_, lse);
  for (const auto& [epoch, horizon] : active_horizons_) {
    if (aosi::After(lse, horizon)) {
      std::ostringstream oss;
      oss << "LSE advanced to " << lse << " past the horizon " << horizon
          << " of live sampled snapshot epoch=" << epoch
          << "; purge may destroy history the snapshot still distinguishes";
      metrics_.lost_horizon->Add();
      metrics_.violations->Add();
      violation_count_++;
      if (violations_.size() < options_.max_violations) {
        violations_.push_back(
            {ViolationRecord::Kind::kLostHorizon, oss.str()});
      }
    }
  }
}

void OnlineChecker::OnStaleRemoteBegin(aosi::Epoch epoch, aosi::Epoch lce,
                                       bool rejected) {
  metrics_.stale_begins->Add();
  if (rejected) return;  // refused and redrawn by the cluster layer: averted
  std::ostringstream oss;
  oss << "remote begin epoch=" << epoch
      << " silently dropped after LCE=" << lce
      << " passed it; snapshots pinned at that LCE can see its later writes";
  RecordViolation(ViolationRecord::Kind::kLostHorizon, oss.str());
}

void OnlineChecker::ValidatorLoop() {
  for (;;) {
    DrainOnce();
    MutexLock lock(validator_mutex_);
    if (stop_validator_) return;
    validator_cv_.WaitFor(lock, std::chrono::milliseconds(1));
  }
}

size_t OnlineChecker::DrainOnce() {
  obs::ObsSpan span("check.validate");
  size_t validated = 0;
  ScanSample sample;
  while (ring_.TryPop(&sample)) {
    ValidateSample(sample);
    ++validated;
  }
  if (validated > 0) {
    metrics_.validated->Add(validated);
    metrics_.validation_lag->Set(static_cast<int64_t>(ring_.ApproxDepth()));
  }
  return validated;
}

void OnlineChecker::DrainForTest() { DrainOnce(); }

size_t OnlineChecker::ActiveHorizonCountForTest() const {
  MutexLock lock(state_mutex_);
  return active_horizons_.size();
}

void OnlineChecker::ValidateSample(const ScanSample& sample) {
  // Rebuild the snapshot from the recorded metadata. With a truncated deps
  // copy, membership is only decidable for epochs at or below the largest
  // copied dep; runs beyond that bound are skipped rather than guessed.
  std::vector<aosi::Epoch> dep_vec(sample.deps, sample.deps + sample.num_deps);
  const aosi::Snapshot snapshot{sample.snapshot_epoch,
                                aosi::EpochSet(std::move(dep_vec))};
  const aosi::Epoch max_known_dep =
      sample.num_deps > 0 ? sample.deps[sample.num_deps - 1] : aosi::kNoEpoch;
  auto deps_decidable = [&](aosi::Epoch e) {
    return !sample.deps_truncated || aosi::AtOrBefore(e, max_known_dep);
  };

  // Visible delete markers recorded with the sample (the §III-C2 frontier).
  struct VisibleDelete {
    aosi::Epoch k;
    uint64_t point;
  };
  std::vector<VisibleDelete> deletes;
  for (uint32_t i = 0; i < sample.num_runs; ++i) {
    const aosi::ObservedRun& run = sample.runs[i];
    if (run.is_delete && deps_decidable(run.epoch) &&
        snapshot.Sees(run.epoch)) {
      deletes.push_back({run.epoch, run.begin});
    }
  }

  for (uint32_t i = 0; i < sample.num_runs; ++i) {
    const aosi::ObservedRun& run = sample.runs[i];
    if (run.is_delete) continue;
    if (!deps_decidable(run.epoch)) continue;
    uint64_t expected = 0;
    if (snapshot.Sees(run.epoch)) {
      // Mirror of aosi::ApplyDeleteCleanup: a visible delete by k wipes
      // earlier transactions' runs entirely and k's own records before its
      // delete point.
      bool wiped = false;
      uint64_t cleared_to = run.begin;
      for (const VisibleDelete& del : deletes) {
        if (aosi::HappensBefore(run.epoch, del.k)) {
          wiped = true;
          break;
        }
        if (aosi::SameEpoch(run.epoch, del.k)) {
          const uint64_t upto = del.point < run.end ? del.point : run.end;
          if (upto > cleared_to) cleared_to = upto;
        }
      }
      if (!wiped) expected = run.end - cleared_to;
    }
    // With a truncated run list a delete marker may be missing from our
    // copy, so `expected` is only an upper bound: observed > expected is
    // still always a violation, observed < expected is not.
    if (run.visible_rows > expected) {
      std::ostringstream oss;
      oss << "run epoch=" << run.epoch << " [" << run.begin << ","
          << run.end << ") contributed " << run.visible_rows
          << " rows, visibility rule admits " << expected
          << " under snapshot{epoch=" << snapshot.epoch
          << ", deps=" << snapshot.deps.ToString() << "} bid=" << sample.bid;
      RecordViolation(ViolationRecord::Kind::kStaleRead, oss.str());
      metrics_.stale_reads->Add();
    } else if (run.visible_rows < expected && !sample.runs_truncated) {
      std::ostringstream oss;
      oss << "run epoch=" << run.epoch << " [" << run.begin << ","
          << run.end << ") contributed only " << run.visible_rows
          << " of " << expected << " visible rows under snapshot{epoch="
          << snapshot.epoch << ", deps=" << snapshot.deps.ToString()
          << "} bid=" << sample.bid;
      RecordViolation(ViolationRecord::Kind::kMissingVisible, oss.str());
      metrics_.missing_visible->Add();
    }
  }

  // Repeatability: the same (snapshot epoch, deps, brick, history version)
  // must always yield the same visible total — the epochs vector is
  // append-only and the deps set pins concurrent writers, so any drift
  // means the snapshot was not repeatable.
  uint64_t key = CombineHash(sample.snapshot_epoch, sample.deps_fingerprint);
  key = CombineHash(key, sample.bid);
  key = CombineHash(key, sample.history_version);
  MutexLock lock(state_mutex_);
  auto [it, inserted] = seen_totals_.emplace(key, sample.visible_total);
  if (inserted) {
    seen_order_.push_back(key);
    if (seen_totals_.size() > options_.max_fingerprints &&
        seen_evict_next_ < seen_order_.size()) {
      seen_totals_.erase(seen_order_[seen_evict_next_++]);
    }
  } else if (it->second != sample.visible_total) {
    std::ostringstream oss;
    oss << "snapshot{epoch=" << sample.snapshot_epoch << "} bid="
        << sample.bid << " history_version=" << sample.history_version
        << " observed " << sample.visible_total << " visible rows after "
        << it->second << " earlier — snapshot is not repeatable";
    metrics_.non_repeatable->Add();
    metrics_.violations->Add();
    violation_count_++;
    if (violations_.size() < options_.max_violations) {
      violations_.push_back(
          {ViolationRecord::Kind::kNonRepeatable, oss.str()});
    }
  }
}

void OnlineChecker::RecordViolation(ViolationRecord::Kind kind,
                                    std::string detail) {
  metrics_.violations->Add();
  MutexLock lock(state_mutex_);
  violation_count_++;
  if (violations_.size() < options_.max_violations) {
    violations_.push_back({kind, std::move(detail)});
  }
}

uint64_t OnlineChecker::ViolationCount() const {
  MutexLock lock(state_mutex_);
  return violation_count_;
}

std::vector<ViolationRecord> OnlineChecker::Violations() const {
  MutexLock lock(state_mutex_);
  return violations_;
}

std::string ViolationKindName(ViolationRecord::Kind kind) {
  return KindName(kind);
}

}  // namespace cubrick::check
