// check_si: seeded snapshot-isolation stress runner (see stress.h).
//
//   check_si --mode=single|cluster|both --seeds=N --seed0=S --ops=K [-v]
//            [--parallel=P] [--ingest-parallel=P] [--cache] [--online]
//            [--purge-stress] [--simd=scalar|avx2|neon|auto]
//            [--dump-metrics]
//
// Runs N seeds starting at S; each seed derives a configuration via
// MakeSeedConfig and runs the full workload. Exit code 0 when every seed
// passes; on divergence, prints the replayable diagnostic (config line,
// seed, per-thread operation trace) and exits 1.
//
// --parallel=P runs single-node seeds with the morsel-parallel query
// executor at fan-out P (DatabaseOptions::query_parallelism); the oracle
// comparison is unchanged because the workload's metric values are small
// integers, so aggregation is exact regardless of merge order. Cluster
// seeds ignore it (cluster tables scan serially).
//
// --ingest-parallel=P runs single-node seeds with the morsel-parallel
// ingest pipeline at fan-out P (DatabaseOptions::ingest_parallelism;
// DESIGN.md §4f). The two-phase dictionary encode makes parallel parse
// output bit-identical to serial — ids depend only on prior dictionary
// state plus the set of new strings — so the oracle comparison is
// unchanged; the flag exists to race snapshot publication, sorted batch
// inserts and group shard appends against scans, purge and recovery.
// Cluster seeds ignore it (the coordinator parses serially).
//
// --cache runs single-node seeds with the per-brick visibility-bitmap
// cache enabled (DatabaseOptions::query_visibility_cache; DESIGN.md §4c).
// The cache memoizes exactly the bitmap the uncached path would build, so
// the oracle comparison is unchanged; the flag exists to drive the cache's
// atomic publish/lookup/invalidate machinery under the stress mix —
// combine with --parallel=P so concurrent morsel workers hit the slots.
//
// --purge-stress runs single-node seeds with a dedicated purge thread
// looping the concurrent phased purge pipeline (engine/table.cc) for the
// whole workload, so compaction installs, vis-cache invalidations and EBR
// retirement race live scans continuously instead of only at maintenance
// ops. Purge never touches history above the LSE, so the oracle comparison
// is unchanged. Combine with --cache --parallel=P --online for the full
// reclamation surface. Cluster seeds ignore it.
//
// --simd=B forces the scan-kernel SIMD backend (common/simd.h) for the
// whole run. Kernel results are bit-identical across backends by contract,
// so the oracle comparison is unchanged; the flag exists so CI can prove
// serial==parallel==cached equivalence under every dispatch target
// (ctest check_si_single_simd_scalar*).
//
// --online additionally installs the online SI checker (online_checker.h)
// for every seed: sampled transactions and scans are validated against the
// visibility rules while the workload runs, and any violation the checker
// records fails the seed exactly like an oracle divergence — each --online
// run therefore cross-checks the online checker against the offline oracle.
//
// --dump-metrics prints the Prometheus exposition of the metrics registry
// after all seeds finish — the stress harness doubles as a concurrent-writer
// workout for the observability layer, and the dump proves the snapshot
// stays consistent under it. With --parallel=P > 1 the dump additionally
// carries the pool.* gauges/counters and the query.worker_scan_us /
// query.parallel_merge_us histograms, and query.bitmap_density_permille
// shows up as a histogram (docs/OBSERVABILITY.md).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/stress.h"
#include "common/simd.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace {

struct Args {
  std::string mode = "both";
  uint64_t seeds = 20;
  uint64_t seed0 = 1;
  int ops = 0;  // 0: keep MakeSeedConfig default
  int parallel = 0;  // 0: keep MakeSeedConfig default (serial)
  int ingest_parallel = 0;  // 0: keep MakeSeedConfig default (serial)
  bool cache = false;  // MakeSeedConfig default stays uncached
  bool online = false;  // install the online SI checker per seed
  bool purge_stress = false;  // dedicated concurrent-purge thread per seed
  std::string simd;  // empty: keep the process default backend
  bool verbose = false;
  bool dump_metrics = false;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--mode", &value)) {
      args.mode = value;
    } else if (ParseFlag(argv[i], "--seeds", &value)) {
      args.seeds = std::strtoull(value, nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed0", &value)) {
      args.seed0 = std::strtoull(value, nullptr, 10);
    } else if (ParseFlag(argv[i], "--ops", &value)) {
      args.ops = std::atoi(value);
    } else if (ParseFlag(argv[i], "--parallel", &value)) {
      args.parallel = std::atoi(value);
    } else if (ParseFlag(argv[i], "--ingest-parallel", &value)) {
      args.ingest_parallel = std::atoi(value);
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      args.cache = true;
    } else if (std::strcmp(argv[i], "--online") == 0) {
      args.online = true;
    } else if (std::strcmp(argv[i], "--purge-stress") == 0) {
      args.purge_stress = true;
    } else if (ParseFlag(argv[i], "--simd", &value)) {
      args.simd = value;
    } else if (std::strcmp(argv[i], "-v") == 0 ||
               std::strcmp(argv[i], "--verbose") == 0) {
      args.verbose = true;
    } else if (std::strcmp(argv[i], "--dump-metrics") == 0) {
      args.dump_metrics = true;
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: check_si [--mode=single|cluster|both] [--seeds=N] "
                   "[--seed0=S] [--ops=K] [--parallel=P] "
                   "[--ingest-parallel=P] [--cache] [--online] "
                   "[--purge-stress] [--simd=B] [-v] [--dump-metrics]\n",
                   argv[i]);
      std::exit(2);
    }
  }
  if (args.mode != "single" && args.mode != "cluster" &&
      args.mode != "both") {
    std::fprintf(stderr, "bad --mode=%s\n", args.mode.c_str());
    std::exit(2);
  }
  return args;
}

/// Runs one seed in one mode; returns false (after printing the full
/// diagnostic) on divergence.
bool RunOne(const Args& args, uint64_t seed, bool cluster) {
  cubrick::check::StressOptions opt =
      cubrick::check::MakeSeedConfig(seed, cluster);
  if (args.ops > 0) opt.ops_per_thread = args.ops;
  if (args.parallel > 0) {
    opt.query_parallelism = static_cast<size_t>(args.parallel);
  }
  if (args.ingest_parallel > 0) {
    opt.ingest_parallelism = static_cast<size_t>(args.ingest_parallel);
  }
  if (args.cache) opt.visibility_cache = true;
  if (args.online) opt.online_check = true;
  if (args.purge_stress && !cluster) opt.purge_stress = true;
  const cubrick::check::StressReport report =
      cluster ? cubrick::check::RunClusterStress(opt)
              : cubrick::check::RunSingleNodeStress(opt);
  if (!report.ok()) {
    std::fprintf(stderr, "\n=== FAIL: %s seed %llu ===\n",
                 cluster ? "cluster" : "single",
                 static_cast<unsigned long long>(seed));
    for (const std::string& failure : report.failures) {
      std::fprintf(stderr, "%s\n", failure.c_str());
    }
    return false;
  }
  if (args.verbose) {
    std::printf("%s seed %llu ok: %s\n", cluster ? "cluster" : "single",
                static_cast<unsigned long long>(seed),
                report.Summary().c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (!args.simd.empty()) {
    cubrick::simd::ConfigureFromString(args.simd.c_str());
    std::printf("[check_si] simd backend: %s\n",
                cubrick::simd::ActiveBackendName());
  }
  const bool run_single = args.mode == "single" || args.mode == "both";
  const bool run_cluster = args.mode == "cluster" || args.mode == "both";
  uint64_t passed = 0;
  for (uint64_t i = 0; i < args.seeds; ++i) {
    const uint64_t seed = args.seed0 + i;
    if (run_single && !RunOne(args, seed, /*cluster=*/false)) return 1;
    if (run_cluster && !RunOne(args, seed, /*cluster=*/true)) return 1;
    ++passed;
    if (!args.verbose && passed % 25 == 0) {
      std::printf("[check_si] %llu/%llu seeds ok\n",
                  static_cast<unsigned long long>(passed),
                  static_cast<unsigned long long>(args.seeds));
      std::fflush(stdout);
    }
  }
  std::printf("[check_si] PASS: %llu seeds, mode=%s\n",
              static_cast<unsigned long long>(passed), args.mode.c_str());
  if (args.dump_metrics) {
    const cubrick::obs::MetricsSnapshot snap =
        cubrick::obs::MetricsRegistry::Global().Snapshot();
    std::printf("\n%s", cubrick::obs::ExportPrometheus(snap).c_str());
  }
  return 0;
}
