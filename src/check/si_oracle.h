// Snapshot-isolation oracle (checker-driven validation of AOSI).
//
// A deliberately naive, mutex-guarded reference store that records every
// logical operation — append, partition delete, rollback — with its epoch,
// and can answer "what must a snapshot see" from first principles:
//
//   record r appended by transaction j (at physical position seq within its
//   brick) is visible to snapshot S iff
//     S.Sees(j)  and  no delete marker d in the same brick has
//     S.Sees(d.epoch) && (j < d.epoch || (j == d.epoch && r.seq < d.seq))
//
// which is exactly the §III-C3 bitmap rule (deletes clear logically-older
// transactions regardless of physical position, plus the deleter's own
// records before the delete point), evaluated without any of the engine's
// machinery: no epochs vectors, no bitmaps, no purge, no shards. Divergence
// between the engine and this store is by construction a concurrency-control
// bug in one of them.
//
// The oracle never purges: purge must not change the answer of any valid
// snapshot, so keeping everything is what makes the oracle able to detect a
// purge that removed too much.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aosi/epoch.h"
#include "common/mutex.h"
#include "ingest/parser.h"
#include "query/query.h"
#include "storage/schema.h"

namespace cubrick::check {

/// The reference store. Thread-safe; every method takes one global mutex
/// (correctness over speed — this is the checker, not the system).
///
/// Restriction: cubes with integer dimensions and numeric metrics only
/// (the stress schema). String columns would need the engine's dictionaries,
/// which would defeat the point of an independent oracle.
class SiOracle {
 public:
  explicit SiOracle(std::shared_ptr<const CubeSchema> schema);

  /// Logs the appends of `epoch`, in call order. Records must be valid for
  /// the schema (the driver only generates valid ones); each is routed to
  /// its brick with the schema's bid computation.
  void Append(aosi::Epoch epoch, const std::vector<Record>& records);

  /// Logs a partition delete stamped `epoch` over exactly `bricks` — the
  /// engine's covered-and-materialized brick set at delete time. The caller
  /// must capture that set atomically with the engine-side mark (the stress
  /// driver holds its structure lock exclusively around both).
  void Delete(aosi::Epoch epoch, const std::vector<Bid>& bricks);

  /// Erases every operation of `victim`, mirroring the physical removal a
  /// rollback performs. Must be called before the engine-side transaction
  /// manager finalizes the abort (i.e. before LCE may pass the victim).
  void Rollback(aosi::Epoch victim);

  /// Drops every operation with epoch > lse — the single-node crash
  /// recovery truncation (data after the last durable epoch is lost).
  void TruncateAfter(aosi::Epoch lse);

  /// The expected result of `query` under `snapshot` (Snapshot Isolation).
  QueryResult Eval(const aosi::Snapshot& snapshot, const Query& query) const;

  /// Number of records visible to `snapshot` (diagnostics / unit tests).
  uint64_t VisibleRows(const aosi::Snapshot& snapshot) const;

  /// Total logged append rows (diagnostics).
  uint64_t LoggedRows() const;

  const CubeSchema& schema() const { return *schema_; }

 private:
  struct Op {
    aosi::Epoch epoch = aosi::kNoEpoch;
    /// Global log order; orders a delete against the deleter's own appends.
    uint64_t seq = 0;
    bool is_delete = false;
    /// Appends only: encoded dimension coordinates and metric values.
    std::vector<uint64_t> coords;
    std::vector<double> metrics;
  };

  /// Visits every visible append op.
  template <typename Fn>
  void ForEachVisibleLocked(const aosi::Snapshot& snapshot, Fn&& fn) const
      REQUIRES(mutex_);

  std::shared_ptr<const CubeSchema> schema_;
  mutable Mutex mutex_;
  uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
  std::map<Bid, std::vector<Op>> bricks_ GUARDED_BY(mutex_);
};

/// Compares an engine result against the oracle's expectation. Returns an
/// empty string when they agree, else a human-readable description of the
/// first difference (missing/extra group, mismatching aggregate).
std::string DiffResults(const QueryResult& expected, const QueryResult& actual,
                        const Query& query);

}  // namespace cubrick::check
