#include "check/si_oracle.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace cubrick::check {

SiOracle::SiOracle(std::shared_ptr<const CubeSchema> schema)
    : schema_(std::move(schema)) {
  for (const auto& dim : schema_->dimensions()) {
    CUBRICK_CHECK(!dim.is_string);  // see class comment
  }
  for (const auto& metric : schema_->metrics()) {
    CUBRICK_CHECK(metric.type != DataType::kString);
  }
}

void SiOracle::Append(aosi::Epoch epoch, const std::vector<Record>& records) {
  const size_t num_dims = schema_->num_dimensions();
  const size_t num_metrics = schema_->num_metrics();
  MutexLock lock(mutex_);
  for (const Record& record : records) {
    CUBRICK_CHECK(record.values.size() == num_dims + num_metrics);
    Op op;
    op.epoch = epoch;
    op.seq = next_seq_++;
    op.coords.reserve(num_dims);
    for (size_t d = 0; d < num_dims; ++d) {
      CUBRICK_CHECK(record.values[d].is_int64());
      op.coords.push_back(static_cast<uint64_t>(record.values[d].as_int64()));
    }
    op.metrics.reserve(num_metrics);
    for (size_t m = 0; m < num_metrics; ++m) {
      const Value& v = record.values[num_dims + m];
      op.metrics.push_back(v.is_int64() ? static_cast<double>(v.as_int64())
                                        : v.as_double());
    }
    auto bid = schema_->BidFor(op.coords);
    CUBRICK_CHECK(bid.ok());
    bricks_[*bid].push_back(std::move(op));
  }
}

void SiOracle::Delete(aosi::Epoch epoch, const std::vector<Bid>& bricks) {
  MutexLock lock(mutex_);
  for (Bid bid : bricks) {
    Op op;
    op.epoch = epoch;
    op.seq = next_seq_++;
    op.is_delete = true;
    // A marker in a brick the oracle has not seen yet is kept: the engine
    // marked a physically-present brick whose records were since rolled
    // back, and the marker still clears future late arrivals.
    bricks_[bid].push_back(std::move(op));
  }
}

void SiOracle::Rollback(aosi::Epoch victim) {
  MutexLock lock(mutex_);
  for (auto& [bid, ops] : bricks_) {
    ops.erase(std::remove_if(ops.begin(), ops.end(),
                             [victim](const Op& op) {
                               return aosi::SameEpoch(op.epoch, victim);
                             }),
              ops.end());
  }
}

void SiOracle::TruncateAfter(aosi::Epoch lse) {
  MutexLock lock(mutex_);
  for (auto& [bid, ops] : bricks_) {
    ops.erase(std::remove_if(
                  ops.begin(), ops.end(),
                  [lse](const Op& op) { return aosi::After(op.epoch, lse); }),
              ops.end());
  }
}

template <typename Fn>
void SiOracle::ForEachVisibleLocked(const aosi::Snapshot& snapshot,
                                    Fn&& fn) const {
  for (const auto& [bid, ops] : bricks_) {
    // Delete frontier: a record (j, seq) is deleted iff some visible marker
    // (k, dseq) has (j, seq) < (k, dseq) lexicographically — j < k covers
    // logically-older transactions wherever they sit, j == k && seq < dseq
    // covers the deleter's own records before the delete point. Only the
    // lexicographic maximum over visible markers matters.
    aosi::Epoch frontier_epoch = aosi::kNoEpoch;
    uint64_t frontier_seq = 0;
    bool has_frontier = false;
    for (const Op& op : ops) {
      if (!op.is_delete || !snapshot.Sees(op.epoch)) continue;
      if (!has_frontier || aosi::After(op.epoch, frontier_epoch) ||
          (aosi::SameEpoch(op.epoch, frontier_epoch) &&
           op.seq > frontier_seq)) {
        frontier_epoch = op.epoch;
        frontier_seq = op.seq;
        has_frontier = true;
      }
    }
    for (const Op& op : ops) {
      if (op.is_delete || !snapshot.Sees(op.epoch)) continue;
      if (has_frontier &&
          (aosi::HappensBefore(op.epoch, frontier_epoch) ||
           (aosi::SameEpoch(op.epoch, frontier_epoch) &&
            op.seq < frontier_seq))) {
        continue;
      }
      fn(op);
    }
  }
}

QueryResult SiOracle::Eval(const aosi::Snapshot& snapshot,
                           const Query& query) const {
  QueryResult result(query.aggs.size());
  MutexLock lock(mutex_);
  ForEachVisibleLocked(snapshot, [&](const Op& op) {
    for (const FilterClause& filter : query.filters) {
      if (!filter.Matches(op.coords[filter.dim])) return;
    }
    QueryResult::GroupKey key;
    key.reserve(query.group_by.size());
    for (size_t dim : query.group_by) key.push_back(op.coords[dim]);
    for (size_t a = 0; a < query.aggs.size(); ++a) {
      result.Accumulate(key, a, op.metrics[query.aggs[a].metric]);
    }
  });
  return result;
}

uint64_t SiOracle::VisibleRows(const aosi::Snapshot& snapshot) const {
  uint64_t n = 0;
  MutexLock lock(mutex_);
  ForEachVisibleLocked(snapshot, [&](const Op&) { ++n; });
  return n;
}

uint64_t SiOracle::LoggedRows() const {
  uint64_t n = 0;
  MutexLock lock(mutex_);
  for (const auto& [bid, ops] : bricks_) {
    for (const Op& op : ops) {
      if (!op.is_delete) ++n;
    }
  }
  return n;
}

namespace {

std::string KeyToString(const QueryResult::GroupKey& key) {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out << ", ";
    out << key[i];
  }
  out << ")";
  return out.str();
}

}  // namespace

std::string DiffResults(const QueryResult& expected, const QueryResult& actual,
                        const Query& query) {
  for (const auto& [key, states] : expected.groups()) {
    auto it = actual.groups().find(key);
    if (it == actual.groups().end()) {
      return "group " + KeyToString(key) + " missing from engine result";
    }
    for (size_t a = 0; a < query.aggs.size(); ++a) {
      const AggSpec::Fn fn = query.aggs[a].fn;
      const double want = states[a].Finalize(fn);
      const double got = it->second[a].Finalize(fn);
      if (want != got) {
        std::ostringstream out;
        out << "group " << KeyToString(key) << " agg " << a << ": expected "
            << want << ", engine returned " << got;
        return out.str();
      }
    }
  }
  for (const auto& [key, states] : actual.groups()) {
    if (expected.groups().find(key) == expected.groups().end()) {
      return "engine returned unexpected group " + KeyToString(key);
    }
  }
  return "";
}

}  // namespace cubrick::check
