// Deterministic snapshot-isolation stress harness.
//
// Runs a seeded mix of concurrent append / delete / read transactions,
// rollbacks, purge cycles and checkpoint/recovery against a system under
// test — single-node cubrick::Database or cluster::Cluster — while logging
// every logical operation into an SiOracle (si_oracle.h). Every query the
// workload issues (read-only snapshots, reads inside open RW transactions,
// post-recovery reads) is diffed against the oracle's answer for the exact
// same snapshot; any divergence is an SI violation and produces a replayable
// report: the seed, the derived configuration, and the interleaved per-thread
// operation trace.
//
// Determinism: each worker's full operation plan — op kinds, record
// batches, queries, delete predicates, coordinator choices, commit/abort
// coin flips — is pre-generated from (seed, thread id) on the main thread
// before any worker launches. No RNG is consulted while threads run, and no
// draw is conditional on runtime state (a rejected delete decides whether a
// pre-drawn batch is *used*, never whether it was *drawn*), so a failing
// seed re-runs the bit-identical workload regardless of scheduler, sanitizer
// or machine. The thread interleaving itself remains scheduler-dependent —
// that is the point: the oracle comparison is interleaving-independent
// because visibility under AOSI is a pure function of (epoch, deps) and the
// per-epoch operation sets.
//
// Oracle/engine ordering contract (what makes the comparison race-free):
//   * a transaction's operations are logged to the oracle before it commits
//     (nothing can see an epoch before its commit), and removed from the
//     oracle before the engine finalizes its abort;
//   * writers hold a shared structure lock; partition deletes hold it
//     exclusively while capturing the engine's covered-brick set, so the
//     oracle's delete scope is byte-identical to the engine's.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cubrick::check {

struct StressOptions {
  uint64_t seed = 1;
  int threads = 4;
  int ops_per_thread = 100;
  size_t shards_per_cube = 2;
  bool threaded_shards = true;
  /// §III-C5 rollback index (single-node only).
  bool rollback_index = false;
  /// Enables checkpoint operations in the mix plus a crash/recovery epilogue
  /// validated against the oracle.
  bool with_persistence = false;
  /// Morsel-parallel query executor fan-out per shard (single-node mode;
  /// see DatabaseOptions::query_parallelism). 1 keeps the serial executor.
  /// MakeSeedConfig never raises this — replay determinism stays pinned to
  /// the serial path — so parallel runs are opted into via check_si
  /// --parallel=N. Safe to diff against the oracle either way: workload
  /// metric values are small integers, so double aggregation is exact and
  /// merge order cannot change any query result.
  size_t query_parallelism = 1;
  /// Morsel-parallel ingest pipeline fan-out (single-node mode; see
  /// DatabaseOptions::ingest_parallelism). 1 keeps the serial parse path.
  /// MakeSeedConfig never raises this — replay determinism stays pinned to
  /// the serial path — so parallel runs are opted into via check_si
  /// --ingest-parallel=N. Safe to diff against the oracle either way:
  /// the two-phase dictionary encode makes parallel parse output
  /// bit-identical to serial (DESIGN.md §4f), so what the flag adds is
  /// coverage of snapshot publication, sorted batch inserts and group
  /// shard appends racing scans, purge and recovery.
  size_t ingest_parallelism = 1;
  /// Per-brick visibility-bitmap cache (single-node mode; see
  /// DatabaseOptions::query_visibility_cache). Off by default so seed
  /// replays keep exercising the uncached build path; check_si --cache
  /// opts in. The cache cannot change any query result — it memoizes the
  /// exact bitmap the uncached path would build — so the oracle comparison
  /// is unchanged; what the flag adds is coverage of the cache's
  /// lookup/publish/invalidate machinery under a concurrent workload.
  bool visibility_cache = false;
  /// Installs the online SI checker (online_checker.h) for the duration of
  /// the run — single-node via DatabaseOptions::online_check, cluster via a
  /// harness-owned checker spanning workload and epilogues. Any violation
  /// the checker records becomes a report failure, so the online checker is
  /// itself cross-checked against the offline oracle on every --online run.
  bool online_check = false;
  /// Runs a dedicated purge thread for the whole workload (single-node
  /// mode): it loops LSE advance + Database::PurgeAll() — the concurrent
  /// phased pipeline (engine/table.cc) — under the shared structure lock
  /// while workers append, delete and scan. Off by default; check_si
  /// --purge-stress opts in. Purge only compacts history at or below the
  /// LSE, which every live snapshot is at or past, so the oracle
  /// comparison is unchanged; what the flag adds is scans racing
  /// compaction installs, vis-cache invalidation and EBR retirement of
  /// displaced history vectors (ctest check_si_single_purge_concurrent).
  bool purge_stress = false;
  /// Cluster mode only.
  uint32_t num_nodes = 3;
  size_t replication_factor = 2;
  uint32_t message_latency_us = 0;
  /// Root for per-seed persistence scratch directories; empty uses the
  /// system temp directory. Always cleaned up.
  std::string scratch_dir;
};

struct StressReport {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t deletes = 0;
  uint64_t delete_rejects = 0;
  uint64_t queries = 0;
  uint64_t ryw_queries = 0;
  uint64_t maintenance = 0;
  uint64_t checkpoints = 0;
  /// Rounds completed by the dedicated purge thread (purge_stress only).
  uint64_t purge_rounds = 0;
  uint64_t records_appended = 0;
  /// Empty on success; each entry is a full replayable diagnostic.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  void MergeCounters(const StressReport& other);
  std::string Summary() const;
};

/// Derives a varied configuration from `seed` — shard count, threaded vs
/// inline shards, rollback index, persistence, replication factor, simulated
/// latency — so a seed sweep covers the configuration matrix.
StressOptions MakeSeedConfig(uint64_t seed, bool cluster);

/// Runs the workload against cubrick::Database (with a crash+Recover()
/// epilogue when options.with_persistence).
StressReport RunSingleNodeStress(const StressOptions& options);

/// Runs the workload against cluster::Cluster (with a CrashNode/RecoverNode
/// epilogue when options.with_persistence && replication_factor >= 2).
StressReport RunClusterStress(const StressOptions& options);

}  // namespace cubrick::check
