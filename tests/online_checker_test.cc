// Online SI checker tests (docs/CHECKING.md, "Online checking").
//
// Three layers: the SampleRing primitive (FIFO, drop-on-full, wraparound,
// concurrent push/pop), the validation logic fed with hand-crafted
// ScanObservations (one test per violation class, plus the truncation
// weakenings), and end-to-end through a Database — including the
// fault-injection test that proves the checker can actually fire: corrupt
// the visibility computation with aosi::SetSkipFirstDepFault and assert a
// stale_read is flagged on the very next sampled scan. A checker that
// never fires is indistinguishable from one that cannot fire.

#include "check/online_checker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "aosi/checker_hook.h"
#include "aosi/fault_inject.h"
#include "aosi/txn.h"
#include "common/random.h"
#include "cubrick/database.h"

namespace cubrick::check {
namespace {

ScanSample MakeSample(uint64_t bid) {
  ScanSample s;
  s.bid = bid;
  return s;
}

TEST(SampleRingTest, FifoOrder) {
  SampleRing ring(8);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(MakeSample(i)));
  EXPECT_EQ(ring.ApproxDepth(), 5u);
  ScanSample out;
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out.bid, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SampleRingTest, DropsOnFullNeverBlocks) {
  SampleRing ring(4);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(MakeSample(i)));
  EXPECT_FALSE(ring.TryPush(MakeSample(99)));  // full: drop, don't block
  ScanSample out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.bid, 0u);  // the drop lost the newest, not the oldest
  EXPECT_TRUE(ring.TryPush(MakeSample(4)));
  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out.bid, i);
  }
}

TEST(SampleRingTest, WrapsAroundManyTimes) {
  SampleRing ring(4);
  ScanSample out;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.TryPush(MakeSample(i)));
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out.bid, i);
  }
  EXPECT_EQ(ring.ApproxDepth(), 0u);
}

TEST(SampleRingTest, CapacityRoundsUpToPowerOfTwo) {
  SampleRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(MakeSample(i)));
  EXPECT_FALSE(ring.TryPush(MakeSample(8)));
}

// Exercised under TSan in CI: two producers race one consumer; every
// sample is either popped or counted as a drop, none invented.
TEST(SampleRingTest, ConcurrentPushPopLosesNothing) {
  SampleRing ring(16);
  constexpr int kPerProducer = 2000;
  std::atomic<uint64_t> pushed{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> popped{0};

  std::thread consumer([&] {
    ScanSample out;
    while (!done.load(std::memory_order_acquire) || ring.ApproxDepth() > 0) {
      if (ring.TryPop(&out)) {
        popped.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
    while (ring.TryPop(&out)) popped.fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (ring.TryPush(MakeSample(static_cast<uint64_t>(p) * 1000000 + i))) {
          pushed.fetch_add(1, std::memory_order_relaxed);
        } else {
          dropped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(pushed.load(std::memory_order_relaxed) +
                dropped.load(std::memory_order_relaxed),
            2u * kPerProducer);
  EXPECT_EQ(popped.load(std::memory_order_relaxed),
            pushed.load(std::memory_order_relaxed));
}

TEST(OnlineCheckerTest, ShouldSampleIsAPureFunctionOfTheEpoch) {
  OnlineCheckerOptions always;
  always.sample_permille = 1000;
  always.background_validation = false;
  OnlineCheckerOptions never;
  never.sample_permille = 0;
  never.background_validation = false;
  OnlineCheckerOptions half;
  half.sample_permille = 500;
  half.background_validation = false;
  OnlineChecker a(half);
  OnlineChecker b(half);
  OnlineChecker on(always);
  OnlineChecker off(never);
  uint64_t sampled = 0;
  for (aosi::Epoch e = 1; e <= 2000; ++e) {
    EXPECT_TRUE(on.ShouldSample(e));
    EXPECT_FALSE(off.ShouldSample(e));
    // Two independently constructed checkers agree: the decision carries
    // no RNG state, so a replayed seed samples the same transactions.
    EXPECT_EQ(a.ShouldSample(e), b.ShouldSample(e));
    if (a.ShouldSample(e)) ++sampled;
  }
  EXPECT_GT(sampled, 300u);
  EXPECT_LT(sampled, 1700u);
}

/// Harness for feeding hand-crafted observations through the validator.
class CraftedObservationTest : public ::testing::Test {
 protected:
  CraftedObservationTest() {
    OnlineCheckerOptions opt;
    opt.background_validation = false;
    checker_ = std::make_unique<OnlineChecker>(opt);
  }

  /// One observation of `runs` under snapshot {epoch, deps}; visible_total
  /// defaults to the sum of the runs' visible_rows.
  void Observe(aosi::Epoch epoch, std::vector<aosi::Epoch> deps,
               const std::vector<aosi::ObservedRun>& runs,
               uint64_t history_version = 1, bool runs_truncated = false,
               int64_t visible_total = -1) {
    aosi::EpochSet dep_set{std::move(deps)};
    uint64_t total = 0;
    if (visible_total < 0) {
      for (const auto& r : runs) total += r.visible_rows;
    } else {
      total = static_cast<uint64_t>(visible_total);
    }
    aosi::ScanObservation obs;
    obs.snapshot_epoch = epoch;
    obs.deps = &dep_set;
    obs.bid = 1;
    obs.history_version = history_version;
    obs.runs = runs.data();
    obs.num_runs = runs.size();
    obs.runs_truncated = runs_truncated;
    obs.visible_total = total;
    checker_->OnScanObservation(obs);
    checker_->DrainForTest();
  }

  std::vector<ViolationRecord::Kind> Kinds() const {
    std::vector<ViolationRecord::Kind> kinds;
    for (const auto& v : checker_->Violations()) kinds.push_back(v.kind);
    return kinds;
  }

  std::unique_ptr<OnlineChecker> checker_;
};

aosi::ObservedRun Append(aosi::Epoch e, uint64_t begin, uint64_t end,
                         uint64_t visible) {
  return {e, begin, end, /*is_delete=*/false, visible};
}

aosi::ObservedRun Delete(aosi::Epoch e, uint64_t point) {
  return {e, point, point, /*is_delete=*/true, 0};
}

TEST_F(CraftedObservationTest, CleanObservationPasses) {
  // Epoch 5 is in-snapshot and fully visible; epoch 12 is after the
  // snapshot and correctly contributed nothing.
  Observe(10, {}, {Append(5, 0, 10, 10), Append(12, 10, 14, 0)});
  EXPECT_EQ(checker_->ViolationCount(), 0u);
}

TEST_F(CraftedObservationTest, RunAfterSnapshotFlagsStaleRead) {
  Observe(10, {}, {Append(12, 0, 8, 3)});
  ASSERT_EQ(checker_->ViolationCount(), 1u);
  EXPECT_EQ(Kinds()[0], ViolationRecord::Kind::kStaleRead);
}

TEST_F(CraftedObservationTest, UncommittedDependencyFlagsStaleRead) {
  // Epoch 7 is in the deps set — pending when the snapshot began — so any
  // contributed row is exactly the anomaly the deps set exists to prevent.
  Observe(10, {7}, {Append(7, 0, 5, 5)});
  ASSERT_EQ(checker_->ViolationCount(), 1u);
  EXPECT_EQ(Kinds()[0], ViolationRecord::Kind::kStaleRead);
}

TEST_F(CraftedObservationTest, UnderCountFlagsMissingVisible) {
  Observe(10, {}, {Append(5, 0, 10, 6)});
  ASSERT_EQ(checker_->ViolationCount(), 1u);
  EXPECT_EQ(Kinds()[0], ViolationRecord::Kind::kMissingVisible);
}

TEST_F(CraftedObservationTest, TruncatedRunListWeakensMissingVisibleOnly) {
  // With a truncated run list a delete marker may be missing from the
  // copy, so under-counts are not judged — but over-counts still are.
  Observe(10, {}, {Append(5, 0, 10, 6)}, 1, /*runs_truncated=*/true);
  EXPECT_EQ(checker_->ViolationCount(), 0u);
  Observe(10, {}, {Append(12, 0, 8, 3)}, 2, /*runs_truncated=*/true);
  ASSERT_EQ(checker_->ViolationCount(), 1u);
  EXPECT_EQ(Kinds()[0], ViolationRecord::Kind::kStaleRead);
}

TEST_F(CraftedObservationTest, VisibleDeleteWipesEarlierRuns) {
  // Delete by epoch 6 is visible at snapshot 10, so epoch 3's run must
  // contribute nothing (ApplyDeleteCleanup frontier) — 0 rows is clean...
  Observe(10, {}, {Append(3, 0, 10, 0), Delete(6, 10)});
  EXPECT_EQ(checker_->ViolationCount(), 0u);
  // ...and any surviving row is a stale read.
  Observe(10, {}, {Append(3, 0, 10, 2), Delete(6, 10)}, 2);
  ASSERT_EQ(checker_->ViolationCount(), 1u);
  EXPECT_EQ(Kinds()[0], ViolationRecord::Kind::kStaleRead);
}

TEST_F(CraftedObservationTest, InvisibleDeleteDoesNotWipe) {
  // The deleting epoch is in deps (uncommitted): the full run stays
  // visible, and an under-count is missing_visible.
  Observe(10, {6}, {Append(3, 0, 10, 10), Delete(6, 10)});
  EXPECT_EQ(checker_->ViolationCount(), 0u);
  Observe(10, {6}, {Append(3, 0, 10, 0), Delete(6, 10)}, 2);
  ASSERT_EQ(checker_->ViolationCount(), 1u);
  EXPECT_EQ(Kinds()[0], ViolationRecord::Kind::kMissingVisible);
}

TEST_F(CraftedObservationTest, DivergingTotalsFlagNonRepeatable) {
  Observe(10, {}, {Append(5, 0, 10, 10)});
  EXPECT_EQ(checker_->ViolationCount(), 0u);
  // Same (snapshot, brick, history version), different total: the second
  // read of the same snapshot saw different data.
  Observe(10, {}, {Append(5, 0, 10, 10)}, 1, false, /*visible_total=*/7);
  ASSERT_GE(checker_->ViolationCount(), 1u);
  const auto kinds = Kinds();
  EXPECT_NE(std::find(kinds.begin(), kinds.end(),
                      ViolationRecord::Kind::kNonRepeatable),
            kinds.end());
}

TEST_F(CraftedObservationTest, NewHistoryVersionIsNotNonRepeatable) {
  Observe(10, {}, {Append(5, 0, 10, 10)}, /*history_version=*/1);
  Observe(10, {}, {Append(5, 0, 14, 14)}, /*history_version=*/2);
  EXPECT_EQ(checker_->ViolationCount(), 0u);
}

TEST(OnlineCheckerLifecycleTest, LseAdvancePastLiveHorizonIsLostHorizon) {
  OnlineCheckerOptions opt;
  opt.background_validation = false;
  OnlineChecker checker(opt);
  aosi::Txn txn;
  txn.epoch = 10;
  txn.type = aosi::TxnType::kReadWrite;
  txn.deps = aosi::EpochSet{{7}};  // horizon = min(7 - 1, 10) = 6
  checker.OnBegin(txn);
  checker.OnLseAdvance(6);  // at the horizon: fine
  EXPECT_EQ(checker.ViolationCount(), 0u);
  checker.OnLseAdvance(7);  // past it: purge may destroy needed history
  ASSERT_EQ(checker.ViolationCount(), 1u);
  EXPECT_EQ(checker.Violations()[0].kind,
            ViolationRecord::Kind::kLostHorizon);
  checker.OnFinish(txn, true);
  checker.OnLseAdvance(9);  // txn gone: no new violation
  EXPECT_EQ(checker.ViolationCount(), 1u);
}

TEST(OnlineCheckerLifecycleTest, RepublishedLseIsJudgedOnlyOnce) {
  OnlineCheckerOptions opt;
  opt.background_validation = false;
  OnlineChecker checker(opt);
  // LSE stands at 20 before the snapshot exists.
  checker.OnLseAdvance(20);
  aosi::Txn txn;
  txn.epoch = 30;
  txn.type = aosi::TxnType::kReadWrite;
  txn.deps = aosi::EpochSet{{25}};  // horizon 24: above the standing LSE
  checker.OnBegin(txn);
  // Maintenance republishes the same LSE every round: not a new advance,
  // not a violation — the snapshot began after the LSE already stood at 20.
  checker.OnLseAdvance(20);
  checker.OnLseAdvance(20);
  EXPECT_EQ(checker.ViolationCount(), 0u);
  // A genuinely new advance past the horizon is one violation.
  checker.OnLseAdvance(25);
  EXPECT_EQ(checker.ViolationCount(), 1u);
}

TEST(OnlineCheckerLifecycleTest, StaleDraftDepDoesNotPinTheHorizon) {
  OnlineCheckerOptions opt;
  opt.background_validation = false;
  OnlineChecker checker(opt);
  checker.OnLseAdvance(20);
  // A dep at epoch 5 — below the standing LSE — can only be a stale draft
  // from a desynced coordinator clock: it aborts having written nothing,
  // so it must not drag the snapshot's effective horizon under the LSE.
  aosi::Txn txn;
  txn.epoch = 30;
  txn.type = aosi::TxnType::kReadWrite;
  txn.deps = aosi::EpochSet{{5, 25}};
  checker.OnBegin(txn);
  checker.OnLseAdvance(22);  // within the live horizon (24): clean
  EXPECT_EQ(checker.ViolationCount(), 0u);
  checker.OnLseAdvance(27);  // past the live dep's pin: violation
  EXPECT_EQ(checker.ViolationCount(), 1u);
}

TEST(OnlineCheckerLifecycleTest, RejectedStaleRemoteBeginIsAverted) {
  OnlineCheckerOptions opt;
  opt.background_validation = false;
  OnlineChecker checker(opt);
  checker.OnStaleRemoteBegin(5, 8, /*rejected=*/true);
  EXPECT_EQ(checker.ViolationCount(), 0u);
  checker.OnStaleRemoteBegin(5, 8, /*rejected=*/false);
  ASSERT_EQ(checker.ViolationCount(), 1u);
  EXPECT_EQ(checker.Violations()[0].kind,
            ViolationRecord::Kind::kLostHorizon);
}

// --- End-to-end through a Database ----------------------------------------

std::vector<Record> Rows(Random* rng, int n) {
  std::vector<Record> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(rng->Uniform(4)),
                    static_cast<int64_t>(rng->Uniform(100))});
  }
  return rows;
}

cubrick::Query SumQuery() {
  cubrick::Query q;
  q.group_by = {0};
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  return q;
}

/// Restores the fault knob even when an assertion aborts the test body.
struct FaultGuard {
  ~FaultGuard() { aosi::SetSkipFirstDepFault(false); }
};

TEST(OnlineCheckerFaultInjectionTest, SkipFirstDepFaultIsDetected) {
  FaultGuard guard;
  DatabaseOptions opt;
  opt.online_check = true;
  // The visibility cache keys on (history version, horizon, deps) — not on
  // the fault knob — so a cached pre-fault bitmap would mask the fault.
  opt.query_visibility_cache = false;
  Database db(opt);
  ASSERT_TRUE(db.CreateCube("t", {{"d", 4, 1, false}},
                            {{"v", DataType::kInt64}})
                  .ok());
  Random rng(42);
  ASSERT_TRUE(db.Load("t", Rows(&rng, 64)).ok());

  // A pending writer, then a reader whose deps pin it out of view.
  aosi::Txn pending = db.Begin();
  ASSERT_TRUE(db.LoadIn(pending, "t", Rows(&rng, 32)).ok());
  aosi::Txn reader = db.Begin();
  ASSERT_TRUE(reader.deps.Contains(pending.epoch));

  // Control: with the visibility computation intact, the sampled scan
  // validates clean.
  ASSERT_TRUE(db.QueryIn(reader, "t", SumQuery()).ok());
  db.online_checker()->DrainForTest();
  EXPECT_EQ(db.online_checker()->ViolationCount(), 0u);

  // Inject: the snapshot "forgets" to exclude its first dependency, which
  // is exactly a stale read of pending's uncommitted rows. Detection is
  // immediate — the very next sampled scan of the corrupted brick.
  aosi::SetSkipFirstDepFault(true);
  ASSERT_TRUE(db.QueryIn(reader, "t", SumQuery()).ok());
  aosi::SetSkipFirstDepFault(false);
  db.online_checker()->DrainForTest();
  ASSERT_GT(db.online_checker()->ViolationCount(), 0u);
  const auto violations = db.online_checker()->Violations();
  bool saw_stale_read = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationRecord::Kind::kStaleRead) saw_stale_read = true;
  }
  EXPECT_TRUE(saw_stale_read);

  ASSERT_TRUE(db.Rollback(pending).ok());
  ASSERT_TRUE(db.Commit(reader).ok());
}

// Serial, morsel-parallel and cached execution must agree with the checker
// observing every scan — and the checker must stay silent on all three.
TEST(OnlineCheckerEquivalenceTest, SerialParallelCachedAgreeUnderChecker) {
  auto run = [](size_t parallelism, bool cache) {
    DatabaseOptions opt;
    opt.online_check = true;
    opt.query_parallelism = parallelism;
    opt.query_visibility_cache = cache;
    Database db(opt);
    EXPECT_TRUE(db.CreateCube("t", {{"d", 4, 1, false}},
                              {{"v", DataType::kInt64}})
                    .ok());
    Random rng(7);
    for (int batch = 0; batch < 8; ++batch) {
      EXPECT_TRUE(db.Load("t", Rows(&rng, 32)).ok());
    }
    auto result = db.Query("t", SumQuery());
    EXPECT_TRUE(result.ok());
    // Query twice so the cached flavor actually hits its cache.
    auto again = db.Query("t", SumQuery());
    EXPECT_TRUE(again.ok());
    db.online_checker()->DrainForTest();
    EXPECT_EQ(db.online_checker()->ViolationCount(), 0u);
    return result->groups();
  };
  // One checker (one Database with online_check) at a time: the hook slot
  // is process-global, so the flavors run sequentially.
  const auto serial = run(1, false);
  const auto parallel = run(4, false);
  const auto cached = run(1, true);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), cached.size());
  for (const auto& [key, states] : serial) {
    auto pit = parallel.find(key);
    auto cit = cached.find(key);
    ASSERT_NE(pit, parallel.end());
    ASSERT_NE(cit, cached.end());
    ASSERT_EQ(states.size(), pit->second.size());
    ASSERT_EQ(states.size(), cit->second.size());
    for (size_t a = 0; a < states.size(); ++a) {
      EXPECT_EQ(states[a].sum, pit->second[a].sum);
      EXPECT_EQ(states[a].sum, cit->second[a].sum);
      EXPECT_EQ(states[a].count, pit->second[a].count);
      EXPECT_EQ(states[a].count, cit->second[a].count);
    }
  }
}

// TSan hammer: concurrent writers and readers with the checker sampling
// every transaction and morsel workers fanning scans out. The assertions
// are "no data race" (TSan), "no deadlock" and "no violation".
TEST(OnlineCheckerHammerTest, ConcurrentLoadsAndQueriesStayClean) {
  DatabaseOptions opt;
  opt.online_check = true;
  opt.query_parallelism = 4;
  Database db(opt);
  ASSERT_TRUE(db.CreateCube("t", {{"d", 4, 1, false}},
                            {{"v", DataType::kInt64}})
                  .ok());
  constexpr int kThreads = 4;
  constexpr int kIters = 15;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      Random rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          EXPECT_TRUE(db.Load("t", Rows(&rng, 16)).ok());
        }
        auto result = db.Query("t", SumQuery());
        EXPECT_TRUE(result.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  db.online_checker()->DrainForTest();
  EXPECT_EQ(db.online_checker()->ViolationCount(), 0u);
}

}  // namespace
}  // namespace cubrick::check
