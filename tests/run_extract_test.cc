// Tests for epoch-range run extraction / replay — the replica-catch-up and
// flush building block.

#include "engine/run_extract.h"

#include <gtest/gtest.h>

#include "ingest/parser.h"

namespace cubrick {
namespace {

std::shared_ptr<const CubeSchema> MakeSchema() {
  return CubeSchema::Make("t",
                          {{"k", 16, 4, false}},
                          {{"v", DataType::kInt64},
                           {"w", DataType::kDouble}})
      .value();
}

PerBrickBatches Rows(const CubeSchema& schema,
                     std::initializer_list<std::pair<int64_t, int64_t>> kv) {
  std::vector<Record> records;
  for (const auto& [k, v] : kv) {
    records.push_back({k, v, static_cast<double>(v) / 2});
  }
  return ParseRecords(schema, records).value().batches;
}

TEST(RunExtractTest, ExtractsOnlyRequestedRange) {
  auto schema = MakeSchema();
  Table table(schema, 1, false);
  ASSERT_TRUE(table.Append(2, Rows(*schema, {{0, 10}})).ok());
  ASSERT_TRUE(table.Append(4, Rows(*schema, {{0, 20}})).ok());
  ASSERT_TRUE(table.Append(6, Rows(*schema, {{0, 40}})).ok());

  auto extracted = ExtractTableRuns(&table, /*from=*/2, /*to=*/4);
  ASSERT_EQ(extracted.size(), 1u);
  ASSERT_EQ(extracted[0].runs.size(), 1u);
  EXPECT_EQ(extracted[0].runs[0].epoch, 4u);
  EXPECT_EQ(extracted[0].runs[0].batch.num_rows, 1u);
  EXPECT_EQ(extracted[0].runs[0].batch.metric_ints[0][0], 20);
  EXPECT_DOUBLE_EQ(extracted[0].runs[0].batch.metric_doubles[1][0], 10.0);
}

TEST(RunExtractTest, EmptyWhenNothingInRange) {
  auto schema = MakeSchema();
  Table table(schema, 1, false);
  ASSERT_TRUE(table.Append(2, Rows(*schema, {{0, 10}})).ok());
  EXPECT_TRUE(ExtractTableRuns(&table, 5, 9).empty());
  EXPECT_TRUE(ExtractTableRuns(&table, 2, 9).empty());  // 2 is exclusive
}

TEST(RunExtractTest, DeleteMarkersCarried) {
  auto schema = MakeSchema();
  Table table(schema, 1, false);
  ASSERT_TRUE(table.Append(1, Rows(*schema, {{0, 10}})).ok());
  ASSERT_TRUE(table.DeleteWhere(3, {}).ok());
  auto extracted = ExtractTableRuns(&table, 0, 9);
  ASSERT_EQ(extracted.size(), 1u);
  ASSERT_EQ(extracted[0].runs.size(), 2u);
  EXPECT_FALSE(extracted[0].runs[0].is_delete);
  EXPECT_TRUE(extracted[0].runs[1].is_delete);
  EXPECT_EQ(extracted[0].runs[1].epoch, 3u);
}

TEST(RunExtractTest, ReplayReconstructsEquivalentTable) {
  auto schema = MakeSchema();
  Table source(schema, 2, false);
  ASSERT_TRUE(source.Append(1, Rows(*schema, {{0, 1}, {5, 2}, {12, 4}})).ok());
  ASSERT_TRUE(source.DeleteWhere(2, {}).ok());
  ASSERT_TRUE(source.Append(3, Rows(*schema, {{0, 8}, {9, 16}})).ok());

  Table replica(schema, 3, false);  // different shard count is fine
  ASSERT_TRUE(
      ReplayExtracted(&replica, ExtractTableRuns(&source, 0, 99)).ok());

  aosi::Snapshot snap{10, {}};
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  auto src = source.Scan(snap, ScanMode::kSnapshotIsolation, q);
  auto dst = replica.Scan(snap, ScanMode::kSnapshotIsolation, q);
  EXPECT_DOUBLE_EQ(src.Single(0, AggSpec::Fn::kSum),
                   dst.Single(0, AggSpec::Fn::kSum));
  EXPECT_DOUBLE_EQ(src.Single(1, AggSpec::Fn::kCount),
                   dst.Single(1, AggSpec::Fn::kCount));
  EXPECT_EQ(source.TotalRecords(), replica.TotalRecords());
  // Older snapshots agree too (the delete marker's position is preserved).
  aosi::Snapshot old_snap{1, {}};
  EXPECT_DOUBLE_EQ(
      source.Scan(old_snap, ScanMode::kSnapshotIsolation, q)
          .Single(0, AggSpec::Fn::kSum),
      replica.Scan(old_snap, ScanMode::kSnapshotIsolation, q)
          .Single(0, AggSpec::Fn::kSum));
}

TEST(RunExtractTest, PerBrickPhysicalOrderPreserved) {
  auto schema = MakeSchema();
  Table source(schema, 1, false);
  // Interleave epochs so order matters: 5 then 2 (logical out-of-order).
  ASSERT_TRUE(source.Append(5, Rows(*schema, {{0, 1}})).ok());
  ASSERT_TRUE(source.Append(2, Rows(*schema, {{0, 2}})).ok());
  Table replica(schema, 1, false);
  ASSERT_TRUE(
      ReplayExtracted(&replica, ExtractTableRuns(&source, 0, 99)).ok());
  replica.Drain();
  const Brick* brick = replica.shard(0).bricks().Find(0);
  ASSERT_NE(brick, nullptr);
  EXPECT_EQ(brick->history().ToString(), "[5:0-0][2:1-1]");
}

}  // namespace
}  // namespace cubrick
