// Morsel-parallel scan equivalence tests: for every query shape, the
// parallel executor (fan-out 2/4/8 over the shared thread pool) must
// produce exactly the result of the serial path. Metric values are small
// integers, so double aggregation is exact and any divergence is a real
// bug in morsel planning, worker-local accumulation or the final merge —
// not floating-point reassociation.

#include <gtest/gtest.h>

#include "cubrick/database.h"
#include "engine/table.h"
#include "ingest/parser.h"

namespace cubrick {
namespace {

std::shared_ptr<CubeSchema> MakeSchema() {
  return CubeSchema::Make(
             "events",
             {{"region", 16, 2, false}, {"kind", 4, 1, false}},
             {{"n", DataType::kInt64}})
      .value();
}

PerBrickBatches Batches(const CubeSchema& schema,
                        const std::vector<std::array<int64_t, 3>>& rows) {
  std::vector<Record> records;
  for (const auto& r : rows) {
    records.push_back({r[0], r[1], r[2]});
  }
  auto parsed = ParseRecords(schema, records);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->batches;
}

aosi::Snapshot Snap(aosi::Epoch e) { return aosi::Snapshot{e, {}}; }

/// Exact structural equality: same groups, same finalized value for every
/// aggregate under every finalizer its AggState carries.
void ExpectSameResult(const QueryResult& serial, const QueryResult& parallel) {
  ASSERT_EQ(serial.num_aggs(), parallel.num_aggs());
  ASSERT_EQ(serial.num_groups(), parallel.num_groups());
  for (const auto& [key, states] : serial.groups()) {
    auto it = parallel.groups().find(key);
    ASSERT_NE(it, parallel.groups().end()) << "group missing in parallel";
    ASSERT_EQ(states.size(), it->second.size());
    for (size_t a = 0; a < states.size(); ++a) {
      EXPECT_EQ(states[a].sum, it->second[a].sum);
      EXPECT_EQ(states[a].count, it->second[a].count);
      EXPECT_EQ(states[a].min, it->second[a].min);
      EXPECT_EQ(states[a].max, it->second[a].max);
    }
  }
}

class ParallelScanTest : public ::testing::TestWithParam<bool> {
 protected:
  bool threaded() const { return GetParam(); }

  /// Many epochs, every brick populated, one visible partition delete —
  /// the richest history the serial/parallel diff can disagree on.
  void FillTable(Table& table, const CubeSchema& schema) {
    std::vector<std::array<int64_t, 3>> rows;
    for (int64_t epoch = 1; epoch <= 6; ++epoch) {
      rows.clear();
      for (int64_t r = 0; r < 16; ++r) {
        for (int64_t k = 0; k < 4; ++k) {
          rows.push_back({r, k, epoch * 100 + r * 4 + k});
        }
      }
      ASSERT_TRUE(table.Append(epoch, Batches(schema, rows)).ok());
    }
    // Delete the region range [2,3] at epoch 4 (range size is 2, so the
    // predicate is partition-granular): readers at >= 4 must apply the
    // cleanup identically on both paths.
    FilterClause del;
    del.dim = 0;
    del.op = FilterClause::Op::kRange;
    del.range_lo = 2;
    del.range_hi = 3;
    ASSERT_TRUE(table.DeleteWhere(4, {del}).ok());
  }
};

INSTANTIATE_TEST_SUITE_P(InlineAndThreaded, ParallelScanTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Threaded" : "Inline";
                         });

TEST_P(ParallelScanTest, UngroupedMatchesSerial) {
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  FillTable(table, *schema);
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kCount, 0},
            {AggSpec::Fn::kMin, 0},
            {AggSpec::Fn::kMax, 0}};
  for (aosi::Epoch e : {1u, 3u, 4u, 6u}) {
    auto serial = table.Scan(Snap(e), ScanMode::kSnapshotIsolation, q);
    for (size_t par : {2u, 4u, 8u}) {
      auto parallel = table.Scan(Snap(e), ScanMode::kSnapshotIsolation, q,
                                 nullptr, par);
      ExpectSameResult(serial, parallel);
    }
  }
}

TEST_P(ParallelScanTest, GroupedMatchesSerial) {
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  FillTable(table, *schema);
  Query q;
  q.group_by = {0, 1};
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  auto serial = table.Scan(Snap(5), ScanMode::kSnapshotIsolation, q);
  EXPECT_GT(serial.num_groups(), 1u);
  for (size_t par : {2u, 4u, 8u}) {
    auto parallel =
        table.Scan(Snap(5), ScanMode::kSnapshotIsolation, q, nullptr, par);
    ExpectSameResult(serial, parallel);
  }
}

TEST_P(ParallelScanTest, GroupedFullyDenseBrickMatchesSerial) {
  // 100% dense bricks: no deletes and each brick's row count is an exact
  // multiple of 64, so every visibility word is ~0ULL and the grouped
  // dense straight-loop (prev-key memoized) handles every row. Serial and
  // parallel must agree exactly, and the totals are known in closed form.
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  // Each brick covers 2 regions x 1 kind; repeating the full 16x4 grid 32
  // times puts exactly 64 rows in every brick.
  std::vector<std::array<int64_t, 3>> rows;
  for (int rep = 0; rep < 32; ++rep) {
    for (int64_t r = 0; r < 16; ++r) {
      for (int64_t k = 0; k < 4; ++k) rows.push_back({r, k, r + k});
    }
  }
  ASSERT_TRUE(table.Append(1, Batches(*schema, rows)).ok());
  Query q;
  q.group_by = {0, 1};
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kCount, 0},
            {AggSpec::Fn::kMin, 0},
            {AggSpec::Fn::kMax, 0}};
  auto serial = table.Scan(Snap(1), ScanMode::kSnapshotIsolation, q);
  ASSERT_EQ(serial.num_groups(), 64u);
  for (const auto& [key, states] : serial.groups()) {
    (void)key;
    EXPECT_EQ(states[1].count, 32u);  // every (region, kind) seen 32x
    EXPECT_EQ(states[0].sum, states[2].min * 32.0);
    EXPECT_EQ(states[2].min, states[3].max);
  }
  for (size_t par : {2u, 4u, 8u}) {
    auto parallel =
        table.Scan(Snap(1), ScanMode::kSnapshotIsolation, q, nullptr, par);
    ExpectSameResult(serial, parallel);
  }
}

TEST_P(ParallelScanTest, FilteredMatchesSerial) {
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  FillTable(table, *schema);
  Query q;
  FilterClause f;
  f.dim = 0;
  f.op = FilterClause::Op::kRange;
  f.range_lo = 2;
  f.range_hi = 9;
  q.filters = {f};
  q.group_by = {0};
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  auto serial = table.Scan(Snap(6), ScanMode::kSnapshotIsolation, q);
  for (size_t par : {2u, 4u, 8u}) {
    auto parallel =
        table.Scan(Snap(6), ScanMode::kSnapshotIsolation, q, nullptr, par);
    ExpectSameResult(serial, parallel);
  }
}

TEST_P(ParallelScanTest, ReadUncommittedMatchesSerial) {
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  FillTable(table, *schema);
  Query q;
  q.group_by = {1};
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  auto serial = table.Scan(Snap(2), ScanMode::kReadUncommitted, q);
  for (size_t par : {2u, 4u, 8u}) {
    auto parallel =
        table.Scan(Snap(2), ScanMode::kReadUncommitted, q, nullptr, par);
    ExpectSameResult(serial, parallel);
  }
}

TEST_P(ParallelScanTest, VisibilityCacheMatchesUncachedAndParallel) {
  // Exact serial == parallel == cached equivalence (ISSUE 5 satellite):
  // the cached bitmap path and the word-wise kernels must reproduce the
  // uncached serial result bit-for-bit — cold cache, warm cache, and with
  // the cache shared across morsel workers.
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  FillTable(table, *schema);
  Query q;
  FilterClause f;
  f.dim = 1;
  f.op = FilterClause::Op::kIn;
  f.values = {0, 2, 3};
  q.filters = {f};
  q.group_by = {0};
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kCount, 0},
            {AggSpec::Fn::kMin, 0},
            {AggSpec::Fn::kMax, 0}};
  for (aosi::Epoch e : {1u, 4u, 6u}) {
    const auto uncached = table.Scan(Snap(e), ScanMode::kSnapshotIsolation, q,
                                     nullptr, 1, /*visibility_cache=*/false);
    // Cold pass populates the per-brick caches, warm pass hits them.
    const auto cold = table.Scan(Snap(e), ScanMode::kSnapshotIsolation, q,
                                 nullptr, 1, /*visibility_cache=*/true);
    ExpectSameResult(uncached, cold);
    const auto warm = table.Scan(Snap(e), ScanMode::kSnapshotIsolation, q,
                                 nullptr, 1, /*visibility_cache=*/true);
    ExpectSameResult(uncached, warm);
    // A later snapshot clamps to the same horizon and shares the entries.
    const auto clamped =
        table.Scan(Snap(e + 100), ScanMode::kSnapshotIsolation, q, nullptr, 1,
                   /*visibility_cache=*/true);
    if (e == 6u) ExpectSameResult(uncached, clamped);
    for (size_t par : {2u, 4u, 8u}) {
      const auto parallel =
          table.Scan(Snap(e), ScanMode::kSnapshotIsolation, q, nullptr, par,
                     /*visibility_cache=*/true);
      ExpectSameResult(uncached, parallel);
    }
  }
  // Read-uncommitted caches the all-ones mask under the version tag alone.
  const auto ru_uncached = table.Scan(Snap(2), ScanMode::kReadUncommitted, q,
                                      nullptr, 1, /*visibility_cache=*/false);
  const auto ru_cached = table.Scan(Snap(9), ScanMode::kReadUncommitted, q,
                                    nullptr, 4, /*visibility_cache=*/true);
  ExpectSameResult(ru_uncached, ru_cached);
}

TEST_P(ParallelScanTest, EmptyTableAndOverParallelism) {
  auto schema = MakeSchema();
  Table table(schema, 2, threaded());
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  // No bricks: fan-out degenerates gracefully.
  auto empty = table.Scan(Snap(5), ScanMode::kSnapshotIsolation, q,
                          nullptr, 8);
  EXPECT_DOUBLE_EQ(empty.Single(1, AggSpec::Fn::kCount), 0.0);
  // One brick, parallelism far above morsel count.
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{0, 0, 7}})).ok());
  auto one = table.Scan(Snap(1), ScanMode::kSnapshotIsolation, q,
                        nullptr, 16);
  EXPECT_DOUBLE_EQ(one.Single(0, AggSpec::Fn::kSum), 7.0);
  EXPECT_DOUBLE_EQ(one.Single(1, AggSpec::Fn::kCount), 1.0);
}

TEST(ParallelScanDatabaseTest, QueryParallelismOptionMatchesSerial) {
  // The DatabaseOptions knob routes every implicit and explicit query
  // through the morsel executor; results must match a serial database
  // fed the identical workload.
  auto run = [](size_t parallelism) {
    DatabaseOptions options;
    options.query_parallelism = parallelism;
    auto db = std::make_unique<Database>(options);
    EXPECT_TRUE(db->CreateCube("events",
                               {{"region", 16, 2, false}, {"kind", 4, 1, false}},
                               {{"n", DataType::kInt64}})
                    .ok());
    std::vector<Record> rows;
    for (int64_t r = 0; r < 16; ++r) {
      for (int64_t k = 0; k < 4; ++k) rows.push_back({r, k, r * 10 + k});
    }
    EXPECT_TRUE(db->Load("events", rows).ok());
    Query q;
    q.group_by = {0};
    q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
    auto result = db->Query("events", q);
    EXPECT_TRUE(result.ok());
    return *result;
  };
  const QueryResult serial = run(1);
  const QueryResult parallel = run(4);
  ASSERT_EQ(serial.num_groups(), parallel.num_groups());
  for (const auto& [key, states] : serial.groups()) {
    auto it = parallel.groups().find(key);
    ASSERT_NE(it, parallel.groups().end());
    for (size_t a = 0; a < states.size(); ++a) {
      EXPECT_EQ(states[a].sum, it->second[a].sum);
      EXPECT_EQ(states[a].count, it->second[a].count);
    }
  }
}

}  // namespace
}  // namespace cubrick
