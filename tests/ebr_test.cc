// Unit and stress coverage for the epoch-based reclamation collector
// (common/ebr.h): epoch advance mechanics, deferred-free ordering against
// pinned Guards, thread register/unregister churn (slot recycling), and a
// TSan hammer racing readers against a retiring writer. Suite name starts
// with "Ebr" so the sanitizer CI jobs' `*Ebr*` gtest filter picks every
// test up.

#include "common/ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace cubrick {
namespace {

using ebr::Collector;
using ebr::Guard;

/// A retiree that counts its own destruction through an external flag —
/// Retire takes a stateless function pointer, so the object carries the
/// pointer to the counter itself.
struct Tracked {
  std::atomic<uint64_t>* freed;
};

void RetireTracked(Tracked* t) {
  Collector::Global().Retire(
      t,
      [](void* p) {
        Tracked* tracked = static_cast<Tracked*>(p);
        tracked->freed->fetch_add(1, std::memory_order_relaxed);
        delete tracked;  // ebr-deleter
      },
      sizeof(Tracked));
}

TEST(EbrTest, RetireFreesAfterDrain) {
  std::atomic<uint64_t> freed{0};
  RetireTracked(new Tracked{&freed});
  // No guard is live, so the drain can run the collector dry; the retiree
  // must be exactly two epoch advances behind.
  ASSERT_TRUE(Collector::Global().DrainForTest());
  EXPECT_EQ(freed.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(Collector::Global().LimboObjectsForTest(), 0u);
}

TEST(EbrTest, AdvanceIsMonotonic) {
  const uint64_t before = Collector::Global().EpochForTest();
  std::atomic<uint64_t> freed{0};
  RetireTracked(new Tracked{&freed});
  ASSERT_TRUE(Collector::Global().DrainForTest());
  EXPECT_GT(Collector::Global().EpochForTest(), before);
}

TEST(EbrTest, PinnedGuardDefersFree) {
  std::atomic<uint64_t> freed{0};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  // The reader pins before the retire and holds its Guard across every
  // advance attempt below; the collector may advance at most once past the
  // pinned era, so the retiree must stay unfreed until the Guard drops.
  std::thread reader([&] {
    const Guard guard;
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  RetireTracked(new Tracked{&freed});
  EXPECT_FALSE(Collector::Global().DrainForTest());
  EXPECT_EQ(freed.load(std::memory_order_relaxed), 0u);
  EXPECT_GE(Collector::Global().LimboObjectsForTest(), 1u);

  release.store(true, std::memory_order_release);
  reader.join();
  ASSERT_TRUE(Collector::Global().DrainForTest());
  EXPECT_EQ(freed.load(std::memory_order_relaxed), 1u);
}

TEST(EbrTest, GuardsNest) {
  std::atomic<uint64_t> freed{0};
  {
    const Guard outer;
    EXPECT_EQ(Collector::Global().PinnedThreadsForTest(), 1u);
    {
      const Guard inner;
      // The nested Guard is a depth bump, not a second slot.
      EXPECT_EQ(Collector::Global().PinnedThreadsForTest(), 1u);
      RetireTracked(new Tracked{&freed});
    }
    // Still pinned: the inner Guard's destruction must not unpin.
    EXPECT_EQ(Collector::Global().PinnedThreadsForTest(), 1u);
  }
  EXPECT_EQ(Collector::Global().PinnedThreadsForTest(), 0u);
  ASSERT_TRUE(Collector::Global().DrainForTest());
  EXPECT_EQ(freed.load(std::memory_order_relaxed), 1u);
}

TEST(EbrTest, RegisterUnregisterChurn) {
  // More thread lifetimes than the slot table holds: passes only if exiting
  // threads recycle their slots (Collector CHECK-fails on exhaustion).
  constexpr size_t kSequential = Collector::kMaxSlots + 64;
  for (size_t i = 0; i < kSequential; ++i) {
    std::thread t([] { const Guard guard; });
    t.join();
  }
  // Concurrent batches: every thread in a wave pins at once, then the whole
  // wave exits and the next wave reclaims the slots.
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> wave;
    for (int i = 0; i < 32; ++i) {
      wave.emplace_back([] {
        for (int j = 0; j < 16; ++j) {
          const Guard guard;
        }
      });
    }
    for (auto& t : wave) t.join();
  }
  EXPECT_EQ(Collector::Global().PinnedThreadsForTest(), 0u);
}

TEST(EbrTest, RetireDeleteRunsDestructor) {
  struct Payload {
    std::atomic<uint64_t>* destroyed;
    ~Payload() { destroyed->fetch_add(1, std::memory_order_relaxed); }
  };
  std::atomic<uint64_t> destroyed{0};
  ebr::RetireDelete(new Payload{&destroyed}, /*extra_bytes=*/1024);
  ASSERT_TRUE(Collector::Global().DrainForTest());
  EXPECT_EQ(destroyed.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(Collector::Global().LimboObjectsForTest(), 0u);
}

// TSan hammer: readers chase an atomic pointer the writer keeps swapping
// and retiring. Any premature free is a use-after-free TSan/ASan will trip
// on; the payload invariant (lo == ~hi) catches torn or stale reads.
TEST(EbrTest, HammerReadersVsRetiringWriter) {
  struct Node {
    uint64_t lo;
    uint64_t hi;
  };
  constexpr int kReaders = 4;
  constexpr int kSwaps = 3000;

  std::atomic<Node*> shared{new Node{1, ~uint64_t{1}}};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const Guard guard;
        // acquire pairs with the writer's release exchange below.
        const Node* node = shared.load(std::memory_order_acquire);
        ASSERT_NE(node, nullptr);
        // The node stays valid for the Guard's lifetime even if the writer
        // has already unlinked and retired it.
        EXPECT_EQ(node->lo, ~node->hi);
      }
    });
  }

  for (int i = 2; i < kSwaps; ++i) {
    Node* fresh = new Node{static_cast<uint64_t>(i), ~static_cast<uint64_t>(i)};
    const Node* old = shared.exchange(fresh, std::memory_order_acq_rel);
    ebr::RetireDelete(old, sizeof(Node));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  const Node* last = shared.exchange(nullptr, std::memory_order_acq_rel);
  ebr::RetireDelete(last, sizeof(Node));
  ASSERT_TRUE(Collector::Global().DrainForTest());
  EXPECT_EQ(Collector::Global().LimboObjectsForTest(), 0u);
}

}  // namespace
}  // namespace cubrick
