// Edge-case sweep: empty structures, marker-only histories, error paths of
// the cluster API, and TxnManager::AugmentDeps.

#include <gtest/gtest.h>

#include "aosi/purge.h"
#include "aosi/txn_manager.h"
#include "aosi/visibility.h"
#include "cluster/cluster.h"
#include "cubrick/database.h"

namespace cubrick {
namespace {

using aosi::Epoch;
using aosi::EpochSet;
using aosi::EpochVector;
using aosi::Snapshot;
using aosi::Txn;
using aosi::TxnManager;

TEST(EdgeCaseTest, EmptyEpochVector) {
  EpochVector ev;
  EXPECT_EQ(ev.ToString(), "");
  EXPECT_FALSE(aosi::PlanPurge(ev, 100).needed);
  EXPECT_FALSE(aosi::PlanRollback(ev, 1).needed);
  EXPECT_FALSE(aosi::PlanRetainUpTo(ev, 0).needed);
  Snapshot snap{5, {}};
  EXPECT_EQ(aosi::BuildVisibilityBitmap(ev, snap).size(), 0u);
}

TEST(EdgeCaseTest, MarkerOnlyHistory) {
  // A partition that was created and immediately deleted before any data
  // arrived (e.g. a delete raced ahead of a forwarded append).
  EpochVector ev;
  ev.RecordDelete(3);
  EXPECT_EQ(ev.num_records(), 0u);
  Snapshot snap{5, {}};
  EXPECT_EQ(aosi::BuildVisibilityBitmap(ev, snap).size(), 0u);
  // Purge once the marker is old: the whole history disappears.
  auto plan = aosi::PlanPurge(ev, 4);
  ASSERT_TRUE(plan.needed);
  EXPECT_EQ(plan.new_history.num_entries(), 0u);
}

TEST(EdgeCaseTest, AppendAfterLoneMarker) {
  EpochVector ev;
  ev.RecordDelete(2);
  ev.RecordAppend(5, 3);
  Snapshot sees_delete{6, {}};
  EXPECT_EQ(aosi::BuildVisibilityBitmap(ev, sees_delete).ToString(), "111");
  Snapshot before_delete{1, {}};
  EXPECT_EQ(aosi::BuildVisibilityBitmap(ev, before_delete).ToString(),
            "000");
}

TEST(EdgeCaseTest, AugmentDepsFiltersAndReregisters) {
  TxnManager tm(1, 3);  // epochs 1, 4, 7, ...
  Txn txn = tm.BeginReadWrite();
  EXPECT_EQ(txn.epoch, 1u);
  // Remote pending epochs: one older-impossible (0 is reserved), ones both
  // below and above our epoch.
  tm.ObserveClock(20);
  EpochSet remote({2, 3, 5, 17});
  // Only epochs < txn.epoch may enter deps; with epoch 1 nothing qualifies.
  tm.AugmentDeps(&txn, remote);
  EXPECT_TRUE(txn.deps.empty());
  ASSERT_TRUE(tm.Commit(txn).ok());

  Txn later = tm.BeginReadWrite();  // epoch > all of {2,3,5}
  tm.AugmentDeps(&later, EpochSet({2, 3, 5, later.epoch + 3}));
  EXPECT_EQ(later.deps, EpochSet({2, 3, 5}));
  // The horizon registered for LSE gating reflects the new deps.
  EXPECT_EQ(tm.TryAdvanceLSE(100), 1u);  // min(deps)-1 = 1
  ASSERT_TRUE(tm.Commit(later).ok());
}

TEST(EdgeCaseTest, ClusterErrorPaths) {
  cluster::ClusterOptions options;
  options.num_nodes = 2;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .CreateCube("c", {{"k", 4, 1, false}},
                              {{"v", DataType::kInt64}})
                  .ok());
  // Duplicate cube.
  EXPECT_EQ(cluster
                .CreateCube("c", {{"k", 4, 1, false}},
                            {{"v", DataType::kInt64}})
                .code(),
            StatusCode::kAlreadyExists);
  // Operations on missing cubes.
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(cluster.Append(&*txn, "nope", {{0, 1}}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cluster.Query(&*txn, "nope", {}).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(cluster.Rollback(&*txn).ok());
  // Writes inside RO transactions.
  auto ro = cluster.BeginReadOnly(1);
  EXPECT_EQ(cluster.Append(&ro, "c", {{0, 1}}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.DeleteWhere(&ro, "c", {}).code(),
            StatusCode::kFailedPrecondition);
  cluster.EndReadOnly(&ro);
  // Bad node indexes.
  EXPECT_EQ(cluster.SetNodeOnline(0, false).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(cluster.SetNodeOnline(9, false).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(cluster.CrashNode(9).code(), StatusCode::kOutOfRange);
  // Checkpoint without a data_dir.
  EXPECT_EQ(cluster.CheckpointAll().status().code(),
            StatusCode::kFailedPrecondition);
  // DropCube then recreate with a different shape.
  ASSERT_TRUE(cluster.DropCube("c").ok());
  EXPECT_EQ(cluster.DropCube("c").code(), StatusCode::kNotFound);
  ASSERT_TRUE(cluster
                  .CreateCube("c", {{"k", 8, 2, false}},
                              {{"v", DataType::kInt64}})
                  .ok());
}

TEST(EdgeCaseTest, SingleNodeClusterDegeneratesToLocal) {
  cluster::ClusterOptions options;
  options.num_nodes = 1;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .CreateCube("c", {{"k", 4, 1, false}},
                              {{"v", DataType::kInt64}})
                  .ok());
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(txn->txn.epoch, 1u);  // stride 1, like Table I
  ASSERT_TRUE(cluster.Append(&*txn, "c", {{0, 42}}).ok());
  ASSERT_TRUE(cluster.Commit(&*txn).ok());
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  EXPECT_DOUBLE_EQ(cluster.QueryOnce(1, "c", q)->Single(0, AggSpec::Fn::kSum),
                   42.0);
}

TEST(EdgeCaseTest, ZeroRowBatchesIgnored) {
  auto schema = CubeSchema::Make("t", {{"k", 4, 4, false}},
                                 {{"v", DataType::kInt64}})
                    .value();
  Table table(schema, 1, false);
  PerBrickBatches batches;
  batches.emplace(0, EncodedBatch(*schema));  // zero rows
  ASSERT_TRUE(table.Append(1, std::move(batches)).ok());
  EXPECT_EQ(table.TotalRecords(), 0u);
  EXPECT_EQ(table.NumBricks(), 0u);  // never materialized
}

TEST(EdgeCaseTest, EmptyRecordLoadIsANoOpTransaction) {
  Database db;
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());
  ASSERT_TRUE(db.Load("c", {}).ok());
  EXPECT_EQ(db.TotalRecords(), 0u);
  EXPECT_TRUE(db.txns().PendingTxs().empty());
}

}  // namespace
}  // namespace cubrick
