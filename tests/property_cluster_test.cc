// Randomized distributed workloads over the simulated cluster: arbitrary
// interleavings of begins, appends, deletes, commits and rollbacks from
// rotating coordinators must always converge to a consistent, SI-correct
// state on every node.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/random.h"

namespace cubrick::cluster {
namespace {

struct OpenTxn {
  DistTxn txn;
  int64_t appended_sum = 0;
  uint64_t appended_rows = 0;
};

class RandomClusterTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    SeedsNodesReplicas, RandomClusterTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(1u, 3u),
                       ::testing::Values(size_t{1}, size_t{2})),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_nodes" +
             std::to_string(std::get<1>(info.param)) + "_rf" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(RandomClusterTest, ConvergesToConsistentState) {
  const int seed = std::get<0>(GetParam());
  const uint32_t num_nodes = std::get<1>(GetParam());
  const size_t rf = std::get<2>(GetParam());
  if (rf > num_nodes) GTEST_SKIP();

  ClusterOptions options;
  options.num_nodes = num_nodes;
  options.replication_factor = rf;
  options.shards_per_cube = 2;
  Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .CreateCube("t", {{"k", 64, 4, false}},
                              {{"v", DataType::kInt64}})
                  .ok());

  Random rng(7000 + static_cast<uint64_t>(seed));
  std::vector<OpenTxn> open;
  int64_t committed_sum = 0;
  uint64_t committed_rows = 0;
  bool deleted_everything_at_end = false;

  for (int step = 0; step < 120; ++step) {
    const double dice = rng.NextDouble();
    const uint32_t coord = 1 + static_cast<uint32_t>(rng.Uniform(num_nodes));
    if (dice < 0.35 || open.empty()) {
      auto txn = cluster.BeginReadWrite(coord);
      ASSERT_TRUE(txn.ok());
      open.push_back({*txn, 0, 0});
    } else if (dice < 0.65) {
      OpenTxn& t = open[rng.Uniform(open.size())];
      std::vector<Record> rows;
      const uint64_t n = 1 + rng.Uniform(8);
      for (uint64_t i = 0; i < n; ++i) {
        const int64_t v = static_cast<int64_t>(rng.Uniform(1000));
        rows.push_back({static_cast<int64_t>(rng.Uniform(64)), v});
        t.appended_sum += v;
      }
      t.appended_rows += n;
      ASSERT_TRUE(cluster.Append(&t.txn, "t", rows).ok());
    } else if (dice < 0.85) {
      const size_t pick = rng.Uniform(open.size());
      ASSERT_TRUE(cluster.Commit(&open[pick].txn).ok());
      committed_sum += open[pick].appended_sum;
      committed_rows += open[pick].appended_rows;
      open.erase(open.begin() + static_cast<ptrdiff_t>(pick));
    } else if (dice < 0.95) {
      const size_t pick = rng.Uniform(open.size());
      ASSERT_TRUE(cluster.Rollback(&open[pick].txn).ok());
      open.erase(open.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      // Consistency probe: a RO query sees only committed whole
      // transactions — i.e. some prefix-closed subset. With concurrent
      // opens, LCE may trail; the sum must match commits whose epoch <=
      // the coordinator's LCE. We verify the weaker end-state-checkable
      // invariant: count is a sum of whole committed txns' row counts.
      cubrick::Query q;
      q.aggs = {{AggSpec::Fn::kCount, 0}};
      auto result = cluster.QueryOnce(coord, "t", q);
      ASSERT_TRUE(result.ok());
      ASSERT_LE(result->Single(0, AggSpec::Fn::kCount),
                static_cast<double>(committed_rows));
    }
  }

  for (auto& t : open) {
    ASSERT_TRUE(cluster.Commit(&t.txn).ok());
    committed_sum += t.appended_sum;
    committed_rows += t.appended_rows;
  }
  (void)deleted_everything_at_end;

  // Convergence: every node answers the same totals.
  cubrick::Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  for (uint32_t n = 1; n <= num_nodes; ++n) {
    auto result = cluster.QueryOnce(n, "t", q);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum),
                     static_cast<double>(committed_sum))
        << "node " << n;
    EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount),
                     static_cast<double>(committed_rows))
        << "node " << n;
  }
  // Replication: physical copies = committed rows x replication factor.
  EXPECT_EQ(cluster.TotalRecords(), committed_rows * rf);

  // All LCEs agree after quiescence.
  const aosi::Epoch lce1 = cluster.node(1).txns().LCE();
  for (uint32_t n = 2; n <= num_nodes; ++n) {
    EXPECT_EQ(cluster.node(n).txns().LCE(), lce1);
  }

  // Purge leaves visible state untouched.
  cluster.AdvanceClusterLSE();
  cluster.PurgeAll();
  auto after = cluster.QueryOnce(1, "t", q);
  EXPECT_DOUBLE_EQ(after->Single(0, AggSpec::Fn::kSum),
                   static_cast<double>(committed_sum));
  EXPECT_DOUBLE_EQ(after->Single(1, AggSpec::Fn::kCount),
                   static_cast<double>(committed_rows));
}

TEST_P(RandomClusterTest, RandomOutagesNeverLoseCommittedData) {
  const int seed = std::get<0>(GetParam());
  const uint32_t num_nodes = std::get<1>(GetParam());
  const size_t rf = std::get<2>(GetParam());
  if (rf < 2 || rf > num_nodes) {
    GTEST_SKIP() << "outage tolerance needs replication";
  }

  ClusterOptions options;
  options.num_nodes = num_nodes;
  options.replication_factor = rf;
  Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .CreateCube("t", {{"k", 64, 4, false}},
                              {{"v", DataType::kInt64}})
                  .ok());

  Random rng(8000 + static_cast<uint64_t>(seed));
  uint64_t committed_rows = 0;
  for (int round = 0; round < 15; ++round) {
    // Load with everyone up (RW begins require full membership).
    auto txn = cluster.BeginReadWrite(
        1 + static_cast<uint32_t>(rng.Uniform(num_nodes)));
    ASSERT_TRUE(txn.ok());
    std::vector<Record> rows;
    for (int i = 0; i < 10; ++i) {
      rows.push_back({static_cast<int64_t>(rng.Uniform(64)), 1});
    }
    ASSERT_TRUE(cluster.Append(&*txn, "t", rows).ok());
    ASSERT_TRUE(cluster.Commit(&*txn).ok());
    committed_rows += 10;

    // Take a random node down; committed data must remain fully readable.
    const uint32_t victim =
        1 + static_cast<uint32_t>(rng.Uniform(num_nodes));
    ASSERT_TRUE(cluster.SetNodeOnline(victim, false).ok());
    uint32_t reader = 1 + static_cast<uint32_t>(rng.Uniform(num_nodes));
    while (reader == victim) {
      reader = 1 + static_cast<uint32_t>(rng.Uniform(num_nodes));
    }
    cubrick::Query q;
    q.aggs = {{AggSpec::Fn::kCount, 0}};
    auto result = cluster.QueryOnce(reader, "t", q);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kCount),
                     static_cast<double>(committed_rows))
        << "round " << round << " victim " << victim;
    ASSERT_TRUE(cluster.SetNodeOnline(victim, true).ok());
  }
}

}  // namespace
}  // namespace cubrick::cluster
