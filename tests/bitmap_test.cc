#include "common/bitmap.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"

namespace cubrick {
namespace {

TEST(BitmapTest, StartsAllClear) {
  Bitmap bm(100);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_EQ(bm.CountSet(), 0u);
  EXPECT_TRUE(bm.None());
  EXPECT_FALSE(bm.All());
}

TEST(BitmapTest, InitialAllSetRespectsSize) {
  Bitmap bm(70, true);
  EXPECT_EQ(bm.CountSet(), 70u);
  EXPECT_TRUE(bm.All());
}

TEST(BitmapTest, SetGetClearSingleBits) {
  Bitmap bm(130);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(129));
  EXPECT_FALSE(bm.Get(1));
  EXPECT_EQ(bm.CountSet(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Get(63));
  EXPECT_EQ(bm.CountSet(), 3u);
}

TEST(BitmapTest, AssignDispatches) {
  Bitmap bm(10);
  bm.Assign(3, true);
  EXPECT_TRUE(bm.Get(3));
  bm.Assign(3, false);
  EXPECT_FALSE(bm.Get(3));
}

TEST(BitmapTest, SetRangeWithinOneWord) {
  Bitmap bm(64);
  bm.SetRange(3, 10);
  EXPECT_EQ(bm.CountSet(), 7u);
  for (size_t i = 3; i < 10; ++i) EXPECT_TRUE(bm.Get(i));
  EXPECT_FALSE(bm.Get(2));
  EXPECT_FALSE(bm.Get(10));
}

TEST(BitmapTest, SetRangeAcrossWords) {
  Bitmap bm(256);
  bm.SetRange(60, 200);
  EXPECT_EQ(bm.CountSet(), 140u);
  EXPECT_FALSE(bm.Get(59));
  EXPECT_TRUE(bm.Get(60));
  EXPECT_TRUE(bm.Get(199));
  EXPECT_FALSE(bm.Get(200));
}

TEST(BitmapTest, EmptyRangeIsNoOp) {
  Bitmap bm(64);
  bm.SetRange(5, 5);
  EXPECT_TRUE(bm.None());
  bm.SetRange(0, 64);
  bm.ClearRange(30, 30);
  EXPECT_TRUE(bm.All());
}

TEST(BitmapTest, ClearRangeAcrossWords) {
  Bitmap bm(300, true);
  bm.ClearRange(10, 290);
  EXPECT_EQ(bm.CountSet(), 20u);
  EXPECT_TRUE(bm.Get(9));
  EXPECT_FALSE(bm.Get(10));
  EXPECT_FALSE(bm.Get(289));
  EXPECT_TRUE(bm.Get(290));
}

TEST(BitmapTest, CountSetInRangeMatchesBruteForce) {
  Random rng(42);
  Bitmap bm(517);
  for (size_t i = 0; i < bm.size(); ++i) {
    if (rng.OneIn(3)) bm.Set(i);
  }
  for (int trial = 0; trial < 50; ++trial) {
    size_t a = rng.Uniform(bm.size() + 1);
    size_t b = rng.Uniform(bm.size() + 1);
    if (a > b) std::swap(a, b);
    size_t expected = 0;
    for (size_t i = a; i < b; ++i) {
      if (bm.Get(i)) ++expected;
    }
    EXPECT_EQ(bm.CountSetInRange(a, b), expected) << "range [" << a << "," << b
                                                  << ")";
  }
}

TEST(BitmapTest, AndOrAndNot) {
  Bitmap a = Bitmap::FromString("110011");
  Bitmap b = Bitmap::FromString("101010");
  Bitmap and_result = a;
  and_result.And(b);
  EXPECT_EQ(and_result.ToString(), "100010");
  Bitmap or_result = a;
  or_result.Or(b);
  EXPECT_EQ(or_result.ToString(), "111011");
  Bitmap andnot_result = a;
  andnot_result.AndNot(b);
  EXPECT_EQ(andnot_result.ToString(), "010001");
}

TEST(BitmapTest, FindNextSet) {
  Bitmap bm(200);
  bm.Set(5);
  bm.Set(64);
  bm.Set(199);
  EXPECT_EQ(bm.FindNextSet(0), 5u);
  EXPECT_EQ(bm.FindNextSet(5), 5u);
  EXPECT_EQ(bm.FindNextSet(6), 64u);
  EXPECT_EQ(bm.FindNextSet(65), 199u);
  EXPECT_EQ(bm.FindNextSet(200), 200u);
}

TEST(BitmapTest, FindNextSetOnEmpty) {
  Bitmap bm(100);
  EXPECT_EQ(bm.FindNextSet(0), 100u);
  Bitmap zero;
  EXPECT_EQ(zero.FindNextSet(0), 0u);
}

TEST(BitmapTest, ForEachSetVisitsInOrder) {
  Bitmap bm(150);
  bm.Set(0);
  bm.Set(70);
  bm.Set(149);
  std::vector<size_t> seen;
  bm.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 70, 149}));
}

TEST(BitmapTest, ResizeGrowZeroFills) {
  Bitmap bm(10, true);
  bm.Resize(80);
  EXPECT_EQ(bm.CountSet(), 10u);
  EXPECT_FALSE(bm.Get(79));
}

TEST(BitmapTest, ResizeShrinkDropsBits) {
  Bitmap bm(80, true);
  bm.Resize(10);
  EXPECT_EQ(bm.CountSet(), 10u);
  bm.Resize(80);
  // Bits beyond 10 must have been dropped by the shrink.
  EXPECT_EQ(bm.CountSet(), 10u);
}

TEST(BitmapTest, RoundTripsThroughString) {
  const std::string pattern = "10110010011";
  Bitmap bm = Bitmap::FromString(pattern);
  EXPECT_EQ(bm.ToString(), pattern);
  EXPECT_EQ(bm.CountSet(), 6u);
}

TEST(BitmapTest, EqualityIsSizeAndContent) {
  Bitmap a = Bitmap::FromString("1010");
  Bitmap b = Bitmap::FromString("1010");
  Bitmap c = Bitmap::FromString("10100");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(BitmapTest, RangeOpsAtWordBoundaries) {
  // begin/end exactly at multiples of 64: the word-masking fast paths in
  // SetRange/ClearRange must not spill into neighbor words.
  Bitmap bm(256);
  bm.SetRange(64, 128);  // exactly one full word
  EXPECT_EQ(bm.CountSet(), 64u);
  EXPECT_FALSE(bm.Get(63));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(127));
  EXPECT_FALSE(bm.Get(128));
  bm.SetRange(128, 192);
  bm.ClearRange(64, 128);  // clear the first full word again
  EXPECT_EQ(bm.CountSet(), 64u);
  EXPECT_FALSE(bm.Get(64));
  EXPECT_FALSE(bm.Get(127));
  EXPECT_TRUE(bm.Get(128));
  EXPECT_TRUE(bm.Get(191));
}

TEST(BitmapTest, EmptyRangeAtWordBoundaryIsNoOp) {
  Bitmap bm(192, true);
  bm.ClearRange(64, 64);
  bm.ClearRange(128, 128);
  bm.ClearRange(192, 192);  // empty range at size() is legal
  EXPECT_TRUE(bm.All());
  Bitmap clear(192);
  clear.SetRange(64, 64);
  clear.SetRange(0, 0);
  EXPECT_TRUE(clear.None());
}

TEST(BitmapTest, MultiFullWordSpans) {
  Bitmap bm(320);
  bm.SetRange(0, 320);  // five full words
  EXPECT_TRUE(bm.All());
  bm.ClearRange(64, 256);  // three interior full words
  EXPECT_EQ(bm.CountSet(), 128u);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  EXPECT_FALSE(bm.Get(64));
  EXPECT_FALSE(bm.Get(255));
  EXPECT_TRUE(bm.Get(256));
  EXPECT_TRUE(bm.Get(319));
}

TEST(BitmapTest, FindNextSetAcrossWordBoundary) {
  Bitmap bm(256);
  bm.Set(64);
  bm.Set(128);
  EXPECT_EQ(bm.FindNextSet(0), 64u);
  EXPECT_EQ(bm.FindNextSet(64), 64u);   // from an exactly-set boundary bit
  EXPECT_EQ(bm.FindNextSet(65), 128u);  // skips a fully-clear word
  EXPECT_EQ(bm.FindNextSet(129), 256u);
  bm.Clear(64);
  EXPECT_EQ(bm.FindNextSet(63), 128u);
}

TEST(BitmapTest, CountSetInRangeWordBoundaries) {
  Bitmap bm(256, true);
  EXPECT_EQ(bm.CountSetInRange(64, 128), 64u);   // one exact word
  EXPECT_EQ(bm.CountSetInRange(64, 64), 0u);     // empty at boundary
  EXPECT_EQ(bm.CountSetInRange(0, 256), 256u);   // all words
  EXPECT_EQ(bm.CountSetInRange(63, 65), 2u);     // straddles the boundary
  bm.ClearRange(64, 192);
  EXPECT_EQ(bm.CountSetInRange(0, 256), 128u);
  EXPECT_EQ(bm.CountSetInRange(63, 193), 2u);    // only the edge bits
}

TEST(BitmapTest, RangePreconditionsChecked) {
  Bitmap bm(10);
  EXPECT_THROW(bm.SetRange(5, 11), CheckFailure);
  EXPECT_THROW(bm.ClearRange(11, 11), CheckFailure);
  EXPECT_THROW(bm.CountSetInRange(3, 2), CheckFailure);
}

// The dense-word SIMD paths in the executor rely on this contract: a tail
// word of a ragged bitmap (size % 64 != 0) can never read as ~0ULL, so a
// word equal to ~0ULL always covers 64 real rows.
TEST(BitmapTest, SetWordMasksRaggedTail) {
  Bitmap bm(100);  // tail word holds bits 64..99
  bm.SetWord(1, ~0ULL);
  EXPECT_EQ(bm.Word(1), (1ULL << 36) - 1);  // bits 100..127 masked off
  EXPECT_NE(bm.Word(1), ~0ULL);
  EXPECT_EQ(bm.CountSet(), 36u);
  // A full interior word is untouched by the mask.
  bm.SetWord(0, ~0ULL);
  EXPECT_EQ(bm.Word(0), ~0ULL);
}

TEST(BitmapTest, TailWordNeverDenseUnlessSizeIsWordMultiple) {
  for (size_t size : {1u, 63u, 65u, 100u, 127u, 129u, 255u}) {
    Bitmap bm(size);
    bm.SetAll();
    if (size % 64 != 0) {
      EXPECT_NE(bm.Word(bm.num_words() - 1), ~0ULL) << "size " << size;
    }
    EXPECT_EQ(bm.CountSet(), size);
  }
  Bitmap exact(128);
  exact.SetAll();
  EXPECT_EQ(exact.Word(1), ~0ULL);
}

}  // namespace
}  // namespace cubrick
