// End-to-end integration tests: full single-node lifecycle across DDL,
// mixed implicit/explicit transactions, maintenance, checkpoint/recovery;
// plus failure injection on the persistence layer and shard machinery.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "common/random.h"
#include "cubrick/database.h"

namespace cubrick {
namespace {

namespace fs = std::filesystem;

cubrick::Query CountSum() {
  cubrick::Query q;
  q.aggs = {{AggSpec::Fn::kCount, 0}, {AggSpec::Fn::kSum, 0}};
  return q;
}

TEST(IntegrationTest, FullLifecycle) {
  const auto dir =
      fs::temp_directory_path() / "cubrick_integration_lifecycle";
  fs::remove_all(dir);
  fs::create_directories(dir);

  DatabaseOptions options;
  options.shards_per_cube = 2;
  options.threaded_shards = true;
  options.data_dir = dir.string();

  int64_t expected_sum = 0;
  uint64_t expected_rows = 0;
  {
    Database db(options);
    ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE facts ("
                              "day int CARDINALITY 32 RANGE 1, "
                              "site string CARDINALITY 16 RANGE 4, "
                              "hits int, weight double)")
                    .ok());

    // Phase 1: daily loads from 3 concurrent clients.
    std::vector<std::thread> clients;
    std::atomic<int64_t> total{0};
    std::atomic<uint64_t> rows{0};
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        Random rng(static_cast<uint64_t>(c) + 10);
        for (int batch = 0; batch < 10; ++batch) {
          std::vector<Record> records;
          for (int i = 0; i < 50; ++i) {
            const int64_t hits = static_cast<int64_t>(rng.Uniform(100));
            records.push_back(
                {static_cast<int64_t>(rng.Uniform(32)),
                 "site" + std::to_string(rng.Uniform(16)), hits,
                 rng.NextDouble()});
            total.fetch_add(hits, std::memory_order_relaxed);
            rows.fetch_add(1, std::memory_order_relaxed);
          }
          ASSERT_TRUE(db.Load("facts", records).ok());
        }
      });
    }
    for (auto& c : clients) c.join();
    expected_sum = total.load(std::memory_order_relaxed);
    expected_rows = rows.load(std::memory_order_relaxed);

    auto loaded = db.Query("facts", CountSum());
    ASSERT_TRUE(loaded.ok());
    EXPECT_DOUBLE_EQ(loaded->Single(0, AggSpec::Fn::kCount),
                     static_cast<double>(expected_rows));
    EXPECT_DOUBLE_EQ(loaded->Single(1, AggSpec::Fn::kSum),
                     static_cast<double>(expected_sum));

    // Phase 2: an explicit transaction mixing loads and an abort.
    aosi::Txn good = db.Begin();
    ASSERT_TRUE(db.LoadIn(good, "facts", {{0, "site0", 1000, 0.0}}).ok());
    aosi::Txn doomed = db.Begin();
    ASSERT_TRUE(db.LoadIn(doomed, "facts", {{1, "site1", 9999, 0.0}}).ok());
    ASSERT_TRUE(db.Rollback(doomed).ok());
    ASSERT_TRUE(db.Commit(good).ok());
    expected_sum += 1000;
    expected_rows += 1;

    // Phase 3: checkpoint everything.
    auto lse = db.Checkpoint();
    ASSERT_TRUE(lse.ok());
    EXPECT_EQ(*lse, db.txns().LCE());
  }

  // Phase 4: crash + recovery.
  Database db(options);
  ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE facts ("
                            "day int CARDINALITY 32 RANGE 1, "
                            "site string CARDINALITY 16 RANGE 4, "
                            "hits int, weight double)")
                  .ok());
  ASSERT_TRUE(db.Recover().ok());
  auto recovered = db.Query("facts", CountSum());
  ASSERT_TRUE(recovered.ok());
  EXPECT_DOUBLE_EQ(recovered->Single(0, AggSpec::Fn::kCount),
                   static_cast<double>(expected_rows));
  EXPECT_DOUBLE_EQ(recovered->Single(1, AggSpec::Fn::kSum),
                   static_cast<double>(expected_sum));

  // Phase 5: retention delete + purge still work post-recovery.
  auto old_days = db.RangeFilter("facts", "day", 0, 15);
  ASSERT_TRUE(old_days.ok());
  ASSERT_TRUE(db.DeletePartitions("facts", {*old_days}).ok());
  ASSERT_TRUE(db.Load("facts", {{31, "site0", 5, 0.5}}).ok());
  db.txns().TryAdvanceLSE(db.txns().LCE());
  db.PurgeAll();
  auto pruned = db.Query("facts", CountSum());
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->Single(0, AggSpec::Fn::kCount),
            static_cast<double>(expected_rows + 1));
  fs::remove_all(dir);
}

TEST(IntegrationTest, ConcurrentReadersSeeMonotonicBatches) {
  DatabaseOptions options;
  options.threaded_shards = true;
  Database db(options);
  ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE s (k int CARDINALITY 8, v int)")
                  .ok());
  constexpr uint64_t kBatch = 100;
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    Random rng(3);
    for (int b = 0; b < 50 && !stop.load(std::memory_order_seq_cst); ++b) {
      std::vector<Record> records;
      for (uint64_t i = 0; i < kBatch; ++i) {
        records.push_back({static_cast<int64_t>(rng.Uniform(8)), 1});
      }
      ASSERT_TRUE(db.Load("s", records).ok());
    }
    stop.store(true, std::memory_order_seq_cst);
  });

  std::thread reader([&] {
    double last = 0;
    while (!stop.load(std::memory_order_seq_cst)) {
      auto result = db.Query("s", CountSum());
      if (!result.ok()) {
        failed.store(true, std::memory_order_seq_cst);
        return;
      }
      const double count = result->Single(0, AggSpec::Fn::kCount);
      // Counts are whole batches and never go backwards.
      if (static_cast<uint64_t>(count) % kBatch != 0 || count < last) {
        failed.store(true, std::memory_order_seq_cst);
        return;
      }
      last = count;
    }
  });

  writer.join();
  stop.store(true, std::memory_order_seq_cst);
  reader.join();
  EXPECT_FALSE(failed.load(std::memory_order_seq_cst));
  EXPECT_EQ(db.TotalRecords(), 50 * kBatch);
}

TEST(IntegrationTest, CorruptManifestFailsRecoveryCleanly) {
  const auto dir = fs::temp_directory_path() / "cubrick_corrupt_manifest";
  fs::remove_all(dir);
  fs::create_directories(dir);
  DatabaseOptions options;
  options.data_dir = dir.string();
  {
    Database db(options);
    ASSERT_TRUE(
        db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());
    ASSERT_TRUE(db.Load("c", {{0, 1}}).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  {
    std::ofstream f(dir / "c.manifest",
                    std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  Database db(options);
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());
  // Corrupt manifest reads as "no complete rounds": clean empty recovery.
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.TotalRecords(), 0u);
  fs::remove_all(dir);
}

TEST(IntegrationTest, TruncatedSegmentFailsRecoveryWithIOError) {
  const auto dir = fs::temp_directory_path() / "cubrick_truncated_segment";
  fs::remove_all(dir);
  fs::create_directories(dir);
  DatabaseOptions options;
  options.data_dir = dir.string();
  {
    Database db(options);
    ASSERT_TRUE(
        db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());
    std::vector<Record> rows;
    for (int i = 0; i < 1000; ++i) rows.push_back({i % 4, i});
    ASSERT_TRUE(db.Load("c", rows).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  // Truncate the segment the manifest references.
  const auto seg = dir / "c.seg.1";
  ASSERT_TRUE(fs::exists(seg));
  fs::resize_file(seg, fs::file_size(seg) / 2);

  Database db(options);
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());
  EXPECT_EQ(db.Recover().code(), StatusCode::kIOError);
  fs::remove_all(dir);
}

TEST(IntegrationTest, DictionaryMismatchDetected) {
  const auto dir = fs::temp_directory_path() / "cubrick_bad_dict";
  fs::remove_all(dir);
  fs::create_directories(dir);
  DatabaseOptions options;
  options.data_dir = dir.string();
  {
    Database db(options);
    ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE c (k string CARDINALITY 4, "
                              "v int)")
                    .ok());
    ASSERT_TRUE(db.Load("c", {{"a", 1}}).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  {
    std::ofstream f(dir / "c.dict", std::ios::binary | std::ios::trunc);
    f << "not a dictionary";
  }
  Database db(options);
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k string CARDINALITY 4, v int)").ok());
  EXPECT_EQ(db.Recover().code(), StatusCode::kIOError);
  fs::remove_all(dir);
}

TEST(IntegrationTest, ShardExceptionPropagatesToCaller) {
  auto schema =
      CubeSchema::Make("t", {{"k", 4, 1, false}}, {{"v", DataType::kInt64}})
          .value();
  Shard shard(schema, /*threaded=*/true);
  auto fut = shard.Enqueue(
      [](BrickMap&) { throw std::runtime_error("injected fault"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The shard thread survives the exception and keeps serving.
  auto ok = shard.Enqueue([](BrickMap&) {});
  ok.get();
}

TEST(IntegrationTest, TwoCubesAreIsolated) {
  Database db;
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE a (k int CARDINALITY 4, v int)").ok());
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE b (k int CARDINALITY 4, v int)").ok());
  ASSERT_TRUE(db.Load("a", {{0, 10}}).ok());
  ASSERT_TRUE(db.Load("b", {{0, 20}, {1, 30}}).ok());
  auto qa = db.Query("a", CountSum());
  auto qb = db.Query("b", CountSum());
  EXPECT_DOUBLE_EQ(qa->Single(1, AggSpec::Fn::kSum), 10.0);
  EXPECT_DOUBLE_EQ(qb->Single(1, AggSpec::Fn::kSum), 50.0);
  // A cross-cube explicit transaction commits atomically for both.
  aosi::Txn txn = db.Begin();
  ASSERT_TRUE(db.LoadIn(txn, "a", {{1, 1}}).ok());
  ASSERT_TRUE(db.LoadIn(txn, "b", {{2, 2}}).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  EXPECT_DOUBLE_EQ(db.Query("a", CountSum())->Single(1, AggSpec::Fn::kSum),
                   11.0);
  EXPECT_DOUBLE_EQ(db.Query("b", CountSum())->Single(1, AggSpec::Fn::kSum),
                   52.0);
  // Rollback of a cross-cube transaction removes from both.
  aosi::Txn bad = db.Begin();
  ASSERT_TRUE(db.LoadIn(bad, "a", {{2, 100}}).ok());
  ASSERT_TRUE(db.LoadIn(bad, "b", {{3, 100}}).ok());
  ASSERT_TRUE(db.Rollback(bad).ok());
  EXPECT_DOUBLE_EQ(db.Query("a", CountSum())->Single(1, AggSpec::Fn::kSum),
                   11.0);
  EXPECT_DOUBLE_EQ(db.Query("b", CountSum())->Single(1, AggSpec::Fn::kSum),
                   52.0);
}

TEST(IntegrationTest, DropCubeReleasesName) {
  Database db;
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 4, v int)").ok());
  ASSERT_TRUE(db.Load("c", {{0, 1}}).ok());
  ASSERT_TRUE(db.DropCube("c").ok());
  EXPECT_EQ(db.FindTable("c"), nullptr);
  EXPECT_EQ(db.DropCube("c").code(), StatusCode::kNotFound);
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 8, v int)").ok());
  EXPECT_EQ(db.TotalRecords(), 0u);
}

}  // namespace
}  // namespace cubrick
