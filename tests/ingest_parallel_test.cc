// Morsel-parallel ingestion tests (DESIGN.md §4f): max_rejected threshold
// semantics, error-string retention order under parallel parse, and the
// serial==parallel equivalence contract — identical dictionary ids, brick
// contents and epochs-vector state regardless of fan-out.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cubrick/database.h"
#include "engine/table.h"
#include "ingest/parser.h"

namespace cubrick {
namespace {

// Large enough that --ingest-parallel style fan-outs actually plan several
// morsels (the planner only splits at >= 64-record chunks).
constexpr size_t kManyRecords = 400;

std::shared_ptr<CubeSchema> StringSchema() {
  return CubeSchema::Make(
             "ingest", {{"region", 64, 4, /*is_string=*/true}},
             {{"n", DataType::kInt64}, {"tag", DataType::kString}})
      .value();
}

/// A record mix with string dims/metrics in deliberately unsorted order and
/// a rejection (bad metric type) at every index where `reject(i)` holds.
std::vector<Record> MixedRecords(size_t n,
                                 const std::function<bool(size_t)>& reject) {
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Descending suffix so first-encounter order != sorted order.
    const std::string region = "region-" + std::to_string(31 - (i % 32));
    const std::string tag = "tag-" + std::to_string((n - i) % 48);
    if (reject && reject(i)) {
      records.push_back({region, Value("not-an-int"), tag});
    } else {
      records.push_back({region, static_cast<int64_t>(i), tag});
    }
  }
  return records;
}

TEST(IngestParallelTest, RejectedExactlyAtThresholdIsAccepted) {
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    auto schema = StringSchema();
    ParseOptions opts;
    opts.max_rejected = 5;
    auto records =
        MixedRecords(kManyRecords, [](size_t i) { return i % 80 == 7; });
    auto out = ParseRecords(*schema, records, opts, parallelism);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->rejected, opts.max_rejected);
    EXPECT_EQ(out->accepted, kManyRecords - opts.max_rejected);
  }
}

TEST(IngestParallelTest, OneOverThresholdDiscardsBatch) {
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    auto schema = StringSchema();
    ParseOptions opts;
    opts.max_rejected = 4;  // the workload rejects 5
    auto records =
        MixedRecords(kManyRecords, [](size_t i) { return i % 80 == 7; });
    auto out = ParseRecords(*schema, records, opts, parallelism);
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(out.status().ToString().find("max_rejected=4"),
              std::string::npos);
  }
}

TEST(IngestParallelTest, AllRejectedBatch) {
  auto schema = StringSchema();
  ParseOptions opts;
  opts.max_rejected = kManyRecords;
  auto records = MixedRecords(kManyRecords, [](size_t) { return true; });
  auto out = ParseRecords(*schema, records, opts, /*parallelism=*/4);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->accepted, 0u);
  EXPECT_EQ(out->rejected, kManyRecords);
  EXPECT_TRUE(out->batches.empty());
  EXPECT_EQ(out->errors.size(), opts.max_errors);
}

TEST(IngestParallelTest, EmptyBatch) {
  auto schema = StringSchema();
  auto out = ParseRecords(*schema, {}, {}, /*parallelism=*/4);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->accepted, 0u);
  EXPECT_EQ(out->rejected, 0u);
  EXPECT_TRUE(out->batches.empty());
  EXPECT_TRUE(out->errors.empty());
}

TEST(IngestParallelTest, ErrorRetentionOrderMatchesRecordOrder) {
  // Rejections land in different morsels; each carries a distinguishable
  // message (the dimension value), so retention order is checkable.
  auto schema = CubeSchema::Make("c", {{"d", 1000, 100, false}},
                                 {{"m", DataType::kInt64}})
                    .value();
  std::vector<Record> records;
  std::vector<size_t> reject_at = {3, 71, 142, 260, 388};
  for (size_t i = 0; i < kManyRecords; ++i) {
    const bool bad =
        std::find(reject_at.begin(), reject_at.end(), i) != reject_at.end();
    // Out-of-cardinality coordinate 1000+i names the record in the error.
    records.push_back({static_cast<int64_t>(bad ? 1000 + i : i % 1000),
                       static_cast<int64_t>(i)});
  }
  ParseOptions opts;
  opts.max_rejected = 10;
  opts.max_errors = 3;  // fewer than the rejection count: must truncate
  auto serial = ParseRecords(*schema, records, opts, 1);
  auto parallel = ParseRecords(*schema, records, opts, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->errors.size(), 3u);
  EXPECT_EQ(serial->errors, parallel->errors);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NE(
        serial->errors[k].find("value " + std::to_string(1000 + reject_at[k])),
        std::string::npos)
        << serial->errors[k];
  }
}

TEST(IngestParallelTest, SerialAndParallelProduceIdenticalState) {
  auto records =
      MixedRecords(kManyRecords, [](size_t i) { return i % 100 == 50; });
  ParseOptions opts;
  opts.max_rejected = 10;

  auto run = [&](size_t parallelism) {
    auto schema = StringSchema();
    auto out = ParseRecords(*schema, records, opts, parallelism);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::make_pair(schema, std::move(*out));
  };
  auto [serial_schema, serial] = run(1);
  for (size_t parallelism : {size_t{2}, size_t{4}, size_t{13}}) {
    auto [par_schema, parallel] = run(parallelism);

    EXPECT_EQ(serial.accepted, parallel.accepted);
    EXPECT_EQ(serial.rejected, parallel.rejected);
    EXPECT_EQ(serial.errors, parallel.errors);

    // Identical dictionary ids: same size, and every id decodes to the
    // same string on both sides (dimension 0 and string metric).
    for (size_t col : {size_t{0}, size_t{2}}) {
      const StringDictionary* a = serial_schema->dictionary(col);
      const StringDictionary* b = par_schema->dictionary(col);
      ASSERT_EQ(a->size(), b->size()) << "column " << col;
      for (uint64_t id = 0; id < a->size(); ++id) {
        EXPECT_EQ(a->Decode(id).value(), b->Decode(id).value())
            << "column " << col << " id " << id;
      }
    }

    // Identical brick contents, column by column, row for row.
    ASSERT_EQ(serial.batches.size(), parallel.batches.size());
    auto it_a = serial.batches.begin();
    auto it_b = parallel.batches.begin();
    for (; it_a != serial.batches.end(); ++it_a, ++it_b) {
      EXPECT_EQ(it_a->first, it_b->first);
      EXPECT_EQ(it_a->second.num_rows, it_b->second.num_rows);
      EXPECT_EQ(it_a->second.dim_offsets, it_b->second.dim_offsets);
      EXPECT_EQ(it_a->second.metric_ints, it_b->second.metric_ints);
      EXPECT_EQ(it_a->second.metric_doubles, it_b->second.metric_doubles);
    }
  }
}

TEST(IngestParallelTest, DatabaseLoadEquivalentAcrossParallelism) {
  // End-to-end: identical queries and epochs-vector footprint whether the
  // loads ran through the serial or the morsel-parallel pipeline.
  auto run = [&](size_t parallelism) {
    DatabaseOptions db_opts;
    db_opts.ingest_parallelism = parallelism;
    auto db = std::make_unique<Database>(db_opts);
    EXPECT_TRUE(db->ExecuteDdl("CREATE CUBE c (region string CARDINALITY 64, "
                               "n int)")
                    .ok());
    for (int load = 0; load < 3; ++load) {
      std::vector<Record> records;
      for (size_t i = 0; i < kManyRecords; ++i) {
        records.push_back(
            {"r" + std::to_string((i * 7 + load) % 50),
             static_cast<int64_t>(i + load)});
      }
      EXPECT_TRUE(db->Load("c", records).ok());
    }
    return db;
  };
  auto serial = run(1);
  auto parallel = run(4);

  EXPECT_EQ(serial->TotalRecords(), parallel->TotalRecords());
  EXPECT_EQ(serial->HistoryMemoryUsage(), parallel->HistoryMemoryUsage());
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  q.group_by = {0};
  auto qa = serial->Query("c", q);
  auto qb = parallel->Query("c", q);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  ASSERT_EQ(qa->num_groups(), qb->num_groups());
  for (const auto& [key, states] : qa->groups()) {
    // Same dictionary ids on both sides, so group keys line up directly.
    EXPECT_DOUBLE_EQ(qa->Value(key, 0, AggSpec::Fn::kSum),
                     qb->Value(key, 0, AggSpec::Fn::kSum));
    EXPECT_DOUBLE_EQ(qa->Value(key, 0, AggSpec::Fn::kCount),
                     qb->Value(key, 0, AggSpec::Fn::kCount));
  }
}

TEST(IngestParallelTest, AppendAsyncOverlapsAndGroupAppendsCoalesce) {
  auto schema = CubeSchema::Make("events",
                                 {{"k", 16, 2, /*is_string=*/false}},
                                 {{"n", DataType::kInt64}})
                    .value();
  Table table(schema, 2, /*threaded=*/true);
  std::vector<std::future<void>> pending;
  for (aosi::Epoch e = 1; e <= 8; ++e) {
    std::vector<Record> records;
    for (int64_t k = 0; k < 16; ++k) {
      records.push_back({k, static_cast<int64_t>(e)});
    }
    auto parsed = ParseRecords(*schema, records);
    ASSERT_TRUE(parsed.ok());
    pending.push_back(
        table.AppendAsync(e, std::move(parsed->batches)));
  }
  for (auto& f : pending) f.get();
  EXPECT_EQ(table.TotalRecords(), 8u * 16u);
  // Each epoch keeps its own stamp even when drains coalesce requests.
  auto result = table.Scan(aosi::Snapshot{4, {}},
                           ScanMode::kSnapshotIsolation, [] {
                             Query q;
                             q.aggs = {{AggSpec::Fn::kCount, 0}};
                             return q;
                           }());
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kCount), 4.0 * 16.0);
}

}  // namespace
}  // namespace cubrick
