// Query-model and brick-scan executor tests: filters, group-by, aggregation,
// brick pruning, and SI vs RU scan modes.

#include "query/executor.h"

#include <gtest/gtest.h>

#include "aosi/epoch.h"

namespace cubrick {
namespace {

std::shared_ptr<CubeSchema> MakeSchema() {
  return CubeSchema::Make(
             "sales",
             {{"region", 8, 4, false}, {"day", 32, 8, false}},
             {{"units", DataType::kInt64}, {"revenue", DataType::kDouble}})
      .value();
}

aosi::Snapshot Snap(aosi::Epoch e, std::vector<aosi::Epoch> deps = {}) {
  return aosi::Snapshot{e, aosi::EpochSet(std::move(deps))};
}

/// Appends one record with explicit coordinates to the right brick in a
/// two-brick test fixture.
void AppendOne(Brick& brick, aosi::Epoch epoch, uint64_t region_off,
               uint64_t day_off, int64_t units, double revenue) {
  EncodedBatch batch(brick.schema());
  batch.num_rows = 1;
  batch.dim_offsets[0].push_back(region_off);
  batch.dim_offsets[1].push_back(day_off);
  batch.metric_ints[0].push_back(units);
  batch.metric_doubles[1].push_back(revenue);
  brick.AppendBatch(epoch, batch);
}

TEST(FilterClauseTest, MatchSemantics) {
  FilterClause eq{0, FilterClause::Op::kEq, {5}, 0, 0};
  EXPECT_TRUE(eq.Matches(5));
  EXPECT_FALSE(eq.Matches(4));

  FilterClause in{0, FilterClause::Op::kIn, {1, 3, 7}, 0, 0};
  EXPECT_TRUE(in.Matches(3));
  EXPECT_FALSE(in.Matches(2));

  FilterClause range{0, FilterClause::Op::kRange, {}, 10, 20};
  EXPECT_TRUE(range.Matches(10));
  EXPECT_TRUE(range.Matches(20));
  EXPECT_FALSE(range.Matches(9));
  EXPECT_FALSE(range.Matches(21));
}

TEST(FilterClauseTest, IntersectsAndCovers) {
  FilterClause range{0, FilterClause::Op::kRange, {}, 10, 20};
  EXPECT_TRUE(range.Intersects(15, 30));
  EXPECT_TRUE(range.Intersects(0, 10));
  EXPECT_FALSE(range.Intersects(21, 40));
  EXPECT_TRUE(range.Covers(12, 18));
  EXPECT_FALSE(range.Covers(12, 25));

  FilterClause eq{0, FilterClause::Op::kEq, {5}, 0, 0};
  EXPECT_TRUE(eq.Intersects(0, 10));
  EXPECT_FALSE(eq.Intersects(6, 10));
  EXPECT_TRUE(eq.Covers(5, 5));
  EXPECT_FALSE(eq.Covers(4, 5));

  FilterClause in{0, FilterClause::Op::kIn, {2, 3}, 0, 0};
  EXPECT_TRUE(in.Covers(2, 3));
  EXPECT_FALSE(in.Covers(1, 3));
}

TEST(AggStateTest, AccumulateAndFinalize) {
  AggState s;
  s.Accumulate(3);
  s.Accumulate(7);
  s.Accumulate(-2);
  EXPECT_DOUBLE_EQ(s.Finalize(AggSpec::Fn::kSum), 8.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggSpec::Fn::kCount), 3.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggSpec::Fn::kMin), -2.0);
  EXPECT_DOUBLE_EQ(s.Finalize(AggSpec::Fn::kMax), 7.0);
  EXPECT_NEAR(s.Finalize(AggSpec::Fn::kAvg), 8.0 / 3.0, 1e-12);
}

TEST(AggStateTest, MergeCombines) {
  AggState a, b;
  a.Accumulate(1);
  a.Accumulate(5);
  b.Accumulate(10);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Finalize(AggSpec::Fn::kSum), 16.0);
  EXPECT_DOUBLE_EQ(a.Finalize(AggSpec::Fn::kMax), 10.0);
  EXPECT_DOUBLE_EQ(a.Finalize(AggSpec::Fn::kCount), 3.0);
}

TEST(QueryResultTest, MergePreservesGroups) {
  QueryResult a(1), b(1);
  a.Accumulate({1}, 0, 10);
  b.Accumulate({1}, 0, 5);
  b.Accumulate({2}, 0, 7);
  a.Merge(b);
  EXPECT_EQ(a.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(a.Value({1}, 0, AggSpec::Fn::kSum), 15.0);
  EXPECT_DOUBLE_EQ(a.Value({2}, 0, AggSpec::Fn::kSum), 7.0);
  EXPECT_DOUBLE_EQ(a.Value({3}, 0, AggSpec::Fn::kSum), 0.0);
}

TEST(ScanBrickTest, UngroupedAggregation) {
  auto schema = MakeSchema();
  // Brick for region range [4,7], day range [8,15].
  Brick brick(schema, schema->BidFor({4, 8}).value());
  AppendOne(brick, 1, 0, 0, 10, 1.5);  // region 4, day 8
  AppendOne(brick, 1, 1, 2, 20, 2.5);  // region 5, day 10
  AppendOne(brick, 1, 3, 7, 30, 3.0);  // region 7, day 15

  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0},
            {AggSpec::Fn::kCount, 0},
            {AggSpec::Fn::kSum, 1}};
  QueryResult result(q.aggs.size());
  ScanBrick(brick, Snap(5), ScanMode::kSnapshotIsolation, q, &result);
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum), 60.0);
  EXPECT_DOUBLE_EQ(result.Single(1, AggSpec::Fn::kCount), 3.0);
  EXPECT_DOUBLE_EQ(result.Single(2, AggSpec::Fn::kSum), 7.0);
}

TEST(ScanBrickTest, FilterOnDimension) {
  auto schema = MakeSchema();
  Brick brick(schema, schema->BidFor({4, 8}).value());
  AppendOne(brick, 1, 0, 0, 10, 0);
  AppendOne(brick, 1, 1, 0, 20, 0);
  AppendOne(brick, 1, 1, 1, 40, 0);

  Query q;
  q.filters = {{0, FilterClause::Op::kEq, {5}, 0, 0}};  // region == 5
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  QueryResult result(1);
  ScanBrick(brick, Snap(1), ScanMode::kSnapshotIsolation, q, &result);
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum), 60.0);
}

TEST(ScanBrickTest, GroupByDimension) {
  auto schema = MakeSchema();
  Brick brick(schema, schema->BidFor({4, 8}).value());
  AppendOne(brick, 1, 0, 0, 1, 0);
  AppendOne(brick, 1, 0, 1, 2, 0);
  AppendOne(brick, 1, 2, 0, 4, 0);

  Query q;
  q.group_by = {0};  // by region
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  QueryResult result(1);
  ScanBrick(brick, Snap(1), ScanMode::kSnapshotIsolation, q, &result);
  EXPECT_EQ(result.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(result.Value({4}, 0, AggSpec::Fn::kSum), 3.0);
  EXPECT_DOUBLE_EQ(result.Value({6}, 0, AggSpec::Fn::kSum), 4.0);
}

TEST(ScanBrickTest, BrickPrunedByRange) {
  auto schema = MakeSchema();
  // Brick covers region [4,7]; filter wants region 0-3: prune.
  Brick brick(schema, schema->BidFor({4, 8}).value());
  AppendOne(brick, 1, 0, 0, 10, 0);
  Query q;
  q.filters = {{0, FilterClause::Op::kRange, {}, 0, 3}};
  q.aggs = {{AggSpec::Fn::kCount, 0}};
  EXPECT_FALSE(BrickIntersectsFilters(brick, q));
  QueryResult result(1);
  ScanBrick(brick, Snap(1), ScanMode::kSnapshotIsolation, q, &result);
  EXPECT_TRUE(result.empty());
}

TEST(ScanBrickTest, SnapshotHidesUncommittedAndFuture) {
  auto schema = MakeSchema();
  Brick brick(schema, schema->BidFor({4, 8}).value());
  AppendOne(brick, 1, 0, 0, 10, 0);
  AppendOne(brick, 2, 0, 0, 20, 0);  // pending for this reader
  AppendOne(brick, 5, 0, 0, 40, 0);  // future

  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  QueryResult si(1);
  ScanBrick(brick, Snap(3, {2}), ScanMode::kSnapshotIsolation, q, &si);
  EXPECT_DOUBLE_EQ(si.Single(0, AggSpec::Fn::kSum), 10.0);

  // RU sees all three regardless of snapshot.
  QueryResult ru(1);
  ScanBrick(brick, Snap(3, {2}), ScanMode::kReadUncommitted, q, &ru);
  EXPECT_DOUBLE_EQ(ru.Single(0, AggSpec::Fn::kSum), 70.0);
}

TEST(ScanBrickTest, DeleteVisibleToScan) {
  auto schema = MakeSchema();
  Brick brick(schema, schema->BidFor({4, 8}).value());
  AppendOne(brick, 1, 0, 0, 10, 0);
  brick.MarkDeleted(2);
  AppendOne(brick, 3, 0, 0, 5, 0);

  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  QueryResult r1(1);
  ScanBrick(brick, Snap(1), ScanMode::kSnapshotIsolation, q, &r1);
  EXPECT_DOUBLE_EQ(r1.Single(0, AggSpec::Fn::kSum), 10.0);
  QueryResult r3(1);
  ScanBrick(brick, Snap(3), ScanMode::kSnapshotIsolation, q, &r3);
  EXPECT_DOUBLE_EQ(r3.Single(0, AggSpec::Fn::kSum), 5.0);
}

TEST(ScanBrickTest, EmptyBrickNoGroups) {
  auto schema = MakeSchema();
  Brick brick(schema, 0);
  Query q;
  q.aggs = {{AggSpec::Fn::kCount, 0}};
  QueryResult result(1);
  ScanBrick(brick, Snap(9), ScanMode::kSnapshotIsolation, q, &result);
  EXPECT_TRUE(result.empty());
}

TEST(ScanBrickTest, MultiFilterConjunction) {
  auto schema = MakeSchema();
  Brick brick(schema, schema->BidFor({4, 8}).value());
  AppendOne(brick, 1, 0, 0, 1, 0);  // region 4, day 8
  AppendOne(brick, 1, 0, 3, 2, 0);  // region 4, day 11
  AppendOne(brick, 1, 1, 3, 4, 0);  // region 5, day 11

  Query q;
  q.filters = {{0, FilterClause::Op::kEq, {4}, 0, 0},
               {1, FilterClause::Op::kRange, {}, 10, 12}};
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  QueryResult result(1);
  ScanBrick(brick, Snap(1), ScanMode::kSnapshotIsolation, q, &result);
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum), 2.0);
}

}  // namespace
}  // namespace cubrick
