// Tests for the baseline MVCC store: snapshot isolation semantics, version
// chains, write-write conflicts, vacuum, and the 16-bytes-per-record
// overhead accounting the paper's Figures 6/7 compare against.

#include "mvcc/mvcc_store.h"

#include <gtest/gtest.h>

namespace cubrick::mvcc {
namespace {

TEST(MvccStoreTest, InsertInvisibleUntilCommit) {
  MvccStore store(1);
  MvccTxn writer = store.Begin();
  ASSERT_TRUE(store.Insert(&writer, {42}).ok());

  MvccTxn reader = store.Begin();
  EXPECT_EQ(store.ScanCount(reader.begin_ts), 0u);

  ASSERT_TRUE(store.Commit(&writer).ok());
  // Old snapshot still blind; a new one sees the row.
  EXPECT_EQ(store.ScanCount(reader.begin_ts), 0u);
  MvccTxn reader2 = store.Begin();
  EXPECT_EQ(store.ScanCount(reader2.begin_ts), 1u);
  EXPECT_EQ(store.ScanSum(reader2.begin_ts, 0), 42);
  ASSERT_TRUE(store.Commit(&reader).ok());
  ASSERT_TRUE(store.Commit(&reader2).ok());
}

TEST(MvccStoreTest, AbortedInsertNeverVisible) {
  MvccStore store(1);
  MvccTxn writer = store.Begin();
  ASSERT_TRUE(store.Insert(&writer, {7}).ok());
  ASSERT_TRUE(store.Abort(&writer).ok());
  MvccTxn reader = store.Begin();
  EXPECT_EQ(store.ScanCount(reader.begin_ts), 0u);
  ASSERT_TRUE(store.Commit(&reader).ok());
}

TEST(MvccStoreTest, DeleteVisibleOnlyAfterCommit) {
  MvccStore store(1);
  MvccTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {1}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());

  MvccTxn deleter = store.Begin();
  ASSERT_TRUE(store.Delete(&deleter, 0).ok());

  MvccTxn reader = store.Begin();
  EXPECT_EQ(store.ScanCount(reader.begin_ts), 1u);  // uncommitted delete

  ASSERT_TRUE(store.Commit(&deleter).ok());
  EXPECT_EQ(store.ScanCount(reader.begin_ts), 1u);  // snapshot stability
  MvccTxn reader2 = store.Begin();
  EXPECT_EQ(store.ScanCount(reader2.begin_ts), 0u);
  ASSERT_TRUE(store.Commit(&reader).ok());
  ASSERT_TRUE(store.Commit(&reader2).ok());
}

TEST(MvccStoreTest, WriteWriteConflictAborts) {
  MvccStore store(1);
  MvccTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {1}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());

  MvccTxn t1 = store.Begin();
  MvccTxn t2 = store.Begin();
  ASSERT_TRUE(store.Delete(&t1, 0).ok());
  // Second deleter conflicts while t1 is in flight.
  EXPECT_EQ(store.Delete(&t2, 0).code(), StatusCode::kAborted);
  ASSERT_TRUE(store.Commit(&t1).ok());
  ASSERT_TRUE(store.Abort(&t2).ok());
}

TEST(MvccStoreTest, FirstUpdaterWinsAfterCommitToo) {
  MvccStore store(1);
  MvccTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {1}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());

  MvccTxn t2 = store.Begin();  // snapshot before t1's delete commits
  MvccTxn t1 = store.Begin();
  ASSERT_TRUE(store.Delete(&t1, 0).ok());
  ASSERT_TRUE(store.Commit(&t1).ok());
  // t2 can still see row 0 but must not be able to delete it.
  EXPECT_EQ(store.Delete(&t2, 0).code(), StatusCode::kAborted);
  ASSERT_TRUE(store.Abort(&t2).ok());
}

TEST(MvccStoreTest, AbortedDeleteRestoresRow) {
  MvccStore store(1);
  MvccTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {5}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());

  MvccTxn t = store.Begin();
  ASSERT_TRUE(store.Delete(&t, 0).ok());
  ASSERT_TRUE(store.Abort(&t).ok());
  MvccTxn reader = store.Begin();
  EXPECT_EQ(store.ScanSum(reader.begin_ts, 0), 5);
  ASSERT_TRUE(store.Commit(&reader).ok());
}

TEST(MvccStoreTest, UpdateCreatesNewVersion) {
  MvccStore store(2);
  MvccTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {10, 100}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());

  MvccTxn old_reader = store.Begin();
  MvccTxn updater = store.Begin();
  uint64_t new_row = 0;
  ASSERT_TRUE(store.Update(&updater, 0, 1, 999, &new_row).ok());
  EXPECT_EQ(new_row, 1u);
  ASSERT_TRUE(store.Commit(&updater).ok());

  // Two physical versions now exist — the multiversion cost.
  EXPECT_EQ(store.num_rows(), 2u);
  // Old snapshot sees the old version, new snapshot the new one.
  EXPECT_EQ(store.ScanSum(old_reader.begin_ts, 1), 100);
  MvccTxn new_reader = store.Begin();
  EXPECT_EQ(store.ScanSum(new_reader.begin_ts, 1), 999);
  EXPECT_EQ(store.ScanSum(new_reader.begin_ts, 0), 10);  // untouched column
  ASSERT_TRUE(store.Commit(&old_reader).ok());
  ASSERT_TRUE(store.Commit(&new_reader).ok());
}

TEST(MvccStoreTest, OwnWritesVisibleToSelf) {
  MvccStore store(1);
  MvccTxn t = store.Begin();
  ASSERT_TRUE(store.Insert(&t, {1}).ok());
  // Own uncommitted insert is resolvable through the reader id.
  EXPECT_TRUE(store.IsVisible(0, t.begin_ts) == false);
  ASSERT_TRUE(store.Commit(&t).ok());
}

TEST(MvccStoreTest, VacuumDropsDeadVersions) {
  MvccStore store(1);
  MvccTxn setup = store.Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Insert(&setup, {i}).ok());
  }
  ASSERT_TRUE(store.Commit(&setup).ok());

  MvccTxn deleter = store.Begin();
  for (uint64_t row = 0; row < 5; ++row) {
    ASSERT_TRUE(store.Delete(&deleter, row).ok());
  }
  ASSERT_TRUE(store.Commit(&deleter).ok());

  EXPECT_EQ(store.num_rows(), 10u);
  MvccTxn probe = store.Begin();
  const Timestamp horizon = probe.begin_ts + 1;
  ASSERT_TRUE(store.Commit(&probe).ok());
  EXPECT_EQ(store.Vacuum(horizon), 5u);
  EXPECT_EQ(store.num_rows(), 5u);
  MvccTxn reader = store.Begin();
  EXPECT_EQ(store.ScanCount(reader.begin_ts), 5u);
  EXPECT_EQ(store.ScanSum(reader.begin_ts, 0), 5 + 6 + 7 + 8 + 9);
  ASSERT_TRUE(store.Commit(&reader).ok());
}

TEST(MvccStoreTest, VacuumKeepsVersionsAboveHorizon) {
  MvccStore store(1);
  MvccTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {1}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());
  MvccTxn deleter = store.Begin();
  ASSERT_TRUE(store.Delete(&deleter, 0).ok());
  ASSERT_TRUE(store.Commit(&deleter).ok());
  // Horizon below the delete commit: version must survive.
  EXPECT_EQ(store.Vacuum(deleter.begin_ts), 0u);
  EXPECT_EQ(store.num_rows(), 1u);
}

TEST(MvccStoreTest, OverheadIsSixteenBytesPerRecord) {
  MvccStore store(1);
  MvccTxn t = store.Begin();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store.Insert(&t, {i}).ok());
  }
  ASSERT_TRUE(store.Commit(&t).ok());
  EXPECT_EQ(store.TimestampOverhead(), 1000u * 16u);
  // For a single-column int64 dataset the overhead DOUBLES the footprint —
  // the paper's §II-A worst case ("can even double the memory
  // requirements").
  EXPECT_GE(store.TimestampOverhead(), 1000u * 8u * 2u);
}

TEST(MvccStoreTest, CommitOfInactiveTxnRejected) {
  MvccStore store(1);
  MvccTxn t = store.Begin();
  ASSERT_TRUE(store.Commit(&t).ok());
  EXPECT_EQ(store.Commit(&t).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Abort(&t).code(), StatusCode::kFailedPrecondition);
}

TEST(MvccStoreTest, DeleteOfInvisibleRowAborts) {
  MvccStore store(1);
  MvccTxn t1 = store.Begin();
  ASSERT_TRUE(store.Insert(&t1, {1}).ok());
  // t2 cannot delete a row whose insert hasn't committed.
  MvccTxn t2 = store.Begin();
  EXPECT_EQ(store.Delete(&t2, 0).code(), StatusCode::kAborted);
  ASSERT_TRUE(store.Commit(&t1).ok());
  ASSERT_TRUE(store.Abort(&t2).ok());
}

TEST(MvccStoreTest, OutOfRangeRowRejected) {
  MvccStore store(1);
  MvccTxn t = store.Begin();
  EXPECT_EQ(store.Delete(&t, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store.Update(&t, 5, 0, 1).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(store.Abort(&t).ok());
}

}  // namespace
}  // namespace cubrick::mvcc
