// Distributed-cluster tests: hash ring, Lamport piggybacking (Table IV at
// the message level), the §IV-C begin/commit flow, replication, failover
// reads, LSE gating, and the SI-but-not-serializable write-skew behavior
// (§IV-B).

#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace cubrick::cluster {
namespace {

ClusterOptions SmallCluster(uint32_t nodes, size_t replication = 1) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.shards_per_cube = 2;
  opts.threaded_shards = false;
  opts.replication_factor = replication;
  return opts;
}

Status MakeCube(Cluster& cluster) {
  return cluster.CreateCube(
      "metrics",
      {{"region", 64, 4, false}, {"kind", 8, 1, false}},
      {{"value", DataType::kInt64}});
}

std::vector<Record> Rows(std::initializer_list<std::array<int64_t, 3>> rows) {
  std::vector<Record> records;
  for (const auto& r : rows) records.push_back({r[0], r[1], r[2]});
  return records;
}

cubrick::Query SumQuery() {
  cubrick::Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  return q;
}

TEST(HashRingTest, DeterministicOwner) {
  HashRing ring;
  ring.AddNode(1);
  ring.AddNode(2);
  ring.AddNode(3);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(ring.NodeFor(key), ring.NodeFor(key));
  }
}

TEST(HashRingTest, CoversAllNodesReasonablyEvenly) {
  HashRing ring;
  for (uint32_t n = 1; n <= 4; ++n) ring.AddNode(n, 128);
  std::map<uint32_t, int> counts;
  for (uint64_t key = 0; key < 4000; ++key) {
    counts[ring.NodeFor(key)]++;
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [n, c] : counts) {
    EXPECT_GT(c, 400) << "node " << n << " badly underloaded";
    EXPECT_LT(c, 2200) << "node " << n << " badly overloaded";
  }
}

TEST(HashRingTest, ReplicaSetsAreDistinct) {
  HashRing ring;
  for (uint32_t n = 1; n <= 5; ++n) ring.AddNode(n);
  for (uint64_t key = 0; key < 200; ++key) {
    auto owners = ring.NodesFor(key, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_NE(owners[0], owners[1]);
    EXPECT_NE(owners[1], owners[2]);
    EXPECT_NE(owners[0], owners[2]);
    EXPECT_EQ(owners[0], ring.NodeFor(key));
  }
}

TEST(HashRingTest, RemovalOnlyMovesAffectedKeys) {
  HashRing ring;
  for (uint32_t n = 1; n <= 4; ++n) ring.AddNode(n, 64);
  std::map<uint64_t, uint32_t> before;
  for (uint64_t key = 0; key < 1000; ++key) before[key] = ring.NodeFor(key);
  ring.RemoveNode(3);
  for (uint64_t key = 0; key < 1000; ++key) {
    const uint32_t now = ring.NodeFor(key);
    EXPECT_NE(now, 3u);
    if (before[key] != 3) {
      EXPECT_EQ(now, before[key]) << "key " << key
                                  << " moved although its owner survived";
    }
  }
}

TEST(HashRingTest, ReplicaCountCappedByNodeCount) {
  HashRing ring;
  ring.AddNode(1);
  ring.AddNode(2);
  EXPECT_EQ(ring.NodesFor(7, 5).size(), 2u);
}

TEST(ClusterTest, DistributedAppendAndQuery) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());

  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cluster
                  .Append(&*txn, "metrics",
                          Rows({{0, 0, 10}, {17, 1, 20}, {43, 2, 30},
                                {60, 3, 40}}))
                  .ok());
  ASSERT_TRUE(cluster.Commit(&*txn).ok());

  auto result = cluster.QueryOnce(2, "metrics", SumQuery());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 100.0);
  EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount), 4.0);
}

TEST(ClusterTest, EpochsNeverCollideAcrossCoordinators) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  aosi::EpochSet seen;
  for (int round = 0; round < 10; ++round) {
    for (uint32_t c = 1; c <= 3; ++c) {
      auto txn = cluster.BeginReadWrite(c);
      ASSERT_TRUE(txn.ok());
      EXPECT_FALSE(seen.Contains(txn->txn.epoch));
      seen.Insert(txn->txn.epoch);
      ASSERT_TRUE(cluster.Commit(&*txn).ok());
    }
  }
}

TEST(ClusterTest, TableIV_BeginBroadcastAdvancesAllClocks) {
  // After T starts on node 1, every node's EC exceeds T's epoch: a
  // transaction yet to be initialized anywhere is guaranteed to be newer
  // (the 5th category of §IV-C).
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  for (uint32_t n = 1; n <= 3; ++n) {
    EXPECT_GT(cluster.node(n).txns().EC(), txn->txn.epoch);
  }
  ASSERT_TRUE(cluster.Commit(&*txn).ok());
}

TEST(ClusterTest, PendingRemoteTransactionEntersDeps) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto t1 = cluster.BeginReadWrite(2);
  ASSERT_TRUE(t1.ok());
  auto t2 = cluster.BeginReadWrite(3);  // t1 pending on node 2
  ASSERT_TRUE(t2.ok());
  if (t1->txn.epoch < t2->txn.epoch) {
    EXPECT_TRUE(t2->txn.deps.Contains(t1->txn.epoch));
  }
  ASSERT_TRUE(cluster.Commit(&*t1).ok());
  ASSERT_TRUE(cluster.Commit(&*t2).ok());
}

TEST(ClusterTest, UncommittedWritesInvisibleEverywhere) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto writer = cluster.BeginReadWrite(1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      cluster.Append(&*writer, "metrics", Rows({{5, 0, 100}})).ok());
  for (uint32_t n = 1; n <= 3; ++n) {
    auto result = cluster.QueryOnce(n, "metrics", SumQuery());
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 0.0)
        << "node " << n << " leaked uncommitted data";
  }
  ASSERT_TRUE(cluster.Commit(&*writer).ok());
  for (uint32_t n = 1; n <= 3; ++n) {
    auto result = cluster.QueryOnce(n, "metrics", SumQuery());
    EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 100.0);
  }
}

TEST(ClusterTest, ReadYourWritesWithinTransaction) {
  // §IV-C: LCE is delayed, so read-your-writes holds only inside the same
  // transaction — which must still see its own appends.
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cluster.Append(&*txn, "metrics", Rows({{1, 0, 7}})).ok());
  auto result = cluster.Query(&*txn, "metrics", SumQuery());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 7.0);
  ASSERT_TRUE(cluster.Commit(&*txn).ok());
}

TEST(ClusterTest, SnapshotStableDespiteConcurrentCommit) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto t1 = cluster.BeginReadWrite(1);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(cluster.Append(&*t1, "metrics", Rows({{1, 0, 5}})).ok());
  ASSERT_TRUE(cluster.Commit(&*t1).ok());

  // Reader pinned at LCE (= t1).
  auto reader = cluster.BeginReadOnly(2);
  auto t2 = cluster.BeginReadWrite(3);
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(cluster.Append(&*t2, "metrics", Rows({{1, 0, 90}})).ok());
  ASSERT_TRUE(cluster.Commit(&*t2).ok());

  auto result = cluster.Query(&reader, "metrics", SumQuery());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 5.0);
  cluster.EndReadOnly(&reader);
}

TEST(ClusterTest, WriteSkewAllowedUnderSI) {
  // §IV-B: two concurrent transactions where neither sees the other violate
  // serializability but not SI. Both commit; a later reader sees both.
  Cluster cluster(SmallCluster(2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto tk = cluster.BeginReadWrite(1);
  auto tl = cluster.BeginReadWrite(2);
  ASSERT_TRUE(tk.ok() && tl.ok());
  ASSERT_TRUE(cluster.Append(&*tk, "metrics", Rows({{1, 0, 1}})).ok());
  ASSERT_TRUE(cluster.Append(&*tl, "metrics", Rows({{1, 0, 2}})).ok());

  // Neither sees the other (k < l: l has k in deps; k cannot see l by
  // timestamp order).
  auto k_view = cluster.Query(&*tk, "metrics", SumQuery());
  auto l_view = cluster.Query(&*tl, "metrics", SumQuery());
  const double k_sum = k_view->Single(0, AggSpec::Fn::kSum);
  const double l_sum = l_view->Single(0, AggSpec::Fn::kSum);
  EXPECT_DOUBLE_EQ(k_sum + l_sum, 3.0);  // each sees only its own write

  // No rollback is ever needed: both commits succeed.
  ASSERT_TRUE(cluster.Commit(&*tk).ok());
  ASSERT_TRUE(cluster.Commit(&*tl).ok());
  auto final = cluster.QueryOnce(1, "metrics", SumQuery());
  EXPECT_DOUBLE_EQ(final->Single(0, AggSpec::Fn::kSum), 3.0);
}

TEST(ClusterTest, LceDelaysVisibilityUntilOlderPendingFinish) {
  Cluster cluster(SmallCluster(2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto t_old = cluster.BeginReadWrite(1);
  auto t_new = cluster.BeginReadWrite(2);
  ASSERT_TRUE(t_old.ok() && t_new.ok());
  ASSERT_TRUE(t_old->txn.epoch < t_new->txn.epoch);
  ASSERT_TRUE(cluster.Append(&*t_new, "metrics", Rows({{1, 0, 9}})).ok());
  ASSERT_TRUE(cluster.Commit(&*t_new).ok());

  // t_new committed, but t_old (older) still pending: no node's LCE may
  // reach t_new, so RO queries see nothing.
  auto blind = cluster.QueryOnce(2, "metrics", SumQuery());
  EXPECT_DOUBLE_EQ(blind->Single(0, AggSpec::Fn::kSum), 0.0);

  ASSERT_TRUE(cluster.Commit(&*t_old).ok());
  auto sighted = cluster.QueryOnce(2, "metrics", SumQuery());
  EXPECT_DOUBLE_EQ(sighted->Single(0, AggSpec::Fn::kSum), 9.0);
}

TEST(ClusterTest, DistributedRollbackRemovesData) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cluster
                  .Append(&*txn, "metrics",
                          Rows({{0, 0, 1}, {20, 1, 2}, {40, 2, 4}}))
                  .ok());
  ASSERT_TRUE(cluster.Rollback(&*txn).ok());
  EXPECT_EQ(cluster.TotalRecords(), 0u);
  auto ru = cluster.QueryOnce(1, "metrics", SumQuery(),
                              ScanMode::kReadUncommitted);
  EXPECT_DOUBLE_EQ(ru->Single(0, AggSpec::Fn::kSum), 0.0);
}

TEST(ClusterTest, DistributedDeleteIsPartitionGranular) {
  Cluster cluster(SmallCluster(2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto load = cluster.BeginReadWrite(1);
  ASSERT_TRUE(
      cluster.Append(&*load, "metrics", Rows({{0, 0, 1}, {1, 0, 2}})).ok());
  ASSERT_TRUE(cluster.Commit(&*load).ok());

  auto bad = cluster.BeginReadWrite(1);
  // region == 0 covers half of the region range [0,3]: rejected.
  std::vector<FilterClause> sub = {{0, FilterClause::Op::kEq, {0}, 0, 0}};
  EXPECT_EQ(cluster.DeleteWhere(&*bad, "metrics", sub).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(cluster.Rollback(&*bad).ok());

  auto good = cluster.BeginReadWrite(1);
  std::vector<FilterClause> whole = {
      {0, FilterClause::Op::kRange, {}, 0, 3}};
  ASSERT_TRUE(cluster.DeleteWhere(&*good, "metrics", whole).ok());
  ASSERT_TRUE(cluster.Commit(&*good).ok());
  auto result = cluster.QueryOnce(2, "metrics", SumQuery());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 0.0);
}

TEST(ClusterTest, ReplicationStoresCopies) {
  Cluster cluster(SmallCluster(3, /*replication=*/2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(
      cluster.Append(&*txn, "metrics", Rows({{0, 0, 10}, {30, 1, 20}})).ok());
  ASSERT_TRUE(cluster.Commit(&*txn).ok());
  // Two records, two copies each.
  EXPECT_EQ(cluster.TotalRecords(), 4u);
  // But queries must not double count.
  auto result = cluster.QueryOnce(1, "metrics", SumQuery());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 30.0);
  EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount), 2.0);
}

TEST(ClusterTest, FailoverReadsFromReplica) {
  Cluster cluster(SmallCluster(3, /*replication=*/2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto txn = cluster.BeginReadWrite(1);
  std::vector<Record> rows;
  for (int64_t r = 0; r < 64; r += 4) rows.push_back({r, 0, 1});
  ASSERT_TRUE(cluster.Append(&*txn, "metrics", rows).ok());
  ASSERT_TRUE(cluster.Commit(&*txn).ok());

  auto before = cluster.QueryOnce(1, "metrics", SumQuery());
  EXPECT_DOUBLE_EQ(before->Single(1, AggSpec::Fn::kCount), 16.0);

  // Take node 2 down; replicas on the surviving nodes answer for it.
  ASSERT_TRUE(cluster.SetNodeOnline(2, false).ok());
  auto after = cluster.QueryOnce(1, "metrics", SumQuery());
  EXPECT_DOUBLE_EQ(after->Single(1, AggSpec::Fn::kCount), 16.0);
  ASSERT_TRUE(cluster.SetNodeOnline(2, true).ok());
}

TEST(ClusterTest, OfflineNodeBlocksRwBegin) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  ASSERT_TRUE(cluster.SetNodeOnline(3, false).ok());
  auto txn = cluster.BeginReadWrite(1);
  EXPECT_EQ(txn.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(cluster.SetNodeOnline(3, true).ok());
}

TEST(ClusterTest, LseBlockedWhileReplicaOffline) {
  Cluster cluster(SmallCluster(3, /*replication=*/2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto t1 = cluster.BeginReadWrite(1);
  ASSERT_TRUE(cluster.Append(&*t1, "metrics", Rows({{0, 0, 1}})).ok());
  ASSERT_TRUE(cluster.Commit(&*t1).ok());
  EXPECT_GT(cluster.AdvanceClusterLSE(), 0u);

  ASSERT_TRUE(cluster.SetNodeOnline(2, false).ok());
  const aosi::Epoch stuck = cluster.AdvanceClusterLSE();
  // Bring data in while a replica is down (via a txn begun before the
  // outage is impossible here; instead verify LSE simply refuses to move).
  EXPECT_EQ(cluster.AdvanceClusterLSE(), stuck);
  ASSERT_TRUE(cluster.SetNodeOnline(2, true).ok());
}

TEST(ClusterTest, MissedCommitsRedeliveredOnRevival) {
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(cluster.Append(&*txn, "metrics", Rows({{5, 0, 42}})).ok());
  // Node 3 goes dark before the commit broadcast.
  ASSERT_TRUE(cluster.SetNodeOnline(3, false).ok());
  ASSERT_TRUE(cluster.Commit(&*txn).ok());
  // Node 3's LCE is stuck...
  EXPECT_LT(cluster.node(3).txns().LCE(), txn->txn.epoch);
  // ...until revival redelivers the finish message.
  ASSERT_TRUE(cluster.SetNodeOnline(3, true).ok());
  EXPECT_GE(cluster.node(3).txns().LCE(), txn->txn.epoch);
  auto result = cluster.QueryOnce(3, "metrics", SumQuery());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 42.0);
}

TEST(ClusterTest, PurgeAcrossClusterAppliesDeletes) {
  Cluster cluster(SmallCluster(2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  auto load = cluster.BeginReadWrite(1);
  ASSERT_TRUE(cluster
                  .Append(&*load, "metrics",
                          Rows({{0, 0, 1}, {20, 1, 2}, {40, 2, 4}}))
                  .ok());
  ASSERT_TRUE(cluster.Commit(&*load).ok());
  auto del = cluster.BeginReadWrite(2);
  ASSERT_TRUE(cluster.DeleteWhere(&*del, "metrics", {}).ok());
  ASSERT_TRUE(cluster.Commit(&*del).ok());
  // Deletes only become purgeable once LSE passes them ("applying deletes
  // *older* than LSE"); a later committed transaction moves LCE forward.
  auto bump = cluster.BeginReadWrite(1);
  ASSERT_TRUE(bump.ok());
  ASSERT_TRUE(cluster.Commit(&*bump).ok());

  EXPECT_GT(cluster.AdvanceClusterLSE(), del->txn.epoch);
  PurgeStats stats = cluster.PurgeAll();
  EXPECT_GT(stats.records_removed, 0u);
  EXPECT_EQ(cluster.TotalRecords(), 0u);
}

TEST(ClusterTest, ImplicitRoQueriesNeedNoCoordination) {
  // RO transactions run on LCE with empty deps: no begin broadcast. We
  // can't observe message counts directly, but deps must be empty.
  Cluster cluster(SmallCluster(3));
  ASSERT_TRUE(MakeCube(cluster).ok());
  DistTxn ro = cluster.BeginReadOnly(2);
  EXPECT_TRUE(ro.txn.deps.empty());
  EXPECT_TRUE(ro.txn.read_only());
  cluster.EndReadOnly(&ro);
}

}  // namespace
}  // namespace cubrick::cluster
