// ThreadPool / TaskGroup tests: submission, work stealing, caller
// participation in Wait(), and nested fan-out (the shard-blocks-in-op
// pattern the morsel-parallel executor relies on).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace cubrick {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    // relaxed: independent counter; TaskGroup::Wait orders the final read
    group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotentAndDestructorSafe) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    TaskGroup group(&pool);
    // relaxed: single increment observed after Wait
    group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    group.Wait();
    group.Wait();  // second Wait must return immediately
  }  // destructor runs Wait() again
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 1);
}

TEST(ThreadPoolTest, CallerParticipatesViaTryRunOne) {
  // A pool with zero worker capacity consumed: even if every worker is
  // blocked, the caller can drain its own group. Simulate by submitting
  // from the only thread that ever runs tasks.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    // relaxed: independent counter; TaskGroup::Wait orders the final read
    group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // Drain some tasks on the calling thread before blocking.
  while (pool.TryRunOne()) {
  }
  group.Wait();
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 8);
}

TEST(ThreadPoolTest, NestedFanOutDoesNotDeadlock) {
  // A task running on a pool worker opens its own TaskGroup on the same
  // pool — the morsel executor's shape when a shard thread fans out. Wait()
  // lends the blocked thread back to the pool, so this terminates even
  // when tasks outnumber workers.
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.Run([&pool, &leaf] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j) {
        // relaxed: independent counter; Wait orders the final read
        inner.Run([&leaf] { leaf.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaf.load(std::memory_order_relaxed), 16);
}

TEST(ThreadPoolTest, ManyGroupsInterleave) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::unique_ptr<TaskGroup>> groups;
  for (int g = 0; g < 8; ++g) {
    groups.push_back(std::make_unique<TaskGroup>(&pool));
    for (int i = 0; i < 25; ++i) {
      // relaxed: independent counter; Wait orders the final read
      groups.back()->Run(
          [&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  for (auto& g : groups) g->Wait();
  EXPECT_EQ(total.load(std::memory_order_relaxed), 200);
}

TEST(ThreadPoolTest, GlobalPoolIsSingletonWithThreads) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  std::atomic<int> ran{0};
  TaskGroup group(&a);
  // relaxed: single increment observed after Wait
  group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  group.Wait();
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 1);
}

TEST(ThreadPoolTest, TasksRunOnWorkersWhenCallerSleeps) {
  // Without the caller draining, workers alone must finish the group —
  // guards against lost wakeups in Submit's notify path.
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    TaskGroup group(&pool);
    for (int i = 0; i < 4; ++i) {
      // relaxed: independent counter; Wait orders the final read
      group.Run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    ASSERT_EQ(ran.load(std::memory_order_relaxed), 4);
  }
}

}  // namespace
}  // namespace cubrick
