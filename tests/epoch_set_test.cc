// EpochSet and Snapshot unit tests.

#include "aosi/epoch.h"

#include <gtest/gtest.h>

#include "aosi/txn.h"

namespace cubrick::aosi {
namespace {

TEST(EpochSetTest, InsertKeepsSortedUnique) {
  EpochSet set;
  set.Insert(5);
  set.Insert(1);
  set.Insert(9);
  set.Insert(5);  // duplicate ignored
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.epochs(), (std::vector<Epoch>{1, 5, 9}));
  EXPECT_EQ(set.Min(), 1u);
  EXPECT_EQ(set.Max(), 9u);
}

TEST(EpochSetTest, ConstructorNormalizes) {
  EpochSet set({7, 3, 7, 1});
  EXPECT_EQ(set.epochs(), (std::vector<Epoch>{1, 3, 7}));
}

TEST(EpochSetTest, ContainsBinarySearch) {
  EpochSet set({2, 4, 6});
  EXPECT_TRUE(set.Contains(4));
  EXPECT_FALSE(set.Contains(3));
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.Contains(7));
}

TEST(EpochSetTest, EraseReportsPresence) {
  EpochSet set({1, 2, 3});
  EXPECT_TRUE(set.Erase(2));
  EXPECT_FALSE(set.Erase(2));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.Contains(2));
}

TEST(EpochSetTest, UnionMerges) {
  EpochSet a({1, 3});
  EpochSet b({2, 3, 4});
  a.UnionWith(b);
  EXPECT_EQ(a.epochs(), (std::vector<Epoch>{1, 2, 3, 4}));
}

TEST(EpochSetTest, EmptySetMinMax) {
  EpochSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.Min(), kNoEpoch);
  EXPECT_EQ(set.Max(), kNoEpoch);
}

TEST(EpochSetTest, ToStringRendering) {
  EXPECT_EQ(EpochSet().ToString(), "{}");
  EXPECT_EQ(EpochSet({3, 1}).ToString(), "{1, 3}");
}

TEST(EpochSetTest, RangeForIteration) {
  EpochSet set({5, 1, 3});
  std::vector<Epoch> seen;
  for (Epoch e : set) seen.push_back(e);
  EXPECT_EQ(seen, (std::vector<Epoch>{1, 3, 5}));
}

TEST(SnapshotTest, SeesTimestampOrderAndDeps) {
  Snapshot snap{10, EpochSet({4, 7})};
  EXPECT_TRUE(snap.Sees(1));
  EXPECT_TRUE(snap.Sees(10));   // own epoch
  EXPECT_FALSE(snap.Sees(11));  // future
  EXPECT_FALSE(snap.Sees(4));   // pending at begin
  EXPECT_FALSE(snap.Sees(7));
  EXPECT_TRUE(snap.Sees(5));
}

TEST(SnapshotTest, EpochZeroSeesNothing) {
  Snapshot snap{kNoEpoch, {}};
  EXPECT_FALSE(snap.Sees(1));
}

TEST(TxnHorizonTest, HorizonIsMinOfEpochAndDeps) {
  Txn txn;
  txn.epoch = 10;
  EXPECT_EQ(txn.Horizon(), 10u);
  txn.deps = EpochSet({4, 7});
  EXPECT_EQ(txn.Horizon(), 3u);
  txn.deps = EpochSet({12});  // dep above own epoch (cannot happen for RW,
                              // but Horizon must still be sane)
  EXPECT_EQ(txn.Horizon(), 10u);
}

}  // namespace
}  // namespace cubrick::aosi
