// Persistence and crash-recovery tests (paper §III-D): incremental flush
// rounds, manifest atomicity, recovery up to the last complete flush,
// partial-flush truncation, and dictionary round-trips.

#include "persist/flush_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cubrick/database.h"

namespace cubrick {
namespace {

namespace fs = std::filesystem;

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cubrick_persist_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DatabaseOptions Options() {
    DatabaseOptions opts;
    opts.data_dir = dir_.string();
    return opts;
  }

  static constexpr char kDdl[] =
      "CREATE CUBE sales (region string CARDINALITY 8 RANGE 2, "
      "day int CARDINALITY 31 RANGE 31, units int, revenue double)";

  cubrick::Query CountQuery() {
    cubrick::Query q;
    q.aggs = {{AggSpec::Fn::kCount, 0},
              {AggSpec::Fn::kSum, 0},
              {AggSpec::Fn::kSum, 1}};
    return q;
  }

  fs::path dir_;
};

TEST_F(PersistTest, CheckpointAndRecoverRoundTrip) {
  {
    Database db(Options());
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    ASSERT_TRUE(db.Load("sales",
                        {{"US", 1, 10, 1.5},
                         {"BR", 2, 20, 2.5},
                         {"US", 3, 40, 4.0}})
                    .ok());
    auto lse = db.Checkpoint();
    ASSERT_TRUE(lse.ok()) << lse.status().ToString();
    EXPECT_GT(*lse, 0u);
  }
  // "Crash": the first Database is gone; a fresh one recovers from disk.
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.TotalRecords(), 3u);
  auto result = db.Query("sales", CountQuery());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kCount), 3.0);
  EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kSum), 70.0);
  EXPECT_DOUBLE_EQ(result->Single(2, AggSpec::Fn::kSum), 8.0);
  // Dictionaries recovered: string filters still resolve.
  auto filter = db.EqFilter("sales", "region", "US");
  ASSERT_TRUE(filter.ok());
  cubrick::Query q = CountQuery();
  q.filters = {*filter};
  EXPECT_DOUBLE_EQ(db.Query("sales", q)->Single(0, AggSpec::Fn::kCount),
                   2.0);
}

TEST_F(PersistTest, IncrementalRoundsOnlyWriteNewEpochs) {
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("sales", {{"US", 1, 1, 0.0}}).ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.Load("sales", {{"US", 2, 2, 0.0}}).ok());
  ASSERT_TRUE(db.Checkpoint().ok());

  persist::FlushManager probe(dir_.string(), "sales");
  EXPECT_EQ(probe.ManifestRounds(), 2u);
  // Recover and verify both rounds' data are present exactly once.
  Database db2(Options());
  ASSERT_TRUE(db2.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db2.Recover().ok());
  EXPECT_EQ(db2.TotalRecords(), 2u);
  EXPECT_DOUBLE_EQ(db2.Query("sales", CountQuery())
                       ->Single(1, AggSpec::Fn::kSum),
                   3.0);
}

TEST_F(PersistTest, UnflushedTailIsLostExactlyOnce) {
  {
    Database db(Options());
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    ASSERT_TRUE(db.Load("sales", {{"US", 1, 1, 0.0}}).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
    // This load happens after the checkpoint and is never flushed.
    ASSERT_TRUE(db.Load("sales", {{"BR", 2, 100, 0.0}}).ok());
  }
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.TotalRecords(), 1u);
  EXPECT_DOUBLE_EQ(db.Query("sales", CountQuery())
                       ->Single(1, AggSpec::Fn::kSum),
                   1.0);
}

TEST_F(PersistTest, DeleteMarkersSurviveRecovery) {
  {
    Database db(Options());
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    ASSERT_TRUE(db.Load("sales", {{"US", 1, 1, 0.0}}).ok());
    ASSERT_TRUE(db.DeletePartitions("sales", {}).ok());
    ASSERT_TRUE(db.Load("sales", {{"BR", 2, 7, 0.0}}).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  // The delete hides the first record from post-recovery readers.
  auto result = db.Query("sales", CountQuery());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kCount), 1.0);
  EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kSum), 7.0);
}

TEST_F(PersistTest, PartialSegmentBeyondManifestIgnored) {
  {
    Database db(Options());
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    ASSERT_TRUE(db.Load("sales", {{"US", 1, 1, 0.0}}).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  // Simulate a crash mid-flush: a trailing segment exists but the manifest
  // was never updated.
  std::ofstream garbage(dir_ / "sales.seg.2", std::ios::binary);
  garbage << "partial write before crash";
  garbage.close();

  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.TotalRecords(), 1u);
}

TEST_F(PersistTest, RecoveryRestoresCounters) {
  aosi::Epoch flushed_lse = 0;
  {
    Database db(Options());
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    ASSERT_TRUE(db.Load("sales", {{"US", 1, 1, 0.0}}).ok());
    ASSERT_TRUE(db.Load("sales", {{"US", 2, 2, 0.0}}).ok());
    auto lse = db.Checkpoint();
    ASSERT_TRUE(lse.ok());
    flushed_lse = *lse;
  }
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.txns().LCE(), flushed_lse);
  EXPECT_EQ(db.txns().LSE(), flushed_lse);
  EXPECT_GT(db.txns().EC(), flushed_lse);
  // New transactions continue with unique epochs.
  ASSERT_TRUE(db.Load("sales", {{"BR", 3, 4, 0.0}}).ok());
  EXPECT_DOUBLE_EQ(db.Query("sales", CountQuery())
                       ->Single(1, AggSpec::Fn::kSum),
                   7.0);
}

TEST_F(PersistTest, MultiCubeCrashConsistency) {
  constexpr char kOther[] =
      "CREATE CUBE other (k int CARDINALITY 4, v int)";
  {
    Database db(Options());
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    ASSERT_TRUE(db.ExecuteDdl(kOther).ok());
    ASSERT_TRUE(db.Load("sales", {{"US", 1, 1, 0.0}}).ok());
    ASSERT_TRUE(db.Load("other", {{0, 5}}).ok());
    ASSERT_TRUE(db.Checkpoint().ok());
    ASSERT_TRUE(db.Load("sales", {{"BR", 2, 50, 0.0}}).ok());
    ASSERT_TRUE(db.Load("other", {{1, 50}}).ok());
    // Simulate a crash that flushed only 'other' in round 2: flush it
    // manually via its manager.
    persist::FlushManager partial(dir_.string(), "other");
    auto stats = partial.FlushRound(db.FindTable("other"), db.txns().LSE(),
                                    db.txns().LCE());
    ASSERT_TRUE(stats.ok());
  }
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.ExecuteDdl(kOther).ok());
  ASSERT_TRUE(db.Recover().ok());
  // 'other' had more rounds on disk, but the cluster-consistent snapshot is
  // the minimum LSE: the half-flushed round is truncated.
  cubrick::Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  EXPECT_DOUBLE_EQ(db.Query("other", q)->Single(0, AggSpec::Fn::kSum), 5.0);
  EXPECT_EQ(db.TotalRecords(), 2u);
}

TEST_F(PersistTest, ClampedLseDoesNotDuplicateFlushedData) {
  // Regression: when an active reader pins LSE below what a checkpoint
  // flushed, the next checkpoint must resume from the manifest — not from
  // LSE — or recovery would see the overlap twice.
  {
    Database db(Options());
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    ASSERT_TRUE(db.Load("sales", {{"US", 1, 1, 0.0}}).ok());  // epoch 1
    // A reader pinned at epoch 1 will clamp LSE below later flushes.
    aosi::Txn reader = db.BeginReadOnly();
    ASSERT_TRUE(db.Load("sales", {{"BR", 2, 2, 0.0}}).ok());  // epoch 2
    auto lse1 = db.Checkpoint();  // flushes (0,2]; LSE clamps to 1
    ASSERT_TRUE(lse1.ok());
    EXPECT_EQ(*lse1, 1u);
    ASSERT_TRUE(db.Load("sales", {{"DE", 3, 4, 0.0}}).ok());  // epoch 3
    // Second checkpoint must resume from the manifest (2), not LSE (1):
    // re-flushing epoch 2 would duplicate BR on recovery.
    ASSERT_TRUE(db.Checkpoint().ok());
    db.txns().EndReadOnly(reader);
  }
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.TotalRecords(), 3u);
  EXPECT_DOUBLE_EQ(db.Query("sales", CountQuery())
                       ->Single(1, AggSpec::Fn::kSum),
                   7.0);
}

TEST_F(PersistTest, CheckpointWithoutDataDirFails) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  EXPECT_EQ(db.Checkpoint().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Recover().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PersistTest, EmptyDirRecoversToEmpty) {
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.TotalRecords(), 0u);
  EXPECT_EQ(db.txns().LCE(), 0u);
}

TEST_F(PersistTest, CheckpointSkipsWhenNothingNew) {
  Database db(Options());
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("sales", {{"US", 1, 1, 0.0}}).ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  persist::FlushManager probe(dir_.string(), "sales");
  const uint64_t rounds = probe.ManifestRounds();
  // No new commits: a second checkpoint must not add a round.
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(probe.ManifestRounds(), rounds);
}

}  // namespace
}  // namespace cubrick
