// Tier-1 regression coverage driven by the SI stress harness (src/check/).
//
// The full seed sweeps run as the dedicated ctest targets check_si_single /
// check_si_cluster; here a handful of fixed seeds run inside the normal
// test binary so plain `ctest` exercises the oracle comparison end to end,
// plus a deterministic regression for the dep-blocked LCE advance
// (TxnManager::Commit racing NoteRemoteFinish/NoteRemoteDeps).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "aosi/txn_manager.h"
#include "check/stress.h"

namespace cubrick {
namespace {

std::string Failures(const check::StressReport& report) {
  std::string all;
  for (const auto& f : report.failures) all += f + "\n";
  return all;
}

TEST(CheckStressTest, SingleNodeFixedSeeds) {
  for (uint64_t seed : {7ULL, 12ULL, 25ULL}) {
    check::StressOptions opt = check::MakeSeedConfig(seed, /*cluster=*/false);
    opt.ops_per_thread = 30;
    const check::StressReport report = check::RunSingleNodeStress(opt);
    EXPECT_TRUE(report.ok()) << Failures(report);
    EXPECT_GT(report.commits, 0u) << "seed " << seed << " did no work";
  }
}

TEST(CheckStressTest, ClusterFixedSeeds) {
  for (uint64_t seed : {2ULL, 5ULL}) {
    check::StressOptions opt = check::MakeSeedConfig(seed, /*cluster=*/true);
    opt.ops_per_thread = 20;
    const check::StressReport report = check::RunClusterStress(opt);
    EXPECT_TRUE(report.ok()) << Failures(report);
    EXPECT_GT(report.queries + report.ryw_queries, 0u);
  }
}

// Seed 2 with this configuration was the first seed to expose the
// cluster-wide LSE/purge horizon bug (an open transaction's deps-excluded
// delete was destructively applied by purge on a non-coordinator node) and
// the begin-broadcast commit race; keep it pinned as a regression.
TEST(CheckStressTest, ClusterRegressionSeed2) {
  check::StressOptions opt = check::MakeSeedConfig(2, /*cluster=*/true);
  opt.ops_per_thread = 25;
  const check::StressReport report = check::RunClusterStress(opt);
  EXPECT_TRUE(report.ok()) << Failures(report);
}

// Deterministic interleaving of the dep-blocked LCE walk (txn_manager.h):
// a remote transaction finishing out of order must not drag LCE past its
// unfinished dependencies.
TEST(TxnRemoteFinishTest, DepBlockedLceAdvance) {
  aosi::TxnManager mgr(1, 2);
  const aosi::Txn local = mgr.BeginReadWrite();  // epoch 1 (node 1 of 2)
  ASSERT_EQ(local.epoch, 1u);

  // Remote epoch 2 begins (sees 1 pending), then commits first.
  mgr.NoteRemoteBegin(2);
  mgr.NoteRemoteDeps(2, aosi::EpochSet({1}));
  mgr.NoteRemoteFinish(2, /*committed=*/true);

  // 2 is finished but dep-blocked on 1: LCE must not move.
  EXPECT_EQ(mgr.LCE(), 0u);

  // Local commit releases the block; LCE jumps over both.
  ASSERT_TRUE(mgr.Commit(local).ok());
  EXPECT_EQ(mgr.LCE(), 2u);
}

// Hammer Commit against concurrent NoteRemoteFinish/NoteRemoteDeps from
// another thread and check the terminal state. Interesting under
// CUBRICK_SANITIZE=thread, where the manager's locking is race-checked.
TEST(TxnRemoteFinishTest, ConcurrentRemoteFinishes) {
  for (int round = 0; round < 20; ++round) {
    aosi::TxnManager mgr(1, 2);
    std::vector<aosi::Txn> locals;
    for (int i = 0; i < 8; ++i) locals.push_back(mgr.BeginReadWrite());

    std::thread remote([&mgr, &locals] {
      // Remote epochs 2, 4, ..., 16 each depend on the local transaction
      // begun before them; finish them out of order (newest first).
      for (int i = 7; i >= 0; --i) {
        const aosi::Epoch e = 2 * static_cast<aosi::Epoch>(i) + 2;
        mgr.NoteRemoteBegin(e);
        mgr.NoteRemoteDeps(e, aosi::EpochSet({locals[i].epoch}));
        mgr.NoteRemoteFinish(e, /*committed=*/true);
      }
    });
    for (auto& txn : locals) {
      ASSERT_TRUE(mgr.Commit(txn).ok());
    }
    remote.join();

    // Every transaction finished and no dependency remains: LCE must have
    // walked all the way through local and remote epochs.
    EXPECT_EQ(mgr.LCE(), 16u);
    EXPECT_GT(mgr.EC(), mgr.LCE());
    EXPECT_GE(mgr.LCE(), mgr.LSE());
  }
}

}  // namespace
}  // namespace cubrick
