// Table / Shard engine tests: sharded appends, scans, partition deletes,
// purge and rollback across shards, threaded and inline modes.

#include "engine/table.h"

#include <gtest/gtest.h>

#include "ingest/parser.h"

namespace cubrick {
namespace {

std::shared_ptr<CubeSchema> MakeSchema() {
  return CubeSchema::Make(
             "events",
             {{"region", 16, 2, false}, {"kind", 4, 1, false}},
             {{"n", DataType::kInt64}})
      .value();
}

/// Builds parser batches for records (region, kind, n).
PerBrickBatches Batches(const CubeSchema& schema,
                        const std::vector<std::array<int64_t, 3>>& rows) {
  std::vector<Record> records;
  for (const auto& r : rows) {
    records.push_back({r[0], r[1], r[2]});
  }
  auto parsed = ParseRecords(schema, records);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->batches;
}

Query SumQuery() {
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  return q;
}

aosi::Snapshot Snap(aosi::Epoch e) { return aosi::Snapshot{e, {}}; }

class TableTest : public ::testing::TestWithParam<bool> {
 protected:
  bool threaded() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(InlineAndThreaded, TableTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Threaded" : "Inline";
                         });

TEST_P(TableTest, AppendAndScan) {
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  ASSERT_TRUE(table
                  .Append(1, Batches(*schema, {{0, 0, 10},
                                               {3, 1, 20},
                                               {9, 2, 30},
                                               {15, 3, 40}}))
                  .ok());
  auto result = table.Scan(Snap(1), ScanMode::kSnapshotIsolation, SumQuery());
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum), 100.0);
  EXPECT_DOUBLE_EQ(result.Single(1, AggSpec::Fn::kCount), 4.0);
  EXPECT_EQ(table.TotalRecords(), 4u);
  // region cardinality 16 range 2 and kind range 1: these 4 records land in
  // 4 distinct bricks.
  EXPECT_EQ(table.NumBricks(), 4u);
}

TEST_P(TableTest, SnapshotExcludesOtherEpochs) {
  auto schema = MakeSchema();
  Table table(schema, 2, threaded());
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{0, 0, 1}})).ok());
  ASSERT_TRUE(table.Append(2, Batches(*schema, {{0, 0, 2}})).ok());
  ASSERT_TRUE(table.Append(4, Batches(*schema, {{0, 0, 4}})).ok());
  auto at2 = table.Scan(Snap(2), ScanMode::kSnapshotIsolation, SumQuery());
  EXPECT_DOUBLE_EQ(at2.Single(0, AggSpec::Fn::kSum), 3.0);
  auto ru = table.Scan(Snap(2), ScanMode::kReadUncommitted, SumQuery());
  EXPECT_DOUBLE_EQ(ru.Single(0, AggSpec::Fn::kSum), 7.0);
}

TEST_P(TableTest, DeleteWholeCube) {
  auto schema = MakeSchema();
  Table table(schema, 2, threaded());
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{1, 0, 5}, {8, 2, 7}})).ok());
  ASSERT_TRUE(table.DeleteWhere(2, {}).ok());
  auto before =
      table.Scan(Snap(1), ScanMode::kSnapshotIsolation, SumQuery());
  EXPECT_DOUBLE_EQ(before.Single(0, AggSpec::Fn::kSum), 12.0);
  auto after = table.Scan(Snap(2), ScanMode::kSnapshotIsolation, SumQuery());
  EXPECT_DOUBLE_EQ(after.Single(0, AggSpec::Fn::kSum), 0.0);
}

TEST_P(TableTest, DeletePartitionGranular) {
  auto schema = MakeSchema();
  Table table(schema, 2, threaded());
  // region range size is 2: coords {0,1} are one range, {8,9} another.
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{0, 0, 5},
                                                {1, 0, 6},
                                                {8, 0, 7}}))
                  .ok());
  // Delete the region range [0,1]: fully covers the first brick.
  std::vector<FilterClause> pred = {
      {0, FilterClause::Op::kRange, {}, 0, 1}};
  ASSERT_TRUE(table.DeleteWhere(2, pred).ok());
  auto result = table.Scan(Snap(2), ScanMode::kSnapshotIsolation, SumQuery());
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum), 7.0);
}

TEST_P(TableTest, SubPartitionDeleteRejected) {
  auto schema = MakeSchema();
  Table table(schema, 2, threaded());
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{0, 0, 5}, {1, 0, 6}})).ok());
  // region == 0 covers only half of the materialized brick's range [0,1].
  std::vector<FilterClause> pred = {{0, FilterClause::Op::kEq, {0}, 0, 0}};
  auto status = table.DeleteWhere(2, pred);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Nothing was marked.
  auto result = table.Scan(Snap(2), ScanMode::kSnapshotIsolation, SumQuery());
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum), 11.0);
}

TEST_P(TableTest, PurgeRecyclesHistoryAndAppliesDeletes) {
  auto schema = MakeSchema();
  Table table(schema, 2, threaded());
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{0, 0, 5}})).ok());
  ASSERT_TRUE(table.Append(2, Batches(*schema, {{0, 0, 6}})).ok());
  ASSERT_TRUE(table.DeleteWhere(3, {}).ok());
  ASSERT_TRUE(table.Append(4, Batches(*schema, {{0, 0, 9}})).ok());

  PurgeStats stats = table.Purge(/*lse=*/4);
  EXPECT_EQ(stats.bricks_rewritten, 1u);
  EXPECT_EQ(stats.records_removed, 2u);
  auto result = table.Scan(Snap(5), ScanMode::kSnapshotIsolation, SumQuery());
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum), 9.0);
  EXPECT_EQ(table.TotalRecords(), 1u);
}

TEST_P(TableTest, PurgeErasesFullyDeadBricks) {
  auto schema = MakeSchema();
  Table table(schema, 2, threaded());
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{0, 0, 5}, {8, 0, 6}})).ok());
  ASSERT_TRUE(table.DeleteWhere(2, {}).ok());
  PurgeStats stats = table.Purge(/*lse=*/3);
  EXPECT_EQ(stats.bricks_erased, 2u);
  EXPECT_EQ(table.NumBricks(), 0u);
  EXPECT_EQ(table.TotalRecords(), 0u);
}

TEST_P(TableTest, RollbackRemovesVictimAcrossShards) {
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{0, 0, 1}, {9, 1, 2}})).ok());
  ASSERT_TRUE(table.Append(2, Batches(*schema, {{0, 0, 4}, {9, 1, 8}})).ok());
  table.Rollback(2);
  auto result = table.Scan(Snap(9), ScanMode::kSnapshotIsolation, SumQuery());
  EXPECT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum), 3.0);
  EXPECT_EQ(table.TotalRecords(), 2u);
}

TEST_P(TableTest, GroupByAcrossBricksAndShards) {
  auto schema = MakeSchema();
  Table table(schema, 4, threaded());
  ASSERT_TRUE(table.Append(1, Batches(*schema, {{0, 1, 10},
                                                {1, 1, 20},
                                                {8, 1, 40},
                                                {8, 2, 80}}))
                  .ok());
  Query q;
  q.group_by = {1};  // by kind
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto result = table.Scan(Snap(1), ScanMode::kSnapshotIsolation, q);
  EXPECT_EQ(result.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(result.Value({1}, 0, AggSpec::Fn::kSum), 70.0);
  EXPECT_DOUBLE_EQ(result.Value({2}, 0, AggSpec::Fn::kSum), 80.0);
}

TEST_P(TableTest, HistoryOverheadTracksTransactionsNotRecords) {
  auto schema = MakeSchema();
  Table table(schema, 1, threaded());
  // One big transaction: one epochs entry regardless of record count.
  std::vector<std::array<int64_t, 3>> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({0, 0, 1});
  ASSERT_TRUE(table.Append(1, Batches(*schema, rows)).ok());
  EXPECT_EQ(table.HistoryMemoryUsage(), sizeof(aosi::EpochEntry));
  // Many small transactions: overhead grows with transactions.
  for (aosi::Epoch e = 2; e <= 11; ++e) {
    ASSERT_TRUE(table.Append(e, Batches(*schema, {{0, 0, 1}})).ok());
  }
  EXPECT_GE(table.HistoryMemoryUsage(), 11 * sizeof(aosi::EpochEntry));
}

TEST(TableShardingTest, BricksDistributeAcrossShards) {
  auto schema = MakeSchema();
  Table table(schema, 4, /*threaded=*/false);
  std::vector<std::array<int64_t, 3>> rows;
  for (int64_t region = 0; region < 16; region += 2) {
    for (int64_t kind = 0; kind < 4; ++kind) {
      rows.push_back({region, kind, 1});
    }
  }
  ASSERT_TRUE(table.Append(1, Batches(*schema, rows)).ok());
  EXPECT_EQ(table.NumBricks(), 32u);
  size_t shards_used = 0;
  for (size_t s = 0; s < table.num_shards(); ++s) {
    if (table.shard(s).bricks().size() > 0) ++shards_used;
  }
  EXPECT_EQ(shards_used, 4u);
}

TEST(TableConcurrencyTest, ParallelAppendsFromManyClients) {
  auto schema = MakeSchema();
  Table table(schema, 4, /*threaded=*/true);
  constexpr int kClients = 4;
  constexpr int kBatches = 25;
  std::atomic<uint64_t> next_epoch{1};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int b = 0; b < kBatches; ++b) {
        const aosi::Epoch e = next_epoch.fetch_add(1, std::memory_order_relaxed);
        auto batches = Batches(*schema, {{static_cast<int64_t>(e % 16), 0, 1},
                                         {static_cast<int64_t>(e % 16), 1, 1}});
        ASSERT_TRUE(table.Append(e, std::move(batches)).ok());
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(table.TotalRecords(), kClients * kBatches * 2u);
  auto result = table.Scan(Snap(1000), ScanMode::kSnapshotIsolation,
                           SumQuery());
  EXPECT_DOUBLE_EQ(result.Single(1, AggSpec::Fn::kCount),
                   kClients * kBatches * 2.0);
}

}  // namespace
}  // namespace cubrick
