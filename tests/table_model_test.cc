// Table-level property test: random mixed workloads (multi-brick appends,
// partition deletes, rollbacks, purges, snapshots) verified against a naive
// reference model that re-derives every query answer from first principles.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "engine/table.h"
#include "ingest/parser.h"

namespace cubrick {
namespace {

// The reference model keeps every record with its full context.
struct ModelRecord {
  aosi::Epoch epoch;
  uint64_t key;        // encoded dim coordinate
  int64_t value;
  uint64_t seq;        // global arrival order (for delete boundaries)
  bool rolled_back = false;
};

struct ModelDelete {
  aosi::Epoch epoch;
  uint64_t key_range_lo, key_range_hi;  // covered partition coordinates
  uint64_t seq;                         // arrival position
  bool rolled_back = false;
};

class TableModel {
 public:
  explicit TableModel(uint64_t range_size) : range_size_(range_size) {}

  void Append(aosi::Epoch e, uint64_t key, int64_t value) {
    records_.push_back({e, key, value, next_seq_++, false});
  }

  void DeleteRange(aosi::Epoch e, uint64_t lo, uint64_t hi) {
    deletes_.push_back({e, lo, hi, next_seq_++, false});
  }

  void Rollback(aosi::Epoch victim) {
    for (auto& r : records_) {
      if (r.epoch == victim) r.rolled_back = true;
    }
    for (auto& d : deletes_) {
      if (d.epoch == victim) d.rolled_back = true;
    }
  }

  /// Visible sum/count for a snapshot, from first principles.
  std::pair<int64_t, uint64_t> Evaluate(const aosi::Snapshot& snap) const {
    int64_t sum = 0;
    uint64_t count = 0;
    for (const auto& r : records_) {
      if (r.rolled_back || !snap.Sees(r.epoch)) continue;
      bool dead = false;
      for (const auto& d : deletes_) {
        if (d.rolled_back || !snap.Sees(d.epoch)) continue;
        if (r.key < d.key_range_lo || r.key > d.key_range_hi) continue;
        // The §III-C3 rule, per partition: epochs < deleter die anywhere;
        // the deleter's own records die before the marker.
        if (r.epoch < d.epoch || (r.epoch == d.epoch && r.seq < d.seq)) {
          dead = true;
          break;
        }
      }
      if (!dead) {
        sum += r.value;
        ++count;
      }
    }
    return {sum, count};
  }

 private:
  uint64_t range_size_;
  uint64_t next_seq_ = 0;
  std::vector<ModelRecord> records_;
  std::vector<ModelDelete> deletes_;
};

class TableModelTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TableModelTest, ::testing::Range(0, 8));

TEST_P(TableModelTest, RandomWorkloadMatchesModel) {
  constexpr uint64_t kCardinality = 32;
  constexpr uint64_t kRangeSize = 4;
  auto schema = CubeSchema::Make(
                    "t", {{"k", kCardinality, kRangeSize, false}},
                    {{"v", DataType::kInt64}})
                    .value();
  Table table(schema, 2, /*threaded=*/false);
  TableModel model(kRangeSize);
  Random rng(9000 + static_cast<uint64_t>(GetParam()));

  aosi::Epoch next_epoch = 1;
  std::vector<aosi::Epoch> committed_epochs;
  aosi::Epoch max_finished_prefix = 0;  // all epochs <= this are finished

  for (int step = 0; step < 150; ++step) {
    const double dice = rng.NextDouble();
    const aosi::Epoch e = next_epoch++;
    if (dice < 0.6) {
      // Append 1-4 records (one txn).
      std::vector<Record> rows;
      const uint64_t n = 1 + rng.Uniform(4);
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t key = rng.Uniform(kCardinality);
        const int64_t value = static_cast<int64_t>(rng.Uniform(100));
        rows.push_back({static_cast<int64_t>(key), value});
        model.Append(e, key, value);
      }
      ASSERT_TRUE(
          table.Append(e, ParseRecords(*schema, rows).value().batches).ok());
    } else if (dice < 0.75) {
      // Partition-granular delete of one key range.
      const uint64_t range_idx = rng.Uniform(kCardinality / kRangeSize);
      const uint64_t lo = range_idx * kRangeSize;
      const uint64_t hi = lo + kRangeSize - 1;
      std::vector<FilterClause> pred = {
          {0, FilterClause::Op::kRange, {}, lo, hi}};
      ASSERT_TRUE(table.DeleteWhere(e, pred).ok());
      model.DeleteRange(e, lo, hi);
    } else if (dice < 0.85 && !committed_epochs.empty()) {
      // Roll back a random previous epoch — but only above the purge
      // horizon: a purged (finished) transaction can never be rolled back
      // (the real TxnManager rejects it; purge may have merged its entry).
      std::vector<aosi::Epoch> candidates;
      for (aosi::Epoch c : committed_epochs) {
        if (c > max_finished_prefix) candidates.push_back(c);
      }
      if (!candidates.empty()) {
        const aosi::Epoch victim =
            candidates[rng.Uniform(candidates.size())];
        table.Rollback(victim);
        model.Rollback(victim);
      }
    } else {
      // Purge at a safe LSE: everything issued so far is "finished" in
      // this single-writer harness.
      max_finished_prefix = e;
      table.Purge(max_finished_prefix);
      // Model needs no purge: purge must not change visible answers.
    }
    committed_epochs.push_back(e);

    // Probe a few random snapshots.
    if (step % 10 == 0) {
      for (int probe = 0; probe < 3; ++probe) {
        aosi::Snapshot snap;
        snap.epoch = rng.Uniform(next_epoch + 1);
        // Purge assumed all epochs finished; keep snapshots' deps above the
        // purge horizon to respect the LSE gating contract.
        std::vector<aosi::Epoch> deps;
        for (size_t d = 0; d < rng.Uniform(3); ++d) {
          const aosi::Epoch dep =
              max_finished_prefix + 1 + rng.Uniform(next_epoch);
          if (dep < snap.epoch) deps.push_back(dep);
        }
        if (snap.epoch <= max_finished_prefix) {
          // Readers below the purge horizon are no longer supported
          // (purge already assumed none exist); snap at the horizon.
          snap.epoch = max_finished_prefix;
          deps.clear();
        }
        snap.deps = aosi::EpochSet(deps);

        Query q;
        q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
        auto result = table.Scan(snap, ScanMode::kSnapshotIsolation, q);
        const auto [expected_sum, expected_count] = model.Evaluate(snap);
        ASSERT_DOUBLE_EQ(result.Single(0, AggSpec::Fn::kSum),
                         static_cast<double>(expected_sum))
            << "step " << step << " reader " << snap.epoch << " deps "
            << snap.deps.ToString();
        ASSERT_DOUBLE_EQ(result.Single(1, AggSpec::Fn::kCount),
                         static_cast<double>(expected_count));
      }
    }
  }
}

}  // namespace
}  // namespace cubrick
