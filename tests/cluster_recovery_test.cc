// Cluster persistence and node crash/recovery tests (§III-D): checkpoint
// rounds across nodes, crash destroying a node's memory, recovery from local
// segments plus replica catch-up for data after the node's LSE.

#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/cluster.h"

namespace cubrick::cluster {
namespace {

namespace fs = std::filesystem;

class ClusterRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("cubrick_cluster_rec_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ClusterOptions Options(uint32_t nodes, size_t rf) {
    ClusterOptions opts;
    opts.num_nodes = nodes;
    opts.replication_factor = rf;
    opts.shards_per_cube = 2;
    opts.data_dir = dir_.string();
    return opts;
  }

  static Status MakeCube(Cluster& cluster) {
    return cluster.CreateCube("m", {{"k", 64, 4, false}},
                              {{"v", DataType::kInt64}});
  }

  static Status LoadRows(Cluster& cluster, uint32_t coord, int64_t base,
                         int n) {
    auto txn = cluster.BeginReadWrite(coord);
    if (!txn.ok()) return txn.status();
    std::vector<Record> rows;
    for (int i = 0; i < n; ++i) {
      rows.push_back({(base + i) % 64, base + i});
    }
    CUBRICK_RETURN_IF_ERROR(cluster.Append(&*txn, "m", rows));
    return cluster.Commit(&*txn);
  }

  static double Count(Cluster& cluster, uint32_t coord) {
    cubrick::Query q;
    q.aggs = {{AggSpec::Fn::kCount, 0}, {AggSpec::Fn::kSum, 0}};
    auto result = cluster.QueryOnce(coord, "m", q);
    EXPECT_TRUE(result.ok());
    return result->Single(0, AggSpec::Fn::kCount);
  }

  fs::path dir_;
};

TEST_F(ClusterRecoveryTest, CheckpointAllAdvancesClusterLse) {
  Cluster cluster(Options(3, 1));
  ASSERT_TRUE(MakeCube(cluster).ok());
  ASSERT_TRUE(LoadRows(cluster, 1, 0, 20).ok());
  auto lse = cluster.CheckpointAll();
  ASSERT_TRUE(lse.ok()) << lse.status().ToString();
  EXPECT_GT(*lse, 0u);
  for (uint32_t n = 1; n <= 3; ++n) {
    EXPECT_GE(cluster.node(n).txns().LSE(), *lse);
  }
}

TEST_F(ClusterRecoveryTest, CheckpointRefusedWhileNodeOffline) {
  Cluster cluster(Options(3, 2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  ASSERT_TRUE(LoadRows(cluster, 1, 0, 10).ok());
  ASSERT_TRUE(cluster.SetNodeOnline(2, false).ok());
  EXPECT_EQ(cluster.CheckpointAll().status().code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(cluster.SetNodeOnline(2, true).ok());
  EXPECT_TRUE(cluster.CheckpointAll().ok());
}

TEST_F(ClusterRecoveryTest, CrashWipesMemoryRecoveryRestoresFromDisk) {
  Cluster cluster(Options(3, 2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  ASSERT_TRUE(LoadRows(cluster, 1, 0, 30).ok());
  ASSERT_TRUE(cluster.CheckpointAll().ok());
  EXPECT_DOUBLE_EQ(Count(cluster, 1), 30.0);

  const uint64_t before = cluster.node(2).TotalRecords();
  ASSERT_TRUE(cluster.CrashNode(2).ok());
  EXPECT_EQ(cluster.node(2).TotalRecords(), 0u);
  EXPECT_FALSE(cluster.node(2).online());
  // Survivors keep answering (replicas cover node 2's bricks).
  EXPECT_DOUBLE_EQ(Count(cluster, 1), 30.0);

  ASSERT_TRUE(cluster.RecoverNode(2).ok());
  EXPECT_TRUE(cluster.node(2).online());
  EXPECT_EQ(cluster.node(2).TotalRecords(), before);
  EXPECT_DOUBLE_EQ(Count(cluster, 2), 30.0);
}

TEST_F(ClusterRecoveryTest, ReplicaCatchUpSuppliesPostFlushData) {
  Cluster cluster(Options(3, 2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  ASSERT_TRUE(LoadRows(cluster, 1, 0, 20).ok());
  ASSERT_TRUE(cluster.CheckpointAll().ok());
  // More data after the checkpoint: on disk nowhere, replicated in memory.
  ASSERT_TRUE(LoadRows(cluster, 2, 100, 25).ok());

  const uint64_t before = cluster.node(3).TotalRecords();
  ASSERT_TRUE(cluster.CrashNode(3).ok());
  ASSERT_TRUE(cluster.RecoverNode(3).ok());
  // Node 3 recovered its flushed data locally AND the unflushed tail from
  // replicas.
  EXPECT_EQ(cluster.node(3).TotalRecords(), before);
  EXPECT_DOUBLE_EQ(Count(cluster, 3), 45.0);

  // Its counters caught up: new transactions work cluster-wide.
  ASSERT_TRUE(LoadRows(cluster, 3, 200, 5).ok());
  EXPECT_DOUBLE_EQ(Count(cluster, 1), 50.0);
}

TEST_F(ClusterRecoveryTest, RecoveredNodeEpochsDoNotCollide) {
  Cluster cluster(Options(2, 2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  ASSERT_TRUE(LoadRows(cluster, 1, 0, 5).ok());
  ASSERT_TRUE(LoadRows(cluster, 2, 10, 5).ok());
  ASSERT_TRUE(cluster.CheckpointAll().ok());
  ASSERT_TRUE(cluster.CrashNode(1).ok());
  ASSERT_TRUE(cluster.RecoverNode(1).ok());
  // The recovered node's next epoch must exceed everything committed and
  // keep its stride residue.
  const aosi::Epoch ec = cluster.node(1).txns().EC();
  EXPECT_GT(ec, cluster.node(1).txns().LCE());
  EXPECT_EQ(ec % 2, 1u);  // node 1 of 2
  auto txn = cluster.BeginReadWrite(1);
  ASSERT_TRUE(txn.ok());
  EXPECT_GT(txn->txn.epoch, cluster.node(2).txns().LCE());
  ASSERT_TRUE(cluster.Commit(&*txn).ok());
}

TEST_F(ClusterRecoveryTest, DeleteMarkersSurviveCrash) {
  Cluster cluster(Options(2, 2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  ASSERT_TRUE(LoadRows(cluster, 1, 0, 10).ok());
  auto del = cluster.BeginReadWrite(1);
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE(cluster.DeleteWhere(&*del, "m", {}).ok());
  ASSERT_TRUE(cluster.Commit(&*del).ok());
  ASSERT_TRUE(LoadRows(cluster, 2, 100, 3).ok());
  ASSERT_TRUE(cluster.CheckpointAll().ok());

  ASSERT_TRUE(cluster.CrashNode(2).ok());
  ASSERT_TRUE(cluster.RecoverNode(2).ok());
  EXPECT_DOUBLE_EQ(Count(cluster, 2), 3.0);
}

TEST_F(ClusterRecoveryTest, CrashWithoutAnyCheckpointRecoversFromReplicas) {
  Cluster cluster(Options(3, 2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  ASSERT_TRUE(LoadRows(cluster, 1, 0, 40).ok());
  // No CheckpointAll: node 2's disk is empty.
  const uint64_t before = cluster.node(2).TotalRecords();
  ASSERT_TRUE(cluster.CrashNode(2).ok());
  ASSERT_TRUE(cluster.RecoverNode(2).ok());
  EXPECT_EQ(cluster.node(2).TotalRecords(), before);
  EXPECT_DOUBLE_EQ(Count(cluster, 2), 40.0);
}

TEST_F(ClusterRecoveryTest, RecoverOnlineNodeRejected) {
  Cluster cluster(Options(2, 1));
  ASSERT_TRUE(MakeCube(cluster).ok());
  EXPECT_EQ(cluster.RecoverNode(1).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ClusterRecoveryTest, PurgeThenCrashThenRecover) {
  // History recycled by purge must still recover correctly (relabeled
  // merged epochs are committed <= LSE, hence visible to all).
  Cluster cluster(Options(2, 2));
  ASSERT_TRUE(MakeCube(cluster).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(LoadRows(cluster, 1 + (i % 2), i * 10, 4).ok());
  }
  ASSERT_TRUE(cluster.CheckpointAll().ok());
  cluster.PurgeAll();
  ASSERT_TRUE(LoadRows(cluster, 1, 90, 2).ok());

  ASSERT_TRUE(cluster.CrashNode(2).ok());
  ASSERT_TRUE(cluster.RecoverNode(2).ok());
  EXPECT_DOUBLE_EQ(Count(cluster, 2), 22.0);
  EXPECT_DOUBLE_EQ(Count(cluster, 1), 22.0);
}

}  // namespace
}  // namespace cubrick::cluster
