// Visibility-bitmap tests, reproducing the paper's Table III semantics.
//
// Note on fidelity: the source text of Tables II/III is corrupted in our
// copy of the paper (columns duplicated, bit strings of impossible lengths),
// so the exact byte-for-byte values cannot be recovered. These tests instead
// pin the bitmaps that §III-C3's stated rules produce over the Figure 2
// sequences as we reconstructed them, including the secondary cleanup pass
// for visible deletes.

#include "aosi/visibility.h"

#include <gtest/gtest.h>

#include "aosi/epoch_vector.h"

namespace cubrick::aosi {
namespace {

Snapshot Reader(Epoch epoch, std::vector<Epoch> deps = {}) {
  Snapshot s;
  s.epoch = epoch;
  s.deps = EpochSet(std::move(deps));
  return s;
}

// Figure 2 (a) reconstruction:
//   T1 appends 2, T3 appends 2, T5 appends 1, T3 deletes partition,
//   T5 appends 3, T7 appends 1.
// Records: [0,1]=T1  [2,3]=T3  [4]=T5  (del T3 @5)  [5,7]=T5  [8]=T7.
EpochVector Fig2a() {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(3, 2);
  ev.RecordAppend(5, 1);
  ev.RecordDelete(3);
  ev.RecordAppend(5, 3);
  ev.RecordAppend(7, 1);
  return ev;
}

TEST(VisibilityTest, TableIII_Reader2_SeesOnlyT1) {
  // Reader at epoch 2 sees T1 but not the (later) delete by T3.
  Bitmap bm = BuildVisibilityBitmap(Fig2a(), Reader(2));
  EXPECT_EQ(bm.ToString(), "110000000");
}

TEST(VisibilityTest, TableIII_Reader4_DeleteWipesOlderTransactions) {
  // Reader at epoch 4 sees T1, T3 and T3's delete. The cleanup pass clears
  // everything from transactions < 3 and T3's own records before the marker,
  // leaving nothing.
  Bitmap bm = BuildVisibilityBitmap(Fig2a(), Reader(4));
  EXPECT_EQ(bm.ToString(), "000000000");
  EXPECT_TRUE(bm.None());
}

TEST(VisibilityTest, TableIII_Reader6_ConcurrentNewerSurvives) {
  // Reader at epoch 6 also sees T5. T5 > deleter T3, so T5's records —
  // including the one physically before the marker — survive the cleanup.
  Bitmap bm = BuildVisibilityBitmap(Fig2a(), Reader(6));
  EXPECT_EQ(bm.ToString(), "000011110");
}

TEST(VisibilityTest, TableIII_Reader8_SeesEverythingAfterDelete) {
  Bitmap bm = BuildVisibilityBitmap(Fig2a(), Reader(8));
  EXPECT_EQ(bm.ToString(), "000011111");
}

TEST(VisibilityTest, PendingDepsExcludeTransaction) {
  // Reader at epoch 8 that started while T5 was still pending must not see
  // T5's records even though 5 < 8.
  Bitmap bm = BuildVisibilityBitmap(Fig2a(), Reader(8, {5}));
  EXPECT_EQ(bm.ToString(), "000000001");
}

TEST(VisibilityTest, PendingDeleterHidesDelete) {
  // If the deleting transaction T3 was pending when the reader started, the
  // delete is invisible: the reader sees the pre-delete world minus T3.
  Bitmap bm = BuildVisibilityBitmap(Fig2a(), Reader(8, {3}));
  EXPECT_EQ(bm.ToString(), "110011111");
}

TEST(VisibilityTest, ReaderOwnEpochIncluded) {
  // A RW transaction reading its own appends: T5 reading Fig2a sees its own
  // records; the visible delete by T3 clears T1 and T3.
  Bitmap bm = BuildVisibilityBitmap(Fig2a(), Reader(5));
  EXPECT_EQ(bm.ToString(), "000011110");
}

TEST(VisibilityTest, EmptyHistoryYieldsEmptyBitmap) {
  EpochVector ev;
  Bitmap bm = BuildVisibilityBitmap(ev, Reader(10));
  EXPECT_EQ(bm.size(), 0u);
}

TEST(VisibilityTest, EpochZeroReaderSeesNothing) {
  // A RO transaction before anything committed runs at LCE = 0.
  Bitmap bm = BuildVisibilityBitmap(Fig2a(), Reader(kNoEpoch));
  EXPECT_TRUE(bm.None());
}

TEST(VisibilityTest, DeleteOnlyAffectsReadersThatSeeIt) {
  EpochVector ev;
  ev.RecordAppend(2, 4);
  ev.RecordDelete(6);
  EXPECT_EQ(BuildVisibilityBitmap(ev, Reader(5)).ToString(), "1111");
  EXPECT_EQ(BuildVisibilityBitmap(ev, Reader(6)).ToString(), "0000");
  EXPECT_EQ(BuildVisibilityBitmap(ev, Reader(9)).ToString(), "0000");
}

TEST(VisibilityTest, DeleterOwnRecordsAfterMarkerSurvive) {
  // T4 appends, deletes, appends again: its post-delete appends are alive.
  EpochVector ev;
  ev.RecordAppend(4, 2);
  ev.RecordDelete(4);
  ev.RecordAppend(4, 3);
  EXPECT_EQ(BuildVisibilityBitmap(ev, Reader(4)).ToString(), "00111");
  EXPECT_EQ(BuildVisibilityBitmap(ev, Reader(9)).ToString(), "00111");
}

TEST(VisibilityTest, TwoDeletesApplyCumulatively) {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordDelete(2);
  ev.RecordAppend(3, 2);
  ev.RecordDelete(4);
  ev.RecordAppend(5, 1);
  // Reader 9 sees both deletes; only T5's record survives.
  EXPECT_EQ(BuildVisibilityBitmap(ev, Reader(9)).ToString(), "00001");
  // Reader 3 sees only the first delete (and not T5's record).
  EXPECT_EQ(BuildVisibilityBitmap(ev, Reader(3)).ToString(), "00110");
}

TEST(VisibilityTest, LateArrivingOlderEpochIsKilledByDelete) {
  // Logical clocks can place an *older* epoch's append physically after the
  // delete marker (out-of-order distributed arrival). The cleanup clears
  // transactions < k everywhere, so the late append is still deleted.
  EpochVector ev;
  ev.RecordAppend(5, 2);
  ev.RecordDelete(6);
  ev.RecordAppend(2, 3);  // epoch 2 arrives after T6's delete marker
  Bitmap bm = BuildVisibilityBitmap(ev, Reader(9));
  EXPECT_EQ(bm.ToString(), "00000");
}

// --- ApplyDeleteCleanup boundary semantics -------------------------------
// The shared delete-cleanup rule (used by both visibility construction and
// purge planning) over hand-built run lists; runs are half-open [begin,end).

TEST(DeleteCleanupTest, DeletePointAtRunExclusiveEndClearsWholeRun) {
  // k's own run [0,4) with delete_point == 4 (its exclusive end): every
  // record of the run is strictly before the delete point, so all die.
  std::vector<EpochRun> runs = {{5, 0, 4, false}, {5, 4, 6, false}};
  Bitmap bm(6, true);
  ApplyDeleteCleanup(runs, /*k=*/5, /*delete_point=*/4, &bm);
  EXPECT_EQ(bm.ToString(), "000011");
}

TEST(DeleteCleanupTest, DeletePointAtRunBeginLeavesRunUntouched) {
  // A run of k whose begin equals the delete point sits entirely at-or-
  // after the marker; none of it is cleared.
  std::vector<EpochRun> runs = {{5, 2, 5, false}};
  Bitmap bm(5, true);
  ApplyDeleteCleanup(runs, /*k=*/5, /*delete_point=*/2, &bm);
  EXPECT_EQ(bm.ToString(), "11111");
}

TEST(DeleteCleanupTest, DeletePointInsideOwnRunClearsPrefixOnly) {
  // Delete epoch equal to its own run's records: [0,3) with delete_point 1
  // clears exactly the first record — the clamp is min(end, delete_point).
  std::vector<EpochRun> runs = {{5, 0, 3, false}};
  Bitmap bm(3, true);
  ApplyDeleteCleanup(runs, /*k=*/5, /*delete_point=*/1, &bm);
  EXPECT_EQ(bm.ToString(), "011");
}

TEST(DeleteCleanupTest, OlderEpochsClearedEverywhere) {
  // Runs of transactions ordered before k die wherever they physically sit
  // — including after the delete point (late distributed arrivals). Newer
  // transactions survive untouched.
  std::vector<EpochRun> runs = {
      {2, 0, 2, false},   // older, before the point
      {6, 2, 4, false},   // newer than k=5
      {3, 4, 6, false},   // older, physically after the point
  };
  Bitmap bm(6, true);
  ApplyDeleteCleanup(runs, /*k=*/5, /*delete_point=*/2, &bm);
  EXPECT_EQ(bm.ToString(), "001100");
}

TEST(DeleteCleanupTest, DeleteMarkersInRunListIgnored) {
  // A zero-width delete marker entry must not clear anything, even when
  // its epoch is older than k.
  std::vector<EpochRun> runs = {
      {2, 0, 0, true},    // marker of an older epoch
      {6, 0, 3, false},
  };
  Bitmap bm(3, true);
  ApplyDeleteCleanup(runs, /*k=*/5, /*delete_point=*/0, &bm);
  EXPECT_EQ(bm.ToString(), "111");
}

TEST(VisibilityTest, ReadUncommittedSeesEverything) {
  Bitmap bm = BuildReadUncommittedBitmap(Fig2a());
  EXPECT_EQ(bm.size(), 9u);
  EXPECT_TRUE(bm.All());
}

TEST(VisibilityTest, AnyVisibleFastPaths) {
  EpochVector ev;
  EXPECT_FALSE(AnyVisible(ev, Reader(5)));
  ev.RecordAppend(4, 2);
  EXPECT_TRUE(AnyVisible(ev, Reader(5)));
  EXPECT_FALSE(AnyVisible(ev, Reader(3)));
  ev.RecordDelete(5);
  EXPECT_TRUE(AnyVisible(ev, Reader(4)));   // delete not visible yet
  EXPECT_FALSE(AnyVisible(ev, Reader(6)));  // delete wipes T4
}

TEST(VisibilityTest, AnyVisibleMatchesBitmapAcrossSnapshots) {
  // The run-granular early exit must agree with !bitmap.None() for every
  // snapshot, including ones that see delete markers. Sweep several
  // histories against every (epoch, deps) combination.
  std::vector<EpochVector> histories;
  histories.push_back(Fig2a());
  {
    // Deleter's own records straddling the delete point.
    EpochVector ev;
    ev.RecordAppend(4, 2);
    ev.RecordDelete(4);
    ev.RecordAppend(4, 3);
    histories.push_back(ev);
  }
  {
    // Two cumulative deletes.
    EpochVector ev;
    ev.RecordAppend(1, 2);
    ev.RecordDelete(2);
    ev.RecordAppend(3, 2);
    ev.RecordDelete(4);
    ev.RecordAppend(5, 1);
    histories.push_back(ev);
  }
  {
    // Everything wiped: a delete newer than every append.
    EpochVector ev;
    ev.RecordAppend(2, 4);
    ev.RecordAppend(3, 1);
    ev.RecordDelete(6);
    histories.push_back(ev);
  }
  const std::vector<std::vector<Epoch>> deps_variants = {
      {}, {3}, {5}, {3, 5}, {7}, {1, 3, 5, 7}};
  for (size_t h = 0; h < histories.size(); ++h) {
    for (Epoch epoch = 0; epoch <= 9; ++epoch) {
      for (const auto& deps : deps_variants) {
        const Snapshot snap = Reader(epoch, deps);
        EXPECT_EQ(AnyVisible(histories[h], snap),
                  !BuildVisibilityBitmap(histories[h], snap).None())
            << "history " << h << " (" << histories[h].ToString()
            << ") epoch " << epoch << " deps " << snap.deps.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace cubrick::aosi
