// End-to-end tests of the single-node Database facade: DDL, implicit and
// explicit transactions, string filters, snapshot behavior and rollback.

#include "cubrick/database.h"

#include <gtest/gtest.h>

namespace cubrick {
namespace {

constexpr char kDdl[] =
    "CREATE CUBE test_cube (region string CARDINALITY 4 RANGE 2, "
    "gender string CARDINALITY 4 RANGE 1, likes int, comments int)";

cubrick::Query SumLikes() {
  cubrick::Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  return q;
}

TEST(DatabaseTest, DdlCreatesCube) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  auto schema = db.FindSchema("test_cube");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->num_dimensions(), 2u);
  EXPECT_EQ(db.CubeNames(), (std::vector<std::string>{"test_cube"}));
  EXPECT_EQ(db.ExecuteDdl(kDdl).code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, ImplicitLoadAndQuery) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("test_cube",
                      {{"CA", "male", 10, 1},
                       {"CA", "female", 20, 2},
                       {"NY", "male", 40, 4}})
                  .ok());
  auto result = db.Query("test_cube", SumLikes());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 70.0);
  EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount), 3.0);
}

TEST(DatabaseTest, StringEqFilter) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("test_cube",
                      {{"CA", "male", 10, 0},
                       {"CA", "female", 20, 0},
                       {"NY", "male", 40, 0}})
                  .ok());
  cubrick::Query q = SumLikes();
  auto filter = db.EqFilter("test_cube", "gender", "male");
  ASSERT_TRUE(filter.ok()) << filter.status().ToString();
  q.filters = {*filter};
  auto result = db.Query("test_cube", q);
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 50.0);
}

TEST(DatabaseTest, FilterOnUnknownStringMatchesNothing) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("test_cube", {{"CA", "male", 10, 0}}).ok());
  cubrick::Query q = SumLikes();
  auto filter = db.EqFilter("test_cube", "region", "MARS");
  ASSERT_TRUE(filter.ok());
  q.filters = {*filter};
  auto result = db.Query("test_cube", q);
  EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount), 0.0);
}

TEST(DatabaseTest, ExplicitTransactionIsAtomicallyVisible) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  aosi::Txn txn = db.Begin();
  ASSERT_TRUE(db.LoadIn(txn, "test_cube", {{"CA", "male", 1, 0}}).ok());
  ASSERT_TRUE(db.LoadIn(txn, "test_cube", {{"NY", "male", 2, 0}}).ok());

  // Invisible to implicit readers until commit.
  auto before = db.Query("test_cube", SumLikes());
  EXPECT_DOUBLE_EQ(before->Single(1, AggSpec::Fn::kCount), 0.0);
  // Visible to the transaction itself.
  auto own = db.QueryIn(txn, "test_cube", SumLikes());
  EXPECT_DOUBLE_EQ(own->Single(1, AggSpec::Fn::kCount), 2.0);

  ASSERT_TRUE(db.Commit(txn).ok());
  auto after = db.Query("test_cube", SumLikes());
  EXPECT_DOUBLE_EQ(after->Single(1, AggSpec::Fn::kCount), 2.0);
}

TEST(DatabaseTest, RollbackRemovesAllTraces) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("test_cube", {{"CA", "male", 5, 0}}).ok());
  aosi::Txn txn = db.Begin();
  ASSERT_TRUE(db.LoadIn(txn, "test_cube", {{"NY", "male", 100, 0}}).ok());
  ASSERT_TRUE(db.Rollback(txn).ok());
  EXPECT_EQ(db.TotalRecords(), 1u);
  // Even read-uncommitted scans see nothing of the aborted transaction.
  auto ru = db.Query("test_cube", SumLikes(), ScanMode::kReadUncommitted);
  EXPECT_DOUBLE_EQ(ru->Single(0, AggSpec::Fn::kSum), 5.0);
}

TEST(DatabaseTest, DeletePartitionsByStringValue) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("test_cube",
                      {{"CA", "male", 10, 0}, {"CA", "female", 20, 0}})
                  .ok());
  // gender has range size 1: deleting one gender value is partition
  // granular.
  auto filter = db.EqFilter("test_cube", "gender", "male");
  ASSERT_TRUE(filter.ok());
  ASSERT_TRUE(db.DeletePartitions("test_cube", {*filter}).ok());
  auto result = db.Query("test_cube", SumLikes());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 20.0);
}

TEST(DatabaseTest, SubPartitionDeleteFailsAndRollsBack) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  // region range size is 2: CA and NY share a range once both encoded into
  // the same range window.
  ASSERT_TRUE(db.Load("test_cube",
                      {{"CA", "male", 10, 0}, {"NY", "male", 20, 0}})
                  .ok());
  auto filter = db.EqFilter("test_cube", "region", "CA");
  ASSERT_TRUE(filter.ok());
  EXPECT_EQ(db.DeletePartitions("test_cube", {*filter}).code(),
            StatusCode::kInvalidArgument);
  // The failed delete's implicit transaction must not leak.
  EXPECT_TRUE(db.txns().PendingTxs().empty());
  auto result = db.Query("test_cube", SumLikes());
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 30.0);
}

TEST(DatabaseTest, SnapshotIsolationAcrossConcurrentLoaders) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  aosi::Txn t1 = db.Begin();
  aosi::Txn t2 = db.Begin();
  ASSERT_TRUE(db.LoadIn(t2, "test_cube", {{"CA", "male", 2, 0}}).ok());
  ASSERT_TRUE(db.Commit(t2).ok());
  // t2 committed but t1 (older) pending: LCE stays behind, implicit
  // queries still see nothing.
  auto blind = db.Query("test_cube", SumLikes());
  EXPECT_DOUBLE_EQ(blind->Single(1, AggSpec::Fn::kCount), 0.0);
  ASSERT_TRUE(db.Commit(t1).ok());
  auto sighted = db.Query("test_cube", SumLikes());
  EXPECT_DOUBLE_EQ(sighted->Single(1, AggSpec::Fn::kCount), 1.0);
}

TEST(DatabaseTest, MaxRejectedPropagates) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ParseOptions opts;
  opts.max_rejected = 0;
  const Status status =
      db.Load("test_cube", {{"CA", "male", "bad", 0}}, opts);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.txns().PendingTxs().empty());
}

TEST(DatabaseTest, LoadIntoMissingCubeFails) {
  Database db;
  EXPECT_EQ(db.Load("nope", {{"x", 1}}).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Query("nope", SumLikes()).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(db.txns().PendingTxs().empty());
}

TEST(DatabaseTest, GroupByStringDimensionDecodable) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("test_cube",
                      {{"CA", "male", 1, 0},
                       {"NY", "male", 2, 0},
                       {"CA", "female", 4, 0}})
                  .ok());
  cubrick::Query q;
  q.group_by = {0};  // region
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto result = db.Query("test_cube", q);
  ASSERT_TRUE(result.ok());
  auto schema = db.FindSchema("test_cube");
  std::map<std::string, double> by_region;
  for (const auto& [key, states] : result->groups()) {
    by_region[schema->dictionary(0)->Decode(key[0]).value()] =
        states[0].Finalize(AggSpec::Fn::kSum);
  }
  EXPECT_DOUBLE_EQ(by_region["CA"], 5.0);
  EXPECT_DOUBLE_EQ(by_region["NY"], 2.0);
}

TEST(DatabaseTest, PurgeAfterDeleteReclaimsMemory) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Load("test_cube", {{"CA", "male", i, 0}}).ok());
  }
  ASSERT_TRUE(db.DeletePartitions("test_cube", {}).ok());
  // One more transaction so LSE can pass the delete.
  ASSERT_TRUE(db.Load("test_cube", {{"NY", "female", 1, 0}}).ok());
  db.txns().TryAdvanceLSE(db.txns().LCE());
  const size_t before = db.HistoryMemoryUsage();
  PurgeStats stats = db.PurgeAll();
  EXPECT_GT(stats.records_removed, 0u);
  EXPECT_EQ(db.TotalRecords(), 1u);
  EXPECT_LE(db.HistoryMemoryUsage(), before);
}

TEST(DatabaseTest, LoadTimingPopulated) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  LoadTiming timing;
  ASSERT_TRUE(
      db.Load("test_cube", {{"CA", "male", 1, 0}}, {}, &timing).ok());
  EXPECT_GE(timing.total_us, timing.parse_us);
  EXPECT_GE(timing.total_us, 0);
}

}  // namespace
}  // namespace cubrick
