// Tests for the per-partition epochs vector, including the paper's Figure 1
// (interleaved appends by two transactions) and Figure 2 (sequences with
// partition deletes).

#include "aosi/epoch_vector.h"

#include <gtest/gtest.h>

namespace cubrick::aosi {
namespace {

TEST(EpochVectorTest, StartsEmpty) {
  EpochVector ev;
  EXPECT_EQ(ev.num_records(), 0u);
  EXPECT_EQ(ev.num_entries(), 0u);
  EXPECT_FALSE(ev.HasDelete());
  EXPECT_TRUE(ev.Decode().empty());
}

// Paper Figure 1: transactions T1 and T2 appending to the same partition.
// (a) T1 inserts 3 records -> entry (T1, 2).
// (b) T1 inserts 2 more    -> back entry extended in place to (T1, 4).
// (c) T2 inserts 4         -> new entry (T2, 8).
// (d) T1 inserts 4         -> new entry (T1, 12): T1 is no longer at the
//     back, so the entry cannot be extended.
TEST(EpochVectorTest, Figure1_InterleavedAppends) {
  EpochVector ev;
  ev.RecordAppend(1, 3);  // (a)
  ASSERT_EQ(ev.num_entries(), 1u);
  EXPECT_EQ(ev.entries()[0], EpochEntry::Append(1, 2));

  ev.RecordAppend(1, 2);  // (b): same txn at the back, extend in place
  ASSERT_EQ(ev.num_entries(), 1u);
  EXPECT_EQ(ev.entries()[0], EpochEntry::Append(1, 4));

  ev.RecordAppend(2, 4);  // (c)
  ASSERT_EQ(ev.num_entries(), 2u);
  EXPECT_EQ(ev.entries()[1], EpochEntry::Append(2, 8));

  ev.RecordAppend(1, 4);  // (d)
  ASSERT_EQ(ev.num_entries(), 3u);
  EXPECT_EQ(ev.entries()[2], EpochEntry::Append(1, 12));

  EXPECT_EQ(ev.num_records(), 13u);
  EXPECT_EQ(ev.ToString(), "[1:0-4][2:5-8][1:9-12]");
}

TEST(EpochVectorTest, EntryCostsSixteenBytes) {
  // The paper's memory-overhead claim rests on one 16-byte pair per
  // transaction per partition.
  EpochVector ev;
  ev.RecordAppend(7, 1000000);
  EXPECT_EQ(ev.MemoryUsage(), sizeof(EpochEntry) * 1u);
  EXPECT_EQ(sizeof(EpochEntry), 16u);
}

TEST(EpochVectorTest, DeleteMarkerRecordsBoundary) {
  EpochVector ev;
  ev.RecordAppend(1, 5);
  ev.RecordDelete(3);
  ASSERT_EQ(ev.num_entries(), 2u);
  EXPECT_TRUE(ev.entries()[1].is_delete());
  EXPECT_EQ(ev.entries()[1].index(), 5u);
  EXPECT_EQ(ev.entries()[1].epoch, 3u);
  EXPECT_TRUE(ev.HasDelete());
  // A delete does not consume record positions.
  EXPECT_EQ(ev.num_records(), 5u);
}

TEST(EpochVectorTest, AppendAfterDeleteStartsNewEntry) {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordDelete(1);
  ev.RecordAppend(1, 2);
  // Even though T1 wrote the entry before the marker, the marker sits at the
  // back so a fresh entry is required.
  ASSERT_EQ(ev.num_entries(), 3u);
  EXPECT_EQ(ev.ToString(), "[1:0-1][1:del@2][1:2-3]");
}

// Paper Figure 2 (a)-flavored sequence with a delete from a concurrent
// transaction logically older than some of the data around it.
TEST(EpochVectorTest, Figure2_SequenceWithDelete) {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(3, 2);
  ev.RecordAppend(5, 1);
  ev.RecordDelete(3);  // T3 deletes the partition while T5 is in flight
  ev.RecordAppend(5, 3);
  ev.RecordAppend(7, 1);
  EXPECT_EQ(ev.num_records(), 9u);
  EXPECT_EQ(ev.num_entries(), 6u);
  EXPECT_EQ(ev.ToString(), "[1:0-1][3:2-3][5:4-4][3:del@5][5:5-7][7:8-8]");
}

TEST(EpochVectorTest, DecodeRoundTripsThroughFromRuns) {
  EpochVector ev;
  ev.RecordAppend(2, 4);
  ev.RecordDelete(6);
  ev.RecordAppend(8, 2);
  const auto runs = ev.Decode();
  EpochVector rebuilt = EpochVector::FromRuns(runs);
  EXPECT_TRUE(ev == rebuilt);
}

TEST(EpochVectorTest, MultipleDeletes) {
  EpochVector ev;
  ev.RecordAppend(1, 3);
  ev.RecordDelete(2);
  ev.RecordAppend(3, 2);
  ev.RecordDelete(4);
  const auto runs = ev.Decode();
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_TRUE(runs[1].is_delete);
  EXPECT_EQ(runs[1].begin, 3u);
  EXPECT_TRUE(runs[3].is_delete);
  EXPECT_EQ(runs[3].begin, 5u);
}

TEST(EpochVectorTest, RejectsEpochZeroAndEmptyAppends) {
  EpochVector ev;
  EXPECT_THROW(ev.RecordAppend(kNoEpoch, 1), cubrick::CheckFailure);
  EXPECT_THROW(ev.RecordAppend(1, 0), cubrick::CheckFailure);
  EXPECT_THROW(ev.RecordDelete(kNoEpoch), cubrick::CheckFailure);
}

TEST(EpochVectorTest, DeleteBitDoesNotCorruptLargeIndexes) {
  EpochVector ev;
  ev.RecordAppend(1, (1ULL << 40));
  ev.RecordDelete(2);
  EXPECT_EQ(ev.entries()[1].index(), 1ULL << 40);
  EXPECT_TRUE(ev.entries()[1].is_delete());
  EXPECT_FALSE(ev.entries()[0].is_delete());
  EXPECT_EQ(ev.entries()[0].index(), (1ULL << 40) - 1);
}

TEST(EpochVectorTest, VersionBumpsOnEveryMutation) {
  EpochVector ev;
  EXPECT_EQ(ev.version(), 0u);
  ev.RecordAppend(3, 2);
  EXPECT_EQ(ev.version(), 1u);
  // Coalescing into the back entry is still a history change.
  ev.RecordAppend(3, 2);
  EXPECT_EQ(ev.version(), 2u);
  ev.RecordDelete(4);
  EXPECT_EQ(ev.version(), 3u);
  ev.InstallRebuilt(EpochVector());
  EXPECT_EQ(ev.version(), 4u);
}

TEST(EpochVectorTest, InstallRebuiltAdvancesVersionPastTheSource) {
  // The rebuilt history's own (lower) counter must never clobber the
  // target's: a cache keyed on the old version would otherwise serve a
  // pre-compaction bitmap for the compacted layout.
  EpochVector ev;
  for (int i = 1; i <= 5; ++i) ev.RecordAppend(static_cast<Epoch>(i), 1);
  const uint64_t before = ev.version();

  EpochVector rebuilt = EpochVector::FromRuns({{7, 0, 3, false}});
  EXPECT_LT(rebuilt.version(), before);
  ev.InstallRebuilt(rebuilt);
  EXPECT_GT(ev.version(), before);
  EXPECT_EQ(ev.ToString(), "[7:0-2]");
  EXPECT_EQ(ev.num_records(), 3u);
}

TEST(EpochVectorTest, MaxEpochTracksAppendsDeletesAndRebuilds) {
  EpochVector ev;
  EXPECT_TRUE(IsNoEpoch(ev.max_epoch()));
  ev.RecordAppend(5, 1);
  EXPECT_TRUE(SameEpoch(ev.max_epoch(), 5));
  ev.RecordAppend(2, 1);  // out-of-order arrival keeps the max
  EXPECT_TRUE(SameEpoch(ev.max_epoch(), 5));
  ev.RecordDelete(9);
  EXPECT_TRUE(SameEpoch(ev.max_epoch(), 9));

  // FromRuns installs append entries directly; max_epoch must still track.
  EpochVector rebuilt = EpochVector::FromRuns(
      {{4, 0, 2, false}, {6, 2, 3, false}, {6, 3, 3, true}});
  EXPECT_TRUE(SameEpoch(rebuilt.max_epoch(), 6));
  ev.InstallRebuilt(rebuilt);
  EXPECT_TRUE(SameEpoch(ev.max_epoch(), 6));
}

}  // namespace
}  // namespace cubrick::aosi
