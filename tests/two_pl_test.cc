// Tests for the lock manager (wait-die) and the 2PL baseline store.

#include "mvcc/two_pl_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mvcc/lock_manager.h"

namespace cubrick::mvcc {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 100, LockMode::kShared).ok());
  EXPECT_EQ(lm.NumLockedResources(), 1u);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.NumLockedResources(), 0u);
}

TEST(LockManagerTest, ExclusiveConflictsWithShared_WaitDie) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 7, LockMode::kShared).ok());
  // Younger transaction (id 2) wanting X dies instead of waiting.
  EXPECT_EQ(lm.Acquire(2, 7, LockMode::kExclusive).code(),
            StatusCode::kAborted);
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, OlderTransactionWaitsForYounger) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(5, 7, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  // Older transaction (id 2) is allowed to wait for younger holder (id 5).
  std::thread waiter([&] {
    ASSERT_TRUE(lm.Acquire(2, 7, LockMode::kExclusive).ok());
    acquired.store(true, std::memory_order_seq_cst);
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load(std::memory_order_seq_cst));
  lm.ReleaseAll(5);
  waiter.join();
  EXPECT_TRUE(acquired.load(std::memory_order_seq_cst));
}

TEST(LockManagerTest, ReentrantAcquire) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 3, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 3, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 3, LockMode::kShared).ok());
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, SoleHolderUpgrades) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 3, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 3, LockMode::kExclusive).ok());
  // Now exclusive: another shared request by a younger txn dies.
  EXPECT_EQ(lm.Acquire(9, 3, LockMode::kShared).code(), StatusCode::kAborted);
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, UpgradeBlockedByOtherReaderDies) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, 3, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, 3, LockMode::kShared).ok());
  // Txn 2 (younger) cannot upgrade while txn 1 holds S -> dies.
  EXPECT_EQ(lm.Acquire(2, 3, LockMode::kExclusive).code(),
            StatusCode::kAborted);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(TwoPLStoreTest, InsertAndScan) {
  TwoPLStore store(2, 4);
  TplTxn t = store.Begin();
  ASSERT_TRUE(store.Insert(&t, {1, 10}).ok());
  ASSERT_TRUE(store.Insert(&t, {2, 20}).ok());
  ASSERT_TRUE(store.Insert(&t, {3, 30}).ok());
  auto sum = store.ScanSum(&t, 1);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 60);
  ASSERT_TRUE(store.Commit(&t).ok());
  EXPECT_EQ(store.num_rows(), 3u);
}

TEST(TwoPLStoreTest, AbortUndoesInserts) {
  TwoPLStore store(1, 2);
  TplTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {5}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());

  TplTxn t = store.Begin();
  ASSERT_TRUE(store.Insert(&t, {7}).ok());
  ASSERT_TRUE(store.Insert(&t, {9}).ok());
  ASSERT_TRUE(store.Abort(&t).ok());
  EXPECT_EQ(store.num_rows(), 1u);
  TplTxn reader = store.Begin();
  EXPECT_EQ(store.ScanSum(&reader, 0).value(), 5);
  ASSERT_TRUE(store.Commit(&reader).ok());
}

TEST(TwoPLStoreTest, AbortUndoesDeletes) {
  TwoPLStore store(1, 2);
  TplTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {4}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());

  TplTxn t = store.Begin();
  const uint64_t part = 4 % 2;
  ASSERT_TRUE(store.Delete(&t, part, 0).ok());
  EXPECT_EQ(store.ScanSum(&t, 0).value(), 0);
  ASSERT_TRUE(store.Abort(&t).ok());
  TplTxn reader = store.Begin();
  EXPECT_EQ(store.ScanSum(&reader, 0).value(), 4);
  ASSERT_TRUE(store.Commit(&reader).ok());
}

TEST(TwoPLStoreTest, WriterBlocksYoungerReader) {
  TwoPLStore store(1, 1);
  TplTxn writer = store.Begin();  // id 1
  ASSERT_TRUE(store.Insert(&writer, {1}).ok());
  // A younger reader needs S on partition 0 and must die under wait-die.
  TplTxn reader = store.Begin();  // id 2
  EXPECT_EQ(store.ScanSum(&reader, 0).status().code(), StatusCode::kAborted);
  ASSERT_TRUE(store.Commit(&writer).ok());
  ASSERT_TRUE(store.Abort(&reader).ok());
  // After the writer released, a fresh reader proceeds.
  TplTxn reader2 = store.Begin();
  EXPECT_EQ(store.ScanSum(&reader2, 0).value(), 1);
  ASSERT_TRUE(store.Commit(&reader2).ok());
}

TEST(TwoPLStoreTest, DoubleDeleteRejected) {
  TwoPLStore store(1, 1);
  TplTxn setup = store.Begin();
  ASSERT_TRUE(store.Insert(&setup, {3}).ok());
  ASSERT_TRUE(store.Commit(&setup).ok());
  TplTxn t = store.Begin();
  ASSERT_TRUE(store.Delete(&t, 0, 0).ok());
  EXPECT_EQ(store.Delete(&t, 0, 0).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.Commit(&t).ok());
}

TEST(TwoPLStoreTest, ConcurrentWritersSerializeViaLocks) {
  TwoPLStore store(1, 1);
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        TplTxn txn = store.Begin();
        if (store.Insert(&txn, {1}).ok()) {
          ASSERT_TRUE(store.Commit(&txn).ok());
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_TRUE(store.Abort(&txn).ok());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.num_rows(), static_cast<uint64_t>(committed.load(std::memory_order_relaxed)));
  TplTxn reader = store.Begin();
  EXPECT_EQ(store.ScanSum(&reader, 0).value(), committed.load(std::memory_order_relaxed));
  ASSERT_TRUE(store.Commit(&reader).ok());
}

}  // namespace
}  // namespace cubrick::mvcc
