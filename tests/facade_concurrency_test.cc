// Facade-level concurrency hardening: many client threads driving the full
// Database API (loads, queries, deletes, explicit txns, checkpoints) at
// once, plus cluster behavior under non-zero simulated message latency.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "cluster/cluster.h"
#include "common/random.h"
#include "cubrick/database.h"

namespace cubrick {
namespace {

TEST(FacadeConcurrencyTest, MixedWorkloadManyThreads) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "cubrick_facade_conc";
  fs::remove_all(dir);
  fs::create_directories(dir);

  DatabaseOptions options;
  options.shards_per_cube = 2;
  options.threaded_shards = true;
  options.data_dir = dir.string();
  options.rollback_index = true;
  Database db(options);
  ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE t ("
                            "bucket int CARDINALITY 32 RANGE 4, v int)")
                  .ok());

  std::atomic<bool> failed{false};
  std::atomic<uint64_t> committed_batches{0};
  constexpr uint64_t kBatch = 50;
  constexpr int kWriters = 3;
  constexpr int kBatchesPerWriter = 30;

  std::vector<std::thread> threads;
  // Writers: implicit and explicit transactions, some aborted.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Random rng(500 + static_cast<uint64_t>(w));
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        std::vector<Record> rows;
        for (uint64_t i = 0; i < kBatch; ++i) {
          rows.push_back({static_cast<int64_t>(rng.Uniform(32)), 1});
        }
        if (rng.OneIn(4)) {
          aosi::Txn txn = db.Begin();
          if (!db.LoadIn(txn, "t", rows).ok()) failed.store(true, std::memory_order_seq_cst);
          if (rng.OneIn(3)) {
            if (!db.Rollback(txn).ok()) failed.store(true, std::memory_order_seq_cst);
          } else {
            if (!db.Commit(txn).ok()) failed.store(true, std::memory_order_seq_cst);
            committed_batches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (!db.Load("t", rows).ok()) failed.store(true, std::memory_order_seq_cst);
          committed_batches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Readers: whole-batch visibility must hold continuously.
  std::atomic<bool> stop_readers{false};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      Query q;
      q.aggs = {{AggSpec::Fn::kCount, 0}};
      while (!stop_readers.load(std::memory_order_seq_cst)) {
        auto result = db.Query("t", q);
        if (!result.ok()) {
          failed.store(true, std::memory_order_seq_cst);
          return;
        }
        const auto count =
            static_cast<uint64_t>(result->Single(0, AggSpec::Fn::kCount));
        if (count % kBatch != 0) {
          failed.store(true, std::memory_order_seq_cst);
          return;
        }
      }
    });
  }
  // Maintenance: periodic checkpoints while everything runs.
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (!db.Checkpoint().ok()) failed.store(true, std::memory_order_seq_cst);
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop_readers.store(true, std::memory_order_seq_cst);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_FALSE(failed.load(std::memory_order_seq_cst));
  Query q;
  q.aggs = {{AggSpec::Fn::kCount, 0}};
  EXPECT_DOUBLE_EQ(db.Query("t", q)->Single(0, AggSpec::Fn::kCount),
                   static_cast<double>(committed_batches.load(std::memory_order_relaxed) * kBatch));
  fs::remove_all(dir);
}

TEST(LatencyClusterTest, ProtocolCorrectUnderSimulatedNetworkDelay) {
  cluster::ClusterOptions options;
  options.num_nodes = 3;
  options.message_latency_us = 100;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .CreateCube("t", {{"k", 16, 2, false}},
                              {{"v", DataType::kInt64}})
                  .ok());
  // Concurrent transactions from different coordinators with real wire
  // delay between every message.
  std::vector<std::thread> clients;
  std::atomic<int64_t> committed_sum{0};
  std::atomic<bool> failed{false};
  for (uint32_t c = 1; c <= 3; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 5; ++i) {
        auto txn = cluster.BeginReadWrite(c);
        if (!txn.ok()) {
          failed.store(true, std::memory_order_seq_cst);
          return;
        }
        const int64_t v = static_cast<int64_t>(c * 100 + i);
        if (!cluster.Append(&*txn, "t", {{static_cast<int64_t>(c), v}})
                 .ok() ||
            !cluster.Commit(&*txn).ok()) {
          failed.store(true, std::memory_order_seq_cst);
          return;
        }
        committed_sum.fetch_add(v, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_FALSE(failed.load(std::memory_order_seq_cst));
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  for (uint32_t n = 1; n <= 3; ++n) {
    auto result = cluster.QueryOnce(n, "t", q);
    EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum),
                     static_cast<double>(committed_sum.load(std::memory_order_relaxed)));
  }
  // Clocks stayed strided despite delayed gossip.
  for (uint32_t n = 1; n <= 3; ++n) {
    EXPECT_EQ(cluster.node(n).txns().EC() % 3, n % 3);
  }
}

}  // namespace
}  // namespace cubrick
