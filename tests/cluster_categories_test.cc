// §IV-C fidelity: after transaction i's begin broadcast, every transaction
// j in the system falls into exactly one of five categories. One test per
// category, constructing the situation explicitly and verifying the stated
// visibility outcome.

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace cubrick::cluster {
namespace {

class CategoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_nodes = 3;
    cluster_ = std::make_unique<Cluster>(options);
    ASSERT_TRUE(cluster_
                    ->CreateCube("c", {{"k", 8, 1, false}},
                                 {{"v", DataType::kInt64}})
                    .ok());
  }

  double SumFor(DistTxn* txn) {
    cubrick::Query q;
    q.aggs = {{AggSpec::Fn::kSum, 0}};
    auto result = cluster_->Query(txn, "c", q);
    EXPECT_TRUE(result.ok());
    return result->Single(0, AggSpec::Fn::kSum);
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(CategoryTest, Committed_And_Newer_InvisibleByTimestampOrder) {
  // "If j is committed ... and j > i, j is not visible to i due to
  // timestamp ordering."
  auto i = cluster_->BeginReadWrite(1);
  ASSERT_TRUE(i.ok());
  auto j = cluster_->BeginReadWrite(2);
  ASSERT_TRUE(j.ok());
  ASSERT_GT(j->txn.epoch, i->txn.epoch);
  ASSERT_TRUE(cluster_->Append(&*j, "c", {{0, 5}}).ok());
  ASSERT_TRUE(cluster_->Commit(&*j).ok());
  EXPECT_DOUBLE_EQ(SumFor(&*i), 0.0);
  ASSERT_TRUE(cluster_->Commit(&*i).ok());
}

TEST_F(CategoryTest, Committed_And_Older_Visible) {
  // "If j is committed ... and j < i, j is visible to i."
  auto j = cluster_->BeginReadWrite(3);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(cluster_->Append(&*j, "c", {{0, 7}}).ok());
  ASSERT_TRUE(cluster_->Commit(&*j).ok());
  auto i = cluster_->BeginReadWrite(1);
  ASSERT_TRUE(i.ok());
  ASSERT_GT(i->txn.epoch, j->txn.epoch);
  EXPECT_FALSE(i->txn.deps.Contains(j->txn.epoch));
  EXPECT_DOUBLE_EQ(SumFor(&*i), 7.0);
  ASSERT_TRUE(cluster_->Commit(&*i).ok());
}

TEST_F(CategoryTest, Pending_And_Newer_InvisibleByTimestampOrder) {
  // "If j is pending and j > i, j is not visible because of timestamp
  // ordering."
  auto i = cluster_->BeginReadWrite(1);
  ASSERT_TRUE(i.ok());
  auto j = cluster_->BeginReadWrite(2);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(cluster_->Append(&*j, "c", {{0, 9}}).ok());
  EXPECT_DOUBLE_EQ(SumFor(&*i), 0.0);
  ASSERT_TRUE(cluster_->Commit(&*j).ok());
  ASSERT_TRUE(cluster_->Commit(&*i).ok());
}

TEST_F(CategoryTest, Pending_And_Older_CapturedInDeps) {
  // "If j is pending and j < i then at least one node will have j in its
  // pendingTxs set, and therefore T_i.deps will contain j."
  auto j = cluster_->BeginReadWrite(2);  // pending, on node 2
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(cluster_->Append(&*j, "c", {{0, 11}}).ok());
  auto i = cluster_->BeginReadWrite(3);  // begins later, elsewhere
  ASSERT_TRUE(i.ok());
  ASSERT_GT(i->txn.epoch, j->txn.epoch);
  EXPECT_TRUE(i->txn.deps.Contains(j->txn.epoch))
      << "begin broadcast failed to union node 2's pendingTxs";
  EXPECT_DOUBLE_EQ(SumFor(&*i), 0.0);
  // Even after j commits mid-flight, i's snapshot stays stable.
  ASSERT_TRUE(cluster_->Commit(&*j).ok());
  EXPECT_DOUBLE_EQ(SumFor(&*i), 0.0);
  ASSERT_TRUE(cluster_->Commit(&*i).ok());
}

TEST_F(CategoryTest, YetToBeInitialized_GuaranteedNewer) {
  // "If j is yet to be initialized, then it is guaranteed that j > i,
  // since all nodes' EC were updated to a number larger than i."
  auto i = cluster_->BeginReadWrite(1);
  ASSERT_TRUE(i.ok());
  for (uint32_t n = 1; n <= 3; ++n) {
    EXPECT_GT(cluster_->node(n).txns().EC(), i->txn.epoch);
  }
  // Any j started now, anywhere, is newer:
  for (uint32_t n = 1; n <= 3; ++n) {
    auto j = cluster_->BeginReadWrite(n);
    ASSERT_TRUE(j.ok());
    EXPECT_GT(j->txn.epoch, i->txn.epoch);
    ASSERT_TRUE(cluster_->Rollback(&*j).ok());
  }
  ASSERT_TRUE(cluster_->Commit(&*i).ok());
}

TEST_F(CategoryTest, CommittedInOneNodeMeansFinishedEverywhere) {
  // The §IV-C note behind category 2: "j is guaranteed to be finished
  // since it is already committed in at least one node and the fact that
  // commits are deterministic." After the (synchronous) commit broadcast,
  // every node agrees on j's state.
  auto j = cluster_->BeginReadWrite(2);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(cluster_->Append(&*j, "c", {{0, 13}}).ok());
  ASSERT_TRUE(cluster_->Commit(&*j).ok());
  for (uint32_t n = 1; n <= 3; ++n) {
    EXPECT_FALSE(cluster_->node(n).txns().PendingTxs().Contains(j->txn.epoch))
        << "node " << n << " still considers j pending";
    EXPECT_GE(cluster_->node(n).txns().LCE(), j->txn.epoch);
  }
}

}  // namespace
}  // namespace cubrick::cluster
