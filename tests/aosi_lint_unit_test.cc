// Unit tests for the aosi_lint library: lexer, per-file model extraction,
// call-graph resolution, the whole-program passes, and the reporters.
//
// The lock-cycle tests load the real two-TU inversion fixture from
// tests/lint_fixtures/program/ so the fixture and the analysis cannot drift
// apart; everything else builds models from in-memory strings via
// LoadFromString. The SARIF tests include a minimal JSON parser so the
// output is structurally validated against what the 2.1.0 schema requires,
// not just substring-matched.

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aosi_lint/lexer.h"
#include "aosi_lint/model.h"
#include "aosi_lint/program.h"
#include "aosi_lint/report.h"
#include "aosi_lint/rules.h"

namespace aosilint {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

FileModel ModelOf(const std::string& src, const std::string& rel) {
  SourceFile f;
  LoadFromString(src, rel, &f);
  return ExtractModel(f);
}

ProgramModel ProgramOf(
    const std::vector<std::pair<std::string, std::string>>& rel_and_src) {
  std::vector<FileModel> models;
  models.reserve(rel_and_src.size());
  for (const auto& [rel, src] : rel_and_src) {
    models.push_back(ModelOf(src, rel));
  }
  return ProgramModel(std::move(models));
}

std::vector<Finding> OfRule(const std::vector<Finding>& findings,
                            const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

const FunctionModel* FindFn(const ProgramModel& pm, const std::string& cls,
                            const std::string& name) {
  for (const FileModel& fm : pm.files()) {
    for (const FunctionModel& fn : fm.functions) {
      if (fn.cls == cls && fn.name == name) return &fn;
    }
  }
  return nullptr;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Loads every source in a tests/lint_fixtures/program/<name>/ directory the
// same way --selftest does (the aosi-lint-as directive supplies the rel).
std::vector<FileModel> LoadProgramFixture(const std::string& name,
                                          const std::vector<std::string>& files) {
  std::vector<FileModel> models;
  for (const std::string& file : files) {
    const std::string path =
        std::string(CUBRICK_LINT_FIXTURE_DIR) + "/program/" + name + "/" + file;
    SourceFile f;
    std::string raw;
    EXPECT_TRUE(LoadFile(path, file, &f, &raw)) << "missing fixture " << path;
    models.push_back(ExtractModel(f));
  }
  return models;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, StripCommentsPreservesLineNumbers) {
  const std::string src =
      "int a; // trailing comment\n"
      "/* block\n"
      "   spanning lines */ int b;\n"
      "int c;\n";
  const std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  const std::vector<Token> toks = Lex(stripped);
  ASSERT_GE(toks.size(), 9u);
  // `b` is declared on line 3 despite the comment opening on line 2.
  bool saw_b = false;
  for (const Token& t : toks) {
    if (t.text == "b") {
      EXPECT_EQ(t.line, 3);
      saw_b = true;
    }
    if (t.text == "c") {
      EXPECT_EQ(t.line, 4);
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(Lexer, StringContentsNeverTokenize) {
  const std::string stripped = StripCommentsAndStrings(
      "x = \"MutexLock // not code\"; y = R\"(Wait()\")\"; z = 'M';");
  const std::vector<Token> toks = Lex(stripped);
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "MutexLock");
    EXPECT_NE(t.text, "Wait");
  }
}

TEST(Lexer, MaximalMunchPunctuators) {
  const std::vector<Token> toks = Lex("a->b(x); c <<= 2; d::e();");
  std::vector<std::string> punct;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kPunct) punct.push_back(t.text);
  }
  EXPECT_NE(std::find(punct.begin(), punct.end(), "->"), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), "<<="), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), "::"), punct.end());
}

TEST(Lexer, TemplateAnglesDistinguishedFromComparisons) {
  const std::vector<Token> toks = Lex("std::map<Epoch, int> m; if (a < b) f();");
  const std::vector<bool> is_template = MarkTemplateAngles(toks);
  ASSERT_EQ(is_template.size(), toks.size());
  int seen = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "<") continue;
    ++seen;
    if (seen == 1) {
      EXPECT_TRUE(is_template[i]) << "map<...> must mark as template";
    } else {
      EXPECT_FALSE(is_template[i]) << "a < b must stay a comparison";
    }
  }
  EXPECT_EQ(seen, 2);
}

// ---------------------------------------------------------------------------
// Per-file model extraction
// ---------------------------------------------------------------------------

TEST(Model, MutexDeclarationsAreScopedByClass) {
  const FileModel fm = ModelOf(
      "class TxnManager { Mutex mutex_; };\n"
      "class Registry { Mutex mutex_; SharedMutex table_mutex_; };\n"
      "Mutex global_mu;\n",
      "src/aosi/txn_manager.h");
  ASSERT_EQ(fm.mutex_decls.count("TxnManager"), 1u);
  EXPECT_EQ(fm.mutex_decls.at("TxnManager").count("mutex_"), 1u);
  EXPECT_EQ(fm.mutex_decls.at("Registry").count("table_mutex_"), 1u);
  EXPECT_EQ(fm.mutex_decls.at("").count("global_mu"), 1u);
}

TEST(Model, MemberParamAndLocalTypesAreRecorded) {
  const FileModel fm = ModelOf(
      "class Runner {\n"
      " public:\n"
      "  void Go(Table* table, const Query& q);\n"
      " private:\n"
      "  Database* db_;\n"
      "  std::unique_ptr<FlushManager> flusher_;\n"
      "};\n"
      "void Runner::Go(Table* table, const Query& q) {\n"
      "  BessColumn out = table->EmptyLike();\n"
      "  out.Reserve(q.limit);\n"
      "}\n",
      "src/engine/runner.cc");
  ASSERT_EQ(fm.member_types.count("Runner"), 1u);
  EXPECT_EQ(fm.member_types.at("Runner").at("db_"), "Database");
  // Smart pointers record the pointee: calls through flusher_ dispatch to
  // FlushManager.
  EXPECT_EQ(fm.member_types.at("Runner").at("flusher_"), "FlushManager");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& fn = fm.functions[0];
  EXPECT_EQ(fn.Qualified(), "Runner::Go");
  EXPECT_EQ(fn.local_types.at("table"), "Table");
  EXPECT_EQ(fn.local_types.at("q"), "Query");
  EXPECT_EQ(fn.local_types.at("out"), "BessColumn");
}

TEST(Model, AcquireOrderAndHeldSets) {
  const FileModel fm = ModelOf(
      "class Node { Mutex a_; Mutex b_; void Step(); };\n"
      "void Node::Step() {\n"
      "  MutexLock la(a_);\n"
      "  MutexLock lb(b_);\n"
      "  Work();\n"
      "}\n",
      "src/cluster/node.cc");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& fn = fm.functions[0];
  ASSERT_EQ(fn.acquires.size(), 2u);
  EXPECT_TRUE(fn.acquires[0].held_before.empty());
  ASSERT_EQ(fn.acquires[1].held_before.size(), 1u);
  EXPECT_EQ(fn.acquires[1].held_before[0], "a_");  // resolved by ProgramModel
  ASSERT_EQ(fn.calls.size(), 1u);
  EXPECT_EQ(fn.calls[0].name, "Work");
  EXPECT_EQ(fn.calls[0].held.size(), 2u);
}

TEST(Model, ManualLockUnlockTracksHeldSpan) {
  const FileModel fm = ModelOf(
      "class Node { Mutex mu_; void Step(); };\n"
      "void Node::Step() {\n"
      "  mu_.Lock();\n"
      "  Inside();\n"
      "  mu_.Unlock();\n"
      "  Outside();\n"
      "}\n",
      "src/cluster/node.cc");
  ASSERT_EQ(fm.functions.size(), 1u);
  const FunctionModel& fn = fm.functions[0];
  ASSERT_EQ(fn.calls.size(), 2u);
  EXPECT_EQ(fn.calls[0].name, "Inside");
  EXPECT_EQ(fn.calls[0].held.size(), 1u);
  EXPECT_EQ(fn.calls[1].name, "Outside");
  EXPECT_TRUE(fn.calls[1].held.empty());
}

TEST(Model, ScopeExitReleasesRaiiLocks) {
  const FileModel fm = ModelOf(
      "class Node { Mutex mu_; void Step(); };\n"
      "void Node::Step() {\n"
      "  {\n"
      "    MutexLock lock(mu_);\n"
      "    Inside();\n"
      "  }\n"
      "  Outside();\n"
      "}\n",
      "src/cluster/node.cc");
  const FunctionModel& fn = fm.functions[0];
  ASSERT_EQ(fn.calls.size(), 2u);
  EXPECT_EQ(fn.calls[0].held.size(), 1u);
  EXPECT_TRUE(fn.calls[1].held.empty());
}

TEST(Model, OutOfLineDefinitionTakesClassFromQualifier) {
  const FileModel fm = ModelOf(
      "void Database::Checkpoint() { Flush(); }\n", "src/cubrick/database.cc");
  ASSERT_EQ(fm.functions.size(), 1u);
  EXPECT_EQ(fm.functions[0].cls, "Database");
  EXPECT_EQ(fm.functions[0].Qualified(), "Database::Checkpoint");
}

// ---------------------------------------------------------------------------
// Program merge + call-graph resolution
// ---------------------------------------------------------------------------

TEST(Program, RequiresDeclarationCoversOutOfLineDefinition) {
  ProgramModel pm = ProgramOf({
      {"src/aosi/txn_manager.h",
       "class TxnManager {\n"
       "  void AdvanceLocked() REQUIRES(mutex_);\n"
       "  Mutex mutex_;\n"
       "};\n"},
      {"src/aosi/txn_manager.cc",
       "void TxnManager::AdvanceLocked() { Tick(); }\n"},
  });
  const FunctionModel* fn = FindFn(pm, "TxnManager", "AdvanceLocked");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->requires_entry.size(), 1u);
  EXPECT_EQ(fn->requires_entry[0], "TxnManager::mutex_");
  // The declared lock is part of the held-set at every call in the body.
  ASSERT_EQ(fn->calls.size(), 1u);
  ASSERT_EQ(fn->calls[0].held.size(), 1u);
  EXPECT_EQ(fn->calls[0].held[0], "TxnManager::mutex_");
}

TEST(Program, MemberCallResolvesThroughDeclaredReceiverType) {
  // Two unrelated classes both define Run(); only the receiver's declared
  // type may decide which one a call reaches.
  ProgramModel pm = ProgramOf({
      {"src/engine/a.cc",
       "class AlphaRunner { public: void Run(); };\n"
       "void AlphaRunner::Run() { AlphaWork(); }\n"},
      {"src/engine/b.cc",
       "class BetaRunner { public: void Run(); };\n"
       "void BetaRunner::Run() { BetaWork(); }\n"},
      {"src/engine/c.cc",
       "class Driver { public: void Drive(); BetaRunner* runner_; };\n"
       "void Driver::Drive() { runner_->Run(); untyped->Run(); }\n"},
  });
  const FunctionModel* drive = FindFn(pm, "Driver", "Drive");
  ASSERT_NE(drive, nullptr);
  ASSERT_EQ(drive->calls.size(), 2u);

  const auto typed = pm.ResolveCall(*drive, drive->calls[0]);
  ASSERT_EQ(typed.size(), 1u);
  EXPECT_EQ(typed[0]->Qualified(), "BetaRunner::Run");

  // An untyped receiver with an ambiguous method name resolves to nothing:
  // guessing would alias unrelated classes into the lock graph.
  EXPECT_TRUE(pm.ResolveCall(*drive, drive->calls[1]).empty());
}

TEST(Program, KnownTypeWithoutTheMethodYieldsNoEdge) {
  ProgramModel pm = ProgramOf({
      {"src/engine/a.cc",
       "class OnlyHere { public: void Push(); };\n"
       "void OnlyHere::Push() { Deep(); }\n"},
      {"src/engine/c.cc",
       "class Driver { public: void Drive(); std::vector<int>* items_; "
       "Widget* widget_; };\n"
       "void Driver::Drive() { widget_->Push(); }\n"},
  });
  const FunctionModel* drive = FindFn(pm, "Driver", "Drive");
  ASSERT_NE(drive, nullptr);
  // Push is program-unique, but widget_ has a known type (Widget) that does
  // not define it — the call must NOT fall back to the bare name.
  ASSERT_EQ(drive->calls.size(), 1u);
  EXPECT_TRUE(pm.ResolveCall(*drive, drive->calls[0]).empty());
}

// ---------------------------------------------------------------------------
// Pass 1: lock-order cycles (the seeded two-TU inversion fixture)
// ---------------------------------------------------------------------------

TEST(Program, LockCycleDetectedWithTwoFileWitness) {
  ProgramModel pm(LoadProgramFixture(
      "bad_lock_cycle", {"alpha_service.cc", "beta_service.cc"}));
  const std::vector<Finding> cycles = OfRule(CheckLockCycles(pm), "lock-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  const Finding& f = cycles[0];
  EXPECT_NE(f.message.find("potential deadlock"), std::string::npos);
  EXPECT_NE(f.message.find("alpha_mu_"), std::string::npos);
  EXPECT_NE(f.message.find("beta_mu_"), std::string::npos);

  // Acceptance criterion: the witness path spans both translation units.
  std::set<std::string> witness_files;
  for (const Finding::Site& s : f.related) witness_files.insert(s.file);
  EXPECT_GE(witness_files.size(), 2u);
  bool saw_alpha = false;
  bool saw_beta = false;
  for (const std::string& file : witness_files) {
    if (file.find("alpha_service.cc") != std::string::npos) saw_alpha = true;
    if (file.find("beta_service.cc") != std::string::npos) saw_beta = true;
  }
  EXPECT_TRUE(saw_alpha) << "witness must include the alpha TU";
  EXPECT_TRUE(saw_beta) << "witness must include the beta TU";
}

TEST(Program, ConsistentLockOrderHasNoCycle) {
  ProgramModel pm(LoadProgramFixture(
      "good_lock_cycle", {"alpha_service.cc", "beta_service.cc"}));
  EXPECT_TRUE(OfRule(CheckLockCycles(pm), "lock-cycle").empty());
}

// ---------------------------------------------------------------------------
// Pass 2: hold-across-blocking
// ---------------------------------------------------------------------------

TEST(Program, HoldAcrossBlockingDirectAndTransitive) {
  ProgramModel pm = ProgramOf({
      {"src/engine/pool.cc",
       "class WorkPool { public: void Flush(); TaskGroup group_; Mutex mu_; };\n"
       "void WorkPool::Flush() {\n"
       "  MutexLock lock(mu_);\n"
       "  group_.Wait();\n"
       "}\n"},
      {"src/engine/flow.cc",
       "class Flow { public: void Submit(); WorkPool* pool_; Mutex fmu_; };\n"
       "void Flow::Submit() {\n"
       "  MutexLock lock(fmu_);\n"
       "  pool_->Flush();\n"
       "}\n"},
  });
  const std::vector<Finding> hits =
      OfRule(CheckHoldAcrossBlocking(pm), "hold-across-blocking");
  ASSERT_EQ(hits.size(), 2u);
  // The transitive finding (Submit -> Flush -> Wait) carries the call chain
  // as its witness.
  bool saw_transitive = false;
  for (const Finding& f : hits) {
    if (f.message.find("Flow::Submit") == std::string::npos) continue;
    saw_transitive = true;
    ASSERT_FALSE(f.related.empty());
    EXPECT_NE(f.related.back().note.find("blocks in Wait"), std::string::npos);
  }
  EXPECT_TRUE(saw_transitive);
}

TEST(Program, CondVarWaitUnderItsOwnLockIsExempt) {
  ProgramModel pm = ProgramOf({
      {"src/engine/pool.cc",
       "class WorkPool { public: void Await(); Mutex mu_; CondVar cv_; bool "
       "ready_; };\n"
       "void WorkPool::Await() {\n"
       "  MutexLock lock(mu_);\n"
       "  while (!ready_) cv_.Wait(lock);\n"
       "}\n"},
  });
  EXPECT_TRUE(
      OfRule(CheckHoldAcrossBlocking(pm), "hold-across-blocking").empty());
}

TEST(Program, CondVarWaitUnderTwoLocksIsFlagged) {
  ProgramModel pm = ProgramOf({
      {"src/engine/pool.cc",
       "class WorkPool { public: void Await(); Mutex a_; Mutex b_; CondVar "
       "cv_; };\n"
       "void WorkPool::Await() {\n"
       "  MutexLock la(a_);\n"
       "  MutexLock lb(b_);\n"
       "  cv_.Wait(lb);\n"
       "}\n"},
  });
  // The wait releases only b_ — a_ stays held for the whole sleep.
  EXPECT_EQ(
      OfRule(CheckHoldAcrossBlocking(pm), "hold-across-blocking").size(), 1u);
}

TEST(Program, WaiverAtTheBlockingCallSuppressesTheFinding) {
  ProgramModel pm = ProgramOf({
      {"src/engine/pool.cc",
       "class WorkPool { public: void Flush(); TaskGroup group_; Mutex mu_; };\n"
       "void WorkPool::Flush() {\n"
       "  MutexLock lock(mu_);\n"
       "  group_.Wait();  // aosi-lint: " "allow(hold-across-blocking)\n"
       "}\n"},
  });
  EXPECT_TRUE(
      OfRule(CheckHoldAcrossBlocking(pm), "hold-across-blocking").empty());
}

// ---------------------------------------------------------------------------
// Passes 3 and 4: protocol state machines
// ---------------------------------------------------------------------------

TEST(Program, VisCachePublishNeedsVersionedKeyBuild) {
  ProgramModel bad = ProgramOf({
      {"src/query/exec.cc",
       "class Exec { public: void Cache(); VisibilityCache* cache_; };\n"
       "void Exec::Cache() { cache_->Publish(id_, bits_); }\n"},
  });
  EXPECT_EQ(OfRule(CheckVisCacheProtocol(bad), "vis-cache-protocol").size(),
            1u);

  ProgramModel good = ProgramOf({
      {"src/query/exec.cc",
       "class Exec { public: void Cache(); VisibilityCache* cache_; };\n"
       "void Exec::Cache() {\n"
       "  const auto key = cache_->MakeKey(id_, horizon_);\n"
       "  cache_->Publish(key, bits_);\n"
       "}\n"},
  });
  EXPECT_TRUE(OfRule(CheckVisCacheProtocol(good), "vis-cache-protocol").empty());
}

TEST(Program, StorageHistoryMutationNeedsCacheClear) {
  ProgramModel bad = ProgramOf({
      {"src/storage/brick.cc",
       "class Brick { public: void Apply(); EpochHistory* history_; "
       "VisibilityCache* vis_; };\n"
       "void Brick::Apply() { history_->RecordAppend(e_, n_); }\n"},
  });
  EXPECT_EQ(OfRule(CheckVisCacheProtocol(bad), "vis-cache-protocol").size(),
            1u);

  ProgramModel good = ProgramOf({
      {"src/storage/brick.cc",
       "class Brick { public: void Apply(); EpochHistory* history_; "
       "VisibilityCache* vis_; };\n"
       "void Brick::Apply() {\n"
       "  history_->RecordAppend(e_, n_);\n"
       "  vis_->Clear();\n"
       "}\n"},
  });
  EXPECT_TRUE(OfRule(CheckVisCacheProtocol(good), "vis-cache-protocol").empty());
}

TEST(Program, CheckerHookCallsStayBehindTheGate) {
  ProgramModel bad = ProgramOf({
      {"src/engine/commit.cc",
       "class Commit { public: void Finish(); CheckerHook* hook_; };\n"
       "void Commit::Finish() { hook_->OnFinish(e_, true); }\n"},
  });
  EXPECT_EQ(OfRule(CheckCheckerHookGate(bad), "checker-hook-gate").size(), 1u);

  ProgramModel good = ProgramOf({
      {"src/engine/commit.cc",
       "class Commit { public: void Finish(); };\n"
       "void Commit::Finish() {\n"
       "  if (CheckerHook* hook = GetCheckerHook()) hook->OnFinish(e_, true);\n"
       "}\n"},
  });
  EXPECT_TRUE(OfRule(CheckCheckerHookGate(good), "checker-hook-gate").empty());

  // The checker's own implementation is exempt.
  ProgramModel self = ProgramOf({
      {"src/check/online_checker.cc",
       "class OnlineChecker { public: void Run(); CheckerHook* hook_; };\n"
       "void OnlineChecker::Run() { hook_->OnFinish(e_, true); }\n"},
  });
  EXPECT_TRUE(OfRule(CheckCheckerHookGate(self), "checker-hook-gate").empty());
}

TEST(Program, EbrProtectedReadNeedsDominatingGuard) {
  ProgramModel bad = ProgramOf({
      {"src/query/scan.cc",
       "class Scan { public: void Run(); VisibilityCache* cache_; };\n"
       "void Scan::Run() { const void* b = cache_->Lookup(k_); (void)b; }\n"},
  });
  EXPECT_EQ(OfRule(CheckEbrGuard(bad), "ebr-guard").size(), 1u);

  ProgramModel good = ProgramOf({
      {"src/query/scan.cc",
       "class Scan { public: void Run(); VisibilityCache* cache_; };\n"
       "void Scan::Run() {\n"
       "  const ebr::Guard guard;\n"
       "  const void* b = cache_->Lookup(k_); (void)b;\n"
       "}\n"},
  });
  EXPECT_TRUE(OfRule(CheckEbrGuard(good), "ebr-guard").empty());

  // A guard AFTER the call does not dominate it.
  ProgramModel late = ProgramOf({
      {"src/query/scan.cc",
       "class Scan { public: void Run(); VisibilityCache* cache_; };\n"
       "void Scan::Run() {\n"
       "  const void* b = cache_->Lookup(k_); (void)b;\n"
       "  const ebr::Guard guard;\n"
       "}\n"},
  });
  EXPECT_EQ(OfRule(CheckEbrGuard(late), "ebr-guard").size(), 1u);
}

TEST(Program, EbrRawDeleteOfManagedTypeFlaggedUnlessMarked) {
  ProgramModel bad = ProgramOf({
      {"src/engine/purge.cc",
       "void Drop(void* slot) {\n"
       "  Entry* victim = static_cast<Entry*>(slot);\n"
       "  delete victim;\n"
       "}\n"},
  });
  EXPECT_EQ(OfRule(CheckEbrGuard(bad), "ebr-guard").size(), 1u);

  // The deleter-comment marker makes the free legal (the EBR deleter
  // itself must be able to call delete).
  const std::string marker = std::string("// ebr-") + "deleter";
  ProgramModel marked = ProgramOf({
      {"src/engine/purge.cc",
       "void Drop(void* slot) {\n"
       "  Entry* victim = static_cast<Entry*>(slot);\n"
       "  delete victim;  " + marker + "\n"
       "}\n"},
  });
  EXPECT_TRUE(OfRule(CheckEbrGuard(marked), "ebr-guard").empty());

  // Unmanaged types are not the reclamation pass's business.
  ProgramModel other = ProgramOf({
      {"src/engine/purge.cc",
       "void Drop(void* slot) {\n"
       "  Buffer* victim = static_cast<Buffer*>(slot);\n"
       "  delete victim;\n"
       "}\n"},
  });
  EXPECT_TRUE(OfRule(CheckEbrGuard(other), "ebr-guard").empty());

  // The EBR implementation itself is exempt.
  ProgramModel self = ProgramOf({
      {"src/common/ebr.cc",
       "void Drop(void* slot) {\n"
       "  Entry* victim = static_cast<Entry*>(slot);\n"
       "  delete victim;\n"
       "}\n"},
  });
  EXPECT_TRUE(OfRule(CheckEbrGuard(self), "ebr-guard").empty());
}

TEST(FileRules, SimdIsolationKeepsIntrinsicsInTheSimdImpl) {
  auto simd_findings = [](const std::string& src, const std::string& rel) {
    SourceFile f;
    LoadFromString(src, rel, &f);
    std::set<std::string> atomics;
    std::set<const Token*> decls;
    CollectAtomicNames(f, &atomics, &decls);
    std::vector<Finding> findings;
    LintFile(f, atomics, decls, &findings);
    return OfRule(findings, "simd-isolation");
  };
  const std::string open_coded =
      "#include <immintrin.h>\n"
      "uint64_t F(const uint64_t* c) {\n"
      "  __m256i v = _mm256_set1_epi64x(1);\n"
      "  (void)v;\n"
      "  return __builtin_cpu_supports(\"avx2\");\n"
      "}\n";
  // Intrinsics open-coded in scan code are flagged (header, type, call and
  // CPU probe each produce a finding)...
  EXPECT_GE(simd_findings(open_coded, "src/query/executor.cc").size(), 3u);
  // ...but the SIMD layer itself may use them,
  EXPECT_TRUE(simd_findings(open_coded, "src/common/simd.cc").empty());
  EXPECT_TRUE(simd_findings(open_coded, "src/common/simd.h").empty());
  // and code outside src/ (tools, benches) is out of scope.
  EXPECT_TRUE(simd_findings(open_coded, "bench/micro.cc").empty());
  // Dispatched calls through the kernel table are the legal shape.
  const std::string dispatched =
      "uint64_t F(const uint64_t* c, uint64_t v) {\n"
      "  return simd::ActiveKernels().filter_eq(c, v);\n"
      "}\n";
  EXPECT_TRUE(simd_findings(dispatched, "src/query/executor.cc").empty());
}

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

TEST(Report, WaiverSitesBecomeTheDebtLedger) {
  const std::string raw =
      "int a;\n"
      "x();  // aosi-lint: " "allow(lock-cycle)\n"
      "y();  // aosi-lint: " "allow(hold-across-blocking, vis-cache-protocol)\n";
  const std::vector<WaiverSite> sites = CollectWaiverSites(raw, "src/x.cc");
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].line, 2);
  ASSERT_EQ(sites[1].rules.size(), 2u);
  EXPECT_EQ(sites[1].rules[0], "hold-across-blocking");

  const std::string json = WaiverReportJson(sites);
  EXPECT_NE(json.find("\"waiver_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"src/x.cc\""), std::string::npos);
}

TEST(Report, PrintTextRendersWitnessSteps) {
  std::vector<Finding> findings;
  Finding f;
  f.file = "src/a.cc";
  f.line = 7;
  f.rule = "lock-cycle";
  f.message = "potential deadlock";
  f.related = {{"src/b.cc", 9, "B::Poke acquires beta_mu_"}};
  findings.push_back(f);
  std::ostringstream os;
  PrintText(findings, os);
  EXPECT_NE(os.str().find("src/a.cc:7: [lock-cycle] potential deadlock"),
            std::string::npos);
  EXPECT_NE(os.str().find("    src/b.cc:9: B::Poke acquires beta_mu_"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// SARIF: a minimal JSON parser, structural validation, golden snapshot
// ---------------------------------------------------------------------------

// Just enough JSON to validate the SARIF document shape: objects, arrays,
// strings, numbers, true/false/null. Throws std::runtime_error on malformed
// input (a test failure).
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char Peek() {
    SkipWs();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void Expect(char c) {
    if (Peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }
  JsonValue ParseValue() {
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }
  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    Expect('{');
    if (Peek() == '}') { ++pos_; return v; }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      v.obj[key.str] = ParseValue();
      if (Peek() == ',') { ++pos_; continue; }
      Expect('}');
      return v;
    }
  }
  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    Expect('[');
    if (Peek() == ']') { ++pos_; return v; }
    while (true) {
      v.arr.push_back(ParseValue());
      if (Peek() == ',') { ++pos_; continue; }
      Expect(']');
      return v;
    }
  }
  JsonValue ParseString() {
    JsonValue v;
    v.kind = JsonValue::kString;
    Expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        switch (s_[pos_]) {
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          case 'u': pos_ += 4; v.str += '?'; break;
          default: v.str += s_[pos_];
        }
      } else {
        v.str += s_[pos_];
      }
      ++pos_;
    }
    Expect('"');
    return v;
  }
  JsonValue ParseBool() {
    JsonValue v;
    v.kind = JsonValue::kBool;
    if (s_.compare(pos_, 4, "true") == 0) { v.boolean = true; pos_ += 4; }
    else if (s_.compare(pos_, 5, "false") == 0) { pos_ += 5; }
    else throw std::runtime_error("bad literal");
    return v;
  }
  JsonValue ParseNull() {
    if (s_.compare(pos_, 4, "null") != 0)
      throw std::runtime_error("bad literal");
    pos_ += 4;
    return JsonValue{};
  }
  JsonValue ParseNumber() {
    JsonValue v;
    v.kind = JsonValue::kNumber;
    size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    if (end == pos_) throw std::runtime_error("bad number");
    v.number = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// Asserts the properties the SARIF 2.1.0 schema requires of our output:
// version, one run with tool.driver.{name, rules[].id}, and results whose
// ruleId refers to a declared rule, with level/message/locations of the
// required shapes.
void ValidateSarif(const std::string& sarif) {
  JsonValue doc = JsonParser(sarif).Parse();
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  EXPECT_EQ(doc.at("version").str, "2.1.0");
  EXPECT_NE(doc.at("$schema").str.find("sarif-schema-2.1.0.json"),
            std::string::npos);

  const JsonValue& runs = doc.at("runs");
  ASSERT_EQ(runs.kind, JsonValue::kArray);
  ASSERT_EQ(runs.arr.size(), 1u);
  const JsonValue& run = runs.arr[0];

  const JsonValue& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").str, "aosi_lint");
  std::set<std::string> rule_ids;
  for (const JsonValue& rule : driver.at("rules").arr) {
    EXPECT_FALSE(rule.at("id").str.empty());
    EXPECT_FALSE(rule.at("shortDescription").at("text").str.empty());
    rule_ids.insert(rule.at("id").str);
  }
  EXPECT_EQ(rule_ids.size(), Rules().size());

  for (const JsonValue& result : run.at("results").arr) {
    EXPECT_EQ(rule_ids.count(result.at("ruleId").str), 1u)
        << "result ruleId must be declared in tool.driver.rules";
    EXPECT_EQ(result.at("level").str, "warning");
    EXPECT_FALSE(result.at("message").at("text").str.empty());
    const JsonValue& locations = result.at("locations");
    ASSERT_EQ(locations.kind, JsonValue::kArray);
    ASSERT_GE(locations.arr.size(), 1u);
    for (const JsonValue& loc : locations.arr) {
      const JsonValue& phys = loc.at("physicalLocation");
      EXPECT_FALSE(phys.at("artifactLocation").at("uri").str.empty());
      EXPECT_GE(phys.at("region").at("startLine").number, 1.0);
    }
    if (result.has("relatedLocations")) {
      for (const JsonValue& loc : result.at("relatedLocations").arr) {
        const JsonValue& phys = loc.at("physicalLocation");
        EXPECT_FALSE(phys.at("artifactLocation").at("uri").str.empty());
      }
    }
  }
}

// Fixed findings shared by the structural and snapshot tests (and by the
// snapshot generator documented below).
std::vector<Finding> SnapshotFindings() {
  Finding cycle;
  cycle.file = "src/engine/alpha_service.cc";
  cycle.line = 27;
  cycle.rule = "lock-cycle";
  cycle.message =
      "potential deadlock: lock-order cycle AlphaService::alpha_mu_ -> "
      "BetaService::beta_mu_ -> AlphaService::alpha_mu_";
  cycle.related = {
      {"src/engine/alpha_service.cc", 25,
       "AlphaService::Tick holds AlphaService::alpha_mu_ and calls "
       "BetaService::Poke"},
      {"src/engine/beta_service.cc", 26,
       "BetaService::Poke acquires BetaService::beta_mu_"},
  };
  Finding hold;
  hold.file = "src/cubrick/database.cc";
  hold.line = 337;
  hold.rule = "hold-across-blocking";
  hold.message =
      "Database::Checkpoint holds Database::mutex_ across a call into "
      "FlushManager::FlushRound, which blocks; release the lock first";
  hold.related = {
      {"src/common/shard_queue.h", 30, "ShardQueue::Push blocks in Wait()"},
  };
  return {cycle, hold};
}

TEST(Sarif, StructurallyValidAgainstThe210Schema) {
  ValidateSarif(ToSarif(SnapshotFindings()));
  // An empty run must also be valid (the clean-tree CI artifact).
  ValidateSarif(ToSarif({}));
}

TEST(Sarif, RealLockCycleFindingsProduceValidSarif) {
  ProgramModel pm(LoadProgramFixture(
      "bad_lock_cycle", {"alpha_service.cc", "beta_service.cc"}));
  const std::vector<Finding> findings = RunProgramPasses(pm);
  ASSERT_FALSE(findings.empty());
  ValidateSarif(ToSarif(findings));
}

// Golden snapshot: catches accidental format drift in the SARIF writer
// (CI uploads these artifacts; consumers parse them). To regenerate after
// an intentional format change, write ToSarif(SnapshotFindings()) to
// tests/lint_fixtures/sarif_snapshot.sarif (the test prints the new
// content on mismatch).
TEST(Sarif, SnapshotMatchesGolden) {
  const std::string path =
      std::string(CUBRICK_LINT_FIXTURE_DIR) + "/sarif_snapshot.sarif";
  const std::string golden = ReadFileOrEmpty(path);
  ASSERT_FALSE(golden.empty()) << "missing golden snapshot " << path;
  const std::string actual = ToSarif(SnapshotFindings());
  EXPECT_EQ(golden, actual)
      << "SARIF output drifted from the golden snapshot. If intentional, "
         "update tests/lint_fixtures/sarif_snapshot.sarif to:\n"
      << actual;
}

}  // namespace
}  // namespace aosilint
