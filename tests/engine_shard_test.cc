// Shard execution-model tests: single-writer ordering, queue semantics,
// inline vs threaded equivalence.

#include "engine/shard.h"

#include <gtest/gtest.h>

#include <atomic>

#include "aosi/epoch_vector.h"
#include "engine/table.h"

namespace cubrick {
namespace {

std::shared_ptr<const CubeSchema> MakeSchema() {
  return CubeSchema::Make("t", {{"k", 4, 4, false}},
                          {{"v", DataType::kInt64}})
      .value();
}

TEST(ShardTest, InlineModeExecutesSynchronously) {
  Shard shard(MakeSchema(), /*threaded=*/false);
  bool ran = false;
  auto fut = shard.Enqueue([&](BrickMap&) { ran = true; });
  EXPECT_TRUE(ran);  // already executed before Enqueue returned
  fut.get();
  EXPECT_EQ(shard.QueueDepth(), 0u);
}

TEST(ShardTest, ThreadedModeAppliesInFifoOrder) {
  Shard shard(MakeSchema(), /*threaded=*/true);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(shard.Enqueue([&order, i](BrickMap&) {
      order.push_back(i);  // single consumer: no synchronization needed
    }));
  }
  for (auto& f : futs) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ShardTest, ManyProducersSingleConsumerNoLostOps) {
  Shard shard(MakeSchema(), /*threaded=*/true);
  std::atomic<int> submitted{0};
  int applied = 0;  // written only by the shard thread
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        shard.Enqueue([&applied](BrickMap&) { ++applied; });
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  shard.Drain();
  EXPECT_EQ(applied, submitted.load(std::memory_order_relaxed));
  EXPECT_EQ(applied, 1000);
}

TEST(ShardTest, OperationsSeeBrickStateOfPredecessors) {
  // The paper's guarantee: operations on a shard are applied in exactly the
  // order they were enqueued, so each op observes all prior effects.
  Shard shard(MakeSchema(), /*threaded=*/true);
  std::vector<std::future<void>> futs;
  for (uint64_t i = 1; i <= 50; ++i) {
    futs.push_back(shard.Enqueue([i](BrickMap& bricks) {
      Brick& brick = bricks.GetOrCreate(0);
      // Each op verifies the record count its predecessors produced.
      CUBRICK_CHECK(brick.num_records() == i - 1);
      EncodedBatch batch(brick.schema());
      batch.num_rows = 1;
      batch.dim_offsets[0].push_back(0);
      batch.metric_ints[0].push_back(static_cast<int64_t>(i));
      brick.AppendBatch(i, batch);
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(shard.bricks().TotalRecords(), 50u);
}

TEST(ShardTest, DrainWaitsForBacklog) {
  Shard shard(MakeSchema(), /*threaded=*/true);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    shard.Enqueue([&done](BrickMap&) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  shard.Drain();
  EXPECT_EQ(done.load(std::memory_order_relaxed), 20);
}

TEST(ShardTest, CpuPinnedShardStillServes) {
  // §V-B: shard threads may be pinned to cores. Pinning is best-effort;
  // either way the shard must function normally.
  Shard pinned(MakeSchema(), /*threaded=*/true, /*cpu_affinity=*/0);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pinned.Enqueue([&done](BrickMap&) { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pinned.Drain();
  EXPECT_EQ(done.load(std::memory_order_relaxed), 10);
  // An out-of-range CPU is ignored, not fatal.
  Shard unpinnable(MakeSchema(), /*threaded=*/true,
                   /*cpu_affinity=*/1 << 20);
  unpinnable.Enqueue([&done](BrickMap&) { done.fetch_add(1, std::memory_order_relaxed); }).get();
  EXPECT_EQ(done.load(std::memory_order_relaxed), 11);
}

TEST(ShardTest, TablePinningOptionWorksEndToEnd) {
  auto schema = MakeSchema();
  Table table(schema, 2, /*threaded=*/true, /*rollback_index=*/false,
              /*pin_shard_threads=*/true);
  PerBrickBatches batches;
  EncodedBatch batch(*schema);
  batch.num_rows = 1;
  batch.dim_offsets[0].push_back(0);
  batch.metric_ints[0].push_back(5);
  batches.emplace(0, batch);
  ASSERT_TRUE(table.Append(1, std::move(batches)).ok());
  EXPECT_EQ(table.TotalRecords(), 1u);
}

TEST(ShardTest, DestructorDrainsPendingWork) {
  std::atomic<int> done{0};
  {
    Shard shard(MakeSchema(), /*threaded=*/true);
    for (int i = 0; i < 10; ++i) {
      shard.Enqueue([&done](BrickMap&) { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor closes the queue and joins; queued ops still drain.
  }
  EXPECT_EQ(done.load(std::memory_order_relaxed), 10);
}

}  // namespace
}  // namespace cubrick
