// Node-strided Lamport clock tests, reproducing the paper's Table IV.
#include <memory>

#include "aosi/epoch_clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cubrick::aosi {
namespace {

// Paper Table IV: epoch clocks advancing on a 3-node cluster.
TEST(EpochClockTest, TableIV_ThreeNodeHistory) {
  EpochClock n1(1, 3), n2(2, 3), n3(3, 3);
  // Initially, each node's EC is its own node index.
  EXPECT_EQ(n1.Peek(), 1u);
  EXPECT_EQ(n2.Peek(), 2u);
  EXPECT_EQ(n3.Peek(), 3u);

  // create(n1) -> T1: n1 hands out 1 and advances by num_nodes.
  const Epoch t1 = n1.Acquire();
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(n1.Peek(), 4u);

  // append(T1): records forwarded to n2/n3 carry n1's EC (4).
  n2.Observe(n1.Peek());
  n3.Observe(n1.Peek());
  EXPECT_EQ(n2.Peek(), 5u);
  EXPECT_EQ(n3.Peek(), 6u);

  // create(n3) -> T6.
  const Epoch t6 = n3.Acquire();
  EXPECT_EQ(t6, 6u);
  EXPECT_EQ(n3.Peek(), 9u);

  // create(n2) -> T5. Note the logical order does not match the
  // chronological order: T6 started before T5.
  const Epoch t5 = n2.Acquire();
  EXPECT_EQ(t5, 5u);
  EXPECT_EQ(n2.Peek(), 8u);

  // commit(T1): broadcast carries n1's EC; responses carry n2's and n3's,
  // so n1 fast-forwards to the smallest aligned epoch >= 9.
  n2.Observe(n1.Peek());
  n3.Observe(n1.Peek());
  EXPECT_EQ(n2.Peek(), 8u);  // already ahead, unchanged
  EXPECT_EQ(n3.Peek(), 9u);
  n1.Observe(n2.Peek());
  n1.Observe(n3.Peek());
  EXPECT_EQ(n1.Peek(), 10u);
}

TEST(EpochClockTest, StridePreservesResidue) {
  EpochClock clock(2, 4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(clock.Acquire() % 4, 2u);
  }
  clock.Observe(1000);
  EXPECT_EQ(clock.Peek() % 4, 2u);
  EXPECT_GE(clock.Peek(), 1000u);
}

TEST(EpochClockTest, EpochsFromDifferentNodesNeverCollide) {
  constexpr uint32_t kNodes = 5;
  std::vector<std::unique_ptr<EpochClock>> clocks;
  for (uint32_t i = 1; i <= kNodes; ++i) {
    clocks.push_back(std::make_unique<EpochClock>(i, kNodes));
  }
  EpochSet all;
  for (int round = 0; round < 50; ++round) {
    for (auto& c : clocks) {
      const Epoch e = c->Acquire();
      EXPECT_FALSE(all.Contains(e)) << "collision at epoch " << e;
      all.Insert(e);
    }
    // Random-ish gossip to desynchronize the clocks.
    clocks[static_cast<size_t>(round) % kNodes]->Observe(
        clocks[static_cast<size_t>(round + 1) % kNodes]->Peek());
  }
  EXPECT_EQ(all.size(), kNodes * 50u);
}

TEST(EpochClockTest, ObserveIsMonotonic) {
  EpochClock clock(1, 3);
  clock.Observe(100);
  const Epoch after_first = clock.Peek();
  clock.Observe(50);  // stale observation must not move the clock back
  EXPECT_EQ(clock.Peek(), after_first);
}

TEST(EpochClockTest, ObserveOfAlignedValueUsesIt) {
  EpochClock clock(1, 3);
  // 10 % 3 == 1 == residue: the clock may land exactly on the remote value.
  clock.Observe(10);
  EXPECT_EQ(clock.Peek(), 10u);
}

TEST(EpochClockTest, SingleNodeStrideIsOne) {
  EpochClock clock(1, 1);
  EXPECT_EQ(clock.Acquire(), 1u);
  EXPECT_EQ(clock.Acquire(), 2u);
  EXPECT_EQ(clock.Acquire(), 3u);
}

TEST(EpochClockTest, RejectsBadNodeIndex) {
  EXPECT_THROW(EpochClock(0, 3), cubrick::CheckFailure);
  EXPECT_THROW(EpochClock(4, 3), cubrick::CheckFailure);
}

TEST(EpochClockTest, ConcurrentAcquireAndObserveKeepsResidue) {
  EpochClock clock(3, 4);
  std::vector<std::thread> threads;
  std::vector<std::vector<Epoch>> acquired(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        if (i % 10 == 0) clock.Observe(static_cast<Epoch>(i * 7));
        acquired[t].push_back(clock.Acquire());
      }
    });
  }
  for (auto& th : threads) th.join();
  EpochSet all;
  for (const auto& v : acquired) {
    for (Epoch e : v) {
      EXPECT_EQ(e % 4, 3u);
      EXPECT_FALSE(all.Contains(e));
      all.Insert(e);
    }
  }
}

}  // namespace
}  // namespace cubrick::aosi
