// Advanced query-engine coverage: multi-dimension group-by, IN filters,
// AVG/MIN/MAX over doubles, filter+group interactions, and large sweeps.

#include <gtest/gtest.h>

#include "common/random.h"
#include "cubrick/database.h"

namespace cubrick {
namespace {

constexpr char kDdl[] =
    "CREATE CUBE sales (region string CARDINALITY 8 RANGE 1, "
    "channel string CARDINALITY 4 RANGE 1, "
    "day int CARDINALITY 32 RANGE 8, "
    "units int, revenue double)";

class AdvancedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteDdl(kDdl).ok());
    ASSERT_TRUE(db_.Load("sales",
                         {
                             {"US", "web", 1, 10, 100.0},
                             {"US", "app", 1, 20, 200.0},
                             {"US", "web", 9, 5, 50.5},
                             {"BR", "web", 2, 8, 80.0},
                             {"BR", "app", 17, 2, 20.0},
                             {"DE", "web", 25, 4, 40.0},
                         })
                    .ok());
  }
  Database db_;
};

TEST_F(AdvancedQueryTest, MultiDimensionGroupBy) {
  auto schema = db_.FindSchema("sales");
  Query q;
  q.group_by = {0, 1};  // region x channel
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto result = db_.Query("sales", q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 5u);  // US/web US/app BR/web BR/app DE/web
  const uint64_t us = schema->dictionary(0)->Encode("US").value();
  const uint64_t web = schema->dictionary(1)->Encode("web").value();
  EXPECT_DOUBLE_EQ(result->Value({us, web}, 0, AggSpec::Fn::kSum), 15.0);
}

TEST_F(AdvancedQueryTest, InFilterOverStrings) {
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto in = db_.InFilter("sales", "region", {"US", "DE"});
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  q.filters = {*in};
  EXPECT_DOUBLE_EQ(db_.Query("sales", q)->Single(0, AggSpec::Fn::kSum),
                   39.0);
}

TEST_F(AdvancedQueryTest, InFilterDropsUnknownValues) {
  Query q;
  q.aggs = {{AggSpec::Fn::kCount, 0}};
  auto in = db_.InFilter("sales", "region", {"US", "ATLANTIS"});
  ASSERT_TRUE(in.ok());
  q.filters = {*in};
  EXPECT_DOUBLE_EQ(db_.Query("sales", q)->Single(0, AggSpec::Fn::kCount),
                   3.0);
}

TEST_F(AdvancedQueryTest, InFilterAllUnknownMatchesNothing) {
  Query q;
  q.aggs = {{AggSpec::Fn::kCount, 0}};
  auto in = db_.InFilter("sales", "region", {"ATLANTIS"});
  ASSERT_TRUE(in.ok());
  q.filters = {*in};
  EXPECT_DOUBLE_EQ(db_.Query("sales", q)->Single(0, AggSpec::Fn::kCount),
                   0.0);
}

TEST_F(AdvancedQueryTest, InFilterOverIntegers) {
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto in = db_.InFilter("sales", "day", {1, 25});
  ASSERT_TRUE(in.ok());
  q.filters = {*in};
  EXPECT_DOUBLE_EQ(db_.Query("sales", q)->Single(0, AggSpec::Fn::kSum),
                   34.0);
}

TEST_F(AdvancedQueryTest, DoubleMetricAggregates) {
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 1},
            {AggSpec::Fn::kAvg, 1},
            {AggSpec::Fn::kMin, 1},
            {AggSpec::Fn::kMax, 1}};
  auto result = db_.Query("sales", q);
  EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum), 490.5);
  EXPECT_NEAR(result->Single(1, AggSpec::Fn::kAvg), 490.5 / 6, 1e-9);
  EXPECT_DOUBLE_EQ(result->Single(2, AggSpec::Fn::kMin), 20.0);
  EXPECT_DOUBLE_EQ(result->Single(3, AggSpec::Fn::kMax), 200.0);
}

TEST_F(AdvancedQueryTest, FilterAndGroupInteraction) {
  auto schema = db_.FindSchema("sales");
  Query q;
  q.group_by = {1};  // by channel
  q.aggs = {{AggSpec::Fn::kSum, 1}};
  auto us = db_.EqFilter("sales", "region", "US");
  ASSERT_TRUE(us.ok());
  q.filters = {*us};
  auto result = db_.Query("sales", q);
  const uint64_t web = schema->dictionary(1)->Encode("web").value();
  const uint64_t app = schema->dictionary(1)->Encode("app").value();
  EXPECT_DOUBLE_EQ(result->Value({web}, 0, AggSpec::Fn::kSum), 150.5);
  EXPECT_DOUBLE_EQ(result->Value({app}, 0, AggSpec::Fn::kSum), 200.0);
}

TEST_F(AdvancedQueryTest, RangeFilterAlignsToBricks) {
  // day has range size 8: a [0,7] filter exactly covers the first range,
  // so the scan never evaluates the predicate per row (covered fast path).
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  auto days = db_.RangeFilter("sales", "day", 0, 7);
  ASSERT_TRUE(days.ok());
  q.filters = {*days};
  EXPECT_DOUBLE_EQ(db_.Query("sales", q)->Single(0, AggSpec::Fn::kSum),
                   38.0);
}

TEST_F(AdvancedQueryTest, EmptyAggsQueryIsHarmless) {
  Query q;
  auto result = db_.Query("sales", q);
  ASSERT_TRUE(result.ok());
  // No accumulators requested: no groups are materialized.
  EXPECT_EQ(result->num_aggs(), 0u);
}

TEST(AdvancedQuerySweep, RandomFiltersMatchBruteForce) {
  auto schema = CubeSchema::Make("t",
                                 {{"a", 64, 8, false}, {"b", 16, 2, false}},
                                 {{"v", DataType::kInt64}})
                    .value();
  Database db;
  ASSERT_TRUE(db.CreateCube("t", schema->dimensions(), schema->metrics())
                  .ok());
  Random rng(31);
  struct Row {
    uint64_t a, b;
    int64_t v;
  };
  std::vector<Row> rows;
  std::vector<Record> records;
  for (int i = 0; i < 2000; ++i) {
    Row r{rng.Uniform(64), rng.Uniform(16),
          static_cast<int64_t>(rng.Uniform(1000))};
    rows.push_back(r);
    records.push_back({static_cast<int64_t>(r.a),
                       static_cast<int64_t>(r.b), r.v});
  }
  ASSERT_TRUE(db.Load("t", records).ok());

  for (int trial = 0; trial < 25; ++trial) {
    uint64_t lo = rng.Uniform(64), hi = rng.Uniform(64);
    if (lo > hi) std::swap(lo, hi);
    const uint64_t b_eq = rng.Uniform(16);
    Query q;
    q.filters = {{0, FilterClause::Op::kRange, {}, lo, hi},
                 {1, FilterClause::Op::kEq, {b_eq}, 0, 0}};
    q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
    auto result = db.Query("t", q);
    ASSERT_TRUE(result.ok());
    int64_t expected_sum = 0;
    uint64_t expected_count = 0;
    for (const auto& r : rows) {
      if (r.a >= lo && r.a <= hi && r.b == b_eq) {
        expected_sum += r.v;
        ++expected_count;
      }
    }
    EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum),
                     static_cast<double>(expected_sum))
        << "trial " << trial;
    EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount),
                     static_cast<double>(expected_count));
  }
}

}  // namespace
}  // namespace cubrick
