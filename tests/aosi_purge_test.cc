// Purge (garbage collection) and rollback-compaction tests, covering the
// paper's Figure 3 semantics: recycling epochs entries older than LSE and
// physically applying deletes older than LSE.

#include "aosi/purge.h"

#include <gtest/gtest.h>

#include "aosi/visibility.h"

namespace cubrick::aosi {
namespace {

Snapshot Reader(Epoch epoch, std::vector<Epoch> deps = {}) {
  Snapshot s;
  s.epoch = epoch;
  s.deps = EpochSet(std::move(deps));
  return s;
}

// Figure 2/3 style sequence with two mergeable old transactions:
//   T1 appends 2, T2 appends 2, T5 appends 1, T3 deletes, T5 appends 3,
//   T7 appends 1.
EpochVector MakeHistory() {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(2, 2);
  ev.RecordAppend(5, 1);
  ev.RecordDelete(3);
  ev.RecordAppend(5, 3);
  ev.RecordAppend(7, 1);
  return ev;
}

TEST(PurgeTest, Figure3a_MergesHistoryButKeepsLaterDelete) {
  // LSE = 3: T1 and T2 are both finished and older than LSE, so their two
  // entries merge into one. The delete by T3 (not older than LSE) cannot be
  // applied yet — a reader may still exist that does not see it.
  const EpochVector ev = MakeHistory();
  CompactionPlan plan = PlanPurge(ev, /*lse=*/3);
  ASSERT_TRUE(plan.needed);
  EXPECT_TRUE(plan.keep.All());
  EXPECT_EQ(plan.new_history.ToString(),
            "[2:0-3][5:4-4][3:del@5][5:5-7][7:8-8]");
  // Entry count drops from 6 to 5.
  EXPECT_EQ(plan.new_history.num_entries(), 5u);
}

TEST(PurgeTest, Figure3b_AppliesDeleteOnceSafe) {
  // LSE = 5: the delete by T3 is now older than LSE and gets applied:
  // records from transactions < 3 die everywhere; T5's and T7's survive.
  const EpochVector ev = MakeHistory();
  CompactionPlan plan = PlanPurge(ev, /*lse=*/5);
  ASSERT_TRUE(plan.needed);
  EXPECT_EQ(plan.keep.ToString(), "000011111");
  EXPECT_FALSE(plan.new_history.HasDelete());
  EXPECT_EQ(plan.new_history.num_records(), 5u);
}

TEST(PurgeTest, Figure3b_OnlyNewestSurvives) {
  // Closest reconstruction of the paper's Fig 3(b) narration: after purge
  // with a delete marker safely behind LSE, "the only record and epochs
  // entry required is the one inserted by T7".
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(3, 2);
  ev.RecordAppend(5, 1);
  ev.RecordDelete(5);  // T5 deletes everything including its own append
  ev.RecordAppend(7, 1);
  CompactionPlan plan = PlanPurge(ev, /*lse=*/7);
  ASSERT_TRUE(plan.needed);
  EXPECT_EQ(plan.keep.ToString(), "000001");
  EXPECT_EQ(plan.new_history.ToString(), "[7:0-0]");
  EXPECT_EQ(plan.new_history.num_entries(), 1u);
  EXPECT_EQ(plan.new_history.num_records(), 1u);
}

TEST(PurgeTest, SkipsWhenNothingToDo) {
  EpochVector ev;
  ev.RecordAppend(8, 10);
  ev.RecordAppend(9, 5);
  // LSE = 3: no entries are older, no deletes — purge must skip the brick.
  CompactionPlan plan = PlanPurge(ev, /*lse=*/3);
  EXPECT_FALSE(plan.needed);
}

TEST(PurgeTest, SkipsSingleOldEntry) {
  // One old entry alone cannot be merged with anything and there is no
  // delete; rewriting the partition would be wasted work.
  EpochVector ev;
  ev.RecordAppend(1, 10);
  CompactionPlan plan = PlanPurge(ev, /*lse=*/5);
  EXPECT_FALSE(plan.needed);
}

TEST(PurgeTest, MergeStampIsEpochOrderMaxBothArgumentOrders) {
  // Regression for the epoch-max merge bug: BuildPlan must stamp a merged
  // run with MaxEpoch (epoch order), not raw integer std::max, and the
  // answer cannot depend on which physical order the mergeable runs arrive
  // in. Epoch is currently an integer where the two coincide numerically,
  // so the raw-std::max regression itself is guarded structurally: the
  // aosi_lint epoch-compare rule rejects std::min/std::max over epoch
  // operands tree-wide (tests/lint_fixtures/bad_epoch_minmax.cc), which
  // fails on the old `std::max(prev.epoch, run.epoch)` code. This test
  // pins the behavioral contract so a future non-integer epoch encoding
  // (e.g. node-strided cluster epochs) keeps the epoch-order stamp.
  {
    EpochVector ev;
    ev.RecordAppend(7, 1);  // larger epoch physically first
    ev.RecordAppend(2, 1);
    CompactionPlan plan = PlanPurge(ev, /*lse=*/10);
    ASSERT_TRUE(plan.needed);
    EXPECT_EQ(plan.new_history.ToString(), "[7:0-1]");
  }
  {
    EpochVector ev;
    ev.RecordAppend(2, 1);  // larger epoch physically last
    ev.RecordAppend(7, 1);
    CompactionPlan plan = PlanPurge(ev, /*lse=*/10);
    ASSERT_TRUE(plan.needed);
    EXPECT_EQ(plan.new_history.ToString(), "[7:0-1]");
  }
}

TEST(PurgeTest, DeleteCleanupAgreesWithVisibility) {
  // Purge and visibility share ApplyDeleteCleanup; the keep bitmap of a
  // purge that applies a delete must equal the visibility bitmap of a
  // reader that sees the whole history. Drift here is exactly the class of
  // bug the shared helper exists to prevent.
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(5, 1);
  ev.RecordDelete(3);
  ev.RecordAppend(5, 3);
  ev.RecordAppend(7, 1);
  CompactionPlan plan = PlanPurge(ev, /*lse=*/8);
  ASSERT_TRUE(plan.needed);
  Bitmap visible = BuildVisibilityBitmap(ev, Reader(9));
  EXPECT_EQ(plan.keep.ToString(), visible.ToString());
}

TEST(PurgeTest, MergeStampsLargestEpoch) {
  EpochVector ev;
  ev.RecordAppend(2, 1);
  ev.RecordAppend(1, 1);
  ev.RecordAppend(3, 1);
  CompactionPlan plan = PlanPurge(ev, /*lse=*/10);
  ASSERT_TRUE(plan.needed);
  EXPECT_EQ(plan.new_history.ToString(), "[3:0-2]");
}

TEST(PurgeTest, NeverMergesAcrossSurvivingDelete) {
  EpochVector ev;
  ev.RecordAppend(1, 1);
  ev.RecordDelete(9);  // far in the future; survives purge at LSE=3
  ev.RecordAppend(2, 1);
  // Nothing mergeable (the marker separates the runs), delete not
  // applicable: purge must skip.
  CompactionPlan plan = PlanPurge(ev, /*lse=*/3);
  EXPECT_FALSE(plan.needed);
}

TEST(PurgeTest, PurgePreservesVisibilityForFutureReaders) {
  // Property: for every reader epoch >= LSE with no deps below LSE, the
  // visible *multiset of rows* (by content position) before and after purge
  // must agree. We check via bit counts per surviving region.
  const EpochVector ev = MakeHistory();
  for (Epoch lse : {Epoch{3}, Epoch{5}, Epoch{7}, Epoch{9}}) {
    CompactionPlan plan = PlanPurge(ev, lse);
    if (!plan.needed) continue;
    for (Epoch reader = lse; reader <= 10; ++reader) {
      Bitmap before = BuildVisibilityBitmap(ev, Reader(reader));
      Bitmap after = BuildVisibilityBitmap(plan.new_history, Reader(reader));
      // Count must match; and every kept-and-visible row must map over.
      size_t visible_before_kept = 0;
      for (size_t i = 0; i < before.size(); ++i) {
        if (before.Get(i)) {
          EXPECT_TRUE(plan.keep.Get(i))
              << "purge at LSE " << lse << " dropped row " << i
              << " still visible to reader " << reader;
          ++visible_before_kept;
        }
      }
      EXPECT_EQ(after.CountSet(), visible_before_kept)
          << "reader " << reader << " LSE " << lse;
    }
  }
}

TEST(PurgeTest, DoubleDeleteBothApplied) {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordDelete(2);
  ev.RecordAppend(3, 2);
  ev.RecordDelete(4);
  ev.RecordAppend(5, 2);
  CompactionPlan plan = PlanPurge(ev, /*lse=*/6);
  ASSERT_TRUE(plan.needed);
  EXPECT_EQ(plan.keep.ToString(), "000011");
  EXPECT_EQ(plan.new_history.ToString(), "[5:0-1]");
}

TEST(RollbackTest, RemovesOnlyVictimRecords) {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(2, 3);
  ev.RecordAppend(1, 1);
  CompactionPlan plan = PlanRollback(ev, /*victim=*/2);
  ASSERT_TRUE(plan.needed);
  EXPECT_EQ(plan.keep.ToString(), "110001");
  EXPECT_EQ(plan.new_history.ToString(), "[1:0-1][1:2-2]");
}

TEST(RollbackTest, RemovesVictimDeleteMarker) {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordDelete(2);
  ev.RecordAppend(3, 1);
  CompactionPlan plan = PlanRollback(ev, /*victim=*/2);
  ASSERT_TRUE(plan.needed);
  EXPECT_TRUE(plan.keep.All());
  EXPECT_FALSE(plan.new_history.HasDelete());
  EXPECT_EQ(plan.new_history.ToString(), "[1:0-1][3:2-2]");
}

TEST(RollbackTest, NoOpWhenVictimAbsent) {
  EpochVector ev;
  ev.RecordAppend(1, 2);
  CompactionPlan plan = PlanRollback(ev, /*victim=*/9);
  EXPECT_FALSE(plan.needed);
}

TEST(RollbackTest, VictimOnlyPartitionBecomesEmpty) {
  EpochVector ev;
  ev.RecordAppend(4, 10);
  CompactionPlan plan = PlanRollback(ev, /*victim=*/4);
  ASSERT_TRUE(plan.needed);
  EXPECT_TRUE(plan.keep.None());
  EXPECT_EQ(plan.new_history.num_records(), 0u);
  EXPECT_EQ(plan.new_history.num_entries(), 0u);
}

}  // namespace
}  // namespace cubrick::aosi
