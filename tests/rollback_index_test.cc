// Tests for the optional §III-C5 rollback index and the background
// checkpoint thread (§III-D).

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "cubrick/database.h"
#include "engine/rollback_index.h"
#include "ingest/parser.h"

namespace cubrick {
namespace {

TEST(RollbackIndexTest, NoteTakeRoundTrip) {
  RollbackIndex index;
  index.Note(5, 10);
  index.Note(5, 11);
  index.Note(5, 10);  // duplicate collapses
  index.Note(7, 20);
  EXPECT_EQ(index.NumTrackedTxns(), 2u);
  EXPECT_EQ(index.Take(5), (std::vector<Bid>{10, 11}));
  EXPECT_EQ(index.NumTrackedTxns(), 1u);
  EXPECT_TRUE(index.Take(5).empty());  // consumed
  EXPECT_TRUE(index.Take(99).empty());
}

TEST(RollbackIndexTest, DiscardUpToTrims) {
  RollbackIndex index;
  for (aosi::Epoch e = 1; e <= 10; ++e) {
    index.Note(e, e * 100);
  }
  index.DiscardUpTo(7);
  EXPECT_EQ(index.NumTrackedTxns(), 3u);
  EXPECT_TRUE(index.Take(7).empty());
  EXPECT_EQ(index.Take(8), (std::vector<Bid>{800}));
}

TEST(RollbackIndexTest, TracksMemory) {
  RollbackIndex index;
  EXPECT_EQ(index.MemoryUsage(), 0u);
  index.Note(1, 2);
  EXPECT_GT(index.MemoryUsage(), 0u);
}

std::shared_ptr<CubeSchema> WideKeySchema() {
  return CubeSchema::Make("t", {{"k", 256, 1, false}},
                          {{"v", DataType::kInt64}})
      .value();
}

PerBrickBatches RowsFor(const CubeSchema& schema,
                        std::initializer_list<int64_t> keys) {
  std::vector<Record> records;
  for (int64_t k : keys) records.push_back({k, k});
  return ParseRecords(schema, records).value().batches;
}

TEST(RollbackIndexTest, IndexedRollbackMatchesFullScan) {
  auto schema = WideKeySchema();
  Table indexed(schema, 4, false, /*rollback_index=*/true);
  Table scanned(schema, 4, false, /*rollback_index=*/false);

  for (Table* table : {&indexed, &scanned}) {
    ASSERT_TRUE(table->Append(1, RowsFor(*schema, {1, 2, 3})).ok());
    ASSERT_TRUE(table->Append(2, RowsFor(*schema, {2, 50, 99})).ok());
    ASSERT_TRUE(table->Append(3, RowsFor(*schema, {1, 200})).ok());
    table->Rollback(2);
  }
  EXPECT_EQ(indexed.TotalRecords(), scanned.TotalRecords());
  EXPECT_EQ(indexed.TotalRecords(), 5u);

  aosi::Snapshot snap{10, {}};
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}};
  EXPECT_DOUBLE_EQ(
      indexed.Scan(snap, ScanMode::kSnapshotIsolation, q)
          .Single(0, AggSpec::Fn::kSum),
      scanned.Scan(snap, ScanMode::kSnapshotIsolation, q)
          .Single(0, AggSpec::Fn::kSum));
}

TEST(RollbackIndexTest, IndexedRollbackOfDeleteMarker) {
  auto schema = WideKeySchema();
  Table table(schema, 2, false, /*rollback_index=*/true);
  ASSERT_TRUE(table.Append(1, RowsFor(*schema, {1, 2})).ok());
  ASSERT_TRUE(table.DeleteWhere(2, {}).ok());
  table.Rollback(2);
  aosi::Snapshot snap{10, {}};
  Query q;
  q.aggs = {{AggSpec::Fn::kCount, 0}};
  EXPECT_DOUBLE_EQ(table.Scan(snap, ScanMode::kSnapshotIsolation, q)
                       .Single(0, AggSpec::Fn::kCount),
                   2.0);
}

TEST(RollbackIndexTest, PurgeTrimsIndex) {
  auto schema = WideKeySchema();
  Table table(schema, 2, false, /*rollback_index=*/true);
  for (aosi::Epoch e = 1; e <= 10; ++e) {
    ASSERT_TRUE(
        table.Append(e, RowsFor(*schema, {static_cast<int64_t>(e)})).ok());
  }
  ASSERT_NE(table.rollback_index(), nullptr);
  EXPECT_EQ(table.rollback_index()->NumTrackedTxns(), 10u);
  table.Purge(/*lse=*/10);
  EXPECT_EQ(table.rollback_index()->NumTrackedTxns(), 0u);
}

TEST(RollbackIndexTest, DatabaseOptionWiresThrough) {
  DatabaseOptions options;
  options.rollback_index = true;
  Database db(options);
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 64 RANGE 1, v int)")
          .ok());
  aosi::Txn txn = db.Begin();
  ASSERT_TRUE(db.LoadIn(txn, "c", {{5, 1}, {6, 2}}).ok());
  ASSERT_TRUE(db.Rollback(txn).ok());
  EXPECT_EQ(db.TotalRecords(), 0u);
  EXPECT_NE(db.FindTable("c")->rollback_index(), nullptr);
}

TEST(BackgroundFlusherTest, CheckpointsWithoutExplicitCalls) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "cubrick_bg_flusher";
  fs::remove_all(dir);
  fs::create_directories(dir);

  DatabaseOptions options;
  options.data_dir = dir.string();
  options.auto_checkpoint_interval_ms = 20;
  uint64_t expected = 0;
  {
    Database db(options);
    ASSERT_TRUE(
        db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 8, v int)").ok());
    Random rng(1);
    for (int batch = 0; batch < 5; ++batch) {
      std::vector<Record> rows;
      for (int i = 0; i < 100; ++i) {
        rows.push_back({static_cast<int64_t>(rng.Uniform(8)), 1});
      }
      ASSERT_TRUE(db.Load("c", rows).ok());
      expected += 100;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    // At least one background round must have persisted something.
    persist::FlushManager probe(dir.string(), "c");
    EXPECT_GT(probe.ManifestRounds(), 0u);
  }
  // Recover what the background flusher persisted (possibly everything).
  Database db(options);
  ASSERT_TRUE(
      db.ExecuteDdl("CREATE CUBE c (k int CARDINALITY 8, v int)").ok());
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_GT(db.TotalRecords(), 0u);
  EXPECT_LE(db.TotalRecords(), expected);
  fs::remove_all(dir);
}

TEST(BackgroundFlusherTest, StopsCleanlyWhenIdle) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "cubrick_bg_idle";
  fs::remove_all(dir);
  fs::create_directories(dir);
  DatabaseOptions options;
  options.data_dir = dir.string();
  options.auto_checkpoint_interval_ms = 5;
  {
    Database db(options);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    // Destructor must join the flusher without deadlock.
  }
  fs::remove_all(dir);
  SUCCEED();
}

}  // namespace
}  // namespace cubrick
