// DDL parser tests, anchored on the paper's Figure 4 CREATE CUBE.

#include "cubrick/ddl.h"

#include <gtest/gtest.h>

namespace cubrick {
namespace {

TEST(DdlTest, Figure4_Statement) {
  auto stmt = ParseCreateCube(
      "CREATE CUBE test_cube (region string CARDINALITY 4 RANGE 2, "
      "gender string CARDINALITY 4 RANGE 1, likes int, comments int)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->cube_name, "test_cube");
  ASSERT_EQ(stmt->dimensions.size(), 2u);
  EXPECT_EQ(stmt->dimensions[0].name, "region");
  EXPECT_EQ(stmt->dimensions[0].cardinality, 4u);
  EXPECT_EQ(stmt->dimensions[0].range_size, 2u);
  EXPECT_TRUE(stmt->dimensions[0].is_string);
  EXPECT_EQ(stmt->dimensions[1].name, "gender");
  EXPECT_EQ(stmt->dimensions[1].range_size, 1u);
  ASSERT_EQ(stmt->metrics.size(), 2u);
  EXPECT_EQ(stmt->metrics[0].name, "likes");
  EXPECT_EQ(stmt->metrics[0].type, DataType::kInt64);
  EXPECT_EQ(stmt->metrics[1].name, "comments");
}

TEST(DdlTest, RangeDefaultsToOne) {
  auto stmt = ParseCreateCube(
      "CREATE CUBE c (d int CARDINALITY 8, m double)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->dimensions[0].range_size, 1u);
  EXPECT_FALSE(stmt->dimensions[0].is_string);
  EXPECT_EQ(stmt->metrics[0].type, DataType::kDouble);
}

TEST(DdlTest, CaseInsensitiveKeywords) {
  auto stmt = ParseCreateCube(
      "create cube C (d String cardinality 4 range 2, m Int)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->cube_name, "C");  // identifiers keep their case
  EXPECT_TRUE(stmt->dimensions[0].is_string);
}

TEST(DdlTest, TrailingSemicolonAndWhitespace) {
  auto stmt = ParseCreateCube(
      "  CREATE CUBE c ( d int CARDINALITY 2 , m int ) ; ");
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(DdlTest, StringMetricSupported) {
  auto stmt = ParseCreateCube(
      "CREATE CUBE c (d int CARDINALITY 2, tag string)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->metrics[0].type, DataType::kString);
}

TEST(DdlTest, RejectsDoubleDimension) {
  auto stmt = ParseCreateCube("CREATE CUBE c (d double CARDINALITY 4)");
  EXPECT_EQ(stmt.status().code(), StatusCode::kInvalidArgument);
}

TEST(DdlTest, RejectsMissingType) {
  EXPECT_FALSE(ParseCreateCube("CREATE CUBE c (d)").ok());
}

TEST(DdlTest, RejectsUnknownType) {
  EXPECT_FALSE(
      ParseCreateCube("CREATE CUBE c (d blob CARDINALITY 4)").ok());
}

TEST(DdlTest, RejectsMissingParens) {
  EXPECT_FALSE(ParseCreateCube("CREATE CUBE c d int CARDINALITY 4").ok());
  EXPECT_FALSE(
      ParseCreateCube("CREATE CUBE c (d int CARDINALITY 4").ok());
}

TEST(DdlTest, RejectsMetricOnlyCube) {
  EXPECT_FALSE(ParseCreateCube("CREATE CUBE c (m int)").ok());
}

TEST(DdlTest, RejectsNonNumericCardinality) {
  EXPECT_FALSE(
      ParseCreateCube("CREATE CUBE c (d int CARDINALITY four)").ok());
}

TEST(DdlTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(
      ParseCreateCube("CREATE CUBE c (d int CARDINALITY 4) garbage").ok());
}

TEST(DdlTest, RejectsNotCreateCube) {
  EXPECT_FALSE(ParseCreateCube("DROP CUBE c").ok());
  EXPECT_FALSE(ParseCreateCube("CREATE TABLE c (d int)").ok());
}

}  // namespace
}  // namespace cubrick
