// Brick, bess-column and dictionary tests.

#include "storage/brick.h"

#include <gtest/gtest.h>

#include "aosi/visibility.h"
#include "common/random.h"
#include "storage/bess_column.h"
#include "storage/brick_map.h"
#include "storage/dictionary.h"

namespace cubrick {
namespace {

TEST(DictionaryTest, EncodeAssignsDenseMonotonicIds) {
  StringDictionary dict;
  EXPECT_EQ(dict.EncodeOrAdd("US"), 0u);
  EXPECT_EQ(dict.EncodeOrAdd("BR"), 1u);
  EXPECT_EQ(dict.EncodeOrAdd("US"), 0u);  // idempotent
  EXPECT_EQ(dict.EncodeOrAdd("FR"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, DecodeRoundTrip) {
  StringDictionary dict;
  dict.EncodeOrAdd("male");
  dict.EncodeOrAdd("female");
  EXPECT_EQ(dict.Decode(0).value(), "male");
  EXPECT_EQ(dict.Decode(1).value(), "female");
  EXPECT_EQ(dict.Decode(2).status().code(), StatusCode::kOutOfRange);
}

TEST(DictionaryTest, EncodeWithoutInsert) {
  StringDictionary dict;
  dict.EncodeOrAdd("a");
  EXPECT_EQ(dict.Encode("a").value(), 0u);
  EXPECT_EQ(dict.Encode("b").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(BessColumnTest, PacksAndUnpacksOffsets) {
  BessColumn bess({3, 0, 5});
  EXPECT_EQ(bess.bits_per_record(), 8u);
  bess.Append({7, 0, 31});
  bess.Append({1, 0, 2});
  bess.Append({0, 0, 0});
  EXPECT_EQ(bess.num_records(), 3u);
  EXPECT_EQ(bess.Get(0, 0), 7u);
  EXPECT_EQ(bess.Get(0, 1), 0u);
  EXPECT_EQ(bess.Get(0, 2), 31u);
  EXPECT_EQ(bess.Get(1, 0), 1u);
  EXPECT_EQ(bess.Get(1, 2), 2u);
  EXPECT_EQ(bess.Get(2, 2), 0u);
}

TEST(BessColumnTest, ZeroBitRecordsStoreNothing) {
  BessColumn bess({0, 0});
  for (int i = 0; i < 1000; ++i) bess.Append({0, 0});
  EXPECT_EQ(bess.num_records(), 1000u);
  EXPECT_EQ(bess.MemoryUsage(), 0u);
  EXPECT_EQ(bess.Get(999, 1), 0u);
}

TEST(BessColumnTest, CrossWordBoundaries) {
  // 17 bits per record guarantees fields straddle 64-bit word boundaries.
  BessColumn bess({17});
  Random rng(7);
  std::vector<uint64_t> expected;
  for (int i = 0; i < 500; ++i) {
    const uint64_t v = rng.Uniform(1ULL << 17);
    expected.push_back(v);
    bess.Append({v});
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(bess.Get(i, 0), expected[i]) << "row " << i;
  }
}

TEST(BessColumnTest, WideFieldsUpTo64Bits) {
  BessColumn bess({64, 1});
  bess.Append({~0ULL, 1});
  bess.Append({12345678901234567ULL, 0});
  EXPECT_EQ(bess.Get(0, 0), ~0ULL);
  EXPECT_EQ(bess.Get(0, 1), 1u);
  EXPECT_EQ(bess.Get(1, 0), 12345678901234567ULL);
}

TEST(BessColumnTest, CompactedCopyKeepsSelectedRows) {
  BessColumn bess({8});
  for (uint64_t i = 0; i < 10; ++i) bess.Append({i});
  BessColumn even = bess.CompactedCopy([](uint64_t row) {
    return row % 2 == 0;
  });
  EXPECT_EQ(even.num_records(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(even.Get(i, 0), i * 2);
  }
}

TEST(BessColumnTest, RejectsOverflowingValue) {
  BessColumn bess({2});
  EXPECT_THROW(bess.Append({4}), CheckFailure);
}

std::shared_ptr<CubeSchema> TestSchema() {
  return CubeSchema::Make(
             "t",
             {{"region", 8, 4, false}, {"tag", 16, 2, false}},
             {{"likes", DataType::kInt64}, {"score", DataType::kDouble}})
      .value();
}

EncodedBatch MakeBatch(const CubeSchema& schema, uint64_t rows,
                       uint64_t seed = 1) {
  EncodedBatch batch(schema);
  Random rng(seed);
  batch.num_rows = rows;
  for (uint64_t r = 0; r < rows; ++r) {
    batch.dim_offsets[0].push_back(rng.Uniform(4));
    batch.dim_offsets[1].push_back(rng.Uniform(2));
    batch.metric_ints[0].push_back(static_cast<int64_t>(r));
    batch.metric_doubles[1].push_back(static_cast<double>(r) * 0.5);
  }
  return batch;
}

TEST(BrickTest, AppendsRecordsWithHistory) {
  auto schema = TestSchema();
  const Bid bid = schema->BidFor({5, 3}).value();
  Brick brick(schema, bid);
  brick.AppendBatch(1, MakeBatch(*schema, 10));
  brick.AppendBatch(2, MakeBatch(*schema, 5));
  EXPECT_EQ(brick.num_records(), 15u);
  EXPECT_EQ(brick.history().ToString(), "[1:0-9][2:10-14]");
  EXPECT_EQ(brick.metric(0).GetInt64(12), 2);
  EXPECT_DOUBLE_EQ(brick.metric(1).GetDouble(3), 1.5);
}

TEST(BrickTest, DimCoordAddsRangeBase) {
  auto schema = TestSchema();
  // region coord 5 -> range idx 1 (base 4); tag coord 3 -> range idx 1
  // (base 2).
  const Bid bid = schema->BidFor({5, 3}).value();
  Brick brick(schema, bid);
  EncodedBatch batch(*schema);
  batch.num_rows = 1;
  batch.dim_offsets[0].push_back(1);  // offset 1 within region range
  batch.dim_offsets[1].push_back(0);  // offset 0 within tag range
  batch.metric_ints[0].push_back(7);
  batch.metric_doubles[1].push_back(1.0);
  brick.AppendBatch(3, batch);
  EXPECT_EQ(brick.DimCoord(0, 0), 5u);
  EXPECT_EQ(brick.DimCoord(0, 1), 2u);
}

TEST(BrickTest, MarkDeletedThenCompact) {
  auto schema = TestSchema();
  Brick brick(schema, 0);
  brick.AppendBatch(1, MakeBatch(*schema, 4));
  brick.MarkDeleted(2);
  brick.AppendBatch(3, MakeBatch(*schema, 2, /*seed=*/9));
  const int64_t kept0 = brick.metric(0).GetInt64(4);

  auto plan = aosi::PlanPurge(brick.history(), /*lse=*/4);
  ASSERT_TRUE(plan.needed);
  brick.ApplyCompaction(plan);
  EXPECT_EQ(brick.num_records(), 2u);
  EXPECT_EQ(brick.history().ToString(), "[3:0-1]");
  EXPECT_EQ(brick.metric(0).GetInt64(0), kept0);
}

TEST(BrickTest, CompactionPreservesColumnAlignment) {
  auto schema = TestSchema();
  Brick brick(schema, 0);
  brick.AppendBatch(2, MakeBatch(*schema, 50, 11));
  brick.AppendBatch(5, MakeBatch(*schema, 30, 22));
  // Roll back epoch 5.
  auto plan = aosi::PlanRollback(brick.history(), 5);
  ASSERT_TRUE(plan.needed);
  // Capture surviving rows before compaction.
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint64_t> dims;
  for (uint64_t r = 0; r < 50; ++r) {
    ints.push_back(brick.metric(0).GetInt64(r));
    doubles.push_back(brick.metric(1).GetDouble(r));
    dims.push_back(brick.DimCoord(r, 0));
  }
  brick.ApplyCompaction(plan);
  ASSERT_EQ(brick.num_records(), 50u);
  for (uint64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(brick.metric(0).GetInt64(r), ints[r]);
    EXPECT_DOUBLE_EQ(brick.metric(1).GetDouble(r), doubles[r]);
    EXPECT_EQ(brick.DimCoord(r, 0), dims[r]);
  }
}

TEST(BrickTest, HistoryMemoryIsPerTransactionNotPerRecord) {
  auto schema = TestSchema();
  Brick brick(schema, 0);
  brick.AppendBatch(1, MakeBatch(*schema, 10000));
  EXPECT_EQ(brick.HistoryMemoryUsage(), sizeof(aosi::EpochEntry));
  EXPECT_GT(brick.DataMemoryUsage(), 10000u * 8u);
}

TEST(BrickMapTest, MaterializesOnDemand) {
  auto schema = TestSchema();
  BrickMap map(schema);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(3), nullptr);
  Brick& b = map.GetOrCreate(3);
  EXPECT_EQ(b.bid(), 3u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(3), &b);
  map.GetOrCreate(3);
  EXPECT_EQ(map.size(), 1u);
}

TEST(BrickMapTest, AggregatesAcrossBricks) {
  auto schema = TestSchema();
  BrickMap map(schema);
  map.GetOrCreate(0).AppendBatch(1, MakeBatch(*schema, 10));
  map.GetOrCreate(1).AppendBatch(1, MakeBatch(*schema, 20));
  EXPECT_EQ(map.TotalRecords(), 30u);
  EXPECT_GT(map.DataMemoryUsage(), 0u);
  EXPECT_EQ(map.HistoryMemoryUsage(), 2 * sizeof(aosi::EpochEntry));
  size_t seen = 0;
  map.ForEach([&](Brick& brick) { seen += brick.num_records(); });
  EXPECT_EQ(seen, 30u);
}

TEST(BrickTest, MutationsInvalidateVisibilityCache) {
  // Every brick mutation is a quiescent point: it must both bump the
  // history version (so stale keys can never match) and clear the cache
  // (reclaiming retired entries). Covers append, delete-marker, and the
  // compaction paths used by purge and rollback.
  auto schema = TestSchema();
  Brick brick(schema, 0);
  brick.AppendBatch(1, MakeBatch(*schema, 10));

  auto prime = [&brick]() -> aosi::VisKey {
    const aosi::Snapshot snap{9, {}};
    const aosi::VisKey key =
        aosi::VisibilityCache::MakeKey(brick.history(), snap, false);
    if (brick.vis_cache().Lookup(key) == nullptr) {
      Bitmap bm = aosi::BuildVisibilityBitmap(brick.history(), snap);
      EXPECT_NE(brick.vis_cache().Publish(key, &bm).published, nullptr);
    }
    EXPECT_NE(brick.vis_cache().Lookup(key), nullptr);
    return key;
  };

  // Append.
  aosi::VisKey key = prime();
  uint64_t version = brick.history().version();
  brick.AppendBatch(2, MakeBatch(*schema, 5));
  EXPECT_GT(brick.history().version(), version);
  EXPECT_EQ(brick.vis_cache().Lookup(key), nullptr);

  // Delete marker.
  key = prime();
  version = brick.history().version();
  brick.MarkDeleted(3);
  EXPECT_GT(brick.history().version(), version);
  EXPECT_EQ(brick.vis_cache().Lookup(key), nullptr);

  // Purge compaction.
  brick.AppendBatch(4, MakeBatch(*schema, 4));
  key = prime();
  version = brick.history().version();
  auto purge = aosi::PlanPurge(brick.history(), /*lse=*/5);
  ASSERT_TRUE(purge.needed);
  brick.ApplyCompaction(purge);
  EXPECT_GT(brick.history().version(), version);
  EXPECT_EQ(brick.vis_cache().Lookup(key), nullptr);

  // Rollback compaction.
  brick.AppendBatch(6, MakeBatch(*schema, 3));
  key = prime();
  version = brick.history().version();
  auto rollback = aosi::PlanRollback(brick.history(), 6);
  ASSERT_TRUE(rollback.needed);
  brick.ApplyCompaction(rollback);
  EXPECT_GT(brick.history().version(), version);
  EXPECT_EQ(brick.vis_cache().Lookup(key), nullptr);
}

TEST(BrickMapTest, EraseRemovesBrick) {
  auto schema = TestSchema();
  BrickMap map(schema);
  map.GetOrCreate(5);
  map.Erase(5);
  EXPECT_EQ(map.Find(5), nullptr);
  EXPECT_EQ(map.size(), 0u);
}

}  // namespace
}  // namespace cubrick
