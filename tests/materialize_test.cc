// Record-materialization tests (paper footnote 1): row-wise reads with
// snapshot visibility, filtering, limits and dictionary decoding.

#include "query/materialize.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cubrick/database.h"

namespace cubrick {
namespace {

constexpr char kDdl[] =
    "CREATE CUBE visits (region string CARDINALITY 8 RANGE 2, "
    "day int CARDINALITY 16 RANGE 16, hits int, score double)";

TEST(MaterializeTest, RoundTripsLoadedRecords) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("visits", {{"US", 1, 10, 0.5},
                                 {"BR", 2, 20, 1.5},
                                 {"US", 3, 30, 2.5}})
                  .ok());
  auto rows = db.Select("visits", {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  // Collect (region, day, hits, score) tuples; order is unspecified.
  std::vector<std::string> rendered;
  for (const auto& row : *rows) {
    ASSERT_EQ(row.values.size(), 4u);
    rendered.push_back(row.values[0].as_string() + "/" +
                       row.values[1].ToString() + "/" +
                       row.values[2].ToString() + "/" +
                       row.values[3].ToString());
  }
  std::sort(rendered.begin(), rendered.end());
  EXPECT_EQ(rendered, (std::vector<std::string>{
                          "BR/2/20/1.5", "US/1/10/0.5", "US/3/30/2.5"}));
}

TEST(MaterializeTest, RespectsFilters) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("visits", {{"US", 1, 10, 0.0},
                                 {"BR", 2, 20, 0.0},
                                 {"US", 3, 30, 0.0}})
                  .ok());
  cubrick::Query q;
  auto us = db.EqFilter("visits", "region", "US");
  ASSERT_TRUE(us.ok());
  q.filters = {*us};
  auto rows = db.Select("visits", q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  for (const auto& row : *rows) {
    EXPECT_EQ(row.values[0].as_string(), "US");
  }
}

TEST(MaterializeTest, RespectsLimit) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back({"US", i % 16, i, 0.0});
  }
  ASSERT_TRUE(db.Load("visits", records).ok());
  MaterializeOptions options;
  options.limit = 7;
  auto rows = db.Select("visits", {}, options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 7u);
}

TEST(MaterializeTest, RespectsSnapshot) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("visits", {{"US", 1, 1, 0.0}}).ok());
  aosi::Txn pending = db.Begin();
  ASSERT_TRUE(db.LoadIn(pending, "visits", {{"BR", 2, 2, 0.0}}).ok());
  // Implicit Select runs at LCE: the pending row is invisible.
  auto rows = db.Select("visits", {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  ASSERT_TRUE(db.Commit(pending).ok());
  EXPECT_EQ(db.Select("visits", {})->size(), 2u);
}

TEST(MaterializeTest, DeletedPartitionsExcluded) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Load("visits", {{"US", 1, 1, 0.0}, {"BR", 2, 2, 0.0}}).ok());
  ASSERT_TRUE(db.DeletePartitions("visits", {}).ok());
  EXPECT_TRUE(db.Select("visits", {})->empty());
}

TEST(MaterializeTest, StringMetricDecoded) {
  Database db;
  ASSERT_TRUE(db.ExecuteDdl("CREATE CUBE logs (k int CARDINALITY 4, "
                            "msg string)")
                  .ok());
  ASSERT_TRUE(db.Load("logs", {{0, "hello"}, {1, "world"}}).ok());
  auto rows = db.Select("logs", {});
  ASSERT_TRUE(rows.ok());
  std::vector<std::string> messages;
  for (const auto& row : *rows) {
    messages.push_back(row.values[1].as_string());
  }
  std::sort(messages.begin(), messages.end());
  EXPECT_EQ(messages, (std::vector<std::string>{"hello", "world"}));
}

TEST(MaterializeTest, MissingCubeFails) {
  Database db;
  EXPECT_EQ(db.Select("nope", {}).status().code(), StatusCode::kNotFound);
}

TEST(MaterializeTest, BrickLevelApiHonorsSnapshots) {
  auto schema = CubeSchema::Make("t", {{"k", 4, 4, false}},
                                 {{"v", DataType::kInt64}})
                    .value();
  Brick brick(schema, 0);
  EncodedBatch batch(*schema);
  batch.num_rows = 2;
  batch.dim_offsets[0] = {0, 1};
  batch.metric_ints[0] = {10, 20};
  brick.AppendBatch(1, batch);
  brick.AppendBatch(5, batch);

  std::vector<MaterializedRow> rows;
  aosi::Snapshot snap{3, {}};
  const uint64_t produced = MaterializeBrick(
      brick, snap, ScanMode::kSnapshotIsolation, {}, {}, &rows);
  EXPECT_EQ(produced, 2u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].values[1].as_int64(), 10);
  EXPECT_EQ(rows[1].values[1].as_int64(), 20);

  rows.clear();
  MaterializeBrick(brick, snap, ScanMode::kReadUncommitted, {}, {}, &rows);
  EXPECT_EQ(rows.size(), 4u);
}

}  // namespace
}  // namespace cubrick
