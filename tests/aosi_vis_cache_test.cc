// Visibility-bitmap cache tests: key normalization (horizon clamping, deps
// filtering, RU collapsing), slot publish/lookup/eviction mechanics, EBR
// retirement of displaced entries (no decline backlog — Publish always
// stores), and a multi-threaded lookup/publish hammer (named *VisCache* so
// the TSan CI job picks it up).

#include "aosi/vis_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "aosi/epoch_vector.h"
#include "aosi/visibility.h"
#include "common/ebr.h"

namespace cubrick::aosi {
namespace {

Snapshot Reader(Epoch epoch, std::vector<Epoch> deps = {}) {
  Snapshot s;
  s.epoch = epoch;
  s.deps = EpochSet(std::move(deps));
  return s;
}

EpochVector SmallHistory() {
  EpochVector ev;
  ev.RecordAppend(3, 4);
  ev.RecordAppend(5, 2);
  return ev;
}

TEST(VisKeyTest, HorizonClampLetsLaterSnapshotsShareAKey) {
  const EpochVector ev = SmallHistory();  // max_epoch == 5
  const VisKey at_max = VisibilityCache::MakeKey(ev, Reader(5), false);
  const VisKey past1 = VisibilityCache::MakeKey(ev, Reader(7), false);
  const VisKey past2 = VisibilityCache::MakeKey(ev, Reader(1000), false);
  EXPECT_TRUE(at_max == past1);
  EXPECT_TRUE(at_max == past2);
  // A snapshot below the newest stamp selects a different prefix.
  const VisKey below = VisibilityCache::MakeKey(ev, Reader(4), false);
  EXPECT_FALSE(at_max == below);
}

TEST(VisKeyTest, DepsPastTheHorizonAreDropped) {
  const EpochVector ev = SmallHistory();  // max_epoch == 5
  // Dep 50 is beyond the clamped horizon (5): it cannot mask anything the
  // horizon admits, so the key must ignore it.
  const VisKey a = VisibilityCache::MakeKey(ev, Reader(100, {3, 50}), false);
  const VisKey b = VisibilityCache::MakeKey(ev, Reader(100, {3}), false);
  EXPECT_TRUE(a == b);
  // Dep 3 is at or before the horizon and masks run [0,4): it must stay.
  const VisKey c = VisibilityCache::MakeKey(ev, Reader(100), false);
  EXPECT_FALSE(a == c);
}

TEST(VisKeyTest, ReadUncommittedKeyIgnoresTheSnapshot) {
  const EpochVector ev = SmallHistory();
  const VisKey a = VisibilityCache::MakeKey(ev, Reader(2, {1}), true);
  const VisKey b = VisibilityCache::MakeKey(ev, Reader(9), true);
  EXPECT_TRUE(a == b);
  // ...but never collides with an SI key over the same history.
  const VisKey si = VisibilityCache::MakeKey(ev, Reader(9), false);
  EXPECT_FALSE(a == si);
}

TEST(VisKeyTest, HistoryMutationChangesEveryKey) {
  EpochVector ev = SmallHistory();
  const Snapshot snap = Reader(9);
  const VisKey before_si = VisibilityCache::MakeKey(ev, snap, false);
  const VisKey before_ru = VisibilityCache::MakeKey(ev, snap, true);
  ev.RecordAppend(6, 1);
  EXPECT_FALSE(before_si == VisibilityCache::MakeKey(ev, snap, false));
  EXPECT_FALSE(before_ru == VisibilityCache::MakeKey(ev, snap, true));
  const VisKey after_append = VisibilityCache::MakeKey(ev, snap, false);
  ev.RecordDelete(7);
  EXPECT_FALSE(after_append == VisibilityCache::MakeKey(ev, snap, false));
  const VisKey after_delete = VisibilityCache::MakeKey(ev, snap, false);
  ev.InstallRebuilt(EpochVector::FromRuns({{8, 0, 2, false}}));
  EXPECT_FALSE(after_delete == VisibilityCache::MakeKey(ev, snap, false));
}

VisKey KeyFor(uint64_t version, Epoch horizon) {
  VisKey key;
  key.history_version = version;
  key.horizon = horizon;
  return key;
}

TEST(VisCacheTest, MissThenPublishThenHit) {
  VisibilityCache cache;
  const VisKey key = KeyFor(1, 5);
  EXPECT_EQ(cache.Lookup(key), nullptr);

  Bitmap bm(9);
  bm.SetRange(0, 4);
  const std::string expect = bm.ToString();
  const auto published = cache.Publish(key, &bm);
  ASSERT_NE(published.published, nullptr);
  EXPECT_FALSE(published.evicted);
  EXPECT_EQ(published.published->ToString(), expect);

  const Bitmap* hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit, published.published);
  EXPECT_EQ(hit->ToString(), expect);

  // A different key — even one differing only in the version tag — misses.
  EXPECT_EQ(cache.Lookup(KeyFor(2, 5)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(1, 6)), nullptr);
}

TEST(VisCacheTest, PublishBeyondSlotsEvictsAndRetires) {
  VisibilityCache cache;
  // Pin before touching the cache: the evicted entry below must stay
  // dereferenceable for the lifetime of this guard, per the EBR contract.
  const ebr::Guard guard;
  // Fill every slot: no evictions yet.
  for (uint64_t i = 0; i < VisibilityCache::kSlots; ++i) {
    Bitmap bm(4, true);
    const auto r = cache.Publish(KeyFor(1, static_cast<Epoch>(i + 1)), &bm);
    ASSERT_NE(r.published, nullptr);
    EXPECT_FALSE(r.evicted);
  }

  // One more displaces the round-robin victim (the oldest entry) and
  // retires it — the evicted bitmap must stay dereferenceable while this
  // thread's guard is alive.
  const Bitmap* oldest = cache.Lookup(KeyFor(1, 1));
  ASSERT_NE(oldest, nullptr);
  Bitmap bm(4, true);
  const auto r = cache.Publish(KeyFor(1, 100), &bm);
  ASSERT_NE(r.published, nullptr);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(cache.Lookup(KeyFor(1, 1)), nullptr);
  EXPECT_EQ(oldest->ToString(), "1111");  // retired, not freed

  cache.Clear();
  EXPECT_EQ(cache.Lookup(KeyFor(1, 100)), nullptr);
}

TEST(VisCacheTest, PublishNeverDeclinesUnderUnboundedChurn) {
  // The pre-EBR cache declined once 64 evicted entries awaited a quiescent
  // point; with EBR retirement every publish must succeed no matter how
  // long the churn runs, and the collector must be able to reclaim all of
  // it once no guard is pinned.
  VisibilityCache cache;
  const uint64_t churn = VisibilityCache::kSlots + 200;
  for (uint64_t i = 0; i < churn; ++i) {
    Bitmap bm(4, true);
    const auto r = cache.Publish(KeyFor(1, static_cast<Epoch>(i + 1)), &bm);
    ASSERT_NE(r.published, nullptr);
    EXPECT_EQ(r.evicted, i >= VisibilityCache::kSlots);
  }
  cache.Clear();
  // No guard is live on any thread here, so limbo must drain completely.
  EXPECT_TRUE(ebr::Collector::Global().DrainForTest());
  EXPECT_EQ(ebr::Collector::Global().LimboObjectsForTest(), 0u);
}

TEST(VisCacheTest, CachedBitmapMatchesDirectBuild) {
  // End-to-end: the bitmap stored under MakeKey's normalized key is the one
  // BuildVisibilityBitmap produces, and later snapshots clamped to the same
  // horizon retrieve it verbatim.
  EpochVector ev;
  ev.RecordAppend(1, 2);
  ev.RecordAppend(3, 2);
  ev.RecordAppend(5, 1);
  ev.RecordDelete(3);
  ev.RecordAppend(5, 3);
  ev.RecordAppend(7, 1);

  VisibilityCache cache;
  const Snapshot at6 = Reader(6);
  const VisKey key = VisibilityCache::MakeKey(ev, at6, false);
  Bitmap built = BuildVisibilityBitmap(ev, at6);
  const std::string expect = built.ToString();
  ASSERT_NE(cache.Publish(key, &built).published, nullptr);

  const VisKey same = VisibilityCache::MakeKey(ev, Reader(6, {9}), false);
  const Bitmap* hit = cache.Lookup(same);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ToString(), expect);

  // A snapshot whose deps change visibility below the horizon misses.
  EXPECT_EQ(
      cache.Lookup(VisibilityCache::MakeKey(ev, Reader(6, {5}), false)),
      nullptr);
}

TEST(VisCacheConcurrencyTest, ConcurrentLookupAndPublishAreRaceFree) {
  // Hammer a single cache from several threads mixing lookups and publishes
  // over a small key set, dereferencing every pointer the cache hands back.
  // With 12 keys over 8 slots the threads continuously evict each other, so
  // the EBR retire/reclaim path runs concurrently with hits: a premature
  // free of an evicted entry a guard still protects is a use-after-free
  // ASan/TSan will catch.
  VisibilityCache cache;
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;
  constexpr Epoch kKeys = 12;
  constexpr size_t kBits = 130;  // three words, ragged tail
  std::atomic<uint64_t> checksum{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &checksum, t] {
      uint64_t local = 0;
      for (int i = 0; i < kIters; ++i) {
        // Per-iteration pin, exactly like a scan: the pointer handed back
        // below is only dereferenced inside the guard's critical section.
        const ebr::Guard guard;
        const Epoch horizon = static_cast<Epoch>((t + i) % kKeys + 1);
        const VisKey key = KeyFor(1, horizon);
        const Bitmap* bm = cache.Lookup(key);
        if (bm == nullptr) {
          Bitmap built(kBits);
          built.SetRange(0, static_cast<size_t>(horizon) * 10);
          const auto r = cache.Publish(key, &built);
          bm = r.published;
          ASSERT_NE(bm, nullptr);  // EBR cache never declines
        }
        // Every published bitmap for `horizon` has horizon*10 set bits;
        // a torn read or premature free breaks this invariant (and TSan).
        local += bm->CountSet();
        if (bm->CountSet() != static_cast<size_t>(horizon) * 10) {
          ADD_FAILURE() << "corrupt cached bitmap for horizon " << horizon;
          return;
        }
      }
      checksum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(checksum.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace cubrick::aosi
