// Unit tests for the common substrate: Status/Result, ShardQueue, Random,
// latency recorder, logging and Value.

#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "common/shard_queue.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/percentile.h"
#include "storage/data_type.h"

namespace cubrick {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kIOError); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("x"), Status::Aborted("x"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Aborted("y"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, RejectsOkStatusWithoutValue) {
  EXPECT_THROW(Result<int>(Status::OK()), std::logic_error);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(CheckTest, ThrowsWithLocation) {
  try {
    CUBRICK_CHECK(1 == 2);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_utils_test"),
              std::string::npos);
  }
}

TEST(ShardQueueTest, FifoOrder) {
  ShardQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.TryPop().value(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(ShardQueueTest, CloseDrainsThenEnds) {
  ShardQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(ShardQueueTest, BlockingPopWakesOnPush) {
  ShardQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 99);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Push(99);
  consumer.join();
}

TEST(ShardQueueTest, BoundedQueueBlocksProducer) {
  ShardQueue<int> q(/*max_size=*/2);
  q.Push(1);
  q.Push(2);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(3);
    pushed.store(true, std::memory_order_seq_cst);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load(std::memory_order_seq_cst));
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_seq_cst));
}

TEST(ShardQueueTest, ManyProducersOneConsumer) {
  ShardQueue<int> q;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(1);
    });
  }
  int consumed = 0;
  for (int i = 0; i < 4 * kPerProducer; ++i) {
    consumed += q.Pop().value();
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(consumed, 4 * kPerProducer);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(LatencyRecorderTest, PercentilesSorted) {
  obs::LatencyRecorder r;
  for (int64_t v : {50, 10, 30, 20, 40}) r.Record(v);
  EXPECT_EQ(r.Percentile(0), 10);
  EXPECT_EQ(r.Percentile(50), 30);
  EXPECT_EQ(r.Percentile(100), 50);
  EXPECT_DOUBLE_EQ(r.Mean(), 30.0);
  EXPECT_EQ(r.Max(), 50);
  EXPECT_EQ(r.count(), 5u);
}

TEST(LatencyRecorderTest, EmptyIsZero) {
  obs::LatencyRecorder r;
  EXPECT_EQ(r.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(r.Mean(), 0.0);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  EXPECT_GE(sw.ElapsedMicros(), 10'000);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMicros(), 10'000);
}

TEST(LoggingTest, LevelFilters) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must compile and not crash; output is suppressed by level.
  CUBRICK_LOG(Debug) << "hidden";
  CUBRICK_LOG(Error) << "shown";
  SetLogLevel(prev);
}

TEST(ValueTest, TypeDispatch) {
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(5).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_EQ(Value(5).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("x").type(), DataType::kString);
}

TEST(ValueTest, ToDoubleCoercion) {
  EXPECT_DOUBLE_EQ(Value(7).ToDouble().value(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToDouble().value(), 2.5);
  EXPECT_FALSE(Value("x").ToDouble().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value(1.0));  // different types
  EXPECT_EQ(Value("a"), Value("a"));
}

}  // namespace
}  // namespace cubrick
