// Unit tests for the observability core: counters, gauges, histograms, the
// process-wide registry, the exporters and the percentile helpers
// (docs/OBSERVABILITY.md).

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/percentile.h"

namespace cubrick::obs {
namespace {

// Each test uses its own metric names: the registry is process-global and
// the full binary can run all tests in one process.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetEnabled(true); }
  void TearDown() override { SetEnabled(true); }
};

TEST_F(ObsMetricsTest, CounterAddsAndReads) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter_basic");
  c->ResetForTest();
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST_F(ObsMetricsTest, DisabledWritesAreDropped) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter_disabled");
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge_disabled");
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.histogram_disabled");
  c->ResetForTest();
  g->ResetForTest();
  h->ResetForTest();
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  c->Add(5);
  g->Set(5);
  g->Add(5);
  h->Record(5);
  SetEnabled(true);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Read().count, 0u);
}

TEST_F(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge_basic");
  g->ResetForTest();
  g->Set(-7);
  EXPECT_EQ(g->Value(), -7);
  g->Add(10);
  EXPECT_EQ(g->Value(), 3);
}

TEST_F(ObsMetricsTest, HistogramBucketIndexIsPowerOfTwo) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Everything past the last finite bucket lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(~static_cast<uint64_t>(0)),
            Histogram::kNumBuckets - 1);
}

TEST_F(ObsMetricsTest, HistogramBucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            ~static_cast<uint64_t>(0));
  // Every value sits at or below its bucket's upper bound.
  for (uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 65536ull}) {
    EXPECT_LE(v, Histogram::BucketUpperBound(Histogram::BucketIndex(v)));
  }
}

TEST_F(ObsMetricsTest, HistogramSnapshotCountEqualsBucketSum) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.histogram_sum");
  h->ResetForTest();
  for (uint64_t v : {0ull, 1ull, 3ull, 200ull, 200ull, 9000ull}) h->Record(v);
  const HistogramSnapshot snap = h->Read();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0u + 1 + 3 + 200 + 200 + 9000);
  uint64_t bucket_sum = 0;
  for (uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(snap.count, bucket_sum);
  EXPECT_DOUBLE_EQ(snap.Mean(), static_cast<double>(snap.sum) / 6.0);
}

TEST_F(ObsMetricsTest, HistogramPercentileReturnsBucketUpperBound) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.histogram_pct");
  h->ResetForTest();
  // 9 samples in [128, 256) and one far outlier.
  for (int i = 0; i < 9; ++i) h->Record(130);
  h->Record(100'000);
  const HistogramSnapshot snap = h->Read();
  EXPECT_EQ(snap.Percentile(50), 255u);   // bucket [128, 256)
  EXPECT_EQ(snap.Percentile(100), 131071u);  // the outlier's bucket
  Histogram* empty =
      MetricsRegistry::Global().GetHistogram("test.histogram_empty");
  empty->ResetForTest();
  EXPECT_EQ(empty->Read().Percentile(50), 0u);
}

TEST_F(ObsMetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.registry_stable");
  Counter* b = reg.GetCounter("test.registry_stable");
  EXPECT_EQ(a, b);
  EXPECT_NE(static_cast<void*>(a),
            static_cast<void*>(reg.GetGauge("test.registry_stable")));
}

TEST_F(ObsMetricsTest, SnapshotContainsRegisteredInstruments) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snapshot_counter")->ResetForTest();
  reg.GetCounter("test.snapshot_counter")->Add(3);
  reg.GetGauge("test.snapshot_gauge")->Set(-2);
  reg.GetHistogram("test.snapshot_histogram")->Record(10);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_TRUE(snap.counters.count("test.snapshot_counter"));
  EXPECT_EQ(snap.counters.at("test.snapshot_counter"), 3u);
  ASSERT_TRUE(snap.gauges.count("test.snapshot_gauge"));
  EXPECT_EQ(snap.gauges.at("test.snapshot_gauge"), -2);
  ASSERT_TRUE(snap.histograms.count("test.snapshot_histogram"));
  EXPECT_GE(snap.histograms.at("test.snapshot_histogram").count, 1u);
}

TEST_F(ObsMetricsTest, PrometheusExposition) {
  MetricsSnapshot snap;
  snap.counters["test.promo_total"] = 7;
  snap.gauges["test.promo_gauge"] = -5;
  Histogram h;
  h.Record(3);
  h.Record(300);
  snap.histograms["test.promo_us"] = h.Read();
  const std::string text = ExportPrometheus(snap);
  EXPECT_NE(text.find("# TYPE cubrick_test_promo_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("cubrick_test_promo_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cubrick_test_promo_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("cubrick_test_promo_gauge -5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cubrick_test_promo_us histogram"),
            std::string::npos);
  // Cumulative buckets: value 3 -> le="3", and the +Inf bucket always ends
  // the series with the total count.
  EXPECT_NE(text.find("cubrick_test_promo_us_bucket{le=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cubrick_test_promo_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cubrick_test_promo_us_sum 303"), std::string::npos);
  EXPECT_NE(text.find("cubrick_test_promo_us_count 2"), std::string::npos);
}

TEST_F(ObsMetricsTest, JsonExposition) {
  MetricsSnapshot snap;
  snap.counters["test.json_total"] = 11;
  snap.gauges["test.json_gauge"] = 4;
  Histogram h;
  h.Record(5);
  snap.histograms["test.json_us"] = h.Read();
  const std::string json = ExportJson(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_total\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_us\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [[7, 1]]"), std::string::npos);
}

TEST(PercentileRankTest, MatchesRecorderSemantics) {
  // rank = p/100 * (n-1), rounded to nearest index.
  EXPECT_EQ(PercentileRank(5, 0), 0u);
  EXPECT_EQ(PercentileRank(5, 50), 2u);
  EXPECT_EQ(PercentileRank(5, 100), 4u);
  EXPECT_EQ(PercentileRank(4, 50), 2u);  // 1.5 rounds up
  EXPECT_EQ(PercentileRank(1, 99), 0u);
}

}  // namespace
}  // namespace cubrick::obs
