// Transaction-manager tests, including the paper's Table I history and the
// EC > LCE >= LSE invariant.

#include "aosi/txn_manager.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cubrick::aosi {
namespace {

// Paper Table I: three concurrent RW transactions on a single node.
TEST(TxnManagerTest, TableI_History) {
  TxnManager tm;
  EXPECT_EQ(tm.EC(), 1u);
  EXPECT_EQ(tm.LCE(), 0u);
  EXPECT_TRUE(tm.PendingTxs().empty());

  Txn t1 = tm.BeginReadWrite();
  EXPECT_EQ(t1.epoch, 1u);
  EXPECT_TRUE(t1.deps.empty());
  EXPECT_EQ(tm.PendingTxs(), EpochSet({1}));

  Txn t2 = tm.BeginReadWrite();
  EXPECT_EQ(t2.epoch, 2u);
  EXPECT_EQ(t2.deps, EpochSet({1}));
  EXPECT_EQ(tm.PendingTxs(), EpochSet({1, 2}));

  Txn t3 = tm.BeginReadWrite();
  EXPECT_EQ(t3.epoch, 3u);
  EXPECT_EQ(t3.deps, EpochSet({1, 2}));
  EXPECT_EQ(tm.PendingTxs(), EpochSet({1, 2, 3}));
  EXPECT_EQ(tm.EC(), 4u);

  // commit T1 -> LCE advances to 1.
  ASSERT_TRUE(tm.Commit(t1).ok());
  EXPECT_EQ(tm.LCE(), 1u);
  EXPECT_EQ(tm.PendingTxs(), EpochSet({2, 3}));

  // commit T3 -> committed but NOT visible: T2 (< 3) is still pending, so
  // LCE stays at 1.
  ASSERT_TRUE(tm.Commit(t3).ok());
  EXPECT_EQ(tm.LCE(), 1u);
  EXPECT_EQ(tm.PendingTxs(), EpochSet({2}));

  // commit T2 -> all transactions <= 3 finished; LCE jumps to 3.
  ASSERT_TRUE(tm.Commit(t2).ok());
  EXPECT_EQ(tm.LCE(), 3u);
  EXPECT_TRUE(tm.PendingTxs().empty());
  EXPECT_EQ(tm.EC(), 4u);
}

TEST(TxnManagerTest, InvariantEcGreaterThanLceGeLse) {
  TxnManager tm;
  auto check = [&] {
    EXPECT_GT(tm.EC(), tm.LCE());
    EXPECT_GE(tm.LCE(), tm.LSE());
  };
  check();
  Txn t1 = tm.BeginReadWrite();
  check();
  Txn t2 = tm.BeginReadWrite();
  check();
  ASSERT_TRUE(tm.Commit(t1).ok());
  tm.TryAdvanceLSE(100);
  check();
  ASSERT_TRUE(tm.Commit(t2).ok());
  tm.TryAdvanceLSE(100);
  check();
  EXPECT_EQ(tm.LSE(), tm.LCE());
}

TEST(TxnManagerTest, ReadOnlyRunsAtLce) {
  TxnManager tm;
  Txn ro0 = tm.BeginReadOnly();
  EXPECT_EQ(ro0.epoch, 0u);
  EXPECT_TRUE(ro0.read_only());
  tm.EndReadOnly(ro0);

  Txn w = tm.BeginReadWrite();
  // Uncommitted writer: RO snapshots still see epoch 0.
  Txn ro1 = tm.BeginReadOnly();
  EXPECT_EQ(ro1.epoch, 0u);
  tm.EndReadOnly(ro1);

  ASSERT_TRUE(tm.Commit(w).ok());
  Txn ro2 = tm.BeginReadOnly();
  EXPECT_EQ(ro2.epoch, w.epoch);
  EXPECT_TRUE(ro2.deps.empty());
  tm.EndReadOnly(ro2);
}

TEST(TxnManagerTest, RollbackUnblocksLce) {
  TxnManager tm;
  Txn t1 = tm.BeginReadWrite();
  Txn t2 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t2).ok());
  EXPECT_EQ(tm.LCE(), 0u);  // blocked by pending T1
  ASSERT_TRUE(tm.Rollback(t1).ok());
  // T1 aborted: it no longer blocks, and LCE lands on T2 (the largest
  // committed epoch), not on the aborted T1.
  EXPECT_EQ(tm.LCE(), t2.epoch);
}

TEST(TxnManagerTest, LceSkipsAbortedTail) {
  TxnManager tm;
  Txn t1 = tm.BeginReadWrite();
  Txn t2 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t1).ok());
  ASSERT_TRUE(tm.Rollback(t2).ok());
  // Aborted T2 never becomes LCE.
  EXPECT_EQ(tm.LCE(), t1.epoch);
}

TEST(TxnManagerTest, DoubleCommitRejected) {
  TxnManager tm;
  Txn t = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t).ok());
  EXPECT_FALSE(tm.Commit(t).ok());
  EXPECT_FALSE(tm.Rollback(t).ok());
}

TEST(TxnManagerTest, CommitOfUnknownEpochRejected) {
  TxnManager tm;
  Txn fake;
  fake.epoch = 42;
  fake.type = TxnType::kReadWrite;
  EXPECT_EQ(tm.Commit(fake).code(), StatusCode::kFailedPrecondition);
}

TEST(TxnManagerTest, DepsOnlyContainOlderPending) {
  TxnManager tm;
  Txn t1 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t1).ok());
  Txn t2 = tm.BeginReadWrite();
  // T1 committed before T2 started: not a dependency.
  EXPECT_TRUE(t2.deps.empty());
  ASSERT_TRUE(tm.Commit(t2).ok());
}

TEST(TxnManagerTest, LseClampedByLce) {
  TxnManager tm;
  Txn t1 = tm.BeginReadWrite();
  EXPECT_EQ(tm.TryAdvanceLSE(50), 0u);  // nothing committed yet
  ASSERT_TRUE(tm.Commit(t1).ok());
  EXPECT_EQ(tm.TryAdvanceLSE(50), t1.epoch);
}

TEST(TxnManagerTest, LseClampedByActiveReader) {
  TxnManager tm;
  Txn t1 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t1).ok());
  Txn t2 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t2).ok());

  // An old RO snapshot at epoch t1 pins LSE even though LCE moved to t2.
  TxnManager tm2;  // fresh manager to control the reader's snapshot epoch
  Txn a = tm2.BeginReadWrite();
  ASSERT_TRUE(tm2.Commit(a).ok());
  Txn reader = tm2.BeginReadOnly();  // snapshot at epoch a
  Txn b = tm2.BeginReadWrite();
  ASSERT_TRUE(tm2.Commit(b).ok());
  EXPECT_EQ(tm2.TryAdvanceLSE(100), a.epoch);
  tm2.EndReadOnly(reader);
  EXPECT_EQ(tm2.TryAdvanceLSE(100), b.epoch);
}

TEST(TxnManagerTest, LseClampedByWriterDeps) {
  TxnManager tm;
  Txn t1 = tm.BeginReadWrite();
  Txn t2 = tm.BeginReadWrite();  // deps = {t1}
  ASSERT_TRUE(tm.Commit(t1).ok());
  // t2 is active with a dep on t1: LSE may not reach t1 (t2 must still be
  // able to exclude it from its snapshot).
  EXPECT_EQ(tm.TryAdvanceLSE(100), t1.epoch - 1);
  ASSERT_TRUE(tm.Commit(t2).ok());
  EXPECT_EQ(tm.TryAdvanceLSE(100), t2.epoch);
}

TEST(TxnManagerTest, LseNeverRetreats) {
  TxnManager tm;
  Txn t1 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t1).ok());
  EXPECT_EQ(tm.TryAdvanceLSE(100), 1u);
  Txn ro = tm.BeginReadOnly();
  // A later smaller candidate or gating must not move LSE backwards.
  EXPECT_EQ(tm.TryAdvanceLSE(0), 1u);
  tm.EndReadOnly(ro);
}

TEST(TxnManagerTest, RemoteHorizonPinsLse) {
  // Begin-protocol phase 2: a horizon registered for a remote transaction
  // clamps this node's LSE exactly like a local snapshot's would, and
  // NoteRemoteFinish releases the pin.
  TxnManager tm(1, 2);
  Txn t1 = tm.BeginReadWrite();  // epoch 1
  ASSERT_TRUE(tm.Commit(t1).ok());
  tm.ObserveClock(8);
  Txn t9 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t9).ok());
  ASSERT_TRUE(tm.RegisterRemoteHorizon(/*epoch=*/12, /*horizon=*/t1.epoch));
  EXPECT_EQ(tm.TryAdvanceLSE(100), t1.epoch);
  tm.NoteRemoteFinish(12, /*committed=*/true);
  // The pin is gone and epoch 12 committed, so LCE (and LSE) pass it.
  EXPECT_EQ(tm.TryAdvanceLSE(100), 12u);
}

TEST(TxnManagerTest, RemoteHorizonRejectedWhenLsePassedIt) {
  // A registration that arrives after LSE already passed the horizon can
  // protect nothing (purge may have run); the coordinator must redraw.
  TxnManager tm(1, 2);
  Txn t1 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t1).ok());
  Txn t3 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t3).ok());
  EXPECT_EQ(tm.TryAdvanceLSE(100), t3.epoch);
  EXPECT_FALSE(tm.RegisterRemoteHorizon(/*epoch=*/10, /*horizon=*/t1.epoch));
  // The refused registration left no pin behind.
  EXPECT_EQ(tm.TryAdvanceLSE(100), t3.epoch);
}

TEST(TxnManagerTest, AugmentDepsFailsWhenLsePassedTheNewHorizon) {
  // The dep learned from a peer drags the horizon below an LSE advance
  // that slipped in after the epoch draw; AugmentDeps must report it so
  // the cluster layer aborts the draft.
  TxnManager tm(1, 2);
  Txn t1 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t1).ok());
  Txn t3 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t3).ok());
  EXPECT_EQ(tm.TryAdvanceLSE(100), t3.epoch);
  Txn t5 = tm.BeginReadWrite();
  // Peer reports epoch 2 (a remote transaction) as still pending: t5's
  // horizon would fall to 1, below the standing LSE.
  EXPECT_FALSE(tm.AugmentDeps(&t5, EpochSet({2})));
  ASSERT_TRUE(tm.Rollback(t5).ok());
}

TEST(TxnManagerTest, RemoteBeginBlocksLce) {
  TxnManager tm(1, 2);  // node 1 of 2: local epochs 1, 3, 5, ...
  Txn t1 = tm.BeginReadWrite();
  EXPECT_EQ(t1.epoch, 1u);
  tm.ObserveClock(2);  // learn remote node's clock
  tm.NoteRemoteBegin(2);
  Txn t3 = tm.BeginReadWrite();
  EXPECT_EQ(t3.epoch, 3u);
  EXPECT_EQ(t3.deps, EpochSet({1, 2}));

  ASSERT_TRUE(tm.Commit(t1).ok());
  ASSERT_TRUE(tm.Commit(t3).ok());
  // Remote epoch 2 still pending: LCE stuck at 1.
  EXPECT_EQ(tm.LCE(), 1u);
  tm.NoteRemoteFinish(2, /*committed=*/true);
  EXPECT_EQ(tm.LCE(), 3u);
}

TEST(TxnManagerTest, RemoteAbortDoesNotBecomeLce) {
  TxnManager tm(1, 2);
  Txn t1 = tm.BeginReadWrite();
  ASSERT_TRUE(tm.Commit(t1).ok());
  tm.NoteRemoteBegin(4);
  tm.NoteRemoteFinish(4, /*committed=*/false);
  EXPECT_EQ(tm.LCE(), 1u);
}

TEST(TxnManagerTest, RemoteFinishBeforeBeginIsHandled) {
  // Message reordering: the finish arrives before the begin broadcast.
  TxnManager tm(1, 2);
  tm.NoteRemoteFinish(2, /*committed=*/true);
  tm.NoteRemoteBegin(2);  // late begin must not resurrect the txn
  EXPECT_EQ(tm.LCE(), 2u);
  EXPECT_TRUE(tm.PendingTxs().empty());
}

TEST(TxnManagerTest, RemoteDepsDelayLce) {
  // Commit broadcast carries T.deps: a node that never saw T's dependency
  // pending still must not advance LCE past T until the dep finishes.
  TxnManager tm(2, 2);  // node 2: local epochs 2, 4, ...
  tm.NoteRemoteBegin(1);
  tm.NoteRemoteBegin(3);
  tm.NoteRemoteDeps(3, EpochSet({1}));
  tm.NoteRemoteFinish(3, /*committed=*/true);
  EXPECT_EQ(tm.LCE(), 0u);
  tm.NoteRemoteFinish(1, /*committed=*/true);
  EXPECT_EQ(tm.LCE(), 3u);
}

TEST(TxnManagerTest, ConcurrentBeginsProduceUniqueEpochs) {
  TxnManager tm;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::vector<Epoch>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Txn txn = tm.BeginReadWrite();
        seen[t].push_back(txn.epoch);
        ASSERT_TRUE(tm.Commit(txn).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EpochSet all;
  for (const auto& v : seen) {
    for (Epoch e : v) all.Insert(e);
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(tm.LCE(), all.Max());
  EXPECT_EQ(tm.NumTracked(), 0u);
}

}  // namespace
}  // namespace cubrick::aosi
