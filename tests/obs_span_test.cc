// Unit tests for trace spans and the bounded span ring
// (docs/OBSERVABILITY.md).

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"

namespace cubrick::obs {
namespace {

class ObsSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    GlobalSpanRing().ResetForTest();
  }
  void TearDown() override { SetEnabled(true); }
};

TEST_F(ObsSpanTest, SpanRecordsIntoGlobalRing) {
  {
    ObsSpan span("test.span_basic");
  }
  EXPECT_EQ(GlobalSpanRing().TotalRecorded(), 1u);
  const auto records = GlobalSpanRing().Collect();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].name, "test.span_basic");
  EXPECT_GE(records[0].dur_us, 0);
  EXPECT_GE(records[0].start_us, 0);
}

TEST_F(ObsSpanTest, FinishIsIdempotent) {
  ObsSpan span("test.span_finish");
  const int64_t dur = span.Finish();
  EXPECT_GE(dur, 0);
  EXPECT_EQ(span.Finish(), 0);  // second Finish is a no-op
  EXPECT_EQ(GlobalSpanRing().TotalRecorded(), 1u);
}

TEST_F(ObsSpanTest, DisabledSpansRecordNothing) {
  SetEnabled(false);
  {
    ObsSpan span("test.span_disabled");
  }
  SetEnabled(true);
  EXPECT_EQ(GlobalSpanRing().TotalRecorded(), 0u);
  EXPECT_TRUE(GlobalSpanRing().Collect().empty());
}

TEST_F(ObsSpanTest, SpanPublishesIntoHistogram) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.span_latency_us");
  h->ResetForTest();
  {
    ObsSpan span("test.span_histogram", h);
  }
  EXPECT_EQ(h->Read().count, 1u);
}

TEST_F(ObsSpanTest, RingKeepsOnlyTheMostRecentCapacity) {
  SpanRing& ring = GlobalSpanRing();
  const size_t total = SpanRing::kCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    ring.Record("test.span_wrap", static_cast<int64_t>(i), 1);
  }
  EXPECT_EQ(ring.TotalRecorded(), total);
  const auto records = ring.Collect();
  EXPECT_EQ(records.size(), SpanRing::kCapacity);
  // Oldest surviving span is the one kCapacity back from the end.
  EXPECT_EQ(records.front().start_us, static_cast<int64_t>(100));
  EXPECT_EQ(records.back().start_us, static_cast<int64_t>(total - 1));
}

}  // namespace
}  // namespace cubrick::obs
