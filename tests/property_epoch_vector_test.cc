// Property-based tests over randomized transactional histories: the
// epochs-vector / visibility / purge / rollback machinery is checked against
// a naive per-record reference model for thousands of generated schedules.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "aosi/purge.h"
#include "aosi/visibility.h"
#include "common/random.h"

namespace cubrick::aosi {
namespace {

// Reference model: every record individually stamped with its epoch; deletes
// recorded as (epoch, boundary). Visibility computed record-by-record from
// first principles.
struct RefModel {
  struct Rec {
    Epoch epoch;
  };
  struct Del {
    Epoch epoch;
    size_t boundary;
  };
  std::vector<Rec> records;
  std::vector<Del> deletes;

  void Append(Epoch e, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) records.push_back({e});
  }
  void Delete(Epoch e) { deletes.push_back({e, records.size()}); }

  bool Visible(size_t idx, const Snapshot& snap) const {
    if (!snap.Sees(records[idx].epoch)) return false;
    for (const auto& del : deletes) {
      if (!snap.Sees(del.epoch)) continue;
      if (records[idx].epoch < del.epoch) return false;
      if (records[idx].epoch == del.epoch && idx < del.boundary) {
        return false;
      }
    }
    return true;
  }

  Bitmap VisibilityBitmap(const Snapshot& snap) const {
    Bitmap bm(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      if (Visible(i, snap)) bm.Set(i);
    }
    return bm;
  }
};

struct GeneratedHistory {
  EpochVector ev;
  RefModel ref;
  Epoch max_epoch = 0;
};

GeneratedHistory Generate(Random* rng, int ops, double delete_prob) {
  GeneratedHistory h;
  // A pool of "active" epochs to mimic interleaved transactions, including
  // out-of-order arrivals (distributed logical clocks).
  for (int op = 0; op < ops; ++op) {
    const Epoch e = 1 + rng->Uniform(static_cast<uint64_t>(ops));
    h.max_epoch = std::max(h.max_epoch, e);
    if (rng->NextDouble() < delete_prob && h.ref.records.size() > 0) {
      h.ev.RecordDelete(e);
      h.ref.Delete(e);
    } else {
      const uint64_t count = 1 + rng->Uniform(5);
      h.ev.RecordAppend(e, count);
      h.ref.Append(e, count);
    }
  }
  return h;
}

Snapshot RandomSnapshot(Random* rng, Epoch max_epoch) {
  Snapshot snap;
  snap.epoch = rng->Uniform(max_epoch + 2);
  std::vector<Epoch> deps;
  const size_t num_deps = rng->Uniform(4);
  for (size_t i = 0; i < num_deps; ++i) {
    deps.push_back(1 + rng->Uniform(max_epoch + 1));
  }
  snap.deps = EpochSet(deps);
  return snap;
}

class RandomHistoryTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHistoryTest,
                         ::testing::Range(0, 12));

TEST_P(RandomHistoryTest, VisibilityMatchesReferenceModel) {
  Random rng(1000 + static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 30; ++round) {
    auto h = Generate(&rng, 40, /*delete_prob=*/0.15);
    for (int probe = 0; probe < 20; ++probe) {
      const Snapshot snap = RandomSnapshot(&rng, h.max_epoch);
      const Bitmap actual = BuildVisibilityBitmap(h.ev, snap);
      const Bitmap expected = h.ref.VisibilityBitmap(snap);
      ASSERT_EQ(actual.ToString(), expected.ToString())
          << "history=" << h.ev.ToString() << " reader=" << snap.epoch
          << " deps=" << snap.deps.ToString();
    }
  }
}

TEST_P(RandomHistoryTest, PurgePreservesFutureSnapshots) {
  Random rng(2000 + static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 20; ++round) {
    auto h = Generate(&rng, 30, 0.2);
    const Epoch lse = rng.Uniform(h.max_epoch + 2);
    auto plan = PlanPurge(h.ev, lse);
    if (!plan.needed) continue;

    // Every snapshot a future reader can hold: epoch >= lse, deps > lse.
    for (int probe = 0; probe < 15; ++probe) {
      Snapshot snap;
      snap.epoch = lse + rng.Uniform(h.max_epoch + 2);
      std::vector<Epoch> deps;
      for (size_t d = 0; d < rng.Uniform(3); ++d) {
        deps.push_back(lse + 1 + rng.Uniform(h.max_epoch + 1));
      }
      snap.deps = EpochSet(deps);

      const Bitmap before = BuildVisibilityBitmap(h.ev, snap);
      const Bitmap after = BuildVisibilityBitmap(plan.new_history, snap);
      // Kept rows must be exactly the visible rows, in order.
      std::vector<size_t> surviving_visible;
      size_t new_idx = 0;
      for (size_t i = 0; i < before.size(); ++i) {
        if (plan.keep.Get(i)) {
          ASSERT_LT(new_idx, after.size());
          ASSERT_EQ(after.Get(new_idx), before.Get(i))
              << "row " << i << " history=" << h.ev.ToString()
              << " purged=" << plan.new_history.ToString() << " lse=" << lse
              << " reader=" << snap.epoch;
          ++new_idx;
        } else {
          ASSERT_FALSE(before.Get(i))
              << "purge at lse=" << lse << " dropped row " << i
              << " visible to epoch " << snap.epoch
              << " history=" << h.ev.ToString();
        }
      }
    }
  }
}

TEST_P(RandomHistoryTest, RollbackEqualsNeverHappened) {
  Random rng(3000 + static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 20; ++round) {
    // Build two histories in parallel: one with a victim's ops, one without.
    EpochVector with, without;
    Random gen(rng.Next());
    const Epoch victim = 1 + gen.Uniform(20);
    Epoch max_epoch = 0;
    for (int op = 0; op < 30; ++op) {
      const Epoch e = 1 + gen.Uniform(20);
      max_epoch = std::max(max_epoch, e);
      const bool is_delete = gen.OneIn(6) && with.num_records() > 0;
      if (is_delete) {
        with.RecordDelete(e);
        if (e != victim) without.RecordDelete(e);
      } else {
        const uint64_t count = 1 + gen.Uniform(3);
        with.RecordAppend(e, count);
        // Mirror non-victim appends so both histories agree on the
        // relative order of surviving records.
        if (e != victim) without.RecordAppend(e, count);
      }
    }
    auto plan = PlanRollback(with, victim);
    const EpochVector rolled =
        plan.needed ? plan.new_history : with;

    // All snapshots that exclude the victim agree between `rolled` and
    // `without`.
    for (int probe = 0; probe < 10; ++probe) {
      Snapshot snap = RandomSnapshot(&rng, max_epoch);
      snap.deps.Insert(victim);  // a snapshot that cannot see the victim
      ASSERT_EQ(BuildVisibilityBitmap(rolled, snap).CountSet(),
                BuildVisibilityBitmap(without, snap).CountSet())
          << "victim=" << victim << " with=" << with.ToString()
          << " rolled=" << rolled.ToString()
          << " without=" << without.ToString();
    }
  }
}

TEST_P(RandomHistoryTest, RetainUpToDropsExactlyNewerRuns) {
  Random rng(4000 + static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 20; ++round) {
    auto h = Generate(&rng, 30, 0.15);
    const Epoch lse = rng.Uniform(h.max_epoch + 2);
    auto plan = PlanRetainUpTo(h.ev, lse);
    const EpochVector& result = plan.needed ? plan.new_history : h.ev;
    for (const auto& run : result.Decode()) {
      EXPECT_LE(run.epoch, lse) << result.ToString();
    }
    // Row count = rows with epoch <= lse.
    uint64_t expected = 0;
    for (const auto& run : h.ev.Decode()) {
      if (!run.is_delete && run.epoch <= lse) {
        expected += run.end - run.begin;
      }
    }
    EXPECT_EQ(result.num_records(), expected);
  }
}

TEST_P(RandomHistoryTest, DecodeRoundTripsAlways) {
  Random rng(5000 + static_cast<uint64_t>(GetParam()));
  auto h = Generate(&rng, 60, 0.2);
  EXPECT_TRUE(EpochVector::FromRuns(h.ev.Decode()) == h.ev);
}

TEST_P(RandomHistoryTest, PurgeIsIdempotent) {
  Random rng(6000 + static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 15; ++round) {
    auto h = Generate(&rng, 25, 0.2);
    const Epoch lse = rng.Uniform(h.max_epoch + 2);
    auto first = PlanPurge(h.ev, lse);
    if (!first.needed) continue;
    auto second = PlanPurge(first.new_history, lse);
    if (second.needed) {
      // A second purge at the same LSE must not remove any further records.
      EXPECT_TRUE(second.keep.All())
          << "first=" << first.new_history.ToString()
          << " second=" << second.new_history.ToString();
    }
  }
}

}  // namespace
}  // namespace cubrick::aosi
