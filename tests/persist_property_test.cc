// Persistence property test: under a randomized workload with checkpoints
// at arbitrary points, a crash + recovery must restore exactly the state of
// the last completed checkpoint — never more, never less, across appends,
// partition deletes, rollbacks and purges.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "cubrick/database.h"

namespace cubrick {
namespace {

namespace fs = std::filesystem;

struct StateSnapshot {
  double sum = 0;
  double count = 0;
};

class PersistPropertyTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PersistPropertyTest, ::testing::Range(0, 6));

TEST_P(PersistPropertyTest, RecoveryEqualsLastCheckpoint) {
  const auto dir =
      fs::temp_directory_path() /
      ("cubrick_persist_prop_" + std::to_string(GetParam()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  DatabaseOptions options;
  options.data_dir = dir.string();
  constexpr char kDdl[] =
      "CREATE CUBE p (bucket int CARDINALITY 16 RANGE 2, v int)";

  Random rng(4242 + static_cast<uint64_t>(GetParam()));
  StateSnapshot at_last_checkpoint;
  bool checkpointed = false;

  {
    Database db(options);
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    Query q;
    q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};

    for (int step = 0; step < 80; ++step) {
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        std::vector<Record> rows;
        const uint64_t n = 1 + rng.Uniform(5);
        for (uint64_t i = 0; i < n; ++i) {
          rows.push_back({static_cast<int64_t>(rng.Uniform(16)),
                          static_cast<int64_t>(rng.Uniform(100))});
        }
        ASSERT_TRUE(db.Load("p", rows).ok());
      } else if (dice < 0.6) {
        // Partition-granular delete of one random bucket range.
        const uint64_t lo = rng.Uniform(8) * 2;
        auto filter = db.RangeFilter("p", "bucket", lo, lo + 1);
        ASSERT_TRUE(filter.ok());
        ASSERT_TRUE(db.DeletePartitions("p", {*filter}).ok());
      } else if (dice < 0.7) {
        // An aborted explicit transaction leaves nothing.
        aosi::Txn txn = db.Begin();
        ASSERT_TRUE(db.LoadIn(txn, "p", {{0, 999}}).ok());
        ASSERT_TRUE(db.Rollback(txn).ok());
      } else if (dice < 0.8) {
        db.PurgeAll();
      } else {
        auto lse = db.Checkpoint();
        ASSERT_TRUE(lse.ok()) << lse.status().ToString();
        auto result = db.Query("p", q);
        ASSERT_TRUE(result.ok());
        at_last_checkpoint.sum = result->Single(0, AggSpec::Fn::kSum);
        at_last_checkpoint.count = result->Single(1, AggSpec::Fn::kCount);
        checkpointed = true;
      }
    }
    // Crash: Database destroyed without a final checkpoint.
  }

  Database db(options);
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  auto result = db.Query("p", q);
  ASSERT_TRUE(result.ok());
  if (!checkpointed) {
    EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount), 0.0);
  } else {
    EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum),
                     at_last_checkpoint.sum)
        << "seed " << GetParam();
    EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount),
                     at_last_checkpoint.count);
  }
  // The recovered database keeps working normally.
  ASSERT_TRUE(db.Load("p", {{0, 1}}).ok());
  auto after = db.Query("p", q);
  EXPECT_DOUBLE_EQ(after->Single(1, AggSpec::Fn::kCount),
                   result->Single(1, AggSpec::Fn::kCount) + 1);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cubrick
