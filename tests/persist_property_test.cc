// Persistence property test: under a randomized workload with checkpoints
// at arbitrary points, a crash + recovery must restore exactly the state of
// the last completed checkpoint — never more, never less, across appends,
// partition deletes, rollbacks and purges.

#include <gtest/gtest.h>

#include <filesystem>

#include "check/si_oracle.h"
#include "common/random.h"
#include "cubrick/database.h"
#include "persist/flush_manager.h"
#include "query/executor.h"

namespace cubrick {
namespace {

namespace fs = std::filesystem;

struct StateSnapshot {
  double sum = 0;
  double count = 0;
};

class PersistPropertyTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PersistPropertyTest, ::testing::Range(0, 6));

TEST_P(PersistPropertyTest, RecoveryEqualsLastCheckpoint) {
  const auto dir =
      fs::temp_directory_path() /
      ("cubrick_persist_prop_" + std::to_string(GetParam()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  DatabaseOptions options;
  options.data_dir = dir.string();
  constexpr char kDdl[] =
      "CREATE CUBE p (bucket int CARDINALITY 16 RANGE 2, v int)";

  Random rng(4242 + static_cast<uint64_t>(GetParam()));
  StateSnapshot at_last_checkpoint;
  bool checkpointed = false;

  {
    Database db(options);
    ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
    Query q;
    q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};

    for (int step = 0; step < 80; ++step) {
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        std::vector<Record> rows;
        const uint64_t n = 1 + rng.Uniform(5);
        for (uint64_t i = 0; i < n; ++i) {
          rows.push_back({static_cast<int64_t>(rng.Uniform(16)),
                          static_cast<int64_t>(rng.Uniform(100))});
        }
        ASSERT_TRUE(db.Load("p", rows).ok());
      } else if (dice < 0.6) {
        // Partition-granular delete of one random bucket range.
        const uint64_t lo = rng.Uniform(8) * 2;
        auto filter = db.RangeFilter("p", "bucket", lo, lo + 1);
        ASSERT_TRUE(filter.ok());
        ASSERT_TRUE(db.DeletePartitions("p", {*filter}).ok());
      } else if (dice < 0.7) {
        // An aborted explicit transaction leaves nothing.
        aosi::Txn txn = db.Begin();
        ASSERT_TRUE(db.LoadIn(txn, "p", {{0, 999}}).ok());
        ASSERT_TRUE(db.Rollback(txn).ok());
      } else if (dice < 0.8) {
        db.PurgeAll();
      } else {
        auto lse = db.Checkpoint();
        ASSERT_TRUE(lse.ok()) << lse.status().ToString();
        auto result = db.Query("p", q);
        ASSERT_TRUE(result.ok());
        at_last_checkpoint.sum = result->Single(0, AggSpec::Fn::kSum);
        at_last_checkpoint.count = result->Single(1, AggSpec::Fn::kCount);
        checkpointed = true;
      }
    }
    // Crash: Database destroyed without a final checkpoint.
  }

  Database db(options);
  ASSERT_TRUE(db.ExecuteDdl(kDdl).ok());
  ASSERT_TRUE(db.Recover().ok());
  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  auto result = db.Query("p", q);
  ASSERT_TRUE(result.ok());
  if (!checkpointed) {
    EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount), 0.0);
  } else {
    EXPECT_DOUBLE_EQ(result->Single(0, AggSpec::Fn::kSum),
                     at_last_checkpoint.sum)
        << "seed " << GetParam();
    EXPECT_DOUBLE_EQ(result->Single(1, AggSpec::Fn::kCount),
                     at_last_checkpoint.count);
  }
  // The recovered database keeps working normally.
  ASSERT_TRUE(db.Load("p", {{0, 1}}).ok());
  auto after = db.Query("p", q);
  EXPECT_DOUBLE_EQ(after->Single(1, AggSpec::Fn::kCount),
                   result->Single(1, AggSpec::Fn::kCount) + 1);
  fs::remove_all(dir);
}

// Crash mid-checkpoint: the flush round completes (segment + manifest are
// durable) but the process dies before TryAdvanceLSE runs and before any
// later work is flushed. Recovery must restore exactly the flushed round's
// LSE — the round is neither lost nor partially applied — verified against
// the SI oracle rather than a hand-tracked sum.
TEST_P(PersistPropertyTest, CrashMidCheckpointRecoversFlushedRound) {
  const auto dir =
      fs::temp_directory_path() /
      ("cubrick_persist_midckpt_" + std::to_string(GetParam()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  DatabaseOptions options;
  options.data_dir = dir.string();
  const std::vector<DimensionDef> dims = {{"bucket", 16, 2, false}};
  const std::vector<MetricDef> metrics = {{"v", DataType::kInt64}};

  auto oracle_schema = CubeSchema::Make("p", dims, metrics);
  ASSERT_TRUE(oracle_schema.ok());
  check::SiOracle oracle(*oracle_schema);
  Random rng(7700 + static_cast<uint64_t>(GetParam()));
  aosi::Epoch flushed_lse = aosi::kNoEpoch;

  Query q;
  q.aggs = {{AggSpec::Fn::kSum, 0}, {AggSpec::Fn::kCount, 0}};
  q.group_by = {0};

  const auto append_some = [&](Database& db) {
    aosi::Txn txn = db.Begin();
    std::vector<Record> rows;
    const uint64_t n = 1 + rng.Uniform(4);
    for (uint64_t i = 0; i < n; ++i) {
      rows.push_back({static_cast<int64_t>(rng.Uniform(16)),
                      static_cast<int64_t>(rng.Uniform(100))});
    }
    ASSERT_TRUE(db.LoadIn(txn, "p", rows).ok());
    oracle.Append(txn.epoch, rows);
    ASSERT_TRUE(db.Commit(txn).ok());
  };
  const auto delete_some = [&](Database& db) {
    const uint64_t lo = rng.Uniform(8) * 2;
    FilterClause filter;
    filter.dim = 0;
    filter.op = FilterClause::Op::kRange;
    filter.range_lo = lo;
    filter.range_hi = lo + 1;
    aosi::Txn txn = db.Begin();
    // Single-threaded here, so the engine's covered-and-materialized brick
    // set can be captured right before the mark (same contract the stress
    // driver enforces with its structure lock).
    Query probe;
    probe.filters = {filter};
    std::vector<Bid> covered;
    db.FindTable("p")->VisitBricks([&](const Brick& brick) {
      if (brick.num_records() > 0 && BrickCoveredByFilters(brick, probe)) {
        covered.push_back(brick.bid());
      }
    });
    ASSERT_TRUE(db.DeletePartitionsIn(txn, "p", {filter}).ok());
    oracle.Delete(txn.epoch, covered);
    ASSERT_TRUE(db.Commit(txn).ok());
  };

  {
    Database db(options);
    ASSERT_TRUE(db.CreateCube("p", dims, metrics).ok());

    // Phase 1: mixed committed/aborted work, sometimes fully checkpointed.
    for (int step = 0; step < 30; ++step) {
      const double dice = rng.NextDouble();
      if (dice < 0.55) {
        append_some(db);
      } else if (dice < 0.7) {
        delete_some(db);
      } else if (dice < 0.8) {
        aosi::Txn txn = db.Begin();
        ASSERT_TRUE(db.LoadIn(txn, "p", {{0, 999}}).ok());
        oracle.Rollback(txn.epoch);
        ASSERT_TRUE(db.Rollback(txn).ok());
      } else if (dice < 0.9) {
        db.PurgeAll();
      } else {
        ASSERT_TRUE(db.Checkpoint().ok());
      }
    }

    // Phase 2: committed work beyond the last full checkpoint, so the
    // mid-crash flush round below has something to cover.
    append_some(db);
    delete_some(db);
    append_some(db);

    // Phase 3: the flush round itself, via a second FlushManager over the
    // same directory (it is stateless over its files). Crash follows before
    // the in-memory LSE advance and before any purge.
    persist::FlushManager flusher(options.data_dir, "p");
    const aosi::Epoch from = flusher.ManifestLse();
    const aosi::Epoch to = db.txns().LCE();
    ASSERT_GT(to, from);
    auto stats = flusher.FlushRound(db.FindTable("p"), from, to);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    flushed_lse = to;

    // Phase 4: work after the completed round — lost at the crash.
    append_some(db);
    append_some(db);
    // Crash: destructor, no LSE advance, no further flush.
  }

  Database db(options);
  ASSERT_TRUE(db.CreateCube("p", dims, metrics).ok());
  ASSERT_TRUE(db.Recover().ok());
  ASSERT_EQ(db.txns().LSE(), flushed_lse);

  oracle.TruncateAfter(flushed_lse);
  auto recovered = db.Query("p", q);
  ASSERT_TRUE(recovered.ok());
  const QueryResult expected =
      oracle.Eval(aosi::Snapshot{flushed_lse, {}}, q);
  EXPECT_EQ(check::DiffResults(expected, *recovered, q), "")
      << "seed " << GetParam();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cubrick
